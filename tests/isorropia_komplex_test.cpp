// Tests for Isorropia (partitioners, rebalance) and Komplex (complex
// algebra via real objects).
#include <gtest/gtest.h>

#include <cmath>

#include "comm/runner.hpp"
#include "galeri/gallery.hpp"
#include "isorropia/partition.hpp"
#include "komplex/komplex.hpp"

namespace pc = pyhpc::comm;
namespace gl = pyhpc::galeri;
namespace is = pyhpc::isorropia;
namespace kx = pyhpc::komplex;

using LO = std::int32_t;
using GO = std::int64_t;

namespace {
const std::vector<int> kRankCounts{1, 2, 3, 4};
}

class IsorropiaSweep : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Ranks, IsorropiaSweep,
                         ::testing::ValuesIn(kRankCounts));

TEST_P(IsorropiaSweep, WeightedPartitionImprovesImbalance) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    if (comm.size() == 1) return;
    // Start uniform but with skewed weights: first half of the indices are
    // 10x heavier.
    const GO n = 120;
    auto map = is::Map::uniform(comm, n);
    is::Vector w(map);
    for (LO i = 0; i < map.num_local(); ++i) {
      w[i] = map.local_to_global(i) < n / 2 ? 10.0 : 1.0;
    }
    const double before = is::imbalance(w);
    auto newmap = is::partition_1d_weighted(w);
    EXPECT_EQ(newmap.num_global(), n);
    auto w2 = is::rebalance(w, newmap);
    const double after = is::imbalance(w2);
    EXPECT_LE(after, before + 1e-12);
    EXPECT_LT(after, 1.6);  // close to balanced
  });
}

TEST_P(IsorropiaSweep, PartitionByNonzerosCoversAllRows) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    auto map = gl::Map::uniform(comm, 50);
    auto a = gl::laplace1d(map);
    auto newmap = is::partition_by_nonzeros(a);
    EXPECT_EQ(newmap.num_global(), 50);
    const GO total = comm.allreduce_value<GO>(newmap.num_local(),
                                              std::plus<GO>{});
    EXPECT_EQ(total, 50);
  });
}

TEST_P(IsorropiaSweep, RebalancePreservesValues) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    auto map = is::Map::uniform(comm, 36);
    is::Vector v(map);
    for (LO i = 0; i < map.num_local(); ++i) {
      v[i] = 2.0 * static_cast<double>(map.local_to_global(i)) + 0.5;
    }
    // Move to a deliberately uneven map.
    auto uneven = is::Map::from_local_sizes(
        comm, comm.rank() == 0 ? 36 - 3 * (comm.size() - 1) : 3);
    auto moved = is::rebalance(v, uneven);
    for (LO i = 0; i < moved.local_size(); ++i) {
      EXPECT_DOUBLE_EQ(
          moved[i],
          2.0 * static_cast<double>(uneven.local_to_global(i)) + 0.5);
    }
  });
}

TEST_P(IsorropiaSweep, RcbSplitsPointsEvenly) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    const GO n = 64;
    auto map = is::Map::uniform(comm, n);
    is::Vector x(map), y(map);
    for (LO i = 0; i < map.num_local(); ++i) {
      const GO g = map.local_to_global(i);
      x[i] = static_cast<double>(g % 8);
      y[i] = static_cast<double>(g / 8);
    }
    auto newmap = is::partition_rcb_2d(x, y);
    EXPECT_EQ(newmap.num_global(), n);
    // Leaf sizes near n/P.
    const GO total = comm.allreduce_value<GO>(newmap.num_local(),
                                              std::plus<GO>{});
    EXPECT_EQ(total, n);
    const LO mx = comm.allreduce_value<LO>(
        newmap.num_local(), [](LO a, LO b) { return std::max(a, b); });
    EXPECT_LE(mx, static_cast<LO>(n) / comm.size() + comm.size());
  });
}

// ---------------------------------------------------------------------------
// Komplex
// ---------------------------------------------------------------------------

class KomplexSweep : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Ranks, KomplexSweep,
                         ::testing::ValuesIn(kRankCounts));

TEST_P(KomplexSweep, ComplexDotAndNorm) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    auto map = kx::Map::uniform(comm, 10);
    kx::ComplexVector u(map), v(map);
    for (LO i = 0; i < u.local_size(); ++i) {
      const GO g = map.local_to_global(i);
      u.set(i, {1.0, static_cast<double>(g)});
      v.set(i, {static_cast<double>(g), -1.0});
    }
    // conj(u).v = sum (1 - i g)(g - i) = sum (g - g) + i(-1 - g^2)
    const auto d = u.dot(v);
    double sum_g2 = 0.0;
    for (GO g = 0; g < 10; ++g) sum_g2 += static_cast<double>(g * g);
    EXPECT_NEAR(d.real(), 0.0, 1e-12);
    EXPECT_NEAR(d.imag(), -(10.0 + sum_g2), 1e-12);
    // ||u||^2 = sum (1 + g^2).
    EXPECT_NEAR(u.norm2(), std::sqrt(10.0 + sum_g2), 1e-12);
  });
}

TEST_P(KomplexSweep, ComplexApplyMatchesHandComputation) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    // A = (1 + 2i) I: apply to x gives (1+2i) x element-wise.
    auto map = kx::Map::uniform(comm, 12);
    auto ar = gl::identity(map);
    auto ai = gl::identity(map);
    ai.scale(2.0);
    kx::ComplexMatrix a(ar, ai);
    kx::ComplexVector x(map), y(map);
    for (LO i = 0; i < x.local_size(); ++i) x.set(i, {3.0, -1.0});
    a.apply(x, y);
    for (LO i = 0; i < y.local_size(); ++i) {
      const auto z = y.get(i);  // (1+2i)(3-i) = 3 - i + 6i - 2i^2 = 5 + 5i
      EXPECT_NEAR(z.real(), 5.0, 1e-12);
      EXPECT_NEAR(z.imag(), 5.0, 1e-12);
    }
  });
}

TEST_P(KomplexSweep, EquivalentRealSolveRecoversComplexSolution) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    // A = L + i I with L the 1D Laplacian: well-conditioned, nonsymmetric
    // in equivalent real form.
    const GO n = 20;
    auto map = kx::Map::uniform(comm, n);
    auto ar = gl::laplace1d(map);
    auto ai = gl::identity(map);
    kx::ComplexMatrix a(ar, ai);

    // Manufactured solution x*: x_g = g + i(1 - g); b = A x*.
    kx::ComplexVector xstar(map), b(map), x(map);
    for (LO i = 0; i < xstar.local_size(); ++i) {
      const double g = static_cast<double>(map.local_to_global(i));
      xstar.set(i, {g, 1.0 - g});
    }
    a.apply(xstar, b);
    auto res = a.solve(b, x);
    EXPECT_TRUE(res.converged) << res.summary();
    x.update({-1.0, 0.0}, xstar, {1.0, 0.0});
    EXPECT_LT(x.norm2(), 1e-5);
  });
}

TEST(Komplex, EquivalentRealMatrixHasExpectedSize) {
  pc::run(2, [](pc::Communicator& comm) {
    auto map = kx::Map::uniform(comm, 8);
    auto ar = gl::laplace1d(map);
    auto ai = gl::identity(map);
    kx::ComplexMatrix a(ar, ai);
    EXPECT_EQ(a.equivalent_real_matrix().row_map().num_global(), 16);
    // nnz = 2*nnz(Ar) + 2*nnz(Ai).
    EXPECT_EQ(a.equivalent_real_matrix().num_global_entries(),
              2 * ar.num_global_entries() + 2 * ai.num_global_entries());
  });
}

TEST(Komplex, MismatchedMapsRejected) {
  pc::run(1, [](pc::Communicator& comm) {
    auto m1 = kx::Map::uniform(comm, 8);
    auto m2 = kx::Map::uniform(comm, 9);
    auto ar = gl::laplace1d(m1);
    auto ai = gl::identity(m2);
    EXPECT_THROW(kx::ComplexMatrix a(ar, ai), pyhpc::MapError);
  });
}
