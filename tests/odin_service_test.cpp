// Driver-service layer tests (DESIGN.md §10): session multiplexing over
// one hardened DriverContext, admission control (shed vs park), automatic
// control-message coalescing, the worker-side setup cache, and isolation
// under fault injection. Registered under the `service` CTest label:
// `ctest -L service`. Every test with concurrent client threads goes
// through the one-mutex caller-runs dispatch, so the suite is TSan-clean
// by construction (run with -DPYHPC_SANITIZE=thread to check).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

#include "comm/config.hpp"
#include "comm/fault.hpp"
#include "comm/runner.hpp"
#include "obs/metrics.hpp"
#include "odin/service.hpp"
#include "util/error.hpp"

namespace pc = pyhpc::comm;
namespace od = pyhpc::odin;

using namespace std::chrono_literals;

namespace {

pc::CommConfig config_with(std::shared_ptr<pc::FaultInjector> injector) {
  pc::CommConfig cfg;
  cfg.injector = std::move(injector);
  return cfg;
}

od::ServiceOptions fast_service_options() {
  od::ServiceOptions opts;
  opts.driver.ack_timeout = 60ms;
  opts.driver.max_retries = 12;
  opts.driver.reply_timeout = 2000ms;
  return opts;
}

double metric(const std::string& name) {
  auto& reg = pyhpc::obs::MetricsRegistry::global();
  return reg.has(name) ? reg.value(name) : 0.0;
}

// Exact per-session workload: base = full(n, v); iters chained
// cur <- 1.0 * cur + base; reduce == n * v * (iters + 1).
double run_session_pipeline(od::Session& s, std::int64_t n, double v,
                            int iters) {
  const int base = s.create_full(n, v);
  int cur = base;
  for (int i = 0; i < iters; ++i) cur = s.axpy(1.0, cur, base);
  return s.reduce_sum(cur);
}

}  // namespace

// ---------------------------------------------------------------------------
// Basics: one session, multiplexing, coalescing
// ---------------------------------------------------------------------------

TEST(Service, SingleSessionPipelineIsExact) {
  pc::run(3, [](pc::Communicator& comm) {
    od::ServiceContext svc(comm, fast_service_options());
    if (!svc.is_driver()) {
      svc.worker_loop();
      return;
    }
    od::Session s = svc.open_session();
    EXPECT_NEAR(run_session_pipeline(s, 60, 2.0, 9), 60 * 2.0 * 10, 1e-9);
    s.close();
    svc.shutdown();
  });
}

TEST(Service, SessionsShareNoArrayNamespace) {
  // Both sessions' first arrays get array id 1 — worker-side session
  // namespacing must keep them distinct objects with distinct values.
  pc::run(3, [](pc::Communicator& comm) {
    od::ServiceContext svc(comm, fast_service_options());
    if (!svc.is_driver()) {
      svc.worker_loop();
      return;
    }
    od::Session s1 = svc.open_session();
    od::Session s2 = svc.open_session();
    const int a1 = s1.create_full(40, 3.0);
    const int a2 = s2.create_full(40, 5.0);
    EXPECT_EQ(a1, a2);  // same per-session id, different namespaces
    // Interleave traffic so the messages coalesce into shared payloads.
    const int b1 = s1.axpy(2.0, a1, a1);  // 3*2+3 = 9
    const int b2 = s2.axpy(2.0, a2, a2);  // 5*2+5 = 15
    EXPECT_NEAR(s1.reduce_sum(b1), 40 * 9.0, 1e-9);
    EXPECT_NEAR(s2.reduce_sum(b2), 40 * 15.0, 1e-9);
    EXPECT_NEAR(s1.reduce_sum(a1), 40 * 3.0, 1e-9);
    EXPECT_NEAR(s2.reduce_sum(a2), 40 * 5.0, 1e-9);
    s1.close();
    s2.close();
    svc.shutdown();
  });
}

TEST(Service, CoalescingShipsFewerPayloadsThanMessages) {
  pc::run(3, [](pc::Communicator& comm) {
    od::ServiceOptions opts = fast_service_options();
    opts.batch_messages = 16;
    opts.batch_window = 10s;  // size-triggered only: deterministic count
    od::ServiceContext svc(comm, opts);
    if (!svc.is_driver()) {
      svc.worker_loop();
      return;
    }
    od::Session s = svc.open_session();
    const int base = s.create_full(50, 1.0);
    int cur = base;
    for (int i = 0; i < 30; ++i) cur = s.axpy(1.0, cur, base);
    const double total = s.reduce_sum(cur);  // flushes the tail
    EXPECT_NEAR(total, 50 * 31.0, 1e-9);
    // 32 ops + 1 reduce submitted; windows of 16 → far fewer batches.
    EXPECT_GE(svc.messages_submitted(), 32u);
    EXPECT_LE(svc.batches_shipped(), 4u);
    s.close();
    svc.shutdown();
  });
}

TEST(Service, TimeWindowFlushesWithoutReachingSizeWindow) {
  pc::run(2, [](pc::Communicator& comm) {
    od::ServiceOptions opts = fast_service_options();
    opts.batch_messages = 1000;     // never size-triggered
    opts.batch_window = 1ms;        // time window does the work
    od::ServiceContext svc(comm, opts);
    if (!svc.is_driver()) {
      svc.worker_loop();
      return;
    }
    od::Session s = svc.open_session();
    const int a = s.create_full(30, 4.0);
    std::this_thread::sleep_for(5ms);
    // This submit finds the window expired and flushes both messages.
    const int b = s.axpy(1.0, a, a);
    EXPECT_EQ(svc.pending_messages(), 0u);
    EXPECT_NEAR(s.reduce_sum(b), 30 * 8.0, 1e-9);
    s.close();
    svc.shutdown();
  });
}

// ---------------------------------------------------------------------------
// Admission control: shed and park
// ---------------------------------------------------------------------------

TEST(Service, ShedPolicyRejectsOverflowWithoutSideEffects) {
  pc::run(2, [](pc::Communicator& comm) {
    od::ServiceOptions opts = fast_service_options();
    opts.session_queue_limit = 4;
    opts.overload = od::OverloadPolicy::kShed;
    opts.batch_messages = 1000;  // no size flush: force the queue to fill
    opts.batch_window = 10s;
    od::ServiceContext svc(comm, opts);
    if (!svc.is_driver()) {
      svc.worker_loop();
      return;
    }
    od::Session s = svc.open_session();
    const int base = s.create_full(20, 1.0);
    int cur = base;
    for (int i = 0; i < 3; ++i) cur = s.axpy(1.0, cur, base);  // queue full
    EXPECT_THROW((void)s.axpy(1.0, cur, base), pyhpc::QueueFullError);
    EXPECT_GE(svc.sheds(), 1u);
    // The shed op was never queued: the pipeline result is exactly the
    // four admitted messages' worth.
    EXPECT_NEAR(s.reduce_sum(cur), 20 * 4.0, 1e-9);
    s.close();
    svc.shutdown();
  });
}

TEST(Service, ParkPolicyCompletesEverything) {
  pc::run(3, [](pc::Communicator& comm) {
    od::ServiceOptions opts = fast_service_options();
    opts.session_queue_limit = 4;
    opts.overload = od::OverloadPolicy::kPark;
    opts.batch_messages = 1000;
    opts.batch_window = 10s;
    od::ServiceContext svc(comm, opts);
    if (!svc.is_driver()) {
      svc.worker_loop();
      return;
    }
    od::Session s = svc.open_session();
    // 41 messages through a queue of 4: the submitting thread parks
    // (drains the backlog itself) instead of shedding; nothing is lost.
    EXPECT_NEAR(run_session_pipeline(s, 30, 1.0, 39), 30 * 40.0, 1e-9);
    EXPECT_GE(svc.parks(), 1u);
    EXPECT_EQ(svc.sheds(), 0u);
    s.close();
    svc.shutdown();
  });
}

TEST(Service, FloodingShedSessionDoesNotStarveOthers) {
  pc::run(3, [](pc::Communicator& comm) {
    od::ServiceOptions opts = fast_service_options();
    opts.session_queue_limit = 8;
    opts.overload = od::OverloadPolicy::kShed;
    opts.batch_messages = 1000;
    opts.batch_window = 10s;
    od::ServiceContext svc(comm, opts);
    if (!svc.is_driver()) {
      svc.worker_loop();
      return;
    }
    od::Session victim = svc.open_session();
    od::Session flooder = svc.open_session();
    const int vbase = victim.create_full(24, 2.0);
    const int fbase = flooder.create_full(24, 1.0);
    int vcur = vbase;
    int fcur = fbase;
    std::uint64_t shed_count = 0;
    for (int i = 0; i < 50; ++i) {
      try {
        fcur = flooder.axpy(1.0, fcur, fbase);
      } catch (const pyhpc::QueueFullError&) {
        ++shed_count;
      }
      // The victim's queue is its own: the flooder filling up never
      // blocks or sheds the victim's submits.
      if (i < 6) vcur = victim.axpy(1.0, vcur, vbase);
    }
    EXPECT_GT(shed_count, 0u);
    EXPECT_NEAR(victim.reduce_sum(vcur), 24 * 2.0 * 7, 1e-9);
    victim.close();
    flooder.close();
    svc.shutdown();
  });
}

// ---------------------------------------------------------------------------
// Session lifecycle
// ---------------------------------------------------------------------------

TEST(Service, AbruptCloseFreesSegmentsAndLeavesOthersIntact) {
  pc::run(3, [](pc::Communicator& comm) {
    od::ServiceContext svc(comm, fast_service_options());
    if (!svc.is_driver()) {
      svc.worker_loop();
      return;
    }
    od::Session keeper = svc.open_session();
    const int kept = keeper.create_full(32, 7.0);
    {
      od::Session doomed = svc.open_session();
      (void)doomed.create_full(32, 9.0);
      (void)doomed.create_full(64, 3.0);
      // Destructor closes: workers drop the session's segments.
    }
    EXPECT_EQ(svc.open_sessions(), 1u);
    EXPECT_NEAR(keeper.reduce_sum(kept), 32 * 7.0, 1e-9);
    keeper.close();
    svc.shutdown();
  });
}

TEST(Service, ClosedHandleRejectsFurtherUse) {
  pc::run(2, [](pc::Communicator& comm) {
    od::ServiceContext svc(comm, fast_service_options());
    if (!svc.is_driver()) {
      svc.worker_loop();
      return;
    }
    od::Session s = svc.open_session();
    (void)s.create_full(10, 1.0);
    s.close();
    s.close();  // idempotent
    EXPECT_FALSE(s.valid());
    EXPECT_THROW((void)s.create_full(10, 1.0), pyhpc::InvalidArgument);
    svc.shutdown();
  });
}

// ---------------------------------------------------------------------------
// Setup cache (kBlockSolve repeated-structure workload)
// ---------------------------------------------------------------------------

TEST(Service, BlockSolveUsesSetupCacheAcrossSessions) {
  const double hits_before = metric("service.cache.hits");
  const double misses_before = metric("service.cache.misses");
  pc::run(3, [](pc::Communicator& comm) {
    od::ServiceContext svc(comm, fast_service_options());
    if (!svc.is_driver()) {
      svc.worker_loop();
      // Each worker built the size-20 Thomas setup once, then hit.
      EXPECT_EQ(svc.setup_cache().stats().entries, 1u);
      return;
    }
    // n = 40 over 2 workers: local blocks of m = 20. Solving the local
    // tridiag(-1,2,-1) system T x = ones gives sum(x) = m(m+1)(m+2)/12
    // per worker = 770, so the global reduce is exactly 1540.
    const double expected_per_worker = 20.0 * 21.0 * 22.0 / 12.0;
    for (int round = 0; round < 3; ++round) {
      od::Session s = svc.open_session();
      const int ones = s.create_full(40, 1.0);
      const int x = s.block_solve(ones);
      EXPECT_NEAR(s.reduce_sum(x), 2.0 * expected_per_worker, 1e-9)
          << "round " << round;
      s.close();
    }
    svc.shutdown();
  });
  // 2 workers x 3 rounds = 6 solves of one structure: 2 misses (first
  // round), 4 hits (later rounds) — the repeated-structure workload the
  // cache exists for.
  EXPECT_GE(metric("service.cache.hits"), hits_before + 4.0);
  EXPECT_GE(metric("service.cache.misses"), misses_before + 2.0);
}

TEST(Service, BlockSolveDistinctStructuresMissSeparately) {
  pc::run(2, [](pc::Communicator& comm) {
    od::ServiceOptions opts = fast_service_options();
    opts.driver.setup_cache_capacity = 8;
    od::ServiceContext svc(comm, opts);
    if (!svc.is_driver()) {
      svc.worker_loop();
      const auto st = svc.setup_cache().stats();
      EXPECT_EQ(st.entries, 2u);  // sizes 12 and 30
      EXPECT_GE(st.hits, 2u);     // one repeat of each
      return;
    }
    od::Session s = svc.open_session();
    for (int round = 0; round < 2; ++round) {
      for (std::int64_t n : {12, 30}) {
        const int ones = s.create_full(n, 1.0);
        const int x = s.block_solve(ones);
        const double m = static_cast<double>(n);  // one worker: m == n
        EXPECT_NEAR(s.reduce_sum(x), m * (m + 1.0) * (m + 2.0) / 12.0,
                    1e-9);
      }
    }
    s.close();
    svc.shutdown();
  });
}

// ---------------------------------------------------------------------------
// Concurrent-session matrix: 2-8 client threads x batching x injection
// ---------------------------------------------------------------------------

namespace {

enum class Inject { kNone, kDrop, kDuplicate, kDelay };

std::shared_ptr<pc::FaultInjector> make_injector(Inject mode,
                                                 std::uint64_t seed) {
  auto inj = std::make_shared<pc::FaultInjector>(seed);
  if (mode == Inject::kNone) return inj;
  pc::FaultRule rule;
  rule.source = 0;
  rule.tag = od::kControlTag;
  switch (mode) {
    case Inject::kDrop:
      rule.kind = pc::FaultKind::kDrop;
      rule.probability = 0.08;
      break;
    case Inject::kDuplicate:
      rule.kind = pc::FaultKind::kDuplicate;
      rule.probability = 0.15;
      break;
    case Inject::kDelay:
      rule.kind = pc::FaultKind::kDelay;
      rule.probability = 0.15;
      rule.delay = 5ms;
      break;
    case Inject::kNone:
      break;
  }
  inj->add_rule(rule);
  return inj;
}

// One cell of the matrix: `num_sessions` client threads hammer one
// ServiceContext concurrently; every session's reduce must be exactly its
// own pipeline's value (isolation), regardless of batching or injection.
void run_matrix_cell(int num_sessions, bool batching, Inject mode) {
  auto inj = make_injector(
      mode, 1000 + static_cast<std::uint64_t>(num_sessions) * 10 +
                static_cast<std::uint64_t>(batching));
  pc::run(3, config_with(inj),
          [num_sessions, batching](pc::Communicator& comm) {
            od::ServiceOptions opts = fast_service_options();
            opts.batch_messages = batching ? 32 : 1;
            opts.batch_window =
                batching ? std::chrono::microseconds(300) : 0us;
            od::ServiceContext svc(comm, opts);
            if (!svc.is_driver()) {
              svc.worker_loop();
              return;
            }
            std::vector<std::thread> clients;
            std::atomic<int> failures{0};
            for (int c = 0; c < num_sessions; ++c) {
              clients.emplace_back([&svc, &failures, c] {
                od::Session s = svc.open_session();
                const double v = static_cast<double>(c + 1);
                const std::int64_t n = 24;
                const int iters = 6;
                const double got = run_session_pipeline(s, n, v, iters);
                const double want =
                    static_cast<double>(n) * v * (iters + 1);
                if (std::abs(got - want) > 1e-9) ++failures;
                s.close();
              });
            }
            for (auto& t : clients) t.join();
            EXPECT_EQ(failures.load(), 0)
                << num_sessions << " sessions, batching=" << batching;
            svc.shutdown();
          });
}

}  // namespace

TEST(ServiceMatrix, CleanLink) {
  for (int sessions : {2, 4, 8}) {
    for (bool batching : {false, true}) {
      run_matrix_cell(sessions, batching, Inject::kNone);
    }
  }
}

TEST(ServiceMatrix, DroppedControlPayloads) {
  for (int sessions : {2, 4, 8}) {
    for (bool batching : {false, true}) {
      run_matrix_cell(sessions, batching, Inject::kDrop);
    }
  }
}

TEST(ServiceMatrix, DuplicatedControlPayloads) {
  for (int sessions : {2, 4, 8}) {
    for (bool batching : {false, true}) {
      run_matrix_cell(sessions, batching, Inject::kDuplicate);
    }
  }
}

TEST(ServiceMatrix, DelayedControlPayloads) {
  for (int sessions : {2, 4}) {  // delays are wall-clock: keep it light
    for (bool batching : {false, true}) {
      run_matrix_cell(sessions, batching, Inject::kDelay);
    }
  }
}

// ---------------------------------------------------------------------------
// Failure surfaces
// ---------------------------------------------------------------------------

TEST(Service, WorkerDeathSurfacesAsWorkerLost) {
  auto inj = std::make_shared<pc::FaultInjector>(3);
  pc::FaultRule kill;
  kill.kind = pc::FaultKind::kKillRank;
  kill.source = 0;
  kill.dest = 1;
  kill.tag = od::kControlTag;
  kill.skip_first = 2;
  kill.max_applications = 1;
  inj->add_rule(kill);
  try {
    pc::run(3, config_with(inj), [](pc::Communicator& comm) {
      od::ServiceOptions opts = fast_service_options();
      opts.batch_messages = 1;  // ship per-op so the kill lands mid-stream
      od::ServiceContext svc(comm, opts);
      if (!svc.is_driver()) {
        svc.worker_loop();
        return;
      }
      od::Session s = svc.open_session();
      const int base = s.create_full(40, 1.0);
      int cur = base;
      for (int i = 0; i < 10; ++i) {
        cur = s.axpy(1.0, cur, base);
        (void)s.reduce_sum(cur);
      }
      FAIL() << "expected WorkerLostError";
    });
    FAIL() << "expected WorkerLostError to propagate out of run()";
  } catch (const pyhpc::WorkerLostError& e) {
    EXPECT_NE(std::string(e.what()).find("worker rank 1"), std::string::npos)
        << e.what();
  }
  EXPECT_EQ(inj->counts().kills, 1u);
}

TEST(Service, BadOpFromOneSessionIsContainedOnWorkers) {
  const double before = metric("driver.worker_op_errors");
  pc::run(3, [](pc::Communicator& comm) {
    od::ServiceContext svc(comm, fast_service_options());
    if (!svc.is_driver()) {
      svc.worker_loop();
      return;
    }
    od::Session good = svc.open_session();
    od::Session bad = svc.open_session();
    const int g = good.create_full(28, 2.0);
    // Session `bad` references an array id it never created. The workers
    // contain the failure; a reduce on the dangling id replies NaN
    // instead of hanging the collection loop.
    (void)bad.axpy(1.0, 77, 77);
    EXPECT_TRUE(std::isnan(bad.reduce_sum(99)));
    // The good session is untouched by its neighbour's garbage.
    EXPECT_NEAR(good.reduce_sum(g), 28 * 2.0, 1e-9);
    good.close();
    bad.close();
    svc.shutdown();
  });
  EXPECT_GE(metric("driver.worker_op_errors"), before + 2.0);
}
