// Tests for the Teuchos analogue: ParameterList typed access, hierarchy,
// XML round-trips, and timers.
#include <gtest/gtest.h>

#include <thread>

#include "teuchos/parameter_list.hpp"
#include "teuchos/timer.hpp"
#include "util/error.hpp"

namespace pt = pyhpc::teuchos;

TEST(ParameterList, SetAndGetScalars) {
  pt::ParameterList pl("Solver");
  pl.set("tolerance", 1e-8);
  pl.set("max iterations", 500);
  pl.set("method", "GMRES");
  pl.set("verbose", true);

  EXPECT_EQ(pl.get<double>("tolerance"), 1e-8);
  EXPECT_EQ(pl.get<std::int64_t>("max iterations"), 500);
  EXPECT_EQ(pl.get<std::string>("method"), "GMRES");
  EXPECT_EQ(pl.get<bool>("verbose"), true);
  EXPECT_EQ(pl.name(), "Solver");
}

TEST(ParameterList, GetMissingThrows) {
  pt::ParameterList pl;
  EXPECT_THROW(pl.get<double>("nope"), pyhpc::InvalidArgument);
}

TEST(ParameterList, GetWrongTypeThrows) {
  pt::ParameterList pl;
  pl.set("x", 3);
  EXPECT_THROW(pl.get<double>("x"), pyhpc::InvalidArgument);
  EXPECT_THROW(pl.get_or<std::string>("x", "d"), pyhpc::InvalidArgument);
}

TEST(ParameterList, GetOrUsesFallback) {
  pt::ParameterList pl;
  EXPECT_EQ(pl.get_int("iters", 100), 100);
  EXPECT_EQ(pl.get_double("tol", 0.5), 0.5);
  EXPECT_EQ(pl.get_string("pc", "none"), "none");
  EXPECT_TRUE(pl.get_bool("flag", true));
  pl.set("iters", 7);
  EXPECT_EQ(pl.get_int("iters", 100), 7);
}

TEST(ParameterList, Arrays) {
  pt::ParameterList pl;
  pl.set("weights", std::vector<double>{0.5, 1.5, 2.5});
  pl.set("dims", std::vector<std::int64_t>{10, 20});
  EXPECT_EQ(pl.get<std::vector<double>>("weights").size(), 3u);
  EXPECT_EQ(pl.get<std::vector<std::int64_t>>("dims")[1], 20);
}

TEST(ParameterList, SublistsAreHierarchical) {
  pt::ParameterList pl("Top");
  pl.sublist("ML").set("levels", 4);
  pl.sublist("ML").sublist("smoother").set("type", "Jacobi");
  EXPECT_TRUE(pl.is_sublist("ML"));
  EXPECT_FALSE(pl.is_sublist("missing"));
  const auto& cpl = pl;
  EXPECT_EQ(cpl.sublist("ML").get<std::int64_t>("levels"), 4);
  EXPECT_EQ(cpl.sublist("ML").sublist("smoother").get<std::string>("type"),
            "Jacobi");
}

TEST(ParameterList, SublistNameCollisionWithScalarThrows) {
  pt::ParameterList pl;
  pl.set("x", 1);
  EXPECT_THROW(pl.sublist("x"), pyhpc::InvalidArgument);
}

TEST(ParameterList, RemoveAndNames) {
  pt::ParameterList pl;
  pl.set("b", 1);
  pl.set("a", 2);
  EXPECT_EQ(pl.names(), (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(pl.remove("a"));
  EXPECT_FALSE(pl.remove("a"));
  EXPECT_EQ(pl.size(), 1u);
}

TEST(ParameterList, XmlRoundTripAllTypes) {
  pt::ParameterList pl("Config");
  pl.set("tol", 1.2345678901234567e-11);
  pl.set("iters", 42);
  pl.set("name", "with \"quotes\" & <angles>");
  pl.set("on", false);
  pl.set("xs", std::vector<double>{1.5, -2.25});
  pl.set("ns", std::vector<std::int64_t>{-1, 0, 7});
  pl.sublist("inner").set("deep", 3.5);
  pl.sublist("inner").sublist("deeper").set("leaf", "v");

  const std::string xml = pl.to_xml();
  pt::ParameterList back = pt::ParameterList::from_xml(xml);
  EXPECT_TRUE(pl == back);
  EXPECT_EQ(back.get<std::string>("name"), "with \"quotes\" & <angles>");
  EXPECT_EQ(back.sublist("inner").sublist("deeper").get<std::string>("leaf"),
            "v");
}

TEST(ParameterList, FromXmlRejectsGarbage) {
  EXPECT_THROW(pt::ParameterList::from_xml("<NotAList/>"),
               pyhpc::InvalidArgument);
  EXPECT_THROW(pt::ParameterList::from_xml("<ParameterList name=\"x\">"),
               pyhpc::InvalidArgument);
  EXPECT_THROW(pt::ParameterList::from_xml(
                   "<ParameterList name=\"x\"><Parameter name=\"a\" "
                   "type=\"float128\" value=\"1\"/></ParameterList>"),
               pyhpc::InvalidArgument);
}

TEST(ParameterList, EqualityDetectsDifferences) {
  pt::ParameterList a, b;
  a.set("x", 1);
  b.set("x", 2);
  EXPECT_FALSE(a == b);
  b.set("x", 1);
  EXPECT_TRUE(a == b);
  b.set("y", 0.5);
  EXPECT_FALSE(a == b);
}

TEST(Timer, AccumulatesAcrossStartStop) {
  pt::Timer t("work");
  t.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  t.stop();
  t.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  t.stop();
  EXPECT_GE(t.total_seconds(), 0.008);
  EXPECT_EQ(t.count(), 2u);
}

TEST(Timer, DoubleStartThrows) {
  pt::Timer t("x");
  t.start();
  EXPECT_THROW(t.start(), pyhpc::InvalidArgument);
  t.stop();
  EXPECT_THROW(t.stop(), pyhpc::InvalidArgument);
}

TEST(Timer, ScopedTimerTimesScope) {
  pt::Timer t("scoped");
  {
    pt::ScopedTimer s(t);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GT(t.total_seconds(), 0.0);
  EXPECT_EQ(t.count(), 1u);
}

TEST(TimeMonitor, RegistryAndReport) {
  pt::TimeMonitor::reset_all();
  auto& t = pt::TimeMonitor::get("solve");
  {
    pt::ScopedTimer s(t);
  }
  auto& again = pt::TimeMonitor::get("solve");
  EXPECT_EQ(&t, &again);
  const auto summary = pt::TimeMonitor::summary();
  ASSERT_EQ(summary.size(), 1u);
  EXPECT_EQ(std::get<0>(summary[0]), "solve");
  EXPECT_EQ(std::get<2>(summary[0]), 1u);
  const std::string report = pt::TimeMonitor::report();
  EXPECT_NE(report.find("solve"), std::string::npos);
  pt::TimeMonitor::reset_all();
  EXPECT_TRUE(pt::TimeMonitor::summary().empty());
}
