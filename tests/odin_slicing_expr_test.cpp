// Tests for distributed slicing (vs serial NumPy-style references,
// including the paper's finite-difference example) and the lazy fused
// expression layer.
#include <gtest/gtest.h>

#include <cmath>

#include "comm/runner.hpp"
#include "odin/expr.hpp"
#include "odin/slicing.hpp"
#include "odin/ufunc.hpp"

namespace pc = pyhpc::comm;
namespace od = pyhpc::odin;
using od::index_t;
using od::Slice;
using Arr = od::DistArray<double>;

namespace {
const std::vector<int> kRankCounts{1, 2, 3, 4};

// Serial reference slicing of a 1D vector.
std::vector<double> ref_slice(const std::vector<double>& v, Slice s) {
  auto r = s.resolve(static_cast<index_t>(v.size()));
  std::vector<double> out;
  for (index_t k = 0; k < r.count; ++k) {
    out.push_back(v[static_cast<std::size_t>(r.global_of(k))]);
  }
  return out;
}
}  // namespace

class SliceSweep : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Ranks, SliceSweep, ::testing::ValuesIn(kRankCounts));

TEST_P(SliceSweep, OneDimensionalSlicesMatchReference) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    const index_t n = 23;
    auto dist = od::Distribution::block(comm, od::Shape({n}), 0);
    auto x = Arr::arange(dist, 0.0, 1.0);
    auto serial = x.gather();
    for (Slice s : {Slice::from(1), Slice::to(-1), Slice::range(2, 19, 3),
                    Slice::range(od::Slice::kNone, od::Slice::kNone, -1),
                    Slice::range(20, 3, -4), Slice::range(5, 5),
                    Slice::from(-6)}) {
      auto sliced = od::slice1d(x, s);
      EXPECT_EQ(sliced.gather(), ref_slice(serial, s));
    }
  });
}

TEST_P(SliceSweep, SlicedArraysAreUsableDownstream) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    const index_t n = 30;
    auto dist = od::Distribution::block(comm, od::Shape({n}), 0);
    auto x = Arr::arange(dist, 0.0, 1.0);
    // dy = x[1:] - x[:-1] == all ones.
    auto hi = od::slice1d(x, Slice::from(1));
    auto lo = od::slice1d(x, Slice::to(-1));
    auto dy = hi - lo;
    EXPECT_DOUBLE_EQ(dy.sum(), static_cast<double>(n - 1));
    EXPECT_DOUBLE_EQ(dy.min(), 1.0);
    EXPECT_DOUBLE_EQ(dy.max(), 1.0);
  });
}

TEST_P(SliceSweep, PaperFiniteDifferenceExample) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    // §III.G verbatim: x = linspace(1, 2pi, n); y = sin(x);
    // dx = x[1]-x[0]; dy = y[1:] - y[:-1]; dydx = dy / dx ~= cos(x).
    const index_t n = 4000;
    auto dist = od::Distribution::block(comm, od::Shape({n}), 0);
    auto x = Arr::linspace(dist, 1.0, 2.0 * M_PI);
    auto y = od::sin(x);
    const double dx = x.get_global({1}) - x.get_global({0});
    auto dy = od::slice1d(y, Slice::from(1)) - od::slice1d(y, Slice::to(-1));
    auto dydx = dy / dx;
    // Compare against cos at midpoints.
    auto xf = x.gather();
    auto df = dydx.gather();
    for (index_t g = 0; g + 1 < n; g += 131) {
      const double mid = 0.5 * (xf[static_cast<std::size_t>(g)] +
                                xf[static_cast<std::size_t>(g) + 1]);
      EXPECT_NEAR(df[static_cast<std::size_t>(g)], std::cos(mid), 1e-5);
    }
  });
}

TEST_P(SliceSweep, ShiftedDiffMatchesSliceFormulation) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    const index_t n = 50;
    auto dist = od::Distribution::block(comm, od::Shape({n}), 0);
    auto y = Arr::fromfunction(dist, [](const std::vector<index_t>& g) {
      return std::sin(0.3 * static_cast<double>(g[0]));
    });
    auto via_slices =
        od::slice1d(y, Slice::from(1)) - od::slice1d(y, Slice::to(-1));
    auto via_halo = od::shifted_diff(y);
    auto a = via_slices.gather();
    auto b = via_halo.gather();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_NEAR(a[i], b[i], 1e-14);
    }
  });
}

TEST_P(SliceSweep, HaloDiffMovesOnlyBoundaryBytes) {
  const int p = GetParam();
  if (p == 1) return;
  auto stats = pc::run_with_stats(p, [](pc::Communicator& comm) {
    const index_t n = 10000;
    auto dist = od::Distribution::block(comm, od::Shape({n}), 0);
    auto y = Arr::random(dist, 3);
    comm.stats().reset();
    auto d = od::shifted_diff(y);
    (void)d;
  });
  // Each rank except the last sends exactly one halo element... measured
  // from the sender side: p-1 messages of 8 bytes. (explicit_block also
  // allgathers sizes — collective bytes, counted separately.)
  EXPECT_EQ(stats.p2p_messages_sent, static_cast<std::uint64_t>(p - 1));
  EXPECT_EQ(stats.p2p_bytes_sent, static_cast<std::uint64_t>(p - 1) * 8);
}

TEST_P(SliceSweep, TwoDimensionalSlicing) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    auto dist = od::Distribution::block(comm, od::Shape({8, 6}), 0);
    auto a = Arr::fromfunction(dist, [](const std::vector<index_t>& g) {
      return static_cast<double>(10 * g[0] + g[1]);
    });
    // a[2:7:2, 1:-1] -> rows 2,4,6; cols 1..4.
    auto s = od::slice(a, {Slice::range(2, 7, 2), Slice::range(1, -1)});
    EXPECT_EQ(s.shape(), od::Shape({3, 4}));
    auto f = s.gather();
    std::size_t k = 0;
    for (index_t i : {2, 4, 6}) {
      for (index_t j : {1, 2, 3, 4}) {
        EXPECT_DOUBLE_EQ(f[k++], static_cast<double>(10 * i + j));
      }
    }
  });
}

// Regression (ISSUE 3): shifted_diff used to run its halo exchange on the
// hard-coded *user* tag 7001, cross-matching with any application message
// on that tag. User traffic on 7001 in flight during the exchange must
// survive untouched, and the diff must still be right.
TEST(Slicing, ShiftedDiffHaloDoesNotCollideWithUserTag7001) {
  pc::run(2, [](pc::Communicator& comm) {
    const index_t n = 10;
    auto dist = od::Distribution::block(comm, od::Shape({n}), 0);
    auto x = Arr::arange(dist, 0.0, 3.0);

    // Rank 1 sends an unrelated user message on tag 7001 to rank 0 *before*
    // the halo exchange. Pre-fix, rank 0's halo receive (source 1, tag
    // 7001) matched this message instead of the halo value.
    if (comm.rank() == 1) comm.send_value(99.5, 0, 7001);
    auto dy = od::shifted_diff(x);
    auto full = dy.gather();
    ASSERT_EQ(full.size(), static_cast<std::size_t>(n - 1));
    for (double d : full) EXPECT_DOUBLE_EQ(d, 3.0);
    if (comm.rank() == 0) {
      EXPECT_DOUBLE_EQ(comm.recv_value<double>(1, 7001), 99.5)
          << "user payload on tag 7001 was consumed by the halo exchange";
    }
  });
}

// Regression (ISSUE 3): slice() used to ship Entry{index_t, T} structs, so
// a float element cost 16 wire bytes (8 index + 4 value + 4 padding, the
// padding uninitialized). Packed flat buffers cost 12.
TEST(Slicing, SlicePacksIndicesAndValuesWithoutPadding) {
  pc::run(2, [](pc::Communicator& comm) {
    const index_t n = 64;
    auto dist = od::Distribution::block(comm, od::Shape({n}), 0);
    auto x = od::DistArray<float>::arange(dist, 0.0f, 1.0f);
    comm.barrier();
    comm.stats().reset();
    // Reversal moves every element to the other rank: 32 cross-rank
    // elements in each direction.
    auto rev = od::slice1d(
        x, Slice::range(od::Slice::kNone, od::Slice::kNone, -1));
    comm.barrier();
    if (comm.rank() == 0) {
      const auto total = comm.aggregate_stats();
      // 2 x 32 elements x (8 B index + 4 B value) = 768 payload bytes;
      // the pre-fix Entry encoding shipped 2 x 32 x 16 = 1024.
      EXPECT_LE(total.coll_bytes_sent, 1000u)
          << "slice() is shipping padded structs again";
      EXPECT_GE(total.coll_bytes_sent, 768u);
    }
    auto full = rev.gather();
    ASSERT_EQ(full.size(), static_cast<std::size_t>(n));
    for (index_t g = 0; g < n; ++g) {
      EXPECT_EQ(full[static_cast<std::size_t>(g)],
                static_cast<float>(n - 1 - g));
    }
  });
}

TEST(Slicing, WrongSliceCountThrows) {
  pc::run(1, [](pc::Communicator& comm) {
    auto dist = od::Distribution::block(comm, od::Shape({4, 4}), 0);
    auto a = Arr::ones(dist);
    EXPECT_THROW((void)od::slice(a, {Slice::all()}), pyhpc::ShapeError);
  });
}

// ---------------------------------------------------------------------------
// Lazy fused expressions
// ---------------------------------------------------------------------------

class ExprSweep : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Ranks, ExprSweep, ::testing::ValuesIn(kRankCounts));

TEST_P(ExprSweep, FusedMatchesEager) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    const index_t n = 100;
    auto dist = od::Distribution::block(comm, od::Shape({n}), 0);
    auto x = Arr::random(dist, 1);
    auto y = Arr::random(dist, 2);
    auto z = Arr::random(dist, 3);
    // eager: a*x + b*y + z  (three temporaries)
    auto eager = x * 2.0 + y * 3.0 + z;
    // fused: one pass
    auto fused =
        od::eval(od::lazy(x) * 2.0 + od::lazy(y) * 3.0 + od::lazy(z));
    auto ef = eager.gather();
    auto ff = fused.gather();
    for (std::size_t i = 0; i < ef.size(); ++i) {
      EXPECT_DOUBLE_EQ(ff[i], ef[i]);
    }
  });
}

TEST_P(ExprSweep, FusedEvaluationMovesNoElementData) {
  const int p = GetParam();
  auto stats = pc::run_with_stats(p, [](pc::Communicator& comm) {
    auto dist = od::Distribution::block(comm, od::Shape({5000}), 0);
    auto x = Arr::random(dist, 1);
    auto y = Arr::random(dist, 2);
    comm.stats().reset();
    auto r = od::eval(od::lazy(x) * od::lazy(y) + od::lazy(x));
    (void)r;
  });
  EXPECT_EQ(stats.p2p_bytes_sent, 0u);
  EXPECT_EQ(stats.coll_bytes_sent, 0u);
}

TEST_P(ExprSweep, UnaryCompositionInExpressions) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    auto dist = od::Distribution::block(comm, od::Shape({50}), 0);
    auto x = Arr::linspace(dist, 0.0, 1.0);
    auto fused = od::eval(od::apply_unary([](double v) { return std::sin(v); },
                                          od::lazy(x) * 2.0));
    auto xf = x.gather();
    auto ff = fused.gather();
    for (std::size_t i = 0; i < ff.size(); ++i) {
      EXPECT_NEAR(ff[i], std::sin(2.0 * xf[i]), 1e-15);
    }
  });
}

TEST(Expr, NonConformableOperandsRejected) {
  pc::run(2, [](pc::Communicator& comm) {
    auto b = od::Distribution::block(comm, od::Shape({12}), 0);
    auto c = od::Distribution::cyclic(comm, od::Shape({12}), 0);
    auto x = Arr::ones(b);
    auto y = Arr::ones(c);
    EXPECT_THROW((void)od::eval(od::lazy(x) + od::lazy(y)), pyhpc::ShapeError);
  });
}

TEST(Expr, AllScalarExpressionRejected) {
  pc::run(1, [](pc::Communicator&) {
    EXPECT_THROW((void)od::eval(od::constant(1.0) + od::constant(2.0)),
                 pyhpc::ShapeError);
  });
}
