// Tests for the solver stack: Krylov methods on gallery matrices with every
// preconditioner, gathered direct solvers, eigensolvers against analytic
// spectra, and Newton/JFNK on nonlinear systems.
#include <gtest/gtest.h>

#include <cmath>

#include "comm/runner.hpp"
#include "galeri/gallery.hpp"
#include "precond/amg.hpp"
#include "precond/preconditioner.hpp"
#include "solvers/amesos.hpp"
#include "solvers/anasazi.hpp"
#include "solvers/krylov.hpp"
#include "solvers/factory.hpp"
#include "solvers/nox.hpp"

namespace pc = pyhpc::comm;
namespace gl = pyhpc::galeri;
namespace pp = pyhpc::precond;
namespace sv = pyhpc::solvers;

using LO = std::int32_t;
using GO = std::int64_t;

namespace {
const std::vector<int> kRankCounts{1, 2, 3, 4};

double solution_error_vs_ones(const gl::Vector& x) {
  gl::Vector err(x.map(), 1.0);
  err.update(1.0, x, -1.0);
  return err.norm2();
}
}  // namespace

class KrylovSweep : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Ranks, KrylovSweep, ::testing::ValuesIn(kRankCounts));

TEST_P(KrylovSweep, CgSolvesLaplace1d) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    auto map = gl::Map::uniform(comm, 64);
    auto a = gl::laplace1d(map);
    auto b = gl::rhs_for_ones(a);
    gl::Vector x(map, 0.0);
    auto res = sv::cg_solve(a, b, x);
    EXPECT_TRUE(res.converged) << res.summary();
    EXPECT_LT(solution_error_vs_ones(x), 1e-6);
    // History is monotone-ish and ends below tolerance.
    ASSERT_FALSE(res.residual_history.empty());
    EXPECT_LE(res.residual_history.back(), 1e-8);
  });
}

TEST_P(KrylovSweep, PreconditionedCgConvergesFaster) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    auto a = gl::laplace2d(comm, 20, 20);
    auto b = gl::rhs_for_ones(a);
    gl::Vector x0(a.domain_map(), 0.0), x1(a.domain_map(), 0.0);
    auto plain = sv::cg_solve(a, b, x0);
    pp::AmgPreconditioner amg(a);
    auto pcg = sv::cg_solve(a, b, x1, {}, &amg);
    EXPECT_TRUE(plain.converged);
    EXPECT_TRUE(pcg.converged);
    EXPECT_LT(pcg.iterations, plain.iterations);
  });
}

TEST_P(KrylovSweep, BicgstabSolvesNonsymmetric) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    auto a = gl::convection_diffusion_2d(comm, 12, 12, 8.0, 3.0);
    auto b = gl::rhs_for_ones(a);
    gl::Vector x(a.domain_map(), 0.0);
    auto res = sv::bicgstab_solve(a, b, x);
    EXPECT_TRUE(res.converged) << res.summary();
    EXPECT_LT(solution_error_vs_ones(x), 1e-5);
  });
}

TEST_P(KrylovSweep, GmresSolvesNonsymmetricWithIlu) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    auto a = gl::convection_diffusion_2d(comm, 14, 14, -6.0, 9.0);
    auto b = gl::rhs_for_ones(a);
    gl::Vector x(a.domain_map(), 0.0);
    pp::Ilu0Preconditioner ilu(a);
    auto res = sv::gmres_solve(a, b, x, {}, &ilu);
    EXPECT_TRUE(res.converged) << res.summary();
    EXPECT_LT(solution_error_vs_ones(x), 1e-5);
  });
}

TEST_P(KrylovSweep, GmresRestartStillConverges) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    auto map = gl::Map::uniform(comm, 80);
    auto a = gl::laplace1d(map);
    auto b = gl::rhs_for_ones(a);
    gl::Vector x(map, 0.0);
    sv::KrylovOptions opt;
    opt.gmres_restart = 5;  // force many restarts
    opt.max_iterations = 5000;
    auto res = sv::gmres_solve(a, b, x, opt);
    EXPECT_TRUE(res.converged) << res.summary();
    EXPECT_LT(solution_error_vs_ones(x), 1e-5);
  });
}

TEST_P(KrylovSweep, CgsSolvesDiagDominant) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    auto map = gl::Map::uniform(comm, 60);
    auto a = gl::random_diag_dominant(map, 3, 99);
    auto b = gl::rhs_for_ones(a);
    gl::Vector x(map, 0.0);
    auto res = sv::cgs_solve(a, b, x);
    EXPECT_TRUE(res.converged) << res.summary();
    EXPECT_LT(solution_error_vs_ones(x), 1e-5);
  });
}

TEST(Krylov, CgRejectsIndefiniteOperator) {
  pc::run(1, [](pc::Communicator& comm) {
    auto map = gl::Map::uniform(comm, 4);
    gl::Matrix a(map);
    // diag(1, -1, 1, -1): indefinite.
    for (GO g = 0; g < 4; ++g) {
      a.insert_global_value(g, g, g % 2 == 0 ? 1.0 : -1.0);
    }
    a.fill_complete();
    gl::Vector b(map, 1.0), x(map, 0.0);
    EXPECT_THROW((void)sv::cg_solve(a, b, x), pyhpc::NumericalError);
  });
}

TEST(Krylov, ZeroRhsShortCircuits) {
  pc::run(2, [](pc::Communicator& comm) {
    auto map = gl::Map::uniform(comm, 10);
    auto a = gl::laplace1d(map);
    gl::Vector b(map, 0.0), x(map, 5.0);
    auto res = sv::cg_solve(a, b, x);
    EXPECT_TRUE(res.converged);
    EXPECT_EQ(res.iterations, 0);
    EXPECT_DOUBLE_EQ(x.norm2(), 0.0);
  });
}

TEST(Krylov, MaxIterationsReportsFailure) {
  pc::run(2, [](pc::Communicator& comm) {
    auto a = gl::laplace2d(comm, 24, 24);
    auto b = gl::rhs_for_ones(a);
    gl::Vector x(a.domain_map(), 0.0);
    sv::KrylovOptions opt;
    opt.max_iterations = 3;
    auto res = sv::cg_solve(a, b, x, opt);
    EXPECT_FALSE(res.converged);
    EXPECT_EQ(res.iterations, 3);
    EXPECT_GT(res.achieved_tolerance, opt.tolerance);
  });
}

TEST(Krylov, FactoryAndOptionsFromParameters) {
  pyhpc::teuchos::ParameterList pl;
  pl.set("tolerance", 1e-4);
  pl.set("max iterations", 123);
  pl.set("gmres restart", 11);
  auto opt = sv::KrylovOptions::from_parameters(pl);
  EXPECT_EQ(opt.tolerance, 1e-4);
  EXPECT_EQ(opt.max_iterations, 123);
  EXPECT_EQ(opt.gmres_restart, 11);

  for (const auto* kind : {"cg", "bicgstab", "cgs", "gmres"}) {
    EXPECT_NO_THROW((void)sv::create_solver(kind));
  }
  EXPECT_THROW((void)sv::create_solver("magic"), pyhpc::InvalidArgument);
}

// ---------------------------------------------------------------------------
// Direct solvers (Amesos)
// ---------------------------------------------------------------------------

class DirectSweep : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Ranks, DirectSweep, ::testing::ValuesIn(kRankCounts));

TEST_P(DirectSweep, DenseLuSolvesExactly) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    auto map = gl::Map::uniform(comm, 30);
    auto a = gl::random_diag_dominant(map, 4, 5);
    auto b = gl::rhs_for_ones(a);
    gl::Vector x(map);
    sv::DenseDirectSolver lu(a);
    lu.solve(b, x);
    EXPECT_LT(solution_error_vs_ones(x), 1e-10);
  });
}

TEST_P(DirectSweep, BandedLuSolvesTridiagonal) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    auto map = gl::Map::uniform(comm, 40);
    auto a = gl::tridiag(map, -1.0, 4.0, -2.0);
    auto b = gl::rhs_for_ones(a);
    gl::Vector x(map);
    sv::BandedDirectSolver lu(a);
    EXPECT_EQ(lu.bandwidth(), 1);
    lu.solve(b, x);
    EXPECT_LT(solution_error_vs_ones(x), 1e-10);
  });
}

TEST_P(DirectSweep, FactoryBackendsAgree) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    auto map = gl::Map::uniform(comm, 24);
    auto a = gl::laplace1d(map);
    auto b = gl::sine_rhs(map);
    gl::Vector x1(map), x2(map);
    sv::create_direct_solver("lapack", a)->solve(b, x1);
    sv::create_direct_solver("klu", a)->solve(b, x2);
    x1.update(-1.0, x2, 1.0);
    EXPECT_LT(x1.norm2(), 1e-10);
    EXPECT_THROW((void)sv::create_direct_solver("umfpack2000", a),
                 pyhpc::InvalidArgument);
  });
}

TEST(Direct, SingularMatrixRejected) {
  pc::run(1, [](pc::Communicator& comm) {
    auto map = gl::Map::uniform(comm, 3);
    gl::Matrix a(map);
    a.insert_global_value(0, 0, 1.0);
    a.insert_global_value(1, 1, 1.0);
    // Row 2 left empty -> singular.
    a.fill_complete();
    EXPECT_THROW(sv::DenseDirectSolver lu(a), pyhpc::NumericalError);
  });
}

// ---------------------------------------------------------------------------
// Eigensolvers (Anasazi)
// ---------------------------------------------------------------------------

TEST(Eigen, TridiagEigenvaluesMatchAnalytic) {
  // Laplacian tridiagonal (2 on diag, -1 off): lambda_k = 2 - 2cos(k pi/(n+1)).
  const int n = 10;
  std::vector<double> d(n, 2.0), e(n - 1, -1.0);
  auto eigs = sv::tridiag_eigenvalues(d, e);  // ascending
  ASSERT_EQ(eigs.size(), static_cast<std::size_t>(n));
  for (int k = 1; k <= n; ++k) {
    const double want = 2.0 - 2.0 * std::cos(M_PI * k / (n + 1.0));
    EXPECT_NEAR(eigs[static_cast<std::size_t>(k - 1)], want, 1e-10);
  }
}

TEST(Eigen, TridiagRejectsBadSizes) {
  EXPECT_THROW((void)sv::tridiag_eigenvalues({1.0, 2.0}, {}),
               pyhpc::InvalidArgument);
}

class EigenSweep : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Ranks, EigenSweep, ::testing::ValuesIn(kRankCounts));

TEST_P(EigenSweep, PowerMethodFindsDominantEigenvalue) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    const GO n = 24;
    auto map = gl::Map::uniform(comm, n);
    auto a = gl::laplace1d(map);
    gl::Vector v(map);
    sv::EigenOptions opt;
    opt.tolerance = 1e-12;
    opt.max_iterations = 20000;
    auto res = sv::power_method(a, v, opt);
    const double want =
        2.0 - 2.0 * std::cos(M_PI * static_cast<double>(n) /
                             (static_cast<double>(n) + 1.0));
    EXPECT_TRUE(res.converged);
    EXPECT_NEAR(res.eigenvalues[0], want, 1e-6);
  });
}

TEST_P(EigenSweep, InverseIterationFindsSmallest) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    const GO n = 16;
    auto map = gl::Map::uniform(comm, n);
    auto a = gl::laplace1d(map);
    gl::Vector v(map);
    auto res = sv::inverse_iteration(a, 0.0, v);
    const double want = 2.0 - 2.0 * std::cos(M_PI / (static_cast<double>(n) + 1.0));
    EXPECT_TRUE(res.converged);
    EXPECT_NEAR(res.eigenvalues[0], want, 1e-8);
  });
}

TEST_P(EigenSweep, LanczosFindsExtremalSpectrum) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    const GO n = 40;
    auto map = gl::Map::uniform(comm, n);
    auto a = gl::laplace1d(map);
    auto res = sv::lanczos(a, 3, {}, /*subspace=*/static_cast<int>(n));
    ASSERT_GE(res.eigenvalues.size(), 3u);
    for (int k = 0; k < 3; ++k) {
      const double want =
          2.0 - 2.0 * std::cos(M_PI * (static_cast<double>(n) - k) /
                               (static_cast<double>(n) + 1.0));
      EXPECT_NEAR(res.eigenvalues[static_cast<std::size_t>(k)], want, 1e-8)
          << "eigenvalue " << k;
    }
  });
}

// ---------------------------------------------------------------------------
// Nonlinear solvers (NOX)
// ---------------------------------------------------------------------------

namespace {

// F_i(x) = x_i^3 + 2 x_i - 3 - b_i with solution x_i = 1 when b_i = 0.
// Diagonal nonlinear system -> easy analytic Jacobian.
sv::ResidualFn cubic_residual() {
  return [](const gl::Vector& x, gl::Vector& f) {
    for (LO i = 0; i < x.local_size(); ++i) {
      f[i] = x[i] * x[i] * x[i] + 2.0 * x[i] - 3.0;
    }
  };
}

sv::JacobianFn cubic_jacobian() {
  return [](const gl::Vector& x) {
    gl::Matrix j(x.map());
    for (LO i = 0; i < x.local_size(); ++i) {
      const GO g = x.map().local_to_global(i);
      j.insert_global_value(g, g, 3.0 * x[i] * x[i] + 2.0);
    }
    j.fill_complete();
    return j;
  };
}

}  // namespace

class NewtonSweep : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Ranks, NewtonSweep, ::testing::ValuesIn(kRankCounts));

TEST_P(NewtonSweep, NewtonSolvesCubic) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    auto map = gl::Map::uniform(comm, 20);
    gl::Vector x(map, 3.0);
    auto res = sv::newton_solve(cubic_residual(), cubic_jacobian(), x);
    EXPECT_TRUE(res.converged);
    EXPECT_LT(solution_error_vs_ones(x), 1e-8);
    EXPECT_LT(res.iterations, 20);
    // Quadratic-ish convergence: history decreases.
    for (std::size_t i = 1; i < res.history.size(); ++i) {
      EXPECT_LE(res.history[i], res.history[i - 1] + 1e-15);
    }
  });
}

TEST_P(NewtonSweep, JfnkMatchesNewton) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    auto map = gl::Map::uniform(comm, 20);
    gl::Vector x(map, 2.0);
    auto res = sv::jfnk_solve(cubic_residual(), x);
    EXPECT_TRUE(res.converged);
    EXPECT_LT(solution_error_vs_ones(x), 1e-7);
  });
}

TEST_P(NewtonSweep, FixedPointConvergesSlower) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    auto map = gl::Map::uniform(comm, 20);
    gl::Vector xn(map, 1.5), xf(map, 1.5);
    sv::NewtonOptions opt;
    opt.tolerance = 1e-9;
    auto newton = sv::newton_solve(cubic_residual(), cubic_jacobian(), xn, opt);
    opt.max_iterations = 2000;
    auto fixed = sv::fixed_point_solve(cubic_residual(), xf, 0.1, opt);
    EXPECT_TRUE(newton.converged);
    EXPECT_TRUE(fixed.converged);
    EXPECT_LT(newton.iterations, fixed.iterations);
  });
}

TEST(Newton, ReportsNonConvergence) {
  pc::run(1, [](pc::Communicator& comm) {
    auto map = gl::Map::uniform(comm, 5);
    // F(x) = exp(x) has no root: Newton must give up cleanly.
    sv::ResidualFn hopeless = [](const gl::Vector& x, gl::Vector& f) {
      for (LO i = 0; i < x.local_size(); ++i) f[i] = std::exp(x[i]);
    };
    sv::JacobianFn jac = [](const gl::Vector& x) {
      gl::Matrix j(x.map());
      for (LO i = 0; i < x.local_size(); ++i) {
        j.insert_global_value(x.map().local_to_global(i),
                              x.map().local_to_global(i), std::exp(x[i]));
      }
      j.fill_complete();
      return j;
    };
    gl::Vector x(map, 0.0);
    sv::NewtonOptions opt;
    opt.max_iterations = 5;
    auto res = sv::newton_solve(hopeless, jac, x, opt);
    EXPECT_FALSE(res.converged);
    EXPECT_EQ(res.iterations, 5);
  });
}

// ---------------------------------------------------------------------------
// Parameter-driven facade (factory.hpp)
// ---------------------------------------------------------------------------

TEST(SolverFactory, ParameterListDrivesEverySolver) {
  pc::run(2, [](pc::Communicator& comm) {
    auto map = gl::Map::uniform(comm, 48);
    auto a = gl::laplace1d(map);
    auto b = gl::rhs_for_ones(a);
    for (const char* solver : {"cg", "bicgstab", "gmres", "lapack", "klu"}) {
      gl::Vector x(map, 0.0);
      pyhpc::teuchos::ParameterList pl;
      pl.set("solver", solver);
      pl.sublist("krylov").set("tolerance", 1e-9);
      auto res = sv::solve(a, b, x, pl);
      EXPECT_TRUE(res.converged) << solver;
      EXPECT_LT(solution_error_vs_ones(x), 1e-5) << solver;
    }
  });
}

TEST(SolverFactory, PreconditionerSelectionFromParameters) {
  pc::run(2, [](pc::Communicator& comm) {
    auto a = gl::laplace2d(comm, 20, 20);
    auto b = gl::rhs_for_ones(a);
    pyhpc::teuchos::ParameterList plain, amg;
    plain.set("solver", "cg");
    amg.set("solver", "cg");
    amg.set("preconditioner", "amg");
    amg.sublist("amg").set("pre sweeps", 2);
    gl::Vector x0(a.domain_map(), 0.0), x1(a.domain_map(), 0.0);
    auto r0 = sv::solve(a, b, x0, plain);
    auto r1 = sv::solve(a, b, x1, amg);
    EXPECT_TRUE(r0.converged);
    EXPECT_TRUE(r1.converged);
    EXPECT_LT(r1.iterations, r0.iterations);
  });
}

TEST(SolverFactory, UnknownNamesRejected) {
  pc::run(1, [](pc::Communicator& comm) {
    auto map = gl::Map::uniform(comm, 8);
    auto a = gl::laplace1d(map);
    auto b = gl::rhs_for_ones(a);
    gl::Vector x(map, 0.0);
    pyhpc::teuchos::ParameterList pl;
    pl.set("solver", "quantum");
    EXPECT_THROW((void)sv::solve(a, b, x, pl), pyhpc::InvalidArgument);
    pyhpc::teuchos::ParameterList pl2;
    pl2.set("preconditioner", "voodoo");
    EXPECT_THROW((void)sv::solve(a, b, x, pl2), pyhpc::InvalidArgument);
  });
}

// ---------------------------------------------------------------------------
// Setup-cached solve facade (DESIGN.md §10)
// ---------------------------------------------------------------------------

#include "solvers/cached.hpp"
#include "util/setup_cache.hpp"

TEST_P(KrylovSweep, CachedSolveReusesPreconditionerSetup) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    pyhpc::util::SetupCache cache(8, "test.solvers.cache");
    auto map = gl::Map::uniform(comm, 48);
    auto a = gl::laplace1d(map);
    auto b = gl::rhs_for_ones(a);
    pyhpc::teuchos::ParameterList pl;
    pl.set("solver", "cg");
    pl.set("preconditioner", "ilu0");
    gl::Vector x1(map, 0.0), x2(map, 0.0);
    auto r1 = sv::cached_solve(cache, a, b, x1, pl);
    auto r2 = sv::cached_solve(cache, a, b, x2, pl);
    EXPECT_TRUE(r1.converged) << r1.summary();
    EXPECT_TRUE(r2.converged) << r2.summary();
    EXPECT_LT(solution_error_vs_ones(x1), 1e-6);
    EXPECT_LT(solution_error_vs_ones(x2), 1e-6);
    // One miss (the first setup), one hit (the repeat): the structure
    // key covers matrix sparsity + preconditioner configuration.
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().hits, 1u);
    // A different preconditioner configuration is a distinct key.
    pyhpc::teuchos::ParameterList pl2;
    pl2.set("solver", "cg");
    pl2.set("preconditioner", "jacobi");
    gl::Vector x3(map, 0.0);
    auto r3 = sv::cached_solve(cache, a, b, x3, pl2);
    EXPECT_TRUE(r3.converged);
    EXPECT_EQ(cache.stats().misses, 2u);
  });
}

TEST(CachedSolve, NonePreconditionerBypassesTheCache) {
  pc::run(2, [](pc::Communicator& comm) {
    pyhpc::util::SetupCache cache(4, "test.solvers.cache2");
    auto map = gl::Map::uniform(comm, 32);
    auto a = gl::laplace1d(map);
    auto b = gl::rhs_for_ones(a);
    pyhpc::teuchos::ParameterList pl;
    pl.set("solver", "cg");
    gl::Vector x(map, 0.0);
    auto res = sv::cached_solve(cache, a, b, x, pl);
    EXPECT_TRUE(res.converged);
    EXPECT_EQ(cache.stats().entries, 0u);
    EXPECT_EQ(cache.stats().misses, 0u);
  });
}
