// Tests for CrsMatrix: assembly, fill_complete structure, distributed SpMV
// against serial references, diagonal/scaling utilities, and error paths.
#include <gtest/gtest.h>

#include <numeric>

#include "comm/runner.hpp"
#include "tpetra/crs_matrix.hpp"

namespace pc = pyhpc::comm;
namespace tp = pyhpc::tpetra;

using MapT = tp::Map<>;
using MatD = tp::CrsMatrix<double>;
using VecD = tp::Vector<double>;
using LO = std::int32_t;
using GO = std::int64_t;

namespace {
const std::vector<int> kRankCounts{1, 2, 3, 4, 6};

// Assembles the 1D Laplacian stencil [-1, 2, -1] (Dirichlet) on `map`.
MatD laplace1d(const MapT& map) {
  MatD a(map);
  const GO n = map.num_global();
  for (LO i = 0; i < map.num_local(); ++i) {
    const GO g = map.local_to_global(i);
    std::vector<GO> cols;
    std::vector<double> vals;
    if (g > 0) {
      cols.push_back(g - 1);
      vals.push_back(-1.0);
    }
    cols.push_back(g);
    vals.push_back(2.0);
    if (g + 1 < n) {
      cols.push_back(g + 1);
      vals.push_back(-1.0);
    }
    a.insert_global_values(g, cols, vals);
  }
  a.fill_complete();
  return a;
}
}  // namespace

class CrsRankSweep : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Ranks, CrsRankSweep, ::testing::ValuesIn(kRankCounts));

TEST_P(CrsRankSweep, Laplace1dStructure) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    const GO n = 32;
    auto map = MapT::uniform(comm, n);
    auto a = laplace1d(map);
    EXPECT_TRUE(a.is_fill_complete());
    EXPECT_EQ(a.num_global_entries(), 3 * n - 2);
    // Row contents match the stencil.
    for (LO i = 0; i < map.num_local(); ++i) {
      const GO g = map.local_to_global(i);
      auto row = a.get_global_row(g);
      std::size_t expect = 3;
      if (g == 0 || g == n - 1) expect = 2;
      EXPECT_EQ(row.size(), expect);
      for (const auto& [col, val] : row) {
        if (col == g) {
          EXPECT_DOUBLE_EQ(val, 2.0);
        } else {
          EXPECT_DOUBLE_EQ(val, -1.0);
        }
      }
    }
  });
}

TEST_P(CrsRankSweep, SpmvMatchesSerialStencil) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    const GO n = 50;
    auto map = MapT::uniform(comm, n);
    auto a = laplace1d(map);
    VecD x(map), y(map);
    for (LO i = 0; i < map.num_local(); ++i) {
      const GO g = map.local_to_global(i);
      x[i] = static_cast<double>(g) * static_cast<double>(g);  // x = g^2
    }
    a.apply(x, y);
    // (Ax)_g = -（g-1)^2 + 2g^2 - (g+1)^2 = -2 for interior rows.
    for (LO i = 0; i < map.num_local(); ++i) {
      const GO g = map.local_to_global(i);
      double want = -2.0;
      if (g == 0) want = 2.0 * 0.0 - 1.0;                  // 2*0 - 1^2
      if (g == n - 1) {
        const double gm = static_cast<double>(n - 2);
        const double gg = static_cast<double>(n - 1);
        want = -gm * gm + 2.0 * gg * gg;
      }
      EXPECT_NEAR(y[i], want, 1e-10) << "row " << g;
    }
  });
}

TEST_P(CrsRankSweep, SpmvMatchesGatheredDenseReference) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    // Random-ish sparse matrix with deterministic entries, checked against
    // a dense serial multiply of the gathered matrix.
    const GO n = 22;
    auto map = MapT::uniform(comm, n);
    MatD a(map);
    for (LO i = 0; i < map.num_local(); ++i) {
      const GO g = map.local_to_global(i);
      for (GO c = 0; c < n; ++c) {
        if ((g * 7 + c * 3) % 5 == 0) {
          a.insert_global_value(g, c, static_cast<double>(g - c) + 0.5);
        }
      }
    }
    a.fill_complete();

    VecD x(map), y(map);
    for (LO i = 0; i < map.num_local(); ++i) {
      x[i] = 0.1 * static_cast<double>(map.local_to_global(i)) - 1.0;
    }
    a.apply(x, y);

    auto xg = x.gather_global();
    auto yg = y.gather_global();
    for (GO r = 0; r < n; ++r) {
      double want = 0.0;
      for (GO c = 0; c < n; ++c) {
        if ((r * 7 + c * 3) % 5 == 0) {
          want += (static_cast<double>(r - c) + 0.5) *
                  xg[static_cast<std::size_t>(c)];
        }
      }
      EXPECT_NEAR(yg[static_cast<std::size_t>(r)], want, 1e-10);
    }
  });
}

TEST_P(CrsRankSweep, DuplicateInsertionsAccumulate) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    auto map = MapT::uniform(comm, 8);
    MatD a(map);
    for (LO i = 0; i < map.num_local(); ++i) {
      const GO g = map.local_to_global(i);
      a.insert_global_value(g, g, 1.0);
      a.insert_global_value(g, g, 2.5);  // same entry again
    }
    a.fill_complete();
    VecD d(map);
    a.get_local_diag_copy(d);
    for (LO i = 0; i < map.num_local(); ++i) {
      EXPECT_DOUBLE_EQ(d[i], 3.5);
    }
  });
}

TEST_P(CrsRankSweep, DiagCopyLeftScaleAndFrobenius) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    const GO n = 16;
    auto map = MapT::uniform(comm, n);
    MatD a(map);
    for (LO i = 0; i < map.num_local(); ++i) {
      const GO g = map.local_to_global(i);
      a.insert_global_value(g, g, static_cast<double>(g + 1));
    }
    a.fill_complete();

    VecD d(map);
    a.get_local_diag_copy(d);
    for (LO i = 0; i < map.num_local(); ++i) {
      EXPECT_DOUBLE_EQ(d[i], static_cast<double>(map.local_to_global(i) + 1));
    }

    // Frobenius of diag(1..n): sqrt(sum k^2).
    double want = 0.0;
    for (GO k = 1; k <= n; ++k) {
      want += static_cast<double>(k) * static_cast<double>(k);
    }
    EXPECT_NEAR(a.frobenius_norm(), std::sqrt(want), 1e-10);

    // Left-scale by 1/diag -> identity.
    VecD inv(map);
    inv.reciprocal(d);
    a.left_scale(inv);
    VecD x(map, 2.0), y(map);
    a.apply(x, y);
    for (LO i = 0; i < map.num_local(); ++i) {
      EXPECT_DOUBLE_EQ(y[i], 2.0);
    }
  });
}

TEST_P(CrsRankSweep, ScaleMultipliesAllValues) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    auto map = MapT::uniform(comm, 10);
    auto a = laplace1d(map);
    a.scale(-0.5);
    VecD x(map, 1.0), y(map);
    a.apply(x, y);
    // Laplacian row sums: 0 interior, 1 at ends; scaled by -0.5.
    for (LO i = 0; i < map.num_local(); ++i) {
      const GO g = map.local_to_global(i);
      const double want = (g == 0 || g == 9) ? -0.5 : 0.0;
      EXPECT_NEAR(y[i], want, 1e-12);
    }
  });
}

TEST(Crs, InsertAfterFillCompleteThrows) {
  pc::run(1, [](pc::Communicator& comm) {
    auto map = MapT::uniform(comm, 4);
    MatD a(map);
    a.insert_global_value(0, 0, 1.0);
    a.fill_complete();
    EXPECT_THROW(a.insert_global_value(1, 1, 1.0), pyhpc::MapError);
    EXPECT_THROW(a.fill_complete(), pyhpc::MapError);
  });
}

TEST(Crs, InsertIntoForeignRowThrows) {
  pc::run(2, [](pc::Communicator& comm) {
    auto map = MapT::uniform(comm, 8);
    MatD a(map);
    const GO foreign = comm.rank() == 0 ? 7 : 0;
    EXPECT_THROW(a.insert_global_value(foreign, 0, 1.0), pyhpc::MapError);
  });
}

TEST(Crs, ColumnOutOfRangeThrows) {
  pc::run(1, [](pc::Communicator& comm) {
    auto map = MapT::uniform(comm, 4);
    MatD a(map);
    EXPECT_THROW(a.insert_global_value(0, 99, 1.0), pyhpc::InvalidArgument);
    EXPECT_THROW(a.insert_global_value(0, -1, 1.0), pyhpc::InvalidArgument);
  });
}

TEST(Crs, ApplyBeforeFillCompleteThrows) {
  pc::run(1, [](pc::Communicator& comm) {
    auto map = MapT::uniform(comm, 4);
    MatD a(map);
    VecD x(map), y(map);
    EXPECT_THROW(a.apply(x, y), pyhpc::MapError);
  });
}

TEST_P(CrsRankSweep, SpmvMatchesTripleLoopOnRandom64) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    // Regression guard for the hoisted-pointer CSR sweep in apply():
    // a deterministic pseudo-random 64x64 matrix (~25% fill) checked
    // entry-for-entry against the naive dense triple-loop reference.
    const GO n = 64;
    auto map = MapT::uniform(comm, n);
    MatD a(map);
    auto entry = [](GO r, GO c) -> double {
      const std::uint64_t h =
          (static_cast<std::uint64_t>(r) * 2654435761ull) ^
          (static_cast<std::uint64_t>(c) * 40503ull);
      if (h % 4 != 0) return 0.0;  // ~25% fill
      return static_cast<double>(static_cast<std::int64_t>(h % 2001) - 1000) /
             250.0;
    };
    for (LO i = 0; i < map.num_local(); ++i) {
      const GO g = map.local_to_global(i);
      for (GO c = 0; c < n; ++c) {
        const double v = entry(g, c);
        if (v != 0.0) a.insert_global_value(g, c, v);
      }
      a.insert_global_value(g, g, 8.0);  // keep every row non-empty
    }
    a.fill_complete();

    VecD x(map), y(map);
    for (LO i = 0; i < map.num_local(); ++i) {
      const GO g = map.local_to_global(i);
      x[i] = std::sin(static_cast<double>(g) * 0.37) + 0.25;
    }
    a.apply(x, y);

    auto xg = x.gather_global();
    auto yg = y.gather_global();
    for (GO r = 0; r < n; ++r) {
      double want = 0.0;
      for (GO c = 0; c < n; ++c) {
        double v = entry(r, c);
        if (r == c) v += 8.0;
        want += v * xg[static_cast<std::size_t>(c)];
      }
      EXPECT_NEAR(yg[static_cast<std::size_t>(r)], want, 1e-11) << "row " << r;
    }
  });
}

TEST_P(CrsRankSweep, ColMapOrdersOwnedThenGhost) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    const GO n = 24;
    auto map = MapT::uniform(comm, n);
    auto a = laplace1d(map);
    const auto& cmap = a.col_map();
    // First num_local entries mirror the row map.
    for (LO i = 0; i < map.num_local(); ++i) {
      EXPECT_EQ(cmap.local_to_global(i), map.local_to_global(i));
    }
    // Remaining entries are ghosts: not locally owned, sorted.
    GO prev = -1;
    for (LO i = map.num_local(); i < cmap.num_local(); ++i) {
      const GO g = cmap.local_to_global(i);
      EXPECT_FALSE(map.is_local_global_index(g));
      EXPECT_GT(g, prev);
      prev = g;
    }
    // 1D Laplacian ghosts: at most 2 (one per side).
    EXPECT_LE(cmap.num_local() - map.num_local(), 2);
  });
}

// ---------------------------------------------------------------------------
// Structure fingerprints and the cached Import adapter (DESIGN.md §10)
// ---------------------------------------------------------------------------

#include "tpetra/structure.hpp"
#include "util/setup_cache.hpp"

TEST_P(CrsRankSweep, StructureFingerprintIgnoresValues) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    auto map = MapT::uniform(comm, 20);
    MatD a = laplace1d(map);
    MatD b = laplace1d(map);
    b.scale(3.0);  // same sparsity, different values
    EXPECT_EQ(tp::structure_fingerprint(a), tp::structure_fingerprint(b));
  });
}

TEST_P(CrsRankSweep, StructureFingerprintSeesShapeChanges) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    auto map20 = MapT::uniform(comm, 20);
    auto map24 = MapT::uniform(comm, 24);
    EXPECT_NE(tp::structure_fingerprint(map20),
              tp::structure_fingerprint(map24));
    MatD a = laplace1d(map20);
    // Diagonal-only matrix over the same map: different sparsity.
    MatD d(map20);
    for (LO i = 0; i < map20.num_local(); ++i) {
      const GO g = map20.local_to_global(i);
      d.insert_global_value(g, g, 1.0);
    }
    d.fill_complete();
    EXPECT_NE(tp::structure_fingerprint(a), tp::structure_fingerprint(d));
  });
}

TEST_P(CrsRankSweep, CachedImportReusesThePlan) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    pyhpc::util::SetupCache cache(4, "test.tpetra.cache");
    auto owned = MapT::uniform(comm, 18);
    // Overlapping target: every rank also wants the halo of its block.
    std::vector<GO> wanted;
    for (LO i = 0; i < owned.num_local(); ++i) {
      wanted.push_back(owned.local_to_global(i));
    }
    if (!wanted.empty()) {
      if (wanted.front() > 0) wanted.insert(wanted.begin(), wanted.front() - 1);
      if (wanted.back() + 1 < owned.num_global()) {
        wanted.push_back(wanted.back() + 1);
      }
    }
    auto target = MapT::from_global_indices(comm, std::span<const GO>(wanted));
    // Identical request stream on every rank: miss once, hit afterwards
    // (the lockstep requirement documented on cached_import).
    auto p1 = tp::cached_import(cache, owned, target);
    auto p2 = tp::cached_import(cache, owned, target);
    EXPECT_EQ(p1.get(), p2.get());
    EXPECT_EQ(cache.stats().hits, 1u);
    // The cached plan actually moves data: import an owned vector into the
    // overlapped layout and check the halo values arrived.
    VecD src(owned), dst(target);
    for (LO i = 0; i < owned.num_local(); ++i) {
      src[i] = static_cast<double>(owned.local_to_global(i));
    }
    p1->apply(std::span<const double>(src.local_view()),
              std::span<double>(dst.local_view()));
    for (LO i = 0; i < target.num_local(); ++i) {
      EXPECT_DOUBLE_EQ(dst[i], static_cast<double>(target.local_to_global(i)));
    }
  });
}
