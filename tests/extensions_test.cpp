// Tests for the extension features: @jit decorator dispatch, the ODIN
// conform-strategy scope, and Isorropia matrix rebalancing.
#include <dlfcn.h>
#include <gtest/gtest.h>

#include <cstdio>

#include "comm/runner.hpp"
#include "galeri/gallery.hpp"
#include "isorropia/partition.hpp"
#include "odin/ufunc.hpp"
#include "seamless/seamless.hpp"
#include "seamless/transpile.hpp"
#include "solvers/krylov.hpp"

namespace pc = pyhpc::comm;
namespace od = pyhpc::odin;
namespace is = pyhpc::isorropia;
namespace gl = pyhpc::galeri;
namespace sm = pyhpc::seamless;
using sm::Value;
using Arr = od::DistArray<double>;

// ---------------------------------------------------------------------------
// @jit decorator (the paper's exact surface syntax, §IV.A)
// ---------------------------------------------------------------------------

TEST(JitDecorator, PaperSyntaxParses) {
  auto mod = sm::parse(
      "@jit\n"
      "def sum(it):\n"
      "    res = 0.0\n"
      "    for i in range(len(it)):\n"
      "        res += it[i]\n"
      "    return res\n");
  EXPECT_TRUE(mod.function("sum").has_decorator("jit"));
  EXPECT_FALSE(mod.function("sum").has_decorator("cached"));
}

TEST(JitDecorator, RunDispatchesDecoratedFunctionsToJit) {
  sm::Engine engine(
      "@jit\n"
      "def fast(a, b):\n"
      "    return a * b + 1\n"
      "def slow(a, b):\n"
      "    return a * b + 1\n");
  EXPECT_EQ(engine.run("fast", {Value::of(6), Value::of(7)}).as_int(), 43);
  EXPECT_EQ(engine.jit_cache_size(), 1u);  // fast was compiled
  EXPECT_EQ(engine.run("slow", {Value::of(6), Value::of(7)}).as_int(), 43);
  EXPECT_EQ(engine.jit_cache_size(), 1u);  // slow stayed interpreted
}

TEST(JitDecorator, FallsBackToVmOutsideTypedSubset) {
  // The paper's "staged and incremental approach": @jit code using dynamic
  // features still runs (through the boxed tier) instead of failing.
  sm::Engine engine(
      "@jit\n"
      "def dyn(n):\n"
      "    xs = list(n)\n"
      "    return len(xs)\n");
  EXPECT_EQ(engine.run("dyn", {Value::of(4)}).as_int(), 4);
  EXPECT_EQ(engine.jit_cache_size(), 0u);  // nothing compiled
}

TEST(JitDecorator, MultipleDecoratorsAccepted) {
  auto mod = sm::parse(
      "@cached\n"
      "@jit\n"
      "def f(x):\n"
      "    return x + 1\n");
  EXPECT_TRUE(mod.function("f").has_decorator("jit"));
  EXPECT_TRUE(mod.function("f").has_decorator("cached"));
}

TEST(JitDecorator, DecoratorSyntaxErrors) {
  EXPECT_THROW(sm::parse("@\ndef f():\n    pass\n"), pyhpc::CompileError);
  EXPECT_THROW(sm::parse("@jit x = 1\n"), pyhpc::CompileError);
}

// ---------------------------------------------------------------------------
// ConformStrategyScope (§III.D context-manager analogue)
// ---------------------------------------------------------------------------

TEST(ConformScope, OverridesOperatorStrategy) {
  pc::run(3, [](pc::Communicator& comm) {
    const od::index_t n = 24;
    auto bdist = od::Distribution::block(comm, od::Shape({n}), 0);
    auto cdist = od::Distribution::cyclic(comm, od::Shape({n}), 0);
    auto a = Arr::arange(bdist, 0.0, 1.0);
    auto b = Arr::arange(cdist, 0.0, 2.0);

    EXPECT_EQ(od::default_conform_strategy(), od::ConformStrategy::kAuto);
    {
      od::ConformStrategyScope scope(od::ConformStrategy::kLeft);
      EXPECT_EQ(od::default_conform_strategy(), od::ConformStrategy::kLeft);
      auto c = a + b;  // left operand moves -> result follows b's layout
      EXPECT_TRUE(c.dist().conformable(b.dist()));
      {
        od::ConformStrategyScope inner(od::ConformStrategy::kRight);
        auto d = a + b;  // right operand moves -> result follows a's layout
        EXPECT_TRUE(d.dist().conformable(a.dist()));
      }
      EXPECT_EQ(od::default_conform_strategy(), od::ConformStrategy::kLeft);
    }
    EXPECT_EQ(od::default_conform_strategy(), od::ConformStrategy::kAuto);

    // Values are identical whichever way the layout went.
    od::ConformStrategyScope scope(od::ConformStrategy::kRight);
    auto c = a + b;
    auto cf = c.gather();
    for (od::index_t g = 0; g < n; ++g) {
      EXPECT_DOUBLE_EQ(cf[static_cast<std::size_t>(g)],
                       3.0 * static_cast<double>(g));
    }
  });
}

// ---------------------------------------------------------------------------
// rebalance_matrix
// ---------------------------------------------------------------------------

class RebalanceMatrixSweep : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Ranks, RebalanceMatrixSweep,
                         ::testing::Values(1, 2, 3, 4));

TEST_P(RebalanceMatrixSweep, SpmvUnchangedAfterRebalance) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    const std::int64_t n = 30;
    auto a = gl::tridiag(gl::Map::uniform(comm, n), -1.0, 3.0, -0.5);
    // Move to a deliberately skewed layout.
    auto skewed = gl::Map::from_local_sizes(
        comm, comm.rank() == 0
                  ? static_cast<std::int32_t>(n) - 2 * (comm.size() - 1)
                  : 2);
    auto b = is::rebalance_matrix(a, skewed);
    EXPECT_EQ(b.num_global_entries(), a.num_global_entries());

    gl::Vector x(a.domain_map());
    x.randomize(11);
    gl::Vector y(a.range_map());
    a.apply(x, y);

    auto xb = is::rebalance(x, skewed);
    gl::Vector yb(skewed);
    b.apply(xb, yb);

    auto want = y.gather_global();
    auto got = yb.gather_global();
    for (std::int64_t g = 0; g < n; ++g) {
      EXPECT_NEAR(got[static_cast<std::size_t>(g)],
                  want[static_cast<std::size_t>(g)], 1e-13);
    }
  });
}

TEST(RebalanceMatrix, EndToEndWithPartitioner) {
  pc::run(3, [](pc::Communicator& comm) {
    // Build a matrix with wildly uneven row work, partition by nonzeros,
    // rebalance, and verify the solve still works on the new layout.
    const std::int64_t n = 48;
    auto map = gl::Map::uniform(comm, n);
    gl::Matrix a(map);
    for (std::int32_t i = 0; i < map.num_local(); ++i) {
      const std::int64_t g = map.local_to_global(i);
      a.insert_global_value(g, g, 4.0);
      // First rows are dense-ish: extra off-diagonals.
      const std::int64_t extras = g < n / 4 ? 6 : 1;
      for (std::int64_t k = 1; k <= extras; ++k) {
        const std::int64_t c = (g + k * 3) % n;
        if (c != g) a.insert_global_value(g, c, -0.1);
      }
    }
    a.fill_complete();

    auto newmap = is::partition_by_nonzeros(a);
    auto balanced = is::rebalance_matrix(a, newmap);
    auto rhs = gl::rhs_for_ones(balanced);
    gl::Vector x(newmap, 0.0);
    auto res = pyhpc::solvers::gmres_solve(balanced, rhs, x);
    EXPECT_TRUE(res.converged) << res.summary();
    gl::Vector err(newmap, 1.0);
    err.update(1.0, x, -1.0);
    EXPECT_LT(err.norm2(), 1e-5);
  });
}

// ---------------------------------------------------------------------------
// JIT module-function calls (enables composed kernels like mean = sum/len)
// ---------------------------------------------------------------------------

TEST(JitCalls, ModuleFunctionCallsCompile) {
  sm::Engine engine(
      "def square(x):\n"
      "    return x * x\n"
      "def hyp(a, b):\n"
      "    return sqrt(square(a) + square(b))\n");
  EXPECT_DOUBLE_EQ(
      engine.run_jit("hyp", {Value::of(3.0), Value::of(4.0)}).as_float(), 5.0);
  // Interpreter agreement.
  EXPECT_DOUBLE_EQ(
      engine.run_interpreted("hyp", {Value::of(3.0), Value::of(4.0)})
          .as_float(),
      5.0);
}

TEST(JitCalls, MeanComposedFromSumIsJittable) {
  sm::Engine engine(
      "def sum(it):\n"
      "    res = 0.0\n"
      "    for i in range(len(it)):\n"
      "        res += it[i]\n"
      "    return res\n"
      "def mean(it):\n"
      "    return sum(it) / len(it)\n");
  auto arr = sm::ArrayValue::owned({1.0, 2.0, 3.0, 10.0});
  EXPECT_DOUBLE_EQ(engine.run_jit("mean", {Value::of(arr)}).as_float(), 4.0);
}

TEST(JitCalls, PerSignatureCalleeSpecialization) {
  sm::Engine engine(
      "def twice(x):\n"
      "    return x + x\n"
      "def f(a, b):\n"
      "    return twice(a) + twice(b)\n");
  // int and float args produce two callee specializations under one parent.
  EXPECT_DOUBLE_EQ(
      engine.run_jit("f", {Value::of(2), Value::of(1.5)}).as_float(), 7.0);
}

TEST(JitCalls, RecursionFallsOutOfTypedSubset) {
  sm::Engine engine(
      "@jit\n"
      "def fib(n):\n"
      "    if n < 2:\n"
      "        return n\n"
      "    return fib(n - 1) + fib(n - 2)\n");
  EXPECT_THROW(engine.run_jit("fib", {Value::of(10)}), sm::NotJittable);
  // The decorator dispatch falls back and still answers correctly.
  EXPECT_EQ(engine.run("fib", {Value::of(10)}).as_int(), 55);
}

TEST(JitCalls, StaticCompilationEmitsCallees) {
  auto mod = sm::parse(
      "def square(x):\n"
      "    return x * x\n"
      "def poly(x):\n"
      "    return square(x) + 2.0 * x + 1.0\n");
  const std::string cpp =
      sm::emit_cpp(mod, "poly", {sm::JitType::kFloat}, "poly");
  EXPECT_NE(cpp.find("static double poly_c0"), std::string::npos) << cpp;
  const std::string lib = "/tmp/pyhpc_callee_emit.so";
  sm::compile_to_library(cpp, lib);
  void* handle = ::dlopen(lib.c_str(), RTLD_NOW | RTLD_LOCAL);
  ASSERT_NE(handle, nullptr);
  auto* poly = reinterpret_cast<double (*)(double)>(::dlsym(handle, "poly"));
  ASSERT_NE(poly, nullptr);
  EXPECT_DOUBLE_EQ(poly(3.0), 16.0);  // (x+1)^2
  ::dlclose(handle);
  std::remove(lib.c_str());
  std::remove((lib + ".cpp").c_str());
  std::remove((lib + ".log").c_str());
}
