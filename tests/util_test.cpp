// Tests for util: RNG determinism and distribution sanity, string helpers,
// error contracts.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "util/error.hpp"
#include "util/random.hpp"
#include "util/string_util.hpp"

namespace pu = pyhpc::util;

TEST(Random, DeterministicForSameSeedAndStream) {
  pu::Xoshiro256 a(42, 3);
  pu::Xoshiro256 b(42, 3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Random, StreamsDiffer) {
  pu::Xoshiro256 a(42, 0);
  pu::Xoshiro256 b(42, 1);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Random, DoublesInUnitInterval) {
  pu::Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Random, DoublesRoughlyUniform) {
  pu::Xoshiro256 rng(1234);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Random, IntRangeInclusive) {
  pu::Xoshiro256 rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.next_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(Random, IntRangeRejectsInverted) {
  pu::Xoshiro256 rng(5);
  EXPECT_THROW(rng.next_int(3, 1), pyhpc::InvalidArgument);
}

TEST(Random, NormalHasUnitVarianceRoughly) {
  pu::Xoshiro256 rng(77);
  const int n = 100000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.next_normal();
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Random, UniformDoublesHelperMatchesGenerator) {
  auto v = pu::uniform_doubles(9, 2, 16);
  pu::Xoshiro256 rng(9, 2);
  for (double x : v) EXPECT_EQ(x, rng.next_double());
}

TEST(StringUtil, JoinAndSplitRoundTrip) {
  std::vector<std::string> parts{"a", "bb", "", "ccc"};
  EXPECT_EQ(pu::join(parts, ","), "a,bb,,ccc");
  EXPECT_EQ(pu::split("a,bb,,ccc", ','), parts);
}

TEST(StringUtil, SplitSingleField) {
  EXPECT_EQ(pu::split("abc", ','), (std::vector<std::string>{"abc"}));
  EXPECT_EQ(pu::split("", ','), (std::vector<std::string>{""}));
}

TEST(StringUtil, Strip) {
  EXPECT_EQ(pu::strip("  hi \t\n"), "hi");
  EXPECT_EQ(pu::strip(""), "");
  EXPECT_EQ(pu::strip("   "), "");
  EXPECT_EQ(pu::strip("x"), "x");
}

TEST(StringUtil, StartsWith) {
  EXPECT_TRUE(pu::starts_with("seamless", "seam"));
  EXPECT_FALSE(pu::starts_with("odin", "odin4"));
  EXPECT_TRUE(pu::starts_with("anything", ""));
}

TEST(StringUtil, CatFormatsMixedTypes) {
  EXPECT_EQ(pu::cat("rank ", 3, " of ", 8), "rank 3 of 8");
}

TEST(Error, RequireThrowsRequestedType) {
  EXPECT_NO_THROW(pyhpc::require(true, "fine"));
  EXPECT_THROW(pyhpc::require(false, "nope"), pyhpc::InvalidArgument);
  EXPECT_THROW(pyhpc::require<pyhpc::ShapeError>(false, "bad shape"),
               pyhpc::ShapeError);
}

TEST(Error, HierarchyCatchableAsBase) {
  try {
    throw pyhpc::CommError("boom");
  } catch (const pyhpc::Error& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
}

#include "util/dense_lu.hpp"

TEST(DenseLU, SolvesKnownSystem) {
  // A = [[2,1],[1,3]], b = [5, 10] -> x = [1, 3].
  pu::DenseLU lu(2, {2.0, 1.0, 1.0, 3.0});
  auto x = lu.solve(std::vector<double>{5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
  EXPECT_NEAR(lu.det(), 5.0, 1e-12);
}

TEST(DenseLU, PivotingHandlesZeroLeadingEntry) {
  // Leading zero forces a row swap.
  pu::DenseLU lu(2, {0.0, 1.0, 1.0, 0.0});
  auto x = lu.solve(std::vector<double>{3.0, 7.0});
  EXPECT_NEAR(x[0], 7.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
  EXPECT_NEAR(lu.det(), -1.0, 1e-12);
}

TEST(DenseLU, SingularThrows) {
  EXPECT_THROW(pu::DenseLU(2, {1.0, 2.0, 2.0, 4.0}), pyhpc::NumericalError);
}

TEST(DenseLU, RandomSystemResidualSmall) {
  const std::size_t n = 20;
  pu::Xoshiro256 rng(11);
  std::vector<double> a(n * n);
  for (auto& v : a) v = rng.next_double() - 0.5;
  for (std::size_t i = 0; i < n; ++i) a[i * n + i] += 5.0;  // well-conditioned
  std::vector<double> b(n);
  for (auto& v : b) v = rng.next_double();
  pu::DenseLU lu(n, a);
  auto x = lu.solve(b);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < n; ++j) acc += a[i * n + j] * x[j];
    EXPECT_NEAR(acc, b[i], 1e-9);
  }
}

TEST(DenseLU, SizeMismatchRejected) {
  EXPECT_THROW(pu::DenseLU(3, {1.0, 2.0}), pyhpc::InvalidArgument);
  pu::DenseLU lu(1, {2.0});
  EXPECT_THROW((void)lu.solve(std::vector<double>{1.0, 2.0}),
               pyhpc::InvalidArgument);
}

// ---------------------------------------------------------------------------
// SetupCache (service-layer structure-keyed artifact store)
// ---------------------------------------------------------------------------

#include "util/setup_cache.hpp"

TEST(SetupCache, BuildOnceThenHit) {
  pu::SetupCache cache(4, "test.cache.a");
  int builds = 0;
  auto build = [&builds] {
    ++builds;
    return std::make_shared<int>(41 + builds);
  };
  EXPECT_EQ(*cache.get_or_build<int>("k", build), 42);
  EXPECT_EQ(*cache.get_or_build<int>("k", build), 42);  // cached, not 43
  EXPECT_EQ(builds, 1);
  const auto st = cache.stats();
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.entries, 1u);
}

TEST(SetupCache, LruEvictionDropsColdestEntry) {
  pu::SetupCache cache(2, "test.cache.b");
  auto mk = [](int v) { return [v] { return std::make_shared<int>(v); }; };
  (void)cache.get_or_build<int>("a", mk(1));
  (void)cache.get_or_build<int>("b", mk(2));
  (void)cache.get_or_build<int>("a", mk(0));  // refresh: a is now MRU
  (void)cache.get_or_build<int>("c", mk(3));  // evicts b, not a
  EXPECT_TRUE(cache.contains("a"));
  EXPECT_FALSE(cache.contains("b"));
  EXPECT_TRUE(cache.contains("c"));
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(SetupCache, DistinctTypesUnderDistinctKeys) {
  pu::SetupCache cache(8, "test.cache.c");
  auto i = cache.get_or_build<int>("int", [] {
    return std::make_shared<int>(7);
  });
  auto s = cache.get_or_build<std::string>("str", [] {
    return std::make_shared<std::string>("seven");
  });
  EXPECT_EQ(*i, 7);
  EXPECT_EQ(*s, "seven");
}

TEST(SetupCache, ConcurrentGetOrBuildSharesOneValue) {
  // Many threads race to build the same key; first insert wins and every
  // caller ends up sharing that value (duplicate builds allowed, counted
  // as misses — never two live artifacts for one key).
  pu::SetupCache cache(8, "test.cache.d");
  std::vector<std::thread> threads;
  std::vector<std::shared_ptr<int>> got(8);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&cache, &got, t] {
      got[static_cast<std::size_t>(t)] = cache.get_or_build<int>(
          "shared", [t] { return std::make_shared<int>(100 + t); });
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 1; t < 8; ++t) {
    EXPECT_EQ(got[static_cast<std::size_t>(t)].get(), got[0].get());
  }
  EXPECT_EQ(cache.size(), 1u);
}

TEST(SetupCache, ClearEmptiesEntriesButKeepsCounters) {
  pu::SetupCache cache(4, "test.cache.e");
  (void)cache.get_or_build<int>("x", [] { return std::make_shared<int>(1); });
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.contains("x"));
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(SetupCache, RejectsZeroCapacity) {
  EXPECT_THROW(pu::SetupCache(0), pyhpc::InvalidArgument);
}

TEST(Fingerprint, DeterministicAndOrderSensitive) {
  pu::Fingerprint a, b, c;
  a.mix(1).mix(2);
  b.mix(1).mix(2);
  c.mix(2).mix(1);
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_NE(a.digest(), c.digest());
}

TEST(Fingerprint, EmptyBytesAreSafeAndNeutralInputsDiffer) {
  pu::Fingerprint a;
  const auto before = a.digest();
  a.mix_bytes(nullptr, 0);  // empty vector's data() may be null
  EXPECT_EQ(a.digest(), before);
  pu::Fingerprint x, y;
  x.mix_bytes("ab", 2);
  y.mix_bytes("ba", 2);
  EXPECT_NE(x.digest(), y.digest());
}
