// Tests for util: RNG determinism and distribution sanity, string helpers,
// error contracts.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/error.hpp"
#include "util/random.hpp"
#include "util/string_util.hpp"

namespace pu = pyhpc::util;

TEST(Random, DeterministicForSameSeedAndStream) {
  pu::Xoshiro256 a(42, 3);
  pu::Xoshiro256 b(42, 3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Random, StreamsDiffer) {
  pu::Xoshiro256 a(42, 0);
  pu::Xoshiro256 b(42, 1);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Random, DoublesInUnitInterval) {
  pu::Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Random, DoublesRoughlyUniform) {
  pu::Xoshiro256 rng(1234);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Random, IntRangeInclusive) {
  pu::Xoshiro256 rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.next_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(Random, IntRangeRejectsInverted) {
  pu::Xoshiro256 rng(5);
  EXPECT_THROW(rng.next_int(3, 1), pyhpc::InvalidArgument);
}

TEST(Random, NormalHasUnitVarianceRoughly) {
  pu::Xoshiro256 rng(77);
  const int n = 100000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.next_normal();
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Random, UniformDoublesHelperMatchesGenerator) {
  auto v = pu::uniform_doubles(9, 2, 16);
  pu::Xoshiro256 rng(9, 2);
  for (double x : v) EXPECT_EQ(x, rng.next_double());
}

TEST(StringUtil, JoinAndSplitRoundTrip) {
  std::vector<std::string> parts{"a", "bb", "", "ccc"};
  EXPECT_EQ(pu::join(parts, ","), "a,bb,,ccc");
  EXPECT_EQ(pu::split("a,bb,,ccc", ','), parts);
}

TEST(StringUtil, SplitSingleField) {
  EXPECT_EQ(pu::split("abc", ','), (std::vector<std::string>{"abc"}));
  EXPECT_EQ(pu::split("", ','), (std::vector<std::string>{""}));
}

TEST(StringUtil, Strip) {
  EXPECT_EQ(pu::strip("  hi \t\n"), "hi");
  EXPECT_EQ(pu::strip(""), "");
  EXPECT_EQ(pu::strip("   "), "");
  EXPECT_EQ(pu::strip("x"), "x");
}

TEST(StringUtil, StartsWith) {
  EXPECT_TRUE(pu::starts_with("seamless", "seam"));
  EXPECT_FALSE(pu::starts_with("odin", "odin4"));
  EXPECT_TRUE(pu::starts_with("anything", ""));
}

TEST(StringUtil, CatFormatsMixedTypes) {
  EXPECT_EQ(pu::cat("rank ", 3, " of ", 8), "rank 3 of 8");
}

TEST(Error, RequireThrowsRequestedType) {
  EXPECT_NO_THROW(pyhpc::require(true, "fine"));
  EXPECT_THROW(pyhpc::require(false, "nope"), pyhpc::InvalidArgument);
  EXPECT_THROW(pyhpc::require<pyhpc::ShapeError>(false, "bad shape"),
               pyhpc::ShapeError);
}

TEST(Error, HierarchyCatchableAsBase) {
  try {
    throw pyhpc::CommError("boom");
  } catch (const pyhpc::Error& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
}

#include "util/dense_lu.hpp"

TEST(DenseLU, SolvesKnownSystem) {
  // A = [[2,1],[1,3]], b = [5, 10] -> x = [1, 3].
  pu::DenseLU lu(2, {2.0, 1.0, 1.0, 3.0});
  auto x = lu.solve(std::vector<double>{5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
  EXPECT_NEAR(lu.det(), 5.0, 1e-12);
}

TEST(DenseLU, PivotingHandlesZeroLeadingEntry) {
  // Leading zero forces a row swap.
  pu::DenseLU lu(2, {0.0, 1.0, 1.0, 0.0});
  auto x = lu.solve(std::vector<double>{3.0, 7.0});
  EXPECT_NEAR(x[0], 7.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
  EXPECT_NEAR(lu.det(), -1.0, 1e-12);
}

TEST(DenseLU, SingularThrows) {
  EXPECT_THROW(pu::DenseLU(2, {1.0, 2.0, 2.0, 4.0}), pyhpc::NumericalError);
}

TEST(DenseLU, RandomSystemResidualSmall) {
  const std::size_t n = 20;
  pu::Xoshiro256 rng(11);
  std::vector<double> a(n * n);
  for (auto& v : a) v = rng.next_double() - 0.5;
  for (std::size_t i = 0; i < n; ++i) a[i * n + i] += 5.0;  // well-conditioned
  std::vector<double> b(n);
  for (auto& v : b) v = rng.next_double();
  pu::DenseLU lu(n, a);
  auto x = lu.solve(b);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < n; ++j) acc += a[i * n + j] * x[j];
    EXPECT_NEAR(acc, b[i], 1e-9);
  }
}

TEST(DenseLU, SizeMismatchRejected) {
  EXPECT_THROW(pu::DenseLU(3, {1.0, 2.0}), pyhpc::InvalidArgument);
  pu::DenseLU lu(1, {2.0});
  EXPECT_THROW((void)lu.solve(std::vector<double>{1.0, 2.0}),
               pyhpc::InvalidArgument);
}
