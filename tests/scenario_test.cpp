// End-to-end scenario suite (`ctest -L scenario`): each test runs a full
// composed application — comm + odin + tpetra + isorropia + solvers — and
// checks it against an independent oracle (serial reference, exact
// element formula, or invariance under repartitioning). These are the
// acceptance gates ROADMAP item 4 calls for: a perf PR that breaks the
// composition fails here even if every per-layer test still passes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <numeric>
#include <set>
#include <string>
#include <vector>

#include "comm/runner.hpp"
#include "obs/metrics.hpp"
#include "scenarios/scenarios.hpp"
#include "util/checkpoint.hpp"

namespace pc = pyhpc::comm;
namespace sc = pyhpc::scenarios;
namespace pu = pyhpc::util;

namespace {

constexpr int kRankCounts[] = {1, 2, 4, 8};

/// Indices sorted by descending score (the "ranking" of PageRank).
std::vector<std::size_t> ranking_of(const std::vector<double>& x) {
  std::vector<std::size_t> order(x.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (x[a] != x[b]) return x[a] > x[b];
    return a < b;
  });
  return order;
}

}  // namespace

// ---------------------------------------------------------------------------
// registry
// ---------------------------------------------------------------------------

TEST(ScenarioRegistry, FourScenariosWithUniqueNames) {
  const auto all = sc::registered_scenarios();
  ASSERT_EQ(all.size(), 4u);
  std::set<std::string> names;
  for (const auto& info : all) {
    EXPECT_NE(info.name, nullptr);
    EXPECT_NE(info.summary, nullptr);
    EXPECT_FALSE(std::string(info.name).empty());
    names.insert(info.name);
  }
  EXPECT_EQ(names.size(), all.size());
  EXPECT_EQ(names.count("heat_equation"), 1u);
  EXPECT_EQ(names.count("pagerank"), 1u);
  EXPECT_EQ(names.count("tabular_analytics"), 1u);
  EXPECT_EQ(names.count("redistribution"), 1u);
}

// ---------------------------------------------------------------------------
// (a) heat equation
// ---------------------------------------------------------------------------

class HeatSweep : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Ranks, HeatSweep, ::testing::ValuesIn(kRankCounts));

TEST_P(HeatSweep, CrankNicolsonMatchesSerialReference) {
  sc::HeatOptions o;
  o.n = 96;
  o.steps = 6;
  const auto ref = sc::heat_serial_reference(o);
  pc::run(GetParam(), [&](pc::Communicator& comm) {
    const auto res = sc::run_heat(comm, o);
    EXPECT_TRUE(res.converged);
    EXPECT_EQ(res.steps_completed, o.steps);
    EXPECT_EQ(res.final_size, comm.size());
    ASSERT_EQ(res.u.size(), static_cast<std::size_t>(o.n));
    for (std::size_t i = 0; i < res.u.size(); ++i) {
      EXPECT_NEAR(res.u[i], ref[i], 1e-8) << "grid point " << i;
    }
  });
}

TEST_P(HeatSweep, BackwardEulerMatchesSerialReference) {
  sc::HeatOptions o;
  o.n = 96;
  o.steps = 6;
  o.scheme = sc::HeatScheme::kBackwardEuler;
  const auto ref = sc::heat_serial_reference(o);
  pc::run(GetParam(), [&](pc::Communicator& comm) {
    const auto res = sc::run_heat(comm, o);
    EXPECT_TRUE(res.converged);
    EXPECT_EQ(res.steps_completed, o.steps);
    ASSERT_EQ(res.u.size(), static_cast<std::size_t>(o.n));
    for (std::size_t i = 0; i < res.u.size(); ++i) {
      EXPECT_NEAR(res.u[i], ref[i], 1e-8) << "grid point " << i;
    }
  });
}

TEST(HeatScenario, DiffusionDecaysTheFieldMonotonically) {
  // Physical sanity independent of the reference: with homogeneous
  // Dirichlet walls the max principle bounds every step by the initial
  // amplitude, and energy decays.
  sc::HeatOptions o;
  o.n = 64;
  o.steps = 10;
  pc::run(4, [&](pc::Communicator& comm) {
    const auto res = sc::run_heat(comm, o);
    double max_u = 0.0, norm = 0.0;
    for (const double v : res.u) {
      max_u = std::max(max_u, std::abs(v));
      norm += v * v;
    }
    EXPECT_LT(max_u, 1.25);  // initial max ~1.06
    double norm0 = 0.0;
    for (std::int64_t g = 0; g < o.n; ++g) {
      const double x =
          static_cast<double>(g + 1) / static_cast<double>(o.n + 1);
      const double u0 = std::sin(M_PI * x) + 0.25 * std::sin(3.0 * M_PI * x);
      norm0 += u0 * u0;
    }
    EXPECT_LT(norm, norm0);
  });
}

TEST(HeatScenario, ResilientPathWithoutFaultsMatchesSerialReference) {
  sc::HeatOptions o;
  o.n = 64;
  o.steps = 4;
  o.scheme = sc::HeatScheme::kBackwardEuler;
  o.resilient = true;
  o.store = std::make_shared<pu::CheckpointStore>();
  const auto ref = sc::heat_serial_reference(o);
  pc::run(4, [&](pc::Communicator& comm) {
    const auto res = sc::run_heat(comm, o);
    EXPECT_TRUE(res.converged);
    EXPECT_EQ(res.recoveries, 0);
    EXPECT_EQ(res.final_size, 4);
    EXPECT_EQ(res.steps_completed, o.steps);
    ASSERT_EQ(res.u.size(), static_cast<std::size_t>(o.n));
    for (std::size_t i = 0; i < res.u.size(); ++i) {
      EXPECT_NEAR(res.u[i], ref[i], 1e-8) << "grid point " << i;
    }
  });
}

TEST(HeatScenario, EmitsScenarioMetrics) {
  auto& reg = pyhpc::obs::MetricsRegistry::global();
  reg.reset();
  sc::HeatOptions o;
  o.n = 32;
  o.steps = 2;
  pc::run(2, [&](pc::Communicator& comm) { sc::run_heat(comm, o); });
  EXPECT_TRUE(reg.has("scenario.heat_equation.wall_ms"));
  EXPECT_GT(reg.value("scenario.heat_equation.wall_ms"), 0.0);
  EXPECT_EQ(reg.value("scenario.heat_equation.steps"), 2.0);
  EXPECT_GT(reg.value("scenario.heat_equation.solver_iterations"), 0.0);
}

// ---------------------------------------------------------------------------
// (b) pagerank
// ---------------------------------------------------------------------------

class PageRankSweep : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Ranks, PageRankSweep,
                         ::testing::ValuesIn(kRankCounts));

TEST_P(PageRankSweep, MatchesSerialReferenceAndCachesImportPlans) {
  sc::PageRankOptions o;
  o.nodes = 300;
  const auto ref = sc::pagerank_serial_reference(o);
  pc::run(GetParam(), [&](pc::Communicator& comm) {
    const auto res = sc::run_pagerank(comm, o);
    EXPECT_TRUE(res.converged);
    ASSERT_EQ(res.x.size(), static_cast<std::size_t>(o.nodes));
    double sum = 0.0;
    for (std::size_t i = 0; i < res.x.size(); ++i) {
      EXPECT_NEAR(res.x[i], ref[i], 1e-8) << "node " << i;
      sum += res.x[i];
    }
    EXPECT_NEAR(sum, 1.0, 1e-6);  // rank mass is conserved
    // Satellite: the repeated apply loop must actually reuse the Import
    // plan — one structural miss, then a hit on every later iteration.
    EXPECT_EQ(res.import_misses, 1u);
    EXPECT_GT(res.import_hits, 0u);
    EXPECT_EQ(res.import_hits,
              static_cast<std::uint64_t>(res.iterations) - 1u);
  });
}

TEST(PageRankScenario, ImportCacheHitsSurfaceInMetrics) {
  auto& reg = pyhpc::obs::MetricsRegistry::global();
  reg.reset();
  sc::PageRankOptions o;
  o.nodes = 120;
  pc::run(4, [&](pc::Communicator& comm) { sc::run_pagerank(comm, o); });
  EXPECT_GT(reg.value("import.hits"), 0.0);
  EXPECT_GT(reg.value("import.misses"), 0.0);
}

TEST(PageRankScenario, RebalancedVariantConvergesToTheSameRanking) {
  sc::PageRankOptions o;
  o.nodes = 300;
  const auto ref = sc::pagerank_serial_reference(o);
  const auto ref_order = ranking_of(ref);
  pc::run(8, [&](pc::Communicator& comm) {
    sc::PageRankOptions balanced = o;
    balanced.rebalance = true;
    const auto res = sc::run_pagerank(comm, balanced);
    EXPECT_TRUE(res.converged);
    ASSERT_EQ(res.x.size(), static_cast<std::size_t>(o.nodes));
    for (std::size_t i = 0; i < res.x.size(); ++i) {
      EXPECT_NEAR(res.x[i], ref[i], 1e-8) << "node " << i;
    }
    // The hub ordering is well separated, so the top of the ranking must
    // be identical under the repartitioned iteration.
    const auto order = ranking_of(res.x);
    for (std::size_t i = 0; i < 10; ++i) {
      EXPECT_EQ(order[i], ref_order[i]) << "ranking position " << i;
    }
    // Repartitioning by nonzeros must not worsen the nnz imbalance the
    // hub-skewed uniform map starts with.
    EXPECT_LE(res.imbalance_after, res.imbalance_before + 1e-9);
  });
}

TEST(PageRankScenario, HubSkewYieldsRealImbalanceAtEightRanks) {
  pc::run(8, [&](pc::Communicator& comm) {
    sc::PageRankOptions o;
    o.nodes = 300;
    const auto res = sc::run_pagerank(comm, o);
    // Preferential attachment concentrates in-links (matrix rows) on the
    // low nodes owned by rank 0 — the imbalance must be visible, or the
    // scenario isn't stressing what it claims to stress.
    EXPECT_GT(res.imbalance_before, 1.1);
  });
}

// ---------------------------------------------------------------------------
// (c) tabular analytics
// ---------------------------------------------------------------------------

class AnalyticsSweep : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Ranks, AnalyticsSweep,
                         ::testing::ValuesIn(kRankCounts));

TEST_P(AnalyticsSweep, GroupByAggregateMatchesSerialReferenceExactly) {
  sc::AnalyticsOptions o;
  const auto ref = sc::analytics_serial_reference(o);
  ASSERT_FALSE(ref.groups.empty());
  pc::run(GetParam(), [&](pc::Communicator& comm) {
    const auto res = sc::run_analytics(comm, o);
    EXPECT_EQ(res.rows_kept, ref.rows_kept);
    ASSERT_EQ(res.groups.size(), ref.groups.size());
    for (std::size_t i = 0; i < res.groups.size(); ++i) {
      // Amounts are integer-valued, so every aggregate is exact.
      EXPECT_EQ(res.groups[i].key, ref.groups[i].key);
      EXPECT_EQ(res.groups[i].count, ref.groups[i].count);
      EXPECT_EQ(res.groups[i].sum, ref.groups[i].sum);
      EXPECT_EQ(res.groups[i].min, ref.groups[i].min);
      EXPECT_EQ(res.groups[i].max, ref.groups[i].max);
    }
  });
}

TEST_P(AnalyticsSweep, SkewedGenerationRebalancesToTheSameAnswer) {
  sc::AnalyticsOptions o;
  o.skewed = true;
  const auto ref = sc::analytics_serial_reference(o);
  pc::run(GetParam(), [&](pc::Communicator& comm) {
    const auto res = sc::run_analytics(comm, o);
    EXPECT_EQ(res.rows_kept, ref.rows_kept);
    ASSERT_EQ(res.groups.size(), ref.groups.size());
    for (std::size_t i = 0; i < res.groups.size(); ++i) {
      EXPECT_EQ(res.groups[i].key, ref.groups[i].key);
      EXPECT_EQ(res.groups[i].count, ref.groups[i].count);
      EXPECT_EQ(res.groups[i].sum, ref.groups[i].sum);
    }
  });
}

TEST(AnalyticsScenario, FilterThresholdPrunesRows) {
  sc::AnalyticsOptions keep_all;
  keep_all.min_amount = 0.0;
  sc::AnalyticsOptions strict;
  strict.min_amount = 400.0;
  const auto all = sc::analytics_serial_reference(keep_all);
  const auto few = sc::analytics_serial_reference(strict);
  EXPECT_EQ(all.rows_kept, keep_all.events);
  EXPECT_LT(few.rows_kept, all.rows_kept);
  EXPECT_GT(few.rows_kept, 0);
  pc::run(3, [&](pc::Communicator& comm) {
    EXPECT_EQ(sc::run_analytics(comm, strict).rows_kept, few.rows_kept);
  });
}

// ---------------------------------------------------------------------------
// (d) redistribution stress
// ---------------------------------------------------------------------------

class RedistSweep : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Ranks, RedistSweep,
                         ::testing::Values(1, 2, 3, 4, 7, 8));

TEST_P(RedistSweep, RoundTripThroughEveryLayoutIsElementExact) {
  pc::run(GetParam(), [&](pc::Communicator& comm) {
    const auto res = sc::run_redistribution(comm, sc::RedistOptions{});
    EXPECT_TRUE(res.exact);
    EXPECT_EQ(res.hops, 9);
    if (comm.size() > 1) {
      EXPECT_GT(res.elements_moved, 0);
    } else {
      EXPECT_EQ(res.elements_moved, 0);
    }
  });
}

TEST_P(RedistSweep, TinyArraysWithEmptyLocalsSurviveTheRoundTrip) {
  // n < p leaves some ranks empty in the block legs; the skewed explicit
  // leg produces zero-size blocks even at moderate n.
  sc::RedistOptions o;
  o.n = 3;
  o.block = 2;
  o.rows = 2;
  o.cols = 2;
  pc::run(GetParam(), [&](pc::Communicator& comm) {
    const auto res = sc::run_redistribution(comm, o);
    EXPECT_TRUE(res.exact);
    EXPECT_EQ(res.hops, 9);
  });
}
