// Fault-injection and failure-containment tests: deterministic drop /
// delay / duplicate / corrupt / kill-rank injection, receive deadlines,
// the deadlock watchdog, and the hardened ODIN driver protocol
// (seq/ack/retry, WorkerLostError). Registered under the `faults` CTest
// label: `ctest -L faults`.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "comm/config.hpp"
#include "comm/fault.hpp"
#include "comm/runner.hpp"
#include "obs/metrics.hpp"
#include "odin/driver.hpp"
#include "util/error.hpp"

namespace pc = pyhpc::comm;
namespace od = pyhpc::odin;

using namespace std::chrono_literals;

namespace {

pc::CommConfig config_with(std::shared_ptr<pc::FaultInjector> injector) {
  pc::CommConfig cfg;
  cfg.injector = std::move(injector);
  return cfg;
}

}  // namespace

// ---------------------------------------------------------------------------
// Receive deadlines
// ---------------------------------------------------------------------------

TEST(RecvTimeout, ExplicitDeadlineRaisesAndCounts) {
  pc::run(2, [](pc::Communicator& comm) {
    if (comm.rank() != 0) return;  // rank 1 never sends
    EXPECT_THROW((void)comm.recv_value_within<int>(60ms, 1, 7),
                 pyhpc::RecvTimeoutError);
    EXPECT_EQ(comm.stats().timeouts, 1u);
  });
}

TEST(RecvTimeout, ConfigDefaultDeadlineAppliesToPlainRecv) {
  pc::CommConfig cfg;
  cfg.recv_timeout = 60ms;
  EXPECT_THROW(pc::run(2, cfg,
                       [](pc::Communicator& comm) {
                         if (comm.rank() != 0) return;
                         (void)comm.recv_value<int>(1, 7);
                       }),
               pyhpc::RecvTimeoutError);
}

TEST(RecvTimeout, ProbeHonoursDeadline) {
  pc::CommConfig cfg;
  cfg.recv_timeout = 60ms;
  EXPECT_THROW(pc::run(2, cfg,
                       [](pc::Communicator& comm) {
                         if (comm.rank() != 0) return;
                         (void)comm.probe(1, 7);
                       }),
               pyhpc::RecvTimeoutError);
}

// ---------------------------------------------------------------------------
// Fault injection: drop / duplicate / corrupt / delay
// ---------------------------------------------------------------------------

TEST(FaultInjection, DropSwallowsTheMessage) {
  auto inj = std::make_shared<pc::FaultInjector>(/*seed=*/1);
  pc::FaultRule rule;
  rule.kind = pc::FaultKind::kDrop;
  rule.source = 1;
  rule.dest = 0;
  rule.tag = 5;
  inj->add_rule(rule);
  pc::run(2, config_with(inj), [](pc::Communicator& comm) {
    if (comm.rank() == 1) {
      comm.send_value<int>(42, 0, 5);
      comm.send_value<int>(43, 0, 6);  // different tag: unaffected
      return;
    }
    EXPECT_EQ(comm.recv_value<int>(1, 6), 43);
    EXPECT_THROW((void)comm.recv_value_within<int>(80ms, 1, 5),
                 pyhpc::RecvTimeoutError);
  });
  EXPECT_EQ(inj->counts().drops, 1u);
}

TEST(FaultInjection, DuplicateDeliversTwice) {
  auto inj = std::make_shared<pc::FaultInjector>(1);
  pc::FaultRule rule;
  rule.kind = pc::FaultKind::kDuplicate;
  rule.source = 1;
  rule.dest = 0;
  rule.tag = 6;
  inj->add_rule(rule);
  pc::run(2, config_with(inj), [](pc::Communicator& comm) {
    if (comm.rank() == 1) {
      comm.send_value<int>(7, 0, 6);
      return;
    }
    EXPECT_EQ(comm.recv_value<int>(1, 6), 7);
    EXPECT_EQ(comm.recv_value<int>(1, 6), 7);  // the injected copy
  });
  EXPECT_EQ(inj->counts().duplicates, 1u);
}

TEST(FaultInjection, CorruptionIsDetectedNotDecoded) {
  auto inj = std::make_shared<pc::FaultInjector>(1);
  pc::FaultRule rule;
  rule.kind = pc::FaultKind::kCorrupt;
  rule.source = 1;
  rule.dest = 0;
  rule.tag = 5;
  inj->add_rule(rule);
  pc::run(2, config_with(inj), [](pc::Communicator& comm) {
    if (comm.rank() == 1) {
      comm.send_value<double>(3.25, 0, 5);
      return;
    }
    EXPECT_THROW((void)comm.recv_value<double>(1, 5),
                 pyhpc::CommIntegrityError);
    EXPECT_EQ(comm.stats().corruption_detected, 1u);
  });
  EXPECT_EQ(inj->counts().corruptions, 1u);
}

TEST(FaultInjection, DelayStallsButDelivers) {
  auto inj = std::make_shared<pc::FaultInjector>(1);
  pc::FaultRule rule;
  rule.kind = pc::FaultKind::kDelay;
  rule.source = 1;
  rule.dest = 0;
  rule.tag = 5;
  rule.delay = 50ms;
  inj->add_rule(rule);
  pc::run(2, config_with(inj), [](pc::Communicator& comm) {
    if (comm.rank() == 1) {
      comm.send_value<int>(9, 0, 5);
      return;
    }
    EXPECT_EQ(comm.recv_value<int>(1, 5), 9);
  });
  EXPECT_EQ(inj->counts().delays, 1u);
}

TEST(FaultInjection, ProbabilityAndSkipAreDeterministic) {
  // Same seed, same traffic -> bit-identical fault pattern.
  pc::FaultCounts first;
  for (int trial = 0; trial < 2; ++trial) {
    auto inj = std::make_shared<pc::FaultInjector>(/*seed=*/99);
    pc::FaultRule rule;
    rule.kind = pc::FaultKind::kDrop;
    rule.source = 1;
    rule.dest = 0;
    rule.tag = 3;
    rule.probability = 0.5;
    rule.skip_first = 4;
    inj->add_rule(rule);
    pc::run(2, config_with(inj), [](pc::Communicator& comm) {
      if (comm.rank() == 1) {
        for (int i = 0; i < 40; ++i) comm.send_value<int>(i, 0, 3);
        comm.send_value<int>(-1, 0, 4);  // end marker, unaffected tag
        return;
      }
      int received = 0;
      for (;;) {
        auto st = comm.probe(1, pc::kAnyTag);
        if (st.tag == 4) break;
        (void)comm.recv_value<int>(1, 3);
        ++received;
      }
      EXPECT_GE(received, 4);  // skip_first messages always arrive
      EXPECT_LT(received, 40);  // some were dropped
    });
    if (trial == 0) {
      first = inj->counts();
      EXPECT_GT(first.drops, 0u);
    } else {
      EXPECT_EQ(inj->counts().drops, first.drops);
    }
  }
}

// ---------------------------------------------------------------------------
// Kill-rank containment
// ---------------------------------------------------------------------------

TEST(KillRank, DeathIsContainedAndObservable) {
  auto inj = std::make_shared<pc::FaultInjector>(1);
  pc::FaultRule rule;
  rule.kind = pc::FaultKind::kKillRank;
  rule.source = 1;
  rule.dest = 0;
  rule.tag = 9;
  rule.skip_first = 3;  // kill rank 1 on its 4th message
  rule.max_applications = 1;
  rule.victim = 1;
  inj->add_rule(rule);
  // The run completes without throwing: rank 1's death is contained.
  pc::run(2, config_with(inj), [](pc::Communicator& comm) {
    if (comm.rank() == 1) {
      // Dies on the 4th send: either RankKilledError surfaces on a later
      // send or the loop just ends; the runner swallows the death.
      for (int i = 0; i < 10; ++i) {
        comm.send_value<int>(i, 0, 9);
        std::this_thread::sleep_for(1ms);
      }
      return;
    }
    for (int i = 0; i < 3; ++i) EXPECT_EQ(comm.recv_value<int>(1, 9), i);
    // The 4th message went down with the rank; nothing more can arrive
    // from it, and the receive fails fast on the corpse instead of
    // waiting out its deadline (same semantics probe/iprobe always had).
    EXPECT_THROW((void)comm.recv_value_within<int>(150ms, 1, 9),
                 pyhpc::PeerKilledError);
    EXPECT_TRUE(comm.rank_dead(1));
  });
  EXPECT_EQ(inj->counts().kills, 1u);
}

// ---------------------------------------------------------------------------
// Deadlock watchdog
// ---------------------------------------------------------------------------

TEST(DeadlockWatchdog, CrossRecvCycleAbortsWithReport) {
  pc::CommConfig cfg;
  cfg.watchdog_poll = 40ms;
  try {
    pc::run(3, cfg, [](pc::Communicator& comm) {
      // Classic cycle: everyone receives from the next rank, nobody sends.
      (void)comm.recv_value<int>((comm.rank() + 1) % comm.size(), 11);
    });
    FAIL() << "expected DeadlockError";
  } catch (const pyhpc::DeadlockError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("deadlock detected"), std::string::npos) << what;
    EXPECT_NE(what.find("rank 0 waits on (source 1, tag 11)"),
              std::string::npos)
        << what;
    EXPECT_NE(what.find("rank 2 waits on (source 0, tag 11)"),
              std::string::npos)
        << what;
  }
}

TEST(DeadlockWatchdog, FinishedRanksAppearInReport) {
  pc::CommConfig cfg;
  cfg.watchdog_poll = 40ms;
  try {
    pc::run(2, cfg, [](pc::Communicator& comm) {
      if (comm.rank() == 1) return;  // exits without ever sending
      (void)comm.recv_value<int>(1, 3);
    });
    FAIL() << "expected DeadlockError";
  } catch (const pyhpc::DeadlockError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("rank 0 waits on (source 1, tag 3)"),
              std::string::npos)
        << what;
    EXPECT_NE(what.find("rank 1: finished"), std::string::npos) << what;
  }
}

TEST(DeadlockWatchdog, DoesNotFireOnHealthyTraffic) {
  pc::CommConfig cfg;
  cfg.watchdog_poll = 20ms;
  // Slow ping-pong: ranks block alternately well past several watchdog
  // polls, but a deadline-free deadlock never exists.
  pc::run(2, cfg, [](pc::Communicator& comm) {
    for (int i = 0; i < 4; ++i) {
      if (comm.rank() == 0) {
        comm.send_value<int>(i, 1, 2);
        std::this_thread::sleep_for(30ms);
        EXPECT_EQ(comm.recv_value<int>(1, 2), i);
      } else {
        EXPECT_EQ(comm.recv_value<int>(0, 2), i);
        std::this_thread::sleep_for(30ms);
        comm.send_value<int>(i, 0, 2);
      }
    }
  });
}

// ---------------------------------------------------------------------------
// Mailbox byte accounting
// ---------------------------------------------------------------------------

TEST(MailboxAccounting, HighWaterMarkReachesStats) {
  const auto stats = pc::run_with_stats(2, [](pc::Communicator& comm) {
    if (comm.rank() == 1) {
      std::vector<double> chunk(32, 1.0);  // 256 B per message
      for (int i = 0; i < 5; ++i) {
        comm.send(std::span<const double>(chunk), 0, 4);
      }
      return;
    }
    // Wait until all five messages are buffered, observing queued_bytes().
    while (comm.queued_bytes() < 5 * 32 * sizeof(double)) {
      std::this_thread::sleep_for(1ms);
    }
    for (int i = 0; i < 5; ++i) (void)comm.recv_vector<double>(1, 4);
    EXPECT_EQ(comm.queued_bytes(), 0u);
  });
  EXPECT_GE(stats.mailbox_highwater_bytes, 5u * 32u * sizeof(double));
}

// ---------------------------------------------------------------------------
// Hardened ODIN driver protocol
// ---------------------------------------------------------------------------

namespace {

od::DriverOptions fast_driver_options() {
  od::DriverOptions opts;
  opts.ack_timeout = 60ms;
  opts.max_retries = 12;
  opts.reply_timeout = 1000ms;
  return opts;
}

}  // namespace

TEST(DriverFaults, HundredOpsCompleteThroughFivePercentDrops) {
  auto inj = std::make_shared<pc::FaultInjector>(/*seed=*/2026);
  pc::FaultRule rule;
  rule.kind = pc::FaultKind::kDrop;
  rule.source = 0;  // driver -> worker control payloads only
  rule.tag = od::kControlTag;
  rule.probability = 0.05;
  inj->add_rule(rule);
  const auto stats =
      pc::run_with_stats(4, config_with(inj), [](pc::Communicator& comm) {
        od::DriverContext ctx(comm, fast_driver_options());
        if (!ctx.is_driver()) {
          ctx.worker_loop();
          return;
        }
        // 100 ops: one create + 99 chained axpys (v <- v + ones).
        const std::int64_t n = 300;
        const int ones = ctx.create_full(n, 1.0);
        int cur = ones;
        for (int i = 0; i < 99; ++i) cur = ctx.axpy(1.0, cur, ones);
        // Every element is exactly 100.0 iff no op was lost.
        EXPECT_NEAR(ctx.reduce_sum(cur), 100.0 * static_cast<double>(n),
                    1e-9);
        ctx.shutdown();
      });
  EXPECT_GT(inj->counts().drops, 0u);
  EXPECT_GT(stats.retries, 0u);
  EXPECT_GT(stats.drops_detected, 0u);
  EXPECT_EQ(stats.retries, stats.drops_detected);
}

TEST(DriverFaults, CorruptedControlPayloadsAreDiscardedAndRetried) {
  auto inj = std::make_shared<pc::FaultInjector>(7);
  pc::FaultRule rule;
  rule.kind = pc::FaultKind::kCorrupt;
  rule.source = 0;
  rule.tag = od::kControlTag;
  rule.probability = 0.1;
  inj->add_rule(rule);
  const auto stats =
      pc::run_with_stats(3, config_with(inj), [](pc::Communicator& comm) {
        od::DriverContext ctx(comm, fast_driver_options());
        if (!ctx.is_driver()) {
          ctx.worker_loop();
          return;
        }
        const std::int64_t n = 100;
        const int x = ctx.create_full(n, 2.0);
        int cur = x;
        for (int i = 0; i < 40; ++i) cur = ctx.unary("sqrt", cur);
        // 2^(1/2^40) ~= 1.0; the exact value matters less than that every
        // op executed exactly once on every worker.
        EXPECT_NEAR(ctx.reduce_sum(cur), static_cast<double>(n), 1e-6);
        ctx.shutdown();
      });
  EXPECT_GT(inj->counts().corruptions, 0u);
  EXPECT_GT(stats.corruption_detected, 0u);
  EXPECT_GT(stats.retries, 0u);
}

TEST(DriverFaults, DuplicatedPayloadsExecuteOnce) {
  auto inj = std::make_shared<pc::FaultInjector>(5);
  pc::FaultRule rule;
  rule.kind = pc::FaultKind::kDuplicate;
  rule.source = 0;
  rule.tag = od::kControlTag;
  rule.probability = 0.2;
  inj->add_rule(rule);
  pc::run(3, config_with(inj), [](pc::Communicator& comm) {
    od::DriverContext ctx(comm, fast_driver_options());
    if (!ctx.is_driver()) {
      ctx.worker_loop();
      return;
    }
    const std::int64_t n = 120;
    const int ones = ctx.create_full(n, 1.0);
    int cur = ones;
    // axpy is not idempotent: if a duplicate executed twice the sum would
    // drift from the exact expected value.
    for (int i = 0; i < 30; ++i) cur = ctx.axpy(1.0, cur, ones);
    EXPECT_NEAR(ctx.reduce_sum(cur), 31.0 * static_cast<double>(n), 1e-9);
    ctx.shutdown();
  });
  EXPECT_GT(inj->counts().duplicates, 0u);
}

TEST(DriverFaults, WorkerDeathMidBatchRaisesWorkerLost) {
  auto inj = std::make_shared<pc::FaultInjector>(1);
  pc::FaultRule rule;
  rule.kind = pc::FaultKind::kKillRank;
  rule.source = 0;
  rule.dest = 2;
  rule.tag = od::kControlTag;
  rule.skip_first = 2;  // worker rank 2 dies on the third payload
  rule.max_applications = 1;
  inj->add_rule(rule);
  try {
    pc::run(4, config_with(inj), [](pc::Communicator& comm) {
      od::DriverContext ctx(comm, fast_driver_options());
      if (!ctx.is_driver()) {
        ctx.worker_loop();
        return;
      }
      const int a = ctx.create_full(90, 1.0);
      const int b = ctx.create_full(90, 2.0);
      int cur = a;
      for (int i = 0; i < 10; ++i) {
        cur = ctx.axpy(1.0, cur, b);
        (void)ctx.reduce_sum(cur);
      }
      FAIL() << "expected WorkerLostError";
    });
    FAIL() << "expected WorkerLostError to propagate out of run()";
  } catch (const pyhpc::WorkerLostError& e) {
    EXPECT_NE(std::string(e.what()).find("worker rank 2"), std::string::npos)
        << e.what();
  }
  EXPECT_EQ(inj->counts().kills, 1u);
}

TEST(DriverFaults, ShutdownReportsDeadWorkerButReachesLiveOnes) {
  auto inj = std::make_shared<pc::FaultInjector>(1);
  pc::FaultRule rule;
  rule.kind = pc::FaultKind::kKillRank;
  rule.source = 0;
  rule.dest = 1;
  rule.tag = od::kControlTag;
  rule.skip_first = 1;
  rule.max_applications = 1;
  inj->add_rule(rule);
  try {
    pc::run(3, config_with(inj), [](pc::Communicator& comm) {
      od::DriverContext ctx(comm, fast_driver_options());
      if (!ctx.is_driver()) {
        ctx.worker_loop();
        return;
      }
      (void)ctx.create_full(50, 1.0);  // payload 1: delivered everywhere
      try {
        (void)ctx.create_full(50, 2.0);  // payload 2 kills rank 1
      } catch (const pyhpc::WorkerLostError&) {
        // Expected on the ack wait; shutdown must still work for rank 2.
      }
      ctx.shutdown();
    });
    FAIL() << "expected WorkerLostError from shutdown";
  } catch (const pyhpc::WorkerLostError& e) {
    EXPECT_NE(std::string(e.what()).find("worker rank 1"), std::string::npos)
        << e.what();
  }
}

TEST(DriverFaults, LegacyModeStillWorksUnchanged) {
  pc::run(3, [](pc::Communicator& comm) {
    od::DriverContext ctx(comm);  // fire-and-forget control plane
    if (!ctx.is_driver()) {
      ctx.worker_loop();
      return;
    }
    const int x = ctx.create_full(60, 3.0);
    EXPECT_NEAR(ctx.reduce_sum(x), 180.0, 1e-9);
    ctx.shutdown();
  });
}

TEST(DriverFaults, CombinedDuplicateAndCorruptScheduleStaysExact) {
  // Duplicate and corrupt rules active at once: dedup (seq numbers) and
  // integrity retries must compose — every op still executes exactly once.
  auto inj = std::make_shared<pc::FaultInjector>(31);
  pc::FaultRule dup;
  dup.kind = pc::FaultKind::kDuplicate;
  dup.source = 0;
  dup.tag = od::kControlTag;
  dup.probability = 0.2;
  inj->add_rule(dup);
  pc::FaultRule corrupt;
  corrupt.kind = pc::FaultKind::kCorrupt;
  corrupt.source = 0;
  corrupt.tag = od::kControlTag;
  corrupt.probability = 0.1;
  inj->add_rule(corrupt);
  const auto stats =
      pc::run_with_stats(4, config_with(inj), [](pc::Communicator& comm) {
        od::DriverContext ctx(comm, fast_driver_options());
        if (!ctx.is_driver()) {
          ctx.worker_loop();
          return;
        }
        const std::int64_t n = 240;
        const int ones = ctx.create_full(n, 1.0);
        int cur = ones;
        // Non-idempotent chain: a double-executed duplicate or a silently
        // accepted corruption would shift the exact sum.
        for (int i = 0; i < 50; ++i) cur = ctx.axpy(1.0, cur, ones);
        EXPECT_NEAR(ctx.reduce_sum(cur), 51.0 * static_cast<double>(n), 1e-9);
        ctx.shutdown();
      });
  EXPECT_GT(inj->counts().duplicates, 0u);
  EXPECT_GT(inj->counts().corruptions, 0u);
  EXPECT_GT(stats.corruption_detected, 0u);
  EXPECT_GT(stats.retries, 0u);
}

TEST(DriverFaults, WorkerDeathUnderCombinedScheduleStillRaisesWorkerLost) {
  // The WorkerLostError path must not be masked by concurrent duplicate
  // and corrupt noise: retries on garbage must still conclude "dead", and
  // dedup must not mistake the final retry burst for progress.
  auto inj = std::make_shared<pc::FaultInjector>(17);
  pc::FaultRule dup;
  dup.kind = pc::FaultKind::kDuplicate;
  dup.source = 0;
  dup.tag = od::kControlTag;
  dup.probability = 0.25;
  inj->add_rule(dup);
  pc::FaultRule corrupt;
  corrupt.kind = pc::FaultKind::kCorrupt;
  corrupt.source = 0;
  corrupt.tag = od::kControlTag;
  corrupt.probability = 0.15;
  inj->add_rule(corrupt);
  pc::FaultRule kill;
  kill.kind = pc::FaultKind::kKillRank;
  kill.source = 0;
  kill.dest = 2;
  kill.tag = od::kControlTag;
  kill.skip_first = 4;  // worker rank 2 dies on the fifth control payload
  kill.max_applications = 1;
  inj->add_rule(kill);
  try {
    pc::run(4, config_with(inj), [](pc::Communicator& comm) {
      od::DriverContext ctx(comm, fast_driver_options());
      if (!ctx.is_driver()) {
        ctx.worker_loop();
        return;
      }
      const int ones = ctx.create_full(80, 1.0);
      int cur = ones;
      for (int i = 0; i < 20; ++i) {
        cur = ctx.axpy(1.0, cur, ones);
        (void)ctx.reduce_sum(cur);
      }
      FAIL() << "expected WorkerLostError";
    });
    FAIL() << "expected WorkerLostError to propagate out of run()";
  } catch (const pyhpc::WorkerLostError& e) {
    EXPECT_NE(std::string(e.what()).find("worker rank 2"), std::string::npos)
        << e.what();
  }
  EXPECT_EQ(inj->counts().kills, 1u);
}

// ---------------------------------------------------------------------------
// Batch guard: begin_batch/flush_batch exception safety (PR 8 bugfix)
// ---------------------------------------------------------------------------

TEST(DriverBatchGuard, AbandonedBatchIsDiscardedOnUnwind) {
  // Pre-fix, a throw between begin_batch and flush_batch left the queued
  // messages buffered AND batching mode on: the stale messages shipped out
  // of order with the next unrelated traffic. Here the abandoned message
  // is a kFree of a live array — if it leaked into the next flush, the
  // reduce below would run on a destroyed segment instead of summing 60.
  pc::run(3, [](pc::Communicator& comm) {
    od::DriverContext ctx(comm, fast_driver_options());
    if (!ctx.is_driver()) {
      ctx.worker_loop();
      return;
    }
    const int keep = ctx.create_full(60, 1.0);
    try {
      od::BatchGuard guard(ctx);
      ctx.free_array(keep);  // queued, not yet shipped
      throw std::runtime_error("client failure mid-batch");
      // guard.flush() is never reached.
    } catch (const std::runtime_error&) {
    }
    EXPECT_FALSE(ctx.batching());
    const int doubled = ctx.axpy(1.0, keep, keep);
    EXPECT_NEAR(ctx.reduce_sum(keep), 60.0, 1e-9);
    EXPECT_NEAR(ctx.reduce_sum(doubled), 120.0, 1e-9);
    ctx.shutdown();
  });
}

TEST(DriverBatchGuard, FlushShipsExactlyOnceAndIsIdempotent) {
  pc::run(3, [](pc::Communicator& comm) {
    od::DriverContext ctx(comm, fast_driver_options());
    if (!ctx.is_driver()) {
      ctx.worker_loop();
      return;
    }
    int sum_id = -1;
    {
      od::BatchGuard guard(ctx);
      const int a = ctx.create_full(50, 2.0);
      const int b = ctx.create_full(50, 3.0);
      sum_id = ctx.axpy(1.0, a, b);
      EXPECT_EQ(ctx.payloads_sent(), 0u);  // everything still queued
      guard.flush();
      guard.flush();  // idempotent: no second payload
      EXPECT_EQ(ctx.payloads_sent(), 2u);  // one payload x two workers
    }
    EXPECT_NEAR(ctx.reduce_sum(sum_id), 250.0, 1e-9);
    ctx.shutdown();
  });
}

// ---------------------------------------------------------------------------
// Driver epochs: fresh contexts over a reused comm (PR 8 bugfix)
// ---------------------------------------------------------------------------

TEST(DriverFaults, FreshDriverEpochNotPoisonedByStaleDuplicates) {
  // An injected duplicate of the FIRST context's shutdown payload stays in
  // the worker's mailbox after its loop exits. Pre-fix, the SECOND
  // DriverContext's worker loop received that stale payload first, saw a
  // sequence number above its fresh last_seq_, and executed it — a stale
  // kShutdown that killed the new worker loop before the new driver's
  // payloads arrived (and for non-shutdown ops, silently bumped last_seq_
  // so the new driver's early payloads were re-acked WITHOUT executing).
  // Post-fix the payload carries epoch 0, the new context runs epoch 1,
  // and the worker discards it without touching its dedup state.
  auto inj = std::make_shared<pc::FaultInjector>(11);
  pc::FaultRule dup;
  dup.kind = pc::FaultKind::kDuplicate;
  dup.source = 0;
  dup.dest = 1;
  dup.tag = od::kControlTag;
  dup.skip_first = 1;       // payload 1 (create) passes clean...
  dup.max_applications = 1; // ...payload 2 (shutdown) is duplicated
  inj->add_rule(dup);
  pc::run(2, config_with(inj), [](pc::Communicator& comm) {
    od::DriverOptions gen0 = fast_driver_options();
    gen0.epoch = 0;
    od::DriverContext ctx1(comm, gen0);
    if (!ctx1.is_driver()) {
      ctx1.worker_loop();
    } else {
      (void)ctx1.create_full(40, 1.0);
      ctx1.shutdown();
    }

    // Same comm, next driver generation. The stale duplicate of the
    // epoch-0 shutdown is still queued on the worker.
    od::DriverOptions gen1 = fast_driver_options();
    gen1.epoch = 1;
    od::DriverContext ctx2(comm, gen1);
    if (!ctx2.is_driver()) {
      ctx2.worker_loop();
      return;
    }
    const int x = ctx2.create_full(40, 2.0);
    const int y = ctx2.axpy(3.0, x, x);  // 3*2 + 2 = 8 per element
    EXPECT_NEAR(ctx2.reduce_sum(x), 80.0, 1e-9);
    EXPECT_NEAR(ctx2.reduce_sum(y), 320.0, 1e-9);
    ctx2.shutdown();
  });
  EXPECT_EQ(inj->counts().duplicates, 1u);
  EXPECT_GE(pyhpc::obs::MetricsRegistry::global().value(
                "driver.stale_epoch_payloads"),
            1.0);
}

TEST(DriverFaults, SequentialEpochsOverOneCommStayExact) {
  // Three driver generations over one comm, each with injected duplicates
  // on the control tag: per-epoch sequence namespaces keep every
  // generation's dedup independent.
  auto inj = std::make_shared<pc::FaultInjector>(23);
  pc::FaultRule dup;
  dup.kind = pc::FaultKind::kDuplicate;
  dup.source = 0;
  dup.tag = od::kControlTag;
  dup.probability = 0.3;
  inj->add_rule(dup);
  pc::run(3, config_with(inj), [](pc::Communicator& comm) {
    for (std::uint64_t epoch = 0; epoch < 3; ++epoch) {
      od::DriverOptions opts = fast_driver_options();
      opts.epoch = epoch;
      od::DriverContext ctx(comm, opts);
      if (!ctx.is_driver()) {
        ctx.worker_loop();
        continue;
      }
      const int ones = ctx.create_full(90, 1.0);
      int cur = ones;
      for (int i = 0; i < 10; ++i) cur = ctx.axpy(1.0, cur, ones);
      EXPECT_NEAR(ctx.reduce_sum(cur), 11.0 * 90.0, 1e-9)
          << "epoch " << epoch;
      ctx.shutdown();
    }
  });
}

// ---------------------------------------------------------------------------
// Empty-payload audit on the control framing (PR 8 bugfix)
// ---------------------------------------------------------------------------

TEST(DriverEmptyPayload, EmptyShipBatchIsANoOp) {
  // A zero-message ship must not consume a sequence number or put a
  // header-only payload on the wire (whose messages memcpy would touch
  // data() of an empty region — the UB class fixed for the p2p decode
  // paths in earlier PRs).
  pc::run(3, [](pc::Communicator& comm) {
    od::DriverContext ctx(comm, fast_driver_options());
    if (!ctx.is_driver()) {
      ctx.worker_loop();
      return;
    }
    ctx.ship_batch({});
    EXPECT_EQ(ctx.payloads_sent(), 0u);
    // An empty flush is equally a no-op.
    ctx.begin_batch();
    ctx.flush_batch();
    EXPECT_EQ(ctx.payloads_sent(), 0u);
    // And the protocol is undisturbed: the next real op is sequenced from
    // scratch and exact.
    const int x = ctx.create_full(30, 5.0);
    EXPECT_NEAR(ctx.reduce_sum(x), 150.0, 1e-9);
    ctx.shutdown();
  });
}

TEST(DriverEmptyPayload, EmptyUfuncNameIsContainedNotFatal) {
  // ControlMessage::name all-zero (empty string) reaches the worker's
  // ufunc lookup, which throws; the worker must contain that error (count
  // it, keep serving) instead of tearing down the loop for every session.
  const double before =
      pyhpc::obs::MetricsRegistry::global().value("driver.worker_op_errors");
  pc::run(3, [](pc::Communicator& comm) {
    od::DriverContext ctx(comm, fast_driver_options());
    if (!ctx.is_driver()) {
      ctx.worker_loop();
      return;
    }
    const int x = ctx.create_full(30, 4.0);
    (void)ctx.unary("", x);  // executes (and fails) on the workers
    EXPECT_NEAR(ctx.reduce_sum(x), 120.0, 1e-9);  // loop still alive
    ctx.shutdown();
  });
  EXPECT_GE(pyhpc::obs::MetricsRegistry::global().value(
                "driver.worker_op_errors"),
            before + 2.0);  // both workers contained the bad op
}

TEST(DriverEmptyPayload, MaxLengthUfuncNameRoundTrips) {
  // name[8] holds at most 7 chars + NUL; get_name must bound its scan
  // even for the longest legal name.
  od::ControlMessage m;
  m.set_name("sigmoid");  // 7 chars, exactly the limit
  EXPECT_EQ(m.get_name(), "sigmoid");
  EXPECT_THROW(m.set_name("8chars!!"), pyhpc::InvalidArgument);
}
