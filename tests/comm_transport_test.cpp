// Zero-copy transport tier tests: moved/ref-counted payload buffers, the
// pooled arena, eager-vs-rendezvous isend, future-based completion, the
// progress()-driven non-blocking collectives, and the regression suites of
// the PR's bugfix satellites (empty-payload memcpy UB, iprobe error
// refinement, halo-tag byte accounting, requeue x zero-copy under fault
// injection). Registered under the `faults` CTest label and expected to be
// TSan-clean.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

#include "comm/buffer.hpp"
#include "comm/config.hpp"
#include "comm/fault.hpp"
#include "comm/runner.hpp"
#include "util/error.hpp"

namespace pc = pyhpc::comm;

using namespace std::chrono_literals;

namespace {

pc::CommConfig config_with(std::shared_ptr<pc::FaultInjector> injector) {
  pc::CommConfig cfg;
  cfg.injector = std::move(injector);
  return cfg;
}

std::vector<double> iota_vec(std::size_t n) {
  std::vector<double> v(n);
  std::iota(v.begin(), v.end(), 1.0);
  return v;
}

}  // namespace

// ---------------------------------------------------------------------------
// Buffer unit behaviour
// ---------------------------------------------------------------------------

TEST(Buffer, AdoptedVectorMovesBackOutWithoutCopy) {
  std::vector<double> v = iota_vec(1000);
  const double* storage = v.data();
  pc::Buffer b = pc::Buffer::adopt(std::move(v));
  EXPECT_TRUE(b.zero_copy());
  EXPECT_EQ(b.size(), 1000 * sizeof(double));
  auto out = b.take_vector<double>();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->data(), storage);  // same heap block end to end
  EXPECT_EQ((*out)[999], 1000.0);
}

TEST(Buffer, TakeVectorRefusesSharedOrForeignTypes) {
  pc::Buffer b = pc::Buffer::adopt(iota_vec(8));
  pc::Buffer alias = b;  // second reference: move-out must refuse
  EXPECT_FALSE(b.take_vector<double>().has_value());
  // Type mismatch must refuse too (alias is now the sole owner).
  b = pc::Buffer();
  EXPECT_FALSE(alias.take_vector<float>().has_value());
  // Correct type and sole ownership succeeds.
  auto out = alias.take_vector<double>();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->size(), 8u);
}

TEST(Buffer, ArenaRecyclesBlocks) {
  pc::BufferArena arena(/*block_bytes=*/256, /*max_free=*/4);
  std::vector<std::byte> payload(100, std::byte{0x5A});
  bool reused = false;
  {
    pc::Buffer first = pc::Buffer::copy_of(
        std::span<const std::byte>(payload), &arena, &reused);
    EXPECT_FALSE(reused);  // first acquisition allocates fresh
  }
  // The block went back to the freelist; the next copy reuses it.
  pc::Buffer second = pc::Buffer::copy_of(
      std::span<const std::byte>(payload), &arena, &reused);
  EXPECT_TRUE(reused);
  EXPECT_EQ(second.data()[0], std::byte{0x5A});
}

TEST(Buffer, OversizedPayloadFallsThroughArena) {
  pc::BufferArena arena(/*block_bytes=*/64, /*max_free=*/4);
  std::vector<std::byte> payload(1024, std::byte{0x01});
  bool reused = true;
  pc::Buffer b = pc::Buffer::copy_of(std::span<const std::byte>(payload),
                                     &arena, &reused);
  EXPECT_FALSE(reused);
  EXPECT_EQ(b.size(), 1024u);
  EXPECT_EQ(arena.free_blocks(), 0u);  // never entered the pool
}

// ---------------------------------------------------------------------------
// Zero-copy p2p
// ---------------------------------------------------------------------------

TEST(ZeroCopy, MovedSendArrivesIntactAndCounts) {
  pc::run(2, [](pc::Communicator& comm) {
    const std::size_t n = 4096;
    if (comm.rank() == 0) {
      comm.send(iota_vec(n), 1, 7);
      EXPECT_EQ(comm.stats().zero_copy_messages, 1u);
      EXPECT_EQ(comm.stats().zero_copy_bytes, n * sizeof(double));
      // Logical volume books as ordinary p2p; no physical copy happened.
      EXPECT_EQ(comm.stats().p2p_bytes_sent, n * sizeof(double));
      EXPECT_EQ(comm.stats().bytes_copied, 0u);
    } else {
      auto got = comm.recv_vector<double>(0, 7);
      ASSERT_EQ(got.size(), n);
      EXPECT_EQ(got[0], 1.0);
      EXPECT_EQ(got[n - 1], static_cast<double>(n));
    }
  });
}

TEST(ZeroCopy, EagerCopySendStillCountsCopies) {
  pc::run(2, [](pc::Communicator& comm) {
    const auto v = iota_vec(100);
    if (comm.rank() == 0) {
      comm.send(std::span<const double>(v), 1, 7);
      EXPECT_EQ(comm.stats().bytes_copied, 100 * sizeof(double));
      EXPECT_EQ(comm.stats().zero_copy_messages, 0u);
    } else {
      auto got = comm.recv_vector<double>(0, 7);
      EXPECT_EQ(got, v);
    }
  });
}

TEST(ZeroCopy, SmallEagerSendsHitTheArena) {
  pc::run(2, [](pc::Communicator& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 8; ++i) comm.send_value<int>(i, 1, 7);
      // The first send allocates the block; once the receiver starts
      // draining, freed blocks cycle back. Sequential sends on one rank
      // cannot all miss.
      EXPECT_EQ(comm.stats().arena_hits + comm.stats().arena_misses, 8u);
      EXPECT_GE(comm.stats().arena_misses, 1u);
    } else {
      for (int i = 0; i < 8; ++i) EXPECT_EQ(comm.recv_value<int>(0, 7), i);
    }
  });
}

TEST(ZeroCopy, EmptyMovedVectorRoundTrips) {
  pc::run(2, [](pc::Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send(std::vector<double>{}, 1, 7);
    } else {
      auto got = comm.recv_vector<double>(0, 7);
      EXPECT_TRUE(got.empty());
    }
  });
}

// ---------------------------------------------------------------------------
// Satellite regression: empty-payload memcpy UB audit. Each typed receive
// path must survive a zero-length message whose payload data() is null
// (memcpy from a null pointer is UB even for size 0). These all crashed
// or invoked UB before the payload-emptiness guards.
// ---------------------------------------------------------------------------

TEST(EmptyPayload, PendingRecvDecodePath) {
  pc::run(2, [](pc::Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send(std::span<const double>{}, 1, 11);
    } else {
      auto req = comm.irecv(0, 11);
      auto env = req.wait();
      auto vals = pc::PendingRecv::decode<double>(env);
      EXPECT_TRUE(vals.empty());
    }
  });
}

TEST(EmptyPayload, StrictRecvPath) {
  pc::run(2, [](pc::Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send(std::span<const int>{}, 1, 11);
    } else {
      std::span<int> empty_buf;
      auto st = comm.recv(empty_buf, 0, 11);
      EXPECT_EQ(st.bytes, 0u);
    }
  });
}

TEST(EmptyPayload, RecvVectorPath) {
  pc::run(2, [](pc::Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send(std::span<const float>{}, 1, 11);
    } else {
      EXPECT_TRUE(comm.recv_vector<float>(0, 11).empty());
    }
  });
}

TEST(EmptyPayload, GathervWithEmptyContributions) {
  // Odd ranks contribute nothing: their payloads travel as zero-length
  // messages through the coll_recv_exact decode (the gatherv path of the
  // audit).
  pc::run(4, [](pc::Communicator& comm) {
    std::vector<int> mine;
    if (comm.rank() % 2 == 0) mine.assign(2, comm.rank());
    auto parts = comm.gatherv(std::span<const int>(mine), 0);
    if (comm.rank() == 0) {
      ASSERT_EQ(parts.size(), 4u);
      EXPECT_EQ(parts[0], (std::vector<int>{0, 0}));
      EXPECT_TRUE(parts[1].empty());
      EXPECT_EQ(parts[2], (std::vector<int>{2, 2}));
      EXPECT_TRUE(parts[3].empty());
    }
  });
}

TEST(EmptyPayload, AlltoallvWithEmptyParts) {
  pc::run(3, [](pc::Communicator& comm) {
    // Rank r sends r+1 elements to rank 0 and nothing to anyone else.
    std::vector<std::vector<int>> parts(3);
    parts[0].assign(static_cast<std::size_t>(comm.rank()) + 1, comm.rank());
    auto got = comm.alltoallv(std::move(parts));
    if (comm.rank() == 0) {
      EXPECT_EQ(got[0].size(), 1u);
      EXPECT_EQ(got[1].size(), 2u);
      EXPECT_EQ(got[2].size(), 3u);
    } else {
      EXPECT_TRUE(got[0].empty());
      EXPECT_TRUE(got[1].empty());
      EXPECT_TRUE(got[2].empty());
    }
  });
}

// ---------------------------------------------------------------------------
// Satellite regression: iprobe error refinement. iprobe used to bypass
// probe's killed-rank/revocation/abort handling entirely and return
// nullopt forever; a poll loop over a dead peer would spin for good.
// ---------------------------------------------------------------------------

TEST(IProbe, PeerDeathBetweenPollsSurfacesAsPeerKilledError) {
  auto inj = std::make_shared<pc::FaultInjector>(/*seed=*/1);
  pc::FaultRule rule;
  rule.kind = pc::FaultKind::kKillRank;
  rule.source = 1;
  rule.dest = 0;
  rule.tag = 9;
  rule.victim = 1;
  inj->add_rule(rule);
  pc::run(2, config_with(inj), [](pc::Communicator& comm) {
    if (comm.rank() == 1) {
      // Nothing matches tag 5 yet; the send on tag 9 triggers the kill
      // (and goes down with this rank).
      std::this_thread::sleep_for(20ms);
      comm.send_value<int>(0, 0, 9);
      return;
    }
    // Before the kill: polls return nullopt, not an error.
    EXPECT_FALSE(comm.iprobe(1, 5).has_value());
    const auto deadline = std::chrono::steady_clock::now() + 5s;
    EXPECT_THROW(
        {
          while (std::chrono::steady_clock::now() < deadline) {
            (void)comm.iprobe(1, 5);
            std::this_thread::sleep_for(1ms);
          }
        },
        pyhpc::PeerKilledError);
  });
}

TEST(IProbe, QueuedMessageFromDeadPeerIsStillDeliverable) {
  auto inj = std::make_shared<pc::FaultInjector>(1);
  pc::FaultRule rule;
  rule.kind = pc::FaultKind::kKillRank;
  rule.source = 1;
  rule.dest = 0;
  rule.tag = 9;
  rule.victim = 1;
  inj->add_rule(rule);
  pc::run(2, config_with(inj), [](pc::Communicator& comm) {
    if (comm.rank() == 1) {
      comm.send_value<int>(41, 0, 5);  // delivered before the death
      std::this_thread::sleep_for(20ms);
      comm.send_value<int>(0, 0, 9);   // triggers the kill
      return;
    }
    // Wait until the death is observable, then iprobe: the queued message
    // must match before any peer-killed refinement.
    while (!comm.rank_dead(1)) std::this_thread::sleep_for(1ms);
    auto st = comm.iprobe(1, 5);
    ASSERT_TRUE(st.has_value());
    EXPECT_EQ(st->bytes, sizeof(int));
    EXPECT_EQ(comm.recv_value<int>(1, 5), 41);
    // Mailbox drained: now the refinement fires.
    EXPECT_THROW((void)comm.iprobe(1, 5), pyhpc::PeerKilledError);
  });
}

// ---------------------------------------------------------------------------
// Satellite regression: byte accounting on the internal halo tag. A
// zero-copy send must report the logical volume in p2p_bytes_sent while
// bytes_copied stays flat — the invariant the overlap benches assert on.
// ---------------------------------------------------------------------------

TEST(ByteAccounting, HaloTagZeroCopySendSplitsLogicalAndPhysical) {
  pc::run(2, [](pc::Communicator& comm) {
    const std::size_t n = 2048;
    if (comm.rank() == 0) {
      comm.send_internal(iota_vec(n), 1, pc::kHaloTag);
      const auto& s = comm.stats();
      EXPECT_EQ(s.p2p_bytes_sent, n * sizeof(double));  // logical volume
      EXPECT_EQ(s.bytes_copied, 0u);                    // no physical copy
      EXPECT_EQ(s.zero_copy_bytes, n * sizeof(double));
      EXPECT_EQ(s.zero_copy_messages, 1u);
      EXPECT_EQ(s.coll_bytes_sent, 0u);  // internal p2p is not a collective
    } else {
      auto req = comm.irecv_internal(0, pc::kHaloTag);
      auto got = pc::PendingRecv::take<double>(req.wait());
      ASSERT_EQ(got.size(), n);
      EXPECT_EQ(got[n - 1], static_cast<double>(n));
      EXPECT_EQ(comm.stats().p2p_bytes_received, n * sizeof(double));
    }
  });
}

// ---------------------------------------------------------------------------
// Rendezvous isend
// ---------------------------------------------------------------------------

TEST(Rendezvous, LargeIsendCompletesWhenReceiverDrains) {
  pc::CommConfig cfg;
  cfg.eager_threshold = 256;  // force rendezvous for the 8 KiB payload
  pc::run(2, cfg, [](pc::Communicator& comm) {
    const auto v = iota_vec(1024);
    if (comm.rank() == 0) {
      auto fut = comm.isend(std::span<const double>(v), 1, 7);
      fut.wait();  // buffer is ours again only after the receiver let go
      EXPECT_TRUE(fut.ready());
      const auto& s = comm.stats();
      EXPECT_EQ(s.rendezvous, 1u);
      EXPECT_EQ(s.bytes_copied, 0u);  // the envelope aliased `v`
      EXPECT_EQ(s.p2p_bytes_sent, 1024 * sizeof(double));
    } else {
      auto got = comm.recv_vector<double>(0, 7);
      EXPECT_EQ(got, v);
    }
  });
}

TEST(Rendezvous, SmallIsendStaysEagerAndIsImmediatelyReady) {
  pc::run(2, [](pc::Communicator& comm) {
    const auto v = iota_vec(16);  // 128 B, below the default threshold
    if (comm.rank() == 0) {
      auto fut = comm.isend(std::span<const double>(v), 1, 7);
      EXPECT_TRUE(fut.ready());  // copied out at post time
      EXPECT_EQ(comm.stats().rendezvous, 0u);
      EXPECT_EQ(comm.stats().bytes_copied, 16 * sizeof(double));
      fut.wait();  // no-op
    } else {
      EXPECT_EQ(comm.recv_vector<double>(0, 7), v);
    }
  });
}

TEST(Rendezvous, DroppedEnvelopeStillReleasesTheSender) {
  auto inj = std::make_shared<pc::FaultInjector>(1);
  pc::FaultRule rule;
  rule.kind = pc::FaultKind::kDrop;
  rule.source = 0;
  rule.dest = 1;
  rule.tag = 7;
  inj->add_rule(rule);
  pc::CommConfig cfg = config_with(inj);
  cfg.eager_threshold = 256;
  pc::run(2, cfg, [](pc::Communicator& comm) {
    if (comm.rank() == 0) {
      const auto v = iota_vec(1024);
      auto fut = comm.isend(std::span<const double>(v), 1, 7);
      // The drop destroys the only reference; MPI completion semantics
      // ("buffer reusable") must hold even though nothing was delivered.
      fut.wait();
      EXPECT_TRUE(fut.ready());
    } else {
      std::vector<std::byte> buf;
      EXPECT_THROW((void)comm.recv_bytes_within(150ms, buf, 0, 7),
                   pyhpc::RecvTimeoutError);
    }
  });
}

TEST(Rendezvous, DuplicatedEnvelopeCompletesOnlyAfterBothCopiesDrain) {
  auto inj = std::make_shared<pc::FaultInjector>(1);
  pc::FaultRule rule;
  rule.kind = pc::FaultKind::kDuplicate;
  rule.source = 0;
  rule.dest = 1;
  rule.tag = 7;
  inj->add_rule(rule);
  pc::CommConfig cfg = config_with(inj);
  cfg.eager_threshold = 256;
  pc::run(2, cfg, [](pc::Communicator& comm) {
    const auto v = iota_vec(1024);
    if (comm.rank() == 0) {
      auto fut = comm.isend(std::span<const double>(v), 1, 7);
      fut.wait();  // both the original and the injected copy must drain
      EXPECT_TRUE(fut.ready());
    } else {
      // Both copies alias the same ref-counted buffer; both decode.
      EXPECT_EQ(comm.recv_vector<double>(0, 7), v);
      EXPECT_EQ(comm.recv_vector<double>(0, 7), v);
    }
  });
}

TEST(Rendezvous, CorruptionClonesInsteadOfMutatingTheSharedBuffer) {
  auto inj = std::make_shared<pc::FaultInjector>(1);
  pc::FaultRule rule;
  rule.kind = pc::FaultKind::kCorrupt;
  rule.source = 0;
  rule.dest = 1;
  rule.tag = 7;
  inj->add_rule(rule);
  pc::CommConfig cfg = config_with(inj);
  cfg.eager_threshold = 256;
  pc::run(2, cfg, [](pc::Communicator& comm) {
    const auto v = iota_vec(1024);
    if (comm.rank() == 0) {
      auto original = v;
      auto fut = comm.isend(std::span<const double>(original), 1, 7);
      fut.wait();  // the tampering clone released the aliased buffer
      // In-place tampering would have damaged our live send buffer.
      EXPECT_EQ(original, v);
    } else {
      EXPECT_THROW((void)comm.recv_vector<double>(0, 7),
                   pyhpc::CommIntegrityError);
    }
  });
}

// ---------------------------------------------------------------------------
// PendingRecv destruction-requeue x zero-copy envelopes under injection
// ---------------------------------------------------------------------------

TEST(RequeueZeroCopy, AbandonedCaptureRequeuesMovedPayloadIntact) {
  pc::run(2, [](pc::Communicator& comm) {
    const std::size_t n = 2048;
    if (comm.rank() == 0) {
      comm.send(iota_vec(n), 1, 7);
    } else {
      {
        pc::PendingRecv req = comm.irecv(0, 7);
        while (!req.ready()) std::this_thread::sleep_for(1ms);
        // Handle dies with the captured zero-copy envelope unconsumed.
      }
      EXPECT_EQ(comm.stats().pending_requeued, 1u);
      // The requeued envelope still move-decodes end to end.
      auto got = comm.recv_vector<double>(0, 7);
      ASSERT_EQ(got.size(), n);
      EXPECT_EQ(got[n - 1], static_cast<double>(n));
      EXPECT_EQ(comm.stats().p2p_messages_received, 1u);  // counted once
    }
  });
}

TEST(RequeueZeroCopy, RequeueUnderDuplicateInjectionKeepsBothCopies) {
  auto inj = std::make_shared<pc::FaultInjector>(1);
  pc::FaultRule rule;
  rule.kind = pc::FaultKind::kDuplicate;
  rule.source = 0;
  rule.dest = 1;
  rule.tag = 7;
  inj->add_rule(rule);
  pc::run(2, config_with(inj), [](pc::Communicator& comm) {
    const std::size_t n = 1024;
    if (comm.rank() == 0) {
      comm.send(iota_vec(n), 1, 7);
    } else {
      {
        pc::PendingRecv req = comm.irecv(0, 7);
        while (!req.ready()) std::this_thread::sleep_for(1ms);
      }
      // Both the requeued capture and the injected duplicate arrive; the
      // two envelopes share one ref-counted buffer, so the first take
      // copies (shared) and the second moves (sole owner) — both decode
      // to the full payload.
      auto first = comm.recv_vector<double>(0, 7);
      auto second = comm.recv_vector<double>(0, 7);
      EXPECT_EQ(first, second);
      ASSERT_EQ(first.size(), n);
      EXPECT_EQ(first[0], 1.0);
    }
  });
}

TEST(RequeueZeroCopy, DropInjectionAbandonedHandleIsHarmless) {
  auto inj = std::make_shared<pc::FaultInjector>(1);
  pc::FaultRule rule;
  rule.kind = pc::FaultKind::kDrop;
  rule.source = 0;
  rule.dest = 1;
  rule.tag = 7;
  inj->add_rule(rule);
  pc::run(2, config_with(inj), [](pc::Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send(iota_vec(512), 1, 7);
      comm.send_value<int>(1, 1, 8);  // unaffected end marker
    } else {
      {
        pc::PendingRecv req = comm.irecv(0, 7);
        // The payload was dropped: ready() stays false; destroying the
        // empty handle must not requeue or miscount anything.
        EXPECT_FALSE(req.ready());
      }
      EXPECT_EQ(comm.stats().pending_requeued, 0u);
      EXPECT_EQ(comm.recv_value<int>(0, 8), 1);
    }
  });
}

TEST(RequeueZeroCopy, RendezvousCaptureRequeuedThenConsumedReleasesSender) {
  pc::CommConfig cfg;
  cfg.eager_threshold = 256;
  pc::run(2, cfg, [](pc::Communicator& comm) {
    const auto v = iota_vec(1024);
    if (comm.rank() == 0) {
      auto fut = comm.isend(std::span<const double>(v), 1, 7);
      fut.wait();  // completes only after the *final* consumption
    } else {
      {
        pc::PendingRecv req = comm.irecv(0, 7);
        while (!req.ready()) std::this_thread::sleep_for(1ms);
        // Abandon the captured rendezvous envelope: the requeue must keep
        // the sender's buffer alive (releasing here would let rank 0
        // reuse memory the next receive still reads).
      }
      EXPECT_EQ(comm.recv_vector<double>(0, 7), v);
    }
  });
}

// ---------------------------------------------------------------------------
// progress()-driven non-blocking operations
// ---------------------------------------------------------------------------

TEST(Progress, CallbackRecvRunsInsideProgress) {
  pc::run(2, [](pc::Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send_value<int>(99, 1, 7);
    } else {
      int seen = 0;
      comm.irecv(0, 7, [&](pc::Envelope env) {
        seen = pc::PendingRecv::decode<int>(env).at(0);
      });
      EXPECT_EQ(comm.pending_operations(), 1u);
      while (comm.pending_operations() != 0) {
        comm.progress();
        std::this_thread::sleep_for(1ms);
      }
      EXPECT_EQ(seen, 99);
    }
  });
}

TEST(Progress, IBarrierCompletesOnEveryRank) {
  for (int p : {1, 2, 3, 4, 5, 8}) {
    pc::run(p, [](pc::Communicator& comm) {
      auto fut = comm.ibarrier();
      fut.wait();
      EXPECT_TRUE(fut.ready());
    });
  }
}

TEST(Progress, IBarrierOverlapsComputeBeforeWait) {
  pc::run(4, [](pc::Communicator& comm) {
    auto fut = comm.ibarrier();
    // "Compute" between post and wait; progress keeps the barrier moving.
    double acc = 0.0;
    for (int i = 0; i < 1000; ++i) {
      acc += static_cast<double>(i);
      if (i % 100 == 0) comm.progress();
    }
    EXPECT_EQ(acc, 499500.0);
    fut.wait();
    EXPECT_TRUE(fut.ready());
  });
}

TEST(Progress, IAllreduceMatchesSerialReference) {
  for (int p : {1, 2, 3, 4, 5, 8}) {
    pc::run(p, [p](pc::Communicator& comm) {
      std::vector<std::int64_t> in(16), out(16);
      for (std::size_t i = 0; i < in.size(); ++i) {
        in[i] = static_cast<std::int64_t>(i) * (comm.rank() + 1);
      }
      auto fut = comm.iallreduce(std::span<const std::int64_t>(in),
                                 std::span<std::int64_t>(out),
                                 std::plus<std::int64_t>{});
      fut.wait();
      // sum over ranks r of i*(r+1) = i * p(p+1)/2
      const std::int64_t scale = static_cast<std::int64_t>(p) * (p + 1) / 2;
      for (std::size_t i = 0; i < out.size(); ++i) {
        EXPECT_EQ(out[i], static_cast<std::int64_t>(i) * scale);
      }
    });
  }
}

TEST(Progress, BackToBackNonBlockingCollectivesSequence) {
  pc::run(3, [](pc::Communicator& comm) {
    std::vector<double> a{1.0 * (comm.rank() + 1)}, asum(1);
    std::vector<double> b{10.0 * (comm.rank() + 1)}, bsum(1);
    auto f1 = comm.iallreduce(std::span<const double>(a),
                              std::span<double>(asum), std::plus<double>{});
    auto f2 = comm.iallreduce(std::span<const double>(b),
                              std::span<double>(bsum), std::plus<double>{});
    f2.wait();
    f1.wait();
    EXPECT_EQ(asum[0], 6.0);
    EXPECT_EQ(bsum[0], 60.0);
  });
}

TEST(Progress, PollOwnDeathSurfacesRankKilledError) {
  auto inj = std::make_shared<pc::FaultInjector>(1);
  pc::FaultRule rule;
  rule.kind = pc::FaultKind::kKillRank;
  rule.source = 0;
  rule.dest = 1;
  rule.tag = 9;
  rule.victim = 0;
  inj->add_rule(rule);
  pc::run(2, config_with(inj), [](pc::Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send_value<int>(1, 1, 9);  // triggers own death
      EXPECT_THROW(
          {
            for (;;) {
              comm.progress();
              std::this_thread::sleep_for(1ms);
            }
          },
          pyhpc::RankKilledError);
    }
    // Rank 1 just returns; the dead rank's messages were swallowed.
  });
}
