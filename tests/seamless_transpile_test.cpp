// Tests for static compilation (§IV.B): the emitted C++ must reproduce the
// JIT tier's semantics exactly. The round-trip test drives the real system
// compiler and dlopens the produced shared library — the full Cython-style
// path.
#include <dlfcn.h>
#include <gtest/gtest.h>

#include <cstdio>

#include "seamless/seamless.hpp"
#include "seamless/transpile.hpp"

namespace sm = pyhpc::seamless;
using sm::Value;

namespace {

const char* kKernels =
    "def sum(it):\n"
    "    res = 0.0\n"
    "    for i in range(len(it)):\n"
    "        res += it[i]\n"
    "    return res\n"
    "def gcd(a, b):\n"
    "    while b != 0:\n"
    "        t = b\n"
    "        b = a % b\n"
    "        a = t\n"
    "    return a\n"
    "def clamp(x, lo, hi):\n"
    "    if x < lo:\n"
    "        return lo\n"
    "    elif x > hi:\n"
    "        return hi\n"
    "    return x\n";

}  // namespace

TEST(Transpile, EmitsExternCSignature) {
  auto mod = sm::parse(kKernels);
  const std::string cpp =
      sm::emit_cpp(mod, "sum", {sm::JitType::kArray}, "minipy_sum");
  EXPECT_NE(cpp.find("extern \"C\" double minipy_sum(double* p0_data, "
                     "int64_t p0_size)"),
            std::string::npos);
  EXPECT_NE(cpp.find("#include <cmath>"), std::string::npos);
  // Control flow is goto-based over the typed IR.
  EXPECT_NE(cpp.find("goto L"), std::string::npos);
}

TEST(Transpile, IntSignatureTypes) {
  auto mod = sm::parse(kKernels);
  const std::string cpp = sm::emit_cpp(
      mod, "gcd", {sm::JitType::kInt, sm::JitType::kInt}, "minipy_gcd");
  EXPECT_NE(cpp.find("extern \"C\" int64_t minipy_gcd(int64_t p0, int64_t p1)"),
            std::string::npos);
}

TEST(Transpile, CompileAndRunSharedLibrary) {
  auto mod = sm::parse(kKernels);
  const std::string lib = "/tmp/pyhpc_transpile_test.so";

  std::string source = "#include <cstdint>\n";  // one TU, three symbols
  source += sm::emit_cpp(mod, "sum", {sm::JitType::kArray}, "minipy_sum");
  source += sm::emit_cpp(mod, "gcd", {sm::JitType::kInt, sm::JitType::kInt},
                         "minipy_gcd");
  source += sm::emit_cpp(
      mod, "clamp",
      {sm::JitType::kFloat, sm::JitType::kFloat, sm::JitType::kFloat},
      "minipy_clamp");
  ASSERT_NO_THROW(sm::compile_to_library(source, lib));

  void* handle = ::dlopen(lib.c_str(), RTLD_NOW | RTLD_LOCAL);
  ASSERT_NE(handle, nullptr) << ::dlerror();

  using SumFn = double (*)(double*, std::int64_t);
  using GcdFn = std::int64_t (*)(std::int64_t, std::int64_t);
  using ClampFn = double (*)(double, double, double);
  auto* sum = reinterpret_cast<SumFn>(::dlsym(handle, "minipy_sum"));
  auto* gcd = reinterpret_cast<GcdFn>(::dlsym(handle, "minipy_gcd"));
  auto* clamp = reinterpret_cast<ClampFn>(::dlsym(handle, "minipy_clamp"));
  ASSERT_NE(sum, nullptr);
  ASSERT_NE(gcd, nullptr);
  ASSERT_NE(clamp, nullptr);

  std::vector<double> data{1.5, 2.5, -1.0, 7.0};
  EXPECT_DOUBLE_EQ(sum(data.data(), 4), 10.0);
  EXPECT_EQ(gcd(252, 105), 21);
  EXPECT_EQ(gcd(-8, 6), 2);  // Python-mod semantics preserved
  EXPECT_DOUBLE_EQ(clamp(5.0, 0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(clamp(-5.0, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(clamp(0.25, 0.0, 1.0), 0.25);

  ::dlclose(handle);
  std::remove(lib.c_str());
  std::remove((lib + ".cpp").c_str());
  std::remove((lib + ".log").c_str());
}

TEST(Transpile, StaticMatchesJitOnRandomInputs) {
  auto mod = sm::parse(kKernels);
  const std::string lib = "/tmp/pyhpc_transpile_equiv.so";
  sm::compile_to_library(
      sm::emit_cpp(mod, "gcd", {sm::JitType::kInt, sm::JitType::kInt}, "g"),
      lib);
  void* handle = ::dlopen(lib.c_str(), RTLD_NOW | RTLD_LOCAL);
  ASSERT_NE(handle, nullptr);
  auto* g = reinterpret_cast<std::int64_t (*)(std::int64_t, std::int64_t)>(
      ::dlsym(handle, "g"));
  ASSERT_NE(g, nullptr);

  sm::Engine engine(kKernels);
  for (std::int64_t a = -6; a <= 6; ++a) {
    for (std::int64_t b = -6; b <= 6; ++b) {
      if (a == 0 && b == 0) continue;
      const auto jit =
          engine.run_jit("gcd", {Value::of(a), Value::of(b)}).as_int();
      EXPECT_EQ(g(a, b), jit) << "gcd(" << a << ", " << b << ")";
    }
  }
  ::dlclose(handle);
  std::remove(lib.c_str());
  std::remove((lib + ".cpp").c_str());
  std::remove((lib + ".log").c_str());
}

TEST(Transpile, NonJittableFunctionRejected) {
  auto mod = sm::parse(
      "def f(n):\n"
      "    xs = list(n)\n"
      "    return len(xs)\n");
  EXPECT_THROW(sm::emit_cpp(mod, "f", {sm::JitType::kInt}, "f"),
               sm::NotJittable);
}
