// Tests for Vector/MultiVector: reductions against serial references,
// update/scale algebra, import/export round-trips, and the templated-Scalar
// design point (float and complex-free integer instantiations).
#include <gtest/gtest.h>

#include <numeric>

#include "comm/runner.hpp"
#include "tpetra/vector.hpp"

namespace pc = pyhpc::comm;
namespace tp = pyhpc::tpetra;

using MapT = tp::Map<>;
using VecD = tp::Vector<double>;
using LO = std::int32_t;
using GO = std::int64_t;

namespace {
const std::vector<int> kRankCounts{1, 2, 3, 4, 6};

// Fills v[g] = f(g) through global indices.
template <class Scalar, class F>
void fill_by_gid(tp::Vector<Scalar>& v, F f) {
  for (LO i = 0; i < v.local_size(); ++i) {
    v[i] = f(v.map().local_to_global(i));
  }
}
}  // namespace

class VectorRankSweep : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Ranks, VectorRankSweep,
                         ::testing::ValuesIn(kRankCounts));

TEST_P(VectorRankSweep, DotMatchesSerialFormula) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    const GO n = 50;
    auto map = MapT::uniform(comm, n);
    VecD x(map), y(map);
    fill_by_gid(x, [](GO g) { return static_cast<double>(g); });
    fill_by_gid(y, [](GO) { return 2.0; });
    // dot = 2 * sum(g) = 2 * n(n-1)/2.
    EXPECT_DOUBLE_EQ(x.dot(y), static_cast<double>(n * (n - 1)));
  });
}

TEST_P(VectorRankSweep, NormsMatchSerialFormulas) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    const GO n = 40;
    auto map = MapT::uniform(comm, n);
    VecD x(map);
    fill_by_gid(x, [n](GO g) { return (g == n / 2) ? -5.0 : 1.0; });
    EXPECT_DOUBLE_EQ(x.norm1(), static_cast<double>(n - 1) + 5.0);
    EXPECT_DOUBLE_EQ(x.norm2(), std::sqrt(static_cast<double>(n - 1) + 25.0));
    EXPECT_DOUBLE_EQ(x.norm_inf(), 5.0);
    EXPECT_DOUBLE_EQ(x.min_value(), -5.0);
    EXPECT_DOUBLE_EQ(x.max_value(), 1.0);
    EXPECT_DOUBLE_EQ(x.mean_value(),
                     (static_cast<double>(n - 1) - 5.0) / static_cast<double>(n));
  });
}

TEST_P(VectorRankSweep, UpdateComputesAxpby) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    auto map = MapT::uniform(comm, 33);
    VecD x(map), y(map);
    fill_by_gid(x, [](GO g) { return static_cast<double>(g); });
    y.put_scalar(10.0);
    y.update(2.0, x, -1.0);  // y := 2x - y
    for (LO i = 0; i < y.local_size(); ++i) {
      EXPECT_DOUBLE_EQ(y[i],
                       2.0 * static_cast<double>(map.local_to_global(i)) - 10.0);
    }
  });
}

TEST_P(VectorRankSweep, ElementwiseOpsAndScale) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    auto map = MapT::uniform(comm, 21);
    VecD x(map), y(map), z(map);
    fill_by_gid(x, [](GO g) { return static_cast<double>(g + 1); });
    fill_by_gid(y, [](GO g) { return g % 2 == 0 ? -2.0 : 0.5; });
    z.elementwise_multiply(x, y);
    for (LO i = 0; i < z.local_size(); ++i) {
      EXPECT_DOUBLE_EQ(z[i], x[i] * y[i]);
    }
    z.abs(y);
    for (LO i = 0; i < z.local_size(); ++i) {
      EXPECT_DOUBLE_EQ(z[i], std::abs(y[i]));
    }
    z.reciprocal(x);
    for (LO i = 0; i < z.local_size(); ++i) {
      EXPECT_DOUBLE_EQ(z[i], 1.0 / x[i]);
    }
    z.scale(4.0);
    for (LO i = 0; i < z.local_size(); ++i) {
      EXPECT_DOUBLE_EQ(z[i], 4.0 / x[i]);
    }
  });
}

TEST_P(VectorRankSweep, GlobalValueAccessors) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    auto map = MapT::uniform(comm, 18);
    VecD x(map, 1.0);
    if (map.num_local() > 0) {
      const GO g = map.min_global_index();
      x.replace_global_value(g, 9.0);
      x.sum_into_global_value(g, 0.5);
      EXPECT_DOUBLE_EQ(x[map.global_to_local(g)], 9.5);
    }
    // Writing a non-owned gid throws (only meaningful with >1 rank).
    if (comm.size() > 1 && map.num_local() > 0) {
      const GO foreign = (map.min_global_index() + map.num_local()) % 18;
      EXPECT_THROW(x.replace_global_value(foreign, 1.0), pyhpc::MapError);
    }
  });
}

TEST_P(VectorRankSweep, GatherGlobalOrdersByGid) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    const GO n = 25;
    auto map = MapT::uniform(comm, n);
    VecD x(map);
    fill_by_gid(x, [](GO g) { return 3.0 * static_cast<double>(g); });
    auto full = x.gather_global();
    ASSERT_EQ(full.size(), static_cast<std::size_t>(n));
    for (GO g = 0; g < n; ++g) {
      EXPECT_DOUBLE_EQ(full[static_cast<std::size_t>(g)], 3.0 * static_cast<double>(g));
    }
  });
}

TEST_P(VectorRankSweep, RandomizeIsDeterministicPerRank) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    auto map = MapT::uniform(comm, 32);
    VecD a(map), b(map);
    a.randomize(7);
    b.randomize(7);
    for (LO i = 0; i < a.local_size(); ++i) {
      EXPECT_EQ(a[i], b[i]);
      EXPECT_GE(a[i], 0.0);
      EXPECT_LT(a[i], 1.0);
    }
    b.randomize(8);
    if (a.local_size() > 0) {
      bool any_diff = false;
      for (LO i = 0; i < a.local_size(); ++i) {
        if (a[i] != b[i]) any_diff = true;
      }
      EXPECT_TRUE(any_diff);
    }
  });
}

TEST_P(VectorRankSweep, ImportExportRoundTripThroughVectors) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    const GO n = 20;
    auto owned = MapT::uniform(comm, n);
    std::vector<GO> all(static_cast<std::size_t>(n));
    std::iota(all.begin(), all.end(), 0);
    auto replicated = MapT::from_global_indices(comm, all);

    VecD x(owned);
    fill_by_gid(x, [](GO g) { return static_cast<double>(g) + 0.25; });
    VecD rep(replicated);
    tp::Import<> imp(owned, replicated);
    rep.do_import(x, imp);
    for (LO i = 0; i < rep.local_size(); ++i) {
      EXPECT_DOUBLE_EQ(rep[i],
                       static_cast<double>(replicated.local_to_global(i)) + 0.25);
    }

    // Export back with ADD: every rank contributes its replica, so owners
    // see P times the value.
    VecD back(owned, 0.0);
    tp::Export<> exp(replicated, owned);
    back.do_export(rep, exp, tp::CombineMode::kAdd);
    for (LO i = 0; i < back.local_size(); ++i) {
      EXPECT_DOUBLE_EQ(back[i], comm.size() * (static_cast<double>(
                                                   owned.local_to_global(i)) +
                                               0.25));
    }
  });
}

TEST(Vector, MismatchedLocalSizesThrow) {
  pc::run(2, [](pc::Communicator& comm) {
    auto a = MapT::uniform(comm, 10);
    auto b = MapT::from_local_sizes(comm, comm.rank() == 0 ? 10 : 0);
    VecD x(a), y(b);
    if (x.local_size() != y.local_size()) {
      EXPECT_THROW(x.update(1.0, y, 0.0), pyhpc::MapError);
      EXPECT_THROW((void)x.dot(y), pyhpc::Error);
    } else {
      // Ranks where the sizes coincide still participate in the collective
      // abort; force a failure to keep the test collective-consistent.
      // (dot on compatible local sizes would block waiting for the peer.)
      SUCCEED();
    }
  });
}

TEST(Vector, FloatScalarInstantiation) {
  pc::run(2, [](pc::Communicator& comm) {
    auto map = MapT::uniform(comm, 12);
    tp::Vector<float> x(map, 1.5f);
    EXPECT_FLOAT_EQ(static_cast<float>(x.dot(x)), 12.0f * 1.5f * 1.5f);
    EXPECT_NEAR(x.norm2(), std::sqrt(12.0) * 1.5, 1e-6);
  });
}

TEST(Vector, LongDoubleOrdinalTemplates) {
  // GlobalOrdinal = long long, LocalOrdinal = long: the paper's "indexing
  // using long integers" design point.
  pc::run(2, [](pc::Communicator& comm) {
    auto map = tp::Map<long, long long>::uniform(comm, 1000000000LL);
    EXPECT_EQ(map.num_global(), 1000000000LL);
    // Only check the index arithmetic, never allocate that much.
    EXPECT_EQ(map.owner_of(999999999LL), comm.size() - 1);
  });
}

class MultiVectorTest : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Ranks, MultiVectorTest,
                         ::testing::ValuesIn(kRankCounts));

TEST_P(MultiVectorTest, ColumnsAreIndependent) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    auto map = MapT::uniform(comm, 15);
    tp::MultiVector<double> mv(map, 3);
    EXPECT_EQ(mv.num_vectors(), 3);
    mv.col(0).put_scalar(1.0);
    mv.col(1).put_scalar(2.0);
    mv.col(2).put_scalar(3.0);
    auto norms = mv.norms2();
    EXPECT_NEAR(norms[0], std::sqrt(15.0), 1e-12);
    EXPECT_NEAR(norms[1], 2.0 * std::sqrt(15.0), 1e-12);
    EXPECT_NEAR(norms[2], 3.0 * std::sqrt(15.0), 1e-12);
    auto dots = mv.dot(mv);
    EXPECT_DOUBLE_EQ(dots[2], 9.0 * 15.0);
  });
}

TEST(MultiVector, ZeroColumnsRejected) {
  pc::run(1, [](pc::Communicator& comm) {
    auto map = MapT::uniform(comm, 5);
    EXPECT_THROW(tp::MultiVector<double>(map, 0), pyhpc::InvalidArgument);
  });
}
