// ULFM-style recovery tests: fast peer-death detection inside collectives,
// revoke() poisoning, fault-tolerant agree(), shrink() re-ranking, the
// shared collective deadline budget, CheckpointStore round trips, DistArray
// snapshots, and the acceptance scenario — a rank killed mid-CG at p=8 with
// the survivors completing the solve on the shrunken communicator.
// Registered under the `faults` CTest label: `ctest -L faults`.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <memory>
#include <thread>
#include <vector>

#include "comm/config.hpp"
#include "comm/fault.hpp"
#include "comm/runner.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "odin/checkpoint.hpp"
#include "odin/dist_array.hpp"
#include "solvers/resilient.hpp"
#include "tpetra/checkpoint.hpp"
#include "util/checkpoint.hpp"
#include "util/error.hpp"

namespace pc = pyhpc::comm;
namespace pt = pyhpc::tpetra;
namespace po = pyhpc::odin;
namespace ps = pyhpc::solvers;
namespace pu = pyhpc::util;

using namespace std::chrono_literals;

namespace {

pc::CommConfig config_with(std::shared_ptr<pc::FaultInjector> injector) {
  pc::CommConfig cfg;
  cfg.injector = std::move(injector);
  return cfg;
}

/// Kill `victim` on its (skip+1)-th outgoing message.
std::shared_ptr<pc::FaultInjector> kill_injector(int victim, int skip,
                                                 std::uint64_t seed = 1) {
  auto inj = std::make_shared<pc::FaultInjector>(seed);
  pc::FaultRule rule;
  rule.kind = pc::FaultKind::kKillRank;
  rule.source = victim;
  rule.victim = victim;
  rule.skip_first = skip;
  rule.max_applications = 1;
  inj->add_rule(rule);
  return inj;
}

/// 1-D Laplacian stencil [-1, 2, -1] over the map's rows.
pt::CrsMatrix<double> laplacian(const pt::Map<>& map) {
  pt::CrsMatrix<double> a(map);
  const std::int64_t n = map.num_global();
  for (const auto g : map.my_global_indices()) {
    a.insert_global_value(g, g, 2.0);
    if (g > 0) a.insert_global_value(g, g - 1, -1.0);
    if (g + 1 < n) a.insert_global_value(g, g + 1, -1.0);
  }
  a.fill_complete();
  return a;
}

double truth(std::int64_t i) { return std::sin(0.1 * static_cast<double>(i)); }

}  // namespace

// ---------------------------------------------------------------------------
// Fast failure detection inside collectives
// ---------------------------------------------------------------------------

TEST(PeerDeath, CollectiveReceiversDetectAKilledPeerPromptly) {
  // Rank 2 dies on its first collective send; no recv_timeout is configured,
  // so only the killed-peer poll can unblock the survivors.
  try {
    pc::run(3, config_with(kill_injector(/*victim=*/2, /*skip=*/0)),
            [](pc::Communicator& comm) {
              (void)comm.allreduce_value<int>(comm.rank(),
                                              [](int a, int b) { return a + b; });
            });
    FAIL() << "expected PeerKilledError";
  } catch (const pyhpc::PeerKilledError& e) {
    EXPECT_EQ(e.dead_rank(), 2);
  }
}

TEST(PeerDeath, SurvivorErrorIsNotSwallowedAsContainment) {
  // PeerKilledError derives from RankKilledError; a regression that lets
  // the runner's containment catch it would make this run "pass".
  EXPECT_THROW(
      pc::run(2, config_with(kill_injector(1, 0)),
              [](pc::Communicator& comm) { comm.barrier(); }),
      pyhpc::PeerKilledError);
}

// ---------------------------------------------------------------------------
// revoke / agree / shrink
// ---------------------------------------------------------------------------

TEST(Revoke, PoisonsBlockedReceiversAndFutureSends) {
  pc::run(3, [](pc::Communicator& comm) {
    if (comm.rank() == 1) {
      std::this_thread::sleep_for(50ms);  // let the others block first
      comm.revoke();
      return;
    }
    // A receive blocked with no deadline and no sender in sight: only the
    // revocation can release it.
    EXPECT_THROW((void)comm.recv_value<int>(1, 4), pyhpc::RevokedError);
    EXPECT_TRUE(comm.revoked());
    EXPECT_THROW(comm.send_value<int>(1, (comm.rank() + 1) % comm.size(), 4),
                 pyhpc::RevokedError);
  });
}

TEST(Agree, ReturnsTheUnionOfContributionsOnEveryRank) {
  pc::run(4, [](pc::Communicator& comm) {
    // Only rank 1 "knows" rank 3 is suspect; everyone must learn it.
    const std::uint64_t local = comm.rank() == 1 ? (1ull << 3) : 0;
    EXPECT_EQ(comm.agree(local), 1ull << 3);
    // A second round works too and starts clean.
    EXPECT_EQ(comm.agree(0), 0u);
  });
}

TEST(Shrink, SurvivorsGetADenseReRankedCommunicatorAfterADeath) {
  auto inj = kill_injector(/*victim=*/1, /*skip=*/0);
  pc::run(4, config_with(inj), [](pc::Communicator& comm) {
    try {
      (void)comm.allreduce_value<int>(1, [](int a, int b) { return a + b; });
      FAIL() << "expected the failed collective to throw on every survivor";
    } catch (const pyhpc::PeerKilledError& e) {
      EXPECT_EQ(e.dead_rank(), 1);
    } catch (const pyhpc::RevokedError&) {
      // A faster survivor already detected the death and revoked; the
      // revocation unwedging THIS rank's blocked receive is the designed
      // escape hatch.
    }
    comm.revoke();
    pc::Communicator small = comm.shrink();
    EXPECT_EQ(small.size(), 3);
    // Old ranks 0,2,3 -> new ranks 0,1,2, order preserved.
    const int expected_new = comm.rank() == 0 ? 0 : comm.rank() - 1;
    EXPECT_EQ(small.rank(), expected_new);
    // The shrunken communicator is fully operational.
    EXPECT_EQ(small.allreduce_value<int>(small.rank(),
                                         [](int a, int b) { return a + b; }),
              3);
    EXPECT_EQ(small.broadcast_value<int>(small.rank() == 0 ? 17 : 0, 0), 17);
  });
}

// ---------------------------------------------------------------------------
// Shared collective deadline budget (one recv_timeout for ALL phases)
// ---------------------------------------------------------------------------

TEST(CollectiveDeadline, BudgetIsSharedAcrossPhases) {
  // Rabenseifner at p=2 runs two receive phases on each rank. A 400 ms
  // sender-side delay per message keeps every individual wait under the
  // 600 ms recv_timeout, but the second phase lands at ~800 ms from entry:
  // a per-phase deadline would pass, the shared budget must not.
  auto inj = std::make_shared<pc::FaultInjector>(1);
  pc::FaultRule rule;
  rule.kind = pc::FaultKind::kDelay;
  rule.source = 1;
  rule.dest = 0;
  rule.delay = 400ms;
  inj->add_rule(rule);
  pc::CommConfig cfg = config_with(inj);
  cfg.recv_timeout = 600ms;
  EXPECT_THROW(
      pc::run(2, cfg,
              [](pc::Communicator& comm) {
                std::vector<double> in(256, 1.0), out(256, 0.0);
                comm.allreduce(std::span<const double>(in),
                               std::span<double>(out),
                               [](double a, double b) { return a + b; },
                               pc::CollectiveAlgo::kRabenseifner);
              }),
      pyhpc::RecvTimeoutError);
}

TEST(CollectiveDeadline, BudgetRearmsPerCollective) {
  // Many healthy collectives back to back: each arms a fresh budget, so a
  // deadline sized for one collective never accumulates across calls.
  pc::CommConfig cfg;
  cfg.recv_timeout = 2000ms;
  pc::run(4, cfg, [](pc::Communicator& comm) {
    for (int i = 0; i < 50; ++i) {
      EXPECT_EQ(comm.allreduce_value<int>(1, [](int a, int b) { return a + b; }),
                comm.size());
    }
  });
}

// ---------------------------------------------------------------------------
// CheckpointStore
// ---------------------------------------------------------------------------

TEST(CheckpointStore, RestoresAcrossForeignBlockBoundaries) {
  pu::CheckpointStore store;
  // Writer layout 4+4+4; reader asks for ranges crossing every boundary.
  const double a[] = {0, 1, 2, 3}, b[] = {4, 5, 6, 7}, c[] = {8, 9, 10, 11};
  store.save("x", 1, 0, a, 4);
  store.save("x", 1, 4, b, 4);
  store.save("x", 1, 8, c, 4);
  EXPECT_TRUE(store.covers("x", 1, 0, 12));
  const auto mid = store.restore("x", 1, 3, 9);
  ASSERT_EQ(mid.size(), 6u);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(mid[static_cast<std::size_t>(i)], 3 + i);
  EXPECT_GE(store.bytes_stored(), 12 * sizeof(double));
}

TEST(CheckpointStore, HolesAreDetectedNotZeroFilled) {
  pu::CheckpointStore store;
  const double a[] = {0, 1, 2, 3};
  store.save("x", 2, 0, a, 4);
  store.save("x", 2, 8, a, 4);  // [4, 8) never saved: an unfinished version
  EXPECT_FALSE(store.covers("x", 2, 0, 12));
  EXPECT_TRUE(store.covers("x", 2, 8, 12));
  EXPECT_THROW((void)store.restore("x", 2, 0, 12), pyhpc::CheckpointError);
  EXPECT_THROW((void)store.restore("x", 3, 0, 4), pyhpc::CheckpointError);
}

TEST(CheckpointStore, ScalarsAndBlobsRoundTrip) {
  pu::CheckpointStore store;
  store.save_scalar("it", 5, 5.0);
  EXPECT_TRUE(store.has_scalar("it", 5));
  EXPECT_FALSE(store.has_scalar("it", 6));
  EXPECT_EQ(store.restore_scalar("it", 5), 5.0);

  store.save_blob("A", 1, 2, {3.0, 4.0});
  EXPECT_FALSE(store.blob_complete("A"));
  EXPECT_THROW((void)store.restore_blob("A"), pyhpc::CheckpointError);
  store.save_blob("A", 0, 2, {1.0, 2.0});
  EXPECT_TRUE(store.blob_complete("A"));
  const auto all = store.restore_blob("A");  // parts concatenate in order
  EXPECT_EQ(all, (std::vector<double>{1.0, 2.0, 3.0, 4.0}));
  store.save_blob("A", 0, 2, {9.0});  // immutable: first write wins
  EXPECT_EQ(store.restore_blob("A").front(), 1.0);
}

TEST(CheckpointStore, VectorSlicesRestoreUnderADifferentMap) {
  auto store = std::make_shared<pu::CheckpointStore>();
  // Saved at p=4 block boundaries, restored at p=3 boundaries.
  pc::run(4, [&](pc::Communicator& comm) {
    auto map = pt::Map<>::uniform(comm, 10);
    pt::Vector<double> v(map);
    for (std::int32_t i = 0; i < map.num_local(); ++i) {
      v[i] = static_cast<double>(map.local_to_global(i)) * 2.0;
    }
    pt::checkpoint_vector(*store, "v", 7, v);
  });
  pc::run(3, [&](pc::Communicator& comm) {
    auto map = pt::Map<>::uniform(comm, 10);
    ASSERT_TRUE(pt::vector_covered(*store, "v", 7, map));
    pt::Vector<double> v(map);
    pt::restore_vector(*store, "v", 7, v);
    for (std::int32_t i = 0; i < map.num_local(); ++i) {
      EXPECT_EQ(v[i], static_cast<double>(map.local_to_global(i)) * 2.0);
    }
  });
}

TEST(CheckpointStore, DistArraySnapshotRestoresUnderAnotherDistribution) {
  auto store = std::make_shared<pu::CheckpointStore>();
  pc::run(3, [&](pc::Communicator& comm) {
    auto block = po::Distribution::block(comm, po::Shape({6, 4}), 0);
    auto a = po::DistArray<double>::fromfunction(
        block, [](const std::vector<po::index_t>& g) {
          return static_cast<double>(10 * g[0] + g[1]);
        });
    po::snapshot_dist_array(*store, "plane", 3, a);
    comm.barrier();  // all blocks saved before anyone restores

    // Restore the same global content under a cyclic row distribution.
    auto cyclic = po::Distribution::cyclic(comm, po::Shape({6, 4}), 0);
    po::DistArray<double> b(cyclic);
    po::restore_dist_array(*store, "plane", 3, b);
    const auto view = b.local_view();
    for (po::index_t i = 0; i < b.local_size(); ++i) {
      const auto g = cyclic.global_of_local(i);
      EXPECT_EQ(view[static_cast<std::size_t>(i)],
                static_cast<double>(10 * g[0] + g[1]));
    }
  });
}

// ---------------------------------------------------------------------------
// Observability: fired-rule instants and the faults.seed replay handle
// ---------------------------------------------------------------------------

TEST(FaultObservability, FiredRulesLeaveInstantsAndSeedMetric) {
  pyhpc::obs::MetricsRegistry::global().reset();
  pyhpc::obs::clear_trace();
  pyhpc::obs::set_trace_enabled(true);
  auto inj = std::make_shared<pc::FaultInjector>(/*seed=*/4242);
  pc::FaultRule rule;
  rule.kind = pc::FaultKind::kDrop;
  rule.source = 1;
  rule.dest = 0;
  rule.tag = 5;
  inj->add_rule(rule);
  pc::run(2, config_with(inj), [](pc::Communicator& comm) {
    if (comm.rank() == 1) {
      comm.send_value<int>(1, 0, 5);  // dropped
      comm.send_value<int>(2, 0, 6);
      return;
    }
    EXPECT_EQ(comm.recv_value<int>(1, 6), 2);
  });
  pyhpc::obs::set_trace_enabled(false);
  const std::string json = pyhpc::obs::trace_json();
  EXPECT_NE(json.find("fault.fired"), std::string::npos);
  EXPECT_NE(json.find("drop"), std::string::npos);
  pyhpc::obs::clear_trace();
  EXPECT_EQ(pyhpc::obs::MetricsRegistry::global().value("faults.seed"), 4242.0);
}

// ---------------------------------------------------------------------------
// resilient_solve
// ---------------------------------------------------------------------------

TEST(ResilientSolve, NoFaultBaselineMatchesTheTruth) {
  auto store = std::make_shared<pu::CheckpointStore>();
  pc::run(4, [&](pc::Communicator& comm) {
    const std::int64_t n = 48;
    auto map = pt::Map<>::uniform(comm, n);
    auto a = laplacian(map);
    pt::Vector<double> xt(map), b(map), x0(map);
    for (std::int32_t i = 0; i < map.num_local(); ++i) {
      xt[i] = truth(map.local_to_global(i));
    }
    a.apply(xt, b);
    ps::ResilientOptions opts;
    opts.krylov.tolerance = 1e-12;
    opts.krylov.max_iterations = 400;
    auto res = ps::resilient_solve(*store, a, b, x0, opts);
    EXPECT_TRUE(res.solve.converged);
    EXPECT_EQ(res.recoveries, 0);
    EXPECT_EQ(res.final_size, 4);
    ASSERT_EQ(res.x_global.size(), static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) {
      EXPECT_NEAR(res.x_global[static_cast<std::size_t>(i)], truth(i), 1e-7);
    }
  });
}

// The acceptance scenario: p=8, one rank killed mid-CG, survivors revoke,
// agree, shrink to p=7, rebalance the restored operator, restore the last
// checkpoint, and finish with the correct solution.
TEST(ResilientSolve, RankKilledMidCgAtP8CompletesOnSurvivors) {
  auto& reg = pyhpc::obs::MetricsRegistry::global();
  reg.reset();
  auto store = std::make_shared<pu::CheckpointStore>();
  auto inj = std::make_shared<pc::FaultInjector>(/*seed=*/808);
  const std::int64_t n = 96;

  pc::run(8, config_with(inj), [&](pc::Communicator& comm) {
    auto map = pt::Map<>::uniform(comm, n);
    auto a = laplacian(map);
    pt::Vector<double> xt(map), b(map), x0(map);
    for (std::int32_t i = 0; i < map.num_local(); ++i) {
      xt[i] = truth(map.local_to_global(i));
    }
    a.apply(xt, b);

    // Arm the kill only after assembly so setup cannot be the casualty:
    // rank 5 dies ~40 collective-internal sends into the CG loop.
    comm.barrier();
    if (comm.rank() == 0) {
      pc::FaultRule rule;
      rule.kind = pc::FaultKind::kKillRank;
      rule.source = 5;
      rule.victim = 5;
      rule.skip_first = 40;
      rule.max_applications = 1;
      inj->add_rule(rule);
    }
    comm.barrier();

    ps::ResilientOptions opts;
    opts.krylov.tolerance = 1e-12;
    opts.krylov.max_iterations = 600;
    opts.checkpoint_interval = 2;
    // Survivors (rank 5 throws RankKilledError through this call and is
    // contained by the runner).
    auto res = ps::resilient_solve(*store, a, b, x0, opts);
    EXPECT_TRUE(res.solve.converged) << res.solve.summary();
    EXPECT_GE(res.recoveries, 1);
    EXPECT_EQ(res.final_size, 8 - res.recoveries);
    ASSERT_EQ(res.x_global.size(), static_cast<std::size_t>(n));
    // Residual oracle against the exact stencil: b_i = (A x_true)_i.
    double max_residual = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
      const auto at = [&](std::int64_t j) {
        return (j < 0 || j >= n) ? 0.0
                                 : res.x_global[static_cast<std::size_t>(j)];
      };
      const double bi = 2.0 * truth(i) - (i > 0 ? truth(i - 1) : 0.0) -
                        (i + 1 < n ? truth(i + 1) : 0.0);
      const double ri = bi - (2.0 * at(i) - at(i - 1) - at(i + 1));
      max_residual = std::max(max_residual, std::abs(ri));
    }
    EXPECT_LT(max_residual, 1e-8);
    for (std::int64_t i = 0; i < n; ++i) {
      EXPECT_NEAR(res.x_global[static_cast<std::size_t>(i)], truth(i), 1e-6);
    }
  });
  EXPECT_EQ(inj->counts().kills, 1u);
  // recovery.* metrics surfaced in the unified registry.
  EXPECT_GE(reg.value("recovery.detections"), 1.0);
  EXPECT_GE(reg.value("recovery.shrinks"), 1.0);
  EXPECT_GT(reg.value("recovery.checkpoint_bytes"), 0.0);
  EXPECT_TRUE(reg.has("recovery.resolve_iterations"));
  EXPECT_EQ(reg.value("faults.seed"), 808.0);
}

// Regression for the attempt-boundary split (found by the heat-equation
// scenario, where warm-started 2-iteration solves put the kill right at a
// solve boundary): without the exit agreement in resilient_solve, a rank
// killed between one rank's successful return and another rank's detection
// left the survivors running two different recovery protocols on one
// communicator — a deadlock at roughly every boundary skip below. The
// sweep walks the kill across the full message range of two back-to-back
// solves, so every position (mid-CG, mid-gather, mid-agreement, between
// solves) gets exercised; pre-fix this test hangs, post-fix every skip
// terminates with either a clean double solve or a joint recovery.
TEST(ResilientSolve, BoundaryKillSweepNeverSplitsRecoveryAcrossSolves) {
  // n is tiny and the second solve is warm-started, so each solve spans
  // only a few dozen victim messages and the sweep range reaches from
  // mid-CG of the first solve past the first solve's exit (gather +
  // agreement) into the second. Skips below 5 are excluded: they can land
  // inside the arming barrier itself, which is deliberately outside the
  // recovery scope (the acceptance tests arm with skip 40 for the same
  // reason).
  const std::int64_t n = 8;
  for (int skip = 5; skip <= 95; skip += 5) {
    SCOPED_TRACE(skip);
    auto store = std::make_shared<pu::CheckpointStore>();
    auto inj = std::make_shared<pc::FaultInjector>(
        /*seed=*/100 + static_cast<std::uint64_t>(skip));
    std::atomic<int> recoveries{0};

    pc::run(4, config_with(inj), [&](pc::Communicator& comm) {
      auto map = pt::Map<>::uniform(comm, n);
      auto a = laplacian(map);
      pt::Vector<double> xt(map), b(map), x(map);
      for (std::int32_t i = 0; i < map.num_local(); ++i) {
        xt[i] = truth(map.local_to_global(i));
      }
      a.apply(xt, b);

      // Arm after assembly (setup is not in recovery scope), exactly like
      // the acceptance test — only the skip varies across the sweep.
      comm.barrier();
      if (comm.rank() == 0) {
        pc::FaultRule rule;
        rule.kind = pc::FaultKind::kKillRank;
        rule.source = 2;
        rule.victim = 2;
        rule.skip_first = skip;
        rule.max_applications = 1;
        inj->add_rule(rule);
      }
      comm.barrier();

      // Two sequential solves on the same communicator, like one time step
      // after another; a recovery ends the run (the original communicator
      // is revoked), mirroring how a time-stepped caller must behave.
      for (int solve = 0; solve < 2; ++solve) {
        ps::ResilientOptions opts;
        opts.krylov.tolerance = 1e-12;
        opts.krylov.max_iterations = 200;
        opts.checkpoint_interval = 2;
        opts.key = solve == 0 ? "boundary.s0" : "boundary.s1";
        auto res = ps::resilient_solve(*store, a, b, x, opts);
        EXPECT_TRUE(res.solve.converged) << res.solve.summary();
        for (std::int64_t i = 0; i < n; ++i) {
          EXPECT_NEAR(res.x_global[static_cast<std::size_t>(i)], truth(i),
                      1e-6);
        }
        if (res.recoveries > 0) {
          int seen = recoveries.load();
          while (seen < res.recoveries &&
                 !recoveries.compare_exchange_weak(seen, res.recoveries)) {
          }
          break;
        }
        // Warm-start the next solve from the converged iterate, like a
        // time-stepped caller would: its CG then finishes in a couple of
        // messages, concentrating the sweep near the attempt boundary.
        for (std::int32_t i = 0; i < map.num_local(); ++i) {
          x[i] = res.x_global[static_cast<std::size_t>(map.local_to_global(i))];
        }
      }
    });
    EXPECT_LE(inj->counts().kills, 1u);
    if (inj->counts().kills == 1) {
      EXPECT_GE(recoveries.load(), 1) << "a kill fired but nobody recovered";
    }
  }
}

TEST(ResilientSolve, DroppedCollectiveMessageRecoversViaTimeoutAndShrink) {
  // A permanently dropped collective-internal message starves a receive:
  // detection comes from the shared deadline, recovery shrinks to the SAME
  // size (nobody died) onto a fresh context and the solve completes.
  auto store = std::make_shared<pu::CheckpointStore>();
  auto inj = std::make_shared<pc::FaultInjector>(/*seed=*/11);
  pc::FaultRule rule;
  rule.kind = pc::FaultKind::kDrop;
  rule.source = 2;
  rule.skip_first = 60;  // mid-solve, past assembly
  rule.max_applications = 1;
  inj->add_rule(rule);
  pc::CommConfig cfg = config_with(inj);
  cfg.recv_timeout = 500ms;

  pc::run(4, cfg, [&](pc::Communicator& comm) {
    const std::int64_t n = 48;
    auto map = pt::Map<>::uniform(comm, n);
    auto a = laplacian(map);
    pt::Vector<double> xt(map), b(map), x0(map);
    for (std::int32_t i = 0; i < map.num_local(); ++i) {
      xt[i] = truth(map.local_to_global(i));
    }
    a.apply(xt, b);
    ps::ResilientOptions opts;
    opts.krylov.tolerance = 1e-12;
    opts.krylov.max_iterations = 400;
    opts.checkpoint_interval = 3;
    auto res = ps::resilient_solve(*store, a, b, x0, opts);
    EXPECT_TRUE(res.solve.converged) << res.solve.summary();
    EXPECT_EQ(res.final_size, 4);  // no rank actually died
    for (std::int64_t i = 0; i < n; ++i) {
      EXPECT_NEAR(res.x_global[static_cast<std::size_t>(i)], truth(i), 1e-6);
    }
  });
  EXPECT_EQ(inj->counts().drops, 1u);
}

TEST(ResilientSolve, GmresRestartsFromTheLastCheckpointAfterADeath) {
  auto store = std::make_shared<pu::CheckpointStore>();
  auto inj = kill_injector(/*victim=*/3, /*skip=*/220, 21);
  const std::int64_t n = 60;
  pc::run(4, config_with(inj),
          [&](pc::Communicator& comm) {
            auto map = pt::Map<>::uniform(comm, n);
            auto a = laplacian(map);
            pt::Vector<double> xt(map), b(map), x0(map);
            for (std::int32_t i = 0; i < map.num_local(); ++i) {
              xt[i] = truth(map.local_to_global(i));
            }
            a.apply(xt, b);
            ps::ResilientOptions opts;
            opts.solver = "gmres";
            opts.krylov.tolerance = 1e-8;
            opts.krylov.max_iterations = 400;
            auto res = ps::resilient_solve(*store, a, b, x0, opts);
            EXPECT_TRUE(res.solve.converged) << res.solve.summary();
            for (std::int64_t i = 0; i < n; ++i) {
              EXPECT_NEAR(res.x_global[static_cast<std::size_t>(i)], truth(i),
                          1e-4);
            }
          });
  EXPECT_EQ(inj->counts().kills, 1u) << "the fault never fired: the scenario "
                                        "did not exercise recovery";
}
