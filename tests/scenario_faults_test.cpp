// Fault-injection variants of the heat-equation scenario (`ctest -L
// faults`): a rank killed mid-run must shrink the world through
// resilient_solve and leave the survivors holding a field that still
// matches the serial reference for the steps that completed; a dropped
// message must recover via the deadline path without losing a rank.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <memory>

#include "comm/config.hpp"
#include "comm/fault.hpp"
#include "comm/runner.hpp"
#include "obs/metrics.hpp"
#include "scenarios/scenarios.hpp"
#include "util/checkpoint.hpp"

namespace pc = pyhpc::comm;
namespace sc = pyhpc::scenarios;
namespace pu = pyhpc::util;

using namespace std::chrono_literals;

namespace {

/// Checks the recovered field against the serial reference truncated to
/// the steps that actually completed before the run ended.
void expect_matches_reference(const sc::HeatResult& res, sc::HeatOptions o,
                              double tolerance) {
  ASSERT_GE(res.steps_completed, 1);
  o.steps = res.steps_completed;
  const auto ref = sc::heat_serial_reference(o);
  ASSERT_EQ(res.u.size(), ref.size());
  double max_err = 0.0;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    max_err = std::max(max_err, std::abs(res.u[i] - ref[i]));
  }
  EXPECT_LT(max_err, tolerance);
}

}  // namespace

TEST(HeatFaults, KilledRankMidSolveRecoversOntoSurvivors) {
  auto& reg = pyhpc::obs::MetricsRegistry::global();
  reg.reset();
  auto inj = std::make_shared<pc::FaultInjector>(/*seed=*/909);
  pc::CommConfig cfg;
  cfg.injector = inj;

  sc::HeatOptions o;
  o.n = 96;
  o.steps = 4;
  // Backward Euler keeps every post-assembly message inside
  // resilient_solve's recovery scope (no unprotected RHS SpMV).
  o.scheme = sc::HeatScheme::kBackwardEuler;
  o.resilient = true;
  o.store = std::make_shared<pu::CheckpointStore>();
  o.injector = inj;
  o.fault = sc::HeatFault{pc::FaultKind::kKillRank, /*victim=*/5,
                          /*skip=*/40, /*delay=*/0ms};

  pc::run(8, cfg, [&](pc::Communicator& comm) {
    // Rank 5 throws RankKilledError out of run_heat; the runner contains
    // it, so only survivors reach the checks.
    const auto res = sc::run_heat(comm, o);
    EXPECT_TRUE(res.converged);
    EXPECT_GE(res.recoveries, 1);
    EXPECT_EQ(res.final_size, 8 - res.recoveries);
    expect_matches_reference(res, o, 1e-6);
  });
  EXPECT_EQ(inj->counts().kills, 1u)
      << "the kill never fired: the scenario did not exercise recovery";
  EXPECT_GE(reg.value("recovery.detections"), 1.0);
  EXPECT_GE(reg.value("recovery.shrinks"), 1.0);
  EXPECT_GE(reg.value("scenario.heat_equation.recoveries"), 1.0);
}

TEST(HeatFaults, DroppedMessageRecoversWithoutLosingARank) {
  auto inj = std::make_shared<pc::FaultInjector>(/*seed=*/17);
  pc::CommConfig cfg;
  cfg.injector = inj;
  cfg.recv_timeout = 500ms;  // the drop is detected by deadline, not death

  sc::HeatOptions o;
  o.n = 64;
  o.steps = 3;
  o.scheme = sc::HeatScheme::kBackwardEuler;
  o.resilient = true;
  o.store = std::make_shared<pu::CheckpointStore>();
  o.injector = inj;
  o.fault = sc::HeatFault{pc::FaultKind::kDrop, /*victim=*/2,
                          /*skip=*/60, /*delay=*/0ms};

  pc::run(4, cfg, [&](pc::Communicator& comm) {
    const auto res = sc::run_heat(comm, o);
    EXPECT_TRUE(res.converged);
    EXPECT_GE(res.recoveries, 1);
    EXPECT_EQ(res.final_size, 4);  // nobody died: same size, fresh context
    expect_matches_reference(res, o, 1e-6);
  });
  EXPECT_EQ(inj->counts().drops, 1u)
      << "the drop never fired: the scenario did not exercise recovery";
}

TEST(HeatFaults, DelayedMessagesPerturbNothing) {
  // Delays must never change the answer — only the clock.
  auto inj = std::make_shared<pc::FaultInjector>(/*seed=*/23);
  pc::CommConfig cfg;
  cfg.injector = inj;

  sc::HeatOptions o;
  o.n = 64;
  o.steps = 3;
  o.injector = inj;
  o.fault = sc::HeatFault{pc::FaultKind::kDelay, /*victim=*/1,
                          /*skip=*/10, /*delay=*/30ms};
  const auto ref = sc::heat_serial_reference(o);

  pc::run(4, cfg, [&](pc::Communicator& comm) {
    const auto res = sc::run_heat(comm, o);
    EXPECT_TRUE(res.converged);
    EXPECT_EQ(res.steps_completed, o.steps);
    ASSERT_EQ(res.u.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
      EXPECT_NEAR(res.u[i], ref[i], 1e-8);
    }
  });
  EXPECT_GE(inj->counts().delays, 1u);
}
