// Tests for the VM and JIT tiers: exact semantic equivalence with the
// interpreter (including a randomized-program sweep), JIT type discovery,
// NotJittable fallbacks, FFI, and the embed API.
#include <gtest/gtest.h>

#include <cmath>

#include "seamless/seamless.hpp"
#include "util/random.hpp"

namespace sm = pyhpc::seamless;
using sm::Value;

namespace {

// Runs a function through all three tiers and checks they agree; returns
// the interpreter's result. `jittable` = false skips the JIT tier.
Value run_all_tiers(const std::string& source, const std::string& fn,
                    std::vector<Value> args, bool jittable = true) {
  sm::Engine engine(source);
  Value vi = engine.run_interpreted(fn, args);
  Value vv = engine.run_vm(fn, args);
  EXPECT_EQ(vi.repr(), vv.repr()) << fn << ": interpreter vs VM";
  if (jittable) {
    Value vj = engine.run_jit(fn, args);
    // JIT promotes bools to ints in arithmetic identically; compare
    // numerically for numbers, repr otherwise.
    if (vi.is_numeric() && vj.is_numeric()) {
      EXPECT_DOUBLE_EQ(vi.to_double(), vj.to_double())
          << fn << ": interpreter vs JIT";
      EXPECT_EQ(vi.is_float(), vj.is_float()) << fn << ": type drift";
    } else {
      EXPECT_EQ(vi.repr(), vj.repr());
    }
  }
  return vi;
}

}  // namespace

TEST(Tiers, PaperSumAgreesEverywhere) {
  const std::string src =
      "def sum(it):\n"
      "    res = 0.0\n"
      "    for i in range(len(it)):\n"
      "        res += it[i]\n"
      "    return res\n";
  auto arr = sm::ArrayValue::owned({0.5, 1.5, 2.0, -1.0});
  Value v = run_all_tiers(src, "sum", {Value::of(arr)});
  EXPECT_DOUBLE_EQ(v.as_float(), 3.0);
}

TEST(Tiers, IntegerAlgorithms) {
  const std::string gcd =
      "def gcd(a, b):\n"
      "    while b != 0:\n"
      "        t = b\n"
      "        b = a % b\n"
      "        a = t\n"
      "    return a\n";
  EXPECT_EQ(run_all_tiers(gcd, "gcd", {Value::of(252), Value::of(105)}).as_int(),
            21);

  const std::string collatz =
      "def steps(n):\n"
      "    count = 0\n"
      "    while n != 1:\n"
      "        if n % 2 == 0:\n"
      "            n = n // 2\n"
      "        else:\n"
      "            n = 3 * n + 1\n"
      "        count += 1\n"
      "    return count\n";
  EXPECT_EQ(run_all_tiers(collatz, "steps", {Value::of(27)}).as_int(), 111);
}

TEST(Tiers, FloatKernelsAgree) {
  const std::string src =
      "def horner(xs, x):\n"
      "    acc = 0.0\n"
      "    for i in range(len(xs)):\n"
      "        acc = acc * x + xs[i]\n"
      "    return acc\n";
  auto coeffs = sm::ArrayValue::owned({2.0, -1.0, 0.5});
  Value v = run_all_tiers(src, "horner", {Value::of(coeffs), Value::of(3.0)});
  EXPECT_DOUBLE_EQ(v.as_float(), 2.0 * 9 - 3 + 0.5);
}

TEST(Tiers, ArrayWritesVisibleToCaller) {
  const std::string src =
      "def scale(a, s):\n"
      "    for i in range(len(a)):\n"
      "        a[i] = a[i] * s\n"
      "    return 0\n";
  for (int tier = 0; tier < 3; ++tier) {
    sm::Engine engine(src);
    auto arr = sm::ArrayValue::owned({1.0, 2.0, 3.0});
    std::vector<Value> args{Value::of(arr), Value::of(2.0)};
    switch (tier) {
      case 0: engine.run_interpreted("scale", args); break;
      case 1: engine.run_vm("scale", args); break;
      default: engine.run_jit("scale", args); break;
    }
    EXPECT_DOUBLE_EQ(arr->data[2], 6.0) << "tier " << tier;
  }
}

TEST(Tiers, BreakContinueNestedLoops) {
  const std::string src =
      "def f(n):\n"
      "    total = 0\n"
      "    for i in range(n):\n"
      "        for j in range(n):\n"
      "            if j > i:\n"
      "                break\n"
      "            if j == 1:\n"
      "                continue\n"
      "            total += 10 * i + j\n"
      "    return total\n";
  Value v = run_all_tiers(src, "f", {Value::of(5)});
  // Serial reference.
  int want = 0;
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 5; ++j) {
      if (j > i) break;
      if (j == 1) continue;
      want += 10 * i + j;
    }
  }
  EXPECT_EQ(v.as_int(), want);
}

TEST(Tiers, RandomizedProgramEquivalence) {
  // Property sweep: generated straight-line integer programs with loops and
  // conditionals must agree across all three tiers.
  pyhpc::util::Xoshiro256 rng(2024);
  for (int trial = 0; trial < 40; ++trial) {
    const std::int64_t c1 = rng.next_int(1, 9);
    const std::int64_t c2 = rng.next_int(1, 9);
    const std::int64_t c3 = rng.next_int(2, 5);
    const std::int64_t mod = rng.next_int(2, 7);
    std::string src =
        "def f(a, b):\n"
        "    x = a * " + std::to_string(c1) + " + b\n"
        "    y = 0\n"
        "    for i in range(" + std::to_string(c3) + ", x % 17 + " +
        std::to_string(c2) + "):\n"
        "        if i % " + std::to_string(mod) + " == 0:\n"
        "            y += i * 2\n"
        "        else:\n"
        "            y -= i\n"
        "    while y > 100:\n"
        "        y = y - 7\n"
        "    return y * x\n";
    const auto a = rng.next_int(-20, 20);
    const auto b = rng.next_int(-20, 20);
    run_all_tiers(src, "f", {Value::of(a), Value::of(b)});
  }
}

// ---------------------------------------------------------------------------
// VM specifics
// ---------------------------------------------------------------------------

TEST(Vm, DisassemblyIsReadable) {
  sm::Module mod = sm::parse(
      "def f(x):\n"
      "    return x + 1\n");
  sm::VirtualMachine vm(mod);
  const std::string dis = vm.compiled("f").disassemble();
  EXPECT_NE(dis.find("LOAD_LOCAL"), std::string::npos);
  EXPECT_NE(dis.find("BINARY"), std::string::npos);
  EXPECT_NE(dis.find("RETURN_VALUE"), std::string::npos);
}

TEST(Vm, UndefinedLocalFaultsLikeInterpreter) {
  const std::string src =
      "def f(flag):\n"
      "    if flag:\n"
      "        x = 1\n"
      "    return x\n";
  sm::Engine engine(src);
  EXPECT_EQ(engine.run_vm("f", {Value::of(true)}).as_int(), 1);
  EXPECT_THROW(engine.run_vm("f", {Value::of(false)}), pyhpc::RuntimeFault);
  EXPECT_THROW(engine.run_interpreted("f", {Value::of(false)}),
               pyhpc::RuntimeFault);
}

TEST(Vm, LoopVarReassignmentDoesNotChangeIteration) {
  const std::string src =
      "def f():\n"
      "    total = 0\n"
      "    for i in range(5):\n"
      "        i = 100\n"
      "        total += 1\n"
      "    return total\n";
  sm::Engine engine(src);
  EXPECT_EQ(engine.run_interpreted("f", {}).as_int(), 5);
  EXPECT_EQ(engine.run_vm("f", {}).as_int(), 5);
}

// ---------------------------------------------------------------------------
// JIT specifics
// ---------------------------------------------------------------------------

TEST(Jit, TypeDiscoveryMatchesPaperQuote) {
  // "type res as a floating point variable and ... i as an integer type".
  sm::Engine engine(sm::numpy::source());
  const auto& fn = engine.jit("sum", {sm::JitType::kArray});
  EXPECT_EQ(fn.return_type(), sm::JitType::kFloat);
  EXPECT_EQ(fn.param_types()[0], sm::JitType::kArray);
  EXPECT_GT(fn.code_size(), 0u);
}

TEST(Jit, SignatureCachePerTypes) {
  sm::Engine engine(
      "def add(a, b):\n"
      "    return a + b\n");
  EXPECT_EQ(engine.run_jit("add", {Value::of(2), Value::of(3)}).as_int(), 5);
  EXPECT_EQ(engine.jit_cache_size(), 1u);
  EXPECT_EQ(engine.run_jit("add", {Value::of(4), Value::of(5)}).as_int(), 9);
  EXPECT_EQ(engine.jit_cache_size(), 1u);  // same signature reused
  EXPECT_DOUBLE_EQ(
      engine.run_jit("add", {Value::of(2.5), Value::of(3.0)}).as_float(), 5.5);
  EXPECT_EQ(engine.jit_cache_size(), 2u);  // float signature added
}

TEST(Jit, NotJittableFallbacks) {
  // Lists are dynamic -> NotJittable; the VM still handles it.
  const std::string src =
      "def f(n):\n"
      "    xs = list(n)\n"
      "    return len(xs)\n";
  sm::Engine engine(src);
  EXPECT_THROW(engine.run_jit("f", {Value::of(3)}), sm::NotJittable);
  EXPECT_EQ(engine.run_vm("f", {Value::of(3)}).as_int(), 3);

  // Polymorphic variable -> NotJittable.
  sm::Engine e2(
      "def g(flag):\n"
      "    if flag:\n"
      "        x = 1\n"
      "    else:\n"
      "        x = 2.5\n"
      "    return x\n");
  // int/float joins to float - this IS jittable with widening.
  EXPECT_DOUBLE_EQ(e2.run_jit("g", {Value::of(false)}).as_float(), 2.5);
  EXPECT_DOUBLE_EQ(e2.run_jit("g", {Value::of(true)}).as_float(), 1.0);

  // Module-function calls compile (inlined per-signature callees); truly
  // unknown names stay NotJittable.
  sm::Engine e3(
      "def h(x):\n"
      "    return helper(x)\n"
      "def helper(x):\n"
      "    return x\n");
  EXPECT_EQ(e3.run_jit("h", {Value::of(1)}).as_int(), 1);
  sm::Engine e4(
      "def h(x):\n"
      "    return ghost(x)\n");
  EXPECT_THROW(e4.run_jit("h", {Value::of(1)}), sm::NotJittable);
}

TEST(Jit, RuntimeChecksSurvive) {
  sm::Engine engine(
      "def f(a, i):\n"
      "    return a[i]\n");
  auto arr = sm::ArrayValue::owned({1.0, 2.0});
  EXPECT_DOUBLE_EQ(
      engine.run_jit("f", {Value::of(arr), Value::of(-1)}).as_float(), 2.0);
  EXPECT_THROW(engine.run_jit("f", {Value::of(arr), Value::of(5)}),
               pyhpc::RuntimeFault);

  sm::Engine e2(
      "def g(a, b):\n"
      "    return a // b\n");
  EXPECT_THROW(e2.run_jit("g", {Value::of(1), Value::of(0)}),
               pyhpc::RuntimeFault);
}

TEST(Jit, FastArrayEntryPoint) {
  sm::Engine engine(sm::numpy::source());
  const auto& fn = engine.jit("sum", {sm::JitType::kArray});
  std::vector<double> data{1.0, 2.0, 3.5};
  EXPECT_DOUBLE_EQ(fn.call_array_to_float(data), 6.5);
}

// ---------------------------------------------------------------------------
// FFI (§IV.C)
// ---------------------------------------------------------------------------

TEST(Ffi, PaperAtan2Example) {
  // libm = cmath('m'); libm.atan2(1.0, 2.0)
  sm::CModule libm = sm::CModule::math();
  const Value args[] = {Value::of(1.0), Value::of(2.0)};
  const Value result = libm.call("atan2", args);
  EXPECT_DOUBLE_EQ(result.as_float(), std::atan2(1.0, 2.0));
  // "all of the math library is available": spot-check a few more.
  EXPECT_GT(libm.function_names().size(), 15u);
  const Value one[] = {Value::of(0.25)};
  EXPECT_DOUBLE_EQ(libm.call("sqrt", one).as_float(), 0.5);
  EXPECT_EQ(libm.arity("atan2"), 2u);
}

TEST(Ffi, SignatureAutoDiscoveryFromPointerType) {
  sm::CModule mod("custom");
  mod.def("hypot3", +[](double x, double y) { return std::hypot(x, y); });
  mod.def("addi", +[](int a, std::int64_t b) {
    return static_cast<std::int64_t>(a) + b;
  });
  const Value fargs[] = {Value::of(3.0), Value::of(4.0)};
  EXPECT_DOUBLE_EQ(mod.call("hypot3", fargs).as_float(), 5.0);
  const Value iargs[] = {Value::of(2), Value::of(40)};
  EXPECT_EQ(mod.call("addi", iargs).as_int(), 42);
  // Arity is enforced.
  const Value bad[] = {Value::of(1.0)};
  EXPECT_THROW(mod.call("hypot3", bad), pyhpc::RuntimeFault);
  EXPECT_THROW(mod.call("ghost", fargs), pyhpc::RuntimeFault);
}

TEST(Ffi, MissingLibraryOrSymbolThrows) {
  EXPECT_THROW(sm::CModule::load_library("definitely_not_a_library_xyz"),
               pyhpc::RuntimeFault);
  sm::CModule libm = sm::CModule::load_library("m");
  EXPECT_THROW(libm.def_external<double(double)>("no_such_symbol_abc"),
               pyhpc::RuntimeFault);
}

TEST(Ffi, InstallIntoInterpreterAndVm) {
  // MiniPy code calling straight into libm through the injected namespace.
  const std::string src =
      "def angle(y, x):\n"
      "    return atan2(y, x)\n";
  sm::Engine engine(src);
  engine.bind(sm::CModule::math());
  const double want = std::atan2(1.0, 1.0);
  EXPECT_DOUBLE_EQ(
      engine.run_interpreted("angle", {Value::of(1.0), Value::of(1.0)}).as_float(),
      want);
  EXPECT_DOUBLE_EQ(
      engine.run_vm("angle", {Value::of(1.0), Value::of(1.0)}).as_float(),
      want);
}

// ---------------------------------------------------------------------------
// Embed API (§IV.D)
// ---------------------------------------------------------------------------

TEST(Embed, PaperListingWorksVerbatim) {
  // int arr[100]; seamless::numpy::sum(arr);
  int arr[100];
  for (int i = 0; i < 100; ++i) arr[i] = i;
  EXPECT_DOUBLE_EQ(pyhpc::seamless::numpy::sum(arr), 4950.0);

  // std::vector<double> darr(100); seamless::numpy::sum(darr);
  std::vector<double> darr(100);
  for (int i = 0; i < 100; ++i) darr[static_cast<std::size_t>(i)] = 0.5 * i;
  EXPECT_DOUBLE_EQ(pyhpc::seamless::numpy::sum(darr), 0.5 * 4950.0);
}

TEST(Embed, MinMaxMeanDot) {
  std::vector<double> v{3.0, -1.0, 4.0, 1.5};
  namespace np = pyhpc::seamless::numpy;
  EXPECT_DOUBLE_EQ(np::min(v), -1.0);
  EXPECT_DOUBLE_EQ(np::max(v), 4.0);
  EXPECT_DOUBLE_EQ(np::mean(v), 7.5 / 4.0);
  std::vector<double> w{1.0, 1.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(np::dot(v, w), 3.0 - 1.0 + 4.0 + 3.0);
  EXPECT_THROW(np::dot(v, std::vector<double>{1.0}), pyhpc::RuntimeFault);
}

TEST(Embed, SourceIsPythonSubset) {
  // The embed functions really are MiniPy code.
  EXPECT_NE(pyhpc::seamless::numpy::source().find("def sum(it):"),
            std::string::npos);
  // And the same source runs in the plain interpreter too.
  sm::Engine engine(pyhpc::seamless::numpy::source());
  auto arr = sm::ArrayValue::owned({2.0, 3.0});
  EXPECT_DOUBLE_EQ(
      engine.run_interpreted("sum", {Value::of(arr)}).as_float(), 5.0);
}

// ---------------------------------------------------------------------------
// Source-keyed engine cache (DESIGN.md §10)
// ---------------------------------------------------------------------------

#include "seamless/cached.hpp"
#include "util/setup_cache.hpp"

TEST(CachedEngine, IdenticalSourceSharesOneEngine) {
  pyhpc::util::SetupCache cache(4, "test.seamless.cache");
  const std::string src = "def f(x):\n    return x * 2\n";
  auto e1 = sm::cached_engine(cache, src);
  auto e2 = sm::cached_engine(cache, src);
  EXPECT_EQ(e1.get(), e2.get());
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(CachedEngine, AnyEditRebuilds) {
  pyhpc::util::SetupCache cache(4, "test.seamless.cache2");
  auto e1 = sm::cached_engine(cache, "def f(x):\n    return x + 1\n");
  auto e2 = sm::cached_engine(cache, "def f(x):\n    return x + 2\n");
  EXPECT_NE(e1.get(), e2.get());
  EXPECT_EQ(cache.stats().misses, 2u);
}
