// Hardening sweep: paths the per-module suites don't stress — arbitrary
// (cyclic) row maps through the distributed directory in CrsMatrix and
// AMG, zero-size payload collectives, peephole jump-safety, randomized
// float/array MiniPy programs across all tiers, and empty-rank layouts.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "comm/runner.hpp"
#include "galeri/gallery.hpp"
#include "precond/amg.hpp"
#include "seamless/seamless.hpp"
#include "solvers/krylov.hpp"
#include "util/random.hpp"

namespace pc = pyhpc::comm;
namespace tp = pyhpc::tpetra;
namespace gl = pyhpc::galeri;
namespace sm = pyhpc::seamless;

using LO = std::int32_t;
using GO = std::int64_t;
using sm::Value;

// ---------------------------------------------------------------------------
// Arbitrary row maps: every Import/Export goes through the distributed
// directory instead of contiguous arithmetic.
// ---------------------------------------------------------------------------

namespace {
tp::Map<> cyclic_map(pc::Communicator& comm, GO n) {
  std::vector<GO> mine;
  for (GO g = comm.rank(); g < n; g += comm.size()) mine.push_back(g);
  return tp::Map<>::from_global_indices(comm, mine);
}
}  // namespace

class CyclicMatrixSweep : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Ranks, CyclicMatrixSweep, ::testing::Values(1, 2, 3, 5));

TEST_P(CyclicMatrixSweep, SpmvOnCyclicRowMapMatchesBlockMap) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    const GO n = 40;
    // The same 1D Laplacian assembled over a cyclic map and a block map
    // must produce identical results (up to layout).
    auto cyc = cyclic_map(comm, n);
    tp::CrsMatrix<double> ac(cyc);
    for (LO i = 0; i < cyc.num_local(); ++i) {
      const GO g = cyc.local_to_global(i);
      if (g > 0) ac.insert_global_value(g, g - 1, -1.0);
      ac.insert_global_value(g, g, 2.0);
      if (g + 1 < n) ac.insert_global_value(g, g + 1, -1.0);
    }
    ac.fill_complete();

    tp::Vector<double> x(cyc), y(cyc);
    for (LO i = 0; i < cyc.num_local(); ++i) {
      x[i] = std::cos(0.37 * static_cast<double>(cyc.local_to_global(i)));
    }
    ac.apply(x, y);

    auto block = tp::Map<>::uniform(comm, n);
    auto ab = gl::laplace1d(block);
    tp::Vector<double> xb(block), yb(block);
    for (LO i = 0; i < block.num_local(); ++i) {
      xb[i] = std::cos(0.37 * static_cast<double>(block.local_to_global(i)));
    }
    ab.apply(xb, yb);

    auto got = y.gather_global();
    auto want = yb.gather_global();
    for (GO g = 0; g < n; ++g) {
      EXPECT_NEAR(got[static_cast<std::size_t>(g)],
                  want[static_cast<std::size_t>(g)], 1e-13)
          << "row " << g;
    }
  });
}

TEST_P(CyclicMatrixSweep, CgSolvesOnCyclicMap) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    const GO n = 36;
    auto cyc = cyclic_map(comm, n);
    tp::CrsMatrix<double> a(cyc);
    for (LO i = 0; i < cyc.num_local(); ++i) {
      const GO g = cyc.local_to_global(i);
      if (g > 0) a.insert_global_value(g, g - 1, -1.0);
      a.insert_global_value(g, g, 2.0);
      if (g + 1 < n) a.insert_global_value(g, g + 1, -1.0);
    }
    a.fill_complete();
    auto b = gl::rhs_for_ones(a);
    tp::Vector<double> x(cyc, 0.0);
    auto res = pyhpc::solvers::cg_solve(a, b, x);
    EXPECT_TRUE(res.converged) << res.summary();
    tp::Vector<double> err(cyc, 1.0);
    err.update(1.0, x, -1.0);
    EXPECT_LT(err.norm2(), 1e-6);
  });
}

TEST(EmptyRanks, MapsAndVectorsWithZeroLocalRows) {
  // More ranks than rows: some ranks own nothing, everything must still
  // work (collectives, SpMV, reductions).
  pc::run(6, [](pc::Communicator& comm) {
    const GO n = 4;
    auto map = tp::Map<>::uniform(comm, n);
    auto a = gl::laplace1d(map);
    auto b = gl::rhs_for_ones(a);
    tp::Vector<double> x(map, 0.0);
    auto res = pyhpc::solvers::cg_solve(a, b, x);
    EXPECT_TRUE(res.converged);
    EXPECT_NEAR(x.mean_value(), 1.0, 1e-8);
  });
}

TEST(AmgOnNonUniformMap, SkewedBlockSizes) {
  pc::run(3, [](pc::Communicator& comm) {
    // Rank 0 gets most rows; AMG must still build and contract.
    const LO mine = comm.rank() == 0 ? 80 : 10;
    auto map = tp::Map<>::from_local_sizes(comm, mine);
    auto a = gl::laplace1d(map);
    pyhpc::precond::AmgPreconditioner amg(a);
    auto b = gl::rhs_for_ones(a);
    tp::Vector<double> x(map, 0.0);
    auto res = pyhpc::solvers::cg_solve(a, b, x, {}, &amg);
    EXPECT_TRUE(res.converged);
    EXPECT_LT(res.iterations, 30);
  });
}

// ---------------------------------------------------------------------------
// comm edge cases
// ---------------------------------------------------------------------------

TEST(CommEdge, ZeroLengthPayloads) {
  pc::run(3, [](pc::Communicator& comm) {
    // Empty typed payloads through p2p and collectives.
    if (comm.rank() == 0) {
      comm.send(std::span<const double>{}, 1, 5);
    } else if (comm.rank() == 1) {
      auto v = comm.recv_vector<double>(0, 5);
      EXPECT_TRUE(v.empty());
    }
    std::vector<int> nothing;
    comm.broadcast(std::span<int>(nothing), 0);
    auto chunks = comm.allgatherv(std::span<const int>(nothing));
    for (const auto& c : chunks) EXPECT_TRUE(c.empty());
    auto parts = comm.alltoallv(std::vector<std::vector<int>>(
        static_cast<std::size_t>(comm.size())));
    for (const auto& p : parts) EXPECT_TRUE(p.empty());
  });
}

TEST(CommEdge, LargePayloadRoundTrip) {
  pc::run(2, [](pc::Communicator& comm) {
    const std::size_t n = 1 << 20;  // 8 MB
    if (comm.rank() == 0) {
      std::vector<double> big(n);
      std::iota(big.begin(), big.end(), 0.0);
      comm.send(std::span<const double>(big), 1, 0);
    } else {
      auto big = comm.recv_vector<double>(0, 0);
      ASSERT_EQ(big.size(), n);
      EXPECT_DOUBLE_EQ(big[n - 1], static_cast<double>(n - 1));
    }
  });
}

TEST(CommEdge, ManyInterleavedCollectivesAcrossDuplicates) {
  pc::run(4, [](pc::Communicator& comm) {
    auto dup = comm.duplicate();
    // Interleave collectives on two communicators sharing one context;
    // tags from independent sequence counters must not cross-match.
    for (int i = 0; i < 25; ++i) {
      EXPECT_EQ(comm.allreduce_value<int>(i, std::plus<int>{}), 4 * i);
      EXPECT_EQ(dup.allreduce_value<int>(2 * i, std::plus<int>{}), 8 * i);
      EXPECT_EQ(comm.broadcast_value(comm.rank() == 1 ? i : -1, 1), i);
    }
  });
}

// ---------------------------------------------------------------------------
// Peephole safety
// ---------------------------------------------------------------------------

TEST(Peephole, SuperinstructionsAppearInHotLoops) {
  sm::Module mod = sm::parse(
      "def sum(it):\n"
      "    res = 0.0\n"
      "    for i in range(len(it)):\n"
      "        res += it[i]\n"
      "    return res\n");
  sm::VirtualMachine vm(mod);
  const std::string dis = vm.compiled("sum").disassemble();
  EXPECT_NE(dis.find("INDEX_LOAD_LL"), std::string::npos) << dis;
  EXPECT_NE(dis.find("AUG_LOCAL"), std::string::npos) << dis;
  EXPECT_NE(dis.find("MOV_LOCAL"), std::string::npos) << dis;
}

TEST(Peephole, JumpTargetsIntoWindowsPreserved) {
  // `continue` jumps into the middle of what would otherwise fuse; the
  // optimizer must keep semantics.
  const std::string src =
      "def f(n):\n"
      "    total = 0\n"
      "    i = 0\n"
      "    while i < n:\n"
      "        i += 1\n"
      "        if i % 3 == 0:\n"
      "            continue\n"
      "        total += i\n"
      "    return total\n";
  sm::Engine engine(src);
  int want = 0;
  for (int i = 1; i <= 20; ++i) {
    if (i % 3 != 0) want += i;
  }
  EXPECT_EQ(engine.run_vm("f", {Value::of(20)}).as_int(), want);
  EXPECT_EQ(engine.run_interpreted("f", {Value::of(20)}).as_int(), want);
}

TEST(Peephole, UndefinedLocalStillCaughtInFusedOps) {
  // x + y fuses to BINARY_LL; the defined-ness check must survive fusion.
  sm::Engine engine(
      "def f(flag):\n"
      "    x = 1\n"
      "    if flag:\n"
      "        y = 2\n"
      "    return x + y\n");
  EXPECT_EQ(engine.run_vm("f", {Value::of(true)}).as_int(), 3);
  EXPECT_THROW(engine.run_vm("f", {Value::of(false)}), pyhpc::RuntimeFault);
}

// ---------------------------------------------------------------------------
// Randomized float/array programs across all tiers
// ---------------------------------------------------------------------------

TEST(RandomPrograms, FloatArrayKernelsAgreeAcrossTiers) {
  pyhpc::util::Xoshiro256 rng(777);
  for (int trial = 0; trial < 25; ++trial) {
    const double c1 = 0.25 * static_cast<double>(rng.next_int(1, 8));
    const double c2 = 0.5 * static_cast<double>(rng.next_int(1, 6));
    const std::int64_t stride = rng.next_int(1, 3);
    const std::string src =
        "def kernel(a, t):\n"
        "    acc = 0.0\n"
        "    for i in range(0, len(a), " + std::to_string(stride) + "):\n"
        "        v = a[i] * " + std::to_string(c1) + " + t\n"
        "        if v > " + std::to_string(c2) + ":\n"
        "            acc += v\n"
        "        else:\n"
        "            acc -= abs(v)\n"
        "    return sqrt(abs(acc) + 1.0)\n";
    sm::Engine engine(src);
    std::vector<double> data(37);
    for (auto& x : data) x = 4.0 * rng.next_double() - 2.0;
    auto arr = sm::ArrayValue::owned(data);
    std::vector<Value> args{Value::of(arr), Value::of(rng.next_double())};
    const double vi = engine.run_interpreted("kernel", args).as_float();
    const double vv = engine.run_vm("kernel", args).as_float();
    const double vj = engine.run_jit("kernel", args).as_float();
    EXPECT_DOUBLE_EQ(vi, vv) << src;
    EXPECT_DOUBLE_EQ(vi, vj) << src;
  }
}

TEST(RandomPrograms, RecursiveIntFunctionsInterpreterVsVm) {
  pyhpc::util::Xoshiro256 rng(555);
  for (int trial = 0; trial < 10; ++trial) {
    const std::int64_t k = rng.next_int(2, 4);
    const std::string src =
        "def f(n):\n"
        "    if n <= 1:\n"
        "        return 1\n"
        "    return f(n - 1) + " + std::to_string(k) + " * f(n - 2)\n";
    sm::Engine engine(src);
    const auto n = rng.next_int(3, 12);
    EXPECT_EQ(engine.run_interpreted("f", {Value::of(n)}).as_int(),
              engine.run_vm("f", {Value::of(n)}).as_int());
  }
}

TEST(CommSoak, RandomizedCollectiveAndP2pSchedule) {
  // Stress the internal tag sequencing: a long, deterministic, random mix
  // of collectives and p2p traffic (same schedule derived on every rank
  // from a shared seed).
  pc::run(4, [](pc::Communicator& comm) {
    pyhpc::util::Xoshiro256 sched(4242);  // same stream on every rank
    for (int step = 0; step < 200; ++step) {
      const auto kind = sched.next_int(0, 4);
      switch (kind) {
        case 0: {
          const int want = static_cast<int>(sched.next_int(0, 1000));
          EXPECT_EQ(comm.broadcast_value(comm.rank() == 2 ? want : -1, 2),
                    want);
          break;
        }
        case 1: {
          const auto v = sched.next_int(1, 50);
          EXPECT_EQ(comm.allreduce_value<std::int64_t>(
                        v, std::plus<std::int64_t>{}),
                    v * comm.size());
          break;
        }
        case 2: {
          // Ring p2p with a schedule-derived tag.
          const int tag = static_cast<int>(sched.next_int(0, 1 << 20));
          const int next = (comm.rank() + 1) % comm.size();
          const int prev = (comm.rank() + comm.size() - 1) % comm.size();
          comm.send_value(comm.rank() * 7, next, tag);
          EXPECT_EQ(comm.recv_value<int>(prev, tag), prev * 7);
          break;
        }
        case 3: {
          auto all = comm.allgather_value(comm.rank());
          for (int r = 0; r < comm.size(); ++r) {
            EXPECT_EQ(all[static_cast<std::size_t>(r)], r);
          }
          break;
        }
        default: {
          const auto inc = comm.scan_inclusive<std::int64_t>(
              1, std::plus<std::int64_t>{});
          EXPECT_EQ(inc, comm.rank() + 1);
          break;
        }
      }
    }
  });
}

TEST(JitTypes, LoopCarriedWideningConverges) {
  // x starts int, becomes float inside the loop: the fixpoint must widen x
  // to float everywhere and all tiers must agree.
  sm::Engine engine(
      "def f(n):\n"
      "    x = 1\n"
      "    for i in range(n):\n"
      "        x = x + 0.5\n"
      "    return x\n");
  const double want = 1.0 + 0.5 * 7;
  EXPECT_DOUBLE_EQ(engine.run_jit("f", {Value::of(7)}).as_float(), want);
  EXPECT_DOUBLE_EQ(engine.run_interpreted("f", {Value::of(7)}).to_double(),
                   want);
  const auto& fn = engine.jit("f", {sm::JitType::kInt});
  EXPECT_EQ(fn.return_type(), sm::JitType::kFloat);
}
