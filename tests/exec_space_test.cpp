// Tests for util::exec (CTest label `exec`): exactly-once coverage under
// every backend, the determinism contract (bit-identical transform_reduce
// across backends AND thread counts on association-sensitive data),
// misaligned/empty/odd-length ranges through the SoA fast paths, exception
// propagation out of scheduled chunks, NaN/Inf agreement between the SIMD
// and serial spaces for min/max/mean, selection precedence
// (per-call > thread default > environment), and the exec.* backend
// counters. TSan-clean: the pool spaces schedule on the rank's TaskPool,
// which the `pool` label already keeps clean — these tests add no new
// sharing patterns.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

#include "comm/runner.hpp"
#include "obs/metrics.hpp"
#include "odin/dist_array.hpp"
#include "odin/expr.hpp"
#include "util/error.hpp"
#include "util/exec_space.hpp"
#include "util/task_pool.hpp"

namespace pc = pyhpc::comm;
namespace od = pyhpc::odin;
namespace pu = pyhpc::util;
namespace px = pyhpc::util::exec;

namespace {

constexpr px::Space kAllSpaces[] = {px::Space::kSerial, px::Space::kTaskPool,
                                    px::Space::kTaskPoolSimd};

// Scoped pool-width override; restores the previous default on exit.
class ThreadScope {
 public:
  explicit ThreadScope(int threads) : saved_(pu::TaskPool::thread_default()) {
    pu::TaskPool::set_thread_default(threads);
  }
  ~ThreadScope() { pu::TaskPool::set_thread_default(saved_); }

 private:
  int saved_;
};

// Scoped execution-space override (the per-thread default kernels resolve
// through when no explicit Space is passed).
class SpaceScope {
 public:
  explicit SpaceScope(px::Space space) { px::set_thread_default(space); }
  ~SpaceScope() { px::clear_thread_default(); }
};

// Deterministic doubles whose sum depends on association order — the
// payload for every bit-equality test below.
std::vector<double> nasty_values(std::size_t n) {
  std::vector<double> v(n);
  std::uint64_t s = 0x9e3779b97f4a7c15ull;
  for (std::size_t i = 0; i < n; ++i) {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    const double mag = static_cast<double>(s % 1000003);
    v[i] = (i % 2 == 0 ? mag : -mag) * (1.0 + 1e-9 * static_cast<double>(i));
  }
  return v;
}

double reduce_sum(px::Space space, const std::vector<double>& v,
                  std::int64_t grain) {
  const double* d = v.data();
  return px::transform_reduce(
      space, 0, static_cast<std::int64_t>(v.size()), grain, 0.0,
      [d](std::int64_t lo, std::int64_t hi) {
        double a = 0.0;
        for (std::int64_t i = lo; i < hi; ++i) a += d[i];
        return a;
      },
      [](double a, double b) { return a + b; });
}

}  // namespace

// ---- coverage --------------------------------------------------------------

TEST(ExecSpace, ForEachElementBodyCoversEveryIndexExactlyOncePerBackend) {
  ThreadScope scope(4);
  constexpr std::int64_t kN = 100000;
  for (px::Space space : kAllSpaces) {
    std::vector<std::atomic<int>> hits(kN);
    px::for_each(space, 0, kN, 1024,
                 [&hits](std::int64_t i) { hits[i].fetch_add(1); });
    for (std::int64_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << px::space_name(space) << " i=" << i;
    }
  }
}

TEST(ExecSpace, ForEachChunkBodyCoversEveryIndexExactlyOncePerBackend) {
  ThreadScope scope(4);
  constexpr std::int64_t kN = 100000;
  for (px::Space space : kAllSpaces) {
    std::vector<std::atomic<int>> hits(kN);
    px::for_each(space, 0, kN, 1024,
                 [&hits](std::int64_t lo, std::int64_t hi) {
                   for (std::int64_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
                 });
    for (std::int64_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << px::space_name(space) << " i=" << i;
    }
  }
}

TEST(ExecSpace, EmptyAndSingleElementAndOddRanges) {
  ThreadScope scope(4);
  for (px::Space space : kAllSpaces) {
    // Empty range: body never runs, identity comes back.
    px::for_each(space, 5, 5, 64, [](std::int64_t) { FAIL(); });
    EXPECT_EQ(px::transform_reduce(
                  space, 3, 3, 64, -1,
                  [](std::int64_t, std::int64_t) { return 99; },
                  [](int a, int b) { return a + b; }),
              -1);
    // Odd-length range not divisible by the grain, non-zero begin.
    std::vector<std::atomic<int>> hits(1001);
    px::for_each(space, 1, 1000, 7,
                 [&hits](std::int64_t i) { hits[i].fetch_add(1); });
    EXPECT_EQ(hits[0].load(), 0);
    EXPECT_EQ(hits[1000].load(), 0);
    for (std::int64_t i = 1; i < 1000; ++i) ASSERT_EQ(hits[i].load(), 1);
  }
}

// ---- determinism -----------------------------------------------------------

TEST(ExecSpace, ReduceBitIdenticalAcrossBackendsAndThreadCountsAndGrains) {
  const auto v = nasty_values(300001);
  for (std::int64_t grain : {64, 1000, 8192}) {
    double reference = 0.0;
    bool have_reference = false;
    for (int threads : {1, 2, 4, 8}) {
      ThreadScope scope(threads);
      for (px::Space space : kAllSpaces) {
        const double got = reduce_sum(space, v, grain);
        if (!have_reference) {
          reference = got;
          have_reference = true;
        }
        EXPECT_EQ(std::bit_cast<std::uint64_t>(got),
                  std::bit_cast<std::uint64_t>(reference))
            << px::space_name(space) << " threads=" << threads
            << " grain=" << grain;
      }
    }
  }
}

TEST(ExecSpace, ReduceMatchesTaskPoolParallelReduceBitForBit) {
  // The layer replaces util::parallel_reduce at every kernel call site;
  // the PR 5 pool result is the compatibility baseline.
  ThreadScope scope(4);
  const auto v = nasty_values(123457);
  const double* d = v.data();
  auto fold = [d](std::int64_t lo, std::int64_t hi) {
    double a = 0.0;
    for (std::int64_t i = lo; i < hi; ++i) a += d[i];
    return a;
  };
  auto combine = [](double a, double b) { return a + b; };
  const double pool_result =
      pu::parallel_reduce(0, static_cast<std::int64_t>(v.size()),
                          pu::kDefaultGrain, 0.0, fold, combine);
  for (px::Space space : kAllSpaces) {
    const double got = px::transform_reduce(
        space, 0, static_cast<std::int64_t>(v.size()), pu::kDefaultGrain, 0.0,
        fold, combine);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(got),
              std::bit_cast<std::uint64_t>(pool_result))
        << px::space_name(space);
  }
}

TEST(ExecSpace, ElementwiseMapBitIdenticalAcrossBackends) {
  // sqrt/divide-heavy body: the kernels the SIMD space vectorizes hardest.
  ThreadScope scope(4);
  const auto v = nasty_values(65537);
  std::vector<double> ref(v.size());
  std::vector<double> out(v.size());
  auto f = [](double x) { return std::sqrt(std::abs(x)) / (1.0 + x * x); };
  px::map(px::Space::kSerial, v.data(), ref.data(),
          static_cast<std::int64_t>(v.size()), 4096, f);
  for (px::Space space : {px::Space::kTaskPool, px::Space::kTaskPoolSimd}) {
    std::fill(out.begin(), out.end(), 0.0);
    px::map(space, v.data(), out.data(), static_cast<std::int64_t>(v.size()),
            4096, f);
    for (std::size_t i = 0; i < v.size(); ++i) {
      ASSERT_EQ(std::bit_cast<std::uint64_t>(out[i]),
                std::bit_cast<std::uint64_t>(ref[i]))
          << px::space_name(space) << " i=" << i;
    }
  }
}

// ---- SoA fast path / alignment ---------------------------------------------

TEST(ExecSpace, MapAndZipHandleMisalignedViews) {
  // Offset views into an aligned allocation: every combination of
  // (aligned, misaligned) operand pointers must produce identical values.
  ThreadScope scope(4);
  constexpr std::int64_t kN = 10000;
  std::vector<double> a(kN + 8), b(kN + 8), out(kN + 8), ref(kN + 8);
  for (std::int64_t i = 0; i < kN + 8; ++i) {
    a[static_cast<std::size_t>(i)] = 0.25 * static_cast<double>(i) - 7.0;
    b[static_cast<std::size_t>(i)] = 1.0 + static_cast<double>(i % 13);
  }
  auto f2 = [](double x, double y) { return x / y + x * y; };
  for (std::size_t da : {0u, 1u, 3u}) {
    for (std::size_t db : {0u, 2u}) {
      px::zip(px::Space::kSerial, a.data() + da, b.data() + db, ref.data(),
              kN, 512, f2);
      px::zip(px::Space::kTaskPoolSimd, a.data() + da, b.data() + db,
              out.data(), kN, 512, f2);
      for (std::int64_t i = 0; i < kN; ++i) {
        ASSERT_EQ(std::bit_cast<std::uint64_t>(out[static_cast<std::size_t>(i)]),
                  std::bit_cast<std::uint64_t>(ref[static_cast<std::size_t>(i)]))
            << "da=" << da << " db=" << db << " i=" << i;
      }
    }
  }
  // In-place map on a misaligned view (transform()'s shape).
  auto g = [](double x) { return 3.0 * x - 1.0; };
  std::vector<double> c(a.begin(), a.end()), cref(a.begin(), a.end());
  px::map(px::Space::kSerial, cref.data() + 1, cref.data() + 1, kN, 512, g);
  px::map(px::Space::kTaskPoolSimd, c.data() + 1, c.data() + 1, kN, 512, g);
  EXPECT_EQ(c, cref);
}

// ---- exceptions ------------------------------------------------------------

TEST(ExecSpace, ExceptionFromBodyPropagatesUnderEveryBackend) {
  ThreadScope scope(4);
  for (px::Space space : kAllSpaces) {
    EXPECT_THROW(
        px::for_each(space, 0, 100000, 128,
                     [](std::int64_t i) {
                       if (i == 54321) throw std::runtime_error("boom");
                     }),
        std::runtime_error)
        << px::space_name(space);
    EXPECT_THROW(px::transform_reduce(
                     space, 0, 100000, 128, 0.0,
                     [](std::int64_t lo, std::int64_t) -> double {
                       if (lo >= 50000) throw std::runtime_error("boom");
                       return 1.0;
                     },
                     [](double a, double b) { return a + b; }),
                 std::runtime_error)
        << px::space_name(space);
  }
}

// ---- NaN / Inf agreement ---------------------------------------------------

TEST(ExecSpace, NanInfMinMaxMeanAgreeBetweenSimdAndSerial) {
  // Regression for the classic SIMD hazard: vectorized min/max/compare
  // can legally flip NaN propagation (minpd is not commutative in NaN
  // handling). Our contract says the SIMD space must agree with serial
  // bit for bit — on DistArray and fused-expression reductions too.
  ThreadScope scope(4);
  constexpr std::int64_t kN = 40000;
  std::vector<double> v(kN);
  for (std::int64_t i = 0; i < kN; ++i) {
    v[static_cast<std::size_t>(i)] = std::sin(0.01 * static_cast<double>(i));
  }
  v[7] = std::numeric_limits<double>::quiet_NaN();
  v[123] = std::numeric_limits<double>::infinity();
  v[20011] = -std::numeric_limits<double>::infinity();

  const double* d = v.data();
  auto min_fold = [d](std::int64_t lo, std::int64_t hi) {
    double a = d[lo];
    for (std::int64_t i = lo + 1; i < hi; ++i) a = std::min(a, d[i]);
    return a;
  };
  auto max_fold = [d](std::int64_t lo, std::int64_t hi) {
    double a = d[lo];
    for (std::int64_t i = lo + 1; i < hi; ++i) a = std::max(a, d[i]);
    return a;
  };
  auto sum_fold = [d](std::int64_t lo, std::int64_t hi) {
    double a = 0.0;
    for (std::int64_t i = lo; i < hi; ++i) a += d[i];
    return a;
  };
  auto results = [&](px::Space space) {
    const double mn = px::transform_reduce(
        space, 0, kN, 1024, std::numeric_limits<double>::max(), min_fold,
        [](double a, double b) { return std::min(a, b); });
    const double mx = px::transform_reduce(
        space, 0, kN, 1024, std::numeric_limits<double>::lowest(), max_fold,
        [](double a, double b) { return std::max(a, b); });
    const double mean =
        px::transform_reduce(space, 0, kN, 1024, 0.0, sum_fold,
                             [](double a, double b) { return a + b; }) /
        static_cast<double>(kN);
    return std::array<double, 3>{mn, mx, mean};
  };
  const auto serial = results(px::Space::kSerial);
  for (px::Space space : {px::Space::kTaskPool, px::Space::kTaskPoolSimd}) {
    const auto got = results(space);
    for (int k = 0; k < 3; ++k) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(got[static_cast<std::size_t>(k)]),
                std::bit_cast<std::uint64_t>(
                    serial[static_cast<std::size_t>(k)]))
          << px::space_name(space) << " k=" << k;
    }
  }
}

// ---- selection precedence --------------------------------------------------

TEST(ExecSpace, ParseAndNameRoundTrip) {
  EXPECT_EQ(px::parse_space("serial"), px::Space::kSerial);
  EXPECT_EQ(px::parse_space("pool"), px::Space::kTaskPool);
  EXPECT_EQ(px::parse_space("taskpool"), px::Space::kTaskPool);
  EXPECT_EQ(px::parse_space("simd"), px::Space::kTaskPoolSimd);
  EXPECT_EQ(px::parse_space("POOL+SIMD"), px::Space::kTaskPoolSimd);
  EXPECT_THROW(px::parse_space("gpu"), pyhpc::InvalidArgument);
  for (px::Space space : kAllSpaces) {
    EXPECT_EQ(px::parse_space(px::space_name(space)), space);
  }
}

TEST(ExecSpace, ThreadDefaultOverridesAndRestores) {
  const px::Space ambient = px::default_space();
  {
    SpaceScope scope(px::Space::kSerial);
    EXPECT_EQ(px::default_space(), px::Space::kSerial);
    {
      SpaceScope inner(px::Space::kTaskPoolSimd);
      EXPECT_EQ(px::default_space(), px::Space::kTaskPoolSimd);
    }
    // SpaceScope clears rather than restores — ambient comes back.
    EXPECT_EQ(px::default_space(), ambient);
  }
  EXPECT_EQ(px::default_space(), ambient);
}

TEST(ExecSpace, CommConfigInstallsSpacePerRankAndKernelsFollowIt) {
  // One world per backend: the same DistArray pipeline (ufunc-style map,
  // fused expression, reductions) must produce bit-identical results
  // whichever space CommConfig selects.
  std::array<double, 3> results[3];
  int idx = 0;
  for (px::Space space : kAllSpaces) {
    pc::CommConfig config;
    config.threads = 2;
    config.exec_space = space;
    auto& slot = results[idx++];
    pc::run(
        2, config,
        [&slot, space](pc::Communicator& comm) {
          EXPECT_EQ(px::default_space(), space);
          auto dist =
              od::Distribution::block(comm, od::Shape({std::int64_t{50000}}), 0);
          auto x = od::DistArray<double>::linspace(dist, 0.0, 5.0);
          auto y = x.map([](double v) { return std::sqrt(v) + 0.5 * v; });
          const double s = od::sum(2.0 * od::lazy(y) - od::lazy(x));
          const double n2 = y.norm2();
          const double mx = y.max();
          if (comm.rank() == 0) slot = {s, n2, mx};
        });
  }
  for (int k = 1; k < 3; ++k) {
    for (int j = 0; j < 3; ++j) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(
                    results[static_cast<std::size_t>(k)]
                           [static_cast<std::size_t>(j)]),
                std::bit_cast<std::uint64_t>(
                    results[0][static_cast<std::size_t>(j)]))
          << "space#" << k << " value#" << j;
    }
  }
}

// ---- observability ---------------------------------------------------------

TEST(ExecSpace, BackendCountersCountScheduledRegionsOnly) {
  ThreadScope scope(2);
  auto& reg = pyhpc::obs::MetricsRegistry::global();
  const auto snapshot = [&reg](const char* name) { return reg.value(name); };
  const double serial0 = snapshot("exec.serial");
  const double pool0 = snapshot("exec.pool");
  const double simd0 = snapshot("exec.simd");

  // Below one grain: inline, uncounted (the tiny-array rule).
  px::for_each(px::Space::kTaskPoolSimd, 0, 100, 8192, [](std::int64_t) {});
  EXPECT_EQ(snapshot("exec.simd"), simd0);

  std::vector<double> v(20000, 1.0);
  px::map(px::Space::kSerial, v.data(), v.data(), 20000, 1024,
          [](double x) { return x; });
  px::map(px::Space::kTaskPool, v.data(), v.data(), 20000, 1024,
          [](double x) { return x; });
  px::map(px::Space::kTaskPoolSimd, v.data(), v.data(), 20000, 1024,
          [](double x) { return x; });
  EXPECT_EQ(snapshot("exec.serial"), serial0 + 1.0);
  EXPECT_EQ(snapshot("exec.pool"), pool0 + 1.0);
  EXPECT_EQ(snapshot("exec.simd"), simd0 + 1.0);
}
