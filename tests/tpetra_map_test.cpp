// Tests for Map (all three construction modes), the distributed directory,
// and Import/Export plans — the distributed-object foundation.
#include <gtest/gtest.h>

#include <numeric>

#include "comm/runner.hpp"
#include "tpetra/import_export.hpp"
#include "tpetra/map.hpp"

namespace pc = pyhpc::comm;
namespace tp = pyhpc::tpetra;

using MapT = tp::Map<>;
using LO = std::int32_t;
using GO = std::int64_t;

namespace {
const std::vector<int> kRankCounts{1, 2, 3, 4, 7};
}

class MapRankSweep : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Ranks, MapRankSweep, ::testing::ValuesIn(kRankCounts));

TEST_P(MapRankSweep, UniformCoversAllIndicesExactlyOnce) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    const GO n = 101;
    auto map = MapT::uniform(comm, n);
    EXPECT_EQ(map.num_global(), n);
    EXPECT_TRUE(map.is_contiguous());
    // Sum of local counts equals the global count.
    const GO total = comm.allreduce_value<GO>(map.num_local(), std::plus<GO>{});
    EXPECT_EQ(total, n);
    // Near-uniform: sizes differ by at most one.
    const LO mn = comm.allreduce_value<LO>(
        map.num_local(), [](LO a, LO b) { return std::min(a, b); });
    const LO mx = comm.allreduce_value<LO>(
        map.num_local(), [](LO a, LO b) { return std::max(a, b); });
    EXPECT_LE(mx - mn, 1);
  });
}

TEST_P(MapRankSweep, LocalGlobalRoundTrip) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    auto map = MapT::uniform(comm, 57);
    for (LO l = 0; l < map.num_local(); ++l) {
      const GO g = map.local_to_global(l);
      EXPECT_TRUE(map.is_local_global_index(g));
      EXPECT_EQ(map.global_to_local(g), l);
      EXPECT_EQ(map.owner_of(g), comm.rank());
    }
  });
}

TEST_P(MapRankSweep, NonLocalIndexMapsToInvalid) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    auto map = MapT::uniform(comm, 30);
    if (comm.size() == 1) return;  // everything is local
    // Pick an index owned elsewhere.
    const GO foreign =
        (map.min_global_index() + map.num_local()) % map.num_global();
    EXPECT_EQ(map.global_to_local(foreign), tp::kInvalidLocal<LO>);
    EXPECT_FALSE(map.is_local_global_index(foreign));
  });
}

TEST_P(MapRankSweep, FromLocalSizesBuildsOffsets) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    // Rank r holds r+1 entries.
    auto map = MapT::from_local_sizes(comm, comm.rank() + 1);
    const int p = comm.size();
    EXPECT_EQ(map.num_global(), static_cast<GO>(p) * (p + 1) / 2);
    EXPECT_EQ(map.num_local(), comm.rank() + 1);
    EXPECT_EQ(map.min_global_index(),
              static_cast<GO>(comm.rank()) * (comm.rank() + 1) / 2);
  });
}

TEST_P(MapRankSweep, ArbitraryCyclicMap) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    // Cyclic distribution: rank r owns indices r, r+P, r+2P, ...
    const GO n = 40;
    std::vector<GO> mine;
    for (GO g = comm.rank(); g < n; g += comm.size()) mine.push_back(g);
    auto map = MapT::from_global_indices(comm, mine);
    EXPECT_FALSE(map.is_contiguous());
    EXPECT_EQ(map.num_global(), n);
    for (LO l = 0; l < map.num_local(); ++l) {
      EXPECT_EQ(map.local_to_global(l), mine[static_cast<std::size_t>(l)]);
      EXPECT_EQ(map.global_to_local(mine[static_cast<std::size_t>(l)]), l);
    }
  });
}

TEST(Map, DuplicateLocalIndicesRejected) {
  EXPECT_THROW(pc::run(1,
                       [](pc::Communicator& comm) {
                         std::vector<GO> gids{3, 5, 3};
                         (void)MapT::from_global_indices(comm, gids);
                       }),
               pyhpc::InvalidArgument);
}

TEST(Map, NegativeGlobalCountRejected) {
  EXPECT_THROW(pc::run(1,
                       [](pc::Communicator& comm) {
                         (void)MapT::uniform(comm, -5);
                       }),
               pyhpc::InvalidArgument);
}

TEST_P(MapRankSweep, RemoteIndexListContiguous) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    auto map = MapT::uniform(comm, 64);
    // Query every global index from every rank.
    std::vector<GO> all(64);
    std::iota(all.begin(), all.end(), 0);
    auto res = map.remote_index_list(all);
    for (GO g = 0; g < 64; ++g) {
      const auto [owner, lid] = res[static_cast<std::size_t>(g)];
      EXPECT_EQ(owner, map.owner_of(g));
      EXPECT_GE(lid, 0);
    }
  });
}

TEST_P(MapRankSweep, RemoteIndexListArbitrary) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    const GO n = 35;
    std::vector<GO> mine;
    for (GO g = comm.rank(); g < n; g += comm.size()) mine.push_back(g);
    auto map = MapT::from_global_indices(comm, mine);
    std::vector<GO> all(static_cast<std::size_t>(n));
    std::iota(all.begin(), all.end(), 0);
    auto res = map.remote_index_list(all);  // collective
    for (GO g = 0; g < n; ++g) {
      const auto [owner, lid] = res[static_cast<std::size_t>(g)];
      EXPECT_EQ(owner, static_cast<int>(g % comm.size()));
      EXPECT_EQ(lid, static_cast<LO>(g / comm.size()));
    }
  });
}

TEST_P(MapRankSweep, RemoteIndexListUnownedGivesMinusOne) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    // Map over even indices only; odd queries resolve to no owner.
    const GO n = 20;
    std::vector<GO> mine;
    for (GO g = comm.rank(); g < n / 2; g += comm.size()) {
      mine.push_back(2 * g);
    }
    auto map = MapT::from_global_indices(comm, mine);
    std::vector<GO> queries{1, 3, 5};
    auto res = map.remote_index_list(queries);
    for (const auto& [owner, lid] : res) {
      EXPECT_EQ(owner, -1);
      (void)lid;
    }
  });
}

TEST_P(MapRankSweep, SameAsAndCompatible) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    auto a = MapT::uniform(comm, 48);
    auto b = MapT::uniform(comm, 48);
    auto c = MapT::uniform(comm, 47);
    EXPECT_TRUE(a.is_same_as(b));
    EXPECT_TRUE(a.is_compatible(b));
    EXPECT_FALSE(a.is_same_as(c));
    EXPECT_FALSE(a.is_compatible(c));
    // A cyclic map with identical local counts is compatible but not same.
    if (48 % comm.size() == 0) {
      std::vector<GO> mine;
      for (GO g = comm.rank(); g < 48; g += comm.size()) mine.push_back(g);
      auto cyc = MapT::from_global_indices(comm, mine);
      EXPECT_TRUE(a.is_compatible(cyc));
      if (comm.size() > 1) EXPECT_FALSE(a.is_same_as(cyc));
    }
  });
}

// ---------------------------------------------------------------------------
// Import / Export
// ---------------------------------------------------------------------------

class ImportRankSweep : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Ranks, ImportRankSweep,
                         ::testing::ValuesIn(kRankCounts));

TEST_P(ImportRankSweep, GhostFillHaloOneDeep) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    const GO n = 24;
    auto owned = MapT::uniform(comm, n);
    // Target: owned plus one halo cell each side (periodic).
    std::vector<GO> tgids = owned.my_global_indices();
    if (owned.num_local() > 0) {
      tgids.push_back((owned.min_global_index() + n - 1) % n);
      if (owned.max_global_index_plus_one() % n !=
          (owned.min_global_index() + n - 1) % n) {
        tgids.push_back(owned.max_global_index_plus_one() % n);
      }
    }
    // Dedup (single-rank case folds halo onto owned range).
    std::sort(tgids.begin(), tgids.end());
    tgids.erase(std::unique(tgids.begin(), tgids.end()), tgids.end());
    auto target = MapT::from_global_indices(comm, tgids);

    tp::Import<> plan(owned, target);
    // Source values: v[g] = 10*g + 1.
    std::vector<double> src(static_cast<std::size_t>(owned.num_local()));
    for (LO i = 0; i < owned.num_local(); ++i) {
      src[static_cast<std::size_t>(i)] =
          10.0 * static_cast<double>(owned.local_to_global(i)) + 1.0;
    }
    std::vector<double> dst(static_cast<std::size_t>(target.num_local()), -7.0);
    plan.apply<double>(src, dst);
    for (LO i = 0; i < target.num_local(); ++i) {
      EXPECT_EQ(dst[static_cast<std::size_t>(i)],
                10.0 * static_cast<double>(target.local_to_global(i)) + 1.0);
    }
  });
}

TEST_P(ImportRankSweep, PlanCountsAreConsistent) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    const GO n = 30;
    auto owned = MapT::uniform(comm, n);
    // Full replication target: every rank wants everything.
    std::vector<GO> all(static_cast<std::size_t>(n));
    std::iota(all.begin(), all.end(), 0);
    auto target = MapT::from_global_indices(comm, all);
    tp::Import<> plan(owned, target);
    EXPECT_EQ(plan.num_permutes(), static_cast<std::size_t>(owned.num_local()));
    EXPECT_EQ(plan.num_remote(),
              static_cast<std::size_t>(n - owned.num_local()));
    // Everyone requests my entries: P-1 ranks x my local count.
    EXPECT_EQ(plan.num_export(),
              static_cast<std::size_t>(owned.num_local()) *
                  static_cast<std::size_t>(comm.size() - 1));
  });
}

TEST_P(ImportRankSweep, ExportAddAssemblesOverlaps) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    const GO n = 16;
    auto owned = MapT::uniform(comm, n);
    // Every rank contributes 1.0 to every global index.
    std::vector<GO> all(static_cast<std::size_t>(n));
    std::iota(all.begin(), all.end(), 0);
    auto overlap = MapT::from_global_indices(comm, all);
    tp::Export<> plan(overlap, owned);
    std::vector<double> contrib(static_cast<std::size_t>(n), 1.0);
    std::vector<double> assembled(static_cast<std::size_t>(owned.num_local()),
                                  0.0);
    plan.apply<double>(contrib, assembled, tp::CombineMode::kAdd);
    for (double v : assembled) {
      EXPECT_EQ(v, static_cast<double>(comm.size()));
    }
  });
}

TEST_P(ImportRankSweep, ExportInsertOverwrites) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    const GO n = 12;
    auto owned = MapT::uniform(comm, n);
    // Each rank holds only its own indices (no overlap): export == copy.
    auto overlap = MapT::from_global_indices(
        comm, owned.my_global_indices());
    tp::Export<> plan(overlap, owned);
    std::vector<double> src(static_cast<std::size_t>(owned.num_local()));
    for (LO i = 0; i < owned.num_local(); ++i) {
      src[static_cast<std::size_t>(i)] =
          static_cast<double>(owned.local_to_global(i));
    }
    std::vector<double> dst(static_cast<std::size_t>(owned.num_local()), -1.0);
    plan.apply<double>(src, dst, tp::CombineMode::kInsert);
    for (LO i = 0; i < owned.num_local(); ++i) {
      EXPECT_EQ(dst[static_cast<std::size_t>(i)],
                static_cast<double>(owned.local_to_global(i)));
    }
  });
}

TEST(Import, MissingOwnerIsAnError) {
  EXPECT_THROW(
      pc::run(2,
              [](pc::Communicator& comm) {
                // Source covers [0,8); target references gid 9 which nobody
                // owns -> plan construction must fail on the requesting
                // rank (and abort propagates to the other).
                std::vector<GO> src_gids;
                for (GO g = 4 * comm.rank(); g < 4 * (comm.rank() + 1); ++g) {
                  src_gids.push_back(g);
                }
                auto src = MapT::from_global_indices(comm, src_gids);
                std::vector<GO> tgt_gids{0, 9};
                auto tgt = MapT::from_global_indices(comm, tgt_gids);
                tp::Import<> plan(src, tgt);
              }),
      pyhpc::Error);
}
