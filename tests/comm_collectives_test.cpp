// Parameterized correctness suite for the scalable collective schedules
// (ISSUE 3): every collective x rank counts {1,2,3,4,7,8} x empty/short/
// long payloads x non-zero roots, each forced algorithm cross-checked
// against a serial reference. Registered under the `coll` CTest label and
// exercised under -DPYHPC_SANITIZE=thread.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <numeric>
#include <vector>

#include "comm/runner.hpp"
#include "util/error.hpp"

namespace pc = pyhpc::comm;
using pc::CollectiveAlgo;
using pyhpc::CommError;

namespace {

// The `long` size clears the 4096-byte kAuto thresholds for double
// payloads (1024 * 8 = 8192 B), so threshold-driven selection takes the
// long-message branch; `short` stays below it.
const std::vector<int> kRankCounts{1, 2, 3, 4, 7, 8};
const std::vector<std::size_t> kCounts{0, 3, 1024};

double element(int rank, std::size_t i) {
  return static_cast<double>(rank * 100000) + static_cast<double>(i);
}

class CollAlgoTest
    : public ::testing::TestWithParam<std::tuple<int, std::size_t>> {
 protected:
  int ranks() const { return std::get<0>(GetParam()); }
  std::size_t count() const { return std::get<1>(GetParam()); }
};

INSTANTIATE_TEST_SUITE_P(
    Grid, CollAlgoTest,
    ::testing::Combine(::testing::ValuesIn(kRankCounts),
                       ::testing::ValuesIn(kCounts)),
    [](const auto& info) {
      return "p" + std::to_string(std::get<0>(info.param)) + "_n" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace

TEST_P(CollAlgoTest, AllreduceAllAlgosMatchReference) {
  const int p = ranks();
  const std::size_t n = count();
  // Serial reference: elementwise sum over ranks.
  std::vector<double> expect(n, 0.0);
  for (int r = 0; r < p; ++r) {
    for (std::size_t i = 0; i < n; ++i) expect[i] += element(r, i);
  }
  for (CollectiveAlgo algo :
       {CollectiveAlgo::kAuto, CollectiveAlgo::kLinear,
        CollectiveAlgo::kRecursiveDoubling, CollectiveAlgo::kRabenseifner}) {
    pc::run(p, [&](pc::Communicator& comm) {
      std::vector<double> mine(n), got(n);
      for (std::size_t i = 0; i < n; ++i) mine[i] = element(comm.rank(), i);
      comm.allreduce(std::span<const double>(mine), std::span<double>(got),
                     std::plus<double>{}, algo);
      EXPECT_EQ(got, expect) << "algo " << pc::collective_algo_name(algo);
    });
  }
}

TEST_P(CollAlgoTest, AllreduceValueMaxOp) {
  const int p = ranks();
  for (CollectiveAlgo algo :
       {CollectiveAlgo::kLinear, CollectiveAlgo::kRecursiveDoubling,
        CollectiveAlgo::kRabenseifner}) {
    pc::run(p, [&](pc::Communicator& comm) {
      const int got = comm.allreduce_value<int>(
          (comm.rank() * 7) % p + 1,
          [](int a, int b) { return std::max(a, b); }, algo);
      int expect = 0;
      for (int r = 0; r < p; ++r) expect = std::max(expect, (r * 7) % p + 1);
      EXPECT_EQ(got, expect) << "algo " << pc::collective_algo_name(algo);
    });
  }
}

TEST_P(CollAlgoTest, GatherBinomialNonZeroRoots) {
  const int p = ranks();
  const std::size_t n = count();
  for (int root : {0, p - 1, p / 2}) {
    for (CollectiveAlgo algo : {CollectiveAlgo::kAuto, CollectiveAlgo::kLinear,
                                CollectiveAlgo::kBinomial}) {
      pc::run(p, [&](pc::Communicator& comm) {
        std::vector<double> mine(n);
        for (std::size_t i = 0; i < n; ++i) mine[i] = element(comm.rank(), i);
        std::vector<double> all;
        comm.gather(std::span<const double>(mine), all, root, algo);
        if (comm.rank() == root) {
          ASSERT_EQ(all.size(), n * static_cast<std::size_t>(p));
          for (int r = 0; r < p; ++r) {
            for (std::size_t i = 0; i < n; ++i) {
              EXPECT_EQ(all[static_cast<std::size_t>(r) * n + i],
                        element(r, i))
                  << "root " << root << " algo "
                  << pc::collective_algo_name(algo);
            }
          }
        } else {
          EXPECT_TRUE(all.empty());
        }
      });
    }
  }
}

TEST_P(CollAlgoTest, ScatterBinomialNonZeroRoots) {
  const int p = ranks();
  const std::size_t n = count();
  for (int root : {0, p - 1, p / 2}) {
    for (CollectiveAlgo algo : {CollectiveAlgo::kAuto, CollectiveAlgo::kLinear,
                                CollectiveAlgo::kBinomial}) {
      pc::run(p, [&](pc::Communicator& comm) {
        std::vector<double> all;
        if (comm.rank() == root) {
          all.resize(n * static_cast<std::size_t>(p));
          for (int r = 0; r < p; ++r) {
            for (std::size_t i = 0; i < n; ++i) {
              all[static_cast<std::size_t>(r) * n + i] = element(r, i);
            }
          }
        }
        std::vector<double> mine(n);
        comm.scatter(std::span<const double>(all), std::span<double>(mine),
                     root, algo);
        for (std::size_t i = 0; i < n; ++i) {
          EXPECT_EQ(mine[i], element(comm.rank(), i))
              << "root " << root << " algo " << pc::collective_algo_name(algo);
        }
      });
    }
  }
}

TEST_P(CollAlgoTest, AllgatherAllAlgosMatchReference) {
  const int p = ranks();
  const std::size_t n = count();
  for (CollectiveAlgo algo :
       {CollectiveAlgo::kAuto, CollectiveAlgo::kLinear, CollectiveAlgo::kBruck,
        CollectiveAlgo::kRing}) {
    pc::run(p, [&](pc::Communicator& comm) {
      std::vector<double> mine(n);
      for (std::size_t i = 0; i < n; ++i) mine[i] = element(comm.rank(), i);
      auto all = comm.allgather(std::span<const double>(mine), algo);
      ASSERT_EQ(all.size(), n * static_cast<std::size_t>(p));
      for (int r = 0; r < p; ++r) {
        for (std::size_t i = 0; i < n; ++i) {
          EXPECT_EQ(all[static_cast<std::size_t>(r) * n + i], element(r, i))
              << "algo " << pc::collective_algo_name(algo);
        }
      }
    });
  }
}

TEST_P(CollAlgoTest, AllgathervVariableCountsPerRank) {
  const int p = ranks();
  const std::size_t base = count();
  for (CollectiveAlgo algo : {CollectiveAlgo::kAuto, CollectiveAlgo::kLinear}) {
    pc::run(p, [&](pc::Communicator& comm) {
      // Rank r contributes base + r elements (0 on every rank when base
      // is 0 and r is even — mixed empty/non-empty chunks).
      const std::size_t cnt =
          base + static_cast<std::size_t>(comm.rank() % 2 == 0 ? 0 : comm.rank());
      std::vector<double> mine(cnt);
      for (std::size_t i = 0; i < cnt; ++i) mine[i] = element(comm.rank(), i);
      auto chunks = comm.allgatherv(std::span<const double>(mine), algo);
      ASSERT_EQ(chunks.size(), static_cast<std::size_t>(p));
      for (int r = 0; r < p; ++r) {
        const std::size_t rc =
            base + static_cast<std::size_t>(r % 2 == 0 ? 0 : r);
        ASSERT_EQ(chunks[static_cast<std::size_t>(r)].size(), rc)
            << "algo " << pc::collective_algo_name(algo);
        for (std::size_t i = 0; i < rc; ++i) {
          EXPECT_EQ(chunks[static_cast<std::size_t>(r)][i], element(r, i));
        }
      }
    });
  }
}

TEST_P(CollAlgoTest, AlltoallPairwiseMatchesReference) {
  const int p = ranks();
  const std::size_t n = count();
  for (CollectiveAlgo algo : {CollectiveAlgo::kAuto, CollectiveAlgo::kLinear,
                              CollectiveAlgo::kPairwise}) {
    pc::run(p, [&](pc::Communicator& comm) {
      const std::size_t total = n * static_cast<std::size_t>(p);
      std::vector<double> send(total), recv(total);
      for (int dst = 0; dst < p; ++dst) {
        for (std::size_t i = 0; i < n; ++i) {
          send[static_cast<std::size_t>(dst) * n + i] =
              element(comm.rank(), i) + dst;
        }
      }
      comm.alltoall(std::span<const double>(send), std::span<double>(recv),
                    algo);
      for (int src = 0; src < p; ++src) {
        for (std::size_t i = 0; i < n; ++i) {
          EXPECT_EQ(recv[static_cast<std::size_t>(src) * n + i],
                    element(src, i) + comm.rank())
              << "algo " << pc::collective_algo_name(algo);
        }
      }
    });
  }
}

TEST_P(CollAlgoTest, AlltoallvPairwiseVariableParts) {
  const int p = ranks();
  for (CollectiveAlgo algo : {CollectiveAlgo::kAuto, CollectiveAlgo::kLinear,
                              CollectiveAlgo::kPairwise}) {
    pc::run(p, [&](pc::Communicator& comm) {
      // Part (me -> dst) has (me + dst) % 3 elements.
      std::vector<std::vector<double>> send(static_cast<std::size_t>(p));
      for (int dst = 0; dst < p; ++dst) {
        const int cnt = (comm.rank() + dst) % 3;
        for (int i = 0; i < cnt; ++i) {
          send[static_cast<std::size_t>(dst)].push_back(
              element(comm.rank(), static_cast<std::size_t>(i)) + dst);
        }
      }
      auto recv = comm.alltoallv(send, algo);
      ASSERT_EQ(recv.size(), static_cast<std::size_t>(p));
      for (int src = 0; src < p; ++src) {
        const int cnt = (src + comm.rank()) % 3;
        ASSERT_EQ(recv[static_cast<std::size_t>(src)].size(),
                  static_cast<std::size_t>(cnt))
            << "algo " << pc::collective_algo_name(algo);
        for (int i = 0; i < cnt; ++i) {
          EXPECT_EQ(recv[static_cast<std::size_t>(src)]
                        [static_cast<std::size_t>(i)],
                    element(src, static_cast<std::size_t>(i)) + comm.rank());
        }
      }
    });
  }
}

// Long mixed sequence at an awkward rank count: exercises the collective
// sequence-slot wraparound and the widened per-phase tag space with every
// schedule interleaved back to back.
TEST(CollStress, MixedAlgosBackToBackAtSevenRanks) {
  pc::run(7, [](pc::Communicator& comm) {
    const int p = comm.size();
    for (int iter = 0; iter < 40; ++iter) {
      const auto algo = (iter % 2 == 0) ? CollectiveAlgo::kRecursiveDoubling
                                        : CollectiveAlgo::kRabenseifner;
      std::vector<double> mine(17), got(17);
      for (std::size_t i = 0; i < mine.size(); ++i) {
        mine[i] = element(comm.rank(), i) + iter;
      }
      comm.allreduce(std::span<const double>(mine), std::span<double>(got),
                     std::plus<double>{}, algo);
      double expect0 = 0.0;
      for (int r = 0; r < p; ++r) expect0 += element(r, 0) + iter;
      EXPECT_DOUBLE_EQ(got[0], expect0);

      auto all = comm.allgather_value(comm.rank() * 3 + iter,
                                      iter % 2 == 0 ? CollectiveAlgo::kBruck
                                                    : CollectiveAlgo::kRing);
      ASSERT_EQ(all.size(), static_cast<std::size_t>(p));
      for (int r = 0; r < p; ++r) {
        EXPECT_EQ(all[static_cast<std::size_t>(r)], r * 3 + iter);
      }
      comm.barrier();
    }
  });
}

// ---- selection policy -----------------------------------------------------

TEST(CollPolicy, AutoSelectionFollowsSizeThresholds) {
  pc::run(4, [](pc::Communicator& comm) {
    comm.stats().reset();
    // Short payload (8 B) -> recursive doubling; long (8192 B) ->
    // Rabenseifner at the default 4096 B threshold.
    (void)comm.allreduce_value(1.0, std::plus<double>{});
    std::vector<double> big(1024, 1.0), out(1024);
    comm.allreduce(std::span<const double>(big), std::span<double>(out),
                   std::plus<double>{});
    // Short allgather -> Bruck; long -> ring.
    (void)comm.allgather_value(comm.rank());
    (void)comm.allgather(std::span<const double>(big));
    const auto& s = comm.stats();
    EXPECT_EQ(s.algo_recursive_doubling, 1u);
    EXPECT_EQ(s.algo_rabenseifner, 1u);
    EXPECT_EQ(s.algo_bruck, 1u);
    EXPECT_EQ(s.algo_ring, 1u);
    EXPECT_EQ(s.algo_linear, 0u);
  });
}

TEST(CollPolicy, ConfigForcesLinearEverywhere) {
  pc::CommConfig config;
  config.coll.allreduce = CollectiveAlgo::kLinear;
  config.coll.allgather = CollectiveAlgo::kLinear;
  config.coll.gather = CollectiveAlgo::kLinear;
  config.coll.scatter = CollectiveAlgo::kLinear;
  config.coll.alltoall = CollectiveAlgo::kLinear;
  pc::run(4, config, [](pc::Communicator& comm) {
    comm.stats().reset();
    std::vector<double> big(1024, 1.0), out(1024);
    comm.allreduce(std::span<const double>(big), std::span<double>(out),
                   std::plus<double>{});
    (void)comm.allgather(std::span<const double>(big));
    std::vector<std::vector<int>> parts(4);
    (void)comm.alltoallv(parts);
    // 8, not 3: the linear composites book their nested stages too —
    // allreduce = itself + flat reduce + flat broadcast (3), allgather =
    // itself + gather + count broadcast + payload broadcast (4),
    // alltoallv = itself (1).
    EXPECT_EQ(comm.stats().algo_linear, 8u);
    EXPECT_EQ(comm.stats().algo_rabenseifner, 0u);
    EXPECT_EQ(comm.stats().algo_ring, 0u);
    EXPECT_EQ(comm.stats().algo_pairwise, 0u);
  });
}

TEST(CollPolicy, UnsupportedForcedAlgoThrows) {
  EXPECT_THROW(pc::run(2,
                       [](pc::Communicator& comm) {
                         (void)comm.allreduce_value(
                             1, std::plus<int>{}, CollectiveAlgo::kRing);
                       }),
               CommError);
  EXPECT_THROW(pc::run(2,
                       [](pc::Communicator& comm) {
                         (void)comm.allgather_value(
                             1, CollectiveAlgo::kRabenseifner);
                       }),
               CommError);
}

// ---- dissemination barrier pattern (satellite bugfix) ----------------------

// The old inline peer expression `(rank - k % p + p) % p` computed
// (rank - (k mod p)) mod p, which happens to equal (rank - k) mod p only
// while k < p. These properties must hold for ANY k so the pattern stays
// correct if the loop bound ever changes.
TEST(CollBarrier, DisseminationPeersAreInverseForAllDistances) {
  using C = pc::Communicator;
  for (int p = 1; p <= 9; ++p) {
    for (int k = 0; k <= 2 * p + 1; ++k) {
      for (int r = 0; r < p; ++r) {
        const int s = C::dissemination_send_peer(r, k, p);
        ASSERT_GE(s, 0);
        ASSERT_LT(s, p);
        // If r signals s at distance k, then s must wait on r at k.
        EXPECT_EQ(C::dissemination_recv_peer(s, k, p), r)
            << "p=" << p << " k=" << k << " r=" << r;
        EXPECT_EQ(s, (r + k) % p);
      }
    }
  }
  // The k >= p case the old expression silently depended on never seeing:
  // distance 7 in a 5-rank world is distance 2.
  EXPECT_EQ(pc::Communicator::dissemination_send_peer(1, 7, 5), 3);
  EXPECT_EQ(pc::Communicator::dissemination_recv_peer(3, 7, 5), 1);
}

TEST(CollBarrier, BarrierCompletesAtAllRankCounts) {
  for (int p : kRankCounts) {
    pc::run(p, [](pc::Communicator& comm) {
      for (int i = 0; i < 5; ++i) comm.barrier();
      EXPECT_EQ(comm.stats().collectives, 5u);
    });
  }
}
