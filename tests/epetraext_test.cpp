// Tests for EpetraExt: distributed transpose, MatrixMarket round-trips,
// and row/column scaling.
#include <gtest/gtest.h>

#include <cstdio>

#include "comm/runner.hpp"
#include "epetraext/epetraext.hpp"
#include "galeri/gallery.hpp"

namespace pc = pyhpc::comm;
namespace gl = pyhpc::galeri;
namespace ee = pyhpc::epetraext;

using LO = std::int32_t;
using GO = std::int64_t;

namespace {
const std::vector<int> kRankCounts{1, 2, 3, 4};
}

class EpetraExtSweep : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Ranks, EpetraExtSweep,
                         ::testing::ValuesIn(kRankCounts));

TEST_P(EpetraExtSweep, TransposeOfSymmetricIsIdentical) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    auto map = gl::Map::uniform(comm, 30);
    auto a = gl::laplace1d(map);
    auto at = ee::transpose(a);
    for (LO i = 0; i < map.num_local(); ++i) {
      const GO g = map.local_to_global(i);
      EXPECT_EQ(a.get_global_row(g), at.get_global_row(g));
    }
  });
}

TEST_P(EpetraExtSweep, TransposeReversesApply) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    auto a = gl::convection_diffusion_2d(comm, 8, 8, 5.0, -3.0);
    auto at = ee::transpose(a);
    // y' (A x) == (A' y)' x for random x, y.
    gl::Vector x(a.domain_map()), y(a.domain_map());
    x.randomize(1);
    y.randomize(2);
    gl::Vector ax(a.range_map()), aty(a.range_map());
    a.apply(x, ax);
    at.apply(y, aty);
    EXPECT_NEAR(y.dot(ax), aty.dot(x), 1e-10);
  });
}

TEST_P(EpetraExtSweep, TransposeTwiceIsOriginal) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    auto a = gl::convection_diffusion_2d(comm, 6, 7, 2.0, 8.0);
    auto att = ee::transpose(ee::transpose(a));
    for (LO i = 0; i < a.num_local_rows(); ++i) {
      const GO g = a.row_map().local_to_global(i);
      auto r1 = a.get_global_row(g);
      auto r2 = att.get_global_row(g);
      ASSERT_EQ(r1.size(), r2.size());
      for (std::size_t k = 0; k < r1.size(); ++k) {
        EXPECT_EQ(r1[k].first, r2[k].first);
        EXPECT_NEAR(r1[k].second, r2[k].second, 1e-14);
      }
    }
  });
}

TEST_P(EpetraExtSweep, MatrixMarketRoundTrip) {
  const int p = GetParam();
  const std::string path =
      "/tmp/pyhpc_mm_" + std::to_string(p) + ".mtx";
  pc::run(p, [&](pc::Communicator& comm) {
    auto a = gl::convection_diffusion_2d(comm, 5, 5, 1.5, -2.5);
    ee::write_matrix_market(a, path);
    comm.barrier();  // ensure rank 0 finished writing
    auto back = ee::read_matrix_market(comm, path);
    EXPECT_EQ(back.row_map().num_global(), a.row_map().num_global());
    EXPECT_EQ(back.num_global_entries(), a.num_global_entries());
    EXPECT_NEAR(back.frobenius_norm(), a.frobenius_norm(), 1e-12);
    // Spot-check apply equivalence.
    gl::Vector x(a.domain_map());
    x.randomize(9);
    gl::Vector y1(a.range_map()), y2(a.range_map());
    a.apply(x, y1);
    back.apply(x, y2);
    y1.update(-1.0, y2, 1.0);
    EXPECT_LT(y1.norm2(), 1e-12);
  });
  std::remove(path.c_str());
}

TEST_P(EpetraExtSweep, VectorMarketRoundTrip) {
  const int p = GetParam();
  const std::string path = "/tmp/pyhpc_vec_" + std::to_string(p) + ".mtx";
  pc::run(p, [&](pc::Communicator& comm) {
    auto map = gl::Map::uniform(comm, 23);
    gl::Vector v(map);
    v.randomize(4);
    ee::write_vector_market(v, path);
    comm.barrier();
    auto back = ee::read_vector_market(comm, path);
    back.update(-1.0, v, 1.0);
    EXPECT_LT(back.norm2(), 1e-12);
  });
  std::remove(path.c_str());
}

TEST(EpetraExt, ReadMissingFileThrows) {
  EXPECT_THROW(pc::run(1,
                       [](pc::Communicator& comm) {
                         (void)ee::read_matrix_market(
                             comm, "/tmp/definitely_not_there.mtx");
                       }),
               pyhpc::Error);
}

TEST_P(EpetraExtSweep, ScaleRowsColumns) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    auto map = gl::Map::uniform(comm, 18);
    auto a = gl::laplace1d(map);
    gl::Vector s(map), t(map);
    for (LO i = 0; i < map.num_local(); ++i) {
      const GO g = map.local_to_global(i);
      s[i] = static_cast<double>(g + 1);
      t[i] = 1.0 / static_cast<double>(g + 1);
    }
    auto scaled = ee::scale_rows_columns(a, s, t);
    // Check one row per rank: entry (g, c) should be a(g,c)*(g+1)/(c+1).
    for (LO i = 0; i < map.num_local(); ++i) {
      const GO g = map.local_to_global(i);
      auto orig = a.get_global_row(g);
      auto got = scaled.get_global_row(g);
      ASSERT_EQ(orig.size(), got.size());
      for (std::size_t k = 0; k < orig.size(); ++k) {
        const auto [c, v] = orig[k];
        EXPECT_NEAR(got[k].second,
                    v * static_cast<double>(g + 1) / static_cast<double>(c + 1),
                    1e-13);
      }
    }
  });
}
