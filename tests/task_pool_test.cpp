// Tests for util::TaskPool (CTest label `pool`): exactly-once coverage
// under concurrent stealing, bit-identical deterministic reductions across
// thread counts, exception propagation out of worker chunks, pool reuse,
// the serial/nested fallbacks, and the pool's integration with the ODIN
// reductions (CommConfig::threads) and the obs metrics registry.
#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "comm/runner.hpp"
#include "obs/metrics.hpp"
#include "odin/dist_array.hpp"
#include "odin/expr.hpp"
#include "util/task_pool.hpp"

namespace pc = pyhpc::comm;
namespace od = pyhpc::odin;
namespace pu = pyhpc::util;

namespace {

// Scoped thread-count override; restores the previous default on exit so
// tests cannot leak a pool size into each other.
class ThreadScope {
 public:
  explicit ThreadScope(int threads)
      : saved_(pu::TaskPool::thread_default()) {
    pu::TaskPool::set_thread_default(threads);
  }
  ~ThreadScope() { pu::TaskPool::set_thread_default(saved_); }

 private:
  int saved_;
};

// Deterministic "nasty" doubles whose sum depends on association order —
// the payload for the bit-equality tests.
std::vector<double> nasty_values(std::size_t n) {
  std::vector<double> v(n);
  std::uint64_t s = 0x9e3779b97f4a7c15ull;
  for (std::size_t i = 0; i < n; ++i) {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    const double mag = static_cast<double>(s % 1000003);
    v[i] = (i % 2 == 0 ? mag : -mag) * (1.0 + 1e-9 * static_cast<double>(i));
  }
  return v;
}

}  // namespace

TEST(TaskPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadScope scope(4);
  constexpr std::int64_t kN = 200000;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0, std::memory_order_relaxed);
  // Small grain -> many chunks -> heavy concurrent stealing.
  pu::parallel_for(0, kN, 512, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      hits[static_cast<std::size_t>(i)].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (std::int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(TaskPool, ParallelForHonorsSubrangeBounds) {
  ThreadScope scope(3);
  constexpr std::int64_t kBegin = 1000, kEnd = 54321;
  std::atomic<std::int64_t> total{0};
  std::atomic<std::int64_t> min_seen{kEnd}, max_seen{kBegin};
  pu::parallel_for(kBegin, kEnd, 777, [&](std::int64_t lo, std::int64_t hi) {
    total.fetch_add(hi - lo, std::memory_order_relaxed);
    std::int64_t cur = min_seen.load();
    while (lo < cur && !min_seen.compare_exchange_weak(cur, lo)) {
    }
    cur = max_seen.load();
    while (hi > cur && !max_seen.compare_exchange_weak(cur, hi)) {
    }
  });
  EXPECT_EQ(total.load(), kEnd - kBegin);
  EXPECT_EQ(min_seen.load(), kBegin);
  EXPECT_EQ(max_seen.load(), kEnd);
}

TEST(TaskPool, ReduceBitIdenticalAcrossThreadCounts) {
  const auto v = nasty_values(100000);
  const std::int64_t n = static_cast<std::int64_t>(v.size());
  auto run_sum = [&] {
    return pu::parallel_reduce(
        0, n, 257, 0.0,
        [&](std::int64_t lo, std::int64_t hi) {
          double a = 0.0;
          for (std::int64_t i = lo; i < hi; ++i) {
            a += v[static_cast<std::size_t>(i)];
          }
          return a;
        },
        [](double a, double b) { return a + b; });
  };
  double reference = 0.0;
  {
    ThreadScope scope(1);
    reference = run_sum();
  }
  for (int threads : {2, 4, 7}) {
    ThreadScope scope(threads);
    const double got = run_sum();
    EXPECT_EQ(std::bit_cast<std::uint64_t>(got),
              std::bit_cast<std::uint64_t>(reference))
        << "threads=" << threads;
  }
}

TEST(TaskPool, ReduceEmptyRangeReturnsIdentity) {
  ThreadScope scope(4);
  const double got = pu::parallel_reduce(
      5, 5, 100, -1.25,
      [](std::int64_t, std::int64_t) { return 0.0; },
      [](double a, double b) { return a + b; });
  EXPECT_DOUBLE_EQ(got, -1.25);
}

TEST(TaskPool, ExceptionPropagatesFromWorkerChunk) {
  ThreadScope scope(4);
  EXPECT_THROW(
      pu::parallel_for(0, 100000, 128,
                       [](std::int64_t lo, std::int64_t) {
                         if (lo == 50048) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
  // The pool survives a throwing region: the next region runs normally.
  std::atomic<std::int64_t> total{0};
  pu::parallel_for(0, 10000, 128, [&](std::int64_t lo, std::int64_t hi) {
    total.fetch_add(hi - lo, std::memory_order_relaxed);
  });
  EXPECT_EQ(total.load(), 10000);
}

TEST(TaskPool, PoolIsReusedAcrossRegions) {
  ThreadScope scope(4);
  auto& pool = pu::TaskPool::current();
  const auto before = pool.stats();
  std::atomic<std::int64_t> total{0};
  for (int round = 0; round < 10; ++round) {
    pool.parallel_for(0, 5000, 100, [&](std::int64_t lo, std::int64_t hi) {
      total.fetch_add(hi - lo, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 50000);
  const auto after = pool.stats();
  EXPECT_EQ(after.regions, before.regions + 10);
  EXPECT_EQ(after.tasks, before.tasks + 10 * 50);
}

TEST(TaskPool, TinyRangeFallsBackToSerial) {
  ThreadScope scope(4);
  auto& pool = pu::TaskPool::current();
  const auto before = pool.stats();
  std::int64_t covered = 0;
  pool.parallel_for(0, 10, 1000, [&](std::int64_t lo, std::int64_t hi) {
    covered += hi - lo;  // no atomics needed: runs inline on this thread
  });
  EXPECT_EQ(covered, 10);
  const auto after = pool.stats();
  EXPECT_EQ(after.serial_regions, before.serial_regions + 1);
  EXPECT_EQ(after.regions, before.regions);
}

TEST(TaskPool, NestedRegionsRunInlineWithoutDeadlock) {
  ThreadScope scope(4);
  constexpr std::int64_t kOuter = 8, kInner = 4096;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  for (auto& h : hits) h.store(0, std::memory_order_relaxed);
  pu::parallel_for(0, kOuter, 1, [&](std::int64_t olo, std::int64_t ohi) {
    for (std::int64_t o = olo; o < ohi; ++o) {
      // Inner parallel call from inside a region body: must degrade to
      // serial instead of waiting on the pool it is running on.
      pu::parallel_for(0, kInner, 256, [&, o](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) {
          hits[static_cast<std::size_t>(o * kInner + i)].fetch_add(
              1, std::memory_order_relaxed);
        }
      });
    }
  });
  for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(TaskPool, ConfiguredThreadsFollowsOverride) {
  {
    ThreadScope scope(6);
    EXPECT_EQ(pu::TaskPool::configured_threads(), 6);
    EXPECT_EQ(pu::TaskPool::current().threads(), 6);
  }
  {
    ThreadScope scope(2);
    EXPECT_EQ(pu::TaskPool::current().threads(), 2);
  }
}

TEST(TaskPool, PoolMetricsReachGlobalRegistry) {
  ThreadScope scope(4);
  auto& reg = pyhpc::obs::MetricsRegistry::global();
  const double regions_before = reg.value("pool.regions");
  pu::parallel_for(0, 100000, 1024, [](std::int64_t, std::int64_t) {});
  EXPECT_GE(reg.value("pool.regions"), regions_before + 1.0);
  EXPECT_GE(reg.value("pool.threads"), 4.0);
  EXPECT_TRUE(reg.has("pool.tasks"));
}

// ---- integration: ODIN reductions through CommConfig::threads -------------

TEST(TaskPoolOdin, DistArrayReductionsInvariantAcrossCommThreads) {
  struct Result {
    std::uint64_t sum, min, max, norm2, mean;
  };
  auto run_with_threads = [](int threads) {
    Result out{};
    pc::CommConfig config;
    config.threads = threads;
    pc::run(2, config, [&out](pc::Communicator& comm) {
      auto dist = od::Distribution::block(comm, od::Shape({40000}), 0);
      auto a = od::DistArray<double>::random(dist, /*seed=*/7);
      const Result r{std::bit_cast<std::uint64_t>(a.sum()),
                     std::bit_cast<std::uint64_t>(a.min()),
                     std::bit_cast<std::uint64_t>(a.max()),
                     std::bit_cast<std::uint64_t>(a.norm2()),
                     std::bit_cast<std::uint64_t>(a.mean())};
      if (comm.rank() == 0) out = r;
    });
    return out;
  };
  const Result serial = run_with_threads(1);
  for (int threads : {2, 4, 7}) {
    const Result par = run_with_threads(threads);
    EXPECT_EQ(par.sum, serial.sum) << "threads=" << threads;
    EXPECT_EQ(par.min, serial.min) << "threads=" << threads;
    EXPECT_EQ(par.max, serial.max) << "threads=" << threads;
    EXPECT_EQ(par.norm2, serial.norm2) << "threads=" << threads;
    EXPECT_EQ(par.mean, serial.mean) << "threads=" << threads;
  }
}

TEST(TaskPoolOdin, FusedReductionsMatchEagerAndStayDeterministic) {
  for (int threads : {1, 4}) {
    pc::CommConfig config;
    config.threads = threads;
    pc::run(2, config, [](pc::Communicator& comm) {
      auto dist = od::Distribution::block(comm, od::Shape({20000}), 0);
      auto x = od::DistArray<double>::random(dist, 3);
      auto y = od::DistArray<double>::random(dist, 4);
      const auto expr = od::lazy(x) * 2.0 + od::lazy(y);
      // Fused reductions agree with the materialized equivalents.
      auto eager = od::eval(expr);
      EXPECT_NEAR(od::sum(expr), eager.sum(), 1e-9);
      EXPECT_DOUBLE_EQ(od::min(expr), eager.min());
      EXPECT_DOUBLE_EQ(od::max(expr), eager.max());
      EXPECT_NEAR(od::mean(expr), eager.mean(), 1e-12);
    });
  }
}

TEST(TaskPoolOdin, EmptyArrayReductionSemanticsPreserved) {
  pc::CommConfig config;
  config.threads = 4;
  pc::run(2, config, [](pc::Communicator& comm) {
    auto dist = od::Distribution::block(comm, od::Shape({0}), 0);
    od::DistArray<double> a(dist);
    EXPECT_DOUBLE_EQ(a.sum(), 0.0);  // sum of nothing is 0
    EXPECT_THROW(a.min(), pyhpc::NumericalError);
    EXPECT_THROW(a.max(), pyhpc::NumericalError);
    EXPECT_THROW(a.mean(), pyhpc::NumericalError);
    const auto expr = od::lazy(a) * 2.0;
    EXPECT_DOUBLE_EQ(od::sum(expr), 0.0);
    EXPECT_THROW(od::min(expr), pyhpc::NumericalError);
    EXPECT_THROW(od::max(expr), pyhpc::NumericalError);
    EXPECT_THROW(od::mean(expr), pyhpc::NumericalError);
  });
}
