// Tests for the observability layer (trace recorder + metrics registry)
// and the PR's regression fixes: scalar/expr lazy operators, single-pass
// zip kAuto conforming, and empty-array reduction errors.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <new>
#include <string>
#include <type_traits>
#include <utility>

#include "comm/runner.hpp"
#include "obs/bridge.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "odin/dist_array.hpp"
#include "odin/expr.hpp"
#include "teuchos/timer.hpp"

namespace pc = pyhpc::comm;
namespace od = pyhpc::odin;
namespace obs = pyhpc::obs;
using od::index_t;
using Arr = od::DistArray<double>;
using pyhpc::NumericalError;

// ---- global allocation counter for the zero-allocation test ---------------
// Replacing ::operator new is binary-wide, so the counter simply ticks for
// every allocation anywhere in this test program.

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

// GCC flags free() on new'd pointers, but these overrides pair malloc with
// free consistently — the diagnostic doesn't apply to a full replacement set.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace {

// Tracing state is process-global; serialize every test through this
// fixture so one test's events never leak into another's assertions.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_trace_enabled(false);
    obs::clear_trace();
    obs::set_thread_rank(0);
  }
  void TearDown() override {
    obs::set_trace_enabled(false);
    obs::clear_trace();
  }
};

#ifndef PYHPC_OBS_NO_TRACE

TEST_F(ObsTest, SpanNestingRecordsBothEvents) {
  obs::set_trace_enabled(true);
  {
    obs::Span outer("outer", "test");
    outer.arg("depth", static_cast<std::int64_t>(0));
    {
      obs::Span inner("inner", "test");
      inner.arg("depth", static_cast<std::int64_t>(1));
      inner.arg("label", "leaf");
    }
  }
  obs::set_trace_enabled(false);

  EXPECT_EQ(obs::trace_event_count(), 2u);
  const std::string json = obs::trace_json();
  // The inner span finishes (and is recorded) first.
  const auto inner_pos = json.find("\"name\":\"inner\"");
  const auto outer_pos = json.find("\"name\":\"outer\"");
  ASSERT_NE(inner_pos, std::string::npos);
  ASSERT_NE(outer_pos, std::string::npos);
  EXPECT_LT(inner_pos, outer_pos);
  EXPECT_NE(json.find("\"label\":\"leaf\""), std::string::npos);
}

TEST_F(ObsTest, JsonGoldenShape) {
  obs::set_trace_enabled(true);
  {
    obs::Span span("shape_check", "test");
    span.arg("count", static_cast<std::int64_t>(3));
    span.arg("ratio", 0.5);
  }
  obs::instant("marker", "test");
  obs::counter("queue", "test", 7.0);
  obs::set_trace_enabled(false);

  const std::string json = obs::trace_json();
  // Chrome trace_event envelope.
  EXPECT_EQ(json.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", 0), 0u);
  EXPECT_EQ(json.back(), '}');
  // Complete span with duration and args.
  EXPECT_NE(json.find("\"name\":\"shape_check\",\"cat\":\"test\",\"ph\":\"X\""),
            std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"count\":3,\"ratio\":0.5}"),
            std::string::npos);
  // Instant and counter phases.
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  // Everything ran on the default rank.
  EXPECT_NE(json.find("\"tid\":0"), std::string::npos);
}

TEST_F(ObsTest, PerRankBufferIsolationUnderRunner) {
  obs::set_trace_enabled(true);
  pc::run(4, [](pc::Communicator& comm) {
    EXPECT_EQ(obs::thread_rank(), comm.rank());
    obs::Span span("rank_work", "test");
    span.arg("rank", static_cast<std::int64_t>(comm.rank()));
    comm.barrier();
  });
  obs::set_trace_enabled(false);

  const std::string json = obs::trace_json();
  for (int r = 0; r < 4; ++r) {
    EXPECT_NE(json.find("\"tid\":" + std::to_string(r)), std::string::npos)
        << "no events recorded for rank " << r;
  }
  EXPECT_NE(json.find("\"name\":\"barrier\""), std::string::npos);
}

TEST_F(ObsTest, DisabledModeAllocatesNothing) {
  obs::set_trace_enabled(false);
  const std::uint64_t before = g_allocations.load();
  for (int i = 0; i < 1000; ++i) {
    obs::Span span("hot", "test");
    span.arg("i", static_cast<std::int64_t>(i));
    span.arg("x", 0.5);
    span.arg("s", "literal");
    obs::instant("marker", "test");
    obs::counter("value", "test", 1.0);
  }
  const std::uint64_t after = g_allocations.load();
  EXPECT_EQ(after, before)
      << "disabled instrumentation must not touch the allocator";
}

TEST_F(ObsTest, WriteTraceProducesLoadableFile) {
  obs::set_trace_enabled(true);
  { obs::Span span("file_span", "test"); }
  obs::set_trace_enabled(false);

  const std::string path = ::testing::TempDir() + "obs_test_trace.json";
  ASSERT_TRUE(obs::write_trace(path));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string contents(1 << 12, '\0');
  const std::size_t n = std::fread(contents.data(), 1, contents.size(), f);
  std::fclose(f);
  contents.resize(n);
  EXPECT_EQ(contents, obs::trace_json());
  std::remove(path.c_str());
}

#endif  // PYHPC_OBS_NO_TRACE

// ---- metrics registry ------------------------------------------------------

TEST_F(ObsTest, MetricsRegistryKindsAndSnapshot) {
  obs::MetricsRegistry reg;
  reg.add("hits", 2.0);
  reg.add("hits", 3.0);
  reg.set("depth", 9.0);
  reg.set("depth", 4.0);
  reg.set_max("peak", 10.0);
  reg.set_max("peak", 7.0);

  EXPECT_DOUBLE_EQ(reg.value("hits"), 5.0);    // counter accumulates
  EXPECT_DOUBLE_EQ(reg.value("depth"), 4.0);   // gauge: last write wins
  EXPECT_DOUBLE_EQ(reg.value("peak"), 10.0);   // max-gauge keeps the max
  EXPECT_FALSE(reg.has("missing"));
  EXPECT_DOUBLE_EQ(reg.value("missing"), 0.0);

  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 3u);  // name-sorted: depth, hits, peak
  EXPECT_EQ(snap[0].name, "depth");
  EXPECT_EQ(snap[0].kind, obs::MetricKind::kGauge);
  EXPECT_EQ(snap[1].name, "hits");
  EXPECT_EQ(snap[1].kind, obs::MetricKind::kCounter);
  EXPECT_EQ(snap[2].name, "peak");
  EXPECT_EQ(snap[2].kind, obs::MetricKind::kMaxGauge);

  const std::string json = obs::metrics_to_json(snap);
  EXPECT_NE(json.find("{\"name\":\"hits\",\"kind\":\"counter\",\"value\":5}"),
            std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"max_gauge\""), std::string::npos);

  reg.reset();
  EXPECT_TRUE(reg.snapshot().empty());
}

TEST_F(ObsTest, RunnerFoldsCommStatsIntoGlobalRegistry) {
  auto& reg = obs::MetricsRegistry::global();
  reg.reset();
  pc::run(3, [](pc::Communicator& comm) {
    comm.barrier();
    (void)comm.allreduce_value(comm.rank(), std::plus<int>{});
  });
  // barrier (1) + allreduce (one collective — recursive doubling, no
  // reduce+broadcast split) on each of 3 ranks.
  EXPECT_DOUBLE_EQ(reg.value("comm.collectives"), 6.0);
  EXPECT_GT(reg.value("comm.coll_messages_sent"), 0.0);
  EXPECT_TRUE(reg.has("comm.mailbox_highwater_messages"));
}

TEST_F(ObsTest, UnifiedSnapshotMergesTimers) {
  auto& reg = obs::MetricsRegistry::global();
  reg.reset();
  pyhpc::teuchos::TimeMonitor::reset_all();
  {
    auto& t = pyhpc::teuchos::TimeMonitor::get("obs_test.phase");
    pyhpc::teuchos::ScopedTimer scoped(t);
  }
  reg.add("obs_test.counter", 1.0);

  const auto snap = obs::unified_snapshot(reg);
  bool saw_counter = false, saw_seconds = false, saw_count = false;
  for (const auto& m : snap) {
    if (m.name == "obs_test.counter") saw_counter = true;
    if (m.name == "timer.obs_test.phase.seconds") saw_seconds = true;
    if (m.name == "timer.obs_test.phase.count") saw_count = true;
  }
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_seconds);
  EXPECT_TRUE(saw_count);
  pyhpc::teuchos::TimeMonitor::reset_all();
}

// ---- regression: scalar/expr lazy operators --------------------------------

TEST_F(ObsTest, ScalarExprOperatorsAllOrders) {
  pc::run(2, [](pc::Communicator& comm) {
    auto dist = od::Distribution::block(comm, od::Shape({8}), 0);
    auto x = Arr::full(dist, 4.0);

    auto a = od::eval(2.0 + od::lazy(x));  // was: failed to compile
    auto b = od::eval(od::lazy(x) - 1.0);
    auto c = od::eval(10.0 - od::lazy(x));
    auto d = od::eval(od::lazy(x) / 2.0);
    auto e = od::eval(8.0 / od::lazy(x));
    for (double v : a.local_view()) EXPECT_DOUBLE_EQ(v, 6.0);
    for (double v : b.local_view()) EXPECT_DOUBLE_EQ(v, 3.0);
    for (double v : c.local_view()) EXPECT_DOUBLE_EQ(v, 6.0);
    for (double v : d.local_view()) EXPECT_DOUBLE_EQ(v, 2.0);
    for (double v : e.local_view()) EXPECT_DOUBLE_EQ(v, 2.0);

    // Non-commutative order matters: 10 - x != x - 10.
    auto f = od::eval(od::lazy(x) - 10.0);
    for (double v : f.local_view()) EXPECT_DOUBLE_EQ(v, -6.0);
  });
}

TEST_F(ObsTest, BinaryExprValueTypeUsesCommonType) {
  // A ScalarExpr<int> combined with a double array must evaluate as double,
  // whichever side the scalar sits on.
  using Leaf = od::detail::LeafExpr<double>;
  using IntScalar = od::detail::ScalarExpr<int>;
  using Mixed =
      decltype(pyhpc::odin::apply_binary(std::multiplies<double>{},
                                         std::declval<IntScalar>(),
                                         std::declval<Leaf>()));
  static_assert(std::is_same_v<Mixed::value_type, double>,
                "BinaryExpr::value_type must be the common type of both "
                "operands, not operand A's type alone");

  pc::run(2, [](pc::Communicator& comm) {
    auto dist = od::Distribution::block(comm, od::Shape({6}), 0);
    auto x = Arr::full(dist, 0.5);
    auto y = od::eval(od::constant(3) * od::lazy(x));
    static_assert(std::is_same_v<decltype(y), od::DistArray<double>>);
    for (double v : y.local_view()) EXPECT_DOUBLE_EQ(v, 1.5);
  });
}

// ---- regression: zip kAuto measures once, no recursion re-entry -----------

TEST_F(ObsTest, ZipAutoUsesTwoCollectives) {
  pc::run(4, [](pc::Communicator& comm) {
    const index_t n = 64;
    auto block = od::Distribution::block(comm, od::Shape({n}), 0);
    auto cyclic = od::Distribution::cyclic(comm, od::Shape({n}), 0);
    auto x = Arr::arange(od::Distribution(block), 0.0, 1.0);
    auto y = Arr::arange(od::Distribution(cyclic), 0.0, 2.0);

    comm.stats().reset();
    auto z = x.zip(y, std::plus<double>{}, od::ConformStrategy::kAuto);
    // One fused cost pass = a single two-element allreduce (one collective
    // now that allreduce runs recursive doubling, not reduce+broadcast) +
    // the redistribution alltoallv (1). The old path spent more: two
    // scalar allreduces plus the alltoallv.
    EXPECT_EQ(comm.stats().collectives, 2u)
        << "kAuto zip must measure both directions with one allreduce and "
           "redistribute directly";

    auto full = z.gather();
    for (index_t g = 0; g < n; ++g) {
      EXPECT_DOUBLE_EQ(full[static_cast<std::size_t>(g)],
                       3.0 * static_cast<double>(g));
    }
  });
}

#ifndef PYHPC_OBS_NO_TRACE
TEST_F(ObsTest, ZipAutoRecordsChosenStrategySpan) {
  obs::set_trace_enabled(true);
  pc::run(2, [](pc::Communicator& comm) {
    const index_t n = 32;
    auto block = od::Distribution::block(comm, od::Shape({n}), 0);
    auto cyclic = od::Distribution::cyclic(comm, od::Shape({n}), 0);
    auto x = Arr::full(od::Distribution(block), 1.0);
    auto y = Arr::full(od::Distribution(cyclic), 2.0);
    auto z = x.zip(y, std::plus<double>{}, od::ConformStrategy::kAuto);
    EXPECT_DOUBLE_EQ(z.sum(), 3.0 * static_cast<double>(n));
  });
  obs::set_trace_enabled(false);

  const std::string json = obs::trace_json();
  EXPECT_NE(json.find("\"name\":\"zip.auto_conform\""), std::string::npos);
  EXPECT_NE(json.find("\"cost_left\":"), std::string::npos);
  EXPECT_NE(json.find("\"cost_right\":"), std::string::npos);
  EXPECT_NE(json.find("\"chosen\":"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"redistribute\""), std::string::npos);
}
#endif  // PYHPC_OBS_NO_TRACE

// ---- regression: reductions on globally empty arrays -----------------------

TEST_F(ObsTest, EmptyArrayReductionsThrow) {
  pc::run(2, [](pc::Communicator& comm) {
    auto dist = od::Distribution::block(comm, od::Shape({0}), 0);
    Arr empty(dist);
    EXPECT_THROW((void)empty.min(), NumericalError);
    EXPECT_THROW((void)empty.max(), NumericalError);
    EXPECT_THROW((void)empty.mean(), NumericalError);
    EXPECT_THROW((void)empty.argmin(), NumericalError);
    // sum of nothing is a well-defined 0 — must keep working.
    EXPECT_DOUBLE_EQ(empty.sum(), 0.0);
  });
}

TEST_F(ObsTest, EmptyLocalRankReductionsStillWork) {
  // 3 elements over 4 ranks: one rank holds nothing but the reduction is
  // still over a non-empty global array.
  pc::run(4, [](pc::Communicator& comm) {
    auto dist = od::Distribution::block(comm, od::Shape({3}), 0);
    auto x = Arr::arange(od::Distribution(dist), 5.0, 1.0);  // 5, 6, 7
    EXPECT_DOUBLE_EQ(x.min(), 5.0);
    EXPECT_DOUBLE_EQ(x.max(), 7.0);
    EXPECT_DOUBLE_EQ(x.mean(), 6.0);
  });
}

}  // namespace
