// Tests for the Galeri gallery: structure and spectra of the generated
// matrices, checked against analytic formulas.
#include <gtest/gtest.h>

#include <cmath>

#include "comm/runner.hpp"
#include "galeri/gallery.hpp"

namespace pc = pyhpc::comm;
namespace gl = pyhpc::galeri;

using LO = std::int32_t;
using GO = std::int64_t;

namespace {
const std::vector<int> kRankCounts{1, 2, 3, 4};
}

class GaleriSweep : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Ranks, GaleriSweep, ::testing::ValuesIn(kRankCounts));

TEST_P(GaleriSweep, IdentityActsAsIdentity) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    auto map = gl::Map::uniform(comm, 17);
    auto eye = gl::identity(map);
    gl::Vector x(map);
    x.randomize(3);
    gl::Vector y(map);
    eye.apply(x, y);
    for (LO i = 0; i < x.local_size(); ++i) EXPECT_DOUBLE_EQ(y[i], x[i]);
    EXPECT_EQ(eye.num_global_entries(), 17);
  });
}

TEST_P(GaleriSweep, TridiagRowSums) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    auto map = gl::Map::uniform(comm, 20);
    auto a = gl::tridiag(map, 1.0, 5.0, 2.0);
    gl::Vector ones(map, 1.0), y(map);
    a.apply(ones, y);
    for (LO i = 0; i < map.num_local(); ++i) {
      const GO g = map.local_to_global(i);
      double want = 8.0;
      if (g == 0) want = 7.0;    // no sub-diagonal
      if (g == 19) want = 6.0;   // no super-diagonal
      EXPECT_DOUBLE_EQ(y[i], want);
    }
  });
}

TEST_P(GaleriSweep, Laplace2dRowSumsAndSymmetry) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    const GO nx = 6, ny = 5;
    auto a = gl::laplace2d(comm, nx, ny);
    EXPECT_EQ(a.row_map().num_global(), nx * ny);
    // Row sums: 0 interior, positive on the boundary.
    gl::Vector ones(a.domain_map(), 1.0), y(a.range_map());
    a.apply(ones, y);
    for (LO l = 0; l < a.num_local_rows(); ++l) {
      const GO g = a.row_map().local_to_global(l);
      const GO i = g % nx, j = g / nx;
      double missing = 0.0;
      if (i == 0) missing += 1.0;
      if (i == nx - 1) missing += 1.0;
      if (j == 0) missing += 1.0;
      if (j == ny - 1) missing += 1.0;
      EXPECT_DOUBLE_EQ(y[l], missing);
    }
    EXPECT_EQ(a.num_global_entries(),
              5 * nx * ny - 2 * nx - 2 * ny);
  });
}

TEST_P(GaleriSweep, Laplace3dEntryCount) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    const GO nx = 4, ny = 3, nz = 3;
    auto a = gl::laplace3d(comm, nx, ny, nz);
    const GO n = nx * ny * nz;
    // 7 n minus the missing neighbours across each face pair.
    const GO missing = 2 * (ny * nz + nx * nz + nx * ny);
    EXPECT_EQ(a.num_global_entries(), 7 * n - missing);
    // SPD sanity: x'Ax > 0 for random x.
    gl::Vector x(a.domain_map());
    x.randomize(5);
    gl::Vector y(a.range_map());
    a.apply(x, y);
    EXPECT_GT(x.dot(y), 0.0);
  });
}

TEST_P(GaleriSweep, ConvectionDiffusionIsNonsymmetric) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    auto a = gl::convection_diffusion_2d(comm, 5, 5, 10.0, -4.0);
    // A - A^T must have nonzero entries: compare (0,1) and (1,0) via rows.
    // Do it locally on whichever rank owns row 0 / row 1.
    double a01 = 0.0, a10 = 0.0;
    if (a.row_map().is_local_global_index(0)) {
      for (const auto& [c, v] : a.get_global_row(0)) {
        if (c == 1) a01 = v;
      }
    }
    if (a.row_map().is_local_global_index(1)) {
      for (const auto& [c, v] : a.get_global_row(1)) {
        if (c == 0) a10 = v;
      }
    }
    a01 = a.row_map().comm().allreduce_value(a01, std::plus<double>{});
    a10 = a.row_map().comm().allreduce_value(a10, std::plus<double>{});
    EXPECT_NE(a01, a10);
  });
}

TEST_P(GaleriSweep, RandomDiagDominantIsRankCountInvariant) {
  const int p = GetParam();
  // The matrix must not depend on the rank count: compare Frobenius norms
  // (collective) computed under 1 rank and under p ranks.
  static double frob1 = 0.0;
  pc::run(1, [&](pc::Communicator& comm) {
    auto map = gl::Map::uniform(comm, 30);
    auto a = gl::random_diag_dominant(map, 4, 77);
    frob1 = a.frobenius_norm();
  });
  pc::run(p, [&](pc::Communicator& comm) {
    auto map = gl::Map::uniform(comm, 30);
    auto a = gl::random_diag_dominant(map, 4, 77);
    EXPECT_NEAR(a.frobenius_norm(), frob1, 1e-12);
  });
}

TEST_P(GaleriSweep, RhsForOnesGivesExactSolution) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    auto map = gl::Map::uniform(comm, 25);
    auto a = gl::laplace1d(map);
    auto b = gl::rhs_for_ones(a);
    // b should equal A*1: interior zeros, ends 1.
    for (LO i = 0; i < map.num_local(); ++i) {
      const GO g = map.local_to_global(i);
      const double want = (g == 0 || g == 24) ? 1.0 : 0.0;
      EXPECT_DOUBLE_EQ(b[i], want);
    }
  });
}

TEST(Galeri, Laplace1dEigenvaluesMatchAnalytic) {
  // lambda_k = 2 - 2 cos(k pi / (n+1)) for the n-point Dirichlet Laplacian.
  pc::run(2, [](pc::Communicator& comm) {
    const GO n = 12;
    auto map = gl::Map::uniform(comm, n);
    auto a = gl::laplace1d(map);
    // Power method in tests/solvers checks the max; here validate the
    // Rayleigh quotient of the known extremal eigenvector.
    gl::Vector v(map);
    for (LO i = 0; i < map.num_local(); ++i) {
      const double g = static_cast<double>(map.local_to_global(i));
      v[i] = std::sin(M_PI * static_cast<double>(n) * (g + 1.0) /
                      (static_cast<double>(n) + 1.0));
    }
    gl::Vector av(map);
    a.apply(v, av);
    const double lambda = v.dot(av) / v.dot(v);
    const double want =
        2.0 - 2.0 * std::cos(M_PI * static_cast<double>(n) /
                             (static_cast<double>(n) + 1.0));
    EXPECT_NEAR(lambda, want, 1e-10);
  });
}

TEST(Galeri, InvalidDimensionsRejected) {
  pc::run(1, [](pc::Communicator& comm) {
    EXPECT_THROW((void)gl::laplace2d(comm, 0, 5), pyhpc::InvalidArgument);
    EXPECT_THROW((void)gl::laplace3d(comm, 2, -1, 2), pyhpc::InvalidArgument);
  });
}
