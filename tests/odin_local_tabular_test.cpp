// Tests for ODIN local mode (odin.local analogue), tabular data +
// map-reduce, distributed IO, the Tpetra interop, and the Fig-1
// driver/worker mode.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "comm/runner.hpp"
#include "odin/driver.hpp"
#include "odin/interop.hpp"
#include "odin/io.hpp"
#include "odin/local.hpp"
#include "odin/tabular.hpp"
#include "odin/ufunc.hpp"

namespace pc = pyhpc::comm;
namespace od = pyhpc::odin;
using od::index_t;
using Arr = od::DistArray<double>;

namespace {
const std::vector<int> kRankCounts{1, 2, 3, 4};
}

// ---------------------------------------------------------------------------
// Local mode
// ---------------------------------------------------------------------------

class LocalSweep : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Ranks, LocalSweep, ::testing::ValuesIn(kRankCounts));

TEST_P(LocalSweep, LocalApplySeesOwnSegmentAndContext) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    auto dist = od::Distribution::block(comm, od::Shape({20}), 0);
    Arr a = Arr::zeros(dist);
    od::local_apply(a, [](const od::LocalContext& ctx, std::span<double> seg) {
      EXPECT_EQ(ctx.comm->rank(), ctx.rank);
      for (std::size_t i = 0; i < seg.size(); ++i) {
        // Write the global index through the context mapping.
        seg[i] = static_cast<double>(
            ctx.global_of(static_cast<index_t>(i))[0]);
      }
    });
    auto f = a.gather();
    for (index_t g = 0; g < 20; ++g) {
      EXPECT_DOUBLE_EQ(f[static_cast<std::size_t>(g)],
                       static_cast<double>(g));
    }
  });
}

TEST_P(LocalSweep, PaperLocalHypotViaRegistry) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    // @odin.local def hypot(x, y): return odin.sqrt(x**2 + y**2)
    // -> registered once, callable from the global level by name.
    od::LocalRegistry::instance().register_function(
        "hypot",
        [](const od::LocalContext&,
           const std::vector<std::span<const double>>& in,
           std::span<double> out) {
          for (std::size_t i = 0; i < out.size(); ++i) {
            out[i] = std::hypot(in[0][i], in[1][i]);
          }
        });
    auto dist = od::Distribution::block(comm, od::Shape({8, 8}), 0);
    auto x = Arr::random(dist, 1);
    auto y = Arr::random(dist, 2);
    auto h = od::call_local("hypot", x, y);
    auto want = od::hypot(x, y);
    auto hf = h.gather();
    auto wf = want.gather();
    for (std::size_t i = 0; i < hf.size(); ++i) {
      EXPECT_DOUBLE_EQ(hf[i], wf[i]);
    }
  });
}

TEST_P(LocalSweep, LocalFunctionMayCommunicateDirectly) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    // "a local function could perform any arbitrary operation, including
    // communication with another node": ring-shift each rank's first
    // element via direct worker-to-worker p2p.
    auto dist = od::Distribution::block(comm, od::Shape({16}), 0);
    Arr a = Arr::fromfunction(dist, [](const std::vector<index_t>& g) {
      return static_cast<double>(g[0]);
    });
    std::vector<double> got(static_cast<std::size_t>(comm.size()), -1.0);
    od::local_apply(a, [&](const od::LocalContext& ctx,
                           std::span<double> seg) {
      const double mine = seg.empty() ? -1.0 : seg[0];
      const int next = (ctx.rank + 1) % ctx.num_ranks;
      const int prev = (ctx.rank + ctx.num_ranks - 1) % ctx.num_ranks;
      ctx.comm->send_value(mine, next, 77);
      const double from_prev = ctx.comm->recv_value<double>(prev, 77);
      got[static_cast<std::size_t>(ctx.rank)] = from_prev;
    });
    // Rank r received rank r-1's first global index.
    const int r = comm.rank();
    const int prev = (r + comm.size() - 1) % comm.size();
    const double expected = static_cast<double>(
        a.dist().axis_spec(0).offsets[static_cast<std::size_t>(prev)]);
    EXPECT_DOUBLE_EQ(got[static_cast<std::size_t>(r)], expected);
  });
}

TEST(LocalRegistry, MissingFunctionThrows) {
  od::LocalRegistry::instance().clear();
  EXPECT_FALSE(od::LocalRegistry::instance().has("nope"));
  EXPECT_THROW((void)od::LocalRegistry::instance().get("nope"),
               pyhpc::InvalidArgument);
}

// ---------------------------------------------------------------------------
// Tabular + map-reduce
// ---------------------------------------------------------------------------

namespace {
// A "structured dtype" record (§III.I).
struct Sale {
  std::int64_t store;
  std::int64_t item;
  double amount;
};
}  // namespace

class TabularSweep : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Ranks, TabularSweep, ::testing::ValuesIn(kRankCounts));

TEST_P(TabularSweep, MapReduceGroupBySumMatchesSerial) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    // Global dataset: 120 sales, store = i % 7, amount = i. Each rank holds
    // a contiguous chunk.
    const std::int64_t total = 120;
    const int p = comm.size();
    const std::int64_t chunk = total / p + (comm.rank() < total % p ? 1 : 0);
    std::int64_t start = 0;
    for (int q = 0; q < comm.rank(); ++q) {
      start += total / p + (q < total % p ? 1 : 0);
    }
    std::vector<Sale> rows;
    for (std::int64_t i = start; i < start + chunk; ++i) {
      rows.push_back(Sale{i % 7, i % 3, static_cast<double>(i)});
    }
    od::DistTable<Sale> table(comm, std::move(rows));
    EXPECT_EQ(table.global_size(), total);

    auto grouped = od::map_reduce<std::int64_t, double>(
        table,
        [](const Sale& s) { return std::pair<std::int64_t, double>(s.store, s.amount); },
        [](double acc, double v) { return acc + v; });

    // Serial reference.
    std::map<std::int64_t, double> want;
    for (std::int64_t i = 0; i < total; ++i) {
      want[i % 7] += static_cast<double>(i);
    }
    // Merge every rank's owned groups.
    struct KV {
      std::int64_t k;
      double v;
    };
    std::vector<KV> mine;
    for (const auto& [k, v] : grouped) mine.push_back(KV{k, v});
    auto chunks = comm.allgatherv(std::span<const KV>(mine));
    std::map<std::int64_t, double> got;
    for (const auto& c : chunks) {
      for (const auto& kv : c) {
        EXPECT_EQ(got.count(kv.k), 0u) << "key owned by two reducers";
        got[kv.k] = kv.v;
      }
    }
    EXPECT_EQ(got.size(), want.size());
    for (const auto& [k, v] : want) {
      EXPECT_DOUBLE_EQ(got[k], v) << "store " << k;
    }
  });
}

TEST_P(TabularSweep, FilterAndMapAreLocal) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    std::vector<Sale> rows;
    for (int i = 0; i < 10; ++i) {
      rows.push_back(Sale{comm.rank(), i, static_cast<double>(i)});
    }
    od::DistTable<Sale> table(comm, std::move(rows));
    comm.stats().reset();
    auto big = table.filter([](const Sale& s) { return s.amount >= 5.0; });
    auto doubled = big.map<double>([](const Sale& s) { return 2.0 * s.amount; });
    EXPECT_EQ(comm.stats().p2p_bytes_sent, 0u);
    EXPECT_EQ(doubled.local_rows().size(), 5u);
    // global_size is collective (allreduce) but moves no row data.
    EXPECT_EQ(big.global_size(), 5 * comm.size());
  });
}

TEST_P(TabularSweep, RebalanceEvensSkewedTables) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    if (comm.size() == 1) return;
    // All rows start on rank 0.
    std::vector<Sale> rows;
    if (comm.rank() == 0) {
      for (int i = 0; i < 40; ++i) rows.push_back(Sale{0, i, 1.0});
    }
    od::DistTable<Sale> table(comm, std::move(rows));
    auto balanced = table.rebalance();
    EXPECT_EQ(balanced.global_size(), 40);
    const auto local = static_cast<std::int64_t>(balanced.local_rows().size());
    const std::int64_t mx = comm.allreduce_value(
        local, [](std::int64_t a, std::int64_t b) { return std::max(a, b); });
    const std::int64_t mn = comm.allreduce_value(
        local, [](std::int64_t a, std::int64_t b) { return std::min(a, b); });
    EXPECT_LE(mx - mn, 1);
  });
}

// ---------------------------------------------------------------------------
// Map-reduce properties (the edges the group-by scenario leans on)
// ---------------------------------------------------------------------------

TEST_P(TabularSweep, MapReduceOnEmptyTableYieldsNoGroups) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    od::DistTable<Sale> table(comm, {});
    EXPECT_EQ(table.global_size(), 0);
    auto grouped = od::map_reduce<std::int64_t, double>(
        table,
        [](const Sale& s) {
          return std::pair<std::int64_t, double>(s.store, s.amount);
        },
        [](double acc, double v) { return acc + v; });
    EXPECT_TRUE(grouped.empty());
  });
}

TEST_P(TabularSweep, MapReduceSingleGroupFoldsEveryRowOntoOneReducer) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    // Every row shares one key, so exactly one rank owns the one group and
    // its aggregate covers all p * 6 rows.
    std::vector<Sale> rows;
    for (int i = 0; i < 6; ++i) {
      rows.push_back(Sale{7, i, 1.5});
    }
    od::DistTable<Sale> table(comm, std::move(rows));
    auto grouped = od::map_reduce<std::int64_t, double>(
        table,
        [](const Sale& s) {
          return std::pair<std::int64_t, double>(s.store, s.amount);
        },
        [](double acc, double v) { return acc + v; });
    struct KV {
      std::int64_t k;
      double v;
    };
    std::vector<KV> mine;
    for (const auto& [k, v] : grouped) mine.push_back(KV{k, v});
    auto chunks = comm.allgatherv(std::span<const KV>(mine));
    int owners = 0;
    double total = 0.0;
    for (const auto& c : chunks) {
      for (const auto& kv : c) {
        ++owners;
        EXPECT_EQ(kv.k, 7);
        total = kv.v;
      }
    }
    EXPECT_EQ(owners, 1);
    EXPECT_DOUBLE_EQ(total, 1.5 * 6 * comm.size());
  });
}

TEST_P(TabularSweep, MapReduceAllDistinctKeysPreservesEveryRow) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    // Globally unique keys: no fold ever happens, every value must come
    // through untouched (and key-sorted per owner).
    std::vector<Sale> rows;
    for (int i = 0; i < 5; ++i) {
      const std::int64_t key = comm.rank() * 5 + i;
      rows.push_back(Sale{key, i, static_cast<double>(100 + key)});
    }
    od::DistTable<Sale> table(comm, std::move(rows));
    auto grouped = od::map_reduce<std::int64_t, double>(
        table,
        [](const Sale& s) {
          return std::pair<std::int64_t, double>(s.store, s.amount);
        },
        [](double acc, double v) { return acc + v; });
    EXPECT_TRUE(std::is_sorted(
        grouped.begin(), grouped.end(),
        [](const auto& a, const auto& b) { return a.first < b.first; }));
    struct KV {
      std::int64_t k;
      double v;
    };
    std::vector<KV> mine;
    for (const auto& [k, v] : grouped) mine.push_back(KV{k, v});
    auto chunks = comm.allgatherv(std::span<const KV>(mine));
    std::map<std::int64_t, double> got;
    for (const auto& c : chunks) {
      for (const auto& kv : c) {
        EXPECT_EQ(got.count(kv.k), 0u);
        got[kv.k] = kv.v;
      }
    }
    const std::int64_t total = 5 * comm.size();
    EXPECT_EQ(got.size(), static_cast<std::size_t>(total));
    for (std::int64_t k = 0; k < total; ++k) {
      EXPECT_DOUBLE_EQ(got[k], static_cast<double>(100 + k)) << "key " << k;
    }
  });
}

TEST_P(TabularSweep, MapReduceMergesDuplicateKeysAcrossRanks) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    // The same two keys appear on every rank, so the shuffle must merge
    // per-rank combiner outputs — count and sum see every contribution
    // exactly once (a non-commutative-safe reducer would double-fold).
    struct CountSum {
      std::int64_t count;
      double sum;
    };
    std::vector<Sale> rows;
    for (int i = 0; i < 4; ++i) {
      rows.push_back(Sale{i % 2, i, static_cast<double>(comm.rank() + 1)});
    }
    od::DistTable<Sale> table(comm, std::move(rows));
    auto grouped = od::map_reduce<std::int64_t, CountSum>(
        table,
        [](const Sale& s) {
          return std::pair<std::int64_t, CountSum>(s.store,
                                                   CountSum{1, s.amount});
        },
        [](CountSum acc, const CountSum& v) {
          return CountSum{acc.count + v.count, acc.sum + v.sum};
        });
    struct KV {
      std::int64_t k;
      CountSum v;
    };
    std::vector<KV> mine;
    for (const auto& [k, v] : grouped) mine.push_back(KV{k, v});
    auto chunks = comm.allgatherv(std::span<const KV>(mine));
    const int p = comm.size();
    // Sum over ranks r of (r+1), twice per key (two rows per key per rank).
    const double want_sum = static_cast<double>(p) * (p + 1);
    int seen = 0;
    for (const auto& c : chunks) {
      for (const auto& kv : c) {
        ++seen;
        EXPECT_EQ(kv.v.count, 2 * p) << "key " << kv.k;
        EXPECT_DOUBLE_EQ(kv.v.sum, want_sum) << "key " << kv.k;
      }
    }
    EXPECT_EQ(seen, 2);
  });
}

// ---------------------------------------------------------------------------
// Distributed IO
// ---------------------------------------------------------------------------

class IoSweep : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Ranks, IoSweep, ::testing::ValuesIn(kRankCounts));

TEST_P(IoSweep, WriteReadRoundTripSameDistribution) {
  const int p = GetParam();
  const std::string path = "/tmp/pyhpc_odin_io_" + std::to_string(p) + ".bin";
  pc::run(p, [&](pc::Communicator& comm) {
    auto dist = od::Distribution::block(comm, od::Shape({40}), 0);
    auto a = Arr::arange(dist, 0.5, 0.25);
    od::write_distributed(a, path);
    auto shape = od::read_stored_shape(comm, path);
    EXPECT_EQ(shape, a.shape());
    auto back = od::read_distributed(dist, path);
    EXPECT_EQ(back.gather(), a.gather());
  });
  std::remove(path.c_str());
}

TEST_P(IoSweep, ReadUnderDifferentDistribution) {
  const int p = GetParam();
  const std::string path = "/tmp/pyhpc_odin_io2_" + std::to_string(p) + ".bin";
  pc::run(p, [&](pc::Communicator& comm) {
    // Write blocked, read cyclic: the file is the interchange format.
    auto bdist = od::Distribution::block(comm, od::Shape({33}), 0);
    auto a = Arr::arange(bdist, 0.0, 1.0);
    od::write_distributed(a, path);
    auto cdist = od::Distribution::cyclic(comm, od::Shape({33}), 0);
    auto back = od::read_distributed(cdist, path);
    EXPECT_EQ(back.gather(), a.gather());
  });
  std::remove(path.c_str());
}

TEST_P(IoSweep, TwoDimensionalRoundTrip) {
  const int p = GetParam();
  const std::string path = "/tmp/pyhpc_odin_io3_" + std::to_string(p) + ".bin";
  pc::run(p, [&](pc::Communicator& comm) {
    auto dist = od::Distribution::block(comm, od::Shape({7, 5}), 0);
    auto a = Arr::random(dist, 9);
    od::write_distributed(a, path);
    auto back = od::read_distributed(dist, path);
    EXPECT_EQ(back.gather(), a.gather());
  });
  std::remove(path.c_str());
}

TEST(Io, ShapeMismatchRejected) {
  const std::string path = "/tmp/pyhpc_odin_io4.bin";
  pc::run(2, [&](pc::Communicator& comm) {
    auto dist = od::Distribution::block(comm, od::Shape({12}), 0);
    od::write_distributed(Arr::ones(dist), path);
    auto wrong = od::Distribution::block(comm, od::Shape({13}), 0);
    EXPECT_THROW((void)od::read_distributed(wrong, path), pyhpc::ShapeError);
  });
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Tpetra interop (§III.E)
// ---------------------------------------------------------------------------

class InteropSweep : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Ranks, InteropSweep,
                         ::testing::ValuesIn(kRankCounts));

TEST_P(InteropSweep, BlockArrayToVectorIsLocalCopy) {
  const int p = GetParam();
  auto stats = pc::run_with_stats(p, [](pc::Communicator& comm) {
    auto dist = od::Distribution::block(comm, od::Shape({24}), 0);
    auto a = Arr::arange(dist, 0.0, 1.0);
    comm.stats().reset();
    auto v = od::to_tpetra(a);
    EXPECT_EQ(comm.stats().p2p_bytes_sent, 0u);
    EXPECT_EQ(v.global_size(), 24);
    // Values land at matching global indices.
    for (std::int32_t i = 0; i < v.local_size(); ++i) {
      EXPECT_DOUBLE_EQ(v[i], static_cast<double>(v.map().local_to_global(i)));
    }
  });
  (void)stats;
}

TEST_P(InteropSweep, RoundTripThroughVector) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    auto dist = od::Distribution::block(comm, od::Shape({19}), 0);
    auto a = Arr::random(dist, 4);
    auto v = od::to_tpetra(a);
    auto back = od::from_tpetra(v);
    EXPECT_EQ(back.gather(), a.gather());
  });
}

TEST_P(InteropSweep, CyclicArrayRedistributesToVector) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    auto cdist = od::Distribution::cyclic(comm, od::Shape({21}), 0);
    auto a = Arr::arange(cdist, 0.0, 1.0);
    auto v = od::to_tpetra(a);  // redistributes internally
    for (std::int32_t i = 0; i < v.local_size(); ++i) {
      EXPECT_DOUBLE_EQ(v[i], static_cast<double>(v.map().local_to_global(i)));
    }
  });
}

TEST(Interop, TwoDimensionalArrayRejected) {
  pc::run(2, [](pc::Communicator& comm) {
    auto dist = od::Distribution::block(comm, od::Shape({4, 4}), 0);
    auto a = Arr::ones(dist);
    EXPECT_THROW((void)od::to_tpetra(a), pyhpc::ShapeError);
  });
}

// ---------------------------------------------------------------------------
// Fig-1 driver/worker mode
// ---------------------------------------------------------------------------

class DriverSweep : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Workers, DriverSweep, ::testing::Values(2, 3, 5));

TEST_P(DriverSweep, DriverComputesThroughControlMessages) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    od::DriverContext ctx(comm);
    if (!ctx.is_driver()) {
      ctx.worker_loop();
      return;
    }
    const std::int64_t n = 1000;
    const int x = ctx.create_full(n, 3.0);
    const int y = ctx.create_full(n, 4.0);
    const int h = ctx.binary("hypot", x, y);
    EXPECT_NEAR(ctx.reduce_sum(h), 5.0 * static_cast<double>(n), 1e-9);
    const int s = ctx.unary("sqrt", x);
    EXPECT_NEAR(ctx.reduce_sum(s), std::sqrt(3.0) * static_cast<double>(n),
                1e-9);
    const int z = ctx.axpy(2.0, x, y);  // 2*3 + 4 = 10
    EXPECT_NEAR(ctx.reduce_sum(z), 10.0 * static_cast<double>(n), 1e-9);
    ctx.free_array(h);
    ctx.shutdown();
  });
}

TEST_P(DriverSweep, ControlMessagesStayTensOfBytes) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    od::DriverContext ctx(comm);
    if (!ctx.is_driver()) {
      ctx.worker_loop();
      return;
    }
    // The paper: "the only communication from the top-level node is a
    // short message, at most tens of bytes" — independent of n.
    for (std::int64_t n : {std::int64_t{100}, std::int64_t{100000}}) {
      const auto before = ctx.control_bytes_sent();
      (void)ctx.create_full(n, 1.0);
      const auto per_worker =
          (ctx.control_bytes_sent() - before) /
          static_cast<std::uint64_t>(ctx.num_workers());
      EXPECT_LE(per_worker, 48u);
    }
    ctx.shutdown();
  });
}

TEST_P(DriverSweep, BatchingCoalescesPayloads) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    od::DriverContext ctx(comm);
    if (!ctx.is_driver()) {
      ctx.worker_loop();
      return;
    }
    const int a = ctx.create_full(50, 1.0);
    const auto payloads_before = ctx.payloads_sent();
    ctx.begin_batch();
    int cur = a;
    for (int i = 0; i < 10; ++i) cur = ctx.unary("sqrt", cur);
    ctx.flush_batch();
    // 10 messages, one payload per worker.
    EXPECT_EQ(ctx.payloads_sent() - payloads_before,
              static_cast<std::uint64_t>(ctx.num_workers()));
    EXPECT_NEAR(ctx.reduce_sum(cur), 50.0, 1e-9);
    ctx.shutdown();
  });
}

TEST(Driver, RequiresAWorker) {
  pc::run(1, [](pc::Communicator& comm) {
    EXPECT_THROW(od::DriverContext ctx(comm), pyhpc::InvalidArgument);
  });
}
