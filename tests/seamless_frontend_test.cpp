// Tests for the MiniPy front-end (lexer + parser) and the tree-walking
// interpreter: language semantics against Python ground truth.
#include <gtest/gtest.h>

#include "seamless/ast.hpp"
#include "seamless/interpreter.hpp"
#include "seamless/token.hpp"

namespace sm = pyhpc::seamless;
using sm::Value;

namespace {
// Runs fn(args) through the interpreter.
Value run(const std::string& source, const std::string& fn,
          std::vector<Value> args = {}) {
  sm::Module mod = sm::parse(source);
  sm::Interpreter interp(mod);
  return interp.call(fn, std::move(args));
}
}  // namespace

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

TEST(Lexer, TokenizesNumbersNamesOperators) {
  auto tokens = sm::tokenize("x = 3 + 4.5e2 ** 2\n");
  ASSERT_GE(tokens.size(), 8u);
  EXPECT_EQ(tokens[0].kind, sm::TokenKind::kName);
  EXPECT_EQ(tokens[0].text, "x");
  EXPECT_EQ(tokens[1].kind, sm::TokenKind::kEq);
  EXPECT_EQ(tokens[2].kind, sm::TokenKind::kInt);
  EXPECT_EQ(tokens[2].int_value, 3);
  EXPECT_EQ(tokens[3].kind, sm::TokenKind::kPlus);
  EXPECT_EQ(tokens[4].kind, sm::TokenKind::kFloat);
  EXPECT_DOUBLE_EQ(tokens[4].float_value, 450.0);
  EXPECT_EQ(tokens[5].kind, sm::TokenKind::kDoubleStar);
}

TEST(Lexer, IndentDedentPairs) {
  const std::string src =
      "def f():\n"
      "    if 1:\n"
      "        return 2\n"
      "    return 3\n";
  auto tokens = sm::tokenize(src);
  int indents = 0, dedents = 0;
  for (const auto& t : tokens) {
    if (t.kind == sm::TokenKind::kIndent) ++indents;
    if (t.kind == sm::TokenKind::kDedent) ++dedents;
  }
  EXPECT_EQ(indents, 2);
  EXPECT_EQ(dedents, 2);
}

TEST(Lexer, CommentsAndBlankLinesIgnored) {
  auto tokens = sm::tokenize("# header\n\nx = 1  # trailing\n\n");
  EXPECT_EQ(tokens[0].kind, sm::TokenKind::kName);
  // name, =, 1, newline, eof
  EXPECT_EQ(tokens.size(), 5u);
}

TEST(Lexer, BracketsSuppressNewlines) {
  auto tokens = sm::tokenize("y = f(1,\n      2)\n");
  int newlines = 0;
  for (const auto& t : tokens) {
    if (t.kind == sm::TokenKind::kNewline) ++newlines;
  }
  EXPECT_EQ(newlines, 1);
}

TEST(Lexer, ErrorsCarryLineNumbers) {
  try {
    sm::tokenize("x = 1\ny = $\n");
    FAIL() << "expected CompileError";
  } catch (const pyhpc::CompileError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
  EXPECT_THROW(sm::tokenize("\tx = 1\n"), pyhpc::CompileError);
  EXPECT_THROW(sm::tokenize("s = 'unterminated\n"), pyhpc::CompileError);
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

TEST(Parser, FunctionStructure) {
  auto mod = sm::parse(
      "def hypot(x, y):\n"
      "    return sqrt(x * x + y * y)\n");
  ASSERT_EQ(mod.functions.size(), 1u);
  const auto& fn = mod.function("hypot");
  EXPECT_EQ(fn.params, (std::vector<std::string>{"x", "y"}));
  ASSERT_EQ(fn.body.size(), 1u);
  EXPECT_EQ(fn.body[0]->kind, sm::StmtKind::kReturn);
}

TEST(Parser, PrecedenceMatchesPython) {
  // 2 + 3 * 4 ** 2 == 50; (2+3)*4 == 20; -2 ** 2 == -4 (unary binds looser).
  EXPECT_EQ(run("def f():\n    return 2 + 3 * 4 ** 2\n", "f").as_int(), 50);
  EXPECT_EQ(run("def f():\n    return (2 + 3) * 4\n", "f").as_int(), 20);
  EXPECT_EQ(run("def f():\n    return -2 ** 2\n", "f").as_int(), -4);
}

TEST(Parser, SyntaxErrorsHaveContext) {
  EXPECT_THROW(sm::parse("def f(:\n    pass\n"), pyhpc::CompileError);
  EXPECT_THROW(sm::parse("x = 1\n"), pyhpc::CompileError);  // top-level stmt
  EXPECT_THROW(sm::parse("def f():\npass\n"), pyhpc::CompileError);  // no indent
  EXPECT_THROW(sm::parse("def f():\n    for x in items:\n        pass\n"),
               pyhpc::CompileError);  // non-range for
  EXPECT_THROW(sm::parse("def f():\n    1 + 2 = 3\n"), pyhpc::CompileError);
}

TEST(Parser, ParseExpressionHelper) {
  auto e = sm::parse_expression("1 + 2 * x");
  EXPECT_EQ(e->kind, sm::ExprKind::kBinary);
  EXPECT_EQ(e->bin_op, sm::BinOp::kAdd);
}

// ---------------------------------------------------------------------------
// Interpreter semantics
// ---------------------------------------------------------------------------

TEST(Interp, ArithmeticSemanticsMatchPython) {
  // True division yields float even for ints.
  EXPECT_DOUBLE_EQ(run("def f():\n    return 7 / 2\n", "f").as_float(), 3.5);
  // Floor division and modulo round toward -inf.
  EXPECT_EQ(run("def f():\n    return -7 // 2\n", "f").as_int(), -4);
  EXPECT_EQ(run("def f():\n    return -7 % 2\n", "f").as_int(), 1);
  EXPECT_EQ(run("def f():\n    return 7 % -2\n", "f").as_int(), -1);
  // Int/float promotion.
  EXPECT_DOUBLE_EQ(run("def f():\n    return 1 + 0.5\n", "f").as_float(), 1.5);
  // Integer power stays integer for non-negative exponents.
  EXPECT_EQ(run("def f():\n    return 2 ** 10\n", "f").as_int(), 1024);
  EXPECT_DOUBLE_EQ(run("def f():\n    return 2 ** -1\n", "f").as_float(), 0.5);
}

TEST(Interp, PaperSumExample) {
  // §IV.A verbatim (minus the decorator):
  const std::string src =
      "def sum(it):\n"
      "    res = 0.0\n"
      "    for i in range(len(it)):\n"
      "        res += it[i]\n"
      "    return res\n";
  auto arr = sm::ArrayValue::owned({1.5, 2.5, 3.0});
  EXPECT_DOUBLE_EQ(run(src, "sum", {Value::of(arr)}).as_float(), 7.0);
}

TEST(Interp, ControlFlow) {
  const std::string src =
      "def classify(x):\n"
      "    if x < 0:\n"
      "        return -1\n"
      "    elif x == 0:\n"
      "        return 0\n"
      "    else:\n"
      "        return 1\n";
  EXPECT_EQ(run(src, "classify", {Value::of(-5)}).as_int(), -1);
  EXPECT_EQ(run(src, "classify", {Value::of(0)}).as_int(), 0);
  EXPECT_EQ(run(src, "classify", {Value::of(3)}).as_int(), 1);
}

TEST(Interp, WhileWithBreakContinue) {
  const std::string src =
      "def f(n):\n"
      "    total = 0\n"
      "    i = 0\n"
      "    while True:\n"
      "        i += 1\n"
      "        if i > n:\n"
      "            break\n"
      "        if i % 2 == 0:\n"
      "            continue\n"
      "        total += i\n"
      "    return total\n";
  EXPECT_EQ(run(src, "f", {Value::of(10)}).as_int(), 25);  // 1+3+5+7+9
}

TEST(Interp, ForRangeVariants) {
  const std::string src =
      "def f():\n"
      "    total = 0\n"
      "    for i in range(5):\n"
      "        total += i\n"
      "    for i in range(2, 6):\n"
      "        total += i\n"
      "    for i in range(10, 0, -2):\n"
      "        total += i\n"
      "    return total\n";
  EXPECT_EQ(run(src, "f").as_int(), 10 + 14 + 30);
}

TEST(Interp, RecursionAndMultipleFunctions) {
  const std::string src =
      "def fib(n):\n"
      "    if n < 2:\n"
      "        return n\n"
      "    return fib(n - 1) + fib(n - 2)\n"
      "def double_fib(n):\n"
      "    return 2 * fib(n)\n";
  EXPECT_EQ(run(src, "fib", {Value::of(10)}).as_int(), 55);
  EXPECT_EQ(run(src, "double_fib", {Value::of(10)}).as_int(), 110);
}

TEST(Interp, InfiniteRecursionBounded) {
  EXPECT_THROW(run("def f(n):\n    return f(n)\n", "f", {Value::of(1)}),
               pyhpc::RuntimeFault);
}

TEST(Interp, ListsAndArrays) {
  const std::string src =
      "def f(n):\n"
      "    xs = zeros(n)\n"
      "    for i in range(n):\n"
      "        xs[i] = i * i\n"
      "    total = 0.0\n"
      "    for i in range(len(xs)):\n"
      "        total += xs[i]\n"
      "    return total\n";
  EXPECT_DOUBLE_EQ(run(src, "f", {Value::of(5)}).as_float(), 30.0);
}

TEST(Interp, NegativeIndexingWraps) {
  const std::string src = "def last(a):\n    return a[-1]\n";
  auto arr = sm::ArrayValue::owned({1.0, 2.0, 9.0});
  EXPECT_DOUBLE_EQ(run(src, "last", {Value::of(arr)}).as_float(), 9.0);
}

TEST(Interp, BoolOpsShortCircuitAndReturnOperand) {
  // Python returns the deciding operand.
  EXPECT_EQ(run("def f():\n    return 0 or 7\n", "f").as_int(), 7);
  EXPECT_EQ(run("def f():\n    return 3 and 5\n", "f").as_int(), 5);
  EXPECT_EQ(run("def f():\n    return 0 and 5\n", "f").as_int(), 0);
  // Short-circuit: the crashing rhs must not run.
  const std::string src =
      "def boom():\n"
      "    return 1 // 0\n"
      "def f(x):\n"
      "    return x == 0 or boom() > 0\n";
  EXPECT_TRUE(run(src, "f", {Value::of(0)}).as_bool());
  EXPECT_THROW(run(src, "f", {Value::of(1)}), pyhpc::RuntimeFault);
}

TEST(Interp, RuntimeErrorsCarryLines) {
  try {
    run("def f():\n    return 1 // 0\n", "f");
    FAIL();
  } catch (const pyhpc::RuntimeFault& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
  EXPECT_THROW(run("def f():\n    return nope\n", "f"), pyhpc::RuntimeFault);
  EXPECT_THROW(run("def f(a):\n    return a[100]\n", "f",
                   {Value::of(sm::ArrayValue::owned({1.0}))}),
               pyhpc::RuntimeFault);
}

TEST(Interp, StringsBasics) {
  EXPECT_EQ(run("def f():\n    return 'ab' + 'cd'\n", "f").as_string(), "abcd");
  EXPECT_TRUE(run("def f():\n    return 'x' == 'x'\n", "f").as_bool());
  EXPECT_EQ(run("def f():\n    return len('hello')\n", "f").as_int(), 5);
}

TEST(Interp, CustomBuiltinInjection) {
  sm::Module mod = sm::parse("def f(x):\n    return twice(x) + 1\n");
  sm::Interpreter interp(mod);
  interp.register_builtin("twice", [](std::span<const Value> args) {
    return Value::of(args[0].to_int() * 2);
  });
  EXPECT_EQ(interp.call("f", {Value::of(20)}).as_int(), 41);
}

TEST(Interp, ValueReprAndTruthiness) {
  EXPECT_EQ(Value::of(3).repr(), "3");
  EXPECT_EQ(Value::none().repr(), "None");
  EXPECT_EQ(Value::of(true).repr(), "True");
  EXPECT_FALSE(Value::none().truthy());
  EXPECT_FALSE(Value::of(0.0).truthy());
  EXPECT_TRUE(Value::of(std::string("x")).truthy());
  EXPECT_FALSE(Value::of(std::string("")).truthy());
}
