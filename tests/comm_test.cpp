// Tests for the message-passing substrate: p2p matching semantics,
// non-blocking receives, every collective against a serial reference, and
// failure injection (truncation, bad ranks, aborts).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <numeric>
#include <vector>

#include "comm/runner.hpp"
#include "util/error.hpp"
#include "util/random.hpp"

namespace pc = pyhpc::comm;
using pyhpc::CommError;

namespace {

// Rank counts exercised by the parameterized suites. The box is
// single-core, so these run oversubscribed; correctness must not depend on
// scheduling.
const std::vector<int> kRankCounts{1, 2, 3, 4, 5, 8};

}  // namespace

TEST(CommRunner, SingleRankRuns) {
  int visits = 0;
  pc::run(1, [&](pc::Communicator& comm) {
    EXPECT_EQ(comm.rank(), 0);
    EXPECT_EQ(comm.size(), 1);
    ++visits;
  });
  EXPECT_EQ(visits, 1);
}

TEST(CommRunner, AllRanksRun) {
  std::atomic<int> visits{0};
  pc::run(7, [&](pc::Communicator& comm) {
    EXPECT_GE(comm.rank(), 0);
    EXPECT_LT(comm.rank(), 7);
    ++visits;
  });
  EXPECT_EQ(visits.load(), 7);
}

TEST(CommRunner, ExceptionPropagatesAndUnblocksPeers) {
  EXPECT_THROW(
      pc::run(3,
              [](pc::Communicator& comm) {
                if (comm.rank() == 1) {
                  throw pyhpc::InvalidArgument("rank 1 fails");
                }
                // Other ranks block on a message that never comes; the
                // abort must wake them.
                std::vector<std::byte> buf;
                comm.recv_bytes(buf, pc::kAnySource, 42);
              }),
      pyhpc::Error);
}

TEST(CommRunner, ZeroRanksRejected) {
  EXPECT_THROW(pc::run(0, [](pc::Communicator&) {}), pyhpc::InvalidArgument);
}

TEST(CommP2P, SendRecvValueRoundTrip) {
  pc::run(2, [](pc::Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send_value(12345.5, 1, 7);
    } else {
      EXPECT_EQ(comm.recv_value<double>(0, 7), 12345.5);
    }
  });
}

TEST(CommP2P, TagMatchingSelectsCorrectMessage) {
  pc::run(2, [](pc::Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send_value<int>(10, 1, /*tag=*/100);
      comm.send_value<int>(20, 1, /*tag=*/200);
    } else {
      // Receive out of send order by tag.
      EXPECT_EQ(comm.recv_value<int>(0, 200), 20);
      EXPECT_EQ(comm.recv_value<int>(0, 100), 10);
    }
  });
}

TEST(CommP2P, NonOvertakingPerSourceAndTag) {
  pc::run(2, [](pc::Communicator& comm) {
    const int n = 64;
    if (comm.rank() == 0) {
      for (int i = 0; i < n; ++i) comm.send_value(i, 1, 5);
    } else {
      for (int i = 0; i < n; ++i) {
        EXPECT_EQ(comm.recv_value<int>(0, 5), i);
      }
    }
  });
}

TEST(CommP2P, AnySourceReceivesFromAll) {
  pc::run(4, [](pc::Communicator& comm) {
    if (comm.rank() == 0) {
      std::vector<int> got;
      for (int i = 0; i < 3; ++i) {
        got.push_back(comm.recv_value<int>(pc::kAnySource, 3));
      }
      std::sort(got.begin(), got.end());
      EXPECT_EQ(got, (std::vector<int>{1, 2, 3}));
    } else {
      comm.send_value(comm.rank(), 0, 3);
    }
  });
}

TEST(CommP2P, AnyTagMatchesFirstQueued) {
  pc::run(2, [](pc::Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send_value<int>(77, 1, 9);
    } else {
      pc::Status st{};
      std::vector<int> v = comm.recv_vector<int>(pc::kAnySource, pc::kAnyTag, &st);
      EXPECT_EQ(st.tag, 9);
      EXPECT_EQ(st.source, 0);
      ASSERT_EQ(v.size(), 1u);
      EXPECT_EQ(v[0], 77);
    }
  });
}

TEST(CommP2P, VectorPayloadRoundTrip) {
  pc::run(2, [](pc::Communicator& comm) {
    std::vector<std::uint64_t> data(1000);
    std::iota(data.begin(), data.end(), 17);
    if (comm.rank() == 0) {
      comm.send(std::span<const std::uint64_t>(data), 1, 0);
    } else {
      std::vector<std::uint64_t> buf(1000);
      pc::Status st = comm.recv(std::span<std::uint64_t>(buf), 0, 0);
      EXPECT_EQ(st.bytes, 8000u);
      EXPECT_EQ(buf, data);
    }
  });
}

TEST(CommP2P, TruncationIsAnError) {
  EXPECT_THROW(pc::run(2,
                       [](pc::Communicator& comm) {
                         if (comm.rank() == 0) {
                           std::vector<int> four(4, 1);
                           comm.send(std::span<const int>(four), 1, 0);
                         } else {
                           std::vector<int> two(2);
                           comm.recv(std::span<int>(two), 0, 0);
                         }
                       }),
               CommError);
}

TEST(CommP2P, SendToBadRankThrows) {
  EXPECT_THROW(pc::run(2,
                       [](pc::Communicator& comm) {
                         comm.send_value(1, comm.size() + 3, 0);
                       }),
               CommError);
}

TEST(CommP2P, TagOutsideUserRangeThrows) {
  EXPECT_THROW(pc::run(1,
                       [](pc::Communicator& comm) {
                         comm.send_value(1, 0, pc::kMaxUserTag + 5);
                       }),
               CommError);
}

TEST(CommP2P, StringRoundTrip) {
  pc::run(2, [](pc::Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send_string("hello distributed world", 1, 1);
    } else {
      EXPECT_EQ(comm.recv_string(0, 1), "hello distributed world");
    }
  });
}

TEST(CommP2P, ProbeReportsSizeWithoutConsuming) {
  pc::run(2, [](pc::Communicator& comm) {
    if (comm.rank() == 0) {
      std::vector<double> d(10, 3.5);
      comm.send(std::span<const double>(d), 1, 4);
    } else {
      pc::Status st = comm.probe(0, 4);
      EXPECT_EQ(st.bytes, 80u);
      EXPECT_EQ(st.source, 0);
      std::vector<double> buf(10);
      comm.recv(std::span<double>(buf), 0, 4);
      EXPECT_EQ(buf[7], 3.5);
    }
  });
}

TEST(CommP2P, IprobeEmptyReturnsNullopt) {
  pc::run(1, [](pc::Communicator& comm) {
    EXPECT_FALSE(comm.iprobe().has_value());
  });
}

TEST(CommP2P, PendingRecvCompletesLater) {
  pc::run(2, [](pc::Communicator& comm) {
    if (comm.rank() == 1) {
      pc::PendingRecv req = comm.irecv(0, 11);
      // Tell rank 0 we've posted, then wait.
      comm.send_value(1, 0, 12);
      pc::Envelope env = req.wait();
      auto vals = pc::PendingRecv::decode<int>(env);
      ASSERT_EQ(vals.size(), 3u);
      EXPECT_EQ(vals[2], 30);
    } else {
      (void)comm.recv_value<int>(1, 12);
      std::vector<int> payload{10, 20, 30};
      comm.send(std::span<const int>(payload), 1, 11);
    }
  });
}

TEST(CommP2P, PendingRecvReadyAfterArrival) {
  pc::run(2, [](pc::Communicator& comm) {
    if (comm.rank() == 1) {
      comm.barrier();  // message already sent by rank 0 before barrier? no —
      // barrier does not order p2p; use an explicit ack instead.
      (void)comm.recv_value<int>(0, 2);  // ack that the payload was sent
      pc::PendingRecv req = comm.irecv(0, 1);
      // Poll until ready; the payload was sent before the ack so it is
      // already queued (per-source FIFO), meaning ready() is true now.
      EXPECT_TRUE(req.ready());
      auto env = req.wait();
      EXPECT_EQ(pc::PendingRecv::decode<int>(env)[0], 5);
    } else {
      comm.barrier();
      comm.send_value(5, 1, 1);
      comm.send_value(0, 1, 2);
    }
  });
}

// Regression (ISSUE 3): a message captured by ready() used to be silently
// dropped when the handle was destroyed before wait() — the destructor
// must re-queue it so a later matching receive still observes it.
TEST(CommP2P, PendingRecvDestroyedAfterReadyRequeuesMessage) {
  pc::run(2, [](pc::Communicator& comm) {
    if (comm.rank() == 1) {
      (void)comm.recv_value<int>(0, 2);  // ack: payload is queued
      {
        pc::PendingRecv req = comm.irecv(0, 1);
        ASSERT_TRUE(req.ready());  // captures the message into the handle
        // Destroyed without wait(): the capture must go back to the
        // mailbox, not vanish.
      }
      EXPECT_EQ(comm.stats().pending_requeued, 1u);
      EXPECT_EQ(comm.recv_value<int>(0, 1), 41);
      // FIFO restored: the second message on the same tag follows.
      EXPECT_EQ(comm.recv_value<int>(0, 1), 42);
    } else {
      comm.send_value(41, 1, 1);
      comm.send_value(42, 1, 1);
      comm.send_value(0, 1, 2);
    }
  });
}

// Regression (ISSUE 3): receive stats are counted when ready() captures
// the message (and backed out on re-queue), never twice.
TEST(CommStats, PendingRecvCountsAtCaptureExactlyOnce) {
  pc::run(2, [](pc::Communicator& comm) {
    if (comm.rank() == 1) {
      (void)comm.recv_value<int>(0, 2);  // ack: payload is queued
      const auto before = comm.stats().p2p_messages_received;
      pc::PendingRecv req = comm.irecv(0, 1);
      ASSERT_TRUE(req.ready());
      EXPECT_EQ(comm.stats().p2p_messages_received, before + 1)
          << "stats must be counted at capture time";
      pc::Envelope env = req.wait();
      EXPECT_EQ(pc::PendingRecv::decode<int>(env)[0], 7);
      EXPECT_EQ(comm.stats().p2p_messages_received, before + 1)
          << "wait() after capture must not double-count";
      EXPECT_EQ(comm.stats().pending_requeued, 0u);
    } else {
      comm.send_value(7, 1, 1);
      comm.send_value(0, 1, 2);
    }
  });
}

TEST(CommStats, CountersTrackTraffic) {
  pc::CommStats total = pc::run_with_stats(2, [](pc::Communicator& comm) {
    if (comm.rank() == 0) {
      std::vector<double> d(100, 1.0);
      comm.send(std::span<const double>(d), 1, 0);
    } else {
      std::vector<double> buf(100);
      comm.recv(std::span<double>(buf), 0, 0);
    }
  });
  EXPECT_EQ(total.p2p_messages_sent, 1u);
  EXPECT_EQ(total.p2p_bytes_sent, 800u);
  EXPECT_EQ(total.p2p_messages_received, 1u);
  EXPECT_EQ(total.p2p_bytes_received, 800u);
}

// ---------------------------------------------------------------------------
// Collectives, parameterized over rank counts, validated against serial
// references on deterministic pseudo-random payloads.
// ---------------------------------------------------------------------------

class CollectivesTest : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(RankSweep, CollectivesTest,
                         ::testing::ValuesIn(kRankCounts));

TEST_P(CollectivesTest, BarrierCompletes) {
  const int p = GetParam();
  pc::run(p, [](pc::Communicator& comm) {
    for (int i = 0; i < 5; ++i) comm.barrier();
  });
}

TEST_P(CollectivesTest, BroadcastFromEveryRoot) {
  const int p = GetParam();
  pc::run(p, [p](pc::Communicator& comm) {
    for (int root = 0; root < p; ++root) {
      std::vector<int> data(37, comm.rank() == root ? root + 1000 : -1);
      comm.broadcast(std::span<int>(data), root);
      for (int v : data) EXPECT_EQ(v, root + 1000);
    }
  });
}

TEST_P(CollectivesTest, BroadcastStringVariableLength) {
  const int p = GetParam();
  pc::run(p, [](pc::Communicator& comm) {
    const std::string payload = "def hypot(x, y): return sqrt(x*x + y*y)";
    std::string got =
        comm.broadcast_string(comm.rank() == 0 ? payload : "", 0);
    EXPECT_EQ(got, payload);
  });
}

TEST_P(CollectivesTest, ReduceSumMatchesSerial) {
  const int p = GetParam();
  pc::run(p, [p](pc::Communicator& comm) {
    // Payload: rank-dependent deterministic values.
    std::vector<std::int64_t> mine(13);
    for (std::size_t i = 0; i < mine.size(); ++i) {
      mine[i] = (comm.rank() + 1) * static_cast<std::int64_t>(i + 1);
    }
    std::vector<std::int64_t> out(13);
    comm.reduce(std::span<const std::int64_t>(mine),
                std::span<std::int64_t>(out), std::plus<std::int64_t>{}, 0);
    if (comm.rank() == 0) {
      std::int64_t ranksum = 0;
      for (int r = 0; r < p; ++r) ranksum += r + 1;
      for (std::size_t i = 0; i < out.size(); ++i) {
        EXPECT_EQ(out[i], ranksum * static_cast<std::int64_t>(i + 1));
      }
    }
  });
}

TEST_P(CollectivesTest, ReduceToNonZeroRoot) {
  const int p = GetParam();
  pc::run(p, [p](pc::Communicator& comm) {
    const int root = p - 1;
    std::int64_t got = comm.reduce_value<std::int64_t>(
        comm.rank(), std::plus<std::int64_t>{}, root);
    if (comm.rank() == root) {
      EXPECT_EQ(got, static_cast<std::int64_t>(p) * (p - 1) / 2);
    }
  });
}

TEST_P(CollectivesTest, AllreduceMinMax) {
  const int p = GetParam();
  pc::run(p, [p](pc::Communicator& comm) {
    const double mn = comm.allreduce_value<double>(
        100.0 + comm.rank(), [](double a, double b) { return std::min(a, b); });
    EXPECT_EQ(mn, 100.0);
    const double mx = comm.allreduce_value<double>(
        100.0 + comm.rank(), [](double a, double b) { return std::max(a, b); });
    EXPECT_EQ(mx, 100.0 + (p - 1));
  });
}

TEST_P(CollectivesTest, ScanInclusiveAndExclusive) {
  const int p = GetParam();
  (void)p;
  pc::run(GetParam(), [](pc::Communicator& comm) {
    const int r = comm.rank();
    const std::int64_t inc =
        comm.scan_inclusive<std::int64_t>(r + 1, std::plus<std::int64_t>{});
    EXPECT_EQ(inc, static_cast<std::int64_t>(r + 1) * (r + 2) / 2);
    const std::int64_t exc = comm.scan_exclusive<std::int64_t>(
        r + 1, std::plus<std::int64_t>{}, 0);
    EXPECT_EQ(exc, static_cast<std::int64_t>(r) * (r + 1) / 2);
  });
}

TEST_P(CollectivesTest, GatherOrdersByRank) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    std::vector<int> mine{comm.rank() * 2, comm.rank() * 2 + 1};
    std::vector<int> all;
    comm.gather(std::span<const int>(mine), all, 0);
    if (comm.rank() == 0) {
      ASSERT_EQ(all.size(), static_cast<std::size_t>(2 * comm.size()));
      for (int i = 0; i < 2 * comm.size(); ++i) EXPECT_EQ(all[static_cast<std::size_t>(i)], i);
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

TEST_P(CollectivesTest, GathervVariableCounts) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    // Rank r contributes r+1 copies of r.
    std::vector<int> mine(static_cast<std::size_t>(comm.rank() + 1), comm.rank());
    auto chunks = comm.gatherv(std::span<const int>(mine), 0);
    if (comm.rank() == 0) {
      ASSERT_EQ(chunks.size(), static_cast<std::size_t>(comm.size()));
      for (int r = 0; r < comm.size(); ++r) {
        EXPECT_EQ(chunks[static_cast<std::size_t>(r)].size(),
                  static_cast<std::size_t>(r + 1));
        for (int v : chunks[static_cast<std::size_t>(r)]) EXPECT_EQ(v, r);
      }
    }
  });
}

TEST_P(CollectivesTest, AllgatherEveryRankSeesAll) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    auto all = comm.allgather_value(comm.rank() * 10);
    ASSERT_EQ(all.size(), static_cast<std::size_t>(comm.size()));
    for (int r = 0; r < comm.size(); ++r) {
      EXPECT_EQ(all[static_cast<std::size_t>(r)], r * 10);
    }
  });
}

TEST_P(CollectivesTest, AllgathervVariableCounts) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    std::vector<double> mine(static_cast<std::size_t>(comm.rank()), 0.5 * comm.rank());
    auto chunks = comm.allgatherv(std::span<const double>(mine));
    ASSERT_EQ(chunks.size(), static_cast<std::size_t>(comm.size()));
    for (int r = 0; r < comm.size(); ++r) {
      EXPECT_EQ(chunks[static_cast<std::size_t>(r)].size(),
                static_cast<std::size_t>(r));
      for (double v : chunks[static_cast<std::size_t>(r)]) {
        EXPECT_EQ(v, 0.5 * r);
      }
    }
  });
}

TEST_P(CollectivesTest, ScatterDistributesRootBuffer) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    const int p = comm.size();
    std::vector<int> all;
    if (comm.rank() == 0) {
      all.resize(static_cast<std::size_t>(3 * p));
      std::iota(all.begin(), all.end(), 0);
    }
    std::vector<int> mine(3);
    comm.scatter(std::span<const int>(all), std::span<int>(mine), 0);
    for (int i = 0; i < 3; ++i) EXPECT_EQ(mine[static_cast<std::size_t>(i)], 3 * comm.rank() + i);
  });
}

TEST_P(CollectivesTest, ScattervVariableParts) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    const int p = comm.size();
    std::vector<std::vector<int>> parts;
    if (comm.rank() == 0) {
      parts.resize(static_cast<std::size_t>(p));
      for (int r = 0; r < p; ++r) {
        parts[static_cast<std::size_t>(r)].assign(static_cast<std::size_t>(r + 2), r * 7);
      }
    }
    auto mine = comm.scatterv(parts, 0);
    EXPECT_EQ(mine.size(), static_cast<std::size_t>(comm.rank() + 2));
    for (int v : mine) EXPECT_EQ(v, comm.rank() * 7);
  });
}

TEST_P(CollectivesTest, AlltoallTransposesRankData) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    const int p = comm.size();
    // send[r] = 100*me + r ; after alltoall recv[r] = 100*r + me.
    std::vector<int> send(static_cast<std::size_t>(p));
    for (int r = 0; r < p; ++r) send[static_cast<std::size_t>(r)] = 100 * comm.rank() + r;
    std::vector<int> recv(static_cast<std::size_t>(p), -1);
    comm.alltoall(std::span<const int>(send), std::span<int>(recv));
    for (int r = 0; r < p; ++r) {
      EXPECT_EQ(recv[static_cast<std::size_t>(r)], 100 * r + comm.rank());
    }
  });
}

TEST_P(CollectivesTest, AlltoallvShufflesVariableParts) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    const int p = comm.size();
    // Rank s sends (s+d) copies of value s*1000+d to rank d.
    std::vector<std::vector<int>> send(static_cast<std::size_t>(p));
    for (int d = 0; d < p; ++d) {
      send[static_cast<std::size_t>(d)].assign(
          static_cast<std::size_t>(comm.rank() + d), comm.rank() * 1000 + d);
    }
    auto recv = comm.alltoallv(send);
    ASSERT_EQ(recv.size(), static_cast<std::size_t>(p));
    for (int s = 0; s < p; ++s) {
      const auto& part = recv[static_cast<std::size_t>(s)];
      EXPECT_EQ(part.size(), static_cast<std::size_t>(s + comm.rank()));
      for (int v : part) EXPECT_EQ(v, s * 1000 + comm.rank());
    }
  });
}

TEST_P(CollectivesTest, ConsecutiveCollectivesDoNotInterfere) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    for (int iter = 0; iter < 20; ++iter) {
      const int sum = comm.allreduce_value<int>(1, std::plus<int>{});
      EXPECT_EQ(sum, comm.size());
      const int bc = comm.broadcast_value(comm.rank() == 0 ? iter : -1, 0);
      EXPECT_EQ(bc, iter);
    }
  });
}

TEST_P(CollectivesTest, RandomPayloadAllreduceMatchesSerialReference) {
  const int p = GetParam();
  pc::run(p, [p](pc::Communicator& comm) {
    const std::size_t n = 257;
    auto mine = pyhpc::util::uniform_doubles(
        99, static_cast<std::uint64_t>(comm.rank()), n);
    std::vector<double> got(n);
    comm.allreduce(std::span<const double>(mine), std::span<double>(got),
                   std::plus<double>{});
    // Serial reference: sum the same deterministic streams. Summation order
    // differs between tree reduction and the serial loop, so allow
    // floating-point slack.
    std::vector<double> want(n, 0.0);
    for (int r = 0; r < p; ++r) {
      auto other = pyhpc::util::uniform_doubles(99, static_cast<std::uint64_t>(r), n);
      for (std::size_t i = 0; i < n; ++i) want[i] += other[i];
    }
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(got[i], want[i], 1e-12 * (1.0 + std::abs(want[i])));
    }
  });
}

// ---------------------------------------------------------------------------
// split()
// ---------------------------------------------------------------------------

TEST(CommSplit, EvenOddGroups) {
  pc::run(6, [](pc::Communicator& comm) {
    pc::Communicator sub = comm.split(comm.rank() % 2, comm.rank());
    EXPECT_EQ(sub.size(), 3);
    EXPECT_EQ(sub.rank(), comm.rank() / 2);
    // Collectives work inside the child independent of the parent.
    const int sum = sub.allreduce_value<int>(comm.rank(), std::plus<int>{});
    if (comm.rank() % 2 == 0) {
      EXPECT_EQ(sum, 0 + 2 + 4);
    } else {
      EXPECT_EQ(sum, 1 + 3 + 5);
    }
    // Parent still usable afterwards.
    EXPECT_EQ(comm.allreduce_value<int>(1, std::plus<int>{}), 6);
  });
}

TEST(CommSplit, KeyControlsChildRankOrder) {
  pc::run(4, [](pc::Communicator& comm) {
    // Reverse the ordering via descending keys.
    pc::Communicator sub = comm.split(0, comm.size() - comm.rank());
    EXPECT_EQ(sub.rank(), comm.size() - 1 - comm.rank());
  });
}

TEST(CommSplit, DuplicateKeepsRankAndSize) {
  pc::run(5, [](pc::Communicator& comm) {
    pc::Communicator dup = comm.duplicate();
    EXPECT_EQ(dup.rank(), comm.rank());
    EXPECT_EQ(dup.size(), comm.size());
    EXPECT_EQ(dup.allreduce_value<int>(2, std::plus<int>{}), 10);
  });
}

TEST(CommSplit, SingletonGroups) {
  pc::run(3, [](pc::Communicator& comm) {
    pc::Communicator solo = comm.split(comm.rank(), 0);
    EXPECT_EQ(solo.size(), 1);
    EXPECT_EQ(solo.rank(), 0);
    EXPECT_EQ(solo.allreduce_value<int>(5, std::plus<int>{}), 5);
  });
}
