// Tests for ODIN Shape/Slice and Distribution: every scheme's
// global<->local round-trip is validated property-style over rank counts,
// sizes, and schemes (TEST_P sweeps).
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "comm/runner.hpp"
#include "odin/distribution.hpp"

namespace pc = pyhpc::comm;
namespace od = pyhpc::odin;
using od::index_t;

TEST(Shape, CountStridesLinearize) {
  od::Shape s({3, 4, 5});
  EXPECT_EQ(s.ndim(), 3);
  EXPECT_EQ(s.count(), 60);
  EXPECT_EQ(s.strides(), (std::vector<index_t>{20, 5, 1}));
  EXPECT_EQ(s.linearize({1, 2, 3}), 33);
  EXPECT_EQ(s.delinearize(33), (std::vector<index_t>{1, 2, 3}));
  for (index_t l = 0; l < s.count(); ++l) {
    EXPECT_EQ(s.linearize(s.delinearize(l)), l);
  }
}

TEST(Shape, EmptyAndScalarish) {
  od::Shape e({0});
  EXPECT_EQ(e.count(), 0);
  od::Shape one({1});
  EXPECT_EQ(one.count(), 1);
  EXPECT_THROW(od::Shape({-1}), pyhpc::InvalidArgument);
  EXPECT_THROW(e.linearize({0}), pyhpc::InvalidArgument);
}

TEST(Slice, PythonSemanticsPositiveStep) {
  // [2:8:2] over n=10 -> 2,4,6.
  auto r = od::Slice::range(2, 8, 2).resolve(10);
  EXPECT_EQ(r.first, 2);
  EXPECT_EQ(r.count, 3);
  EXPECT_EQ(r.global_of(2), 6);
  // [:] -> everything.
  r = od::Slice::all().resolve(7);
  EXPECT_EQ(r.first, 0);
  EXPECT_EQ(r.count, 7);
  // [1:] and [:-1] (the finite-difference pair).
  r = od::Slice::from(1).resolve(5);
  EXPECT_EQ(r.first, 1);
  EXPECT_EQ(r.count, 4);
  r = od::Slice::to(-1).resolve(5);
  EXPECT_EQ(r.first, 0);
  EXPECT_EQ(r.count, 4);
}

TEST(Slice, PythonSemanticsNegativeIndicesAndStep) {
  // [-3:] over 10 -> 7,8,9.
  auto r = od::Slice::from(-3).resolve(10);
  EXPECT_EQ(r.first, 7);
  EXPECT_EQ(r.count, 3);
  // [::-1] -> reversed.
  r = od::Slice::range(od::Slice::kNone, od::Slice::kNone, -1).resolve(4);
  EXPECT_EQ(r.first, 3);
  EXPECT_EQ(r.count, 4);
  EXPECT_EQ(r.global_of(3), 0);
  // [5:0:-2] over 10 -> 5,3,1.
  r = od::Slice::range(5, 0, -2).resolve(10);
  EXPECT_EQ(r.first, 5);
  EXPECT_EQ(r.count, 3);
  // Out-of-range clamps like Python.
  r = od::Slice::range(-100, 100, 1).resolve(6);
  EXPECT_EQ(r.first, 0);
  EXPECT_EQ(r.count, 6);
  // Empty result.
  r = od::Slice::range(4, 2, 1).resolve(10);
  EXPECT_EQ(r.count, 0);
  EXPECT_THROW(od::Slice::range(0, 5, 0).resolve(5), pyhpc::InvalidArgument);
}

// ---------------------------------------------------------------------------
// Distribution property sweeps: (scheme, nranks, n) -> every global index is
// owned exactly once and round-trips through (owner, local) <-> global.
// ---------------------------------------------------------------------------

struct DistCase {
  std::string scheme;
  int ranks;
  index_t n;
};

class DistributionSweep : public ::testing::TestWithParam<DistCase> {};

INSTANTIATE_TEST_SUITE_P(
    Schemes, DistributionSweep,
    ::testing::Values(
        DistCase{"block", 1, 13}, DistCase{"block", 3, 13},
        DistCase{"block", 4, 16}, DistCase{"block", 5, 3},
        DistCase{"cyclic", 3, 13}, DistCase{"cyclic", 4, 4},
        DistCase{"cyclic", 2, 1}, DistCase{"blockcyclic2", 3, 17},
        DistCase{"blockcyclic3", 4, 25}, DistCase{"blockcyclic5", 2, 7},
        DistCase{"explicit", 3, 12}, DistCase{"explicit", 4, 10},
        DistCase{"replicated", 1, 9}),
    [](const ::testing::TestParamInfo<DistCase>& info) {
      return info.param.scheme + "_p" + std::to_string(info.param.ranks) +
             "_n" + std::to_string(info.param.n);
    });

namespace {
od::Distribution make_dist(const std::string& scheme, pc::Communicator& comm,
                           index_t n) {
  od::Shape shape({n});
  if (scheme == "block") return od::Distribution::block(comm, shape, 0);
  if (scheme == "cyclic") return od::Distribution::cyclic(comm, shape, 0);
  if (scheme == "blockcyclic2") {
    return od::Distribution::block_cyclic(comm, shape, 0, 2);
  }
  if (scheme == "blockcyclic3") {
    return od::Distribution::block_cyclic(comm, shape, 0, 3);
  }
  if (scheme == "blockcyclic5") {
    return od::Distribution::block_cyclic(comm, shape, 0, 5);
  }
  if (scheme == "explicit") {
    // Skewed sizes: rank 0 takes the remainder.
    std::vector<index_t> sizes(static_cast<std::size_t>(comm.size()),
                               n / comm.size());
    sizes[0] += n % comm.size();
    return od::Distribution::explicit_block(comm, shape, 0, sizes);
  }
  if (scheme == "replicated") return od::Distribution::replicated(comm, shape);
  throw pyhpc::InvalidArgument("unknown scheme " + scheme);
}
}  // namespace

TEST_P(DistributionSweep, EveryIndexOwnedOnceAndRoundTrips) {
  const auto param = GetParam();
  pc::run(param.ranks, [&](pc::Communicator& comm) {
    auto dist = make_dist(param.scheme, comm, param.n);
    // Ownership covers [0, n) exactly once.
    std::set<index_t> owned_by_me;
    for (index_t l = 0; l < dist.local_count(); ++l) {
      const auto g = dist.global_of_local(l);
      ASSERT_EQ(g.size(), 1u);
      owned_by_me.insert(g[0]);
      // Round trip: owner_of(global) == (me, l).
      const auto [owner, lidx] = dist.owner_of(g);
      EXPECT_EQ(owner, comm.rank());
      EXPECT_EQ(lidx, l);
    }
    EXPECT_EQ(owned_by_me.size(),
              static_cast<std::size_t>(dist.local_count()));
    const index_t total =
        comm.allreduce_value(dist.local_count(), std::plus<index_t>{});
    if (param.scheme == "replicated") {
      EXPECT_EQ(total, param.n * comm.size());
    } else {
      EXPECT_EQ(total, param.n);
    }
    // axis_count matches actual local counts on every rank.
    for (int r = 0; r < comm.size(); ++r) {
      EXPECT_EQ(dist.local_shape_for(r).count(),
                param.scheme == "replicated" ? param.n
                                             : dist.axis_count(0, r));
    }
  });
}

TEST(Distribution, CyclicOwnerFormula) {
  pc::run(4, [](pc::Communicator& comm) {
    auto d = od::Distribution::cyclic(comm, od::Shape({22}), 0);
    for (index_t g = 0; g < 22; ++g) {
      EXPECT_EQ(d.axis_owner(0, g), static_cast<int>(g % 4));
      EXPECT_EQ(d.axis_local(0, g), g / 4);
    }
  });
}

TEST(Distribution, BlockCyclicDealsBlocks) {
  pc::run(3, [](pc::Communicator& comm) {
    auto d = od::Distribution::block_cyclic(comm, od::Shape({14}), 0, 2);
    // blocks: [0,1]->r0 [2,3]->r1 [4,5]->r2 [6,7]->r0 [8,9]->r1 [10,11]->r2
    // [12,13]->r0
    const std::vector<int> owners{0, 0, 1, 1, 2, 2, 0, 0, 1, 1, 2, 2, 0, 0};
    for (index_t g = 0; g < 14; ++g) {
      EXPECT_EQ(d.axis_owner(0, g), owners[static_cast<std::size_t>(g)]) << g;
    }
    // Rank 0 holds 6 elements: 0,1,6,7,12,13 in that local order.
    if (comm.rank() == 0) {
      EXPECT_EQ(d.local_count(), 6);
      const std::vector<index_t> want{0, 1, 6, 7, 12, 13};
      for (index_t l = 0; l < 6; ++l) {
        EXPECT_EQ(d.global_of_local(l)[0], want[static_cast<std::size_t>(l)]);
      }
    }
  });
}

TEST(Distribution, BlockGrid2d) {
  pc::run(6, [](pc::Communicator& comm) {
    // 2x3 grid over a 8x9 matrix.
    auto d = od::Distribution::block_grid(comm, od::Shape({8, 9}), {0, 1},
                                          {2, 3});
    const auto lshape = d.local_shape();
    EXPECT_EQ(lshape.extent(0), 4);
    EXPECT_EQ(lshape.extent(1), 3);
    // Ownership is consistent and complete.
    const index_t total =
        comm.allreduce_value(d.local_count(), std::plus<index_t>{});
    EXPECT_EQ(total, 72);
    for (index_t l = 0; l < d.local_count(); ++l) {
      const auto g = d.global_of_local(l);
      const auto [owner, lidx] = d.owner_of(g);
      EXPECT_EQ(owner, comm.rank());
      EXPECT_EQ(lidx, l);
    }
  });
}

TEST(Distribution, RowOnlyDistributionKeepsColumnsWhole) {
  pc::run(3, [](pc::Communicator& comm) {
    auto d = od::Distribution::block(comm, od::Shape({9, 5}), 0);
    EXPECT_EQ(d.local_shape().extent(0), 3);
    EXPECT_EQ(d.local_shape().extent(1), 5);
    EXPECT_EQ(d.grid_dim_of_axis(0), 0);
    EXPECT_EQ(d.grid_dim_of_axis(1), -1);
  });
}

TEST(Distribution, ConformableDetectsLayoutDifferences) {
  pc::run(2, [](pc::Communicator& comm) {
    auto a = od::Distribution::block(comm, od::Shape({10}), 0);
    auto b = od::Distribution::block(comm, od::Shape({10}), 0);
    auto c = od::Distribution::cyclic(comm, od::Shape({10}), 0);
    auto e = od::Distribution::block(comm, od::Shape({11}), 0);
    EXPECT_TRUE(a.conformable(b));
    EXPECT_FALSE(a.conformable(c));
    EXPECT_FALSE(a.conformable(e));
  });
}

TEST(Distribution, ExplicitSizesValidated) {
  pc::run(2, [](pc::Communicator& comm) {
    EXPECT_THROW(od::Distribution::explicit_block(comm, od::Shape({10}), 0,
                                                  {4, 5}),  // sums to 9
                 pyhpc::InvalidArgument);
    EXPECT_THROW(
        od::Distribution::explicit_block(comm, od::Shape({10}), 0, {11, -1}),
        pyhpc::InvalidArgument);
    EXPECT_THROW(
        od::Distribution::explicit_block(comm, od::Shape({10}), 0, {10}),
        pyhpc::InvalidArgument);
  });
}

TEST(Distribution, GridMustCoverCommunicator) {
  pc::run(3, [](pc::Communicator& comm) {
    EXPECT_THROW(od::Distribution::block_grid(comm, od::Shape({6, 6}), {0, 1},
                                              {2, 2}),  // 4 != 3
                 pyhpc::InvalidArgument);
  });
}

TEST(Distribution, RedistributionTargetsCoverAllElements) {
  pc::run(3, [](pc::Communicator& comm) {
    auto from = od::Distribution::block(comm, od::Shape({20}), 0);
    auto to = od::Distribution::cyclic(comm, od::Shape({20}), 0);
    auto targets = od::redistribution_targets(from, to);
    EXPECT_EQ(targets.size(), static_cast<std::size_t>(from.local_count()));
    for (std::size_t l = 0; l < targets.size(); ++l) {
      const auto g = from.global_of_local(static_cast<index_t>(l));
      EXPECT_EQ(targets[l], to.axis_owner(0, g[0]));
    }
  });
}
