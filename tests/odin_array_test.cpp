// Tests for DistArray: creation routines, ufuncs (distributed == serial
// NumPy reference), reductions, conformance strategies with communication
// counting, redistribution, and global access.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "comm/runner.hpp"
#include "odin/dist_array.hpp"
#include "odin/ufunc.hpp"

namespace pc = pyhpc::comm;
namespace od = pyhpc::odin;
using od::index_t;
using Arr = od::DistArray<double>;

namespace {
const std::vector<int> kRankCounts{1, 2, 3, 4};
}

class ArraySweep : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Ranks, ArraySweep, ::testing::ValuesIn(kRankCounts));

TEST_P(ArraySweep, CreationRoutines) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    auto dist = od::Distribution::block(comm, od::Shape({17}), 0);
    auto z = Arr::zeros(dist);
    auto o = Arr::ones(dist);
    auto f = Arr::full(dist, 2.5);
    EXPECT_DOUBLE_EQ(z.sum(), 0.0);
    EXPECT_DOUBLE_EQ(o.sum(), 17.0);
    EXPECT_DOUBLE_EQ(f.sum(), 17.0 * 2.5);

    auto ar = Arr::arange(dist, 10.0, 2.0);  // 10, 12, ..., 42
    auto full = ar.gather();
    for (index_t g = 0; g < 17; ++g) {
      EXPECT_DOUBLE_EQ(full[static_cast<std::size_t>(g)],
                       10.0 + 2.0 * static_cast<double>(g));
    }

    auto ls = Arr::linspace(dist, 0.0, 1.0);
    auto lf = ls.gather();
    EXPECT_DOUBLE_EQ(lf.front(), 0.0);
    EXPECT_DOUBLE_EQ(lf.back(), 1.0);
    EXPECT_NEAR(lf[8], 0.5, 1e-12);
  });
}

// Kernel result arrays are allocated without the zero-fill pass
// (DistArray::uninitialized, DESIGN.md §11.4); the zero-semantics
// constructors must keep zeroing regardless — every element, not just a
// reduction over them.
TEST_P(ArraySweep, FreshAndZerosArraysAreElementwiseZero) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    auto dist = od::Distribution::block(comm, od::Shape({257}), 0);
    Arr fresh(dist);
    auto z = Arr::zeros(dist);
    for (const double v : fresh.local_view()) EXPECT_EQ(v, 0.0);
    for (const double v : z.local_view()) EXPECT_EQ(v, 0.0);
  });
}

TEST_P(ArraySweep, LinspaceMatchesPaperExample) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    // x = odin.linspace(1, 2*pi, n); y = odin.sin(x)  (paper §III.G).
    const index_t n = 1000;
    auto dist = od::Distribution::block(comm, od::Shape({n}), 0);
    auto x = Arr::linspace(dist, 1.0, 2.0 * M_PI);
    auto y = od::sin(x);
    EXPECT_TRUE(y.dist().conformable(x.dist()))
        << "y has the same distribution as x, as it is a simple application "
           "of sin to each element of x";
    auto xf = x.gather();
    auto yf = y.gather();
    for (index_t g = 0; g < n; g += 97) {
      EXPECT_NEAR(yf[static_cast<std::size_t>(g)],
                  std::sin(xf[static_cast<std::size_t>(g)]), 1e-14);
    }
  });
}

TEST_P(ArraySweep, FromFunctionUsesGlobalIndices) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    auto dist = od::Distribution::block(comm, od::Shape({6, 4}), 0);
    auto a = Arr::fromfunction(dist, [](const std::vector<index_t>& g) {
      return static_cast<double>(10 * g[0] + g[1]);
    });
    auto full = a.gather();
    for (index_t i = 0; i < 6; ++i) {
      for (index_t j = 0; j < 4; ++j) {
        EXPECT_DOUBLE_EQ(full[static_cast<std::size_t>(i * 4 + j)],
                         static_cast<double>(10 * i + j));
      }
    }
  });
}

TEST_P(ArraySweep, RandomIsDeterministicAndInRange) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    auto dist = od::Distribution::block(comm, od::Shape({64}), 0);
    auto a = Arr::random(dist, 7);
    auto b = Arr::random(dist, 7);
    auto c = Arr::random(dist, 8);
    auto av = a.local_view();
    auto bv = b.local_view();
    for (std::size_t i = 0; i < av.size(); ++i) {
      EXPECT_EQ(av[i], bv[i]);
      EXPECT_GE(av[i], 0.0);
      EXPECT_LT(av[i], 1.0);
    }
    EXPECT_NE(a.sum(), c.sum());
  });
}

TEST_P(ArraySweep, UnaryUfuncsMatchSerial) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    auto dist = od::Distribution::cyclic(comm, od::Shape({40}), 0);
    auto x = Arr::arange(dist, 0.1, 0.2);
    auto sq = od::square(x).gather();
    auto ex = od::exp(x).gather();
    auto ng = od::negate(x).gather();
    auto xf = x.gather();
    for (std::size_t i = 0; i < xf.size(); ++i) {
      EXPECT_NEAR(sq[i], xf[i] * xf[i], 1e-14);
      EXPECT_NEAR(ex[i], std::exp(xf[i]), 1e-12);
      EXPECT_DOUBLE_EQ(ng[i], -xf[i]);
    }
  });
}

TEST_P(ArraySweep, PaperHypotExample) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    // §III.C: hypot(x, y) = sqrt(x^2 + y^2) elementwise on two ND arrays.
    auto dist = od::Distribution::block(comm, od::Shape({8, 8}), 0);
    auto x = Arr::random(dist, 1);
    auto y = Arr::random(dist, 2);
    auto h = od::hypot(x, y);
    auto xf = x.gather();
    auto yf = y.gather();
    auto hf = h.gather();
    for (std::size_t i = 0; i < hf.size(); ++i) {
      EXPECT_NEAR(hf[i], std::hypot(xf[i], yf[i]), 1e-14);
    }
    // Equivalent formulation through arithmetic ops.
    auto h2 = od::sqrt(od::square(x) + od::square(y));
    auto h2f = h2.gather();
    for (std::size_t i = 0; i < hf.size(); ++i) {
      EXPECT_NEAR(h2f[i], hf[i], 1e-14);
    }
  });
}

TEST_P(ArraySweep, ConformableBinaryNeedsNoCommunication) {
  const int p = GetParam();
  auto stats = pc::run_with_stats(p, [](pc::Communicator& comm) {
    auto dist = od::Distribution::block(comm, od::Shape({1000}), 0);
    auto a = Arr::random(dist, 1);
    auto b = Arr::random(dist, 2);
    comm.stats().reset();
    auto c = a + b;
    (void)c;
    // Element data must not move: no point-to-point traffic, and the only
    // collective bytes would come from none being issued here.
    EXPECT_EQ(comm.stats().p2p_bytes_sent, 0u);
    EXPECT_EQ(comm.stats().coll_bytes_sent, 0u);
  });
  (void)stats;
}

TEST_P(ArraySweep, NonConformableBinaryRedistributes) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    const index_t n = 60;
    auto bdist = od::Distribution::block(comm, od::Shape({n}), 0);
    auto cdist = od::Distribution::cyclic(comm, od::Shape({n}), 0);
    auto a = Arr::arange(bdist, 0.0, 1.0);
    auto b = Arr::arange(cdist, 0.0, 2.0);
    auto c = a + b;  // kAuto
    auto cf = c.gather();
    for (index_t g = 0; g < n; ++g) {
      EXPECT_DOUBLE_EQ(cf[static_cast<std::size_t>(g)],
                       3.0 * static_cast<double>(g));
    }
    // Explicit strategies give the same numbers with controlled layouts.
    auto cl = a.zip(b, std::plus<double>{}, od::ConformStrategy::kLeft);
    auto cr = a.zip(b, std::plus<double>{}, od::ConformStrategy::kRight);
    EXPECT_TRUE(cl.dist().conformable(b.dist()));
    EXPECT_TRUE(cr.dist().conformable(a.dist()));
    EXPECT_EQ(cl.gather(), cf);
    EXPECT_EQ(cr.gather(), cf);
  });
}

TEST_P(ArraySweep, AutoStrategyPicksCheaperDirection) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    if (comm.size() == 1) return;
    const index_t n = 48;
    auto bdist = od::Distribution::block(comm, od::Shape({n}), 0);
    auto cdist = od::Distribution::cyclic(comm, od::Shape({n}), 0);
    Arr a = Arr::ones(bdist);
    Arr b = Arr::ones(cdist);
    // Costs are symmetric here, but the measured numbers must agree with
    // redistribution_cost's definition.
    const index_t cost_b_to_a = od::redistribution_cost(b, a.dist());
    const index_t cost_a_to_b = od::redistribution_cost(a, b.dist());
    EXPECT_GT(cost_b_to_a, 0);
    EXPECT_GT(cost_a_to_b, 0);
    // Same-layout redistribution is free.
    EXPECT_EQ(od::redistribution_cost(a, a.dist()), 0);
  });
}

TEST_P(ArraySweep, MismatchedShapesThrow) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    auto d1 = od::Distribution::block(comm, od::Shape({10}), 0);
    auto d2 = od::Distribution::block(comm, od::Shape({11}), 0);
    Arr a = Arr::ones(d1);
    Arr b = Arr::ones(d2);
    EXPECT_THROW((void)(a + b), pyhpc::ShapeError);
  });
}

TEST_P(ArraySweep, ReductionsMatchSerial) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    const index_t n = 35;
    auto dist = od::Distribution::block_cyclic(comm, od::Shape({n}), 0, 3);
    auto x = Arr::fromfunction(dist, [n](const std::vector<index_t>& g) {
      return std::cos(static_cast<double>(g[0]));  // mixed signs
    });
    double want_sum = 0.0, want_min = 1e300, want_max = -1e300, want_sq = 0.0;
    for (index_t g = 0; g < n; ++g) {
      const double v = std::cos(static_cast<double>(g));
      want_sum += v;
      want_min = std::min(want_min, v);
      want_max = std::max(want_max, v);
      want_sq += v * v;
    }
    EXPECT_NEAR(x.sum(), want_sum, 1e-12);
    EXPECT_DOUBLE_EQ(x.min(), want_min);
    EXPECT_DOUBLE_EQ(x.max(), want_max);
    EXPECT_NEAR(x.mean(), want_sum / static_cast<double>(n), 1e-13);
    EXPECT_NEAR(x.norm2(), std::sqrt(want_sq), 1e-12);
  });
}

TEST_P(ArraySweep, ArgminArgmaxReturnGlobalIndices) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    auto dist = od::Distribution::cyclic(comm, od::Shape({6, 5}), 0);
    auto x = Arr::fromfunction(dist, [](const std::vector<index_t>& g) {
      if (g[0] == 4 && g[1] == 2) return -50.0;
      if (g[0] == 1 && g[1] == 3) return 50.0;
      return static_cast<double>(g[0] + g[1]);
    });
    EXPECT_EQ(x.argmin(), (std::vector<index_t>{4, 2}));
    EXPECT_EQ(x.argmax(), (std::vector<index_t>{1, 3}));
  });
}

TEST_P(ArraySweep, GlobalGetSet) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    auto dist = od::Distribution::block(comm, od::Shape({12}), 0);
    Arr a = Arr::zeros(dist);
    a.set_global({7}, 3.25);
    EXPECT_DOUBLE_EQ(a.get_global({7}), 3.25);
    EXPECT_DOUBLE_EQ(a.get_global({0}), 0.0);
    EXPECT_DOUBLE_EQ(a.sum(), 3.25);
  });
}

TEST_P(ArraySweep, RedistributeRoundTripsAcrossSchemes) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    const index_t n = 29;
    auto block = od::Distribution::block(comm, od::Shape({n}), 0);
    auto x = Arr::arange(block, 0.0, 1.0);
    for (auto make : {+[](pc::Communicator& c, index_t m) {
                        return od::Distribution::cyclic(c, od::Shape({m}), 0);
                      },
                      +[](pc::Communicator& c, index_t m) {
                        return od::Distribution::block_cyclic(
                            c, od::Shape({m}), 0, 4);
                      }}) {
      auto there = od::redistribute(x, make(comm, n));
      auto back = od::redistribute(there, x.dist());
      auto bf = back.gather();
      for (index_t g = 0; g < n; ++g) {
        EXPECT_DOUBLE_EQ(bf[static_cast<std::size_t>(g)],
                         static_cast<double>(g));
      }
    }
  });
}

TEST_P(ArraySweep, RedistributeToReplicatedFillsEveryRank) {
  // Regression: redistribute shipped each element only to the canonical
  // owner, so a replicated target was filled on rank 0 and left zeroed on
  // every other rank (and the return trip then raced p divergent copies).
  pc::run(GetParam(), [](pc::Communicator& comm) {
    const index_t n = 10;
    auto block = od::Distribution::block(comm, od::Shape({n}), 0);
    auto x = Arr::arange(block, 1.0, 1.0);
    auto rep = od::redistribute(x, od::Distribution::replicated(comm, od::Shape({n})));
    ASSERT_EQ(rep.local_size(), n);  // every rank holds the full array
    for (index_t l = 0; l < n; ++l) {
      EXPECT_DOUBLE_EQ(rep.local_view()[static_cast<std::size_t>(l)],
                       static_cast<double>(l) + 1.0)
          << "rank " << comm.rank() << " local " << l;
    }
    // And back: one canonical copy moves, not p racing ones.
    auto back = od::redistribute(rep, block);
    for (index_t l = 0; l < back.local_size(); ++l) {
      const auto g = back.dist().global_of_local(l);
      EXPECT_DOUBLE_EQ(back.local_view()[static_cast<std::size_t>(l)],
                       static_cast<double>(g[0]) + 1.0);
    }
  });
}

TEST_P(ArraySweep, ScalarOperatorSugar) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    auto dist = od::Distribution::block(comm, od::Shape({10}), 0);
    auto x = Arr::arange(dist, 0.0, 1.0);
    auto y = 2.0 * x + 1.0;  // broadcast ops... via map chains
    auto yf = ((x * 2.0) + 1.0).gather();
    auto zf = y.gather();
    for (index_t g = 0; g < 10; ++g) {
      EXPECT_DOUBLE_EQ(zf[static_cast<std::size_t>(g)],
                       2.0 * static_cast<double>(g) + 1.0);
      EXPECT_DOUBLE_EQ(yf[static_cast<std::size_t>(g)],
                       zf[static_cast<std::size_t>(g)]);
    }
  });
}

TEST(UfuncRegistry, BuiltinsAndExtensions) {
  pc::run(2, [](pc::Communicator& comm) {
    auto& reg = od::UfuncRegistry::builtin();
    EXPECT_TRUE(reg.has_unary("sin"));
    EXPECT_TRUE(reg.has_binary("hypot"));
    EXPECT_FALSE(reg.has_unary("frobnicate"));
    EXPECT_THROW((void)reg.unary("frobnicate"), pyhpc::InvalidArgument);

    auto dist = od::Distribution::block(comm, od::Shape({12}), 0);
    auto x = Arr::full(dist, 4.0);
    auto r = reg.apply("sqrt", x);
    EXPECT_DOUBLE_EQ(r.sum(), 24.0);

    // "a framework for creating new functions that work with distributed
    // arrays": register a custom ufunc and call it by name.
    od::UfuncRegistry mine;
    mine.register_unary("plus_one", [](double v) { return v + 1.0; });
    auto y = mine.apply("plus_one", x);
    EXPECT_DOUBLE_EQ(y.sum(), 12.0 * 5.0);
  });
}

TEST_P(ArraySweep, WhereSelectsElementwise) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    auto dist = od::Distribution::block(comm, od::Shape({40}), 0);
    auto x = Arr::arange(dist, 0.0, 1.0);
    auto y = Arr::full(dist, 100.0);
    auto mask = od::greater(x, Arr::full(dist, 20.0));
    auto r = od::where(mask, x, y);
    auto rf = r.gather();
    for (od::index_t g = 0; g < 40; ++g) {
      const double want = g > 20 ? static_cast<double>(g) : 100.0;
      EXPECT_DOUBLE_EQ(rf[static_cast<std::size_t>(g)], want);
    }
    // Non-conformable inputs are rejected (no hidden communication).
    auto cdist = od::Distribution::cyclic(comm, od::Shape({40}), 0);
    auto z = Arr::ones(cdist);
    EXPECT_THROW((void)od::where(mask, x, z), pyhpc::ShapeError);
  });
}

TEST_P(ArraySweep, GridDistributedArraysFullPipeline) {
  const int p = GetParam();
  if (p != 4) return;  // needs a 2x2 grid
  pc::run(4, [](pc::Communicator& comm) {
    auto grid = od::Distribution::block_grid(comm, od::Shape({8, 8}), {0, 1},
                                             {2, 2});
    auto a = Arr::fromfunction(grid, [](const std::vector<od::index_t>& g) {
      return static_cast<double>(10 * g[0] + g[1]);
    });
    // Ufuncs stay local on the grid layout.
    comm.stats().reset();
    auto b = od::sqrt(od::square(a));
    EXPECT_EQ(comm.stats().p2p_bytes_sent, 0u);
    EXPECT_EQ(b.gather(), a.gather());
    // Reductions and redistribution to a row-block layout agree with the
    // serial picture.
    EXPECT_DOUBLE_EQ(a.sum(), [] {
      double s = 0.0;
      for (int i = 0; i < 8; ++i) {
        for (int j = 0; j < 8; ++j) s += 10 * i + j;
      }
      return s;
    }());
    auto rows = od::redistribute(
        a, od::Distribution::block(comm, od::Shape({8, 8}), 0));
    EXPECT_EQ(rows.gather(), a.gather());
  });
}
