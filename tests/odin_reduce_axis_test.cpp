// Tests for axis reductions: distributed results against serial NumPy-style
// references, swept over schemes, axes, and rank counts.
#include <gtest/gtest.h>

#include <cmath>

#include "comm/runner.hpp"
#include "odin/reduce_axis.hpp"

namespace pc = pyhpc::comm;
namespace od = pyhpc::odin;
using od::index_t;
using Arr = od::DistArray<double>;

namespace {

// Serial reference: reduce a row-major dense array along `axis`.
std::vector<double> ref_reduce(const std::vector<double>& data,
                               const od::Shape& shape, int axis,
                               double init, double (*op)(double, double)) {
  std::vector<index_t> out_dims;
  for (int d = 0; d < shape.ndim(); ++d) {
    if (d != axis) out_dims.push_back(shape.extent(d));
  }
  if (out_dims.empty()) out_dims.push_back(1);
  od::Shape out_shape(out_dims);
  std::vector<double> out(static_cast<std::size_t>(out_shape.count()), init);
  for (index_t l = 0; l < shape.count(); ++l) {
    const auto gidx = shape.delinearize(l);
    std::vector<index_t> oidx;
    for (int d = 0; d < shape.ndim(); ++d) {
      if (d != axis) oidx.push_back(gidx[static_cast<std::size_t>(d)]);
    }
    if (oidx.empty()) oidx.push_back(0);
    auto& slot = out[static_cast<std::size_t>(out_shape.linearize(oidx))];
    slot = op(slot, data[static_cast<std::size_t>(l)]);
  }
  return out;
}

double add(double a, double b) { return a + b; }
double mn(double a, double b) { return std::min(a, b); }
double mx(double a, double b) { return std::max(a, b); }

}  // namespace

struct AxisCase {
  int ranks;
  int axis;
  int scheme;  // 0 block axis0, 1 cyclic axis0, 2 block axis1
};

class ReduceAxisSweep : public ::testing::TestWithParam<AxisCase> {};
INSTANTIATE_TEST_SUITE_P(
    Cases, ReduceAxisSweep,
    ::testing::Values(AxisCase{1, 0, 0}, AxisCase{3, 0, 0}, AxisCase{3, 1, 0},
                      AxisCase{4, 0, 1}, AxisCase{4, 1, 1}, AxisCase{2, 0, 2},
                      AxisCase{2, 1, 2}),
    [](const ::testing::TestParamInfo<AxisCase>& info) {
      return "p" + std::to_string(info.param.ranks) + "_axis" +
             std::to_string(info.param.axis) + "_scheme" +
             std::to_string(info.param.scheme);
    });

TEST_P(ReduceAxisSweep, MatchesSerialReference) {
  const auto param = GetParam();
  pc::run(param.ranks, [&](pc::Communicator& comm) {
    od::Shape shape({9, 7});
    od::Distribution dist =
        param.scheme == 0   ? od::Distribution::block(comm, shape, 0)
        : param.scheme == 1 ? od::Distribution::cyclic(comm, shape, 0)
                            : od::Distribution::block(comm, shape, 1);
    auto a = Arr::fromfunction(dist, [](const std::vector<index_t>& g) {
      return std::sin(static_cast<double>(3 * g[0] + g[1]));
    });
    auto serial = a.gather();

    auto s = od::sum_axis(a, param.axis);
    auto want_s = ref_reduce(serial, shape, param.axis, 0.0, add);
    auto got_s = s.gather();
    ASSERT_EQ(got_s.size(), want_s.size());
    for (std::size_t i = 0; i < want_s.size(); ++i) {
      EXPECT_NEAR(got_s[i], want_s[i], 1e-12) << "sum cell " << i;
    }

    auto lo = od::min_axis(a, param.axis);
    auto want_lo = ref_reduce(serial, shape, param.axis, 1e300, mn);
    auto got_lo = lo.gather();
    for (std::size_t i = 0; i < want_lo.size(); ++i) {
      EXPECT_DOUBLE_EQ(got_lo[i], want_lo[i]) << "min cell " << i;
    }

    auto hi = od::max_axis(a, param.axis);
    auto want_hi = ref_reduce(serial, shape, param.axis, -1e300, mx);
    auto got_hi = hi.gather();
    for (std::size_t i = 0; i < want_hi.size(); ++i) {
      EXPECT_DOUBLE_EQ(got_hi[i], want_hi[i]) << "max cell " << i;
    }
  });
}

TEST(ReduceAxis, OneDimensionalFullReduction) {
  pc::run(3, [](pc::Communicator& comm) {
    auto dist = od::Distribution::block(comm, od::Shape({30}), 0);
    auto a = Arr::arange(dist, 1.0, 1.0);  // 1..30
    auto s = od::sum_axis(a, 0);
    EXPECT_EQ(s.shape(), od::Shape({1}));
    EXPECT_DOUBLE_EQ(s.gather()[0], 465.0);
  });
}

TEST(ReduceAxis, MeanAxis) {
  pc::run(2, [](pc::Communicator& comm) {
    auto dist = od::Distribution::block(comm, od::Shape({4, 6}), 0);
    auto a = Arr::fromfunction(dist, [](const std::vector<index_t>& g) {
      return static_cast<double>(g[0]);  // constant along axis 1
    });
    auto m = od::mean_axis(a, 1);
    auto got = m.gather();
    ASSERT_EQ(got.size(), 4u);
    for (index_t i = 0; i < 4; ++i) {
      EXPECT_DOUBLE_EQ(got[static_cast<std::size_t>(i)],
                       static_cast<double>(i));
    }
  });
}

TEST(ReduceAxis, ThreeDimensional) {
  pc::run(3, [](pc::Communicator& comm) {
    od::Shape shape({5, 4, 3});
    auto dist = od::Distribution::block(comm, shape, 0);
    auto a = Arr::fromfunction(dist, [](const std::vector<index_t>& g) {
      return static_cast<double>(100 * g[0] + 10 * g[1] + g[2]);
    });
    auto serial = a.gather();
    for (int axis = 0; axis < 3; ++axis) {
      auto got = od::sum_axis(a, axis).gather();
      auto want = ref_reduce(serial, shape, axis, 0.0, add);
      ASSERT_EQ(got.size(), want.size()) << "axis " << axis;
      for (std::size_t i = 0; i < want.size(); ++i) {
        EXPECT_DOUBLE_EQ(got[i], want[i]) << "axis " << axis << " cell " << i;
      }
    }
  });
}

TEST(ReduceAxis, BadAxisRejected) {
  pc::run(1, [](pc::Communicator& comm) {
    auto dist = od::Distribution::block(comm, od::Shape({4, 4}), 0);
    auto a = Arr::ones(dist);
    EXPECT_THROW((void)od::sum_axis(a, 2), pyhpc::ShapeError);
    EXPECT_THROW((void)od::sum_axis(a, -1), pyhpc::ShapeError);
  });
}

TEST(ReduceAxis, CommunicationIsOutputSized) {
  // Reducing the distributed axis of a tall matrix: each rank ships at
  // most #columns partials, never its whole block.
  auto stats = pc::run_with_stats(4, [](pc::Communicator& comm) {
    auto dist = od::Distribution::block(comm, od::Shape({4096, 8}), 0);
    auto a = Arr::ones(dist);
    comm.stats().reset();
    auto s = od::sum_axis(a, 0);
    (void)s.local_view();
  });
  // 4 ranks x 8 partials x 16 B (index + value) upper bound, plus nothing
  // proportional to the 32768 input elements.
  EXPECT_LT(stats.coll_bytes_sent, 4096u);
}
