// Tests for the preconditioner stack: exactness on diagonal systems,
// residual-reduction properties on Laplacians, ILU(0) exactness on
// triangular-friendly systems, AMG hierarchy structure and V-cycle
// contraction.
#include <gtest/gtest.h>

#include <cmath>

#include "comm/runner.hpp"
#include "galeri/gallery.hpp"
#include "precond/amg.hpp"
#include "precond/preconditioner.hpp"

namespace pc = pyhpc::comm;
namespace gl = pyhpc::galeri;
namespace pp = pyhpc::precond;

using LO = std::int32_t;
using GO = std::int64_t;

namespace {
const std::vector<int> kRankCounts{1, 2, 3, 4};

// ||r - A M^{-1} r|| / ||r||: how much one preconditioner application
// reduces a random residual when used as a stationary step.
double one_step_reduction(const gl::Matrix& a, const pp::Preconditioner& m,
                          std::uint64_t seed) {
  gl::Vector r(a.range_map());
  r.randomize(seed);
  gl::Vector z(a.domain_map()), az(a.range_map());
  m.apply(r, z);
  a.apply(z, az);
  az.update(1.0, r, -1.0);  // az := r - A z
  return az.norm2() / r.norm2();
}
}  // namespace

class PrecondSweep : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Ranks, PrecondSweep, ::testing::ValuesIn(kRankCounts));

TEST_P(PrecondSweep, IdentityCopies) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    auto map = gl::Map::uniform(comm, 10);
    gl::Vector r(map);
    r.randomize(1);
    gl::Vector z(map);
    pp::IdentityPreconditioner id;
    id.apply(r, z);
    for (LO i = 0; i < r.local_size(); ++i) EXPECT_DOUBLE_EQ(z[i], r[i]);
  });
}

TEST_P(PrecondSweep, JacobiExactOnDiagonalMatrix) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    auto map = gl::Map::uniform(comm, 14);
    gl::Matrix d(map);
    for (LO i = 0; i < map.num_local(); ++i) {
      const GO g = map.local_to_global(i);
      d.insert_global_value(g, g, static_cast<double>(g + 2));
    }
    d.fill_complete();
    pp::JacobiPreconditioner jac(d);
    EXPECT_NEAR(one_step_reduction(d, jac, 2), 0.0, 1e-14);
  });
}

TEST_P(PrecondSweep, JacobiSweepsReduceLaplacianResidual) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    auto map = gl::Map::uniform(comm, 40);
    auto a = gl::laplace1d(map);
    pp::JacobiPreconditioner one_sweep(a, 0.8, 1);
    pp::JacobiPreconditioner five_sweeps(a, 0.8, 5);
    const double r1 = one_step_reduction(a, one_sweep, 3);
    const double r5 = one_step_reduction(a, five_sweeps, 3);
    EXPECT_LT(r5, r1);  // more sweeps, better approximation of A^{-1}
    EXPECT_LT(r5, 1.0);
  });
}

TEST_P(PrecondSweep, GaussSeidelBeatsJacobiOnLaplacian) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    auto map = gl::Map::uniform(comm, 40);
    auto a = gl::laplace1d(map);
    pp::JacobiPreconditioner jac(a, 1.0, 1);
    pp::GaussSeidelPreconditioner gs(a, 1.0, 1);
    EXPECT_LT(one_step_reduction(a, gs, 4), one_step_reduction(a, jac, 4));
  });
}

TEST_P(PrecondSweep, SymmetricGsIsSymmetricOperator) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    // For SPD A, symmetric GS gives a symmetric M^{-1}: check
    // x . M^{-1} y == y . M^{-1} x on random vectors (single rank keeps
    // hybrid-GS equal to true GS; multirank stays near-symmetric but we
    // only assert the single-rank exact case).
    if (comm.size() > 1) return;
    auto map = gl::Map::uniform(comm, 25);
    auto a = gl::laplace1d(map);
    pp::GaussSeidelPreconditioner sgs(
        a, 1.0, 1, pp::GaussSeidelPreconditioner::Direction::kSymmetric);
    gl::Vector x(map), y(map), mx(map), my(map);
    x.randomize(5);
    y.randomize(6);
    sgs.apply(y, my);
    sgs.apply(x, mx);
    EXPECT_NEAR(x.dot(my), y.dot(mx), 1e-10);
  });
}

TEST_P(PrecondSweep, Ilu0ExactForTriangularPattern) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    // On one rank, ILU(0) of a dense-banded lower+upper pattern with no
    // fill (tridiagonal) is an exact LU, so M^{-1} r solves exactly.
    auto map = gl::Map::uniform(comm, 30);
    auto a = gl::tridiag(map, -1.0, 3.0, -1.5);
    pp::Ilu0Preconditioner ilu(a);
    const double red = one_step_reduction(a, ilu, 7);
    if (comm.size() == 1) {
      EXPECT_NEAR(red, 0.0, 1e-12);  // tridiagonal ILU(0) == exact LU
    } else {
      EXPECT_LT(red, 1.0);  // block-local ILU still reduces
    }
  });
}

TEST_P(PrecondSweep, ChebyshevReducesResidual) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    auto map = gl::Map::uniform(comm, 50);
    auto a = gl::laplace1d(map);
    pp::ChebyshevPreconditioner cheb(a, 4);
    EXPECT_GT(cheb.lambda_max(), 0.0);
    EXPECT_LT(one_step_reduction(a, cheb, 8), 1.0);
  });
}

TEST(Precond, ZeroDiagonalRejected) {
  pc::run(1, [](pc::Communicator& comm) {
    auto map = gl::Map::uniform(comm, 4);
    gl::Matrix a(map);
    a.insert_global_value(0, 1, 1.0);
    a.insert_global_value(1, 0, 1.0);
    a.insert_global_value(2, 2, 1.0);
    a.insert_global_value(3, 3, 1.0);
    a.fill_complete();
    EXPECT_THROW(pp::JacobiPreconditioner jac(a), pyhpc::Error);
    EXPECT_THROW(pp::Ilu0Preconditioner ilu(a), pyhpc::Error);
  });
}

TEST(Precond, FactoryCreatesAllKinds) {
  pc::run(1, [](pc::Communicator& comm) {
    auto map = gl::Map::uniform(comm, 12);
    auto a = gl::laplace1d(map);
    for (const auto* kind :
         {"identity", "jacobi", "gauss-seidel", "sor", "ilu0", "chebyshev"}) {
      auto m = pp::create_preconditioner(kind, a);
      ASSERT_NE(m, nullptr) << kind;
      gl::Vector r(map, 1.0), z(map);
      m->apply(r, z);
      EXPECT_GT(z.norm2(), 0.0) << kind;
    }
    EXPECT_THROW((void)pp::create_preconditioner("voodoo", a),
                 pyhpc::InvalidArgument);
  });
}

// ---------------------------------------------------------------------------
// AMG
// ---------------------------------------------------------------------------

class AmgSweep : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Ranks, AmgSweep, ::testing::ValuesIn(kRankCounts));

TEST_P(AmgSweep, HierarchyCoarsensMonotonically) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    auto map = gl::Map::uniform(comm, 400);
    auto a = gl::laplace1d(map);
    pp::AmgPreconditioner amg(a);
    const auto sizes = amg.level_sizes();
    ASSERT_GE(sizes.size(), 2u);
    EXPECT_EQ(sizes.front(), 400);
    for (std::size_t l = 1; l < sizes.size(); ++l) {
      EXPECT_LT(sizes[l], sizes[l - 1]);
    }
    EXPECT_LE(sizes.back(), 32 * 3);  // close to the coarse target
    EXPECT_GE(amg.operator_complexity(), 1.0);
    EXPECT_LT(amg.operator_complexity(), 3.0);
  });
}

TEST_P(AmgSweep, VcycleContractsLaplacianResidual) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    auto a = gl::laplace2d(comm, 16, 16);
    pp::AmgPreconditioner amg(a);
    const double red = one_step_reduction(a, amg, 11);
    EXPECT_LT(red, 0.7) << "one V-cycle should contract the residual well";
  });
}

TEST_P(AmgSweep, CoarseOnlyProblemSolvedExactly) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    // Global size below coarse_size: AMG is a single replicated LU level
    // and must be exact.
    auto map = gl::Map::uniform(comm, 20);
    auto a = gl::laplace1d(map);
    pp::AmgOptions opt;
    opt.coarse_size = 32;
    pp::AmgPreconditioner amg(a, opt);
    EXPECT_EQ(amg.num_levels(), 1);
    EXPECT_NEAR(one_step_reduction(a, amg, 13), 0.0, 1e-10);
  });
}

TEST_P(AmgSweep, RespectsMaxLevels) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    auto map = gl::Map::uniform(comm, 500);
    auto a = gl::laplace1d(map);
    pp::AmgOptions opt;
    opt.max_levels = 2;
    opt.coarse_size = 8;
    pp::AmgPreconditioner amg(a, opt);
    EXPECT_EQ(amg.num_levels(), 2);
    // Still usable: as a stationary iteration x_{k+1} = x_k + M(b - A x_k)
    // the truncated two-grid must converge (the single-cycle l2 residual on
    // a random RHS may transiently grow, so measure over several cycles).
    gl::Vector b(map);
    b.randomize(17);
    gl::Vector x(map, 0.0), r(map), z(map);
    const double b0 = b.norm2();
    for (int cycle = 0; cycle < 8; ++cycle) {
      a.apply(x, r);
      r.update(1.0, b, -1.0);
      amg.apply(r, z);
      x.update(1.0, z, 1.0);
    }
    a.apply(x, r);
    r.update(1.0, b, -1.0);
    EXPECT_LT(r.norm2() / b0, 0.05);
  });
}

// ---------------------------------------------------------------------------
// Structure-keyed setup-cache adapters (DESIGN.md §10)
// ---------------------------------------------------------------------------

#include "precond/cached.hpp"
#include "util/setup_cache.hpp"

TEST_P(PrecondSweep, CachedIlu0SharesOneFactorizationPerStructure) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    pyhpc::util::SetupCache cache(8, "test.precond.cache");
    auto map = gl::Map::uniform(comm, 24);
    auto a = gl::tridiag(map, -1.0, 3.0, -1.5);
    auto m1 = pp::cached_ilu0(cache, a);
    // Same sparsity, different values: structure key -> same artifact
    // (the documented reuse-preconditioner trade).
    auto b = gl::tridiag(map, -2.0, 5.0, -0.5);
    auto m2 = pp::cached_ilu0(cache, b);
    EXPECT_EQ(m1.get(), m2.get());
    const auto st = cache.stats();
    EXPECT_EQ(st.hits, 1u);
    EXPECT_EQ(st.misses, 1u);
    // The cached preconditioner still contracts a's residual. In serial,
    // tridiagonal ILU(0) is the exact LU of the matrix it was built from;
    // in parallel the dropped off-rank couplings leave a contraction.
    if (comm.size() == 1) {
      EXPECT_NEAR(one_step_reduction(a, *m1, 5), 0.0, 1e-12);
    } else {
      EXPECT_LT(one_step_reduction(a, *m1, 5), 1.0);
    }
  });
}

TEST_P(PrecondSweep, CachedIlu0DistinguishesDifferentSparsity) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    pyhpc::util::SetupCache cache(8, "test.precond.cache2");
    auto map = gl::Map::uniform(comm, 24);
    auto tri = gl::tridiag(map, -1.0, 3.0, -1.5);
    auto m1 = pp::cached_ilu0(cache, tri);
    // A different global size is a different structure outright.
    auto map2 = gl::Map::uniform(comm, 30);
    auto tri2 = gl::tridiag(map2, -1.0, 3.0, -1.5);
    auto m2 = pp::cached_ilu0(cache, tri2);
    EXPECT_NE(m1.get(), m2.get());
    EXPECT_EQ(cache.stats().misses, 2u);
  });
}

TEST_P(PrecondSweep, CachedAmgKeysIncludeOptions) {
  pc::run(GetParam(), [](pc::Communicator& comm) {
    pyhpc::util::SetupCache cache(8, "test.precond.cache3");
    auto map = gl::Map::uniform(comm, 48);
    auto a = gl::tridiag(map, -1.0, 2.0, -1.0);
    pp::AmgOptions o1;
    auto m1 = pp::cached_amg(cache, a, o1);
    auto m1again = pp::cached_amg(cache, a, o1);
    EXPECT_EQ(m1.get(), m1again.get());
    // Different setup options build a different hierarchy: distinct key.
    pp::AmgOptions o2;
    o2.coarse_size = 8;
    auto m2 = pp::cached_amg(cache, a, o2);
    EXPECT_NE(m1.get(), m2.get());
    // The cached hierarchy is still a working preconditioner: as a
    // stationary iteration it converges (a single cycle's l2 residual on
    // a random RHS may transiently grow, so measure over several cycles).
    gl::Vector b(map);
    b.randomize(11);
    gl::Vector x(map, 0.0), r(map), z(map);
    const double b0 = b.norm2();
    for (int cycle = 0; cycle < 8; ++cycle) {
      a.apply(x, r);
      r.update(1.0, b, -1.0);
      m1again->apply(r, z);
      x.update(1.0, z, 1.0);
    }
    a.apply(x, r);
    r.update(1.0, b, -1.0);
    EXPECT_LT(r.norm2() / b0, 0.05);
  });
}
