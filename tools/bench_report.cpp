// bench_report — consolidates per-benchmark JSON files (google-benchmark
// --benchmark_format=json output) and a live metrics snapshot into one
// machine-readable report (BENCH_PR2.json).
//
// Besides merging, it runs one small smoke workload per subsystem with
// tracing enabled so the emitted Chrome trace contains spans from every
// instrumented layer: comm collectives, an ODIN redistribute/zip, a Krylov
// solve, and a Seamless JIT compile. Load the trace in Perfetto or
// chrome://tracing.
//
// Usage:
//   bench_report [-o report.json] [--trace trace.json] [name=bench.json ...]
#include <cstdio>
#include <fstream>
#include <iostream>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "comm/runner.hpp"
#include "galeri/gallery.hpp"
#include "obs/bridge.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "odin/dist_array.hpp"
#include "odin/service.hpp"
#include "seamless/seamless.hpp"
#include "solvers/krylov.hpp"
#include "teuchos/timer.hpp"

namespace pc = pyhpc::comm;
namespace od = pyhpc::odin;
namespace gl = pyhpc::galeri;
namespace sv = pyhpc::solvers;
namespace obs = pyhpc::obs;

namespace {

// One representative workload per instrumented subsystem. Small on purpose:
// the goal is trace/metric coverage, not timing (the bench binaries do the
// timing).
void run_smoke_workloads() {
  {
    auto& t = pyhpc::teuchos::TimeMonitor::get("report.smoke");
    pyhpc::teuchos::ScopedTimer scoped(t);

    // comm collectives + ODIN redistribute via a non-conformable zip.
    pc::run(4, [](pc::Communicator& comm) {
      const od::index_t n = 4096;
      auto block = od::Distribution::block(comm, od::Shape({n}), 0);
      auto cyclic = od::Distribution::cyclic(comm, od::Shape({n}), 0);
      auto x = od::DistArray<double>::random(od::Distribution(block), 1);
      auto y = od::DistArray<double>::random(od::Distribution(cyclic), 2);
      auto z = x.zip(y, std::plus<double>{}, od::ConformStrategy::kAuto);
      (void)z.sum();
      comm.barrier();
    });

    // Task pool (pool.* counters + pool.parallel_for spans): a 4-wide
    // pool over an elementwise op and a deterministic reduction, large
    // enough to exceed the grain and actually schedule regions.
    {
      pc::CommConfig cfg;
      cfg.threads = 4;
      pc::run(2, cfg, [](pc::Communicator& comm) {
        const od::index_t n = 1 << 18;
        auto dist = od::Distribution::block(comm, od::Shape({n}), 0);
        auto x = od::DistArray<double>::random(dist, 3);
        auto y = x.map([](double v) { return v * 2.0 + 1.0; });
        (void)y.sum();
      });
    }

    // Krylov solve (per-iteration residual counters + solver span).
    pc::run(2, [](pc::Communicator& comm) {
      auto map = gl::Map::uniform(comm, 128);
      auto a = gl::laplace1d(map);
      auto b = gl::rhs_for_ones(a);
      gl::Vector x(map, 0.0);
      (void)sv::cg_solve(a, b, x);
    });

    // Driver service (service.* submission/batch/cache counters +
    // service.flush spans): two sessions over one control plane, a
    // repeated-structure block solve to exercise the setup cache.
    pc::run(3, [](pc::Communicator& comm) {
      od::ServiceContext svc(comm, od::ServiceOptions{});
      if (!svc.is_driver()) {
        svc.worker_loop();
        return;
      }
      for (int c = 0; c < 2; ++c) {
        od::Session s = svc.open_session();
        const int x = s.create_full(32, 1.0);
        const int u = s.block_solve(x);
        (void)s.reduce_sum(u);
        const int v = s.block_solve(x);  // same structure: cache hit
        (void)s.reduce_sum(v);
        s.close();
      }
      svc.shutdown();
    });

    // Seamless JIT (lex/parse/compile/exec spans).
    const std::vector<double> values{1.0, 2.0, 3.0, 4.0};
    (void)pyhpc::seamless::numpy::sum(
        std::span<const double>(values.data(), values.size()));
  }
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

void append_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

// A bench file is itself a JSON object, so its raw contents embed verbatim
// as the entry's value — no parser needed for a faithful merge.
bool looks_like_json_object(const std::string& s) {
  for (char c : s) {
    if (c == ' ' || c == '\n' || c == '\r' || c == '\t') continue;
    return c == '{';
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_PR2.json";
  std::string trace_path = "trace_pr2.json";
  std::vector<std::pair<std::string, std::string>> benches;  // name -> path

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-o" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (arg == "-h" || arg == "--help") {
      std::cout << "usage: bench_report [-o report.json] [--trace trace.json]"
                   " [name=bench.json ...]\n";
      return 0;
    } else {
      const auto eq = arg.find('=');
      if (eq == std::string::npos || eq == 0) {
        std::cerr << "bench_report: expected name=path, got '" << arg << "'\n";
        return 2;
      }
      benches.emplace_back(arg.substr(0, eq), arg.substr(eq + 1));
    }
  }

  obs::set_trace_enabled(true);
  run_smoke_workloads();
  obs::set_trace_enabled(false);
  if (!obs::write_trace(trace_path)) {
    std::cerr << "bench_report: failed to write trace to " << trace_path
              << "\n";
  }

  std::string json;
  json += "{\n\"report\": \"pyhpc bench report\",\n";
  json += "\"trace_file\": \"";
  append_escaped(json, trace_path);
  json += "\",\n\"benchmarks\": {";
  bool first = true;
  int skipped = 0;
  for (const auto& [name, path] : benches) {
    std::string contents;
    if (!read_file(path, contents) || !looks_like_json_object(contents)) {
      std::cerr << "bench_report: skipping " << name << " (" << path
                << " unreadable or not a JSON object)\n";
      ++skipped;
      continue;
    }
    if (!first) json += ",";
    first = false;
    json += "\n\"";
    append_escaped(json, name);
    json += "\": ";
    json += contents;
  }
  json += "\n},\n\"metrics\": ";
  json += obs::metrics_to_json(obs::unified_snapshot());
  json += "\n}\n";

  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::cerr << "bench_report: cannot open " << out_path << "\n";
    return 1;
  }
  out << json;
  out.close();
  std::cout << "wrote " << out_path << " (" << benches.size() - skipped << "/"
            << benches.size() << " bench files merged, trace in " << trace_path
            << ")\n";
  return skipped == 0 ? 0 : 1;
}
