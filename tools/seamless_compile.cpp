// The `seamless` command-line utility (paper §IV.B): "One would use the
// seamless command line utility to generate the extension module."
//
// Usage:
//   seamless_compile <source.py> <function> <sig> [out.so]
//
// <sig> is a comma-separated parameter type list using i (int), f (float),
// b (bool), a (float64 array). With no output path the generated C++ is
// printed to stdout; with one, a shared library is built.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "seamless/transpile.hpp"
#include "util/string_util.hpp"

namespace sm = pyhpc::seamless;

int main(int argc, char** argv) {
  if (argc < 4) {
    std::fprintf(stderr,
                 "usage: %s <source.py> <function> <sig: e.g. a,f,i> "
                 "[out.so]\n",
                 argv[0]);
    return 2;
  }
  try {
    std::ifstream in(argv[1]);
    if (!in.good()) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    auto module = sm::parse(ss.str());

    std::vector<sm::JitType> types;
    for (const auto& tok : pyhpc::util::split(argv[3], ',')) {
      const std::string t = pyhpc::util::strip(tok);
      if (t == "i") types.push_back(sm::JitType::kInt);
      else if (t == "f") types.push_back(sm::JitType::kFloat);
      else if (t == "b") types.push_back(sm::JitType::kBool);
      else if (t == "a") types.push_back(sm::JitType::kArray);
      else {
        std::fprintf(stderr, "unknown type '%s' (use i/f/b/a)\n", t.c_str());
        return 1;
      }
    }

    const std::string cpp = sm::emit_cpp(module, argv[2], types, argv[2]);
    if (argc >= 5) {
      sm::compile_to_library(cpp, argv[4]);
      std::printf("wrote %s (extern \"C\" symbol: %s)\n", argv[4], argv[2]);
    } else {
      std::cout << cpp;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "seamless: %s\n", e.what());
    return 1;
  }
  return 0;
}
