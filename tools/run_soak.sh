#!/usr/bin/env bash
# Chaos soak front end: builds (if needed) and runs tools/chaos_soak over
# many seeded fault schedules.
#
#   tools/run_soak.sh --quick          # 20 seeds, the CTest `soak` gate
#   tools/run_soak.sh --seeds 200      # a longer overnight soak
#   tools/run_soak.sh --only-seed 1042 # replay one failing seed
#
# Every failing seed prints a one-line replay recipe; exit code is non-zero
# iff any seed failed.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"

ARGS=()
while [[ $# -gt 0 ]]; do
  case "$1" in
    --quick)
      ARGS+=(--seeds 20)
      shift
      ;;
    --seeds|--base-seed|--only-seed)
      ARGS+=("$1" "$2")
      shift 2
      ;;
    --verbose)
      ARGS+=(--verbose)
      shift
      ;;
    *)
      echo "usage: $0 [--quick] [--seeds N] [--base-seed B] [--only-seed S] [--verbose]" >&2
      exit 2
      ;;
  esac
done

if [[ ! -x "$BUILD_DIR/tools/chaos_soak" ]]; then
  cmake -B "$BUILD_DIR" -S . >/dev/null
  cmake --build "$BUILD_DIR" --target chaos_soak -j >/dev/null
fi

exec "$BUILD_DIR/tools/chaos_soak" "${ARGS[@]}"
