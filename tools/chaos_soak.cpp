// Chaos soak driver: many seeded fault schedules against the recovery
// stack. Each seed deterministically derives a scenario mix — collective
// storms under delay/duplicate noise, resilient CG runs with a drop,
// delay, or kill rule armed mid-solve, and zero-copy transport pipelines
// (moved sends, rendezvous handoffs, split-phase SpMV overlap) under the
// same noise — and asserts exact values (storms, pipelines) or the
// solution oracle (solves). Any seed that fails prints a one-line replay
// recipe.
//
//   chaos_soak [--seeds N] [--base-seed B] [--only-seed S] [--verbose]
//
// Exit code 0 iff every seed passed. Registered as the `soak` CTest label
// by tools/CMakeLists.txt; tools/run_soak.sh is the command-line front end.
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "comm/config.hpp"
#include "comm/fault.hpp"
#include "comm/runner.hpp"
#include "odin/service.hpp"
#include "obs/metrics.hpp"
#include "scenarios/scenarios.hpp"
#include "solvers/resilient.hpp"
#include "tpetra/crs_matrix.hpp"
#include "tpetra/map.hpp"
#include "tpetra/vector.hpp"
#include "util/checkpoint.hpp"
#include "util/error.hpp"
#include "util/random.hpp"

namespace pc = pyhpc::comm;
namespace pt = pyhpc::tpetra;
namespace ps = pyhpc::solvers;
namespace pu = pyhpc::util;

using namespace std::chrono_literals;

namespace {

struct Failure {
  std::uint64_t seed = 0;
  std::string scenario;
  std::string what;
};

pt::CrsMatrix<double> laplacian(const pt::Map<>& map) {
  pt::CrsMatrix<double> a(map);
  const std::int64_t n = map.num_global();
  for (const auto g : map.my_global_indices()) {
    a.insert_global_value(g, g, 2.0);
    if (g > 0) a.insert_global_value(g, g - 1, -1.0);
    if (g + 1 < n) a.insert_global_value(g, g + 1, -1.0);
  }
  a.fill_complete();
  return a;
}

double truth(std::int64_t i) { return std::sin(0.1 * static_cast<double>(i)); }

void check(bool ok, const std::string& what) {
  pyhpc::require(ok, what);
}

// Scenario A: collective storm — allreduces/broadcasts with exact value
// assertions while delay and duplicate rules perturb timing and dedup.
void collective_storm(std::uint64_t seed) {
  pu::SplitMix64 rng(seed);
  auto inj = std::make_shared<pc::FaultInjector>(seed);
  const int nranks = 3 + static_cast<int>(rng.next() % 4);  // 3..6
  {
    pc::FaultRule delay;
    delay.kind = pc::FaultKind::kDelay;
    delay.source = static_cast<int>(rng.next() % nranks);
    delay.delay = std::chrono::milliseconds(1 + rng.next() % 8);
    delay.probability = 0.10;
    inj->add_rule(delay);
    pc::FaultRule dup;
    dup.kind = pc::FaultKind::kDuplicate;
    dup.source = static_cast<int>(rng.next() % nranks);
    dup.probability = 0.15;
    inj->add_rule(dup);
  }
  const int rounds = 20 + static_cast<int>(rng.next() % 20);
  pc::CommConfig cfg;
  cfg.injector = inj;
  cfg.recv_timeout = 5000ms;
  pc::run(nranks, cfg, [&](pc::Communicator& comm) {
    for (int i = 0; i < rounds; ++i) {
      const int sum = comm.allreduce_value<int>(
          comm.rank() + i, [](int a, int b) { return a + b; });
      const int p = comm.size();
      check(sum == p * (p - 1) / 2 + p * i, "storm: allreduce value drifted");
      const int root = i % p;
      const int got = comm.broadcast_value<int>(
          comm.rank() == root ? 1000 + i : -1, root);
      check(got == 1000 + i, "storm: broadcast value drifted");
    }
  });
}

// Scenario B: resilient CG with one fault rule — drop, delay, or kill —
// armed after assembly. The solve must complete with the right answer no
// matter which schedule fired.
void resilient_cg(std::uint64_t seed) {
  pu::SplitMix64 rng(seed);
  auto inj = std::make_shared<pc::FaultInjector>(seed);
  const int nranks = 4 + static_cast<int>(rng.next() % 5);  // 4..8
  const std::int64_t n = 48 + static_cast<std::int64_t>(rng.next() % 4) * 16;
  const int kind_pick = static_cast<int>(rng.next() % 3);
  const int victim = 1 + static_cast<int>(rng.next() % (nranks - 1));
  const int skip = 30 + static_cast<int>(rng.next() % 60);

  auto store = std::make_shared<pu::CheckpointStore>();
  pc::CommConfig cfg;
  cfg.injector = inj;
  cfg.recv_timeout = 2000ms;
  pc::run(nranks, cfg, [&](pc::Communicator& comm) {
    auto map = pt::Map<>::uniform(comm, n);
    auto a = laplacian(map);
    pt::Vector<double> xt(map), b(map), x0(map);
    for (std::int32_t i = 0; i < map.num_local(); ++i) {
      xt[i] = truth(map.local_to_global(i));
    }
    a.apply(xt, b);

    // Arm the fault only once assembly is done, so the solve is the target.
    comm.barrier();
    if (comm.rank() == 0) {
      pc::FaultRule rule;
      rule.source = victim;
      rule.skip_first = skip;
      rule.max_applications = 1;
      switch (kind_pick) {
        case 0:
          rule.kind = pc::FaultKind::kDrop;
          break;
        case 1:
          rule.kind = pc::FaultKind::kDelay;
          rule.delay = 80ms;
          break;
        default:
          rule.kind = pc::FaultKind::kKillRank;
          rule.victim = victim;
          break;
      }
      inj->add_rule(rule);
    }
    comm.barrier();

    ps::ResilientOptions opts;
    opts.krylov.tolerance = 1e-12;
    opts.krylov.max_iterations = 800;
    opts.checkpoint_interval = 1 + static_cast<int>(seed % 4);
    auto res = ps::resilient_solve(*store, a, b, x0, opts);
    check(res.solve.converged, "soak CG did not converge");
    for (std::int64_t i = 0; i < n; ++i) {
      check(std::abs(res.x_global[static_cast<std::size_t>(i)] - truth(i)) <
                1e-6,
            "soak CG solution off at index " + std::to_string(i));
    }
    if (kind_pick == 2) {
      check(res.final_size == nranks - res.recoveries,
            "soak CG: survivor count inconsistent with recoveries");
    }
  });
}

// Scenario C: zero-copy pipeline — moved-vector ring shifts, rendezvous
// isends (the eager threshold is dropped to 64 bytes so every ring payload
// takes the handoff path), and the split-phase SpMV halo overlap, all under
// delay/duplicate noise with exact value assertions.
void zero_copy_pipeline(std::uint64_t seed) {
  pu::SplitMix64 rng(seed);
  auto inj = std::make_shared<pc::FaultInjector>(seed);
  const int nranks = 2 + static_cast<int>(rng.next() % 4);  // 2..5
  {
    pc::FaultRule delay;
    delay.kind = pc::FaultKind::kDelay;
    delay.source = static_cast<int>(rng.next() % nranks);
    delay.delay = std::chrono::milliseconds(1 + rng.next() % 8);
    delay.probability = 0.10;
    inj->add_rule(delay);
    pc::FaultRule dup;
    dup.kind = pc::FaultKind::kDuplicate;
    dup.source = static_cast<int>(rng.next() % nranks);
    dup.probability = 0.15;
    inj->add_rule(dup);
  }
  const int rounds = 10 + static_cast<int>(rng.next() % 10);
  pc::CommConfig cfg;
  cfg.injector = inj;
  cfg.recv_timeout = 5000ms;
  cfg.eager_threshold = 64;
  pc::run(nranks, cfg, [&](pc::Communicator& comm) {
    const int p = comm.size();
    const int next = (comm.rank() + 1) % p;
    const int prev = (comm.rank() + p - 1) % p;
    for (int i = 0; i < rounds; ++i) {
      // Fresh tags per round: a duplicated envelope must never be matched
      // by the next round's receive.
      const int ring_tag = 100 + 2 * i;
      const int rv_tag = 101 + 2 * i;
      std::vector<int> ring(32, comm.rank() * 1000 + i);
      comm.send(std::move(ring), next, ring_tag);
      auto got = comm.recv_vector<int>(prev, ring_tag);
      check(got.size() == 32 && got.front() == prev * 1000 + i &&
                got.back() == prev * 1000 + i,
            "zero-copy ring payload drifted");
      std::vector<double> big(64, 0.5 * i);
      auto fut = comm.isend(std::span<const double>(big), next, rv_tag);
      auto rv = comm.recv_vector<double>(prev, rv_tag);
      // A duplicated rendezvous envelope keeps a live reference to the
      // sender's buffer until it is drained, so the sender's wait() below
      // never ends unless we consume the second copy too. The injector
      // pushes duplicate and original as two separate mailbox pushes, so
      // probe only after the barrier guarantees every isend has returned
      // (both pushes done) — probing earlier races with the second push.
      comm.barrier();
      while (comm.iprobe(prev, rv_tag)) {
        (void)comm.recv_vector<double>(prev, rv_tag);
      }
      fut.wait();
      check(rv.size() == 64 && rv[13] == 0.5 * i,
            "rendezvous payload drifted");
    }
    // Split-phase SpMV: the 1D Laplacian applied to ones is zero on the
    // interior and one at the two global ends.
    auto map = pt::Map<>::uniform(comm, 64);
    auto a = laplacian(map);
    pt::Vector<double> x(map, 1.0), y(map);
    a.apply(x, y);
    const std::int64_t n = map.num_global();
    for (std::int32_t i = 0; i < map.num_local(); ++i) {
      const auto g = map.local_to_global(i);
      const double want = (g == 0 || g + 1 == n) ? 1.0 : 0.0;
      check(std::abs(y[i] - want) < 1e-12, "overlap SpMV value drifted");
    }
  });
}

// Scenario E: scenario sweep — the full heat-equation application
// (src/scenarios) under the same seeded drop/delay/kill matrix the
// resilient-CG soak uses. The end-to-end composition — assembly, time
// stepping, resilient solves, checkpoint/restore — must either finish all
// steps exactly or stop early at a recovery, and in both cases match the
// serial Thomas reference for the steps that completed.
void scenario_sweep(std::uint64_t seed) {
  namespace sn = pyhpc::scenarios;
  pu::SplitMix64 rng(seed);
  auto inj = std::make_shared<pc::FaultInjector>(seed);
  const int nranks = 4 + static_cast<int>(rng.next() % 5);  // 4..8
  const int kind_pick = static_cast<int>(rng.next() % 3);
  const int victim = 1 + static_cast<int>(rng.next() % (nranks - 1));
  const int skip = 30 + static_cast<int>(rng.next() % 60);

  sn::HeatOptions o;
  o.n = 48 + static_cast<std::int64_t>(rng.next() % 4) * 16;
  o.steps = 2 + static_cast<int>(rng.next() % 3);
  o.scheme = sn::HeatScheme::kBackwardEuler;
  o.resilient = true;
  o.store = std::make_shared<pu::CheckpointStore>();
  o.injector = inj;
  sn::HeatFault fault;
  fault.kind = kind_pick == 0   ? pc::FaultKind::kDrop
               : kind_pick == 1 ? pc::FaultKind::kDelay
                                : pc::FaultKind::kKillRank;
  fault.victim = victim;
  fault.skip = skip;
  fault.delay = 80ms;
  o.fault = fault;

  pc::CommConfig cfg;
  cfg.injector = inj;
  cfg.recv_timeout = 2000ms;
  pc::run(nranks, cfg, [&](pc::Communicator& comm) {
    const auto res = sn::run_heat(comm, o);
    check(res.solver_iterations > 0, "soak heat: no solver iterations ran");
    check(res.converged, "soak heat: a completed step's solve diverged");
    check(res.steps_completed >= 1, "soak heat: no step completed");
    if (res.recoveries == 0) {
      check(res.steps_completed == o.steps,
            "soak heat: ended early without a recovery");
    }
    if (fault.kind == pc::FaultKind::kKillRank) {
      check(res.final_size == nranks - res.recoveries,
            "soak heat: survivor count inconsistent with recoveries");
    }
    sn::HeatOptions truncated = o;
    truncated.steps = res.steps_completed;
    const auto ref = sn::heat_serial_reference(truncated);
    check(res.u.size() == ref.size(), "soak heat: field size mismatch");
    for (std::size_t i = 0; i < ref.size(); ++i) {
      check(std::abs(res.u[i] - ref[i]) < 1e-6,
            "soak heat: field off at grid point " + std::to_string(i));
    }
  });
}

// Scenario D: service storm — a multiplexed driver service (DESIGN.md
// §10) with 2–4 concurrent client sessions running exact arithmetic
// pipelines while drop/duplicate/delay rules perturb the control tag.
// Session isolation and the epoch/sequence protocol must keep every
// session's reduce exact despite retransmissions and stale duplicates.
void service_storm(std::uint64_t seed) {
  namespace po = pyhpc::odin;
  pu::SplitMix64 rng(seed);
  auto inj = std::make_shared<pc::FaultInjector>(seed);
  const int nranks = 3 + static_cast<int>(rng.next() % 3);  // 3..5
  {
    pc::FaultRule drop;
    drop.kind = pc::FaultKind::kDrop;
    drop.tag = po::kControlTag;
    drop.probability = 0.08;
    inj->add_rule(drop);
    pc::FaultRule dup;
    dup.kind = pc::FaultKind::kDuplicate;
    dup.tag = po::kControlTag;
    dup.probability = 0.12;
    inj->add_rule(dup);
    pc::FaultRule delay;
    delay.kind = pc::FaultKind::kDelay;
    delay.tag = po::kControlTag;
    delay.delay = std::chrono::milliseconds(1 + rng.next() % 6);
    delay.probability = 0.10;
    inj->add_rule(delay);
  }
  const int nsessions = 2 + static_cast<int>(rng.next() % 3);  // 2..4
  const int iters = 3 + static_cast<int>(rng.next() % 4);      // 3..6
  const std::int64_t n = 24 + static_cast<std::int64_t>(rng.next() % 5) *
                                  static_cast<std::int64_t>(nranks - 1);
  pc::CommConfig cfg;
  cfg.injector = inj;
  cfg.recv_timeout = 5000ms;
  pc::run(nranks, cfg, [&](pc::Communicator& comm) {
    po::ServiceOptions opts;
    opts.driver.ack_timeout = 60ms;
    opts.driver.max_retries = 12;
    opts.driver.reply_timeout = 2000ms;
    opts.overload = po::OverloadPolicy::kPark;
    opts.batch_messages = 1 + static_cast<std::size_t>(seed % 8);
    po::ServiceContext svc(comm, opts);
    if (!svc.is_driver()) {
      svc.worker_loop();
      return;
    }
    std::vector<std::thread> clients;
    std::atomic<int> bad{0};
    for (int c = 0; c < nsessions; ++c) {
      clients.emplace_back([&svc, &bad, c, iters, n] {
        try {
          po::Session s = svc.open_session();
          const double v = static_cast<double>(c + 1);
          const int base = s.create_full(n, v);
          int acc = s.create_full(n, v);
          for (int i = 0; i < iters; ++i) acc = s.axpy(1.0, base, acc);
          const double got = s.reduce_sum(acc);
          const double want = static_cast<double>(n) * v *
                              static_cast<double>(iters + 1);
          check(std::abs(got - want) < 1e-9 * want,
                "service session pipeline drifted");
          s.close();
        } catch (...) {
          bad.fetch_add(1);
        }
      });
    }
    for (auto& t : clients) t.join();
    svc.shutdown();
    check(bad.load() == 0, "service storm: a session failed under noise");
  });
}

}  // namespace

int main(int argc, char** argv) {
  int seeds = 20;
  std::uint64_t base_seed = 1000;
  std::int64_t only_seed = -1;
  bool verbose = false;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--seeds") && i + 1 < argc) {
      seeds = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--base-seed") && i + 1 < argc) {
      base_seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (!std::strcmp(argv[i], "--only-seed") && i + 1 < argc) {
      only_seed = std::atoll(argv[++i]);
    } else if (!std::strcmp(argv[i], "--verbose")) {
      verbose = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--seeds N] [--base-seed B] [--only-seed S] "
                   "[--verbose]\n",
                   argv[0]);
      return 2;
    }
  }

  struct Scenario {
    const char* name;
    void (*fn)(std::uint64_t);
  };
  const Scenario scenarios[] = {{"collective_storm", collective_storm},
                                {"resilient_cg", resilient_cg},
                                {"zero_copy_pipeline", zero_copy_pipeline},
                                {"service_storm", service_storm},
                                {"scenario_sweep", scenario_sweep}};

  std::vector<Failure> failures;
  int ran = 0;
  for (int k = 0; k < seeds; ++k) {
    const std::uint64_t seed =
        only_seed >= 0 ? static_cast<std::uint64_t>(only_seed)
                       : base_seed + static_cast<std::uint64_t>(k);
    for (const auto& sc : scenarios) {
      ++ran;
      try {
        sc.fn(seed);
        if (verbose) {
          std::printf("PASS seed=%llu scenario=%s\n",
                      static_cast<unsigned long long>(seed), sc.name);
        }
      } catch (const std::exception& e) {
        failures.push_back({seed, sc.name, e.what()});
        std::printf("FAIL seed=%llu scenario=%s: %s\n",
                    static_cast<unsigned long long>(seed), sc.name, e.what());
        std::printf("  replay: chaos_soak --only-seed %llu --seeds 1\n",
                    static_cast<unsigned long long>(seed));
      }
    }
    if (only_seed >= 0) break;
  }

  std::printf("chaos_soak: %d runs, %zu failures\n", ran, failures.size());
  return failures.empty() ? 0 : 1;
}
