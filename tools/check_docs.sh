#!/usr/bin/env bash
# Markdown hygiene gate (CTest `docs_hygiene`, label `docs`).
#
# Checks two invariants the docs satellite of each PR must keep:
#   1. Every intra-repo markdown link in the top-level docs resolves to an
#      existing file or directory (external http(s)/mailto links and pure
#      #anchors are skipped; a #section suffix on a file link is stripped).
#   2. Every source subsystem directory src/<dir> has an entry in
#      ARCHITECTURE.md (the subsystem map stays complete as directories
#      are added).
#   3. Every scenario registered in src/scenarios/registry.cpp has an
#      EXPERIMENTS.md entry (a scenario cannot land undocumented).
#   4. Every execution-space backend (enum Space in src/util/exec_space.hpp)
#      is documented in DESIGN.md §11 — adding a backend without writing
#      down its contract fails the gate.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
DOCS=(README.md DESIGN.md ARCHITECTURE.md EXPERIMENTS.md ROADMAP.md)
fail=0

for doc in "${DOCS[@]}"; do
  path="$ROOT/$doc"
  if [ ! -f "$path" ]; then
    echo "MISSING DOC: $doc"
    fail=1
    continue
  fi
  # Extract markdown link targets: [text](target), one per line. Fenced
  # code blocks are dropped first — C++ lambdas like `[](T& x)` would
  # otherwise parse as links.
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*|'#'*) continue ;;
      *' '*) continue ;;            # inline code, not a path
    esac
    target="${target%%#*}"          # strip section anchor
    [ -z "$target" ] && continue
    if [ ! -e "$ROOT/$target" ]; then
      echo "BROKEN LINK: $doc -> $target"
      fail=1
    fi
  done < <(awk '/^```/ { fence = !fence; next } !fence' "$path" \
             | grep -oE '\]\([^)]+\)' | sed -E 's/^\]\(//; s/\)$//')
done

ARCH="$ROOT/ARCHITECTURE.md"
if [ -f "$ARCH" ]; then
  for dir in "$ROOT"/src/*/; do
    name="$(basename "$dir")"
    if ! grep -q "src/$name" "$ARCH"; then
      echo "UNDOCUMENTED SUBSYSTEM: src/$name has no ARCHITECTURE.md entry"
      fail=1
    fi
  done
fi

REG="$ROOT/src/scenarios/registry.cpp"
EXPS="$ROOT/EXPERIMENTS.md"
if [ -f "$REG" ] && [ -f "$EXPS" ]; then
  # Scenario names are the first string of each registry row: {"name", ...
  while IFS= read -r scenario; do
    if ! grep -q "$scenario" "$EXPS"; then
      echo "UNDOCUMENTED SCENARIO: $scenario has no EXPERIMENTS.md entry"
      fail=1
    fi
  done < <(grep -oE '^\s*\{"[a-z0-9_]+"' "$REG" \
             | grep -oE '"[a-z0-9_]+"' | tr -d '"')
fi

EXEC="$ROOT/src/util/exec_space.hpp"
DESIGN="$ROOT/DESIGN.md"
if [ -f "$EXEC" ] && [ -f "$DESIGN" ]; then
  # Backend enumerators are the kCamelCase names inside `enum class Space`.
  section="$(awk '/^## 11/ { in_sec = 1 } in_sec && /^## 12/ { exit } in_sec' \
               "$DESIGN")"
  if [ -z "$section" ]; then
    echo "MISSING SECTION: DESIGN.md has no §11 (execution spaces)"
    fail=1
  fi
  while IFS= read -r backend; do
    if ! printf '%s' "$section" | grep -q "$backend"; then
      echo "UNDOCUMENTED BACKEND: $backend has no DESIGN.md §11 entry"
      fail=1
    fi
  done < <(awk '/^enum class Space/ { in_enum = 1; next }
                in_enum && /^\}/ { exit } in_enum' "$EXEC" \
             | grep -oE 'k[A-Za-z0-9]+')
fi

if [ "$fail" -ne 0 ]; then
  echo "docs hygiene: FAILED"
  exit 1
fi
echo "docs hygiene: OK"
