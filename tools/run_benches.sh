#!/usr/bin/env bash
# Builds the benchmark suite in Release, runs every bench_* binary with
# --benchmark_format=json, and merges the results plus a live metrics
# snapshot into BENCH_PR10.json at the repo root (trace in trace_pr10.json).
# EXPERIMENTS.md §"Bench pipeline" documents the report schema and how to
# diff reports across PRs.
#
# Extra google-benchmark flags can be passed through BENCH_FLAGS, e.g.
#   BENCH_FLAGS=--benchmark_min_time=0.05 tools/run_benches.sh
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD="${BUILD_DIR:-$ROOT/build-bench}"
OUT="${OUT_FILE:-$ROOT/BENCH_PR10.json}"
TRACE="${TRACE_FILE:-$ROOT/trace_pr10.json}"

cmake -B "$BUILD" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD" -j "$(nproc)"

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

merge_args=()
for bin in "$BUILD"/bench/bench_*; do
  [ -x "$bin" ] || continue
  name="$(basename "$bin")"
  echo "== $name"
  "$bin" --benchmark_format=json ${BENCH_FLAGS:-} > "$TMP/$name.json"
  merge_args+=("$name=$TMP/$name.json")
done

"$BUILD/tools/bench_report" -o "$OUT" --trace "$TRACE" "${merge_args[@]}"
echo "report: $OUT"
