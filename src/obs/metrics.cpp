#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace pyhpc::obs {

const char* metric_kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kMaxGauge: return "max_gauge";
  }
  return "unknown";
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* reg = new MetricsRegistry();  // leaked: atexit-safe
  return *reg;
}

void MetricsRegistry::add(const std::string& name, double delta) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = metrics_.try_emplace(name, Cell{MetricKind::kCounter, 0.0});
  it->second.value += delta;
}

void MetricsRegistry::set(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  metrics_[name] = Cell{MetricKind::kGauge, value};
}

void MetricsRegistry::set_max(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = metrics_.try_emplace(name, Cell{MetricKind::kMaxGauge, value});
  if (!inserted) it->second.value = std::max(it->second.value, value);
}

double MetricsRegistry::value(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = metrics_.find(name);
  return it == metrics_.end() ? 0.0 : it->second.value;
}

bool MetricsRegistry::has(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return metrics_.count(name) != 0;
}

std::vector<Metric> MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Metric> out;
  out.reserve(metrics_.size());
  for (const auto& [name, cell] : metrics_) {
    out.push_back(Metric{name, cell.kind, cell.value});
  }
  return out;  // std::map iteration order is already name-sorted
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  metrics_.clear();
}

namespace {

void append_json_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out += c;
    }
  }
}

void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  // Integral values (the common case: counters) print without a fraction.
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::abs(v) < 9.0e15) {
    out += std::to_string(static_cast<long long>(v));
    return;
  }
  std::ostringstream os;
  os.precision(17);
  os << v;
  out += os.str();
}

}  // namespace

std::string metrics_to_json(const std::vector<Metric>& metrics) {
  std::string out = "[";
  bool first = true;
  for (const auto& m : metrics) {
    if (!first) out += ",\n ";
    first = false;
    out += "{\"name\":\"";
    append_json_escaped(out, m.name);
    out += "\",\"kind\":\"";
    out += metric_kind_name(m.kind);
    out += "\",\"value\":";
    append_number(out, m.value);
    out += '}';
  }
  out += ']';
  return out;
}

}  // namespace pyhpc::obs
