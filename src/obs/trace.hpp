// Per-rank trace recorder: RAII spans exported as Chrome trace_event JSON.
//
// The paper positions ODIN's prototype as "instrumentation to help identify
// performance bottlenecks associated with different communication patterns"
// (§III); CommStats counts *what* moved, this layer shows *where time goes*
// per rank. Ranks are threads in this repo, so every thread owns its own
// event buffer (registered once under a lock, then written lock-free by its
// owner) and events carry the rank index as the trace `tid`. The resulting
// file loads directly in Perfetto / chrome://tracing.
//
// Cost model: recording is opt-in at runtime (`set_trace_enabled` or the
// PYHPC_TRACE=out.json environment variable). When disabled, every
// instrumentation point costs one relaxed atomic load and a branch — no
// allocation, no clock read. Configuring with -DPYHPC_TRACE=OFF compiles
// the recorder out entirely (every entry point below becomes an inline
// no-op), proving call sites carry no hidden dependency on it.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace pyhpc::obs {

#ifndef PYHPC_OBS_NO_TRACE

namespace detail {

extern std::atomic<bool> g_trace_on;
class TraceBuffer;
TraceBuffer* thread_buffer();
std::int64_t now_us();

/// One span/instant/counter argument. Keys and string values must be
/// literals (or otherwise outlive the export) — nothing is copied, so
/// recording never allocates.
struct TraceArg {
  const char* key = nullptr;
  enum class Kind : std::uint8_t { kInt, kFloat, kString } kind = Kind::kInt;
  std::int64_t i = 0;
  double f = 0.0;
  const char* s = nullptr;
};

inline constexpr int kMaxTraceArgs = 6;

void record_event(TraceBuffer* buf, char phase, const char* name,
                  const char* category, std::int64_t start_us,
                  std::int64_t dur_us, const TraceArg* args, int nargs);

}  // namespace detail

/// True when spans are being recorded. The one branch every disabled
/// instrumentation point pays.
inline bool trace_enabled() {
  return detail::g_trace_on.load(std::memory_order_relaxed);
}

void set_trace_enabled(bool on);

/// Tags this thread's subsequent events with a rank index (the trace
/// `tid`). The SPMD runner calls it as each rank thread starts; untagged
/// threads record as rank 0.
void set_thread_rank(int rank);
int thread_rank();

/// Zero-duration marker event ("ph":"i").
void instant(const char* name, const char* category);

/// Counter-track sample ("ph":"C") — one numeric series per name; Perfetto
/// renders it as a graph (used for solver residuals and queue depths).
void counter(const char* name, const char* category, double value);

/// RAII span: records a complete event ("ph":"X") covering its lifetime.
/// Construct with string literals; `arg()` attaches key/value pairs shown
/// in the trace viewer's detail pane (at most kMaxTraceArgs; extras are
/// dropped). Args are stored inline — no allocation on the hot path.
class Span {
 public:
  Span(const char* name, const char* category) {
    if (!trace_enabled()) return;  // single branch when disabled
    buf_ = detail::thread_buffer();
    name_ = name;
    category_ = category;
    start_us_ = detail::now_us();
  }
  ~Span() { finish(); }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  Span(Span&& other) noexcept
      : buf_(other.buf_),
        name_(other.name_),
        category_(other.category_),
        start_us_(other.start_us_),
        nargs_(other.nargs_) {
    for (int i = 0; i < nargs_; ++i) args_[i] = other.args_[i];
    other.buf_ = nullptr;  // moved-from span no longer records
  }
  Span& operator=(Span&&) = delete;

  bool active() const { return buf_ != nullptr; }

  void arg(const char* key, std::int64_t value);
  void arg(const char* key, double value);
  void arg(const char* key, const char* value);

  /// Records the event now (idempotent; the destructor is then a no-op).
  void finish();

 private:
  detail::TraceBuffer* buf_ = nullptr;
  const char* name_ = nullptr;
  const char* category_ = nullptr;
  std::int64_t start_us_ = 0;
  detail::TraceArg args_[detail::kMaxTraceArgs];
  int nargs_ = 0;
};

/// Zero-duration marker ("ph":"i") that carries key/value args, for
/// discrete occurrences worth annotating (e.g. each fired fault-injection
/// rule). Same storage rules as Span::arg: literals only, no allocation.
class Instant {
 public:
  Instant(const char* name, const char* category) {
    if (!trace_enabled()) return;
    buf_ = detail::thread_buffer();
    name_ = name;
    category_ = category;
  }
  ~Instant() { finish(); }
  Instant(const Instant&) = delete;
  Instant& operator=(const Instant&) = delete;

  bool active() const { return buf_ != nullptr; }

  void arg(const char* key, std::int64_t value) {
    if (buf_ == nullptr || nargs_ >= detail::kMaxTraceArgs) return;
    args_[nargs_].key = key;
    args_[nargs_].kind = detail::TraceArg::Kind::kInt;
    args_[nargs_].i = value;
    ++nargs_;
  }
  void arg(const char* key, const char* value) {
    if (buf_ == nullptr || nargs_ >= detail::kMaxTraceArgs) return;
    args_[nargs_].key = key;
    args_[nargs_].kind = detail::TraceArg::Kind::kString;
    args_[nargs_].s = value;
    ++nargs_;
  }

  void finish() {
    if (buf_ == nullptr) return;
    detail::record_event(buf_, 'i', name_, category_, detail::now_us(), 0,
                         args_, nargs_);
    buf_ = nullptr;
  }

 private:
  detail::TraceBuffer* buf_ = nullptr;
  const char* name_ = nullptr;
  const char* category_ = nullptr;
  detail::TraceArg args_[detail::kMaxTraceArgs];
  int nargs_ = 0;
};

/// Serializes every thread's buffer as one Chrome trace_event JSON
/// document. Call from a quiescent point (after comm::run returns / threads
/// joined); concurrent recording during export is not synchronized.
std::string trace_json();

/// Writes trace_json() to `path`; returns false on I/O failure.
bool write_trace(const std::string& path);

/// Drops all recorded events (buffers stay registered).
void clear_trace();

/// Total events recorded across all threads.
std::size_t trace_event_count();

#else  // PYHPC_OBS_NO_TRACE: the whole recorder compiles out.

inline bool trace_enabled() { return false; }
inline void set_trace_enabled(bool) {}
inline void set_thread_rank(int) {}
inline int thread_rank() { return 0; }
inline void instant(const char*, const char*) {}
inline void counter(const char*, const char*, double) {}

class Span {
 public:
  Span(const char*, const char*) {}
  bool active() const { return false; }
  void arg(const char*, std::int64_t) {}
  void arg(const char*, double) {}
  void arg(const char*, const char*) {}
  void finish() {}
};

class Instant {
 public:
  Instant(const char*, const char*) {}
  bool active() const { return false; }
  void arg(const char*, std::int64_t) {}
  void arg(const char*, const char*) {}
  void finish() {}
};

inline std::string trace_json() { return "{\"traceEvents\":[]}"; }
inline bool write_trace(const std::string&) { return true; }
inline void clear_trace() {}
inline std::size_t trace_event_count() { return 0; }

#endif  // PYHPC_OBS_NO_TRACE

}  // namespace pyhpc::obs
