// Importers that fold the pre-existing instrumentation stores into the
// unified MetricsRegistry.
//
// Header-only on purpose: the obs core library sits at the bottom of the
// stack (it links nothing but Threads), so it cannot (and should not) link
// against comm or teuchos. Each layer that owns a stat store includes this
// header and folds its own numbers in — unused inline functions emit no
// symbols, so including it never forces a link dependency the caller
// doesn't already have. (util::TaskPool folds its own pool.* metrics
// directly — util links obs, so it needs no importer here.)
#pragma once

#include <string>

#include "comm/fault.hpp"
#include "comm/stats.hpp"
#include "obs/metrics.hpp"
#include "teuchos/timer.hpp"

namespace pyhpc::obs {

/// Folds one CommStats into `reg` under `<prefix>.*`. Message/byte counts
/// accumulate (call once per rank, or once with the aggregate); the mailbox
/// high-water mark folds with max.
inline void import_comm_stats(MetricsRegistry& reg,
                              const comm::CommStats& s,
                              const std::string& prefix = "comm") {
  reg.add(prefix + ".p2p_messages_sent", static_cast<double>(s.p2p_messages_sent));
  reg.add(prefix + ".p2p_bytes_sent", static_cast<double>(s.p2p_bytes_sent));
  reg.add(prefix + ".p2p_messages_received",
          static_cast<double>(s.p2p_messages_received));
  reg.add(prefix + ".p2p_bytes_received",
          static_cast<double>(s.p2p_bytes_received));
  reg.add(prefix + ".coll_messages_sent",
          static_cast<double>(s.coll_messages_sent));
  reg.add(prefix + ".coll_bytes_sent", static_cast<double>(s.coll_bytes_sent));
  reg.add(prefix + ".coll_messages_received",
          static_cast<double>(s.coll_messages_received));
  reg.add(prefix + ".coll_bytes_received",
          static_cast<double>(s.coll_bytes_received));
  reg.add(prefix + ".collectives", static_cast<double>(s.collectives));
  reg.add(prefix + ".retries", static_cast<double>(s.retries));
  reg.add(prefix + ".timeouts", static_cast<double>(s.timeouts));
  reg.add(prefix + ".drops_detected", static_cast<double>(s.drops_detected));
  reg.add(prefix + ".corruption_detected",
          static_cast<double>(s.corruption_detected));
  reg.set_max(prefix + ".mailbox_highwater_bytes",
              static_cast<double>(s.mailbox_highwater_bytes));
  reg.add(prefix + ".pending_requeued",
          static_cast<double>(s.pending_requeued));
  reg.add(prefix + ".bytes_copied", static_cast<double>(s.bytes_copied));
  reg.add(prefix + ".zero_copy_messages",
          static_cast<double>(s.zero_copy_messages));
  reg.add(prefix + ".zero_copy_bytes",
          static_cast<double>(s.zero_copy_bytes));
  reg.add(prefix + ".rendezvous", static_cast<double>(s.rendezvous));
  reg.add(prefix + ".arena_hits", static_cast<double>(s.arena_hits));
  reg.add(prefix + ".arena_misses", static_cast<double>(s.arena_misses));
  reg.add(prefix + ".algo_linear", static_cast<double>(s.algo_linear));
  reg.add(prefix + ".algo_recursive_doubling",
          static_cast<double>(s.algo_recursive_doubling));
  reg.add(prefix + ".algo_rabenseifner",
          static_cast<double>(s.algo_rabenseifner));
  reg.add(prefix + ".algo_ring", static_cast<double>(s.algo_ring));
  reg.add(prefix + ".algo_bruck", static_cast<double>(s.algo_bruck));
  reg.add(prefix + ".algo_binomial", static_cast<double>(s.algo_binomial));
  reg.add(prefix + ".algo_pairwise", static_cast<double>(s.algo_pairwise));
}

/// Folds injected-fault totals into `reg` under `<prefix>.*` (counters).
inline void import_fault_counts(MetricsRegistry& reg,
                                const comm::FaultCounts& c,
                                const std::string& prefix = "faults") {
  reg.add(prefix + ".drops", static_cast<double>(c.drops));
  reg.add(prefix + ".delays", static_cast<double>(c.delays));
  reg.add(prefix + ".duplicates", static_cast<double>(c.duplicates));
  reg.add(prefix + ".corruptions", static_cast<double>(c.corruptions));
  reg.add(prefix + ".kills", static_cast<double>(c.kills));
}

/// The full unified snapshot: everything already folded into the global
/// registry, plus the current teuchos::TimeMonitor table appended as
/// `timer.<name>.seconds` / `timer.<name>.count` gauges.
inline std::vector<Metric> unified_snapshot(
    MetricsRegistry& reg = MetricsRegistry::global()) {
  std::vector<Metric> out = reg.snapshot();
  for (const auto& [name, seconds, count] : teuchos::TimeMonitor::summary()) {
    out.push_back(Metric{"timer." + name + ".seconds", MetricKind::kGauge,
                         seconds});
    out.push_back(Metric{"timer." + name + ".count", MetricKind::kGauge,
                         static_cast<double>(count)});
  }
  return out;
}

}  // namespace pyhpc::obs
