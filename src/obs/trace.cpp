#include "obs/trace.hpp"

#ifndef PYHPC_OBS_NO_TRACE

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <vector>

namespace pyhpc::obs {

namespace detail {

std::atomic<bool> g_trace_on{false};

namespace {

struct TraceEvent {
  char phase;  // 'X' complete, 'i' instant, 'C' counter
  const char* name;
  const char* category;
  std::int64_t ts_us;
  std::int64_t dur_us;  // 'X' only
  int tid;              // rank index at record time
  TraceArg args[kMaxTraceArgs];
  int nargs;
};

}  // namespace

/// One per thread, owned jointly by the thread (thread_local) and the
/// global registry (so buffers of exited rank threads survive for export).
/// The owning thread appends without locking; export happens from a
/// quiescent point (after thread join, which establishes ordering).
class TraceBuffer {
 public:
  std::vector<TraceEvent> events;
};

namespace {

std::chrono::steady_clock::time_point trace_epoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

struct Registry {
  std::mutex mu;
  std::vector<std::shared_ptr<TraceBuffer>> buffers;
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: usable from atexit hooks
  return *r;
}

thread_local int tl_rank = 0;

// JSON string escaping for names/categories/keys/values.
void append_escaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof(hex), "\\u%04x", c);
          out += hex;
        } else {
          out += c;
        }
    }
  }
}

void append_double(std::string& out, double v) {
  std::ostringstream os;
  os << v;  // shortest-ish representation; NaN/inf are not valid JSON
  const std::string s = os.str();
  if (s == "nan" || s == "-nan" || s == "inf" || s == "-inf") {
    out += "null";
  } else {
    out += s;
  }
}

void append_args(std::string& out, const TraceArg* args, int nargs) {
  out += "\"args\":{";
  for (int i = 0; i < nargs; ++i) {
    if (i > 0) out += ',';
    out += '"';
    append_escaped(out, args[i].key);
    out += "\":";
    switch (args[i].kind) {
      case TraceArg::Kind::kInt:
        out += std::to_string(args[i].i);
        break;
      case TraceArg::Kind::kFloat:
        append_double(out, args[i].f);
        break;
      case TraceArg::Kind::kString:
        out += '"';
        append_escaped(out, args[i].s != nullptr ? args[i].s : "");
        out += '"';
        break;
    }
  }
  out += '}';
}

void append_event(std::string& out, const TraceEvent& e) {
  out += "{\"name\":\"";
  append_escaped(out, e.name);
  out += "\",\"cat\":\"";
  append_escaped(out, e.category);
  out += "\",\"ph\":\"";
  out += e.phase;
  out += "\",\"pid\":0,\"tid\":";
  out += std::to_string(e.tid);
  out += ",\"ts\":";
  out += std::to_string(e.ts_us);
  if (e.phase == 'X') {
    out += ",\"dur\":";
    out += std::to_string(e.dur_us);
  }
  if (e.phase == 'i') out += ",\"s\":\"t\"";  // thread-scoped instant
  if (e.nargs > 0) {
    out += ',';
    append_args(out, e.args, e.nargs);
  }
  out += '}';
}

// Environment hook: PYHPC_TRACE=out.json enables recording at load time
// and writes the trace when the process exits.
struct EnvInit {
  EnvInit() {
    const char* path = std::getenv("PYHPC_TRACE");
    if (path == nullptr || *path == '\0') return;
    static std::string out_path;
    out_path = path;
    (void)trace_epoch();  // pin the epoch before any event
    g_trace_on.store(true, std::memory_order_relaxed);
    std::atexit(+[] { (void)write_trace(out_path); });
  }
} g_env_init;

}  // namespace

TraceBuffer* thread_buffer() {
  thread_local std::shared_ptr<TraceBuffer> tl_buffer = [] {
    auto buf = std::make_shared<TraceBuffer>();
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    r.buffers.push_back(buf);
    return buf;
  }();
  return tl_buffer.get();
}

std::int64_t now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - trace_epoch())
      .count();
}

void record_event(TraceBuffer* buf, char phase, const char* name,
                  const char* category, std::int64_t start_us,
                  std::int64_t dur_us, const TraceArg* args, int nargs) {
  TraceEvent e;
  e.phase = phase;
  e.name = name;
  e.category = category;
  e.ts_us = start_us;
  e.dur_us = dur_us;
  e.tid = tl_rank;
  e.nargs = nargs > kMaxTraceArgs ? kMaxTraceArgs : nargs;
  for (int i = 0; i < e.nargs; ++i) e.args[i] = args[i];
  buf->events.push_back(e);
}

}  // namespace detail

void set_trace_enabled(bool on) {
  if (on) (void)detail::trace_epoch();  // pin before the first event
  detail::g_trace_on.store(on, std::memory_order_relaxed);
}

void set_thread_rank(int rank) { detail::tl_rank = rank; }
int thread_rank() { return detail::tl_rank; }

void instant(const char* name, const char* category) {
  if (!trace_enabled()) return;
  detail::record_event(detail::thread_buffer(), 'i', name, category,
                       detail::now_us(), 0, nullptr, 0);
}

void counter(const char* name, const char* category, double value) {
  if (!trace_enabled()) return;
  detail::TraceArg a;
  a.key = "value";
  a.kind = detail::TraceArg::Kind::kFloat;
  a.f = value;
  detail::record_event(detail::thread_buffer(), 'C', name, category,
                       detail::now_us(), 0, &a, 1);
}

void Span::arg(const char* key, std::int64_t value) {
  if (buf_ == nullptr || nargs_ >= detail::kMaxTraceArgs) return;
  args_[nargs_].key = key;
  args_[nargs_].kind = detail::TraceArg::Kind::kInt;
  args_[nargs_].i = value;
  ++nargs_;
}

void Span::arg(const char* key, double value) {
  if (buf_ == nullptr || nargs_ >= detail::kMaxTraceArgs) return;
  args_[nargs_].key = key;
  args_[nargs_].kind = detail::TraceArg::Kind::kFloat;
  args_[nargs_].f = value;
  ++nargs_;
}

void Span::arg(const char* key, const char* value) {
  if (buf_ == nullptr || nargs_ >= detail::kMaxTraceArgs) return;
  args_[nargs_].key = key;
  args_[nargs_].kind = detail::TraceArg::Kind::kString;
  args_[nargs_].s = value;
  ++nargs_;
}

void Span::finish() {
  if (buf_ == nullptr) return;
  const std::int64_t end = detail::now_us();
  detail::record_event(buf_, 'X', name_, category_, start_us_,
                       end - start_us_, args_, nargs_);
  buf_ = nullptr;
}

std::string trace_json() {
  detail::Registry& r = detail::registry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const auto& buf : r.buffers) {
    for (const auto& e : buf->events) {
      if (!first) out += ",\n";
      first = false;
      detail::append_event(out, e);
    }
  }
  out += "]}";
  return out;
}

bool write_trace(const std::string& path) {
  std::ofstream os(path);
  if (!os) return false;
  os << trace_json();
  return static_cast<bool>(os);
}

void clear_trace() {
  detail::Registry& r = detail::registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (auto& buf : r.buffers) buf->events.clear();
}

std::size_t trace_event_count() {
  detail::Registry& r = detail::registry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::size_t n = 0;
  for (const auto& buf : r.buffers) n += buf->events.size();
  return n;
}

}  // namespace pyhpc::obs

#endif  // PYHPC_OBS_NO_TRACE
