// Unified metrics registry: named counters, gauges, and max-gauges with a
// JSON-serializable snapshot.
//
// Before this layer the repo had three disjoint instrumentation stores —
// comm::CommStats (per-rank message counters), FaultInjector::counts
// (injected-fault totals), and teuchos::TimeMonitor (named wall-clock
// timers) — each with its own reporting format. The registry is the single
// sink they all fold into (see obs/bridge.hpp for the importers), so bench
// reports and tests read one named snapshot instead of three APIs.
//
// Aggregation semantics by kind:
//   counter   — monotonically accumulates via add();
//   gauge     — last write wins (set());
//   max-gauge — keeps the largest observed value (set_max()), the right
//               fold for high-water marks like mailbox occupancy.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace pyhpc::obs {

enum class MetricKind { kCounter, kGauge, kMaxGauge };

const char* metric_kind_name(MetricKind kind);

struct Metric {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  double value = 0.0;
};

/// Thread-safe named metric store. The process-wide instance (`global()`)
/// is what the instrumentation hooks write to; independent instances can
/// be created for tests.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& global();

  /// Counter: accumulates `delta` (creates the metric at 0 first).
  void add(const std::string& name, double delta);

  /// Gauge: overwrites with `value`.
  void set(const std::string& name, double value);

  /// Max-gauge: keeps max(current, value).
  void set_max(const std::string& name, double value);

  /// Current value, or 0 when the metric does not exist.
  double value(const std::string& name) const;
  bool has(const std::string& name) const;

  /// Name-sorted copy of every metric.
  std::vector<Metric> snapshot() const;

  void reset();

 private:
  struct Cell {
    MetricKind kind;
    double value;
  };
  mutable std::mutex mu_;
  std::map<std::string, Cell> metrics_;
};

/// Serializes metrics as a JSON array:
///   [{"name":"comm.collectives","kind":"counter","value":42}, ...]
std::string metrics_to_json(const std::vector<Metric>& metrics);

}  // namespace pyhpc::obs
