// Partitioning and load balancing (Isorropia analogue from Table I).
//
// Two partitioners are provided:
//  - weighted 1D chain partitioning (contiguous blocks balancing a per-row
//    weight, e.g. nonzeros per row), and
//  - recursive coordinate bisection (RCB) for point clouds.
// Both return a new Map; `rebalance` moves vector data onto it.
#pragma once

#include <vector>

#include "tpetra/crs_matrix.hpp"
#include "tpetra/import_export.hpp"
#include "tpetra/map.hpp"
#include "tpetra/vector.hpp"

namespace pyhpc::isorropia {

using Map = tpetra::Map<>;
using Vector = tpetra::Vector<double>;
using Matrix = tpetra::CrsMatrix<double>;

/// Balanced contiguous repartition of the chain [0, N) by the given
/// per-index weights (a distributed vector on the current map). Cuts are
/// chosen so each rank's weight is close to total/P. Collective.
Map partition_1d_weighted(const Vector& weights);

/// Partitions a matrix's rows by per-row nonzero count — the usual
/// "balance the work of SpMV" objective. Collective.
Map partition_by_nonzeros(const Matrix& a);

/// Recursive coordinate bisection of 2D points. `x`/`y` live on the map
/// being repartitioned; returns an arbitrary map assigning each point to a
/// rank such that leaf boxes have near-equal counts. Collective.
Map partition_rcb_2d(const Vector& x, const Vector& y);

/// Moves vector data from its current map onto `target` (collective).
Vector rebalance(const Vector& v, const Map& target);

/// Rebuilds a matrix over a new row map (entries routed to the new owners
/// of their rows; the result is fill-complete). Collective.
Matrix rebalance_matrix(const Matrix& a, const Map& target);

/// Imbalance metric: max over ranks of (local weight / ideal weight).
/// 1.0 is perfect balance. Collective.
double imbalance(const Vector& weights);

}  // namespace pyhpc::isorropia
