#include "isorropia/partition.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace pyhpc::isorropia {

namespace {
using GO = std::int64_t;
using LO = std::int32_t;
}  // namespace

Map partition_1d_weighted(const Vector& weights) {
  auto& comm = weights.map().comm();
  const int p = comm.size();
  auto w = weights.gather_global();  // replicated; fine at bench scales
  const GO n = static_cast<GO>(w.size());

  double total = 0.0;
  for (double x : w) {
    require(x >= 0.0, "partition_1d_weighted: negative weight");
    total += x;
  }
  const double ideal = total / p;

  // Greedy sweep: close a block when adding the next weight would move the
  // running sum further from the ideal than stopping here, keeping enough
  // indices for the remaining ranks.
  std::vector<GO> counts(static_cast<std::size_t>(p), 0);
  GO next = 0;
  for (int r = 0; r < p; ++r) {
    const GO remaining_ranks = p - r - 1;
    double acc = 0.0;
    GO count = 0;
    while (next < n - remaining_ranks) {
      const double with = acc + w[static_cast<std::size_t>(next)];
      if (count > 0 && std::abs(with - ideal) > std::abs(acc - ideal)) break;
      acc = with;
      ++next;
      ++count;
    }
    if (r == p - 1) {
      count += n - next;
      next = n;
    }
    counts[static_cast<std::size_t>(r)] = count;
  }
  return Map::from_local_sizes(
      comm, static_cast<LO>(counts[static_cast<std::size_t>(comm.rank())]));
}

Map partition_by_nonzeros(const Matrix& a) {
  Vector weights(a.row_map());
  auto row_ptr = a.row_ptr();
  for (LO i = 0; i < a.num_local_rows(); ++i) {
    weights[i] = static_cast<double>(row_ptr[static_cast<std::size_t>(i) + 1] -
                                     row_ptr[static_cast<std::size_t>(i)]);
  }
  return partition_1d_weighted(weights);
}

namespace {

struct Point {
  GO gid;
  double x;
  double y;
};

// Recursively splits `pts` (in place) into `nparts` groups by alternating
// coordinate medians; assigns part ids via `assign`.
void rcb_recurse(std::vector<Point>& pts, std::size_t lo, std::size_t hi,
                 int part_lo, int nparts, bool split_x,
                 std::vector<std::pair<GO, int>>& assign) {
  if (nparts == 1) {
    for (std::size_t i = lo; i < hi; ++i) {
      assign.emplace_back(pts[i].gid, part_lo);
    }
    return;
  }
  const int left_parts = nparts / 2;
  // Weighted split position proportional to the part counts.
  const std::size_t mid =
      lo + (hi - lo) * static_cast<std::size_t>(left_parts) /
               static_cast<std::size_t>(nparts);
  auto cmp = [split_x](const Point& a, const Point& b) {
    return split_x ? a.x < b.x : a.y < b.y;
  };
  std::nth_element(pts.begin() + static_cast<std::ptrdiff_t>(lo),
                   pts.begin() + static_cast<std::ptrdiff_t>(mid),
                   pts.begin() + static_cast<std::ptrdiff_t>(hi), cmp);
  rcb_recurse(pts, lo, mid, part_lo, left_parts, !split_x, assign);
  rcb_recurse(pts, mid, hi, part_lo + left_parts, nparts - left_parts,
              !split_x, assign);
}

}  // namespace

Map partition_rcb_2d(const Vector& x, const Vector& y) {
  require(x.local_size() == y.local_size(),
          "partition_rcb_2d: coordinate vectors must share a map");
  auto& comm = x.map().comm();
  const int p = comm.size();

  // Gather points (replicated RCB — standard for modest point counts).
  std::vector<Point> mine;
  mine.reserve(static_cast<std::size_t>(x.local_size()));
  for (LO i = 0; i < x.local_size(); ++i) {
    mine.push_back(Point{x.map().local_to_global(i), x[i], y[i]});
  }
  auto chunks = comm.allgatherv(std::span<const Point>(mine));
  std::vector<Point> all;
  for (const auto& c : chunks) all.insert(all.end(), c.begin(), c.end());

  std::vector<std::pair<GO, int>> assign;
  assign.reserve(all.size());
  rcb_recurse(all, 0, all.size(), 0, p, /*split_x=*/true, assign);

  std::vector<GO> my_gids;
  for (const auto& [gid, part] : assign) {
    if (part == comm.rank()) my_gids.push_back(gid);
  }
  std::sort(my_gids.begin(), my_gids.end());
  return Map::from_global_indices(comm, my_gids);
}

Vector rebalance(const Vector& v, const Map& target) {
  tpetra::Import<> plan(v.map(), target);
  Vector out(target);
  out.do_import(v, plan, tpetra::CombineMode::kInsert);
  return out;
}

Matrix rebalance_matrix(const Matrix& a, const Map& target) {
  pyhpc::require<pyhpc::MapError>(a.is_fill_complete(),
                                  "rebalance_matrix: matrix not fill-complete");
  auto& comm = a.row_map().comm();
  const int p = comm.size();
  struct Triple {
    GO row;
    GO col;
    double val;
  };
  // Resolve the new owner of each locally held row, then route triples.
  std::vector<GO> my_rows;
  for (LO i = 0; i < a.num_local_rows(); ++i) {
    my_rows.push_back(a.row_map().local_to_global(i));
  }
  auto owners = target.remote_index_list(std::span<const GO>(my_rows));
  std::vector<std::vector<Triple>> outgoing(static_cast<std::size_t>(p));
  for (LO i = 0; i < a.num_local_rows(); ++i) {
    const int owner = owners[static_cast<std::size_t>(i)].first;
    pyhpc::require<pyhpc::MapError>(owner >= 0,
                                    "rebalance_matrix: row not in target map");
    for (const auto& [c, v] :
         a.get_global_row(my_rows[static_cast<std::size_t>(i)])) {
      outgoing[static_cast<std::size_t>(owner)].push_back(
          Triple{my_rows[static_cast<std::size_t>(i)], c, v});
    }
  }
  auto incoming = comm.alltoallv(outgoing);
  Matrix out(target);
  for (const auto& part : incoming) {
    for (const auto& t : part) {
      out.insert_global_value(t.row, t.col, t.val);
    }
  }
  out.fill_complete();
  return out;
}

double imbalance(const Vector& weights) {
  double local = 0.0;
  for (LO i = 0; i < weights.local_size(); ++i) local += weights[i];
  auto& comm = weights.map().comm();
  const double total = comm.allreduce_value(local, std::plus<double>{});
  const double mx = comm.allreduce_value(
      local, [](double a, double b) { return std::max(a, b); });
  if (total == 0.0) return 1.0;
  return mx / (total / comm.size());
}

}  // namespace pyhpc::isorropia
