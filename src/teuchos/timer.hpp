// Named wall-clock timers with a process-wide registry and a summary
// table — the Teuchos Time/TimeMonitor analogue used by benches and the
// TriUtils-style harness.
#pragma once

#include <chrono>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace pyhpc::teuchos {

/// Accumulating stopwatch.
class Timer {
 public:
  explicit Timer(std::string name) : name_(std::move(name)) {}

  void start();
  void stop();

  bool running() const { return running_; }
  const std::string& name() const { return name_; }
  double total_seconds() const { return total_; }
  std::uint64_t count() const { return count_; }

  void reset() {
    total_ = 0.0;
    count_ = 0;
    running_ = false;
  }

 private:
  using Clock = std::chrono::steady_clock;
  std::string name_;
  Clock::time_point started_{};
  double total_ = 0.0;
  std::uint64_t count_ = 0;
  bool running_ = false;
};

/// RAII scope timing into a Timer.
class ScopedTimer {
 public:
  explicit ScopedTimer(Timer& timer) : timer_(timer) { timer_.start(); }
  ~ScopedTimer() { timer_.stop(); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Timer& timer_;
};

/// Process-wide registry (TimeMonitor analogue). Thread-safe lookup;
/// individual timers are not thread-safe and should be used per rank.
class TimeMonitor {
 public:
  /// Returns the timer registered under `name`, creating it on first use.
  static Timer& get(const std::string& name);

  /// Snapshot of (name, seconds, count) sorted by name.
  static std::vector<std::tuple<std::string, double, std::uint64_t>> summary();

  /// Formats the summary as an aligned text table.
  static std::string report();

  static void reset_all();

 private:
  static std::mutex mu_;
  static std::map<std::string, Timer> timers_;
};

}  // namespace pyhpc::teuchos
