#include "teuchos/timer.hpp"

#include <iomanip>
#include <sstream>

#include "util/error.hpp"

namespace pyhpc::teuchos {

void Timer::start() {
  require(!running_, "Timer '" + name_ + "' already running");
  running_ = true;
  started_ = Clock::now();
}

void Timer::stop() {
  require(running_, "Timer '" + name_ + "' not running");
  running_ = false;
  total_ += std::chrono::duration<double>(Clock::now() - started_).count();
  ++count_;
}

std::mutex TimeMonitor::mu_;
std::map<std::string, Timer> TimeMonitor::timers_;

Timer& TimeMonitor::get(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = timers_.find(name);
  if (it == timers_.end()) {
    it = timers_.emplace(name, Timer(name)).first;
  }
  return it->second;
}

std::vector<std::tuple<std::string, double, std::uint64_t>>
TimeMonitor::summary() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::tuple<std::string, double, std::uint64_t>> out;
  out.reserve(timers_.size());
  for (const auto& [name, timer] : timers_) {
    out.emplace_back(name, timer.total_seconds(), timer.count());
  }
  return out;
}

std::string TimeMonitor::report() {
  std::ostringstream os;
  os << std::left << std::setw(40) << "Timer" << std::right << std::setw(14)
     << "Total (s)" << std::setw(10) << "Count" << "\n";
  for (const auto& [name, secs, count] : summary()) {
    os << std::left << std::setw(40) << name << std::right << std::setw(14)
       << std::fixed << std::setprecision(6) << secs << std::setw(10) << count
       << "\n";
  }
  return os.str();
}

void TimeMonitor::reset_all() {
  std::lock_guard<std::mutex> lock(mu_);
  timers_.clear();
}

}  // namespace pyhpc::teuchos
