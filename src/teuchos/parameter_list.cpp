#include "teuchos/parameter_list.hpp"

#include <charconv>
#include <cstdio>
#include <sstream>

#include "util/string_util.hpp"

namespace pyhpc::teuchos {

namespace {

std::string xml_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string xml_unescape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '&') {
      out.push_back(s[i]);
      continue;
    }
    const auto semi = s.find(';', i);
    require(semi != std::string::npos, "ParameterList XML: bad entity");
    const std::string ent = s.substr(i, semi - i + 1);
    if (ent == "&amp;") out.push_back('&');
    else if (ent == "&lt;") out.push_back('<');
    else if (ent == "&gt;") out.push_back('>');
    else if (ent == "&quot;") out.push_back('"');
    else throw InvalidArgument("ParameterList XML: unknown entity " + ent);
    i = semi;
  }
  return out;
}

// Round-trippable double formatting.
std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

double parse_double(const std::string& s) {
  std::size_t pos = 0;
  const double v = std::stod(s, &pos);
  require(pos == s.size(), "ParameterList XML: bad double '" + s + "'");
  return v;
}

std::int64_t parse_int(const std::string& s) {
  std::int64_t v = 0;
  const auto* begin = s.data();
  const auto* end = s.data() + s.size();
  const auto res = std::from_chars(begin, end, v);
  require(res.ec == std::errc{} && res.ptr == end,
          "ParameterList XML: bad int '" + s + "'");
  return v;
}

struct ValueWriter {
  std::string* out;
  void operator()(bool v) const {
    *out += "type=\"bool\" value=\"" + std::string(v ? "true" : "false") + "\"";
  }
  void operator()(std::int64_t v) const {
    *out += "type=\"int\" value=\"" + std::to_string(v) + "\"";
  }
  void operator()(double v) const {
    *out += "type=\"double\" value=\"" + format_double(v) + "\"";
  }
  void operator()(const std::string& v) const {
    *out += "type=\"string\" value=\"" + xml_escape(v) + "\"";
  }
  void operator()(const std::vector<std::int64_t>& v) const {
    std::vector<std::string> parts;
    parts.reserve(v.size());
    for (auto x : v) parts.push_back(std::to_string(x));
    *out += "type=\"int_array\" value=\"" + util::join(parts, ",") + "\"";
  }
  void operator()(const std::vector<double>& v) const {
    std::vector<std::string> parts;
    parts.reserve(v.size());
    for (auto x : v) parts.push_back(format_double(x));
    *out += "type=\"double_array\" value=\"" + util::join(parts, ",") + "\"";
  }
  void operator()(const std::shared_ptr<ParameterList>&) const {
    // Sublists are handled structurally, never through this writer.
  }
};

// Minimal XML tag scanner for the subset ParameterList emits.
struct Tag {
  std::string element;                       // "ParameterList" or "Parameter"
  std::map<std::string, std::string> attrs;  // unescaped values
  bool self_closing = false;
  bool closing = false;  // </ParameterList>
};

class TagScanner {
 public:
  explicit TagScanner(const std::string& text) : text_(text) {}

  bool next(Tag& tag) {
    pos_ = text_.find('<', pos_);
    if (pos_ == std::string::npos) return false;
    const auto end = text_.find('>', pos_);
    require(end != std::string::npos, "ParameterList XML: unterminated tag");
    std::string body = text_.substr(pos_ + 1, end - pos_ - 1);
    pos_ = end + 1;
    tag = Tag{};
    if (!body.empty() && body.front() == '/') {
      tag.closing = true;
      tag.element = util::strip(body.substr(1));
      return true;
    }
    if (!body.empty() && body.back() == '/') {
      tag.self_closing = true;
      body.pop_back();
    }
    // element name
    std::size_t i = 0;
    while (i < body.size() && !std::isspace(static_cast<unsigned char>(body[i]))) ++i;
    tag.element = body.substr(0, i);
    // attributes: name="value"
    while (i < body.size()) {
      while (i < body.size() && std::isspace(static_cast<unsigned char>(body[i]))) ++i;
      if (i >= body.size()) break;
      const auto eq = body.find('=', i);
      require(eq != std::string::npos, "ParameterList XML: bad attribute");
      const std::string key = util::strip(body.substr(i, eq - i));
      const auto q1 = body.find('"', eq);
      require(q1 != std::string::npos, "ParameterList XML: missing quote");
      const auto q2 = body.find('"', q1 + 1);
      require(q2 != std::string::npos, "ParameterList XML: missing quote");
      tag.attrs[key] = xml_unescape(body.substr(q1 + 1, q2 - q1 - 1));
      i = q2 + 1;
    }
    return true;
  }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;
};

ParameterValue parse_value(const std::string& type, const std::string& value) {
  if (type == "bool") {
    require(value == "true" || value == "false",
            "ParameterList XML: bad bool '" + value + "'");
    return value == "true";
  }
  if (type == "int") return parse_int(value);
  if (type == "double") return parse_double(value);
  if (type == "string") return value;
  if (type == "int_array") {
    std::vector<std::int64_t> out;
    if (!value.empty()) {
      for (const auto& p : util::split(value, ',')) out.push_back(parse_int(p));
    }
    return out;
  }
  if (type == "double_array") {
    std::vector<double> out;
    if (!value.empty()) {
      for (const auto& p : util::split(value, ',')) out.push_back(parse_double(p));
    }
    return out;
  }
  throw InvalidArgument("ParameterList XML: unknown type '" + type + "'");
}

}  // namespace

ParameterList& ParameterList::sublist(const std::string& key) {
  auto it = params_.find(key);
  if (it == params_.end()) {
    auto child = std::make_shared<ParameterList>(key);
    auto& slot = params_[key];
    slot = child;
    return *child;
  }
  auto* child = std::get_if<std::shared_ptr<ParameterList>>(&it->second);
  require(child != nullptr,
          "ParameterList: '" + key + "' exists and is not a sublist");
  return **child;
}

const ParameterList& ParameterList::sublist(const std::string& key) const {
  auto it = params_.find(key);
  require(it != params_.end(), "ParameterList: no sublist '" + key + "'");
  const auto* child = std::get_if<std::shared_ptr<ParameterList>>(&it->second);
  require(child != nullptr, "ParameterList: '" + key + "' is not a sublist");
  return **child;
}

bool ParameterList::is_sublist(const std::string& key) const {
  auto it = params_.find(key);
  return it != params_.end() &&
         std::holds_alternative<std::shared_ptr<ParameterList>>(it->second);
}

std::vector<std::string> ParameterList::names() const {
  std::vector<std::string> out;
  out.reserve(params_.size());
  for (const auto& [k, v] : params_) out.push_back(k);
  return out;
}

void ParameterList::to_xml_impl(std::string& out, int indent) const {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  out += pad + "<ParameterList name=\"" + xml_escape(name_) + "\">\n";
  for (const auto& [key, value] : params_) {
    if (const auto* sub = std::get_if<std::shared_ptr<ParameterList>>(&value)) {
      (*sub)->to_xml_impl(out, indent + 1);
    } else {
      out += pad + "  <Parameter name=\"" + xml_escape(key) + "\" ";
      std::visit(ValueWriter{&out}, value);
      out += "/>\n";
    }
  }
  out += pad + "</ParameterList>\n";
}

std::string ParameterList::to_xml() const {
  std::string out;
  to_xml_impl(out, 0);
  return out;
}

ParameterList ParameterList::from_xml(const std::string& xml) {
  TagScanner scanner(xml);
  Tag tag;
  require(scanner.next(tag) && tag.element == "ParameterList" && !tag.closing,
          "ParameterList XML: expected root <ParameterList>");
  std::vector<ParameterList*> stack;
  ParameterList root(tag.attrs.count("name") ? tag.attrs["name"] : "ANONYMOUS");
  stack.push_back(&root);
  while (scanner.next(tag)) {
    if (tag.closing) {
      require(tag.element == "ParameterList",
              "ParameterList XML: unexpected closing tag");
      stack.pop_back();
      if (stack.empty()) return root;
      continue;
    }
    require(!stack.empty(), "ParameterList XML: content after root close");
    if (tag.element == "ParameterList") {
      require(!tag.self_closing || tag.attrs.count("name"),
              "ParameterList XML: sublist needs a name");
      ParameterList& sub = stack.back()->sublist(tag.attrs["name"]);
      if (!tag.self_closing) stack.push_back(&sub);
    } else if (tag.element == "Parameter") {
      require(tag.self_closing, "ParameterList XML: <Parameter> must self-close");
      require(tag.attrs.count("name") && tag.attrs.count("type") &&
                  tag.attrs.count("value"),
              "ParameterList XML: <Parameter> needs name/type/value");
      stack.back()->params_[tag.attrs["name"]] =
          parse_value(tag.attrs["type"], tag.attrs["value"]);
    } else {
      throw InvalidArgument("ParameterList XML: unknown element <" +
                            tag.element + ">");
    }
  }
  throw InvalidArgument("ParameterList XML: missing closing tag");
}

bool ParameterList::operator==(const ParameterList& other) const {
  if (params_.size() != other.params_.size()) return false;
  for (const auto& [key, value] : params_) {
    auto it = other.params_.find(key);
    if (it == other.params_.end()) return false;
    const auto* a = std::get_if<std::shared_ptr<ParameterList>>(&value);
    const auto* b = std::get_if<std::shared_ptr<ParameterList>>(&it->second);
    if ((a == nullptr) != (b == nullptr)) return false;
    if (a != nullptr) {
      if (!(**a == **b)) return false;
    } else if (!(value == it->second)) {
      return false;
    }
  }
  return true;
}

}  // namespace pyhpc::teuchos
