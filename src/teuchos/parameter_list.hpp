// ParameterList: the Teuchos-style hierarchical, typed option dictionary
// used to configure solvers and preconditioners (Table I: "Teuchos —
// general tools (parameter lists, ... XML I/O ...)").
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "util/error.hpp"

namespace pyhpc::teuchos {

class ParameterList;

/// The value types a parameter may hold. Sublists make the structure
/// hierarchical ("Solver" -> "GMRES" -> restart length, ...).
using ParameterValue =
    std::variant<bool, std::int64_t, double, std::string,
                 std::vector<std::int64_t>, std::vector<double>,
                 std::shared_ptr<ParameterList>>;

class ParameterList {
 public:
  ParameterList() = default;
  explicit ParameterList(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Sets or replaces a parameter. Integral/floating literals are
  /// normalized to int64/double; string literals to std::string.
  void set(const std::string& key, bool v) { params_[key] = v; }
  void set(const std::string& key, int v) {
    params_[key] = static_cast<std::int64_t>(v);
  }
  void set(const std::string& key, std::int64_t v) { params_[key] = v; }
  void set(const std::string& key, double v) { params_[key] = v; }
  void set(const std::string& key, const char* v) {
    params_[key] = std::string(v);
  }
  void set(const std::string& key, std::string v) {
    params_[key] = std::move(v);
  }
  void set(const std::string& key, std::vector<std::int64_t> v) {
    params_[key] = std::move(v);
  }
  void set(const std::string& key, std::vector<double> v) {
    params_[key] = std::move(v);
  }

  bool has(const std::string& key) const { return params_.count(key) > 0; }

  /// Typed access; throws InvalidArgument when missing or mistyped.
  template <class T>
  const T& get(const std::string& key) const {
    auto it = params_.find(key);
    require(it != params_.end(), "ParameterList: no parameter '" + key + "'");
    const T* v = std::get_if<T>(&it->second);
    require(v != nullptr,
            "ParameterList: parameter '" + key + "' has a different type");
    return *v;
  }

  /// Typed access with a default for missing keys (mistyping still throws).
  template <class T>
  T get_or(const std::string& key, T fallback) const {
    auto it = params_.find(key);
    if (it == params_.end()) return fallback;
    const T* v = std::get_if<T>(&it->second);
    require(v != nullptr,
            "ParameterList: parameter '" + key + "' has a different type");
    return *v;
  }

  /// Convenience for the common int case (stored as int64).
  int get_int(const std::string& key, int fallback) const {
    return static_cast<int>(get_or<std::int64_t>(key, fallback));
  }
  double get_double(const std::string& key, double fallback) const {
    return get_or<double>(key, fallback);
  }
  std::string get_string(const std::string& key,
                         const std::string& fallback) const {
    return get_or<std::string>(key, fallback);
  }
  bool get_bool(const std::string& key, bool fallback) const {
    return get_or<bool>(key, fallback);
  }

  /// Returns (creating on demand) a nested sublist.
  ParameterList& sublist(const std::string& key);

  /// Read-only sublist access; throws when absent.
  const ParameterList& sublist(const std::string& key) const;

  bool is_sublist(const std::string& key) const;

  /// Removes a parameter; returns whether it existed.
  bool remove(const std::string& key) { return params_.erase(key) > 0; }

  /// Sorted parameter names.
  std::vector<std::string> names() const;

  std::size_t size() const { return params_.size(); }
  bool empty() const { return params_.empty(); }

  /// XML-style round-trippable serialization (Teuchos XML I/O analogue).
  std::string to_xml() const;
  static ParameterList from_xml(const std::string& xml);

  bool operator==(const ParameterList& other) const;

 private:
  void to_xml_impl(std::string& out, int indent) const;

  std::string name_ = "ANONYMOUS";
  std::map<std::string, ParameterValue> params_;
};

}  // namespace pyhpc::teuchos
