#include "solvers/nox.hpp"

#include <cmath>

#include "precond/preconditioner.hpp"

namespace pyhpc::solvers {

namespace {

using Vec = tpetra::Vector<double>;

// Armijo backtracking: finds step in {1, 1/2, 1/4, ...} with
// ||F(x + step d)|| <= (1 - c * step) ||F(x)||; returns the accepted step
// and leaves x updated and fnew = F(x).
double line_search(const ResidualFn& residual, Vec& x, const Vec& d,
                   double fnorm, Vec& fnew, const NewtonOptions& options) {
  double step = 1.0;
  Vec trial(x.map());
  for (int ls = 0; ls < options.max_line_search_steps; ++ls) {
    trial.update(1.0, x, 0.0);
    trial.update(step, d, 1.0);
    residual(trial, fnew);
    if (fnew.norm2() <= (1.0 - options.armijo_c * step) * fnorm) {
      x.update(1.0, trial, 0.0);
      return step;
    }
    step *= 0.5;
  }
  // No sufficient decrease found; take the smallest step anyway (NOX's
  // "take last step" recovery) so progress information isn't lost.
  x.update(step * 2.0, d, 1.0);
  residual(x, fnew);
  return step * 2.0;
}

}  // namespace

NewtonResult newton_solve(const ResidualFn& residual,
                          const JacobianFn& jacobian, Vec& x,
                          const NewtonOptions& options) {
  NewtonResult result;
  Vec f(x.map()), fnew(x.map());
  residual(x, f);
  double fnorm = f.norm2();
  result.history.push_back(fnorm);

  for (int it = 0; it < options.max_iterations && fnorm > options.tolerance;
       ++it) {
    auto jac = jacobian(x);
    precond::Ilu0Preconditioner ilu(jac);

    // Solve J d = -F.
    Vec rhs(x.map());
    rhs.update(-1.0, f, 0.0);
    Vec d(x.map(), 0.0);
    (void)gmres_solve(jac, rhs, d, options.linear, &ilu);

    line_search(residual, x, d, fnorm, fnew, options);
    f.update(1.0, fnew, 0.0);
    fnorm = f.norm2();
    result.iterations = it + 1;
    result.history.push_back(fnorm);
  }
  result.converged = fnorm <= options.tolerance;
  result.residual_norm = fnorm;
  return result;
}

namespace {

/// Matrix-free Jacobian action via forward differences.
class FdJacobian final : public tpetra::Operator<double> {
 public:
  FdJacobian(const ResidualFn& residual, const Vec& x, const Vec& fx,
             double eps_scale)
      : residual_(residual), x_(x), fx_(fx), eps_scale_(eps_scale) {}

  void apply(const Vec& v, Vec& jv) const override {
    const double vnorm = v.norm2();
    if (vnorm == 0.0) {
      jv.put_scalar(0.0);
      return;
    }
    const double xnorm = x_.norm2();
    const double eps = eps_scale_ * std::max(1.0, xnorm) / vnorm;
    Vec xp(x_.map());
    xp.update(1.0, x_, 0.0);
    xp.update(eps, v, 1.0);
    Vec fp(x_.map());
    residual_(xp, fp);
    jv.update(1.0, fp, 0.0);
    jv.update(-1.0, fx_, 1.0);
    jv.scale(1.0 / eps);
  }

  const tpetra::Map<>& domain_map() const override { return x_.map(); }
  const tpetra::Map<>& range_map() const override { return x_.map(); }

 private:
  const ResidualFn& residual_;
  const Vec& x_;
  const Vec& fx_;
  double eps_scale_;
};

}  // namespace

NewtonResult jfnk_solve(const ResidualFn& residual, Vec& x,
                        const NewtonOptions& options) {
  NewtonResult result;
  Vec f(x.map()), fnew(x.map());
  residual(x, f);
  double fnorm = f.norm2();
  result.history.push_back(fnorm);

  for (int it = 0; it < options.max_iterations && fnorm > options.tolerance;
       ++it) {
    FdJacobian jac(residual, x, f, options.fd_epsilon);
    Vec rhs(x.map());
    rhs.update(-1.0, f, 0.0);
    Vec d(x.map(), 0.0);
    (void)gmres_solve(jac, rhs, d, options.linear, nullptr);

    line_search(residual, x, d, fnorm, fnew, options);
    f.update(1.0, fnew, 0.0);
    fnorm = f.norm2();
    result.iterations = it + 1;
    result.history.push_back(fnorm);
  }
  result.converged = fnorm <= options.tolerance;
  result.residual_norm = fnorm;
  return result;
}

NewtonResult fixed_point_solve(const ResidualFn& residual, Vec& x,
                               double damping, const NewtonOptions& options) {
  require(damping > 0.0, "fixed_point_solve: damping must be positive");
  NewtonResult result;
  Vec f(x.map());
  residual(x, f);
  double fnorm = f.norm2();
  result.history.push_back(fnorm);
  for (int it = 0; it < options.max_iterations && fnorm > options.tolerance;
       ++it) {
    x.update(-damping, f, 1.0);
    residual(x, f);
    fnorm = f.norm2();
    result.iterations = it + 1;
    result.history.push_back(fnorm);
  }
  result.converged = fnorm <= options.tolerance;
  result.residual_norm = fnorm;
  return result;
}

}  // namespace pyhpc::solvers
