#include "solvers/resilient.hpp"

#include <algorithm>

#include "isorropia/partition.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "tpetra/checkpoint.hpp"
#include "util/string_util.hpp"

namespace pyhpc::solvers {

namespace {

using TMap = tpetra::Map<>;

// The full CG recurrence state — exactly what a checkpoint must carry for
// the iteration to continue (not restart) after a failure.
struct CgState {
  Vector x, r, p;
  double rz = 0.0;
  int it = 0;
  // False when only x is known (initial guess, or a gmres-style restart):
  // r, p, rz are then recomputed from x before iterating.
  bool have_rp = false;

  explicit CgState(const Vector& x0) : x(x0), r(x0.map()), p(x0.map()) {}
};

void save_state(util::CheckpointStore& store, const std::string& key,
                const CgState& s) {
  const auto v = static_cast<std::uint64_t>(s.it);
  tpetra::checkpoint_vector(store, key + ".x", v, s.x);
  tpetra::checkpoint_vector(store, key + ".r", v, s.r);
  tpetra::checkpoint_vector(store, key + ".p", v, s.p);
  store.save_scalar(key + ".it", v, static_cast<double>(s.it));
  store.save_scalar(key + ".rz", v, s.rz);
}

// Newest version whose x-slice over [0, n) is complete (a version a dead
// rank never finished saving has holes and is skipped). `full` reports
// whether r/p/rz are also complete, i.e. the recurrence can continue
// rather than restart. Reads only globally-agreed store content, so every
// survivor picks the same version.
std::uint64_t latest_restorable(const util::CheckpointStore& store,
                                const std::string& key, std::int64_t n,
                                bool* full) {
  auto versions = store.versions(key + ".x");
  for (auto it = versions.rbegin(); it != versions.rend(); ++it) {
    const std::uint64_t v = *it;
    if (!store.covers(key + ".x", v, 0, n) ||
        !store.has_scalar(key + ".it", v)) {
      continue;
    }
    *full = store.covers(key + ".r", v, 0, n) &&
            store.covers(key + ".p", v, 0, n) &&
            store.has_scalar(key + ".rz", v);
    return v;
  }
  throw CheckpointError(
      util::cat("resilient_solve: no restorable checkpoint for '", key, "'"));
}

// Unpreconditioned CG driven from (and checkpointing back into) CgState.
// Structurally the same recurrence as cg_solve; hoisting the state out of
// the loop is what makes mid-solve resume possible.
SolveResult cg_checkpointed(const Matrix& a, const Vector& b, CgState& s,
                            util::CheckpointStore& store,
                            const ResilientOptions& options) {
  SolveResult result;
  const KrylovOptions& k = options.krylov;
  const double bnorm = b.norm2();
  if (bnorm == 0.0) {
    s.x.put_scalar(0.0);
    result.converged = true;
    return result;
  }

  Vector ap(b.map());
  if (!s.have_rp) {
    a.apply(s.x, s.r);
    s.r.update(1.0, b, -1.0);  // r = b - A x
    s.p.update(1.0, s.r, 0.0);
    s.rz = s.r.dot(s.r);
    s.have_rp = true;
  }
  double rel = s.r.norm2() / bnorm;
  result.iterations = s.it;

  while (s.it < k.max_iterations && rel > k.tolerance) {
    if (options.checkpoint_interval > 0 &&
        s.it % options.checkpoint_interval == 0) {
      save_state(store, options.key, s);
    }
    a.apply(s.p, ap);
    const double pap = s.p.dot(ap);
    require<NumericalError>(
        pap > 0.0, "resilient CG: operator not positive definite (p'Ap <= 0)");
    const double alpha = s.rz / pap;
    s.x.update(alpha, s.p, 1.0);
    s.r.update(-alpha, ap, 1.0);
    const double rz_new = s.r.dot(s.r);
    const double beta = rz_new / s.rz;
    s.rz = rz_new;
    s.p.update(1.0, s.r, beta);  // p = r + beta p
    rel = s.r.norm2() / bnorm;
    ++s.it;
    result.iterations = s.it;
    if (k.record_history) result.residual_history.push_back(rel);
    obs::counter("resilient_cg.residual", "solvers", rel);
  }
  result.converged = rel <= k.tolerance;
  result.achieved_tolerance = rel;
  return result;
}

// GMRES attempt: the Arnoldi basis is too entangled to checkpoint, so the
// iterate is saved at attempt entry and a failure restarts GMRES from the
// restored x — the standard restart semantics it already has.
SolveResult gmres_attempt(const Matrix& a, const Vector& b, CgState& s,
                          util::CheckpointStore& store,
                          const ResilientOptions& options) {
  tpetra::checkpoint_vector(store, options.key + ".x",
                            static_cast<std::uint64_t>(s.it), s.x);
  store.save_scalar(options.key + ".it", static_cast<std::uint64_t>(s.it),
                    static_cast<double>(s.it));
  KrylovOptions k = options.krylov;
  k.max_iterations = std::max(0, k.max_iterations - s.it);
  SolveResult result = gmres_solve(a, b, s.x, k);
  s.it += result.iterations;
  result.iterations = s.it;
  return result;
}

}  // namespace

ResilientResult resilient_solve(util::CheckpointStore& store, const Matrix& a,
                                const Vector& b, const Vector& x0,
                                const ResilientOptions& options) {
  require(a.is_fill_complete(), "resilient_solve: matrix not fill-complete");
  require<MapError>(a.row_map().is_contiguous() && b.map().is_contiguous(),
                    "resilient_solve: needs contiguous maps");
  require(options.solver == "cg" || options.solver == "gmres",
          "resilient_solve: solver must be 'cg' or 'gmres'");
  const std::int64_t n = a.row_map().num_global();
  const std::string& key = options.key;
  obs::Span span("resilient_solve", "recovery");

  // Persist the problem before iterating: local writes only, so no fault
  // can interrupt them (rank death fires on substrate traffic). Blob parts
  // are first-write-wins, making re-entry harmless.
  tpetra::checkpoint_matrix(store, key + ".A", a);
  {
    const auto view = b.local_view();
    store.save(key + ".b", 0, b.map().min_global_index(), view.data(),
               view.size());
  }
  tpetra::checkpoint_vector(store, key + ".x", 0, x0);
  store.save_scalar(key + ".it", 0, 0.0);

  auto& reg = obs::MetricsRegistry::global();
  comm::Communicator cur = a.row_map().comm();
  Matrix cur_a = a;
  Vector cur_b = b;
  CgState s(x0);

  ResilientResult res;
  int resolve_iterations = 0;
  bool rebuild = false;
  for (;;) {
    int attempt_start_it = s.it;
    bool attempt_failed = false;
    try {
      if (rebuild) {
        // Survivors re-host the problem: uniform map on the shrunken
        // communicator, operator restored from the blob, then rebalanced
        // by nonzeros (Isorropia) exactly as an initial partition would be.
        obs::Span rb("recovery.rebuild", "recovery");
        TMap fresh = TMap::uniform(cur, n);
        Matrix restored = tpetra::restore_matrix(store, key + ".A", fresh);
        TMap balanced = isorropia::partition_by_nonzeros(restored);
        cur_a = isorropia::rebalance_matrix(restored, balanced);
        cur_b = Vector(balanced);
        tpetra::restore_vector(store, key + ".b", 0, cur_b);

        bool full = false;
        const std::uint64_t v = latest_restorable(store, key, n, &full);
        s = CgState(Vector(balanced));
        tpetra::restore_vector(store, key + ".x", v, s.x);
        s.it = static_cast<int>(store.restore_scalar(key + ".it", v));
        if (full && options.solver == "cg") {
          tpetra::restore_vector(store, key + ".r", v, s.r);
          tpetra::restore_vector(store, key + ".p", v, s.p);
          s.rz = store.restore_scalar(key + ".rz", v);
          s.have_rp = true;
        }
        attempt_start_it = s.it;
        if (rb.active()) {
          rb.arg("version", static_cast<std::int64_t>(v));
          rb.arg("continued", static_cast<std::int64_t>(s.have_rp ? 1 : 0));
        }
        rebuild = false;
      }
      res.solve = options.solver == "gmres"
                      ? gmres_attempt(cur_a, cur_b, s, store, options)
                      : cg_checkpointed(cur_a, cur_b, s, store, options);
      if (res.recoveries > 0) resolve_iterations += s.it - attempt_start_it;
      res.final_size = cur.size();
      res.final_rank = cur.rank();
      res.x_global = s.x.gather_global();
      // Detection: a peer died under a collective-internal receive, the
      // communicator was revoked by another survivor, or a dropped message
      // starved a receive past its deadline. The rank's OWN death
      // (RankKilledError that is not PeerKilledError) is not caught — it
      // propagates so the runner contains it as a simulated crash. The
      // revoke happens here, before the exit agreement, so peers still
      // blocked inside the interrupted collective fall out and can join it.
    } catch (const PeerKilledError&) {
      reg.add("recovery.detections", 1.0);
      attempt_failed = true;
      cur.revoke();
    } catch (const RevokedError&) {
      reg.add("recovery.detections", 1.0);
      attempt_failed = true;
      cur.revoke();
    } catch (const RecvTimeoutError&) {
      reg.add("recovery.detections", 1.0);
      attempt_failed = true;
      cur.revoke();
    }
    // Exit agreement (the MPI_Comm_agree idiom): no rank may treat the
    // attempt as settled until every survivor has weighed in. Without it a
    // fault at the attempt boundary splits the survivors — ranks whose own
    // collectives all completed return success and sail into the caller's
    // next operation, while the rank that observed the fault revokes and
    // shrinks, and the two camps deadlock running different protocols on
    // one communicator. A nonzero verdict (a corpse, a returned rank, or a
    // failure flag from a starved peer) sends *everyone* into recovery.
    const std::uint64_t verdict =
        cur.agree(attempt_failed ? comm::Communicator::kAgreeFailureFlag : 0);
    if (verdict == 0) {
      reg.set_max("recovery.checkpoint_bytes",
                  static_cast<double>(store.bytes_stored()));
      if (cur.rank() == 0 && res.recoveries > 0) {
        reg.add("recovery.resolve_iterations",
                static_cast<double>(resolve_iterations));
      }
      if (span.active()) {
        span.arg("recoveries", static_cast<std::int64_t>(res.recoveries));
        span.arg("final_size", static_cast<std::int64_t>(res.final_size));
        span.arg("iterations", static_cast<std::int64_t>(res.solve.iterations));
      }
      return res;
    }
    if (attempt_failed && res.recoveries > 0) {
      resolve_iterations += s.it - attempt_start_it;
    }
    require<CommError>(
        res.recoveries < options.max_recoveries,
        util::cat("resilient_solve: recovery budget (", options.max_recoveries,
                  ") exhausted"));
    // ULFM sequence: revoke (poison in-flight ops so every survivor falls
    // out), agree + shrink (dense survivor communicator), then rebuild.
    cur.revoke();
    for (;;) {
      try {
        cur = cur.shrink();
        break;
      } catch (const PeerKilledError&) {
        // The would-be creator died before publishing the child; the next
        // agreement round excludes it. Strictly-growing dead set bounds
        // this loop by the rank count.
        reg.add("recovery.detections", 1.0);
      }
    }
    ++res.recoveries;
    if (cur.rank() == 0) reg.add("recovery.shrinks", 1.0);
    rebuild = true;
  }
}

}  // namespace pyhpc::solvers
