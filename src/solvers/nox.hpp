// Nonlinear solvers (NOX analogue from Table I): Newton with Armijo line
// search over a user-supplied residual/Jacobian pair, plus a matrix-free
// JFNK mode (Jacobian action by finite differences through GMRES) and a
// damped fixed-point iteration.
#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "solvers/krylov.hpp"
#include "tpetra/crs_matrix.hpp"
#include "tpetra/vector.hpp"

namespace pyhpc::solvers {

/// Evaluates F(x) into `f` (collective; both live on the same map).
using ResidualFn =
    std::function<void(const tpetra::Vector<double>& x,
                       tpetra::Vector<double>& f)>;

/// Assembles the Jacobian at x (fill-complete on return).
using JacobianFn = std::function<tpetra::CrsMatrix<double>(
    const tpetra::Vector<double>& x)>;

struct NewtonOptions {
  double tolerance = 1e-10;        // on ||F(x)||
  int max_iterations = 50;
  int max_line_search_steps = 20;  // Armijo backtracking halvings
  double armijo_c = 1e-4;
  KrylovOptions linear;            // inner solver controls
  /// Finite-difference epsilon scale for JFNK.
  double fd_epsilon = 1e-7;
};

struct NewtonResult {
  bool converged = false;
  int iterations = 0;
  double residual_norm = 0.0;
  std::vector<double> history;  // ||F|| per Newton step
};

/// Newton's method with analytic Jacobian: solves F(x) = 0, updating x in
/// place from its initial guess. The linear solve uses GMRES with an ILU(0)
/// preconditioner built per step.
NewtonResult newton_solve(const ResidualFn& residual,
                          const JacobianFn& jacobian,
                          tpetra::Vector<double>& x,
                          const NewtonOptions& options = {});

/// Jacobian-free Newton-Krylov: the Jacobian action J v is approximated by
/// (F(x + eps v) - F(x)) / eps inside unpreconditioned GMRES.
NewtonResult jfnk_solve(const ResidualFn& residual, tpetra::Vector<double>& x,
                        const NewtonOptions& options = {});

/// Damped fixed-point iteration x <- x - damping * F(x); converges for
/// contractive maps and serves as the baseline the benches compare Newton
/// against.
NewtonResult fixed_point_solve(const ResidualFn& residual,
                               tpetra::Vector<double>& x, double damping,
                               const NewtonOptions& options = {});

}  // namespace pyhpc::solvers
