#include "solvers/anasazi.hpp"

#include <algorithm>
#include <cmath>

namespace pyhpc::solvers {

EigenResult power_method(const tpetra::Operator<double>& a,
                         tpetra::Vector<double>& v,
                         const EigenOptions& options) {
  EigenResult result;
  v.randomize(options.seed);
  double nrm = v.norm2();
  require<NumericalError>(nrm > 0.0, "power_method: zero start vector");
  v.scale(1.0 / nrm);

  tpetra::Vector<double> av(a.range_map());
  double lambda = 0.0;
  for (int it = 0; it < options.max_iterations; ++it) {
    a.apply(v, av);
    const double lambda_new = v.dot(av);  // Rayleigh quotient
    nrm = av.norm2();
    require<NumericalError>(nrm > 0.0, "power_method: operator annihilated v");
    av.scale(1.0 / nrm);
    // Residual of the eigenpair estimate: ||A v - lambda v||.
    tpetra::Vector<double> resid(a.range_map());
    a.apply(av, resid);
    resid.update(-nrm, av, 1.0);  // using |lambda| ~ nrm for normalized av
    v.update(1.0, av, 0.0);
    result.iterations = it + 1;
    if (std::abs(lambda_new - lambda) <=
        options.tolerance * std::max(1.0, std::abs(lambda_new))) {
      lambda = lambda_new;
      result.converged = true;
      break;
    }
    lambda = lambda_new;
  }
  result.eigenvalues = {lambda};
  return result;
}

EigenResult inverse_iteration(const tpetra::CrsMatrix<double>& a, double shift,
                              tpetra::Vector<double>& v,
                              const EigenOptions& options) {
  // Build A - shift I and factor it once.
  tpetra::CrsMatrix<double> shifted(a.row_map());
  for (std::int32_t i = 0; i < a.num_local_rows(); ++i) {
    const std::int64_t g = a.row_map().local_to_global(i);
    for (const auto& [c, val] : a.get_global_row(g)) {
      shifted.insert_global_value(g, c, val);
    }
    shifted.insert_global_value(g, g, -shift);
  }
  shifted.fill_complete();
  DenseDirectSolver lu(shifted);

  EigenResult result;
  v.randomize(options.seed);
  v.scale(1.0 / v.norm2());
  tpetra::Vector<double> w(a.range_map());
  double mu = 0.0;
  for (int it = 0; it < options.max_iterations; ++it) {
    lu.solve(v, w);  // w = (A - shift I)^-1 v
    const double nrm = w.norm2();
    require<NumericalError>(nrm > 0.0, "inverse_iteration: breakdown");
    w.scale(1.0 / nrm);
    // Rayleigh quotient with the original operator.
    tpetra::Vector<double> aw(a.range_map());
    a.apply(w, aw);
    const double mu_new = w.dot(aw);
    v.update(1.0, w, 0.0);
    result.iterations = it + 1;
    if (std::abs(mu_new - mu) <=
        options.tolerance * std::max(1.0, std::abs(mu_new))) {
      mu = mu_new;
      result.converged = true;
      break;
    }
    mu = mu_new;
  }
  result.eigenvalues = {mu};
  return result;
}

std::vector<double> tridiag_eigenvalues(std::vector<double> d,
                                        std::vector<double> e) {
  // Implicit QL with Wilkinson shifts (Numerical-Recipes-style tqli,
  // eigenvalues only). d has n entries; e has n-1 (padded to n internally).
  const std::size_t n = d.size();
  require(e.size() + 1 == n || (n == 0 && e.empty()),
          "tridiag_eigenvalues: offdiagonal must have n-1 entries");
  if (n == 0) return {};
  e.push_back(0.0);
  for (std::size_t l = 0; l < n; ++l) {
    int iter = 0;
    std::size_t m;
    do {
      for (m = l; m + 1 < n; ++m) {
        const double dd = std::abs(d[m]) + std::abs(d[m + 1]);
        if (std::abs(e[m]) <= 1e-15 * dd) break;
      }
      if (m != l) {
        require<NumericalError>(iter++ < 50,
                                "tridiag_eigenvalues: too many QL iterations");
        double g = (d[l + 1] - d[l]) / (2.0 * e[l]);
        double r = std::hypot(g, 1.0);
        g = d[m] - d[l] + e[l] / (g + (g >= 0 ? std::abs(r) : -std::abs(r)));
        double s = 1.0, c = 1.0, p = 0.0;
        bool underflow_restart = false;
        for (std::size_t i = m; i-- > l;) {
          double f = s * e[i];
          const double b = c * e[i];
          r = std::hypot(f, g);
          e[i + 1] = r;
          if (r == 0.0) {
            // A rotation annihilated early; deflate and restart this sweep.
            d[i + 1] -= p;
            e[m] = 0.0;
            underflow_restart = true;
            break;
          }
          s = f / r;
          c = g / r;
          g = d[i + 1] - p;
          r = (d[i] - g) * s + 2.0 * c * b;
          p = s * r;
          d[i + 1] = g + p;
          g = c * r - b;
        }
        if (underflow_restart) continue;
        d[l] -= p;
        e[l] = g;
        e[m] = 0.0;
      }
    } while (m != l);
  }
  std::sort(d.begin(), d.end());
  return d;
}

EigenResult lanczos(const tpetra::Operator<double>& a, int nev,
                    const EigenOptions& options, int subspace) {
  require(nev >= 1, "lanczos: need at least one requested eigenvalue");
  const auto n = a.domain_map().num_global();
  int m = subspace > 0 ? subspace : nev * 4 + 20;
  m = static_cast<int>(std::min<std::int64_t>(m, n));
  require(m >= nev, "lanczos: subspace smaller than requested eigencount");

  EigenResult result;
  std::vector<tpetra::Vector<double>> v;
  v.reserve(static_cast<std::size_t>(m) + 1);
  v.emplace_back(a.domain_map());
  v[0].randomize(options.seed);
  v[0].scale(1.0 / v[0].norm2());

  std::vector<double> alpha, beta;
  tpetra::Vector<double> w(a.range_map());
  for (int j = 0; j < m; ++j) {
    a.apply(v[static_cast<std::size_t>(j)], w);
    if (j > 0) {
      w.update(-beta.back(), v[static_cast<std::size_t>(j) - 1], 1.0);
    }
    const double aj = w.dot(v[static_cast<std::size_t>(j)]);
    alpha.push_back(aj);
    w.update(-aj, v[static_cast<std::size_t>(j)], 1.0);
    // Full reorthogonalization (twice is enough).
    for (int pass = 0; pass < 2; ++pass) {
      for (int i = 0; i <= j; ++i) {
        const double proj = w.dot(v[static_cast<std::size_t>(i)]);
        w.update(-proj, v[static_cast<std::size_t>(i)], 1.0);
      }
    }
    const double bj = w.norm2();
    result.iterations = j + 1;
    if (bj <= options.tolerance || j + 1 == m) {
      if (bj <= options.tolerance) result.converged = true;
      break;
    }
    beta.push_back(bj);
    v.emplace_back(a.domain_map());
    v.back().update(1.0 / bj, w, 0.0);
  }

  auto eigs = tridiag_eigenvalues(alpha, beta);  // ascending
  std::reverse(eigs.begin(), eigs.end());        // largest first
  if (static_cast<int>(eigs.size()) > nev) {
    eigs.resize(static_cast<std::size_t>(nev));
  }
  result.eigenvalues = std::move(eigs);
  // A full-size Krylov space is exact; a truncated one is Ritz-accurate,
  // which we still report as converged when the space was exhausted.
  if (result.iterations == m) result.converged = true;
  return result;
}

}  // namespace pyhpc::solvers
