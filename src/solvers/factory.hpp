// Parameter-driven solve facade — how PyTrilinos users actually configure
// AztecOO/Ifpack/ML: build a Teuchos ParameterList and hand it to the
// solver, rather than wiring objects manually.
//
//   ParameterList pl;
//   pl.set("solver", "cg");
//   pl.set("preconditioner", "amg");
//   pl.sublist("krylov").set("tolerance", 1e-10);
//   auto result = solvers::solve(a, b, x, pl);
#pragma once

#include <memory>

#include "precond/preconditioner.hpp"
#include "solvers/amesos.hpp"
#include "solvers/krylov.hpp"
#include "teuchos/parameter_list.hpp"

namespace pyhpc::solvers {

/// Builds a preconditioner from a parameter list:
///   "preconditioner": "none" | "jacobi" | "gauss-seidel" | "sor" | "ilu0"
///                   | "chebyshev" | "amg"
/// AMG options come from the "amg" sublist ("max levels", "coarse size",
/// "pre sweeps", "post sweeps", "jacobi omega", "prolongator damping").
std::unique_ptr<precond::Preconditioner> make_preconditioner(
    const precond::Matrix& a, const teuchos::ParameterList& params);

/// One-call solve driven entirely by parameters:
///   "solver": "cg" | "bicgstab" | "cgs" | "gmres" (iterative)
///           | "lapack" | "klu"                    (direct)
///   "preconditioner": as above (iterative solvers only)
///   "krylov" sublist: "tolerance", "max iterations", "gmres restart"
/// Direct solves report converged=true with zero iterations.
SolveResult solve(const precond::Matrix& a, const Vector& b, Vector& x,
                  const teuchos::ParameterList& params);

}  // namespace pyhpc::solvers
