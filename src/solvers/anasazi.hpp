// Eigensolvers (Anasazi analogue from Table I): power iteration, shifted
// inverse iteration (via the Amesos direct backends), and symmetric Lanczos
// with full reorthogonalization.
#pragma once

#include <vector>

#include "solvers/amesos.hpp"
#include "tpetra/operator.hpp"
#include "tpetra/vector.hpp"

namespace pyhpc::solvers {

struct EigenResult {
  bool converged = false;
  int iterations = 0;
  std::vector<double> eigenvalues;  // sorted descending by magnitude
};

struct EigenOptions {
  double tolerance = 1e-9;
  int max_iterations = 2000;
  std::uint64_t seed = 42;
};

/// Power iteration: the dominant eigenvalue (largest |lambda|) and its
/// eigenvector (returned in `v`). Collective.
EigenResult power_method(const tpetra::Operator<double>& a,
                         tpetra::Vector<double>& v,
                         const EigenOptions& options = {});

/// Shifted inverse iteration: the eigenvalue closest to `shift` (for
/// shift=0, the smallest-magnitude eigenvalue). Factors (A - shift I) once
/// with the dense direct backend.
EigenResult inverse_iteration(const tpetra::CrsMatrix<double>& a, double shift,
                              tpetra::Vector<double>& v,
                              const EigenOptions& options = {});

/// Symmetric Lanczos with full reorthogonalization: the `nev` extremal
/// eigenvalues (largest algebraic first) of a symmetric operator, using a
/// Krylov space of dimension `subspace` (defaults to min(n, 4*nev + 20)).
EigenResult lanczos(const tpetra::Operator<double>& a, int nev,
                    const EigenOptions& options = {}, int subspace = 0);

/// Eigenvalues of a symmetric tridiagonal matrix (diag d, offdiag e) by the
/// implicit QL algorithm; ascending order. Serial helper, exposed for tests.
std::vector<double> tridiag_eigenvalues(std::vector<double> d,
                                        std::vector<double> e);

}  // namespace pyhpc::solvers
