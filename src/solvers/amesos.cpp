#include "solvers/amesos.hpp"

#include <algorithm>
#include <cmath>

namespace pyhpc::solvers {

std::vector<MatrixTriple> gather_matrix_triples(const Matrix& a) {
  require<MapError>(a.is_fill_complete(),
                    "gather_matrix_triples: matrix not fill-complete");
  std::vector<MatrixTriple> mine;
  for (std::int32_t i = 0; i < a.num_local_rows(); ++i) {
    const std::int64_t g = a.row_map().local_to_global(i);
    for (const auto& [c, v] : a.get_global_row(g)) {
      mine.push_back(MatrixTriple{g, c, v});
    }
  }
  auto chunks =
      a.row_map().comm().allgatherv(std::span<const MatrixTriple>(mine));
  std::vector<MatrixTriple> all;
  for (const auto& chunk : chunks) {
    all.insert(all.end(), chunk.begin(), chunk.end());
  }
  return all;
}

DenseDirectSolver::DenseDirectSolver(const Matrix& a) : map_(a.row_map()) {
  const auto n = static_cast<std::size_t>(a.row_map().num_global());
  std::vector<double> dense(n * n, 0.0);
  for (const auto& t : gather_matrix_triples(a)) {
    dense[static_cast<std::size_t>(t.row) * n + static_cast<std::size_t>(t.col)] +=
        t.val;
  }
  lu_ = std::make_unique<util::DenseLU>(n, std::move(dense));
}

void DenseDirectSolver::solve(const DVector& b, DVector& x) const {
  auto bg = b.gather_global();
  auto xg = lu_->solve(bg);
  for (std::int32_t i = 0; i < map_.num_local(); ++i) {
    x[i] = xg[static_cast<std::size_t>(map_.local_to_global(i))];
  }
}

BandedDirectSolver::BandedDirectSolver(const Matrix& a) : map_(a.row_map()) {
  n_ = a.row_map().num_global();
  auto triples = gather_matrix_triples(a);
  for (const auto& t : triples) {
    band_ = std::max(band_, std::abs(t.row - t.col));
  }
  const std::int64_t width = 2 * band_ + 1;
  bands_.assign(static_cast<std::size_t>(n_ * width), 0.0);
  auto at = [&](std::int64_t i, std::int64_t j) -> double& {
    return bands_[static_cast<std::size_t>(i * width + (j - i + band_))];
  };
  for (const auto& t : triples) at(t.row, t.col) += t.val;

  // In-place banded LU without pivoting.
  for (std::int64_t k = 0; k < n_; ++k) {
    const double pivot = at(k, k);
    require<NumericalError>(pivot != 0.0,
                            "BandedDirectSolver: zero pivot (matrix needs "
                            "pivoting; use the dense backend)");
    const std::int64_t iend = std::min(n_ - 1, k + band_);
    for (std::int64_t i = k + 1; i <= iend; ++i) {
      const double lik = at(i, k) / pivot;
      at(i, k) = lik;
      const std::int64_t jend = std::min(n_ - 1, k + band_);
      for (std::int64_t j = k + 1; j <= jend; ++j) {
        at(i, j) -= lik * at(k, j);
      }
    }
  }
}

void BandedDirectSolver::solve(const DVector& b, DVector& x) const {
  auto y = b.gather_global();
  const std::int64_t width = 2 * band_ + 1;
  auto at = [&](std::int64_t i, std::int64_t j) -> double {
    return bands_[static_cast<std::size_t>(i * width + (j - i + band_))];
  };
  // Forward substitution (L has unit diagonal).
  for (std::int64_t i = 0; i < n_; ++i) {
    const std::int64_t jbeg = std::max<std::int64_t>(0, i - band_);
    for (std::int64_t j = jbeg; j < i; ++j) {
      y[static_cast<std::size_t>(i)] -= at(i, j) * y[static_cast<std::size_t>(j)];
    }
  }
  // Back substitution.
  for (std::int64_t i = n_ - 1; i >= 0; --i) {
    const std::int64_t jend = std::min(n_ - 1, i + band_);
    for (std::int64_t j = i + 1; j <= jend; ++j) {
      y[static_cast<std::size_t>(i)] -= at(i, j) * y[static_cast<std::size_t>(j)];
    }
    y[static_cast<std::size_t>(i)] /= at(i, i);
  }
  for (std::int32_t i = 0; i < map_.num_local(); ++i) {
    x[i] = y[static_cast<std::size_t>(map_.local_to_global(i))];
  }
}

std::unique_ptr<DirectSolver> create_direct_solver(const std::string& kind,
                                                   const Matrix& a) {
  if (kind == "lapack" || kind == "dense") {
    return std::make_unique<DenseDirectSolver>(a);
  }
  if (kind == "klu" || kind == "banded") {
    return std::make_unique<BandedDirectSolver>(a);
  }
  throw InvalidArgument("create_direct_solver: unknown backend '" + kind +
                        "'");
}

}  // namespace pyhpc::solvers
