// Setup-cached variant of the parameter-driven solve facade (DESIGN.md
// §10 "setup cache"). The expensive part of an iterative solve on a
// repeated problem structure is the preconditioner setup (ILU
// factorization, AMG hierarchy); `cached_solve` routes it through a
// structure-keyed SetupCache so the Nth solve on the same sparsity
// reuses the first solve's setup.
//
// Keying mixes the matrix's structure fingerprint with the
// preconditioner configuration (kind + amg sublist), never the values:
// a structure hit on fresh values reuses the first values' setup — a
// valid operator with a convergence-only effect (see precond/cached.hpp
// for the same trade on the direct adapters).
//
// The preconditioner builders are rank-local but the AMG hierarchy
// build is collective, so the cached_import lockstep rule applies: give
// every rank its own cache and identical request streams.
#pragma once

#include <memory>
#include <string>

#include "precond/preconditioner.hpp"
#include "solvers/factory.hpp"
#include "solvers/krylov.hpp"
#include "teuchos/parameter_list.hpp"
#include "tpetra/structure.hpp"
#include "util/setup_cache.hpp"
#include "util/string_util.hpp"

namespace pyhpc::solvers {

/// Cache key for (matrix structure, preconditioner configuration).
inline std::string precond_cache_key(const precond::Matrix& a,
                                     const teuchos::ParameterList& params) {
  util::Fingerprint fp;
  fp.mix(tpetra::structure_fingerprint(a));
  const std::string kind = params.get_string("preconditioner", "none");
  fp.mix_bytes(kind.data(), kind.size());
  if (kind == "amg" && params.is_sublist("amg")) {
    const auto& sub = params.sublist("amg");
    fp.mix(static_cast<std::uint64_t>(sub.get_int("max levels", 0)));
    fp.mix(static_cast<std::uint64_t>(sub.get_int("coarse size", 0)));
    fp.mix(static_cast<std::uint64_t>(sub.get_int("pre sweeps", 0)));
    fp.mix(static_cast<std::uint64_t>(sub.get_int("post sweeps", 0)));
    fp.mix(static_cast<std::uint64_t>(
        sub.get_double("jacobi omega", 0.0) * 1e9));
    fp.mix(static_cast<std::uint64_t>(
        sub.get_double("prolongator damping", 0.0) * 1e9));
  }
  return util::cat("precond:", fp.digest());
}

/// Builds (or fetches) the parameter-list preconditioner through `cache`.
/// Returns nullptr for "preconditioner" = "none", same as the uncached
/// `make_preconditioner`.
inline std::shared_ptr<precond::Preconditioner> cached_preconditioner(
    util::SetupCache& cache, const precond::Matrix& a,
    const teuchos::ParameterList& params) {
  if (params.get_string("preconditioner", "none") == "none") return nullptr;
  return cache.get_or_build<precond::Preconditioner>(
      precond_cache_key(a, params), [&] {
        return std::shared_ptr<precond::Preconditioner>(
            make_preconditioner(a, params));
      });
}

/// `solvers::solve` with the preconditioner setup routed through `cache`.
/// Direct solves ("lapack", "klu", ...) take no preconditioner and fall
/// through to the uncached facade unchanged.
inline SolveResult cached_solve(util::SetupCache& cache,
                                const precond::Matrix& a, const Vector& b,
                                Vector& x,
                                const teuchos::ParameterList& params) {
  const std::string solver = params.get_string("solver", "gmres");
  if (solver == "lapack" || solver == "klu" || solver == "dense" ||
      solver == "banded") {
    return solve(a, b, x, params);
  }
  KrylovOptions options;
  if (params.is_sublist("krylov")) {
    options = KrylovOptions::from_parameters(params.sublist("krylov"));
  }
  auto m = cached_preconditioner(cache, a, params);
  return create_solver(solver)(a, b, x, options, m.get());
}

}  // namespace pyhpc::solvers
