#include "solvers/krylov.hpp"

#include <cmath>

#include "obs/trace.hpp"
#include "util/string_util.hpp"

namespace pyhpc::solvers {

namespace {

// Applies the preconditioner, or copies when none is configured.
void precondition(const precond::Preconditioner* m, const Vector& r,
                  Vector& z) {
  if (m != nullptr) {
    m->apply(r, z);
  } else {
    z.update(1.0, r, 0.0);
  }
}

void record(SolveResult& result, const KrylovOptions& options, double rel,
            const char* residual_counter) {
  if (options.record_history) result.residual_history.push_back(rel);
  // One counter track per solver kind; Perfetto plots it as the
  // convergence curve.
  obs::counter(residual_counter, "solvers", rel);
}

// Wraps one solve call in a trace span; the destructor stamps the final
// iteration count / convergence outcome so every return path is covered.
struct SolveSpan {
  obs::Span span;
  const SolveResult& result;
  SolveSpan(const char* name, const SolveResult& r)
      : span(name, "solvers"), result(r) {}
  ~SolveSpan() {
    if (span.active()) {
      span.arg("iterations", static_cast<std::int64_t>(result.iterations));
      span.arg("converged",
               static_cast<std::int64_t>(result.converged ? 1 : 0));
      span.arg("tolerance", result.achieved_tolerance);
    }
  }
};

}  // namespace

std::string SolveResult::summary() const {
  return util::cat(converged ? "converged" : "NOT converged", " in ",
                   iterations, " iterations, ||r||/||b|| = ",
                   achieved_tolerance);
}

KrylovOptions KrylovOptions::from_parameters(const teuchos::ParameterList& pl) {
  KrylovOptions o;
  o.tolerance = pl.get_double("tolerance", o.tolerance);
  o.max_iterations = pl.get_int("max iterations", o.max_iterations);
  o.gmres_restart = pl.get_int("gmres restart", o.gmres_restart);
  return o;
}

SolveResult cg_solve(const Operator& a, const Vector& b, Vector& x,
                     const KrylovOptions& options,
                     const precond::Preconditioner* m) {
  SolveResult result;
  SolveSpan solve_span("cg", result);
  const double bnorm = b.norm2();
  if (bnorm == 0.0) {
    x.put_scalar(0.0);
    result.converged = true;
    return result;
  }

  Vector r(b.map());
  a.apply(x, r);
  r.update(1.0, b, -1.0);  // r = b - A x
  Vector z(b.map());
  precondition(m, r, z);
  Vector p(z.map());
  p.update(1.0, z, 0.0);
  Vector ap(b.map());

  double rz = r.dot(z);
  double rel = r.norm2() / bnorm;
  record(result, options, rel, "cg.residual");

  for (int it = 0; it < options.max_iterations && rel > options.tolerance;
       ++it) {
    a.apply(p, ap);
    const double pap = p.dot(ap);
    require<NumericalError>(pap > 0.0,
                            "CG: operator not positive definite (p'Ap <= 0)");
    const double alpha = rz / pap;
    x.update(alpha, p, 1.0);
    r.update(-alpha, ap, 1.0);
    precondition(m, r, z);
    const double rz_new = r.dot(z);
    const double beta = rz_new / rz;
    rz = rz_new;
    p.update(1.0, z, beta);
    rel = r.norm2() / bnorm;
    result.iterations = it + 1;
    record(result, options, rel, "cg.residual");
  }
  result.converged = rel <= options.tolerance;
  result.achieved_tolerance = rel;
  return result;
}

SolveResult bicgstab_solve(const Operator& a, const Vector& b, Vector& x,
                           const KrylovOptions& options,
                           const precond::Preconditioner* m) {
  SolveResult result;
  SolveSpan solve_span("bicgstab", result);
  const double bnorm = b.norm2();
  if (bnorm == 0.0) {
    x.put_scalar(0.0);
    result.converged = true;
    return result;
  }

  Vector r(b.map());
  a.apply(x, r);
  r.update(1.0, b, -1.0);
  Vector rhat(b.map());
  rhat.update(1.0, r, 0.0);  // fixed shadow residual
  Vector p(b.map()), v(b.map()), s(b.map()), t(b.map());
  Vector phat(b.map()), shat(b.map());

  double rho = 1.0, alpha = 1.0, omega = 1.0;
  double rel = r.norm2() / bnorm;
  record(result, options, rel, "bicgstab.residual");

  for (int it = 0; it < options.max_iterations && rel > options.tolerance;
       ++it) {
    const double rho_new = rhat.dot(r);
    require<NumericalError>(rho_new != 0.0, "BiCGStab: rho breakdown");
    if (it == 0) {
      p.update(1.0, r, 0.0);
    } else {
      const double beta = (rho_new / rho) * (alpha / omega);
      // p = r + beta (p - omega v)
      p.update(-omega, v, 1.0);
      p.scale(beta);
      p.update(1.0, r, 1.0);
    }
    rho = rho_new;
    precondition(m, p, phat);
    a.apply(phat, v);
    const double rhat_v = rhat.dot(v);
    require<NumericalError>(rhat_v != 0.0, "BiCGStab: rhat'v breakdown");
    alpha = rho / rhat_v;
    s.update(1.0, r, 0.0);
    s.update(-alpha, v, 1.0);
    if (s.norm2() / bnorm <= options.tolerance) {
      x.update(alpha, phat, 1.0);
      r.update(1.0, s, 0.0);
      rel = r.norm2() / bnorm;
      result.iterations = it + 1;
      record(result, options, rel, "bicgstab.residual");
      break;
    }
    precondition(m, s, shat);
    a.apply(shat, t);
    const double tt = t.dot(t);
    require<NumericalError>(tt != 0.0, "BiCGStab: t't breakdown");
    omega = t.dot(s) / tt;
    x.update(alpha, phat, 1.0);
    x.update(omega, shat, 1.0);
    r.update(1.0, s, 0.0);
    r.update(-omega, t, 1.0);
    rel = r.norm2() / bnorm;
    result.iterations = it + 1;
    record(result, options, rel, "bicgstab.residual");
    require<NumericalError>(omega != 0.0, "BiCGStab: omega breakdown");
  }
  result.converged = rel <= options.tolerance;
  result.achieved_tolerance = rel;
  return result;
}

SolveResult cgs_solve(const Operator& a, const Vector& b, Vector& x,
                      const KrylovOptions& options,
                      const precond::Preconditioner* m) {
  SolveResult result;
  SolveSpan solve_span("cgs", result);
  const double bnorm = b.norm2();
  if (bnorm == 0.0) {
    x.put_scalar(0.0);
    result.converged = true;
    return result;
  }

  Vector r(b.map());
  a.apply(x, r);
  r.update(1.0, b, -1.0);
  Vector rhat(b.map());
  rhat.update(1.0, r, 0.0);
  Vector p(b.map()), q(b.map()), u(b.map()), vhat(b.map()), qhat(b.map());
  Vector uq(b.map()), tmp(b.map());

  double rho = 1.0;
  double rel = r.norm2() / bnorm;
  record(result, options, rel, "cgs.residual");

  for (int it = 0; it < options.max_iterations && rel > options.tolerance;
       ++it) {
    const double rho_new = rhat.dot(r);
    require<NumericalError>(rho_new != 0.0, "CGS: rho breakdown");
    if (it == 0) {
      u.update(1.0, r, 0.0);
      p.update(1.0, u, 0.0);
    } else {
      const double beta = rho_new / rho;
      // u = r + beta q ; p = u + beta (q + beta p_old)
      u.update(1.0, r, 0.0);
      u.update(beta, q, 1.0);
      tmp.update(1.0, q, 0.0);
      tmp.update(beta, p, 1.0);
      p.update(1.0, u, 0.0);
      p.update(beta, tmp, 1.0);
    }
    rho = rho_new;
    precondition(m, p, vhat);
    a.apply(vhat, tmp);  // tmp = A M^-1 p
    const double sigma = rhat.dot(tmp);
    require<NumericalError>(sigma != 0.0, "CGS: sigma breakdown");
    const double alpha = rho / sigma;
    q.update(1.0, u, 0.0);
    q.update(-alpha, tmp, 1.0);  // q = u - alpha A vhat
    uq.update(1.0, u, 0.0);
    uq.update(1.0, q, 1.0);  // u + q
    precondition(m, uq, qhat);
    x.update(alpha, qhat, 1.0);
    a.apply(qhat, tmp);
    r.update(-alpha, tmp, 1.0);
    rel = r.norm2() / bnorm;
    result.iterations = it + 1;
    record(result, options, rel, "cgs.residual");
  }
  result.converged = rel <= options.tolerance;
  result.achieved_tolerance = rel;
  return result;
}

SolveResult gmres_solve(const Operator& a, const Vector& b, Vector& x,
                        const KrylovOptions& options,
                        const precond::Preconditioner* m) {
  SolveResult result;
  SolveSpan solve_span("gmres", result);
  const double bnorm = b.norm2();
  if (bnorm == 0.0) {
    x.put_scalar(0.0);
    result.converged = true;
    return result;
  }
  const int restart = std::max(1, options.gmres_restart);

  Vector r(b.map()), w(b.map()), z(b.map());
  double rel = 0.0;
  int total_it = 0;

  for (;;) {
    a.apply(x, r);
    r.update(1.0, b, -1.0);
    double beta = r.norm2();
    rel = beta / bnorm;
    if (total_it == 0) record(result, options, rel, "gmres.residual");
    if (rel <= options.tolerance || total_it >= options.max_iterations) break;

    // Arnoldi with modified Gram-Schmidt; right preconditioning
    // (solve A M^-1 (M x) = b).
    std::vector<Vector> v;
    v.reserve(static_cast<std::size_t>(restart) + 1);
    v.emplace_back(b.map());
    v[0].update(1.0 / beta, r, 0.0);

    // Hessenberg in column-major (restart+1) x restart, plus Givens.
    std::vector<std::vector<double>> h(
        static_cast<std::size_t>(restart),
        std::vector<double>(static_cast<std::size_t>(restart) + 1, 0.0));
    std::vector<double> cs(static_cast<std::size_t>(restart), 0.0);
    std::vector<double> sn(static_cast<std::size_t>(restart), 0.0);
    std::vector<double> g(static_cast<std::size_t>(restart) + 1, 0.0);
    g[0] = beta;

    int k = 0;
    for (; k < restart && total_it < options.max_iterations; ++k) {
      precondition(m, v[static_cast<std::size_t>(k)], z);
      a.apply(z, w);
      // Modified Gram-Schmidt.
      for (int i = 0; i <= k; ++i) {
        const double hik = w.dot(v[static_cast<std::size_t>(i)]);
        h[static_cast<std::size_t>(k)][static_cast<std::size_t>(i)] = hik;
        w.update(-hik, v[static_cast<std::size_t>(i)], 1.0);
      }
      const double hkk = w.norm2();
      h[static_cast<std::size_t>(k)][static_cast<std::size_t>(k) + 1] = hkk;

      // Apply accumulated Givens rotations to the new column.
      auto& col = h[static_cast<std::size_t>(k)];
      for (int i = 0; i < k; ++i) {
        const double t = cs[static_cast<std::size_t>(i)] * col[static_cast<std::size_t>(i)] +
                         sn[static_cast<std::size_t>(i)] * col[static_cast<std::size_t>(i) + 1];
        col[static_cast<std::size_t>(i) + 1] =
            -sn[static_cast<std::size_t>(i)] * col[static_cast<std::size_t>(i)] +
            cs[static_cast<std::size_t>(i)] * col[static_cast<std::size_t>(i) + 1];
        col[static_cast<std::size_t>(i)] = t;
      }
      // New rotation to annihilate the subdiagonal.
      const double denom = std::hypot(col[static_cast<std::size_t>(k)],
                                      col[static_cast<std::size_t>(k) + 1]);
      require<NumericalError>(denom != 0.0, "GMRES: Hessenberg breakdown");
      cs[static_cast<std::size_t>(k)] = col[static_cast<std::size_t>(k)] / denom;
      sn[static_cast<std::size_t>(k)] = col[static_cast<std::size_t>(k) + 1] / denom;
      col[static_cast<std::size_t>(k)] = denom;
      col[static_cast<std::size_t>(k) + 1] = 0.0;
      g[static_cast<std::size_t>(k) + 1] = -sn[static_cast<std::size_t>(k)] * g[static_cast<std::size_t>(k)];
      g[static_cast<std::size_t>(k)] = cs[static_cast<std::size_t>(k)] * g[static_cast<std::size_t>(k)];

      ++total_it;
      rel = std::abs(g[static_cast<std::size_t>(k) + 1]) / bnorm;
      result.iterations = total_it;
      record(result, options, rel, "gmres.residual");

      if (hkk == 0.0 || rel <= options.tolerance) {
        ++k;  // include this column in the update
        break;
      }
      v.emplace_back(b.map());
      v.back().update(1.0 / hkk, w, 0.0);
    }

    // Solve the k-by-k triangular system and update x.
    std::vector<double> y(static_cast<std::size_t>(k), 0.0);
    for (int i = k - 1; i >= 0; --i) {
      double acc = g[static_cast<std::size_t>(i)];
      for (int j = i + 1; j < k; ++j) {
        acc -= h[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] *
               y[static_cast<std::size_t>(j)];
      }
      y[static_cast<std::size_t>(i)] =
          acc / h[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)];
    }
    // x += M^-1 (V y)
    Vector vy(b.map(), 0.0);
    for (int i = 0; i < k; ++i) {
      vy.update(y[static_cast<std::size_t>(i)], v[static_cast<std::size_t>(i)],
                1.0);
    }
    precondition(m, vy, z);
    x.update(1.0, z, 1.0);

    if (rel <= options.tolerance || total_it >= options.max_iterations) break;
  }

  result.converged = rel <= options.tolerance;
  result.achieved_tolerance = rel;
  return result;
}

SolverFn create_solver(const std::string& kind) {
  if (kind == "cg") return cg_solve;
  if (kind == "bicgstab") return bicgstab_solve;
  if (kind == "cgs") return cgs_solve;
  if (kind == "gmres") return gmres_solve;
  throw InvalidArgument("create_solver: unknown solver '" + kind + "'");
}

}  // namespace pyhpc::solvers
