#include "solvers/factory.hpp"

#include "precond/amg.hpp"

namespace pyhpc::solvers {

std::unique_ptr<precond::Preconditioner> make_preconditioner(
    const precond::Matrix& a, const teuchos::ParameterList& params) {
  const std::string kind = params.get_string("preconditioner", "none");
  if (kind == "amg") {
    precond::AmgOptions options;
    if (params.is_sublist("amg")) {
      const auto& sub = params.sublist("amg");
      options.max_levels = sub.get_int("max levels", options.max_levels);
      options.coarse_size = sub.get_int("coarse size",
                                        static_cast<int>(options.coarse_size));
      options.pre_smooth_sweeps =
          sub.get_int("pre sweeps", options.pre_smooth_sweeps);
      options.post_smooth_sweeps =
          sub.get_int("post sweeps", options.post_smooth_sweeps);
      options.jacobi_omega =
          sub.get_double("jacobi omega", options.jacobi_omega);
      options.prolongator_damping =
          sub.get_double("prolongator damping", options.prolongator_damping);
    }
    return std::make_unique<precond::AmgPreconditioner>(a, options);
  }
  if (kind == "none") return nullptr;
  return precond::create_preconditioner(kind, a);
}

SolveResult solve(const precond::Matrix& a, const Vector& b, Vector& x,
                  const teuchos::ParameterList& params) {
  const std::string solver = params.get_string("solver", "gmres");

  if (solver == "lapack" || solver == "klu" || solver == "dense" ||
      solver == "banded") {
    auto direct = create_direct_solver(solver, a);
    direct->solve(b, x);
    SolveResult result;
    result.converged = true;
    // Report the actual achieved residual so callers can verify.
    Vector r(b.map());
    a.apply(x, r);
    r.update(1.0, b, -1.0);
    const double bnorm = b.norm2();
    result.achieved_tolerance = bnorm > 0.0 ? r.norm2() / bnorm : 0.0;
    return result;
  }

  KrylovOptions options;
  if (params.is_sublist("krylov")) {
    options = KrylovOptions::from_parameters(params.sublist("krylov"));
  }
  auto m = make_preconditioner(a, params);
  return create_solver(solver)(a, b, x, options, m.get());
}

}  // namespace pyhpc::solvers
