// Iterative Krylov-space linear solvers (AztecOO analogue from Table I):
// CG, BiCGStab, CGS, and restarted GMRES, each with optional right/left
// preconditioning through the precond::Preconditioner interface and a
// convergence history for the benches.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "precond/preconditioner.hpp"
#include "teuchos/parameter_list.hpp"
#include "tpetra/operator.hpp"
#include "tpetra/vector.hpp"

namespace pyhpc::solvers {

using Operator = tpetra::Operator<double>;
using Vector = tpetra::Vector<double>;
using LO = std::int32_t;

/// Outcome of an iterative solve.
struct SolveResult {
  bool converged = false;
  int iterations = 0;
  double achieved_tolerance = 0.0;  // final ||r|| / ||b||
  std::vector<double> residual_history;  // relative residual per iteration

  std::string summary() const;
};

struct KrylovOptions {
  double tolerance = 1e-8;  // on ||r|| / ||b||
  int max_iterations = 1000;
  int gmres_restart = 30;
  bool record_history = true;

  /// Reads "tolerance" (double), "max iterations" (int), "gmres restart"
  /// (int) from a Teuchos-style parameter list.
  static KrylovOptions from_parameters(const teuchos::ParameterList& pl);
};

/// Conjugate gradients; requires a symmetric positive definite operator and
/// (when given) an SPD preconditioner.
SolveResult cg_solve(const Operator& a, const Vector& b, Vector& x,
                     const KrylovOptions& options = {},
                     const precond::Preconditioner* m = nullptr);

/// BiCGStab for general nonsymmetric systems.
SolveResult bicgstab_solve(const Operator& a, const Vector& b, Vector& x,
                           const KrylovOptions& options = {},
                           const precond::Preconditioner* m = nullptr);

/// CGS (conjugate gradient squared) for nonsymmetric systems.
SolveResult cgs_solve(const Operator& a, const Vector& b, Vector& x,
                      const KrylovOptions& options = {},
                      const precond::Preconditioner* m = nullptr);

/// Restarted GMRES(m) with right preconditioning.
SolveResult gmres_solve(const Operator& a, const Vector& b, Vector& x,
                        const KrylovOptions& options = {},
                        const precond::Preconditioner* m = nullptr);

/// Factory keyed by name ("cg", "bicgstab", "cgs", "gmres") — the AztecOO
/// AZ_solver option analogue.
using SolverFn = std::function<SolveResult(const Operator&, const Vector&,
                                           Vector&, const KrylovOptions&,
                                           const precond::Preconditioner*)>;
SolverFn create_solver(const std::string& kind);

}  // namespace pyhpc::solvers
