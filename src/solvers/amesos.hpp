// Direct solvers behind a uniform interface (Amesos analogue from Table I:
// "Amesos — uniform interface to third party direct linear solvers").
//
// Like the real Amesos/KLU, the factorizations here are serial: the matrix
// is gathered (replicated) once at construction, factored on every rank,
// and each solve gathers the distributed RHS, solves locally, and keeps the
// owned slice. Two "third-party" backends are provided: a dense LU
// ("lapack") and a banded LU ("klu") that exploits bandwidth.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tpetra/crs_matrix.hpp"
#include "tpetra/vector.hpp"
#include "util/dense_lu.hpp"

namespace pyhpc::solvers {

using Matrix = tpetra::CrsMatrix<double>;
using DVector = tpetra::Vector<double>;

/// Uniform direct-solver interface.
class DirectSolver {
 public:
  virtual ~DirectSolver() = default;

  /// Solves A x = b (collective: gathers b, scatters nothing — every rank
  /// solves the replicated system and keeps its owned entries).
  virtual void solve(const DVector& b, DVector& x) const = 0;

  virtual std::string name() const = 0;
};

/// Dense gathered LU ("lapack" backend).
class DenseDirectSolver final : public DirectSolver {
 public:
  explicit DenseDirectSolver(const Matrix& a);
  void solve(const DVector& b, DVector& x) const override;
  std::string name() const override { return "dense-lu"; }

 private:
  tpetra::Map<> map_;
  std::unique_ptr<util::DenseLU> lu_;
};

/// Banded gathered LU without pivoting ("klu" stand-in) — requires a
/// diagonally dominant or SPD matrix; throws NumericalError on a zero
/// pivot. Storage is O(n * bandwidth).
class BandedDirectSolver final : public DirectSolver {
 public:
  explicit BandedDirectSolver(const Matrix& a);
  void solve(const DVector& b, DVector& x) const override;
  std::string name() const override { return "banded-lu"; }

  std::int64_t bandwidth() const { return band_; }

 private:
  tpetra::Map<> map_;
  std::int64_t n_ = 0;
  std::int64_t band_ = 0;  // half-bandwidth
  // Row-major band storage: row i holds columns [i-band, i+band] in
  // slots [0, 2*band].
  std::vector<double> bands_;
};

/// Factory keyed by backend name: "lapack" (dense) or "klu" (banded).
std::unique_ptr<DirectSolver> create_direct_solver(const std::string& kind,
                                                   const Matrix& a);

/// Gathers a distributed matrix into replicated (row, col, value) triples —
/// shared by the direct solvers and the AMG coarse level. Collective.
struct MatrixTriple {
  std::int64_t row;
  std::int64_t col;
  double val;
};
std::vector<MatrixTriple> gather_matrix_triples(const Matrix& a);

}  // namespace pyhpc::solvers
