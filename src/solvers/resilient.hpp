// Fault-tolerant solve driver: ULFM-style recovery wrapped around the
// Krylov solvers.
//
// resilient_solve() persists the operator and right-hand side into a
// CheckpointStore, then runs a checkpointing CG (or restarted GMRES). When
// a rank dies mid-solve, the survivors detect it (PeerKilledError from a
// collective-internal receive, or RecvTimeoutError when a dropped message
// ate the detection), revoke the communicator, agree on the dead set,
// shrink to a dense survivor communicator, rebalance the restored operator
// over it (Isorropia), restore the last complete checkpoint, and continue
// iterating. The dead rank's own RankKilledError propagates out so the
// runner contains it as a simulated crash.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "solvers/krylov.hpp"
#include "tpetra/crs_matrix.hpp"
#include "util/checkpoint.hpp"

namespace pyhpc::solvers {

using Matrix = tpetra::CrsMatrix<double>;

struct ResilientOptions {
  KrylovOptions krylov;
  /// Iterations between solver-state checkpoints (x, r, p, iteration, rz).
  int checkpoint_interval = 5;
  /// Recovery rounds before giving up (each round loses at least one rank,
  /// so the bound also guards against livelock).
  int max_recoveries = 8;
  /// "cg" (checkpointed recurrence, continued exactly) or "gmres"
  /// (restarted from the last checkpointed iterate).
  std::string solver = "cg";
  /// CheckpointStore key prefix, for running several solves in one store.
  std::string key = "resilient";
};

struct ResilientResult {
  SolveResult solve;             // outcome of the (last) solve attempt
  int recoveries = 0;            // shrink rounds survived
  int final_size = 0;            // communicator size at completion
  int final_rank = -1;           // this rank's id on the final communicator
  std::vector<double> x_global;  // gathered solution, global index order
};

/// Solves a x = b with rank-death recovery. Collective over the
/// communicator of a's row map (which must be contiguous, as must b's map).
/// `x0` is the initial guess. The store must be shared by all ranks of the
/// run (pass one instance captured by the SPMD body) and survives rank
/// death by construction. On a killed rank this throws RankKilledError;
/// survivors return the result computed on the shrunken communicator.
ResilientResult resilient_solve(util::CheckpointStore& store, const Matrix& a,
                                const Vector& b, const Vector& x0,
                                const ResilientOptions& options = {});

}  // namespace pyhpc::solvers
