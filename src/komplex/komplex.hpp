// Komplex analogue (Table I: "complex vectors and matrices via real Epetra
// objects"): complex-valued distributed linear algebra built from pairs of
// real objects, with complex solves through the equivalent real formulation
//   [ Ar  -Ai ] [xr]   [br]
//   [ Ai   Ar ] [xi] = [bi]
// assembled with interleaved unknowns (2g = real part, 2g+1 = imaginary
// part of global unknown g) to preserve locality.
#pragma once

#include <complex>

#include "solvers/krylov.hpp"
#include "tpetra/crs_matrix.hpp"
#include "tpetra/vector.hpp"

namespace pyhpc::komplex {

using Map = tpetra::Map<>;
using RealVector = tpetra::Vector<double>;
using RealMatrix = tpetra::CrsMatrix<double>;
using LO = std::int32_t;
using GO = std::int64_t;

/// A complex vector as two real vectors sharing one map.
class ComplexVector {
 public:
  explicit ComplexVector(const Map& map) : re_(map), im_(map) {}

  RealVector& real() { return re_; }
  const RealVector& real() const { return re_; }
  RealVector& imag() { return im_; }
  const RealVector& imag() const { return im_; }

  const Map& map() const { return re_.map(); }
  LO local_size() const { return re_.local_size(); }

  std::complex<double> get(LO lid) const { return {re_[lid], im_[lid]}; }
  void set(LO lid, std::complex<double> z) {
    re_[lid] = z.real();
    im_[lid] = z.imag();
  }

  /// Hermitian inner product conj(this) . other (collective).
  std::complex<double> dot(const ComplexVector& other) const {
    const double rr = re_.dot(other.re_);
    const double ii = im_.dot(other.im_);
    const double ri = re_.dot(other.im_);
    const double ir = im_.dot(other.re_);
    return {rr + ii, ri - ir};
  }

  double norm2() const {
    const double r = re_.norm2();
    const double i = im_.norm2();
    return std::sqrt(r * r + i * i);
  }

  /// this := alpha x + beta this (complex axpby, collective-free).
  void update(std::complex<double> alpha, const ComplexVector& x,
              std::complex<double> beta);

 private:
  RealVector re_;
  RealVector im_;
};

/// A complex operator A = Ar + i Ai with a complex matvec and an
/// equivalent-real-form solve.
class ComplexMatrix {
 public:
  /// Both parts must be fill-complete over the same row map. A zero
  /// imaginary part is expressed by an empty (fill-complete) matrix.
  ComplexMatrix(const RealMatrix& real_part, const RealMatrix& imag_part);

  const Map& row_map() const { return ar_.row_map(); }

  /// y := A x (complex, collective).
  void apply(const ComplexVector& x, ComplexVector& y) const;

  /// Solves A x = b through the equivalent real formulation with GMRES
  /// (collective). Returns the solver result of the real system.
  solvers::SolveResult solve(const ComplexVector& b, ComplexVector& x,
                             const solvers::KrylovOptions& options = {}) const;

  /// The assembled equivalent real matrix (size 2N), exposed for tests.
  const RealMatrix& equivalent_real_matrix() const { return *k_; }

 private:
  RealMatrix ar_;
  RealMatrix ai_;
  std::shared_ptr<RealMatrix> k_;       // equivalent real form
  std::shared_ptr<Map> interleaved_;    // its row map
};

}  // namespace pyhpc::komplex
