#include "komplex/komplex.hpp"

namespace pyhpc::komplex {

void ComplexVector::update(std::complex<double> alpha, const ComplexVector& x,
                           std::complex<double> beta) {
  for (LO i = 0; i < local_size(); ++i) {
    const std::complex<double> v =
        alpha * x.get(i) + beta * std::complex<double>(re_[i], im_[i]);
    re_[i] = v.real();
    im_[i] = v.imag();
  }
}

ComplexMatrix::ComplexMatrix(const RealMatrix& real_part,
                             const RealMatrix& imag_part)
    : ar_(real_part), ai_(imag_part) {
  require<MapError>(ar_.is_fill_complete() && ai_.is_fill_complete(),
                    "ComplexMatrix: both parts must be fill-complete");
  require<MapError>(ar_.row_map().is_same_as(ai_.row_map()),
                    "ComplexMatrix: real/imag row maps differ");
  // Interleaving 2g/2g+1 preserves ownership only when the base blocks are
  // contiguous.
  require<MapError>(ar_.row_map().is_contiguous(),
                    "ComplexMatrix: row map must be contiguous");

  // Equivalent real form over interleaved unknowns: rows [2lo, 2hi) stay on
  // the owner of [lo, hi), so the layout remains contiguous.
  auto& comm = ar_.row_map().comm();
  interleaved_ = std::make_shared<Map>(
      Map::from_local_sizes(comm, 2 * ar_.row_map().num_local()));
  k_ = std::make_shared<RealMatrix>(*interleaved_);

  for (LO i = 0; i < ar_.num_local_rows(); ++i) {
    const GO g = ar_.row_map().local_to_global(i);
    for (const auto& [c, v] : ar_.get_global_row(g)) {
      k_->insert_global_value(2 * g, 2 * c, v);
      k_->insert_global_value(2 * g + 1, 2 * c + 1, v);
    }
    for (const auto& [c, v] : ai_.get_global_row(g)) {
      k_->insert_global_value(2 * g, 2 * c + 1, -v);
      k_->insert_global_value(2 * g + 1, 2 * c, v);
    }
  }
  k_->fill_complete();
}

void ComplexMatrix::apply(const ComplexVector& x, ComplexVector& y) const {
  RealVector t1(ar_.range_map()), t2(ar_.range_map());
  // y_re = Ar x_re - Ai x_im ; y_im = Ar x_im + Ai x_re.
  ar_.apply(x.real(), t1);
  ai_.apply(x.imag(), t2);
  y.real().update(1.0, t1, 0.0);
  y.real().update(-1.0, t2, 1.0);
  ar_.apply(x.imag(), t1);
  ai_.apply(x.real(), t2);
  y.imag().update(1.0, t1, 0.0);
  y.imag().update(1.0, t2, 1.0);
}

solvers::SolveResult ComplexMatrix::solve(
    const ComplexVector& b, ComplexVector& x,
    const solvers::KrylovOptions& options) const {
  // Pack b and the initial guess into the interleaved layout.
  RealVector rb(*interleaved_), rx(*interleaved_);
  for (LO i = 0; i < b.local_size(); ++i) {
    rb[2 * i] = b.real()[i];
    rb[2 * i + 1] = b.imag()[i];
    rx[2 * i] = x.real()[i];
    rx[2 * i + 1] = x.imag()[i];
  }
  auto result = solvers::gmres_solve(*k_, rb, rx, options);
  for (LO i = 0; i < x.local_size(); ++i) {
    x.real()[i] = rx[2 * i];
    x.imag()[i] = rx[2 * i + 1];
  }
  return result;
}

}  // namespace pyhpc::komplex
