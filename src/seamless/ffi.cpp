#include "seamless/ffi.hpp"

#include <dlfcn.h>

namespace pyhpc::seamless {

CModule::~CModule() {
  if (handle_ != nullptr) ::dlclose(handle_);
}

CModule::CModule(CModule&& other) noexcept
    : name_(std::move(other.name_)),
      handle_(other.handle_),
      bindings_(std::move(other.bindings_)) {
  other.handle_ = nullptr;
}

CModule& CModule::operator=(CModule&& other) noexcept {
  if (this != &other) {
    if (handle_ != nullptr) ::dlclose(handle_);
    name_ = std::move(other.name_);
    handle_ = other.handle_;
    bindings_ = std::move(other.bindings_);
    other.handle_ = nullptr;
  }
  return *this;
}

CModule CModule::load_library(const std::string& short_name) {
  CModule module(short_name);
  // ctypes-style candidates: lib<name>.so then versioned fallbacks.
  const std::vector<std::string> candidates = {
      "lib" + short_name + ".so",
      "lib" + short_name + ".so.6",
      short_name,
  };
  for (const auto& candidate : candidates) {
    module.handle_ = ::dlopen(candidate.c_str(), RTLD_NOW | RTLD_LOCAL);
    if (module.handle_ != nullptr) return module;
  }
  throw RuntimeFault("CModule: cannot load library '" + short_name + "': " +
                     std::string(::dlerror()));
}

void* CModule::resolve_symbol(const std::string& symbol) const {
  require<RuntimeFault>(handle_ != nullptr,
                        "CModule: def_external needs a loaded library");
  ::dlerror();  // clear
  void* addr = ::dlsym(handle_, symbol.c_str());
  const char* err = ::dlerror();
  if (err != nullptr || addr == nullptr) {
    throw RuntimeFault("CModule: symbol '" + symbol + "' not found in lib" +
                       name_);
  }
  return addr;
}

std::vector<std::string> CModule::function_names() const {
  std::vector<std::string> out;
  out.reserve(bindings_.size());
  for (const auto& [k, v] : bindings_) out.push_back(k);
  return out;
}

std::size_t CModule::arity(const std::string& fn_name) const {
  auto it = bindings_.find(fn_name);
  require<RuntimeFault>(it != bindings_.end(),
                        "CModule '" + name_ + "' has no function '" + fn_name +
                            "'");
  return it->second.arity;
}

Value CModule::call(const std::string& fn_name,
                    std::span<const Value> args) const {
  auto it = bindings_.find(fn_name);
  require<RuntimeFault>(it != bindings_.end(),
                        "CModule '" + name_ + "' has no function '" + fn_name +
                            "'");
  return it->second.fn(args);
}

void CModule::install_into(Interpreter& interp) const {
  for (const auto& [fn_name, binding] : bindings_) {
    auto fn = binding.fn;
    interp.register_builtin(fn_name, [fn](std::span<const Value> args) {
      return fn(args);
    });
  }
}

void CModule::install_into(VirtualMachine& vm) const {
  for (const auto& [fn_name, binding] : bindings_) {
    auto fn = binding.fn;
    vm.register_builtin(fn_name, [fn](std::span<const Value> args) {
      return fn(args);
    });
  }
}

CModule CModule::math() {
  CModule m = load_library("m");
  // The functions math.h declares, bound through the live libm symbols —
  // "After instantiating the cmath class with a specific library, all of
  // the math library is available to use."
  m.def_external<double(double)>("sin");
  m.def_external<double(double)>("cos");
  m.def_external<double(double)>("tan");
  m.def_external<double(double)>("asin");
  m.def_external<double(double)>("acos");
  m.def_external<double(double)>("atan");
  m.def_external<double(double, double)>("atan2");
  m.def_external<double(double)>("exp");
  m.def_external<double(double)>("log");
  m.def_external<double(double)>("log2");
  m.def_external<double(double)>("log10");
  m.def_external<double(double)>("sqrt");
  m.def_external<double(double)>("cbrt");
  m.def_external<double(double, double)>("pow");
  m.def_external<double(double, double)>("fmod");
  m.def_external<double(double, double)>("hypot");
  m.def_external<double(double)>("floor");
  m.def_external<double(double)>("ceil");
  m.def_external<double(double)>("fabs");
  m.def_external<double(double)>("tgamma");
  m.def_external<double(double)>("erf");
  return m;
}

}  // namespace pyhpc::seamless
