// Engine: the Seamless facade tying the tiers together, plus the embed API.
//
// The tiers (DESIGN.md §2):
//   interpreted — boxed tree walking (the CPython stand-in);
//   vm          — boxed stack bytecode (CPython's architecture, leaner);
//   jit         — typed register code, unboxed (the LLVM stand-in).
//
// `run_jit` performs the @jit decorator's job: on first call it discovers
// parameter types from the arguments, compiles, and caches per signature;
// subsequent calls dispatch straight to compiled code.
//
// The embed API (seamless::numpy, §IV.D) is the inverse direction: MiniPy-
// defined algorithms callable from C++ "as if defined in that language
// originally" — `seamless::numpy::sum(arr)` works on `int arr[100]` and
// `std::vector<double>` exactly as in the paper's listing.
#pragma once

#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "seamless/bytecode.hpp"
#include "seamless/ffi.hpp"
#include "seamless/interpreter.hpp"
#include "seamless/jit.hpp"

namespace pyhpc::seamless {

class Engine {
 public:
  /// Parses the source and prepares all tiers.
  explicit Engine(const std::string& source);

  const Module& module() const { return module_; }
  Interpreter& interpreter() { return interp_; }
  VirtualMachine& vm() { return vm_; }

  /// Makes a CModule's functions callable from MiniPy in both boxed tiers.
  void bind(const CModule& module);

  Value run_interpreted(const std::string& name, std::vector<Value> args) const {
    return interp_.call(name, std::move(args));
  }

  Value run_vm(const std::string& name, std::vector<Value> args) const {
    return vm_.call(name, std::move(args));
  }

  /// @jit behaviour: type-discover from the arguments, compile once per
  /// signature, then run unboxed. Throws NotJittable for dynamic code.
  Value run_jit(const std::string& name, std::vector<Value> args);

  /// Decorator-driven dispatch, the paper's surface semantics: a function
  /// written with @jit runs through the JIT (falling back to the VM when
  /// the call leaves the typed subset — the "staged and incremental
  /// approach" of §IV.A); undecorated functions run interpreted, as in
  /// CPython.
  Value run(const std::string& name, std::vector<Value> args);

  /// Explicit-hint compilation (jit.compile(types=...)); cached.
  const JitFunction& jit(const std::string& name,
                         const std::vector<JitType>& param_types);

  /// Number of distinct (function, signature) pairs compiled so far.
  std::size_t jit_cache_size() const { return jit_cache_.size(); }

 private:
  Module module_;
  Interpreter interp_;
  VirtualMachine vm_;
  std::map<std::string, std::unique_ptr<JitFunction>> jit_cache_;
};

/// MiniPy algorithms exposed to C++ (§IV.D). Inputs may be any contiguous
/// numeric range: C arrays, std::vector, std::span; integers are converted
/// at the boundary, double data is used in place.
namespace numpy {

/// Sum of all elements (the paper's example).
double sum(std::span<const double> values);
double sum(std::span<const int> values);

/// Minimum / maximum / mean of all elements.
double min(std::span<const double> values);
double max(std::span<const double> values);
double mean(std::span<const double> values);

/// Dot product.
double dot(std::span<const double> a, std::span<const double> b);

// Range/array adapters so the paper's exact call shapes compile:
//   int arr[100]; seamless::numpy::sum(arr);
//   std::vector<double> darr(100); seamless::numpy::sum(darr);
template <class T, std::size_t N>
double sum(const T (&arr)[N]) {
  return sum(std::span<const T>(arr, N));
}
inline double sum(const std::vector<double>& v) {
  return sum(std::span<const double>(v));
}
inline double sum(const std::vector<int>& v) {
  return sum(std::span<const int>(v));
}
inline double min(const std::vector<double>& v) {
  return min(std::span<const double>(v));
}
inline double max(const std::vector<double>& v) {
  return max(std::span<const double>(v));
}
inline double mean(const std::vector<double>& v) {
  return mean(std::span<const double>(v));
}

/// The MiniPy source behind the embed functions (exposed for tests and to
/// make the point that this *is* Python-style code compiled for C++ use).
const std::string& source();

}  // namespace numpy

}  // namespace pyhpc::seamless
