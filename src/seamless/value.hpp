// Boxed runtime values for the MiniPy interpreter and bytecode VM — the
// stand-in for CPython's PyObject. Every value is a tagged variant; numeric
// operations go through dynamic dispatch with int->float promotion, which
// is exactly the overhead the Seamless JIT tier removes.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "seamless/ast.hpp"
#include "util/error.hpp"

namespace pyhpc::seamless {

class Value;

/// Python list: heterogeneous boxed items, reference semantics.
struct ListValue {
  std::vector<Value> items;
};

/// NumPy-style float64 buffer. Owns its storage unless constructed as a
/// view over external memory (the embed API's zero-copy path).
struct ArrayValue {
  std::vector<double> storage;
  double* data = nullptr;
  std::size_t size = 0;

  static std::shared_ptr<ArrayValue> owned(std::vector<double> values) {
    auto a = std::make_shared<ArrayValue>();
    a->storage = std::move(values);
    a->data = a->storage.data();
    a->size = a->storage.size();
    return a;
  }

  static std::shared_ptr<ArrayValue> view(double* ptr, std::size_t n) {
    auto a = std::make_shared<ArrayValue>();
    a->data = ptr;
    a->size = n;
    return a;
  }

  std::span<double> span() { return {data, size}; }
  std::span<const double> span() const { return {data, size}; }
};

class Value {
 public:
  using Storage =
      std::variant<std::monostate, bool, std::int64_t, double,
                   std::shared_ptr<std::string>, std::shared_ptr<ListValue>,
                   std::shared_ptr<ArrayValue>>;

  Value() = default;  // None
  static Value none() { return Value(); }
  static Value of(bool b) { return Value(Storage(b)); }
  static Value of(std::int64_t i) { return Value(Storage(i)); }
  static Value of(int i) { return Value(Storage(static_cast<std::int64_t>(i))); }
  static Value of(double d) { return Value(Storage(d)); }
  static Value of(std::string s) {
    return Value(Storage(std::make_shared<std::string>(std::move(s))));
  }
  static Value of(std::shared_ptr<ListValue> l) {
    return Value(Storage(std::move(l)));
  }
  static Value of(std::shared_ptr<ArrayValue> a) {
    return Value(Storage(std::move(a)));
  }

  bool is_none() const { return std::holds_alternative<std::monostate>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_int() const { return std::holds_alternative<std::int64_t>(v_); }
  bool is_float() const { return std::holds_alternative<double>(v_); }
  bool is_string() const {
    return std::holds_alternative<std::shared_ptr<std::string>>(v_);
  }
  bool is_list() const {
    return std::holds_alternative<std::shared_ptr<ListValue>>(v_);
  }
  bool is_array() const {
    return std::holds_alternative<std::shared_ptr<ArrayValue>>(v_);
  }
  bool is_numeric() const { return is_bool() || is_int() || is_float(); }

  bool as_bool() const { return std::get<bool>(v_); }
  std::int64_t as_int() const { return std::get<std::int64_t>(v_); }
  double as_float() const { return std::get<double>(v_); }
  const std::string& as_string() const {
    return *std::get<std::shared_ptr<std::string>>(v_);
  }
  const std::shared_ptr<ListValue>& as_list() const {
    return std::get<std::shared_ptr<ListValue>>(v_);
  }
  const std::shared_ptr<ArrayValue>& as_array() const {
    return std::get<std::shared_ptr<ArrayValue>>(v_);
  }

  /// Numeric coercion to double (bool/int/float); throws RuntimeFault.
  double to_double() const;
  /// Numeric coercion to int64 (bool/int; exact floats); throws.
  std::int64_t to_int() const;
  /// Python truthiness (None/0/0.0/empty are false).
  bool truthy() const;

  std::string type_name() const;
  std::string repr() const;

 private:
  explicit Value(Storage v) : v_(std::move(v)) {}
  Storage v_;
};

// ---- dynamic arithmetic (the "CPython" semantics) -------------------------

/// Applies a binary operator with Python numeric semantics (promotion,
/// true/floor division, comparisons yielding bool). Throws RuntimeFault on
/// unsupported operand types, division by zero, etc.
Value binary_op(BinOp op, const Value& lhs, const Value& rhs, int line);

Value unary_op(UnaryOp op, const Value& operand, int line);

/// v[index] for lists and arrays; negative indices wrap.
Value index_load(const Value& target, const Value& index, int line);

/// v[index] = value.
void index_store(const Value& target, const Value& index, const Value& value,
                 int line);

/// len(v) for strings, lists, arrays.
std::int64_t value_length(const Value& v, int line);

}  // namespace pyhpc::seamless
