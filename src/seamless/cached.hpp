// Setup-cache adapter for compiled Seamless engines (DESIGN.md §10).
// Engine construction runs the whole front end (lex/parse/compile for all
// tiers); service clients resubmitting the same source text — the common
// case for a shared analysis function — hit the cache and share one
// immutable-module Engine per distinct program.
//
// The key is a fingerprint of the *source text*, so textually identical
// programs share and any edit (even whitespace) rebuilds — cheap, exact,
// and never stale. Callers needing independent interpreter state must
// construct their own Engine; the cached one is for shared compiled
// artifacts.
#pragma once

#include <memory>

#include "seamless/seamless.hpp"
#include "util/setup_cache.hpp"
#include "util/string_util.hpp"

namespace pyhpc::seamless {

inline std::uint64_t source_fingerprint(const std::string& source) {
  util::Fingerprint fp;
  fp.mix(source.size());
  fp.mix_bytes(source.data(), source.size());
  return fp.digest();
}

inline std::shared_ptr<Engine> cached_engine(util::SetupCache& cache,
                                             const std::string& source) {
  const std::string key = util::cat("seamless:", source_fingerprint(source));
  return cache.get_or_build<Engine>(
      key, [&] { return std::make_shared<Engine>(source); });
}

}  // namespace pyhpc::seamless
