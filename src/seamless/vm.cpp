// Bytecode virtual machine execution loop.
#include "seamless/bytecode.hpp"
#include "util/string_util.hpp"

namespace pyhpc::seamless {

namespace {
constexpr int kMaxDepth = 400;

[[noreturn]] void fault(int line, const std::string& msg) {
  throw RuntimeFault(util::cat("line ", line, ": ", msg));
}
}  // namespace

VirtualMachine::VirtualMachine(const Module& module) {
  for (const auto& fn : module.functions) {
    index_[fn.name] = static_cast<int>(functions_.size());
    functions_.push_back(CompiledFunction{});  // placeholder for index map
  }
  for (const auto& fn : module.functions) {
    functions_[static_cast<std::size_t>(index_[fn.name])] =
        compile_function(fn, index_);
  }
  install_default_builtins(builtins_);
}

void VirtualMachine::register_builtin(const std::string& name, BuiltinFn fn) {
  builtins_[name] = std::move(fn);
}

const CompiledFunction& VirtualMachine::compiled(
    const std::string& name) const {
  auto it = index_.find(name);
  require<RuntimeFault>(it != index_.end(),
                        "no function '" + name + "' in module");
  return functions_[static_cast<std::size_t>(it->second)];
}

Value VirtualMachine::call(const std::string& name,
                           std::vector<Value> args) const {
  const CompiledFunction& fn = compiled(name);
  if (static_cast<int>(args.size()) != fn.num_params) {
    throw RuntimeFault(util::cat(name, "() takes ", fn.num_params,
                                 " arguments (", args.size(), " given)"));
  }
  args.resize(static_cast<std::size_t>(fn.num_locals));
  return run(fn, std::move(args), 0);
}

Value VirtualMachine::run(const CompiledFunction& fn,
                          std::vector<Value> locals, int depth) const {
  if (depth > kMaxDepth) {
    throw RuntimeFault(fn.name + ": maximum recursion depth exceeded");
  }
  // Defined-ness tracking: parameters start defined, other slots do not.
  std::vector<char> defined(static_cast<std::size_t>(fn.num_locals), 0);
  for (int i = 0; i < fn.num_params; ++i) {
    defined[static_cast<std::size_t>(i)] = 1;
  }

  std::vector<Value> stack;
  stack.reserve(16);
  std::size_t pc = 0;
  while (pc < fn.code.size()) {
    const Instr& instr = fn.code[pc];
    switch (instr.op) {
      case OpCode::kLoadConst:
        stack.push_back(fn.consts[static_cast<std::size_t>(instr.a)]);
        ++pc;
        break;
      case OpCode::kLoadLocal: {
        const auto slot = static_cast<std::size_t>(instr.a);
        if (!defined[slot]) {
          fault(instr.line, "name '" + fn.local_names[slot] +
                                "' is not defined");
        }
        stack.push_back(locals[slot]);
        ++pc;
        break;
      }
      case OpCode::kStoreLocal: {
        const auto slot = static_cast<std::size_t>(instr.a);
        locals[slot] = std::move(stack.back());
        stack.pop_back();
        defined[slot] = 1;
        ++pc;
        break;
      }
      case OpCode::kBinary: {
        Value rhs = std::move(stack.back());
        stack.pop_back();
        Value lhs = std::move(stack.back());
        stack.pop_back();
        stack.push_back(
            binary_op(static_cast<BinOp>(instr.a), lhs, rhs, instr.line));
        ++pc;
        break;
      }
      case OpCode::kUnary: {
        Value v = std::move(stack.back());
        stack.pop_back();
        stack.push_back(
            unary_op(static_cast<UnaryOp>(instr.a), v, instr.line));
        ++pc;
        break;
      }
      case OpCode::kJump:
        pc = static_cast<std::size_t>(instr.jump);
        break;
      case OpCode::kPopJumpIfFalse: {
        const bool t = stack.back().truthy();
        stack.pop_back();
        pc = t ? pc + 1 : static_cast<std::size_t>(instr.jump);
        break;
      }
      case OpCode::kJumpIfFalseOrPop: {
        if (!stack.back().truthy()) {
          pc = static_cast<std::size_t>(instr.jump);
        } else {
          stack.pop_back();
          ++pc;
        }
        break;
      }
      case OpCode::kJumpIfTrueOrPop: {
        if (stack.back().truthy()) {
          pc = static_cast<std::size_t>(instr.jump);
        } else {
          stack.pop_back();
          ++pc;
        }
        break;
      }
      case OpCode::kPop:
        stack.pop_back();
        ++pc;
        break;
      case OpCode::kCall: {
        const CompiledFunction& callee =
            functions_[static_cast<std::size_t>(instr.a)];
        const auto nargs = static_cast<std::size_t>(instr.b);
        if (static_cast<int>(nargs) != callee.num_params) {
          fault(instr.line, util::cat(callee.name, "() takes ",
                                      callee.num_params, " arguments (",
                                      nargs, " given)"));
        }
        std::vector<Value> args(static_cast<std::size_t>(callee.num_locals));
        for (std::size_t i = 0; i < nargs; ++i) {
          args[nargs - 1 - i] = std::move(stack.back());
          stack.pop_back();
        }
        stack.push_back(run(callee, std::move(args), depth + 1));
        ++pc;
        break;
      }
      case OpCode::kCallNamed: {
        const std::string& name =
            fn.consts[static_cast<std::size_t>(instr.a)].as_string();
        auto it = builtins_.find(name);
        if (it == builtins_.end()) {
          fault(instr.line, "name '" + name + "' is not defined");
        }
        const auto nargs = static_cast<std::size_t>(instr.b);
        std::vector<Value> args(nargs);
        for (std::size_t i = 0; i < nargs; ++i) {
          args[nargs - 1 - i] = std::move(stack.back());
          stack.pop_back();
        }
        stack.push_back(it->second(args));
        ++pc;
        break;
      }
      case OpCode::kIndexLoad: {
        Value index = std::move(stack.back());
        stack.pop_back();
        Value target = std::move(stack.back());
        stack.pop_back();
        stack.push_back(index_load(target, index, instr.line));
        ++pc;
        break;
      }
      case OpCode::kIndexStore: {
        Value value = std::move(stack.back());
        stack.pop_back();
        Value index = std::move(stack.back());
        stack.pop_back();
        Value target = std::move(stack.back());
        stack.pop_back();
        index_store(target, index, value, instr.line);
        ++pc;
        break;
      }
      case OpCode::kForCheck: {
        const std::int64_t v = locals[static_cast<std::size_t>(instr.a)].to_int();
        const std::int64_t stop =
            locals[static_cast<std::size_t>(instr.b)].to_int();
        const std::int64_t step =
            locals[static_cast<std::size_t>(instr.c)].to_int();
        if (step == 0) fault(instr.line, "range() step must not be zero");
        const bool more = step > 0 ? v < stop : v > stop;
        pc = more ? pc + 1 : static_cast<std::size_t>(instr.jump);
        break;
      }
      case OpCode::kForIncr: {
        auto& v = locals[static_cast<std::size_t>(instr.a)];
        const std::int64_t step =
            locals[static_cast<std::size_t>(instr.c)].to_int();
        v = Value::of(v.to_int() + step);
        pc = static_cast<std::size_t>(instr.jump);
        break;
      }
      case OpCode::kReturnValue:
        return std::move(stack.back());
      case OpCode::kReturnNone:
        return Value::none();
      case OpCode::kBinaryLL: {
        const auto sa = static_cast<std::size_t>(instr.a);
        const auto sb = static_cast<std::size_t>(instr.b);
        if (!defined[sa] || !defined[sb]) {
          fault(instr.line,
                "name '" + fn.local_names[defined[sa] ? sb : sa] +
                    "' is not defined");
        }
        stack.push_back(binary_op(static_cast<BinOp>(instr.c), locals[sa],
                                  locals[sb], instr.line));
        ++pc;
        break;
      }
      case OpCode::kIndexLoadLL: {
        const auto sa = static_cast<std::size_t>(instr.a);
        const auto sb = static_cast<std::size_t>(instr.b);
        if (!defined[sa] || !defined[sb]) {
          fault(instr.line,
                "name '" + fn.local_names[defined[sa] ? sb : sa] +
                    "' is not defined");
        }
        stack.push_back(index_load(locals[sa], locals[sb], instr.line));
        ++pc;
        break;
      }
      case OpCode::kAugLocal: {
        const auto sa = static_cast<std::size_t>(instr.a);
        if (!defined[sa]) {
          fault(instr.line, "name '" + fn.local_names[sa] + "' is not defined");
        }
        Value rhs = std::move(stack.back());
        stack.pop_back();
        locals[sa] =
            binary_op(static_cast<BinOp>(instr.c), locals[sa], rhs, instr.line);
        ++pc;
        break;
      }
      case OpCode::kMovLocal: {
        const auto sa = static_cast<std::size_t>(instr.a);
        const auto sb = static_cast<std::size_t>(instr.b);
        if (!defined[sb]) {
          fault(instr.line, "name '" + fn.local_names[sb] + "' is not defined");
        }
        locals[sa] = locals[sb];
        defined[sa] = 1;
        ++pc;
        break;
      }
    }
  }
  return Value::none();
}

}  // namespace pyhpc::seamless
