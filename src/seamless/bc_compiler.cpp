// AST -> stack bytecode compiler.
#include <unordered_map>

#include "seamless/bytecode.hpp"
#include "util/string_util.hpp"

namespace pyhpc::seamless {

namespace {

class FunctionCompiler {
 public:
  FunctionCompiler(const FunctionDef& fn,
                   const std::map<std::string, int>& function_index)
      : fn_(fn), function_index_(function_index) {
    out_.name = fn.name;
    out_.num_params = static_cast<int>(fn.params.size());
    for (const auto& p : fn.params) (void)slot_of(p);
  }

  CompiledFunction compile() {
    compile_block(fn_.body);
    emit(OpCode::kReturnNone, fn_.line);
    out_.num_locals = static_cast<int>(slots_.size());
    return std::move(out_);
  }

 private:
  int slot_of(const std::string& name) {
    auto it = slots_.find(name);
    if (it != slots_.end()) return it->second;
    const int slot = static_cast<int>(slots_.size());
    slots_[name] = slot;
    out_.local_names.push_back(name);
    return slot;
  }

  int add_const(Value v) {
    out_.consts.push_back(std::move(v));
    return static_cast<int>(out_.consts.size()) - 1;
  }

  std::size_t emit(OpCode op, int line, std::int32_t a = 0, std::int32_t b = 0,
                   std::int32_t c = 0) {
    Instr instr;
    instr.op = op;
    instr.a = a;
    instr.b = b;
    instr.c = c;
    instr.line = line;
    out_.code.push_back(instr);
    return out_.code.size() - 1;
  }

  void patch_jump(std::size_t at) {
    out_.code[at].jump = static_cast<std::int32_t>(out_.code.size());
  }

  // ---- statements -------------------------------------------------------

  void compile_block(const Block& block) {
    for (const auto& stmt : block) compile_stmt(*stmt);
  }

  void compile_stmt(const Stmt& stmt) {
    switch (stmt.kind) {
      case StmtKind::kExpr:
        compile_expr(*stmt.value);
        emit(OpCode::kPop, stmt.line);
        return;
      case StmtKind::kAssign:
        compile_expr(*stmt.value);
        emit(OpCode::kStoreLocal, stmt.line, slot_of(stmt.name));
        return;
      case StmtKind::kAugAssign: {
        const int slot = slot_of(stmt.name);
        emit(OpCode::kLoadLocal, stmt.line, slot);
        compile_expr(*stmt.value);
        emit(OpCode::kBinary, stmt.line, static_cast<int>(stmt.bin_op));
        emit(OpCode::kStoreLocal, stmt.line, slot);
        return;
      }
      case StmtKind::kIndexAssign: {
        compile_expr(*stmt.target);
        compile_expr(*stmt.index);
        if (stmt.augmented) {
          // target index target[index] -> recompute load cheaply:
          compile_expr(*stmt.target);
          compile_expr(*stmt.index);
          emit(OpCode::kIndexLoad, stmt.line);
          compile_expr(*stmt.value);
          emit(OpCode::kBinary, stmt.line, static_cast<int>(stmt.bin_op));
        } else {
          compile_expr(*stmt.value);
        }
        emit(OpCode::kIndexStore, stmt.line);
        return;
      }
      case StmtKind::kIf: {
        std::vector<std::size_t> end_jumps;
        for (std::size_t i = 0; i < stmt.conditions.size(); ++i) {
          compile_expr(*stmt.conditions[i]);
          const std::size_t skip = emit(OpCode::kPopJumpIfFalse, stmt.line);
          compile_block(stmt.arms[i]);
          end_jumps.push_back(emit(OpCode::kJump, stmt.line));
          patch_jump(skip);
        }
        if (!stmt.orelse.empty()) compile_block(stmt.orelse);
        for (auto j : end_jumps) patch_jump(j);
        return;
      }
      case StmtKind::kWhile: {
        const auto head = static_cast<std::int32_t>(out_.code.size());
        compile_expr(*stmt.value);
        const std::size_t exit = emit(OpCode::kPopJumpIfFalse, stmt.line);
        loop_stack_.push_back(LoopInfo{head, {}, {}});
        compile_block(stmt.body);
        const std::size_t back = emit(OpCode::kJump, stmt.line);
        out_.code[back].jump = head;
        patch_jump(exit);
        for (auto b : loop_stack_.back().break_jumps) patch_jump(b);
        loop_stack_.pop_back();
        return;
      }
      case StmtKind::kForRange: {
        // A hidden iteration counter keeps range() semantics even when the
        // body reassigns the loop variable (matching the interpreter).
        const int var = slot_of(stmt.name);
        const int iter = slot_of("$iter" + std::to_string(hidden_++));
        const int stop = slot_of("$stop" + std::to_string(hidden_++));
        const int step = slot_of("$step" + std::to_string(hidden_++));
        if (stmt.start != nullptr) {
          compile_expr(*stmt.start);
        } else {
          emit(OpCode::kLoadConst, stmt.line, add_const(Value::of(0)));
        }
        emit(OpCode::kStoreLocal, stmt.line, iter);
        compile_expr(*stmt.stop);
        emit(OpCode::kStoreLocal, stmt.line, stop);
        if (stmt.step != nullptr) {
          compile_expr(*stmt.step);
        } else {
          emit(OpCode::kLoadConst, stmt.line, add_const(Value::of(1)));
        }
        emit(OpCode::kStoreLocal, stmt.line, step);

        const auto head = static_cast<std::int32_t>(out_.code.size());
        const std::size_t check =
            emit(OpCode::kForCheck, stmt.line, iter, stop, step);
        emit(OpCode::kLoadLocal, stmt.line, iter);
        emit(OpCode::kStoreLocal, stmt.line, var);
        loop_stack_.push_back(LoopInfo{head, {}, {}});
        compile_block(stmt.body);
        const std::size_t incr =
            emit(OpCode::kForIncr, stmt.line, iter, 0, step);
        out_.code[incr].jump = head;
        patch_jump(check);
        for (auto b : loop_stack_.back().break_jumps) patch_jump(b);
        // continue jumps go to the increment.
        for (auto cjump : loop_stack_.back().continue_jumps) {
          out_.code[cjump].jump = static_cast<std::int32_t>(incr);
        }
        loop_stack_.pop_back();
        return;
      }
      case StmtKind::kReturn:
        if (stmt.value != nullptr) {
          compile_expr(*stmt.value);
          emit(OpCode::kReturnValue, stmt.line);
        } else {
          emit(OpCode::kReturnNone, stmt.line);
        }
        return;
      case StmtKind::kBreak: {
        require<CompileError>(!loop_stack_.empty(),
                              "'break' outside of a loop");
        loop_stack_.back().break_jumps.push_back(
            emit(OpCode::kJump, stmt.line));
        return;
      }
      case StmtKind::kContinue: {
        require<CompileError>(!loop_stack_.empty(),
                              "'continue' outside of a loop");
        // While loops continue at the head; for loops at the increment
        // (patched when the loop closes).
        const std::size_t j = emit(OpCode::kJump, stmt.line);
        loop_stack_.back().continue_jumps.push_back(j);
        out_.code[j].jump = loop_stack_.back().head;  // default: while head
        return;
      }
      case StmtKind::kPass:
        return;
    }
    throw CompileError("internal: unhandled statement kind");
  }

  // ---- expressions ------------------------------------------------------

  void compile_expr(const Expr& expr) {
    switch (expr.kind) {
      case ExprKind::kIntLit:
        emit(OpCode::kLoadConst, expr.line, add_const(Value::of(expr.int_value)));
        return;
      case ExprKind::kFloatLit:
        emit(OpCode::kLoadConst, expr.line,
             add_const(Value::of(expr.float_value)));
        return;
      case ExprKind::kBoolLit:
        emit(OpCode::kLoadConst, expr.line,
             add_const(Value::of(expr.bool_value)));
        return;
      case ExprKind::kNoneLit:
        emit(OpCode::kLoadConst, expr.line, add_const(Value::none()));
        return;
      case ExprKind::kStringLit:
        emit(OpCode::kLoadConst, expr.line, add_const(Value::of(expr.str_value)));
        return;
      case ExprKind::kName:
        emit(OpCode::kLoadLocal, expr.line, slot_of(expr.str_value));
        return;
      case ExprKind::kUnary:
        compile_expr(*expr.lhs);
        emit(OpCode::kUnary, expr.line, static_cast<int>(expr.unary_op));
        return;
      case ExprKind::kBinary:
        compile_expr(*expr.lhs);
        compile_expr(*expr.rhs);
        emit(OpCode::kBinary, expr.line, static_cast<int>(expr.bin_op));
        return;
      case ExprKind::kBoolOp: {
        compile_expr(*expr.lhs);
        const std::size_t shortcut = emit(
            expr.is_and ? OpCode::kJumpIfFalseOrPop : OpCode::kJumpIfTrueOrPop,
            expr.line);
        compile_expr(*expr.rhs);
        patch_jump(shortcut);
        return;
      }
      case ExprKind::kCall: {
        for (const auto& arg : expr.args) compile_expr(*arg);
        auto it = function_index_.find(expr.str_value);
        if (it != function_index_.end()) {
          emit(OpCode::kCall, expr.line, it->second,
               static_cast<int>(expr.args.size()));
        } else {
          emit(OpCode::kCallNamed, expr.line,
               add_const(Value::of(expr.str_value)),
               static_cast<int>(expr.args.size()));
        }
        return;
      }
      case ExprKind::kIndex:
        compile_expr(*expr.lhs);
        compile_expr(*expr.rhs);
        emit(OpCode::kIndexLoad, expr.line);
        return;
    }
    throw CompileError("internal: unhandled expression kind");
  }

  struct LoopInfo {
    std::int32_t head;
    std::vector<std::size_t> break_jumps;
    std::vector<std::size_t> continue_jumps;
  };

  const FunctionDef& fn_;
  const std::map<std::string, int>& function_index_;
  CompiledFunction out_;
  std::unordered_map<std::string, int> slots_;
  std::vector<LoopInfo> loop_stack_;
  int hidden_ = 0;
};

}  // namespace

CompiledFunction compile_function(
    const FunctionDef& fn, const std::map<std::string, int>& function_index) {
  CompiledFunction out = FunctionCompiler(fn, function_index).compile();
  peephole_optimize(out);
  return out;
}

// Rewrites three hot windows into superinstructions:
//   LoadLocal a; LoadLocal b; Binary op  -> BinaryLL(a, b, op)
//   LoadLocal a; LoadLocal b; IndexLoad  -> IndexLoadLL(a, b)
//   LoadLocal b; StoreLocal a            -> MovLocal(a, b)
// A window is only fused when no jump lands on its interior instructions;
// all jump targets are remapped afterwards.
void peephole_optimize(CompiledFunction& fn) {
  const auto& code = fn.code;
  std::vector<char> is_target(code.size() + 1, 0);
  for (const auto& instr : code) {
    if (instr.jump >= 0) is_target[static_cast<std::size_t>(instr.jump)] = 1;
  }

  std::vector<Instr> out;
  out.reserve(code.size());
  // old index -> new index (size+1 for end-of-code jump targets).
  std::vector<std::int32_t> remap(code.size() + 1, 0);

  std::size_t i = 0;
  while (i < code.size()) {
    remap[i] = static_cast<std::int32_t>(out.size());
    const bool i1_free = i + 1 < code.size() && !is_target[i + 1];
    const bool i2_free = i + 2 < code.size() && !is_target[i + 2];
    if (code[i].op == OpCode::kLoadLocal && i1_free && i2_free &&
        code[i + 1].op == OpCode::kLoadLocal &&
        (code[i + 2].op == OpCode::kBinary ||
         code[i + 2].op == OpCode::kIndexLoad)) {
      Instr fused;
      fused.a = code[i].a;
      fused.b = code[i + 1].a;
      fused.line = code[i].line;
      if (code[i + 2].op == OpCode::kBinary) {
        fused.op = OpCode::kBinaryLL;
        fused.c = code[i + 2].a;  // BinOp
      } else {
        fused.op = OpCode::kIndexLoadLL;
      }
      remap[i + 1] = static_cast<std::int32_t>(out.size());
      remap[i + 2] = static_cast<std::int32_t>(out.size());
      out.push_back(fused);
      i += 3;
      continue;
    }
    if (code[i].op == OpCode::kLoadLocal && i1_free &&
        code[i + 1].op == OpCode::kStoreLocal) {
      Instr fused;
      fused.op = OpCode::kMovLocal;
      fused.a = code[i + 1].a;
      fused.b = code[i].a;
      fused.line = code[i].line;
      remap[i + 1] = static_cast<std::int32_t>(out.size());
      out.push_back(fused);
      i += 2;
      continue;
    }
    out.push_back(code[i]);
    ++i;
  }
  remap[code.size()] = static_cast<std::int32_t>(out.size());

  for (auto& instr : out) {
    if (instr.jump >= 0) {
      instr.jump = remap[static_cast<std::size_t>(instr.jump)];
    }
  }
  fn.code = std::move(out);

  // Second window: LoadLocal r; <push>; Binary op; StoreLocal r
  //             -> <push>; AugLocal(r, op)
  // where <push> is a single jump-free value producer. Covers the augmented
  // assignments that dominate numeric loops (res += it[i]).
  const auto& code2 = fn.code;
  std::vector<char> target2(code2.size() + 1, 0);
  for (const auto& instr : code2) {
    if (instr.jump >= 0) target2[static_cast<std::size_t>(instr.jump)] = 1;
  }
  auto is_pure_push = [](OpCode op) {
    return op == OpCode::kLoadConst || op == OpCode::kLoadLocal ||
           op == OpCode::kBinaryLL || op == OpCode::kIndexLoadLL;
  };
  std::vector<Instr> out2;
  out2.reserve(code2.size());
  std::vector<std::int32_t> remap2(code2.size() + 1, 0);
  std::size_t j = 0;
  while (j < code2.size()) {
    remap2[j] = static_cast<std::int32_t>(out2.size());
    const bool free123 = j + 3 < code2.size() && !target2[j + 1] &&
                         !target2[j + 2] && !target2[j + 3];
    if (free123 && code2[j].op == OpCode::kLoadLocal &&
        is_pure_push(code2[j + 1].op) && code2[j + 2].op == OpCode::kBinary &&
        code2[j + 3].op == OpCode::kStoreLocal &&
        code2[j + 3].a == code2[j].a) {
      remap2[j + 1] = static_cast<std::int32_t>(out2.size());
      out2.push_back(code2[j + 1]);
      Instr aug;
      aug.op = OpCode::kAugLocal;
      aug.a = code2[j].a;
      aug.c = code2[j + 2].a;  // BinOp
      aug.line = code2[j].line;
      remap2[j + 2] = static_cast<std::int32_t>(out2.size());
      remap2[j + 3] = static_cast<std::int32_t>(out2.size());
      out2.push_back(aug);
      j += 4;
      continue;
    }
    out2.push_back(code2[j]);
    ++j;
  }
  remap2[code2.size()] = static_cast<std::int32_t>(out2.size());
  for (auto& instr : out2) {
    if (instr.jump >= 0) {
      instr.jump = remap2[static_cast<std::size_t>(instr.jump)];
    }
  }
  fn.code = std::move(out2);
}

std::string CompiledFunction::disassemble() const {
  std::string out = name + " (" + std::to_string(num_params) + " params, " +
                    std::to_string(num_locals) + " locals)\n";
  static const char* names[] = {
      "LOAD_CONST",    "LOAD_LOCAL",   "STORE_LOCAL",
      "BINARY",        "UNARY",        "JUMP",
      "POP_JUMP_IF_FALSE", "JUMP_IF_FALSE_OR_POP", "JUMP_IF_TRUE_OR_POP",
      "POP",           "CALL",         "CALL_NAMED",
      "INDEX_LOAD",    "INDEX_STORE",  "FOR_CHECK",
      "FOR_INCR",      "RETURN_VALUE", "RETURN_NONE",
      "BINARY_LL",     "INDEX_LOAD_LL", "MOV_LOCAL",    "AUG_LOCAL"};
  for (std::size_t i = 0; i < code.size(); ++i) {
    const auto& instr = code[i];
    out += util::cat("  ", i, ": ", names[static_cast<int>(instr.op)], " a=",
                     instr.a, " b=", instr.b, " c=", instr.c);
    if (instr.jump >= 0) out += util::cat(" ->", instr.jump);
    out += "\n";
  }
  return out;
}

}  // namespace pyhpc::seamless
