#include "seamless/seamless.hpp"

#include <mutex>

#include "obs/trace.hpp"
#include "util/string_util.hpp"

namespace pyhpc::seamless {

Engine::Engine(const std::string& source)
    : module_(parse(source)), interp_(module_), vm_(module_) {}

void Engine::bind(const CModule& module) {
  module.install_into(interp_);
  module.install_into(vm_);
}

Value Engine::run(const std::string& name, std::vector<Value> args) {
  const FunctionDef& fn = module_.function(name);
  if (fn.has_decorator("jit")) {
    try {
      return run_jit(name, args);
    } catch (const NotJittable&) {
      return run_vm(name, std::move(args));
    }
  }
  return run_interpreted(name, std::move(args));
}

Value Engine::run_jit(const std::string& name, std::vector<Value> args) {
  std::vector<JitType> types;
  types.reserve(args.size());
  for (const auto& a : args) types.push_back(jit_type_of(a));
  const JitFunction& fn = jit(name, types);
  obs::Span span("jit.exec", "seamless");
  if (span.active()) span.arg("nargs", static_cast<std::int64_t>(args.size()));
  return fn.call(args);
}

const JitFunction& Engine::jit(const std::string& name,
                               const std::vector<JitType>& param_types) {
  std::string key = name;
  for (auto t : param_types) key += "/" + jit_type_name(t);
  auto it = jit_cache_.find(key);
  if (it == jit_cache_.end()) {
    obs::Span span("jit.compile", "seamless");
    if (span.active()) {
      span.arg("nparams", static_cast<std::int64_t>(param_types.size()));
    }
    it = jit_cache_
             .emplace(key, std::make_unique<JitFunction>(
                               jit_compile(module_, name, param_types)))
             .first;
  }
  return *it->second;
}

namespace numpy {

const std::string& source() {
  // The algorithm-specification side of Seamless: plain Python-subset code
  // that C++ callers use through the adapters below.
  static const std::string kSource = R"(
def sum(it):
    res = 0.0
    for i in range(len(it)):
        res += it[i]
    return res

def min_val(it):
    res = it[0]
    for i in range(1, len(it)):
        if it[i] < res:
            res = it[i]
    return res

def max_val(it):
    res = it[0]
    for i in range(1, len(it)):
        if it[i] > res:
            res = it[i]
    return res

def mean(it):
    return sum(it) / len(it)

def dot(a, b):
    res = 0.0
    for i in range(len(a)):
        res += a[i] * b[i]
    return res
)";
  return kSource;
}

namespace {

// Shared engine; compiled functions are cached inside it.
Engine& engine() {
  static Engine e(source());
  return e;
}
std::mutex& engine_mu() {
  static std::mutex mu;
  return mu;
}

double run_array_fn(const std::string& name, std::span<const double> values) {
  std::lock_guard<std::mutex> lock(engine_mu());
  const JitFunction& fn = engine().jit(name, {JitType::kArray});
  // The JIT reads through a span; it never writes for these functions, so
  // the const_cast is confined to this adapter.
  return fn.call_array_to_float(
      std::span<double>(const_cast<double*>(values.data()), values.size()));
}

}  // namespace

double sum(std::span<const double> values) {
  return run_array_fn("sum", values);
}

double sum(std::span<const int> values) {
  // Integer input: converted at the boundary, as any real binding layer
  // would (the paper calls sum on an int[100]).
  std::vector<double> converted(values.begin(), values.end());
  return run_array_fn("sum", converted);
}

double min(std::span<const double> values) {
  require<RuntimeFault>(!values.empty(), "numpy::min: empty input");
  return run_array_fn("min_val", values);
}

double max(std::span<const double> values) {
  require<RuntimeFault>(!values.empty(), "numpy::max: empty input");
  return run_array_fn("max_val", values);
}

double mean(std::span<const double> values) {
  require<RuntimeFault>(!values.empty(), "numpy::mean: empty input");
  // `mean` is MiniPy code calling MiniPy `sum` — compiled as one unit now
  // that the JIT supports module-function calls.
  return run_array_fn("mean", values);
}

double dot(std::span<const double> a, std::span<const double> b) {
  require<RuntimeFault>(a.size() == b.size(), "numpy::dot: size mismatch");
  std::lock_guard<std::mutex> lock(engine_mu());
  const JitFunction& fn =
      engine().jit("dot", {JitType::kArray, JitType::kArray});
  auto va = Value::of(ArrayValue::view(const_cast<double*>(a.data()), a.size()));
  auto vb = Value::of(ArrayValue::view(const_cast<double*>(b.data()), b.size()));
  const Value args[] = {va, vb};
  return fn.call(std::span<const Value>(args, 2)).to_double();
}

}  // namespace numpy

}  // namespace pyhpc::seamless
