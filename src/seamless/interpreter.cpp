#include "seamless/interpreter.hpp"

#include <cmath>

#include "util/string_util.hpp"

namespace pyhpc::seamless {

namespace {

constexpr int kMaxDepth = 400;

[[noreturn]] void fault(int line, const std::string& msg) {
  throw RuntimeFault(util::cat("line ", line, ": ", msg));
}

void expect_arity(const std::string& name, std::span<const Value> args,
                  std::size_t n) {
  if (args.size() != n) {
    throw RuntimeFault(util::cat(name, "() takes ", n, " arguments (",
                                 args.size(), " given)"));
  }
}

}  // namespace

void install_default_builtins(std::map<std::string, BuiltinFn>& builtins) {
  builtins["len"] = [](std::span<const Value> args) {
    expect_arity("len", args, 1);
    return Value::of(value_length(args[0], 0));
  };
  builtins["abs"] = [](std::span<const Value> args) {
    expect_arity("abs", args, 1);
    if (args[0].is_int() || args[0].is_bool()) {
      return Value::of(std::abs(args[0].to_int()));
    }
    return Value::of(std::abs(args[0].to_double()));
  };
  builtins["float"] = [](std::span<const Value> args) {
    expect_arity("float", args, 1);
    return Value::of(args[0].to_double());
  };
  builtins["int"] = [](std::span<const Value> args) {
    expect_arity("int", args, 1);
    return Value::of(args[0].to_int());
  };
  builtins["bool"] = [](std::span<const Value> args) {
    expect_arity("bool", args, 1);
    return Value::of(args[0].truthy());
  };
  builtins["sqrt"] = [](std::span<const Value> args) {
    expect_arity("sqrt", args, 1);
    return Value::of(std::sqrt(args[0].to_double()));
  };
  builtins["min"] = [](std::span<const Value> args) {
    expect_arity("min", args, 2);
    return Value::of(std::min(args[0].to_double(), args[1].to_double()));
  };
  builtins["max"] = [](std::span<const Value> args) {
    expect_arity("max", args, 2);
    return Value::of(std::max(args[0].to_double(), args[1].to_double()));
  };
  // list(n) -> list of n Nones; zeros(n) -> float64 array of n zeros.
  builtins["list"] = [](std::span<const Value> args) {
    expect_arity("list", args, 1);
    auto l = std::make_shared<ListValue>();
    l->items.assign(static_cast<std::size_t>(args[0].to_int()), Value::none());
    return Value::of(std::move(l));
  };
  builtins["zeros"] = [](std::span<const Value> args) {
    expect_arity("zeros", args, 1);
    return Value::of(ArrayValue::owned(
        std::vector<double>(static_cast<std::size_t>(args[0].to_int()), 0.0)));
  };
}

Interpreter::Interpreter(const Module& module) : module_(&module) {
  for (const auto& fn : module.functions) {
    functions_[fn.name] = &fn;
  }
  install_default_builtins(builtins_);
}

void Interpreter::register_builtin(const std::string& name, BuiltinFn fn) {
  builtins_[name] = std::move(fn);
}

bool Interpreter::has_function(const std::string& name) const {
  return functions_.count(name) > 0;
}

Value Interpreter::call(const std::string& name,
                        std::vector<Value> args) const {
  auto it = functions_.find(name);
  require<RuntimeFault>(it != functions_.end(),
                        "no function '" + name + "' in module");
  return call_function(*it->second, std::move(args), 0);
}

Value Interpreter::call_function(const FunctionDef& fn,
                                 std::vector<Value> args, int depth) const {
  if (depth > kMaxDepth) {
    fault(fn.line, "maximum recursion depth exceeded");
  }
  if (args.size() != fn.params.size()) {
    fault(fn.line, util::cat(fn.name, "() takes ", fn.params.size(),
                             " arguments (", args.size(), " given)"));
  }
  Env env;
  env.reserve(fn.params.size() * 2);
  for (std::size_t i = 0; i < args.size(); ++i) {
    env[fn.params[i]] = std::move(args[i]);
  }
  Value ret;
  exec_block(fn.body, env, ret, depth);
  return ret;
}

Interpreter::Flow Interpreter::exec_block(const Block& block, Env& env,
                                          Value& ret, int depth) const {
  for (const auto& stmt : block) {
    const Flow flow = exec_stmt(*stmt, env, ret, depth);
    if (flow != Flow::kNormal) return flow;
  }
  return Flow::kNormal;
}

Interpreter::Flow Interpreter::exec_stmt(const Stmt& stmt, Env& env,
                                         Value& ret, int depth) const {
  switch (stmt.kind) {
    case StmtKind::kExpr:
      (void)eval(*stmt.value, env, depth);
      return Flow::kNormal;
    case StmtKind::kAssign:
      env[stmt.name] = eval(*stmt.value, env, depth);
      return Flow::kNormal;
    case StmtKind::kAugAssign: {
      auto it = env.find(stmt.name);
      if (it == env.end()) {
        fault(stmt.line, "name '" + stmt.name + "' is not defined");
      }
      it->second = binary_op(stmt.bin_op, it->second,
                             eval(*stmt.value, env, depth), stmt.line);
      return Flow::kNormal;
    }
    case StmtKind::kIndexAssign: {
      const Value target = eval(*stmt.target, env, depth);
      const Value index = eval(*stmt.index, env, depth);
      Value value = eval(*stmt.value, env, depth);
      if (stmt.augmented) {
        value = binary_op(stmt.bin_op, index_load(target, index, stmt.line),
                          value, stmt.line);
      }
      index_store(target, index, value, stmt.line);
      return Flow::kNormal;
    }
    case StmtKind::kIf: {
      for (std::size_t i = 0; i < stmt.conditions.size(); ++i) {
        if (eval(*stmt.conditions[i], env, depth).truthy()) {
          return exec_block(stmt.arms[i], env, ret, depth);
        }
      }
      if (!stmt.orelse.empty()) return exec_block(stmt.orelse, env, ret, depth);
      return Flow::kNormal;
    }
    case StmtKind::kWhile: {
      while (eval(*stmt.value, env, depth).truthy()) {
        const Flow flow = exec_block(stmt.body, env, ret, depth);
        if (flow == Flow::kReturn) return flow;
        if (flow == Flow::kBreak) break;
      }
      return Flow::kNormal;
    }
    case StmtKind::kForRange: {
      const std::int64_t start =
          stmt.start ? eval(*stmt.start, env, depth).to_int() : 0;
      const std::int64_t stop = eval(*stmt.stop, env, depth).to_int();
      const std::int64_t step =
          stmt.step ? eval(*stmt.step, env, depth).to_int() : 1;
      if (step == 0) fault(stmt.line, "range() step must not be zero");
      for (std::int64_t i = start; step > 0 ? i < stop : i > stop; i += step) {
        env[stmt.name] = Value::of(i);
        const Flow flow = exec_block(stmt.body, env, ret, depth);
        if (flow == Flow::kReturn) return flow;
        if (flow == Flow::kBreak) break;
      }
      return Flow::kNormal;
    }
    case StmtKind::kReturn:
      ret = stmt.value ? eval(*stmt.value, env, depth) : Value::none();
      return Flow::kReturn;
    case StmtKind::kBreak:
      return Flow::kBreak;
    case StmtKind::kContinue:
      return Flow::kContinue;
    case StmtKind::kPass:
      return Flow::kNormal;
  }
  fault(stmt.line, "internal: unhandled statement kind");
}

Value Interpreter::eval(const Expr& expr, Env& env, int depth) const {
  switch (expr.kind) {
    case ExprKind::kIntLit:
      return Value::of(expr.int_value);
    case ExprKind::kFloatLit:
      return Value::of(expr.float_value);
    case ExprKind::kBoolLit:
      return Value::of(expr.bool_value);
    case ExprKind::kNoneLit:
      return Value::none();
    case ExprKind::kStringLit:
      return Value::of(expr.str_value);
    case ExprKind::kName: {
      auto it = env.find(expr.str_value);
      if (it == env.end()) {
        fault(expr.line, "name '" + expr.str_value + "' is not defined");
      }
      return it->second;
    }
    case ExprKind::kUnary:
      return unary_op(expr.unary_op, eval(*expr.lhs, env, depth), expr.line);
    case ExprKind::kBinary:
      return binary_op(expr.bin_op, eval(*expr.lhs, env, depth),
                       eval(*expr.rhs, env, depth), expr.line);
    case ExprKind::kBoolOp: {
      const Value lhs = eval(*expr.lhs, env, depth);
      if (expr.is_and) {
        if (!lhs.truthy()) return lhs;
        return eval(*expr.rhs, env, depth);
      }
      if (lhs.truthy()) return lhs;
      return eval(*expr.rhs, env, depth);
    }
    case ExprKind::kCall:
      return eval_call(expr, env, depth);
    case ExprKind::kIndex:
      return index_load(eval(*expr.lhs, env, depth),
                        eval(*expr.rhs, env, depth), expr.line);
  }
  fault(expr.line, "internal: unhandled expression kind");
}

Value Interpreter::eval_call(const Expr& expr, Env& env, int depth) const {
  std::vector<Value> args;
  args.reserve(expr.args.size());
  for (const auto& arg : expr.args) {
    args.push_back(eval(*arg, env, depth));
  }
  auto fit = functions_.find(expr.str_value);
  if (fit != functions_.end()) {
    return call_function(*fit->second, std::move(args), depth + 1);
  }
  auto bit = builtins_.find(expr.str_value);
  if (bit != builtins_.end()) {
    return bit->second(args);
  }
  fault(expr.line, "name '" + expr.str_value + "' is not defined");
}

}  // namespace pyhpc::seamless
