// Static compilation (§IV.B): "Rather than dynamically compiling Python
// source to machine code via a JIT compiler, Seamless also allows the
// static compilation of Python code to a library that can be used in
// conjunction with other languages. This feature is intentionally similar
// to the functionality of the Cython project [but] Seamless maintains
// Python language compatibility."
//
// emit_cpp() lowers the typed-register IR (the same IR the JIT executes)
// to a self-contained C++ translation unit exporting an extern "C"
// function, so the output can be compiled into a shared library and used
// from any language with a C FFI. compile_to_library() drives the system
// C++ compiler and returns the .so path — the `seamless` command-line
// utility's job (see tools/seamless_compile).
#pragma once

#include <string>

#include "seamless/jit.hpp"

namespace pyhpc::seamless {

/// C++ source for one typed function. The emitted signature maps MiniPy
/// types to C types: int -> int64_t, float -> double, bool -> int64_t,
/// array -> (double* data, int64_t size) pairs. The function is
/// extern "C" named `symbol`.
std::string emit_cpp(const JitFunction& fn, const std::string& symbol);

/// Convenience: compiles `module.function(name)` for `param_types` and
/// emits the C++ translation unit.
std::string emit_cpp(const Module& module, const std::string& name,
                     const std::vector<JitType>& param_types,
                     const std::string& symbol);

/// Drives the system C++ compiler: writes the source next to `lib_path`
/// and builds a shared library. Throws RuntimeFault when no compiler is
/// available or compilation fails. Returns `lib_path`.
std::string compile_to_library(const std::string& cpp_source,
                               const std::string& lib_path);

}  // namespace pyhpc::seamless
