// Seamless FFI (§IV.C): "trivially import external functions into Python".
//
// The paper's CModule reads a C header and exposes everything in a library:
//
//   class cmath(CModule):
//       Header = "math.h"
//   libm = cmath('m')
//   libm.atan2(1.0, 2.0)
//
// Offline we cannot ship a C parser, so the substitution (DESIGN.md §2)
// keeps the user-facing property — no per-call interface spec — two ways:
//  - def(name, fn): the signature is auto-discovered from the function
//    pointer's own type via template deduction;
//  - load_library("m") + def_external<double(double, double)>("atan2"):
//    ctypes-style dlopen/dlsym against the real system libm, with the
//    signature stated once at binding time.
// Either way the bound function is callable dynamically by name with boxed
// values, and install_into() injects the whole module into an interpreter
// or VM namespace.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "seamless/bytecode.hpp"
#include "seamless/interpreter.hpp"
#include "seamless/value.hpp"

namespace pyhpc::seamless {

namespace ffi_detail {

template <class T>
T from_value(const Value& v);
template <>
inline double from_value<double>(const Value& v) { return v.to_double(); }
template <>
inline float from_value<float>(const Value& v) {
  return static_cast<float>(v.to_double());
}
template <>
inline std::int64_t from_value<std::int64_t>(const Value& v) {
  return v.to_int();
}
template <>
inline int from_value<int>(const Value& v) {
  return static_cast<int>(v.to_int());
}
template <>
inline bool from_value<bool>(const Value& v) { return v.truthy(); }

inline Value to_value(double v) { return Value::of(v); }
inline Value to_value(float v) { return Value::of(static_cast<double>(v)); }
inline Value to_value(std::int64_t v) { return Value::of(v); }
inline Value to_value(int v) { return Value::of(v); }
inline Value to_value(bool v) { return Value::of(v); }

}  // namespace ffi_detail

/// A named collection of foreign functions callable with boxed values.
class CModule {
 public:
  CModule() = default;
  explicit CModule(std::string name) : name_(std::move(name)) {}
  ~CModule();

  CModule(CModule&&) noexcept;
  CModule& operator=(CModule&&) noexcept;
  CModule(const CModule&) = delete;
  CModule& operator=(const CModule&) = delete;

  const std::string& name() const { return name_; }

  /// Binds a statically-known C function; argument and return types are
  /// discovered from the pointer type — no interface spec at the call site.
  template <class R, class... A>
  void def(const std::string& fn_name, R (*fn)(A...)) {
    bindings_[fn_name] = Binding{
        sizeof...(A),
        [fn](std::span<const Value> args) -> Value {
          return call_impl(fn, args, std::index_sequence_for<A...>{});
        }};
  }

  /// ctypes-style dynamic loading: dlopen the system library with the
  /// given short name ("m" -> libm). Throws on failure.
  static CModule load_library(const std::string& short_name);

  /// Binds `symbol` from the loaded library with signature Sig
  /// (e.g. def_external<double(double, double)>("atan2")).
  template <class Sig>
  void def_external(const std::string& symbol);

  bool has(const std::string& fn_name) const {
    return bindings_.count(fn_name) > 0;
  }

  std::vector<std::string> function_names() const;

  std::size_t arity(const std::string& fn_name) const;

  /// Dynamic call by name with boxed arguments.
  Value call(const std::string& fn_name, std::span<const Value> args) const;

  /// Injects every bound function into an interpreter namespace
  /// ("all of the math library is available to use").
  void install_into(Interpreter& interp) const;
  void install_into(VirtualMachine& vm) const;

  /// The paper's running example: the C math library with its common
  /// functions pre-bound through dlopen/dlsym.
  static CModule math();

 private:
  struct Binding {
    std::size_t arity;
    std::function<Value(std::span<const Value>)> fn;
  };

  template <class R, class... A, std::size_t... I>
  static Value call_impl(R (*fn)(A...), std::span<const Value> args,
                         std::index_sequence<I...>) {
    require<RuntimeFault>(args.size() == sizeof...(A),
                          "foreign call: argument count mismatch");
    return ffi_detail::to_value(fn(ffi_detail::from_value<A>(args[I])...));
  }

  void* resolve_symbol(const std::string& symbol) const;

  std::string name_;
  void* handle_ = nullptr;  // dlopen handle (owned)
  std::map<std::string, Binding> bindings_;
};

template <class Sig>
struct SignatureBinder;

template <class R, class... A>
struct SignatureBinder<R(A...)> {
  static void bind(CModule& module, const std::string& symbol, void* addr) {
    using Fn = R (*)(A...);
    module.def(symbol, reinterpret_cast<Fn>(addr));
  }
};

template <class Sig>
void CModule::def_external(const std::string& symbol) {
  SignatureBinder<Sig>::bind(*this, symbol, resolve_symbol(symbol));
}

}  // namespace pyhpc::seamless
