// Tree-walking interpreter for MiniPy — the CPython stand-in (DESIGN.md §2):
// boxed values, per-node dynamic dispatch, name lookup through hash maps.
// This is the baseline tier every Seamless speedup claim is measured
// against.
#pragma once

#include <functional>
#include <map>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "seamless/ast.hpp"
#include "seamless/value.hpp"

namespace pyhpc::seamless {

/// Native function callable from MiniPy (builtins and FFI bindings).
using BuiltinFn = std::function<Value(std::span<const Value>)>;

class Interpreter {
 public:
  /// Binds the module's functions; installs the default builtins
  /// (len, abs, float, int, bool, min, max, sqrt, list, zeros).
  explicit Interpreter(const Module& module);

  /// Adds/overrides a native builtin (the FFI injection point).
  void register_builtin(const std::string& name, BuiltinFn fn);

  bool has_function(const std::string& name) const;

  /// Calls a module function by name.
  Value call(const std::string& name, std::vector<Value> args) const;

 private:
  enum class Flow { kNormal, kReturn, kBreak, kContinue };
  using Env = std::unordered_map<std::string, Value>;

  Value call_function(const FunctionDef& fn, std::vector<Value> args,
                      int depth) const;
  Flow exec_block(const Block& block, Env& env, Value& ret, int depth) const;
  Flow exec_stmt(const Stmt& stmt, Env& env, Value& ret, int depth) const;
  Value eval(const Expr& expr, Env& env, int depth) const;
  Value eval_call(const Expr& expr, Env& env, int depth) const;

  const Module* module_;
  std::map<std::string, const FunctionDef*> functions_;
  std::map<std::string, BuiltinFn> builtins_;
};

/// Installs the default builtin set into a raw map (shared with the VM).
void install_default_builtins(std::map<std::string, BuiltinFn>& builtins);

}  // namespace pyhpc::seamless
