// Abstract syntax tree for MiniPy. Nodes carry a kind tag so the three
// back-ends (tree-walking interpreter, bytecode compiler, typed JIT) can
// switch-dispatch without RTTI.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace pyhpc::seamless {

enum class BinOp {
  kAdd,
  kSub,
  kMul,
  kDiv,       // true division (always float)
  kFloorDiv,
  kMod,
  kPow,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
};

enum class UnaryOp { kNeg, kNot };

enum class ExprKind {
  kIntLit,
  kFloatLit,
  kBoolLit,
  kNoneLit,
  kStringLit,
  kName,
  kUnary,
  kBinary,
  kBoolOp,   // short-circuit and/or
  kCall,
  kIndex,
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  ExprKind kind;
  int line = 0;

  // Literal payloads.
  std::int64_t int_value = 0;
  double float_value = 0.0;
  bool bool_value = false;
  std::string str_value;  // kStringLit text or kName/kCall identifier

  // Operator payloads.
  BinOp bin_op = BinOp::kAdd;
  UnaryOp unary_op = UnaryOp::kNeg;
  bool is_and = false;  // kBoolOp

  ExprPtr lhs;                 // kUnary operand / kBinary / kBoolOp / kIndex target
  ExprPtr rhs;                 // kBinary / kBoolOp / kIndex index
  std::vector<ExprPtr> args;   // kCall arguments

  explicit Expr(ExprKind k, int ln) : kind(k), line(ln) {}
};

enum class StmtKind {
  kExpr,
  kAssign,       // name = value
  kAugAssign,    // name op= value
  kIndexAssign,  // target[index] = value (or op=)
  kIf,
  kWhile,
  kForRange,     // for name in range(start, stop, step)
  kReturn,
  kBreak,
  kContinue,
  kPass,
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;
using Block = std::vector<StmtPtr>;

struct Stmt {
  StmtKind kind;
  int line = 0;

  std::string name;  // kAssign/kAugAssign/kForRange loop variable
  BinOp bin_op = BinOp::kAdd;  // kAugAssign / augmented kIndexAssign
  bool augmented = false;      // kIndexAssign

  ExprPtr value;   // assigned value / return value / expression
  ExprPtr target;  // kIndexAssign target
  ExprPtr index;   // kIndexAssign index
  ExprPtr start;   // kForRange
  ExprPtr stop;    // kForRange
  ExprPtr step;    // kForRange (may be null -> 1)

  // kIf: conditions[i] guards arms[i]; orelse runs when all fail.
  std::vector<ExprPtr> conditions;
  std::vector<Block> arms;
  Block orelse;

  Block body;  // kWhile / kForRange

  explicit Stmt(StmtKind k, int ln) : kind(k), line(ln) {}
};

struct FunctionDef {
  std::string name;
  std::vector<std::string> params;
  std::vector<std::string> decorators;  // e.g. {"jit"} for @jit
  Block body;
  int line = 0;

  bool has_decorator(const std::string& d) const {
    for (const auto& dec : decorators) {
      if (dec == d) return true;
    }
    return false;
  }
};

struct Module {
  std::vector<FunctionDef> functions;

  const FunctionDef& function(const std::string& name) const;
};

/// Parses MiniPy source into a module of function definitions. Throws
/// CompileError with line information on syntax errors.
Module parse(const std::string& source);

/// Parses a single expression (used by tests and the embed API).
ExprPtr parse_expression(const std::string& source);

}  // namespace pyhpc::seamless
