#include <cctype>
#include <map>

#include "obs/trace.hpp"
#include "seamless/token.hpp"
#include "util/error.hpp"
#include "util/string_util.hpp"

namespace pyhpc::seamless {

namespace {

const std::map<std::string, TokenKind> kKeywords = {
    {"def", TokenKind::kDef},       {"return", TokenKind::kReturn},
    {"if", TokenKind::kIf},         {"elif", TokenKind::kElif},
    {"else", TokenKind::kElse},     {"while", TokenKind::kWhile},
    {"for", TokenKind::kFor},       {"in", TokenKind::kIn},
    {"break", TokenKind::kBreak},   {"continue", TokenKind::kContinue},
    {"pass", TokenKind::kPass},     {"and", TokenKind::kAnd},
    {"or", TokenKind::kOr},         {"not", TokenKind::kNot},
    {"True", TokenKind::kTrue},     {"False", TokenKind::kFalse},
    {"None", TokenKind::kNone},
};

[[noreturn]] void fail(int line, const std::string& msg) {
  throw CompileError(util::cat("line ", line, ": ", msg));
}

}  // namespace

std::string Token::describe() const {
  if (!text.empty()) return text;
  switch (kind) {
    case TokenKind::kNewline: return "<newline>";
    case TokenKind::kIndent: return "<indent>";
    case TokenKind::kDedent: return "<dedent>";
    case TokenKind::kEndOfFile: return "<eof>";
    default: return "<token>";
  }
}

std::vector<Token> tokenize(const std::string& source) {
  obs::Span span("lex", "seamless");
  if (span.active()) {
    span.arg("source_bytes", static_cast<std::int64_t>(source.size()));
  }
  std::vector<Token> out;
  std::vector<int> indents{0};
  int line_no = 0;
  std::size_t pos = 0;
  int paren_depth = 0;  // newlines inside (...) or [...] are insignificant

  auto push = [&](TokenKind kind, std::string text = "") {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.line = line_no;
    out.push_back(std::move(t));
  };

  while (pos < source.size()) {
    // ---- start of a physical line: measure indentation -------------------
    ++line_no;
    int indent = 0;
    while (pos < source.size() && (source[pos] == ' ' || source[pos] == '\t')) {
      if (source[pos] == '\t') fail(line_no, "tabs are not allowed in indentation");
      ++indent;
      ++pos;
    }
    // Blank line or comment-only line: skip without emitting tokens.
    if (pos >= source.size() || source[pos] == '\n' || source[pos] == '#') {
      while (pos < source.size() && source[pos] != '\n') ++pos;
      if (pos < source.size()) ++pos;  // consume '\n'
      continue;
    }
    if (paren_depth == 0) {
      if (indent > indents.back()) {
        indents.push_back(indent);
        push(TokenKind::kIndent);
      } else {
        while (indent < indents.back()) {
          indents.pop_back();
          push(TokenKind::kDedent);
        }
        if (indent != indents.back()) {
          fail(line_no, "inconsistent dedent");
        }
      }
    }

    // ---- tokens on this logical line --------------------------------------
    bool line_done = false;
    while (!line_done) {
      if (pos >= source.size()) break;
      const char c = source[pos];
      if (c == '\n') {
        ++pos;
        if (paren_depth == 0) {
          push(TokenKind::kNewline);
          line_done = true;
        } else {
          ++line_no;  // continuation inside brackets
        }
        continue;
      }
      if (c == ' ' || c == '\t') {
        ++pos;
        continue;
      }
      if (c == '#') {
        while (pos < source.size() && source[pos] != '\n') ++pos;
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '.' && pos + 1 < source.size() &&
           std::isdigit(static_cast<unsigned char>(source[pos + 1])))) {
        const std::size_t start = pos;
        bool is_float = false;
        while (pos < source.size() &&
               (std::isdigit(static_cast<unsigned char>(source[pos])) ||
                source[pos] == '.' || source[pos] == 'e' || source[pos] == 'E' ||
                ((source[pos] == '+' || source[pos] == '-') && pos > start &&
                 (source[pos - 1] == 'e' || source[pos - 1] == 'E')))) {
          if (source[pos] == '.' || source[pos] == 'e' || source[pos] == 'E') {
            is_float = true;
          }
          ++pos;
        }
        const std::string text = source.substr(start, pos - start);
        Token t;
        t.line = line_no;
        t.text = text;
        try {
          if (is_float) {
            t.kind = TokenKind::kFloat;
            t.float_value = std::stod(text);
          } else {
            t.kind = TokenKind::kInt;
            t.int_value = std::stoll(text);
          }
        } catch (const std::exception&) {
          fail(line_no, "bad numeric literal '" + text + "'");
        }
        out.push_back(std::move(t));
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        const std::size_t start = pos;
        while (pos < source.size() &&
               (std::isalnum(static_cast<unsigned char>(source[pos])) ||
                source[pos] == '_')) {
          ++pos;
        }
        const std::string text = source.substr(start, pos - start);
        auto it = kKeywords.find(text);
        if (it != kKeywords.end()) {
          push(it->second, text);
        } else {
          push(TokenKind::kName, text);
        }
        continue;
      }
      if (c == '"' || c == '\'') {
        const char quote = c;
        ++pos;
        std::string text;
        while (pos < source.size() && source[pos] != quote &&
               source[pos] != '\n') {
          text.push_back(source[pos]);
          ++pos;
        }
        if (pos >= source.size() || source[pos] != quote) {
          fail(line_no, "unterminated string literal");
        }
        ++pos;
        push(TokenKind::kString, text);
        continue;
      }
      // Operators, longest first.
      auto two = pos + 1 < source.size() ? source.substr(pos, 2) : "";
      if (two == "**") { push(TokenKind::kDoubleStar, two); pos += 2; continue; }
      if (two == "//") { push(TokenKind::kDoubleSlash, two); pos += 2; continue; }
      if (two == "==") { push(TokenKind::kEqEq, two); pos += 2; continue; }
      if (two == "!=") { push(TokenKind::kNotEq, two); pos += 2; continue; }
      if (two == "<=") { push(TokenKind::kLe, two); pos += 2; continue; }
      if (two == ">=") { push(TokenKind::kGe, two); pos += 2; continue; }
      if (two == "+=") { push(TokenKind::kPlusEq, two); pos += 2; continue; }
      if (two == "-=") { push(TokenKind::kMinusEq, two); pos += 2; continue; }
      if (two == "*=") { push(TokenKind::kStarEq, two); pos += 2; continue; }
      if (two == "/=") { push(TokenKind::kSlashEq, two); pos += 2; continue; }
      switch (c) {
        case '+': push(TokenKind::kPlus, "+"); break;
        case '-': push(TokenKind::kMinus, "-"); break;
        case '*': push(TokenKind::kStar, "*"); break;
        case '/': push(TokenKind::kSlash, "/"); break;
        case '%': push(TokenKind::kPercent, "%"); break;
        case '=': push(TokenKind::kEq, "="); break;
        case '<': push(TokenKind::kLt, "<"); break;
        case '>': push(TokenKind::kGt, ">"); break;
        case '(': push(TokenKind::kLParen, "("); ++paren_depth; break;
        case ')': push(TokenKind::kRParen, ")"); --paren_depth; break;
        case '[': push(TokenKind::kLBracket, "["); ++paren_depth; break;
        case ']': push(TokenKind::kRBracket, "]"); --paren_depth; break;
        case ',': push(TokenKind::kComma, ","); break;
        case '@': push(TokenKind::kAt, "@"); break;
        case ':': push(TokenKind::kColon, ":"); break;
        default:
          fail(line_no, util::cat("unexpected character '", std::string(1, c), "'"));
      }
      ++pos;
      if (paren_depth < 0) fail(line_no, "unbalanced closing bracket");
    }
    if (!line_done && pos >= source.size()) {
      // Source ended without trailing newline.
      push(TokenKind::kNewline);
    }
  }

  while (indents.back() > 0) {
    indents.pop_back();
    Token t;
    t.kind = TokenKind::kDedent;
    t.line = line_no;
    out.push_back(t);
  }
  Token eof;
  eof.kind = TokenKind::kEndOfFile;
  eof.line = line_no;
  out.push_back(eof);
  return out;
}

}  // namespace pyhpc::seamless
