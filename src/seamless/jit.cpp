// Type inference and typed-register code generation for the JIT tier.
#include "seamless/jit.hpp"

#include <cmath>
#include <map>
#include <set>
#include <unordered_map>

#include "util/string_util.hpp"

namespace pyhpc::seamless {

std::string jit_type_name(JitType t) {
  switch (t) {
    case JitType::kUnknown: return "unknown";
    case JitType::kNone: return "None";
    case JitType::kBool: return "bool";
    case JitType::kInt: return "int";
    case JitType::kFloat: return "float";
    case JitType::kArray: return "array";
  }
  return "?";
}

JitType jit_type_of(const Value& v) {
  if (v.is_bool()) return JitType::kBool;
  if (v.is_int()) return JitType::kInt;
  if (v.is_float()) return JitType::kFloat;
  if (v.is_array()) return JitType::kArray;
  if (v.is_none()) return JitType::kNone;
  throw NotJittable("values of type " + v.type_name() +
                    " are outside the typed subset");
}

namespace {

[[noreturn]] void not_jittable(int line, const std::string& msg) {
  throw NotJittable(util::cat("line ", line, ": ", msg));
}

bool is_numeric(JitType t) {
  return t == JitType::kBool || t == JitType::kInt || t == JitType::kFloat;
}

// Type join for the fixpoint: numeric widening only.
JitType join(JitType a, JitType b, int line) {
  if (a == JitType::kUnknown) return b;
  if (b == JitType::kUnknown) return a;
  if (a == b) return a;
  if (is_numeric(a) && is_numeric(b)) {
    if (a == JitType::kFloat || b == JitType::kFloat) return JitType::kFloat;
    return JitType::kInt;  // bool joins int
  }
  not_jittable(line, "variable takes incompatible types " + jit_type_name(a) +
                         " and " + jit_type_name(b));
}

// ---------------------------------------------------------------------------
// Pass 1: fixpoint type inference over the function body.
// ---------------------------------------------------------------------------

class TypeInferencer {
 public:
  TypeInferencer(const Module& module, const FunctionDef& fn,
                 const std::vector<JitType>& params)
      : module_(&module) {
    require<CompileError>(params.size() == fn.params.size(),
                          fn.name + ": parameter count mismatch");
    for (std::size_t i = 0; i < params.size(); ++i) {
      require<CompileError>(params[i] != JitType::kUnknown &&
                                params[i] != JitType::kNone,
                            fn.name + ": untyped parameter");
      vars_[fn.params[i]] = params[i];
      param_locked_.insert(fn.params[i]);
    }
    // Fixpoint iteration.
    for (int pass = 0; pass < 16; ++pass) {
      changed_ = false;
      infer_block(fn.body);
      if (!changed_) break;
    }
    if (changed_) not_jittable(fn.line, "type inference did not converge");
  }

  const std::unordered_map<std::string, JitType>& variables() const {
    return vars_;
  }
  JitType return_type() const {
    return return_type_ == JitType::kUnknown ? JitType::kNone : return_type_;
  }

  JitType type_of_expr(const Expr& e) const { return infer_expr_const(e); }

 private:
  void set_var(const std::string& name, JitType t, int line) {
    // Parameters keep their declared type; int values flowing into a float
    // parameter are fine (the codegen converts), the reverse is not.
    auto it = vars_.find(name);
    if (it == vars_.end()) {
      vars_[name] = t;
      changed_ = true;
      return;
    }
    if (param_locked_.count(name)) {
      if (it->second == JitType::kFloat && (t == JitType::kInt || t == JitType::kBool)) {
        return;  // implicit widening at assignment
      }
      if (t != it->second) {
        not_jittable(line, "parameter '" + name + "' reassigned to " +
                               jit_type_name(t));
      }
      return;
    }
    const JitType joined = join(it->second, t, line);
    if (joined != it->second) {
      it->second = joined;
      changed_ = true;
    }
  }

  JitType infer_expr_const(const Expr& e) const {
    switch (e.kind) {
      case ExprKind::kIntLit: return JitType::kInt;
      case ExprKind::kFloatLit: return JitType::kFloat;
      case ExprKind::kBoolLit: return JitType::kBool;
      case ExprKind::kNoneLit:
        not_jittable(e.line, "None values are outside the typed subset");
      case ExprKind::kStringLit:
        not_jittable(e.line, "strings are outside the typed subset");
      case ExprKind::kName: {
        auto it = vars_.find(e.str_value);
        if (it == vars_.end()) return JitType::kUnknown;
        return it->second;
      }
      case ExprKind::kUnary: {
        const JitType t = infer_expr_const(*e.lhs);
        if (e.unary_op == UnaryOp::kNot) {
          if (!is_numeric(t) && t != JitType::kUnknown) {
            not_jittable(e.line, "'not' needs a numeric operand here");
          }
          return JitType::kBool;
        }
        if (t == JitType::kBool) return JitType::kInt;
        return t;
      }
      case ExprKind::kBinary: {
        const JitType lt = infer_expr_const(*e.lhs);
        const JitType rt = infer_expr_const(*e.rhs);
        switch (e.bin_op) {
          case BinOp::kEq: case BinOp::kNe: case BinOp::kLt:
          case BinOp::kLe: case BinOp::kGt: case BinOp::kGe:
            check_numeric(lt, e.line);
            check_numeric(rt, e.line);
            return JitType::kBool;
          case BinOp::kDiv:
            check_numeric(lt, e.line);
            check_numeric(rt, e.line);
            return JitType::kFloat;
          default:
            check_numeric(lt, e.line);
            check_numeric(rt, e.line);
            if (lt == JitType::kFloat || rt == JitType::kFloat) {
              return JitType::kFloat;
            }
            if (lt == JitType::kUnknown || rt == JitType::kUnknown) {
              return JitType::kUnknown;
            }
            return JitType::kInt;
        }
      }
      case ExprKind::kBoolOp: {
        const JitType lt = infer_expr_const(*e.lhs);
        const JitType rt = infer_expr_const(*e.rhs);
        if ((lt != JitType::kBool && lt != JitType::kUnknown) ||
            (rt != JitType::kBool && rt != JitType::kUnknown)) {
          not_jittable(e.line,
                       "and/or in the typed subset needs bool operands");
        }
        return JitType::kBool;
      }
      case ExprKind::kCall: return infer_call(e);
      case ExprKind::kIndex: {
        const JitType t = infer_expr_const(*e.lhs);
        if (t != JitType::kArray && t != JitType::kUnknown) {
          not_jittable(e.line, "only float64 arrays are subscriptable here");
        }
        const JitType it = infer_expr_const(*e.rhs);
        if (it == JitType::kFloat || it == JitType::kArray) {
          not_jittable(e.line, "array indices must be integers");
        }
        return JitType::kFloat;
      }
    }
    return JitType::kUnknown;
  }

  static void check_numeric(JitType t, int line) {
    if (t != JitType::kUnknown && !is_numeric(t)) {
      not_jittable(line, "arithmetic needs numeric operands, got " +
                             jit_type_name(t));
    }
  }

  JitType infer_call(const Expr& e) const {
    const std::string& name = e.str_value;
    auto arg_type = [&](std::size_t i) { return infer_expr_const(*e.args[i]); };
    // Module functions first (they shadow builtins, as in the interpreter).
    for (const auto& fn : module_->functions) {
      if (fn.name != name) continue;
      if (fn.params.size() != e.args.size()) {
        not_jittable(e.line, name + "(): argument count mismatch");
      }
      std::vector<JitType> types;
      for (std::size_t i = 0; i < e.args.size(); ++i) {
        const JitType t = arg_type(i);
        if (t == JitType::kUnknown) return JitType::kUnknown;  // next pass
        types.push_back(t);
      }
      return callee_return_type(fn, types, e.line);
    }
    if (name == "len") {
      if (e.args.size() != 1 ||
          (arg_type(0) != JitType::kArray && arg_type(0) != JitType::kUnknown)) {
        not_jittable(e.line, "len() in the typed subset takes one array");
      }
      return JitType::kInt;
    }
    if (name == "sqrt") {
      if (e.args.size() != 1) not_jittable(e.line, "sqrt() takes 1 argument");
      check_numeric(arg_type(0), e.line);
      return JitType::kFloat;
    }
    if (name == "float") {
      if (e.args.size() != 1) not_jittable(e.line, "float() takes 1 argument");
      check_numeric(arg_type(0), e.line);
      return JitType::kFloat;
    }
    if (name == "int") {
      if (e.args.size() != 1) not_jittable(e.line, "int() takes 1 argument");
      check_numeric(arg_type(0), e.line);
      return JitType::kInt;
    }
    if (name == "abs") {
      if (e.args.size() != 1) not_jittable(e.line, "abs() takes 1 argument");
      const JitType t = arg_type(0);
      check_numeric(t, e.line);
      return t == JitType::kBool ? JitType::kInt : t;
    }
    if (name == "min" || name == "max") {
      if (e.args.size() != 2) {
        not_jittable(e.line, name + "() takes 2 arguments here");
      }
      check_numeric(arg_type(0), e.line);
      check_numeric(arg_type(1), e.line);
      return JitType::kFloat;
    }
    not_jittable(e.line, "call to '" + name +
                             "' is outside the typed subset (only module "
                             "functions and len, sqrt, abs, min, max, float, "
                             "int)");
  }

  // Return type of a module-function call for concrete argument types, by
  // running inference on the callee. A thread-local in-progress set turns
  // (mutual) recursion into NotJittable instead of infinite regress.
  JitType callee_return_type(const FunctionDef& fn,
                             const std::vector<JitType>& types,
                             int line) const {
    std::string key = fn.name;
    for (auto t : types) key += "/" + jit_type_name(t);
    thread_local std::set<std::string> in_progress;
    if (in_progress.count(key)) {
      not_jittable(line, "recursive call to '" + fn.name +
                             "' is outside the typed subset");
    }
    in_progress.insert(key);
    JitType rt;
    try {
      TypeInferencer inner(*module_, fn, types);
      rt = inner.return_type();
    } catch (...) {
      in_progress.erase(key);
      throw;
    }
    in_progress.erase(key);
    return rt;
  }

  void infer_block(const Block& block) {
    for (const auto& stmt : block) infer_stmt(*stmt);
  }

  void infer_stmt(const Stmt& stmt) {
    switch (stmt.kind) {
      case StmtKind::kExpr:
        (void)infer_expr_const(*stmt.value);
        return;
      case StmtKind::kAssign:
        set_var(stmt.name, infer_expr_const(*stmt.value), stmt.line);
        return;
      case StmtKind::kAugAssign: {
        auto it = vars_.find(stmt.name);
        if (it == vars_.end()) {
          not_jittable(stmt.line, "augmented assignment to undefined '" +
                                      stmt.name + "'");
        }
        // Type of (name op value):
        JitType t;
        if (stmt.bin_op == BinOp::kDiv) {
          t = JitType::kFloat;
        } else {
          const JitType rt = infer_expr_const(*stmt.value);
          check_numeric(it->second, stmt.line);
          check_numeric(rt, stmt.line);
          t = (it->second == JitType::kFloat || rt == JitType::kFloat)
                  ? JitType::kFloat
                  : JitType::kInt;
        }
        set_var(stmt.name, t, stmt.line);
        return;
      }
      case StmtKind::kIndexAssign: {
        const JitType tt = infer_expr_const(*stmt.target);
        if (tt != JitType::kArray && tt != JitType::kUnknown) {
          not_jittable(stmt.line, "item assignment needs a float64 array");
        }
        (void)infer_expr_const(*stmt.index);
        check_numeric(infer_expr_const(*stmt.value), stmt.line);
        return;
      }
      case StmtKind::kIf: {
        for (const auto& c : stmt.conditions) (void)infer_expr_const(*c);
        for (const auto& arm : stmt.arms) infer_block(arm);
        infer_block(stmt.orelse);
        return;
      }
      case StmtKind::kWhile:
        (void)infer_expr_const(*stmt.value);
        infer_block(stmt.body);
        return;
      case StmtKind::kForRange:
        set_var(stmt.name, JitType::kInt, stmt.line);
        if (stmt.start) (void)infer_expr_const(*stmt.start);
        (void)infer_expr_const(*stmt.stop);
        if (stmt.step) (void)infer_expr_const(*stmt.step);
        infer_block(stmt.body);
        return;
      case StmtKind::kReturn: {
        JitType t = JitType::kNone;
        if (stmt.value) t = infer_expr_const(*stmt.value);
        if (return_type_ == JitType::kUnknown) {
          return_type_ = t;
          changed_ = true;
        } else if (return_type_ != t) {
          const JitType joined = join(return_type_, t, stmt.line);
          if (joined != return_type_) {
            return_type_ = joined;
            changed_ = true;
          }
        }
        return;
      }
      case StmtKind::kBreak:
      case StmtKind::kContinue:
      case StmtKind::kPass:
        return;
    }
  }

  const Module* module_;
  std::unordered_map<std::string, JitType> vars_;
  std::set<std::string> param_locked_;
  JitType return_type_ = JitType::kUnknown;
  bool changed_ = false;
};

}  // namespace

// ---------------------------------------------------------------------------
// Pass 2: code generation.
// ---------------------------------------------------------------------------

class JitCompiler {
 public:
  JitCompiler(const Module& module, const FunctionDef& fn,
              const std::vector<JitType>& params)
      : module_(&module), fn_(fn), types_(module, fn, params) {
    out_.name_ = fn.name;
    out_.param_types_ = params;
    out_.return_type_ = types_.return_type();

    // Assign registers to every inferred variable.
    for (const auto& pname : fn.params) {
      (void)var_reg(pname, types_.variables().at(pname));
    }
    for (std::size_t i = 0; i < fn.params.size(); ++i) {
      out_.param_regs_.push_back(var_regs_.at(fn.params[i]));
    }
  }

  JitFunction compile() {
    compile_block(fn_.body);
    emit(TOp::kRetNone, fn_.line);
    out_.num_iregs_ = next_ireg_;
    out_.num_fregs_ = next_freg_;
    out_.num_aregs_ = next_areg_;
    return std::move(out_);
  }

 private:
  JitType var_type(const std::string& name, int line) const {
    auto it = types_.variables().find(name);
    if (it == types_.variables().end()) {
      not_jittable(line, "name '" + name + "' is never defined");
    }
    return it->second;
  }

  std::int32_t var_reg(const std::string& name, JitType t) {
    auto it = var_regs_.find(name);
    if (it != var_regs_.end()) return it->second;
    std::int32_t reg = 0;
    switch (t) {
      case JitType::kFloat: reg = next_freg_++; break;
      case JitType::kArray: reg = next_areg_++; break;
      default: reg = next_ireg_++; break;  // bool/int share the int bank
    }
    var_regs_[name] = reg;
    return reg;
  }

  std::int32_t temp_i() { return next_ireg_++; }
  std::int32_t temp_f() { return next_freg_++; }

  std::size_t emit(TOp op, int line, std::int32_t a = 0, std::int32_t b = 0,
                   std::int32_t c = 0) {
    TInstr instr;
    instr.op = op;
    instr.a = a;
    instr.b = b;
    instr.c = c;
    instr.line = line;
    out_.code_.push_back(instr);
    return out_.code_.size() - 1;
  }

  void patch(std::size_t at) {
    out_.code_[at].jump = static_cast<std::int32_t>(out_.code_.size());
  }

  // Result of compiling an expression: a register plus its bank.
  struct Operand {
    JitType type;
    std::int32_t reg;
  };

  Operand to_float(Operand v, int line) {
    if (v.type == JitType::kFloat) return v;
    require<CompileError>(is_numeric(v.type), "internal: bad conversion");
    const std::int32_t f = temp_f();
    emit(TOp::kIntToFloat, line, f, v.reg);
    return {JitType::kFloat, f};
  }

  Operand compile_expr(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kIntLit: {
        const std::int32_t r = temp_i();
        auto at = emit(TOp::kLoadImmI, e.line, r);
        out_.code_[at].imm_i = e.int_value;
        return {JitType::kInt, r};
      }
      case ExprKind::kFloatLit: {
        const std::int32_t r = temp_f();
        auto at = emit(TOp::kLoadImmF, e.line, r);
        out_.code_[at].imm_f = e.float_value;
        return {JitType::kFloat, r};
      }
      case ExprKind::kBoolLit: {
        const std::int32_t r = temp_i();
        auto at = emit(TOp::kLoadImmI, e.line, r);
        out_.code_[at].imm_i = e.bool_value ? 1 : 0;
        return {JitType::kBool, r};
      }
      case ExprKind::kName: {
        const JitType t = var_type(e.str_value, e.line);
        auto it = var_regs_.find(e.str_value);
        if (it == var_regs_.end()) {
          not_jittable(e.line, "name '" + e.str_value +
                                   "' may be used before assignment");
        }
        return {t, it->second};
      }
      case ExprKind::kUnary: {
        Operand v = compile_expr(*e.lhs);
        if (e.unary_op == UnaryOp::kNot) {
          Operand iv = v.type == JitType::kFloat
                           ? float_truthiness(v, e.line)
                           : v;
          const std::int32_t r = temp_i();
          emit(TOp::kNotI, e.line, r, iv.reg);
          return {JitType::kBool, r};
        }
        if (v.type == JitType::kFloat) {
          const std::int32_t r = temp_f();
          emit(TOp::kNegF, e.line, r, v.reg);
          return {JitType::kFloat, r};
        }
        const std::int32_t r = temp_i();
        emit(TOp::kNegI, e.line, r, v.reg);
        return {JitType::kInt, r};
      }
      case ExprKind::kBinary:
        return compile_binary(e);
      case ExprKind::kBoolOp: {
        // Short-circuit with an int result register.
        const std::int32_t r = temp_i();
        Operand lhs = compile_expr(*e.lhs);
        emit(TOp::kMovI, e.line, r, lhs.reg);
        std::size_t skip;
        if (e.is_and) {
          skip = emit(TOp::kJz, e.line, r);
          Operand rhs = compile_expr(*e.rhs);
          emit(TOp::kMovI, e.line, r, rhs.reg);
          patch(skip);
        } else {
          // or: if lhs true skip rhs.
          const std::int32_t notr = temp_i();
          emit(TOp::kNotI, e.line, notr, r);
          skip = emit(TOp::kJz, e.line, notr);
          Operand rhs = compile_expr(*e.rhs);
          emit(TOp::kMovI, e.line, r, rhs.reg);
          patch(skip);
        }
        return {JitType::kBool, r};
      }
      case ExprKind::kCall:
        return compile_call(e);
      case ExprKind::kIndex: {
        Operand arr = compile_expr(*e.lhs);
        if (arr.type != JitType::kArray) {
          not_jittable(e.line, "only arrays are subscriptable here");
        }
        Operand idx = compile_expr(*e.rhs);
        const std::int32_t r = temp_f();
        emit(TOp::kArrLoad, e.line, r, arr.reg, idx.reg);
        return {JitType::kFloat, r};
      }
      default:
        not_jittable(e.line, "expression outside the typed subset");
    }
  }

  Operand float_truthiness(Operand v, int line) {
    const std::int32_t zero = temp_f();
    auto at = emit(TOp::kLoadImmF, line, zero);
    out_.code_[at].imm_f = 0.0;
    const std::int32_t r = temp_i();
    emit(TOp::kCmpNeF, line, r, v.reg, zero);
    return {JitType::kBool, r};
  }

  Operand compile_binary(const Expr& e) {
    Operand lhs = compile_expr(*e.lhs);
    Operand rhs = compile_expr(*e.rhs);
    const bool cmp = e.bin_op == BinOp::kEq || e.bin_op == BinOp::kNe ||
                     e.bin_op == BinOp::kLt || e.bin_op == BinOp::kLe ||
                     e.bin_op == BinOp::kGt || e.bin_op == BinOp::kGe;
    const bool float_math = lhs.type == JitType::kFloat ||
                            rhs.type == JitType::kFloat ||
                            e.bin_op == BinOp::kDiv;
    if (float_math) {
      lhs = to_float(lhs, e.line);
      rhs = to_float(rhs, e.line);
      if (cmp) {
        const std::int32_t r = temp_i();
        TOp op;
        switch (e.bin_op) {
          case BinOp::kEq: op = TOp::kCmpEqF; break;
          case BinOp::kNe: op = TOp::kCmpNeF; break;
          case BinOp::kLt: op = TOp::kCmpLtF; break;
          case BinOp::kLe: op = TOp::kCmpLeF; break;
          case BinOp::kGt: op = TOp::kCmpGtF; break;
          default: op = TOp::kCmpGeF; break;
        }
        emit(op, e.line, r, lhs.reg, rhs.reg);
        return {JitType::kBool, r};
      }
      const std::int32_t r = temp_f();
      TOp op;
      switch (e.bin_op) {
        case BinOp::kAdd: op = TOp::kAddF; break;
        case BinOp::kSub: op = TOp::kSubF; break;
        case BinOp::kMul: op = TOp::kMulF; break;
        case BinOp::kDiv: op = TOp::kDivF; break;
        case BinOp::kFloorDiv: op = TOp::kFloorDivF; break;
        case BinOp::kMod: op = TOp::kModF; break;
        case BinOp::kPow: op = TOp::kPowF; break;
        default:
          not_jittable(e.line, "internal: bad float operator");
      }
      emit(op, e.line, r, lhs.reg, rhs.reg);
      return {JitType::kFloat, r};
    }
    if (cmp) {
      const std::int32_t r = temp_i();
      TOp op;
      switch (e.bin_op) {
        case BinOp::kEq: op = TOp::kCmpEqI; break;
        case BinOp::kNe: op = TOp::kCmpNeI; break;
        case BinOp::kLt: op = TOp::kCmpLtI; break;
        case BinOp::kLe: op = TOp::kCmpLeI; break;
        case BinOp::kGt: op = TOp::kCmpGtI; break;
        default: op = TOp::kCmpGeI; break;
      }
      emit(op, e.line, r, lhs.reg, rhs.reg);
      return {JitType::kBool, r};
    }
    const std::int32_t r = temp_i();
    TOp op;
    switch (e.bin_op) {
      case BinOp::kAdd: op = TOp::kAddI; break;
      case BinOp::kSub: op = TOp::kSubI; break;
      case BinOp::kMul: op = TOp::kMulI; break;
      case BinOp::kFloorDiv: op = TOp::kFloorDivI; break;
      case BinOp::kMod: op = TOp::kModI; break;
      case BinOp::kPow: op = TOp::kPowI; break;
      default:
        not_jittable(e.line, "internal: bad int operator");
    }
    emit(op, e.line, r, lhs.reg, rhs.reg);
    return {JitType::kInt, r};
  }

  Operand compile_call(const Expr& e) {
    const std::string& name = e.str_value;
    for (const auto& callee : module_->functions) {
      if (callee.name == name) return compile_module_call(e, callee);
    }
    if (name == "len") {
      Operand arr = compile_expr(*e.args[0]);
      const std::int32_t r = temp_i();
      emit(TOp::kArrLen, e.line, r, arr.reg);
      return {JitType::kInt, r};
    }
    if (name == "sqrt") {
      Operand v = to_float(compile_expr(*e.args[0]), e.line);
      const std::int32_t r = temp_f();
      emit(TOp::kSqrtF, e.line, r, v.reg);
      return {JitType::kFloat, r};
    }
    if (name == "float") {
      return to_float(compile_expr(*e.args[0]), e.line);
    }
    if (name == "int") {
      Operand v = compile_expr(*e.args[0]);
      if (v.type != JitType::kFloat) return {JitType::kInt, v.reg};
      const std::int32_t r = temp_i();
      emit(TOp::kFloatToInt, e.line, r, v.reg);
      return {JitType::kInt, r};
    }
    if (name == "abs") {
      Operand v = compile_expr(*e.args[0]);
      if (v.type == JitType::kFloat) {
        const std::int32_t r = temp_f();
        emit(TOp::kAbsF, e.line, r, v.reg);
        return {JitType::kFloat, r};
      }
      const std::int32_t r = temp_i();
      emit(TOp::kAbsI, e.line, r, v.reg);
      return {JitType::kInt, r};
    }
    if (name == "min" || name == "max") {
      Operand a = to_float(compile_expr(*e.args[0]), e.line);
      Operand b = to_float(compile_expr(*e.args[1]), e.line);
      const std::int32_t r = temp_f();
      emit(name == "min" ? TOp::kMinF : TOp::kMaxF, e.line, r, a.reg, b.reg);
      return {JitType::kFloat, r};
    }
    not_jittable(e.line, "call outside the typed subset: " + name);
  }

  // Compiles a call to another MiniPy function: arguments are evaluated
  // into registers, the callee is compiled for exactly those types (cached
  // per signature within this compilation), and a kCallFn site records the
  // argument registers.
  Operand compile_module_call(const Expr& e, const FunctionDef& callee) {
    CallSite site;
    std::vector<JitType> types;
    for (const auto& arg : e.args) {
      Operand v = compile_expr(*arg);
      site.args.emplace_back(v.type, v.reg);
      types.push_back(v.type);
    }
    std::string key = callee.name;
    for (auto t : types) key += "/" + jit_type_name(t);
    auto it = callee_cache_.find(key);
    if (it == callee_cache_.end()) {
      auto compiled = std::make_shared<JitFunction>(
          jit_compile(*module_, callee.name, types));
      out_.callees_.push_back(compiled);
      it = callee_cache_
               .emplace(key, static_cast<std::int32_t>(out_.callees_.size()) - 1)
               .first;
    }
    const std::int32_t callee_idx = it->second;
    const JitType rt = out_.callees_[static_cast<std::size_t>(callee_idx)]
                           ->return_type();
    std::int32_t dst = -1;
    if (rt == JitType::kFloat) dst = temp_f();
    else if (rt == JitType::kInt || rt == JitType::kBool) dst = temp_i();
    else not_jittable(e.line, "call to '" + callee.name +
                                  "' returns no value in the typed subset");
    const auto site_idx = static_cast<std::int32_t>(out_.callsites_.size());
    out_.callsites_.push_back(std::move(site));
    emit(TOp::kCallFn, e.line, dst, callee_idx, site_idx);
    return {rt, dst};
  }

  // Stores an operand into a typed variable (with int->float widening).
  void store_var(const std::string& name, Operand v, int line) {
    const JitType t = var_type(name, line);
    const std::int32_t reg = var_reg(name, t);
    if (t == JitType::kFloat) {
      v = to_float(v, line);
      emit(TOp::kMovF, line, reg, v.reg);
    } else if (t == JitType::kArray) {
      not_jittable(line, "array variables cannot be reassigned here");
    } else {
      if (v.type == JitType::kFloat) {
        not_jittable(line, "float value assigned to int variable '" + name +
                               "'");
      }
      emit(TOp::kMovI, line, reg, v.reg);
    }
  }

  // Compiles a condition into an int register (0/1 or any int).
  std::int32_t compile_condition(const Expr& e) {
    Operand v = compile_expr(e);
    if (v.type == JitType::kFloat) {
      return float_truthiness(v, e.line).reg;
    }
    return v.reg;
  }

  void compile_block(const Block& block) {
    for (const auto& stmt : block) compile_stmt(*stmt);
  }

  void compile_stmt(const Stmt& stmt) {
    switch (stmt.kind) {
      case StmtKind::kExpr:
        (void)compile_expr(*stmt.value);
        return;
      case StmtKind::kAssign:
        store_var(stmt.name, compile_expr(*stmt.value), stmt.line);
        return;
      case StmtKind::kAugAssign: {
        // Desugar into name = name op value.
        Expr lhs(ExprKind::kName, stmt.line);
        lhs.str_value = stmt.name;
        Operand cur = compile_expr(lhs);
        Operand rhs = compile_expr(*stmt.value);
        const JitType t = var_type(stmt.name, stmt.line);
        if (t == JitType::kFloat || stmt.bin_op == BinOp::kDiv ||
            rhs.type == JitType::kFloat) {
          cur = to_float(cur, stmt.line);
          rhs = to_float(rhs, stmt.line);
          const std::int32_t r = temp_f();
          TOp op;
          switch (stmt.bin_op) {
            case BinOp::kAdd: op = TOp::kAddF; break;
            case BinOp::kSub: op = TOp::kSubF; break;
            case BinOp::kMul: op = TOp::kMulF; break;
            case BinOp::kDiv: op = TOp::kDivF; break;
            default:
              not_jittable(stmt.line, "augmented operator outside subset");
          }
          emit(op, stmt.line, r, cur.reg, rhs.reg);
          store_var(stmt.name, {JitType::kFloat, r}, stmt.line);
        } else {
          const std::int32_t r = temp_i();
          TOp op;
          switch (stmt.bin_op) {
            case BinOp::kAdd: op = TOp::kAddI; break;
            case BinOp::kSub: op = TOp::kSubI; break;
            case BinOp::kMul: op = TOp::kMulI; break;
            default:
              not_jittable(stmt.line, "augmented operator outside subset");
          }
          emit(op, stmt.line, r, cur.reg, rhs.reg);
          store_var(stmt.name, {JitType::kInt, r}, stmt.line);
        }
        return;
      }
      case StmtKind::kIndexAssign: {
        Operand arr = compile_expr(*stmt.target);
        if (arr.type != JitType::kArray) {
          not_jittable(stmt.line, "item assignment needs an array");
        }
        Operand idx = compile_expr(*stmt.index);
        Operand val = compile_expr(*stmt.value);
        if (stmt.augmented) {
          const std::int32_t cur = temp_f();
          emit(TOp::kArrLoad, stmt.line, cur, arr.reg, idx.reg);
          val = to_float(val, stmt.line);
          const std::int32_t r = temp_f();
          TOp op;
          switch (stmt.bin_op) {
            case BinOp::kAdd: op = TOp::kAddF; break;
            case BinOp::kSub: op = TOp::kSubF; break;
            case BinOp::kMul: op = TOp::kMulF; break;
            case BinOp::kDiv: op = TOp::kDivF; break;
            default:
              not_jittable(stmt.line, "augmented operator outside subset");
          }
          emit(op, stmt.line, r, cur, val.reg);
          emit(TOp::kArrStore, stmt.line, arr.reg, idx.reg, r);
        } else {
          val = to_float(val, stmt.line);
          emit(TOp::kArrStore, stmt.line, arr.reg, idx.reg, val.reg);
        }
        return;
      }
      case StmtKind::kIf: {
        std::vector<std::size_t> ends;
        for (std::size_t i = 0; i < stmt.conditions.size(); ++i) {
          const std::int32_t cond = compile_condition(*stmt.conditions[i]);
          const std::size_t skip = emit(TOp::kJz, stmt.line, cond);
          compile_block(stmt.arms[i]);
          ends.push_back(emit(TOp::kJmp, stmt.line));
          patch(skip);
        }
        compile_block(stmt.orelse);
        for (auto j : ends) patch(j);
        return;
      }
      case StmtKind::kWhile: {
        const auto head = static_cast<std::int32_t>(out_.code_.size());
        const std::int32_t cond = compile_condition(*stmt.value);
        const std::size_t exit = emit(TOp::kJz, stmt.line, cond);
        loops_.push_back({head, {}, {}});
        compile_block(stmt.body);
        const std::size_t back = emit(TOp::kJmp, stmt.line);
        out_.code_[back].jump = head;
        patch(exit);
        close_loop(head);
        return;
      }
      case StmtKind::kForRange: {
        const std::int32_t var = var_reg(stmt.name, JitType::kInt);
        const std::int32_t iter = temp_i();
        const std::int32_t stop = temp_i();
        const std::int32_t step = temp_i();
        if (stmt.start) {
          Operand s = compile_expr(*stmt.start);
          require_int(s, stmt.line, "range start");
          emit(TOp::kMovI, stmt.line, iter, s.reg);
        } else {
          auto at = emit(TOp::kLoadImmI, stmt.line, iter);
          out_.code_[at].imm_i = 0;
        }
        {
          Operand s = compile_expr(*stmt.stop);
          require_int(s, stmt.line, "range stop");
          emit(TOp::kMovI, stmt.line, stop, s.reg);
        }
        if (stmt.step) {
          Operand s = compile_expr(*stmt.step);
          require_int(s, stmt.line, "range step");
          emit(TOp::kMovI, stmt.line, step, s.reg);
        } else {
          auto at = emit(TOp::kLoadImmI, stmt.line, step);
          out_.code_[at].imm_i = 1;
        }
        const auto head = static_cast<std::int32_t>(out_.code_.size());
        const std::size_t check =
            emit(TOp::kForCheckI, stmt.line, iter, stop, step);
        emit(TOp::kMovI, stmt.line, var, iter);
        loops_.push_back({head, {}, {}});
        compile_block(stmt.body);
        const std::size_t incr = emit(TOp::kForIncrI, stmt.line, iter, 0, step);
        out_.code_[incr].jump = head;
        patch(check);
        close_loop(static_cast<std::int32_t>(incr));
        return;
      }
      case StmtKind::kReturn: {
        if (stmt.value == nullptr) {
          if (out_.return_type_ != JitType::kNone) {
            not_jittable(stmt.line, "mixed None / value returns");
          }
          emit(TOp::kRetNone, stmt.line);
          return;
        }
        Operand v = compile_expr(*stmt.value);
        if (out_.return_type_ == JitType::kFloat) {
          v = to_float(v, stmt.line);
          emit(TOp::kRetF, stmt.line, v.reg);
        } else if (out_.return_type_ == JitType::kInt ||
                   out_.return_type_ == JitType::kBool) {
          if (v.type == JitType::kFloat) {
            not_jittable(stmt.line, "float returned where int inferred");
          }
          emit(TOp::kRetI, stmt.line, v.reg);
        } else {
          not_jittable(stmt.line, "unsupported return type");
        }
        return;
      }
      case StmtKind::kBreak:
        require<NotJittable>(!loops_.empty(), "'break' outside loop");
        loops_.back().breaks.push_back(emit(TOp::kJmp, stmt.line));
        return;
      case StmtKind::kContinue:
        require<NotJittable>(!loops_.empty(), "'continue' outside loop");
        loops_.back().continues.push_back(emit(TOp::kJmp, stmt.line));
        return;
      case StmtKind::kPass:
        return;
    }
  }

  static void require_int(const Operand& v, int line, const char* what) {
    if (v.type == JitType::kFloat || v.type == JitType::kArray) {
      not_jittable(line, std::string(what) + " must be an integer");
    }
  }

  struct LoopCtx {
    std::int32_t head;
    std::vector<std::size_t> breaks;
    std::vector<std::size_t> continues;
  };

  void close_loop(std::int32_t continue_target) {
    for (auto b : loops_.back().breaks) patch(b);
    for (auto c : loops_.back().continues) {
      out_.code_[c].jump = continue_target;
    }
    loops_.pop_back();
  }

  const Module* module_;
  const FunctionDef& fn_;
  TypeInferencer types_;
  JitFunction out_;
  std::unordered_map<std::string, std::int32_t> callee_cache_;
  std::unordered_map<std::string, std::int32_t> var_regs_;
  std::vector<LoopCtx> loops_;
  int next_ireg_ = 0;
  int next_freg_ = 0;
  int next_areg_ = 0;
};

JitFunction jit_compile(const Module& module, const std::string& name,
                        const std::vector<JitType>& param_types) {
  return JitCompiler(module, module.function(name), param_types).compile();
}

// ---------------------------------------------------------------------------
// Execution.
// ---------------------------------------------------------------------------

namespace {
[[noreturn]] void run_fault(int line, const std::string& msg) {
  throw RuntimeFault(util::cat("line ", line, ": ", msg));
}

std::int64_t jit_ipow(std::int64_t base, std::int64_t exp, int line) {
  if (exp < 0) run_fault(line, "negative integer exponent in typed code");
  std::int64_t result = 1;
  while (exp > 0) {
    if (exp & 1) result *= base;
    base *= base;
    exp >>= 1;
  }
  return result;
}

std::size_t check_index(std::int64_t i, std::size_t n, int line) {
  if (i < 0) i += static_cast<std::int64_t>(n);
  if (i < 0 || i >= static_cast<std::int64_t>(n)) {
    run_fault(line, util::cat("array index ", i, " out of range for length ",
                              n));
  }
  return static_cast<std::size_t>(i);
}
}  // namespace

double JitFunction::run(std::vector<std::int64_t>& I, std::vector<double>& F,
                        std::vector<std::span<double>>& A,
                        std::int64_t& iret) const {
  std::size_t pc = 0;
  while (pc < code_.size()) {
    const TInstr& in = code_[pc];
    switch (in.op) {
      case TOp::kLoadImmI: I[static_cast<std::size_t>(in.a)] = in.imm_i; ++pc; break;
      case TOp::kLoadImmF: F[static_cast<std::size_t>(in.a)] = in.imm_f; ++pc; break;
      case TOp::kMovI: I[static_cast<std::size_t>(in.a)] = I[static_cast<std::size_t>(in.b)]; ++pc; break;
      case TOp::kMovF: F[static_cast<std::size_t>(in.a)] = F[static_cast<std::size_t>(in.b)]; ++pc; break;
      case TOp::kIntToFloat:
        F[static_cast<std::size_t>(in.a)] =
            static_cast<double>(I[static_cast<std::size_t>(in.b)]);
        ++pc;
        break;
      case TOp::kFloatToInt:
        I[static_cast<std::size_t>(in.a)] =
            static_cast<std::int64_t>(F[static_cast<std::size_t>(in.b)]);
        ++pc;
        break;
      case TOp::kAddI: I[static_cast<std::size_t>(in.a)] = I[static_cast<std::size_t>(in.b)] + I[static_cast<std::size_t>(in.c)]; ++pc; break;
      case TOp::kSubI: I[static_cast<std::size_t>(in.a)] = I[static_cast<std::size_t>(in.b)] - I[static_cast<std::size_t>(in.c)]; ++pc; break;
      case TOp::kMulI: I[static_cast<std::size_t>(in.a)] = I[static_cast<std::size_t>(in.b)] * I[static_cast<std::size_t>(in.c)]; ++pc; break;
      case TOp::kFloorDivI: {
        const std::int64_t a = I[static_cast<std::size_t>(in.b)];
        const std::int64_t b = I[static_cast<std::size_t>(in.c)];
        if (b == 0) run_fault(in.line, "integer division by zero");
        std::int64_t q = a / b;
        if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
        I[static_cast<std::size_t>(in.a)] = q;
        ++pc;
        break;
      }
      case TOp::kModI: {
        const std::int64_t a = I[static_cast<std::size_t>(in.b)];
        const std::int64_t b = I[static_cast<std::size_t>(in.c)];
        if (b == 0) run_fault(in.line, "integer modulo by zero");
        std::int64_t m = a % b;
        if (m != 0 && ((a < 0) != (b < 0))) m += b;
        I[static_cast<std::size_t>(in.a)] = m;
        ++pc;
        break;
      }
      case TOp::kPowI:
        I[static_cast<std::size_t>(in.a)] =
            jit_ipow(I[static_cast<std::size_t>(in.b)],
                     I[static_cast<std::size_t>(in.c)], in.line);
        ++pc;
        break;
      case TOp::kNegI: I[static_cast<std::size_t>(in.a)] = -I[static_cast<std::size_t>(in.b)]; ++pc; break;
      case TOp::kAddF: F[static_cast<std::size_t>(in.a)] = F[static_cast<std::size_t>(in.b)] + F[static_cast<std::size_t>(in.c)]; ++pc; break;
      case TOp::kSubF: F[static_cast<std::size_t>(in.a)] = F[static_cast<std::size_t>(in.b)] - F[static_cast<std::size_t>(in.c)]; ++pc; break;
      case TOp::kMulF: F[static_cast<std::size_t>(in.a)] = F[static_cast<std::size_t>(in.b)] * F[static_cast<std::size_t>(in.c)]; ++pc; break;
      case TOp::kDivF: {
        const double b = F[static_cast<std::size_t>(in.c)];
        if (b == 0.0) run_fault(in.line, "division by zero");
        F[static_cast<std::size_t>(in.a)] = F[static_cast<std::size_t>(in.b)] / b;
        ++pc;
        break;
      }
      case TOp::kFloorDivF: {
        const double b = F[static_cast<std::size_t>(in.c)];
        if (b == 0.0) run_fault(in.line, "division by zero");
        F[static_cast<std::size_t>(in.a)] =
            std::floor(F[static_cast<std::size_t>(in.b)] / b);
        ++pc;
        break;
      }
      case TOp::kModF: {
        const double a = F[static_cast<std::size_t>(in.b)];
        const double b = F[static_cast<std::size_t>(in.c)];
        if (b == 0.0) run_fault(in.line, "modulo by zero");
        F[static_cast<std::size_t>(in.a)] = a - std::floor(a / b) * b;
        ++pc;
        break;
      }
      case TOp::kPowF:
        F[static_cast<std::size_t>(in.a)] =
            std::pow(F[static_cast<std::size_t>(in.b)],
                     F[static_cast<std::size_t>(in.c)]);
        ++pc;
        break;
      case TOp::kNegF: F[static_cast<std::size_t>(in.a)] = -F[static_cast<std::size_t>(in.b)]; ++pc; break;
      case TOp::kCmpEqI: I[static_cast<std::size_t>(in.a)] = I[static_cast<std::size_t>(in.b)] == I[static_cast<std::size_t>(in.c)]; ++pc; break;
      case TOp::kCmpNeI: I[static_cast<std::size_t>(in.a)] = I[static_cast<std::size_t>(in.b)] != I[static_cast<std::size_t>(in.c)]; ++pc; break;
      case TOp::kCmpLtI: I[static_cast<std::size_t>(in.a)] = I[static_cast<std::size_t>(in.b)] < I[static_cast<std::size_t>(in.c)]; ++pc; break;
      case TOp::kCmpLeI: I[static_cast<std::size_t>(in.a)] = I[static_cast<std::size_t>(in.b)] <= I[static_cast<std::size_t>(in.c)]; ++pc; break;
      case TOp::kCmpGtI: I[static_cast<std::size_t>(in.a)] = I[static_cast<std::size_t>(in.b)] > I[static_cast<std::size_t>(in.c)]; ++pc; break;
      case TOp::kCmpGeI: I[static_cast<std::size_t>(in.a)] = I[static_cast<std::size_t>(in.b)] >= I[static_cast<std::size_t>(in.c)]; ++pc; break;
      case TOp::kCmpEqF: I[static_cast<std::size_t>(in.a)] = F[static_cast<std::size_t>(in.b)] == F[static_cast<std::size_t>(in.c)]; ++pc; break;
      case TOp::kCmpNeF: I[static_cast<std::size_t>(in.a)] = F[static_cast<std::size_t>(in.b)] != F[static_cast<std::size_t>(in.c)]; ++pc; break;
      case TOp::kCmpLtF: I[static_cast<std::size_t>(in.a)] = F[static_cast<std::size_t>(in.b)] < F[static_cast<std::size_t>(in.c)]; ++pc; break;
      case TOp::kCmpLeF: I[static_cast<std::size_t>(in.a)] = F[static_cast<std::size_t>(in.b)] <= F[static_cast<std::size_t>(in.c)]; ++pc; break;
      case TOp::kCmpGtF: I[static_cast<std::size_t>(in.a)] = F[static_cast<std::size_t>(in.b)] > F[static_cast<std::size_t>(in.c)]; ++pc; break;
      case TOp::kCmpGeF: I[static_cast<std::size_t>(in.a)] = F[static_cast<std::size_t>(in.b)] >= F[static_cast<std::size_t>(in.c)]; ++pc; break;
      case TOp::kNotI: I[static_cast<std::size_t>(in.a)] = I[static_cast<std::size_t>(in.b)] == 0; ++pc; break;
      case TOp::kArrLoad: {
        auto arr = A[static_cast<std::size_t>(in.b)];
        F[static_cast<std::size_t>(in.a)] =
            arr[check_index(I[static_cast<std::size_t>(in.c)], arr.size(),
                            in.line)];
        ++pc;
        break;
      }
      case TOp::kArrStore: {
        auto arr = A[static_cast<std::size_t>(in.a)];
        arr[check_index(I[static_cast<std::size_t>(in.b)], arr.size(),
                        in.line)] = F[static_cast<std::size_t>(in.c)];
        ++pc;
        break;
      }
      case TOp::kArrLen:
        I[static_cast<std::size_t>(in.a)] = static_cast<std::int64_t>(
            A[static_cast<std::size_t>(in.b)].size());
        ++pc;
        break;
      case TOp::kSqrtF: F[static_cast<std::size_t>(in.a)] = std::sqrt(F[static_cast<std::size_t>(in.b)]); ++pc; break;
      case TOp::kAbsF: F[static_cast<std::size_t>(in.a)] = std::abs(F[static_cast<std::size_t>(in.b)]); ++pc; break;
      case TOp::kAbsI: I[static_cast<std::size_t>(in.a)] = std::abs(I[static_cast<std::size_t>(in.b)]); ++pc; break;
      case TOp::kMinF: F[static_cast<std::size_t>(in.a)] = std::min(F[static_cast<std::size_t>(in.b)], F[static_cast<std::size_t>(in.c)]); ++pc; break;
      case TOp::kMaxF: F[static_cast<std::size_t>(in.a)] = std::max(F[static_cast<std::size_t>(in.b)], F[static_cast<std::size_t>(in.c)]); ++pc; break;
      case TOp::kCallFn: {
        const JitFunction& callee = *callees_[static_cast<std::size_t>(in.b)];
        const CallSite& site = callsites_[static_cast<std::size_t>(in.c)];
        std::vector<std::int64_t> ci(
            static_cast<std::size_t>(callee.num_iregs_), 0);
        std::vector<double> cf(static_cast<std::size_t>(callee.num_fregs_),
                               0.0);
        std::vector<std::span<double>> ca(
            static_cast<std::size_t>(callee.num_aregs_));
        for (std::size_t k = 0; k < site.args.size(); ++k) {
          const auto preg =
              static_cast<std::size_t>(callee.param_regs_[k]);
          const auto [t, reg] = site.args[k];
          switch (callee.param_types_[k]) {
            case JitType::kFloat:
              cf[preg] = F[static_cast<std::size_t>(reg)];
              break;
            case JitType::kArray:
              ca[preg] = A[static_cast<std::size_t>(reg)];
              break;
            default:
              ci[preg] = I[static_cast<std::size_t>(reg)];
              break;
          }
        }
        std::int64_t cir = 0;
        const double cfr = callee.run(ci, cf, ca, cir);
        if (callee.return_type_ == JitType::kFloat) {
          F[static_cast<std::size_t>(in.a)] = cfr;
        } else {
          I[static_cast<std::size_t>(in.a)] = cir;
        }
        ++pc;
        break;
      }
      case TOp::kJmp: pc = static_cast<std::size_t>(in.jump); break;
      case TOp::kJz:
        pc = I[static_cast<std::size_t>(in.a)] == 0
                 ? static_cast<std::size_t>(in.jump)
                 : pc + 1;
        break;
      case TOp::kForCheckI: {
        const std::int64_t v = I[static_cast<std::size_t>(in.a)];
        const std::int64_t stop = I[static_cast<std::size_t>(in.b)];
        const std::int64_t step = I[static_cast<std::size_t>(in.c)];
        if (step == 0) run_fault(in.line, "range() step must not be zero");
        const bool more = step > 0 ? v < stop : v > stop;
        pc = more ? pc + 1 : static_cast<std::size_t>(in.jump);
        break;
      }
      case TOp::kForIncrI:
        I[static_cast<std::size_t>(in.a)] += I[static_cast<std::size_t>(in.c)];
        pc = static_cast<std::size_t>(in.jump);
        break;
      case TOp::kRetI:
        iret = I[static_cast<std::size_t>(in.a)];
        return 0.0;
      case TOp::kRetF:
        return F[static_cast<std::size_t>(in.a)];
      case TOp::kRetNone:
        return 0.0;
    }
  }
  return 0.0;
}

Value JitFunction::call(std::span<const Value> args) const {
  require<RuntimeFault>(args.size() == param_types_.size(),
                        name_ + "(): argument count mismatch");
  std::vector<std::int64_t> I(static_cast<std::size_t>(num_iregs_), 0);
  std::vector<double> F(static_cast<std::size_t>(num_fregs_), 0.0);
  std::vector<std::span<double>> A(static_cast<std::size_t>(num_aregs_));
  for (std::size_t i = 0; i < args.size(); ++i) {
    const auto reg = static_cast<std::size_t>(param_regs_[i]);
    switch (param_types_[i]) {
      case JitType::kFloat:
        F[reg] = args[i].to_double();
        break;
      case JitType::kArray:
        require<RuntimeFault>(args[i].is_array(),
                              name_ + "(): expected an array argument");
        A[reg] = args[i].as_array()->span();
        break;
      default:
        I[reg] = args[i].to_int();
        break;
    }
  }
  std::int64_t iret = 0;
  const double fret = run(I, F, A, iret);
  switch (return_type_) {
    case JitType::kFloat: return Value::of(fret);
    case JitType::kInt: return Value::of(iret);
    case JitType::kBool: return Value::of(iret != 0);
    default: return Value::none();
  }
}

double JitFunction::call_array_to_float(std::span<double> array) const {
  require<RuntimeFault>(
      param_types_.size() == 1 && param_types_[0] == JitType::kArray &&
          return_type_ == JitType::kFloat,
      name_ + "(): signature is not (array) -> float");
  std::vector<std::int64_t> I(static_cast<std::size_t>(num_iregs_), 0);
  std::vector<double> F(static_cast<std::size_t>(num_fregs_), 0.0);
  std::vector<std::span<double>> A(static_cast<std::size_t>(num_aregs_));
  A[static_cast<std::size_t>(param_regs_[0])] = array;
  std::int64_t iret = 0;
  return run(I, F, A, iret);
}

}  // namespace pyhpc::seamless
