// Recursive-descent parser for MiniPy with precedence-climbing expressions.
#include <map>

#include "obs/trace.hpp"
#include "seamless/ast.hpp"
#include "seamless/token.hpp"
#include "util/error.hpp"
#include "util/string_util.hpp"

namespace pyhpc::seamless {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Module parse_module() {
    Module mod;
    skip_newlines();
    while (!at(TokenKind::kEndOfFile)) {
      // Decorators: @name lines before the def (the paper writes @jit).
      std::vector<std::string> decorators;
      while (at(TokenKind::kAt)) {
        advance();
        decorators.push_back(expect(TokenKind::kName, "decorator name").text);
        expect(TokenKind::kNewline, "newline after decorator");
        skip_newlines();
      }
      require_kind(TokenKind::kDef, "expected 'def' at top level");
      advance();
      mod.functions.push_back(parse_function());
      mod.functions.back().decorators = std::move(decorators);
      skip_newlines();
    }
    return mod;
  }

  ExprPtr parse_single_expression() {
    ExprPtr e = parse_expr();
    skip_newlines();
    require_kind(TokenKind::kEndOfFile, "trailing input after expression");
    return e;
  }

 private:
  // ---- token plumbing -----------------------------------------------------

  const Token& peek() const { return tokens_[pos_]; }
  const Token& peek2() const {
    return tokens_[std::min(pos_ + 1, tokens_.size() - 1)];
  }
  bool at(TokenKind k) const { return peek().kind == k; }

  Token advance() { return tokens_[pos_++]; }

  bool accept(TokenKind k) {
    if (at(k)) {
      ++pos_;
      return true;
    }
    return false;
  }

  Token expect(TokenKind k, const std::string& what) {
    if (!at(k)) {
      fail(util::cat("expected ", what, ", found '", peek().describe(), "'"));
    }
    return advance();
  }

  void require_kind(TokenKind k, const std::string& msg) {
    if (!at(k)) fail(msg + " (found '" + peek().describe() + "')");
  }

  [[noreturn]] void fail(const std::string& msg) const {
    throw CompileError(util::cat("line ", peek().line, ": ", msg));
  }

  void skip_newlines() {
    while (accept(TokenKind::kNewline)) {
    }
  }

  // ---- declarations ---------------------------------------------------------

  FunctionDef parse_function() {
    FunctionDef fn;
    fn.line = tokens_[pos_ - 1].line;  // the 'def'
    fn.name = expect(TokenKind::kName, "function name").text;
    expect(TokenKind::kLParen, "'('");
    if (!at(TokenKind::kRParen)) {
      for (;;) {
        fn.params.push_back(expect(TokenKind::kName, "parameter name").text);
        if (!accept(TokenKind::kComma)) break;
      }
    }
    expect(TokenKind::kRParen, "')'");
    expect(TokenKind::kColon, "':'");
    fn.body = parse_block();
    return fn;
  }

  Block parse_block() {
    expect(TokenKind::kNewline, "newline before block");
    skip_newlines();
    expect(TokenKind::kIndent, "indented block");
    Block block;
    while (!at(TokenKind::kDedent) && !at(TokenKind::kEndOfFile)) {
      block.push_back(parse_statement());
      skip_newlines();
    }
    expect(TokenKind::kDedent, "dedent");
    require(!block.empty(), "empty block");
    return block;
  }

  // ---- statements -------------------------------------------------------------

  StmtPtr parse_statement() {
    const int line = peek().line;
    switch (peek().kind) {
      case TokenKind::kReturn: {
        advance();
        auto s = std::make_unique<Stmt>(StmtKind::kReturn, line);
        if (!at(TokenKind::kNewline)) s->value = parse_expr();
        expect(TokenKind::kNewline, "newline after return");
        return s;
      }
      case TokenKind::kPass: {
        advance();
        expect(TokenKind::kNewline, "newline after pass");
        return std::make_unique<Stmt>(StmtKind::kPass, line);
      }
      case TokenKind::kBreak: {
        advance();
        expect(TokenKind::kNewline, "newline after break");
        return std::make_unique<Stmt>(StmtKind::kBreak, line);
      }
      case TokenKind::kContinue: {
        advance();
        expect(TokenKind::kNewline, "newline after continue");
        return std::make_unique<Stmt>(StmtKind::kContinue, line);
      }
      case TokenKind::kIf:
        return parse_if();
      case TokenKind::kWhile: {
        advance();
        auto s = std::make_unique<Stmt>(StmtKind::kWhile, line);
        s->value = parse_expr();
        expect(TokenKind::kColon, "':' after while condition");
        s->body = parse_block();
        return s;
      }
      case TokenKind::kFor:
        return parse_for(line);
      default:
        return parse_assignment_or_expr(line);
    }
  }

  StmtPtr parse_if() {
    const int line = peek().line;
    auto s = std::make_unique<Stmt>(StmtKind::kIf, line);
    expect(TokenKind::kIf, "'if'");
    s->conditions.push_back(parse_expr());
    expect(TokenKind::kColon, "':' after if condition");
    s->arms.push_back(parse_block());
    skip_newlines();
    while (at(TokenKind::kElif)) {
      advance();
      s->conditions.push_back(parse_expr());
      expect(TokenKind::kColon, "':' after elif condition");
      s->arms.push_back(parse_block());
      skip_newlines();
    }
    if (at(TokenKind::kElse)) {
      advance();
      expect(TokenKind::kColon, "':' after else");
      s->orelse = parse_block();
    }
    return s;
  }

  StmtPtr parse_for(int line) {
    expect(TokenKind::kFor, "'for'");
    auto s = std::make_unique<Stmt>(StmtKind::kForRange, line);
    s->name = expect(TokenKind::kName, "loop variable").text;
    expect(TokenKind::kIn, "'in'");
    const Token range_name = expect(TokenKind::kName, "range(...)");
    if (range_name.text != "range") {
      fail("only 'for <var> in range(...)' loops are supported");
    }
    expect(TokenKind::kLParen, "'(' after range");
    ExprPtr first = parse_expr();
    if (accept(TokenKind::kComma)) {
      s->start = std::move(first);
      s->stop = parse_expr();
      if (accept(TokenKind::kComma)) {
        s->step = parse_expr();
      }
    } else {
      s->stop = std::move(first);
    }
    expect(TokenKind::kRParen, "')' after range arguments");
    expect(TokenKind::kColon, "':' after for header");
    s->body = parse_block();
    return s;
  }

  StmtPtr parse_assignment_or_expr(int line) {
    // name = / name op= ...
    if (at(TokenKind::kName)) {
      const TokenKind next = peek2().kind;
      if (next == TokenKind::kEq || next == TokenKind::kPlusEq ||
          next == TokenKind::kMinusEq || next == TokenKind::kStarEq ||
          next == TokenKind::kSlashEq) {
        const std::string name = advance().text;
        const TokenKind op = advance().kind;
        StmtPtr s;
        if (op == TokenKind::kEq) {
          s = std::make_unique<Stmt>(StmtKind::kAssign, line);
        } else {
          s = std::make_unique<Stmt>(StmtKind::kAugAssign, line);
          s->bin_op = aug_op(op);
        }
        s->name = name;
        s->value = parse_expr();
        expect(TokenKind::kNewline, "newline after assignment");
        return s;
      }
    }
    // General expression; may turn out to be an index assignment.
    ExprPtr e = parse_expr();
    if (at(TokenKind::kEq) || at(TokenKind::kPlusEq) ||
        at(TokenKind::kMinusEq) || at(TokenKind::kStarEq) ||
        at(TokenKind::kSlashEq)) {
      if (e->kind != ExprKind::kIndex) {
        fail("only names and subscripts can be assigned");
      }
      const TokenKind op = advance().kind;
      auto s = std::make_unique<Stmt>(StmtKind::kIndexAssign, line);
      s->target = std::move(e->lhs);
      s->index = std::move(e->rhs);
      if (op != TokenKind::kEq) {
        s->augmented = true;
        s->bin_op = aug_op(op);
      }
      s->value = parse_expr();
      expect(TokenKind::kNewline, "newline after assignment");
      return s;
    }
    auto s = std::make_unique<Stmt>(StmtKind::kExpr, line);
    s->value = std::move(e);
    expect(TokenKind::kNewline, "newline after expression");
    return s;
  }

  static BinOp aug_op(TokenKind k) {
    switch (k) {
      case TokenKind::kPlusEq: return BinOp::kAdd;
      case TokenKind::kMinusEq: return BinOp::kSub;
      case TokenKind::kStarEq: return BinOp::kMul;
      case TokenKind::kSlashEq: return BinOp::kDiv;
      default: throw CompileError("internal: bad augmented operator");
    }
  }

  // ---- expressions (precedence climbing) -------------------------------------
  // or < and < not < comparison < +- < */ // % < unary - < ** < postfix

  ExprPtr parse_expr() { return parse_or(); }

  ExprPtr parse_or() {
    ExprPtr lhs = parse_and();
    while (at(TokenKind::kOr)) {
      const int line = advance().line;
      auto e = std::make_unique<Expr>(ExprKind::kBoolOp, line);
      e->is_and = false;
      e->lhs = std::move(lhs);
      e->rhs = parse_and();
      lhs = std::move(e);
    }
    return lhs;
  }

  ExprPtr parse_and() {
    ExprPtr lhs = parse_not();
    while (at(TokenKind::kAnd)) {
      const int line = advance().line;
      auto e = std::make_unique<Expr>(ExprKind::kBoolOp, line);
      e->is_and = true;
      e->lhs = std::move(lhs);
      e->rhs = parse_not();
      lhs = std::move(e);
    }
    return lhs;
  }

  ExprPtr parse_not() {
    if (at(TokenKind::kNot)) {
      const int line = advance().line;
      auto e = std::make_unique<Expr>(ExprKind::kUnary, line);
      e->unary_op = UnaryOp::kNot;
      e->lhs = parse_not();
      return e;
    }
    return parse_comparison();
  }

  ExprPtr parse_comparison() {
    ExprPtr lhs = parse_additive();
    for (;;) {
      BinOp op;
      switch (peek().kind) {
        case TokenKind::kEqEq: op = BinOp::kEq; break;
        case TokenKind::kNotEq: op = BinOp::kNe; break;
        case TokenKind::kLt: op = BinOp::kLt; break;
        case TokenKind::kLe: op = BinOp::kLe; break;
        case TokenKind::kGt: op = BinOp::kGt; break;
        case TokenKind::kGe: op = BinOp::kGe; break;
        default: return lhs;
      }
      const int line = advance().line;
      auto e = std::make_unique<Expr>(ExprKind::kBinary, line);
      e->bin_op = op;
      e->lhs = std::move(lhs);
      e->rhs = parse_additive();
      lhs = std::move(e);
    }
  }

  ExprPtr parse_additive() {
    ExprPtr lhs = parse_multiplicative();
    for (;;) {
      BinOp op;
      if (at(TokenKind::kPlus)) op = BinOp::kAdd;
      else if (at(TokenKind::kMinus)) op = BinOp::kSub;
      else return lhs;
      const int line = advance().line;
      auto e = std::make_unique<Expr>(ExprKind::kBinary, line);
      e->bin_op = op;
      e->lhs = std::move(lhs);
      e->rhs = parse_multiplicative();
      lhs = std::move(e);
    }
  }

  ExprPtr parse_multiplicative() {
    ExprPtr lhs = parse_unary();
    for (;;) {
      BinOp op;
      if (at(TokenKind::kStar)) op = BinOp::kMul;
      else if (at(TokenKind::kSlash)) op = BinOp::kDiv;
      else if (at(TokenKind::kDoubleSlash)) op = BinOp::kFloorDiv;
      else if (at(TokenKind::kPercent)) op = BinOp::kMod;
      else return lhs;
      const int line = advance().line;
      auto e = std::make_unique<Expr>(ExprKind::kBinary, line);
      e->bin_op = op;
      e->lhs = std::move(lhs);
      e->rhs = parse_unary();
      lhs = std::move(e);
    }
  }

  ExprPtr parse_unary() {
    if (at(TokenKind::kMinus)) {
      const int line = advance().line;
      auto e = std::make_unique<Expr>(ExprKind::kUnary, line);
      e->unary_op = UnaryOp::kNeg;
      e->lhs = parse_unary();
      return e;
    }
    return parse_power();
  }

  ExprPtr parse_power() {
    ExprPtr base = parse_postfix();
    if (at(TokenKind::kDoubleStar)) {
      const int line = advance().line;
      auto e = std::make_unique<Expr>(ExprKind::kBinary, line);
      e->bin_op = BinOp::kPow;
      e->lhs = std::move(base);
      e->rhs = parse_unary();  // right-associative, binds tighter than unary-
      return e;
    }
    return base;
  }

  ExprPtr parse_postfix() {
    ExprPtr e = parse_primary();
    for (;;) {
      if (at(TokenKind::kLBracket)) {
        const int line = advance().line;
        auto idx = std::make_unique<Expr>(ExprKind::kIndex, line);
        idx->lhs = std::move(e);
        idx->rhs = parse_expr();
        expect(TokenKind::kRBracket, "']'");
        e = std::move(idx);
      } else {
        return e;
      }
    }
  }

  ExprPtr parse_primary() {
    const Token t = peek();
    switch (t.kind) {
      case TokenKind::kInt: {
        advance();
        auto e = std::make_unique<Expr>(ExprKind::kIntLit, t.line);
        e->int_value = t.int_value;
        return e;
      }
      case TokenKind::kFloat: {
        advance();
        auto e = std::make_unique<Expr>(ExprKind::kFloatLit, t.line);
        e->float_value = t.float_value;
        return e;
      }
      case TokenKind::kString: {
        advance();
        auto e = std::make_unique<Expr>(ExprKind::kStringLit, t.line);
        e->str_value = t.text;
        return e;
      }
      case TokenKind::kTrue:
      case TokenKind::kFalse: {
        advance();
        auto e = std::make_unique<Expr>(ExprKind::kBoolLit, t.line);
        e->bool_value = t.kind == TokenKind::kTrue;
        return e;
      }
      case TokenKind::kNone: {
        advance();
        return std::make_unique<Expr>(ExprKind::kNoneLit, t.line);
      }
      case TokenKind::kName: {
        advance();
        if (at(TokenKind::kLParen)) {
          advance();
          auto e = std::make_unique<Expr>(ExprKind::kCall, t.line);
          e->str_value = t.text;
          if (!at(TokenKind::kRParen)) {
            for (;;) {
              e->args.push_back(parse_expr());
              if (!accept(TokenKind::kComma)) break;
            }
          }
          expect(TokenKind::kRParen, "')' after call arguments");
          return e;
        }
        auto e = std::make_unique<Expr>(ExprKind::kName, t.line);
        e->str_value = t.text;
        return e;
      }
      case TokenKind::kLParen: {
        advance();
        ExprPtr e = parse_expr();
        expect(TokenKind::kRParen, "')'");
        return e;
      }
      default:
        fail(util::cat("unexpected token '", t.describe(), "' in expression"));
    }
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

const FunctionDef& Module::function(const std::string& name) const {
  for (const auto& fn : functions) {
    if (fn.name == name) return fn;
  }
  throw CompileError("module has no function '" + name + "'");
}

Module parse(const std::string& source) {
  obs::Span span("parse", "seamless");  // nests the lex span inside it
  if (span.active()) {
    span.arg("source_bytes", static_cast<std::int64_t>(source.size()));
  }
  Parser parser(tokenize(source));
  return parser.parse_module();
}

ExprPtr parse_expression(const std::string& source) {
  Parser parser(tokenize(source));
  return parser.parse_single_expression();
}

}  // namespace pyhpc::seamless
