// Token stream for MiniPy — the Python subset Seamless compiles. The lexer
// produces logical-line tokens with INDENT/DEDENT pairs, so the parser sees
// Python's block structure directly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pyhpc::seamless {

enum class TokenKind {
  // literals / identifiers
  kInt,
  kFloat,
  kName,
  kString,
  // keywords
  kDef,
  kReturn,
  kIf,
  kElif,
  kElse,
  kWhile,
  kFor,
  kIn,
  kBreak,
  kContinue,
  kPass,
  kAnd,
  kOr,
  kNot,
  kTrue,
  kFalse,
  kNone,
  // operators / punctuation
  kPlus,
  kMinus,
  kStar,
  kDoubleStar,
  kSlash,
  kDoubleSlash,
  kPercent,
  kEq,         // =
  kPlusEq,
  kMinusEq,
  kStarEq,
  kSlashEq,
  kEqEq,
  kNotEq,
  kLt,
  kLe,
  kGt,
  kGe,
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kComma,
  kColon,
  kAt,
  // structure
  kNewline,
  kIndent,
  kDedent,
  kEndOfFile,
};

struct Token {
  TokenKind kind = TokenKind::kEndOfFile;
  std::string text;        // raw text for names/literals
  std::int64_t int_value = 0;
  double float_value = 0.0;
  int line = 0;

  std::string describe() const;
};

/// Tokenizes MiniPy source. Throws CompileError with line info on bad
/// input (tabs in indentation, inconsistent dedents, unknown characters).
std::vector<Token> tokenize(const std::string& source);

}  // namespace pyhpc::seamless
