// Stack bytecode for MiniPy — the middle execution tier. Still boxed
// Values, but with slot-indexed locals, pre-resolved calls, and flat
// dispatch instead of tree walking; roughly CPython's own architecture.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "seamless/ast.hpp"
#include "seamless/interpreter.hpp"
#include "seamless/value.hpp"

namespace pyhpc::seamless {

enum class OpCode : std::uint8_t {
  kLoadConst,      // push consts[a]
  kLoadLocal,      // push locals[a] (checked defined)
  kStoreLocal,     // locals[a] = pop
  kBinary,         // a = BinOp; rhs = pop, lhs = pop, push op(lhs, rhs)
  kUnary,          // a = UnaryOp
  kJump,           // pc = a
  kPopJumpIfFalse, // v = pop; if !truthy pc = a
  kJumpIfFalseOrPop,  // if !truthy(top) pc = a (keep); else pop
  kJumpIfTrueOrPop,   // if truthy(top) pc = a (keep); else pop
  kPop,
  kCall,        // a = module function index, b = nargs
  kCallNamed,   // a = const index of the name (string), b = nargs: builtin
  kIndexLoad,   // index = pop, target = pop, push target[index]
  kIndexStore,  // value = pop, index = pop, target = pop
  kForCheck,    // a = var slot, b = stop slot, c = step slot; jump to
                // operand `jump` when the loop is exhausted
  kForIncr,     // a = var slot, c = step slot; jump back to `jump`
  kReturnValue,
  kReturnNone,
  // Superinstructions produced by the peephole pass (fewer dispatches and
  // stack round-trips on the hot paths):
  kBinaryLL,     // push binop(locals[a], locals[b]); c = BinOp
  kIndexLoadLL,  // push locals[a][ locals[b] ]
  kMovLocal,     // locals[a] = locals[b]
  kAugLocal,     // locals[a] = binop(locals[a], pop); c = BinOp
};

struct Instr {
  OpCode op;
  std::int32_t a = 0;
  std::int32_t b = 0;
  std::int32_t c = 0;
  std::int32_t jump = -1;
  std::int32_t line = 0;
};

struct CompiledFunction {
  std::string name;
  int num_params = 0;
  int num_locals = 0;
  std::vector<Value> consts;
  std::vector<Instr> code;
  std::vector<std::string> local_names;  // slot -> name (diagnostics)

  std::string disassemble() const;
};

/// Compiles one function; `function_index` resolves module-level calls.
CompiledFunction compile_function(
    const FunctionDef& fn, const std::map<std::string, int>& function_index);

/// Fuses common instruction windows into superinstructions (jump-target
/// aware; applied automatically by compile_function). Exposed for tests
/// and the tier ablation bench.
void peephole_optimize(CompiledFunction& fn);

/// Bytecode virtual machine over a whole module.
class VirtualMachine {
 public:
  explicit VirtualMachine(const Module& module);

  void register_builtin(const std::string& name, BuiltinFn fn);

  Value call(const std::string& name, std::vector<Value> args) const;

  const CompiledFunction& compiled(const std::string& name) const;

 private:
  Value run(const CompiledFunction& fn, std::vector<Value> locals,
            int depth) const;

  std::vector<CompiledFunction> functions_;
  std::map<std::string, int> index_;
  std::map<std::string, BuiltinFn> builtins_;
};

}  // namespace pyhpc::seamless
