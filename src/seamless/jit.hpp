// The Seamless "JIT" tier: type discovery plus compilation to a typed
// register IR executed without any boxing — the offline stand-in for the
// paper's LLVM backend (DESIGN.md §2). The pipeline matches §IV.A/IV.B:
//
//   "The above will work and use type discovery to type res as a floating
//    point variable and to type i as an integer type."
//
// 1. Parameter types come from the call site (or explicit hints, as with
//    jit.compile) — MiniPy ints/floats/bools/float64 arrays.
// 2. A fixpoint pass propagates types through assignments, operators, and
//    the typed intrinsic builtins; any dynamic feature (lists, strings,
//    polymorphic variables, unknown calls) raises NotJittable and callers
//    fall back to the VM/interpreter.
// 3. Code generation emits register-register typed instructions (separate
//    int64/double banks, unboxed array loads/stores) run by a flat
//    dispatch loop.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "seamless/ast.hpp"
#include "seamless/value.hpp"

namespace pyhpc::seamless {

/// Raised when a function uses features outside the typed subset.
class NotJittable : public CompileError {
 public:
  explicit NotJittable(const std::string& what) : CompileError(what) {}
};

enum class JitType : std::uint8_t {
  kUnknown,
  kNone,
  kBool,
  kInt,
  kFloat,
  kArray,  // float64 buffer
};

std::string jit_type_name(JitType t);

/// Infers a parameter type from a boxed value (the "type discovery from
/// the first call" path).
JitType jit_type_of(const Value& v);

// Typed register instructions.
enum class TOp : std::uint8_t {
  kLoadImmI, kLoadImmF,
  kMovI, kMovF, kIntToFloat, kFloatToInt,
  kAddI, kSubI, kMulI, kFloorDivI, kModI, kPowI, kNegI,
  kAddF, kSubF, kMulF, kDivF, kFloorDivF, kModF, kPowF, kNegF,
  kCmpEqI, kCmpNeI, kCmpLtI, kCmpLeI, kCmpGtI, kCmpGeI,
  kCmpEqF, kCmpNeF, kCmpLtF, kCmpLeF, kCmpGtF, kCmpGeF,
  kNotI,
  kArrLoad,   // F[a] = A[b][ I[c] ]  (negative wrap + bounds check)
  kArrStore,  // A[a][ I[b] ] = F[c]
  kArrLen,    // I[a] = len(A[b])
  kSqrtF, kAbsF, kAbsI, kMinF, kMaxF,
  kCallFn,         // call callees[b] with callsites[c] args; result -> reg a
  kJmp,            // -> jump
  kJz,             // if I[a] == 0 -> jump
  kForCheckI,      // if exhausted(I[a], I[b], I[c]) -> jump
  kForIncrI,       // I[a] += I[c]; -> jump
  kRetI, kRetF, kRetNone,
};

struct TInstr {
  TOp op;
  std::int32_t a = 0;
  std::int32_t b = 0;
  std::int32_t c = 0;
  std::int32_t jump = -1;
  std::int64_t imm_i = 0;
  double imm_f = 0.0;
  std::int32_t line = 0;
};

/// Argument registers for one kCallFn site (types select the bank).
struct CallSite {
  std::vector<std::pair<JitType, std::int32_t>> args;
};

/// A function compiled for one concrete signature.
class JitFunction {
 public:
  const std::vector<JitType>& param_types() const { return param_types_; }
  JitType return_type() const { return return_type_; }
  std::size_t code_size() const { return code_.size(); }

  // Read-only IR access for the static-compilation backend (transpile.hpp).
  const std::string& name() const { return name_; }
  const std::vector<TInstr>& code() const { return code_; }
  const std::vector<std::int32_t>& param_regs() const { return param_regs_; }
  int num_iregs() const { return num_iregs_; }
  int num_fregs() const { return num_fregs_; }
  int num_aregs() const { return num_aregs_; }
  const std::vector<std::shared_ptr<JitFunction>>& callees() const {
    return callees_;
  }
  const std::vector<CallSite>& callsites() const { return callsites_; }

  /// Boxed entry point: converts arguments at the boundary, runs unboxed.
  Value call(std::span<const Value> args) const;

  /// Fast path for the common (array) -> float signature (no boxing at
  /// all) — what the embed API uses.
  double call_array_to_float(std::span<double> array) const;

 private:
  friend class JitCompiler;

  double run(std::vector<std::int64_t>& iregs, std::vector<double>& fregs,
             std::vector<std::span<double>>& aregs,
             std::int64_t& iret) const;  // returns fret

  std::string name_;
  std::vector<JitType> param_types_;
  JitType return_type_ = JitType::kNone;
  int num_iregs_ = 0;
  int num_fregs_ = 0;
  int num_aregs_ = 0;
  // Parameter -> register mapping (bank chosen by type).
  std::vector<std::int32_t> param_regs_;
  std::vector<TInstr> code_;
  // Module-function calls: compiled callees (per call-site signature) and
  // the argument registers of each call site.
  std::vector<std::shared_ptr<JitFunction>> callees_;
  std::vector<CallSite> callsites_;
};

/// Compiles `module.function(name)` for the given parameter types. Throws
/// NotJittable when the function leaves the typed subset, CompileError on
/// arity mismatch.
JitFunction jit_compile(const Module& module, const std::string& name,
                        const std::vector<JitType>& param_types);

}  // namespace pyhpc::seamless
