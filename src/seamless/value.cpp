#include "seamless/value.hpp"

#include <cmath>

#include "util/string_util.hpp"

namespace pyhpc::seamless {

namespace {

[[noreturn]] void fault(int line, const std::string& msg) {
  throw RuntimeFault(util::cat("line ", line, ": ", msg));
}

std::int64_t ipow(std::int64_t base, std::int64_t exp) {
  std::int64_t result = 1;
  while (exp > 0) {
    if (exp & 1) result *= base;
    base *= base;
    exp >>= 1;
  }
  return result;
}

std::int64_t floordiv(std::int64_t a, std::int64_t b, int line) {
  if (b == 0) fault(line, "integer division by zero");
  std::int64_t q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}

std::int64_t pymod(std::int64_t a, std::int64_t b, int line) {
  if (b == 0) fault(line, "integer modulo by zero");
  std::int64_t m = a % b;
  if (m != 0 && ((a < 0) != (b < 0))) m += b;
  return m;
}

}  // namespace

double Value::to_double() const {
  if (is_float()) return as_float();
  if (is_int()) return static_cast<double>(as_int());
  if (is_bool()) return as_bool() ? 1.0 : 0.0;
  throw RuntimeFault("cannot convert " + type_name() + " to float");
}

std::int64_t Value::to_int() const {
  if (is_int()) return as_int();
  if (is_bool()) return as_bool() ? 1 : 0;
  if (is_float()) {
    const double d = as_float();
    return static_cast<std::int64_t>(d);
  }
  throw RuntimeFault("cannot convert " + type_name() + " to int");
}

bool Value::truthy() const {
  if (is_none()) return false;
  if (is_bool()) return as_bool();
  if (is_int()) return as_int() != 0;
  if (is_float()) return as_float() != 0.0;
  if (is_string()) return !as_string().empty();
  if (is_list()) return !as_list()->items.empty();
  if (is_array()) return as_array()->size != 0;
  return false;
}

std::string Value::type_name() const {
  if (is_none()) return "None";
  if (is_bool()) return "bool";
  if (is_int()) return "int";
  if (is_float()) return "float";
  if (is_string()) return "str";
  if (is_list()) return "list";
  if (is_array()) return "array";
  return "?";
}

std::string Value::repr() const {
  if (is_none()) return "None";
  if (is_bool()) return as_bool() ? "True" : "False";
  if (is_int()) return std::to_string(as_int());
  if (is_float()) return std::to_string(as_float());
  if (is_string()) return "'" + as_string() + "'";
  if (is_list()) {
    std::vector<std::string> parts;
    for (const auto& item : as_list()->items) parts.push_back(item.repr());
    return "[" + util::join(parts, ", ") + "]";
  }
  if (is_array()) {
    return util::cat("array(n=", as_array()->size, ")");
  }
  return "?";
}

Value binary_op(BinOp op, const Value& lhs, const Value& rhs, int line) {
  // Comparisons first (they always yield bool).
  switch (op) {
    case BinOp::kEq:
    case BinOp::kNe:
    case BinOp::kLt:
    case BinOp::kLe:
    case BinOp::kGt:
    case BinOp::kGe: {
      if (!lhs.is_numeric() || !rhs.is_numeric()) {
        if (lhs.is_string() && rhs.is_string()) {
          const int c = lhs.as_string().compare(rhs.as_string());
          switch (op) {
            case BinOp::kEq: return Value::of(c == 0);
            case BinOp::kNe: return Value::of(c != 0);
            case BinOp::kLt: return Value::of(c < 0);
            case BinOp::kLe: return Value::of(c <= 0);
            case BinOp::kGt: return Value::of(c > 0);
            default: return Value::of(c >= 0);
          }
        }
        if (op == BinOp::kEq) return Value::of(lhs.is_none() && rhs.is_none());
        if (op == BinOp::kNe) {
          return Value::of(!(lhs.is_none() && rhs.is_none()));
        }
        fault(line, "unorderable types: " + lhs.type_name() + " and " +
                        rhs.type_name());
      }
      const double a = lhs.to_double();
      const double b = rhs.to_double();
      switch (op) {
        case BinOp::kEq: return Value::of(a == b);
        case BinOp::kNe: return Value::of(a != b);
        case BinOp::kLt: return Value::of(a < b);
        case BinOp::kLe: return Value::of(a <= b);
        case BinOp::kGt: return Value::of(a > b);
        default: return Value::of(a >= b);
      }
    }
    default:
      break;
  }

  // String concatenation.
  if (op == BinOp::kAdd && lhs.is_string() && rhs.is_string()) {
    return Value::of(lhs.as_string() + rhs.as_string());
  }
  // List concatenation.
  if (op == BinOp::kAdd && lhs.is_list() && rhs.is_list()) {
    auto out = std::make_shared<ListValue>();
    out->items = lhs.as_list()->items;
    out->items.insert(out->items.end(), rhs.as_list()->items.begin(),
                      rhs.as_list()->items.end());
    return Value::of(std::move(out));
  }

  if (!lhs.is_numeric() || !rhs.is_numeric()) {
    fault(line, util::cat("unsupported operand types: ", lhs.type_name(),
                          " and ", rhs.type_name()));
  }

  const bool both_int =
      (lhs.is_int() || lhs.is_bool()) && (rhs.is_int() || rhs.is_bool());
  if (both_int) {
    const std::int64_t a = lhs.to_int();
    const std::int64_t b = rhs.to_int();
    switch (op) {
      case BinOp::kAdd: return Value::of(a + b);
      case BinOp::kSub: return Value::of(a - b);
      case BinOp::kMul: return Value::of(a * b);
      case BinOp::kDiv: {  // true division
        if (b == 0) fault(line, "division by zero");
        return Value::of(static_cast<double>(a) / static_cast<double>(b));
      }
      case BinOp::kFloorDiv: return Value::of(floordiv(a, b, line));
      case BinOp::kMod: return Value::of(pymod(a, b, line));
      case BinOp::kPow:
        if (b < 0) {
          return Value::of(std::pow(static_cast<double>(a),
                                    static_cast<double>(b)));
        }
        return Value::of(ipow(a, b));
      default: break;
    }
  }

  const double a = lhs.to_double();
  const double b = rhs.to_double();
  switch (op) {
    case BinOp::kAdd: return Value::of(a + b);
    case BinOp::kSub: return Value::of(a - b);
    case BinOp::kMul: return Value::of(a * b);
    case BinOp::kDiv:
      if (b == 0.0) fault(line, "division by zero");
      return Value::of(a / b);
    case BinOp::kFloorDiv:
      if (b == 0.0) fault(line, "division by zero");
      return Value::of(std::floor(a / b));
    case BinOp::kMod:
      if (b == 0.0) fault(line, "modulo by zero");
      return Value::of(a - std::floor(a / b) * b);
    case BinOp::kPow: return Value::of(std::pow(a, b));
    default:
      fault(line, "internal: unhandled binary operator");
  }
}

Value unary_op(UnaryOp op, const Value& operand, int line) {
  switch (op) {
    case UnaryOp::kNot:
      return Value::of(!operand.truthy());
    case UnaryOp::kNeg:
      if (operand.is_int() || operand.is_bool()) {
        return Value::of(-operand.to_int());
      }
      if (operand.is_float()) return Value::of(-operand.as_float());
      fault(line, "cannot negate " + operand.type_name());
  }
  fault(line, "internal: unhandled unary operator");
}

namespace {
std::int64_t normalize_index(std::int64_t i, std::size_t n, int line) {
  const auto sn = static_cast<std::int64_t>(n);
  if (i < 0) i += sn;
  if (i < 0 || i >= sn) {
    fault(line, util::cat("index ", i, " out of range for length ", n));
  }
  return i;
}
}  // namespace

Value index_load(const Value& target, const Value& index, int line) {
  if (!index.is_int() && !index.is_bool()) {
    fault(line, "indices must be integers, not " + index.type_name());
  }
  if (target.is_list()) {
    const auto& items = target.as_list()->items;
    return items[static_cast<std::size_t>(
        normalize_index(index.to_int(), items.size(), line))];
  }
  if (target.is_array()) {
    const auto& arr = *target.as_array();
    return Value::of(arr.data[static_cast<std::size_t>(
        normalize_index(index.to_int(), arr.size, line))]);
  }
  fault(line, target.type_name() + " is not subscriptable");
}

void index_store(const Value& target, const Value& index, const Value& value,
                 int line) {
  if (!index.is_int() && !index.is_bool()) {
    fault(line, "indices must be integers, not " + index.type_name());
  }
  if (target.is_list()) {
    auto& items = target.as_list()->items;
    items[static_cast<std::size_t>(
        normalize_index(index.to_int(), items.size(), line))] = value;
    return;
  }
  if (target.is_array()) {
    auto& arr = *target.as_array();
    if (!value.is_numeric()) {
      fault(line, "arrays hold numbers, not " + value.type_name());
    }
    arr.data[static_cast<std::size_t>(
        normalize_index(index.to_int(), arr.size, line))] = value.to_double();
    return;
  }
  fault(line, target.type_name() + " does not support item assignment");
}

std::int64_t value_length(const Value& v, int line) {
  if (v.is_string()) return static_cast<std::int64_t>(v.as_string().size());
  if (v.is_list()) return static_cast<std::int64_t>(v.as_list()->items.size());
  if (v.is_array()) return static_cast<std::int64_t>(v.as_array()->size);
  fault(line, v.type_name() + " has no len()");
}

}  // namespace pyhpc::seamless
