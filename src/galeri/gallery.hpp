// Galeri analogue: generators of the standard example maps and matrices the
// paper's Table I lists ("Galeri — examples of common maps and matrices").
// Every generator is collective and returns a fill-complete CrsMatrix over a
// uniform contiguous row map.
#pragma once

#include <cmath>
#include <cstdint>

#include "comm/communicator.hpp"
#include "tpetra/crs_matrix.hpp"
#include "tpetra/map.hpp"
#include "tpetra/vector.hpp"
#include "util/random.hpp"

namespace pyhpc::galeri {

using Map = tpetra::Map<>;
using Matrix = tpetra::CrsMatrix<double>;
using Vector = tpetra::Vector<double>;
using GO = std::int64_t;
using LO = std::int32_t;

/// Identity matrix on `map`.
inline Matrix identity(const Map& map) {
  Matrix a(map);
  for (LO i = 0; i < map.num_local(); ++i) {
    const GO g = map.local_to_global(i);
    a.insert_global_value(g, g, 1.0);
  }
  a.fill_complete();
  return a;
}

/// General tridiagonal matrix with constant bands (sub, diag, super).
inline Matrix tridiag(const Map& map, double sub, double diag, double super) {
  Matrix a(map);
  const GO n = map.num_global();
  for (LO i = 0; i < map.num_local(); ++i) {
    const GO g = map.local_to_global(i);
    if (g > 0) a.insert_global_value(g, g - 1, sub);
    a.insert_global_value(g, g, diag);
    if (g + 1 < n) a.insert_global_value(g, g + 1, super);
  }
  a.fill_complete();
  return a;
}

/// 1D Dirichlet Laplacian, stencil [-1, 2, -1].
inline Matrix laplace1d(const Map& map) { return tridiag(map, -1.0, 2.0, -1.0); }

/// 2D Dirichlet Laplacian on an nx-by-ny grid (5-point stencil, row-major
/// numbering g = j*nx + i). Returns the matrix; the row map is uniform over
/// nx*ny.
inline Matrix laplace2d(comm::Communicator& comm, GO nx, GO ny) {
  require(nx >= 1 && ny >= 1, "laplace2d: grid dimensions must be positive");
  auto map = Map::uniform(comm, nx * ny);
  Matrix a(map);
  for (LO l = 0; l < map.num_local(); ++l) {
    const GO g = map.local_to_global(l);
    const GO i = g % nx;
    const GO j = g / nx;
    a.insert_global_value(g, g, 4.0);
    if (i > 0) a.insert_global_value(g, g - 1, -1.0);
    if (i + 1 < nx) a.insert_global_value(g, g + 1, -1.0);
    if (j > 0) a.insert_global_value(g, g - nx, -1.0);
    if (j + 1 < ny) a.insert_global_value(g, g + nx, -1.0);
  }
  a.fill_complete();
  return a;
}

/// 3D Dirichlet Laplacian on nx*ny*nz (7-point stencil).
inline Matrix laplace3d(comm::Communicator& comm, GO nx, GO ny, GO nz) {
  require(nx >= 1 && ny >= 1 && nz >= 1,
          "laplace3d: grid dimensions must be positive");
  auto map = Map::uniform(comm, nx * ny * nz);
  Matrix a(map);
  for (LO l = 0; l < map.num_local(); ++l) {
    const GO g = map.local_to_global(l);
    const GO i = g % nx;
    const GO j = (g / nx) % ny;
    const GO k = g / (nx * ny);
    a.insert_global_value(g, g, 6.0);
    if (i > 0) a.insert_global_value(g, g - 1, -1.0);
    if (i + 1 < nx) a.insert_global_value(g, g + 1, -1.0);
    if (j > 0) a.insert_global_value(g, g - nx, -1.0);
    if (j + 1 < ny) a.insert_global_value(g, g + nx, -1.0);
    if (k > 0) a.insert_global_value(g, g - nx * ny, -1.0);
    if (k + 1 < nz) a.insert_global_value(g, g + nx * ny, -1.0);
  }
  a.fill_complete();
  return a;
}

/// 2D convection-diffusion (upwind convection), nonsymmetric — exercises
/// GMRES/BiCGStab. `conv` scales the convection term relative to diffusion.
inline Matrix convection_diffusion_2d(comm::Communicator& comm, GO nx, GO ny,
                                      double conv_x, double conv_y) {
  auto map = Map::uniform(comm, nx * ny);
  Matrix a(map);
  const double h = 1.0 / static_cast<double>(nx + 1);
  for (LO l = 0; l < map.num_local(); ++l) {
    const GO g = map.local_to_global(l);
    const GO i = g % nx;
    const GO j = g / nx;
    // Diffusion 5-point + first-order upwind convection.
    double diag = 4.0 + h * (std::abs(conv_x) + std::abs(conv_y));
    a.insert_global_value(g, g, diag);
    const double wx = conv_x > 0 ? -1.0 - h * conv_x : -1.0;
    const double ex = conv_x > 0 ? -1.0 : -1.0 + h * conv_x;
    const double sy = conv_y > 0 ? -1.0 - h * conv_y : -1.0;
    const double ny_ = conv_y > 0 ? -1.0 : -1.0 + h * conv_y;
    if (i > 0) a.insert_global_value(g, g - 1, wx);
    if (i + 1 < nx) a.insert_global_value(g, g + 1, ex);
    if (j > 0) a.insert_global_value(g, g - nx, sy);
    if (j + 1 < ny) a.insert_global_value(g, g + nx, ny_);
  }
  a.fill_complete();
  return a;
}

/// Random sparse strictly diagonally dominant SPD-ish matrix: symmetric
/// off-diagonal pattern with negative entries, diagonal = 1 + sum |offdiag|.
/// Deterministic in (seed); `extra_per_row` off-diagonals are attempted per
/// row.
inline Matrix random_diag_dominant(const Map& map, int extra_per_row,
                                   std::uint64_t seed) {
  Matrix a(map);
  const GO n = map.num_global();
  for (LO l = 0; l < map.num_local(); ++l) {
    const GO g = map.local_to_global(l);
    // Per-row deterministic stream so the matrix is independent of the
    // rank count.
    util::Xoshiro256 rng(seed, static_cast<std::uint64_t>(g));
    double offsum = 0.0;
    for (int k = 0; k < extra_per_row; ++k) {
      const GO c = rng.next_int(0, n - 1);
      if (c == g) continue;
      const double v = -(0.1 + 0.9 * rng.next_double());
      a.insert_global_value(g, c, v);
      offsum += std::abs(v);
    }
    a.insert_global_value(g, g, 1.0 + offsum + rng.next_double());
  }
  a.fill_complete();
  return a;
}

/// RHS for which laplace1d/2d has the exact solution x = 1: b = A * ones.
inline Vector rhs_for_ones(const Matrix& a) {
  Vector ones(a.domain_map(), 1.0);
  Vector b(a.range_map());
  a.apply(ones, b);
  return b;
}

/// b_g = sin(pi * (g+1) / (n+1)) — a smooth RHS for Poisson experiments.
inline Vector sine_rhs(const Map& map) {
  Vector b(map);
  const double n = static_cast<double>(map.num_global());
  for (LO i = 0; i < map.num_local(); ++i) {
    const double g = static_cast<double>(map.local_to_global(i));
    b[i] = std::sin(M_PI * (g + 1.0) / (n + 1.0));
  }
  return b;
}

}  // namespace pyhpc::galeri
