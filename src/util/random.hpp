// Deterministic, splittable random number generation.
//
// ODIN's creation routines (odin::random) need per-rank streams that are
// reproducible regardless of rank count; SplitMix64 seeds an Xoshiro256**
// stream per (seed, rank) pair, mirroring the paper's "a message is sent to
// all participating nodes to create a local section ... with a specified
// random seed, different for each node".
#pragma once

#include <cstdint>
#include <vector>

namespace pyhpc::util {

/// SplitMix64: used to expand a user seed into stream seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: the per-stream generator.
class Xoshiro256 {
 public:
  /// Seeds the stream from (seed, stream) so distinct ranks get
  /// statistically independent sequences.
  explicit Xoshiro256(std::uint64_t seed, std::uint64_t stream = 0);

  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double next_double();

  /// Uniform integer in [lo, hi] (inclusive); requires lo <= hi.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller (uses two uniforms per pair).
  double next_normal();

 private:
  std::uint64_t s_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

/// Fills `n` doubles uniform in [0,1) deterministically for (seed, stream).
std::vector<double> uniform_doubles(std::uint64_t seed, std::uint64_t stream,
                                    std::size_t n);

}  // namespace pyhpc::util
