// Serial dense LU with partial pivoting — the kernel behind the gathered
// direct solvers (Amesos analogue) and the AMG coarse-grid solve.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace pyhpc::util {

/// Row-major dense matrix factored as P A = L U on construction.
class DenseLU {
 public:
  /// `a` is row-major n-by-n; throws NumericalError on a singular pivot.
  DenseLU(std::size_t n, std::vector<double> a);

  std::size_t size() const { return n_; }

  /// Solves A x = b; returns x.
  std::vector<double> solve(std::span<const double> b) const;

  /// In-place variant.
  void solve_in_place(std::span<double> x) const;

  /// |det A| grows/shrinks fast; exposed mainly for tests.
  double det() const;

 private:
  std::size_t n_;
  std::vector<double> lu_;       // packed L (unit diag) and U
  std::vector<std::size_t> piv_;  // row permutation
  int det_sign_ = 1;
};

}  // namespace pyhpc::util
