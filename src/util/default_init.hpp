// Allocator adaptor that default-initializes instead of value-initializing.
//
// `std::vector<T>(n)` value-initializes — for scalar T that is a full
// zero-fill pass over the new buffer. A kernel-produced array (ufunc map,
// zip, fused-expression eval) overwrites every element in its one writing
// pass, so the zero-fill is pure wasted store traffic: at 2^20 doubles it
// adds 8 MiB of stores (and the page first-touch) *before* the kernel
// runs. Building the result vector with this allocator skips that pass;
// first touch then happens inside the writing kernel itself, under
// whatever execution space runs it — which is also the NUMA-friendly
// first-touch pattern the pool spaces want.
//
// Only use it for buffers every element of which is provably written
// before being read (DistArray::uninitialized documents the call-site
// rule). Explicit fills — vector(n, T{}) — behave identically under this
// allocator, so zero-semantics constructors keep their meaning.
#pragma once

#include <memory>
#include <type_traits>
#include <utility>

namespace pyhpc::util {

template <class T, class Base = std::allocator<T>>
struct DefaultInitAllocator : Base {
  template <class U>
  struct rebind {
    using other = DefaultInitAllocator<
        U, typename std::allocator_traits<Base>::template rebind_alloc<U>>;
  };

  using Base::Base;

  /// No-argument construct: default-init (no write for trivial T).
  template <class U>
  void construct(U* p) noexcept(std::is_nothrow_default_constructible_v<U>) {
    ::new (static_cast<void*>(p)) U;
  }

  /// Every other construct keeps the base allocator's behaviour.
  template <class U, class... Args>
  void construct(U* p, Args&&... args) {
    std::allocator_traits<Base>::construct(static_cast<Base&>(*this), p,
                                           std::forward<Args>(args)...);
  }
};

}  // namespace pyhpc::util
