// Error types and lightweight contract checks shared by every pyhpc module.
//
// The library throws exceptions derived from pyhpc::Error; each module uses
// the subclass matching the failure domain so callers can discriminate
// (e.g. catch ShapeError from ODIN ufuncs without catching CommError).
#pragma once

#include <stdexcept>
#include <string>

namespace pyhpc {

/// Root of the pyhpc exception hierarchy.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller violated a documented precondition.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Failure inside the message-passing substrate (bad rank, truncation, ...).
class CommError : public Error {
 public:
  explicit CommError(const std::string& what) : Error(what) {}
};

/// An envelope arrived whose checksum does not match its contents (detected
/// wire corruption — injected by comm::FaultInjector or a genuine bug).
class CommIntegrityError : public CommError {
 public:
  explicit CommIntegrityError(const std::string& what) : CommError(what) {}
};

/// A blocking receive/probe exceeded its deadline. Distinct from the abort
/// path so callers can retry (the ODIN driver's ack protocol does).
class RecvTimeoutError : public CommError {
 public:
  explicit RecvTimeoutError(const std::string& what) : CommError(what) {}
};

/// The runner watchdog found every live rank blocked with nothing in
/// flight; carries the who-waits-on-whom report.
class DeadlockError : public CommError {
 public:
  explicit DeadlockError(const std::string& what) : CommError(what) {}
};

/// Thrown inside a rank that has been killed by fault injection the next
/// time it touches the substrate; the runner treats it as a simulated crash
/// of that rank alone, not a world abort.
class RankKilledError : public CommError {
 public:
  explicit RankKilledError(const std::string& what) : CommError(what) {}
};

/// A collective-internal receive noticed that the peer it was waiting on
/// has been killed (ULFM-style fast failure detection). Derived from
/// RankKilledError so "a rank died" can be caught uniformly, but carries
/// the *dead peer's* rank: the throwing rank itself is alive and can run
/// revoke/agree/shrink recovery.
class PeerKilledError : public RankKilledError {
 public:
  PeerKilledError(int dead_rank, const std::string& what)
      : RankKilledError(what), dead_rank_(dead_rank) {}
  int dead_rank() const { return dead_rank_; }

 private:
  int dead_rank_;
};

/// The communicator has been revoked (MPI_Comm_revoke analogue): every
/// in-flight and future operation on it fails so all surviving ranks fall
/// out of whatever they were blocked in and can join the recovery.
class RevokedError : public CommError {
 public:
  explicit RevokedError(const std::string& what) : CommError(what) {}
};

/// The ODIN driver lost a worker rank (it died or stopped acknowledging);
/// names the dead rank so callers can degrade gracefully.
class WorkerLostError : public CommError {
 public:
  explicit WorkerLostError(const std::string& what) : CommError(what) {}
};

/// A driver-service session's bounded submit queue is full and the
/// admission policy is shed: the operation was rejected (never queued,
/// never executed). Callers may retry after a sync point drains the queue.
class QueueFullError : public Error {
 public:
  explicit QueueFullError(const std::string& what) : Error(what) {}
};

/// Checkpoint store inconsistency: a restore asked for a range no complete
/// snapshot covers (a rank died before finishing that version's saves).
class CheckpointError : public Error {
 public:
  explicit CheckpointError(const std::string& what) : Error(what) {}
};

/// Distributed-object inconsistency (incompatible maps, not fill-complete...).
class MapError : public Error {
 public:
  explicit MapError(const std::string& what) : Error(what) {}
};

/// ODIN array shape / distribution conformance failure.
class ShapeError : public Error {
 public:
  explicit ShapeError(const std::string& what) : Error(what) {}
};

/// Numerical breakdown (singular pivot, indefinite operator, ...).
class NumericalError : public Error {
 public:
  explicit NumericalError(const std::string& what) : Error(what) {}
};

/// Seamless front-end failure (lex/parse/type errors carry line info).
class CompileError : public Error {
 public:
  explicit CompileError(const std::string& what) : Error(what) {}
};

/// Seamless runtime failure inside interpreted/compiled MiniPy code.
class RuntimeFault : public Error {
 public:
  explicit RuntimeFault(const std::string& what) : Error(what) {}
};

/// Contract check: throws E with `msg` when `cond` is false.
template <class E = InvalidArgument>
inline void require(bool cond, const std::string& msg) {
  if (!cond) throw E(msg);
}

}  // namespace pyhpc
