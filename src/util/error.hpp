// Error types and lightweight contract checks shared by every pyhpc module.
//
// The library throws exceptions derived from pyhpc::Error; each module uses
// the subclass matching the failure domain so callers can discriminate
// (e.g. catch ShapeError from ODIN ufuncs without catching CommError).
#pragma once

#include <stdexcept>
#include <string>

namespace pyhpc {

/// Root of the pyhpc exception hierarchy.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller violated a documented precondition.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Failure inside the message-passing substrate (bad rank, truncation, ...).
class CommError : public Error {
 public:
  explicit CommError(const std::string& what) : Error(what) {}
};

/// An envelope arrived whose checksum does not match its contents (detected
/// wire corruption — injected by comm::FaultInjector or a genuine bug).
class CommIntegrityError : public CommError {
 public:
  explicit CommIntegrityError(const std::string& what) : CommError(what) {}
};

/// A blocking receive/probe exceeded its deadline. Distinct from the abort
/// path so callers can retry (the ODIN driver's ack protocol does).
class RecvTimeoutError : public CommError {
 public:
  explicit RecvTimeoutError(const std::string& what) : CommError(what) {}
};

/// The runner watchdog found every live rank blocked with nothing in
/// flight; carries the who-waits-on-whom report.
class DeadlockError : public CommError {
 public:
  explicit DeadlockError(const std::string& what) : CommError(what) {}
};

/// Thrown inside a rank that has been killed by fault injection the next
/// time it touches the substrate; the runner treats it as a simulated crash
/// of that rank alone, not a world abort.
class RankKilledError : public CommError {
 public:
  explicit RankKilledError(const std::string& what) : CommError(what) {}
};

/// The ODIN driver lost a worker rank (it died or stopped acknowledging);
/// names the dead rank so callers can degrade gracefully.
class WorkerLostError : public CommError {
 public:
  explicit WorkerLostError(const std::string& what) : CommError(what) {}
};

/// Distributed-object inconsistency (incompatible maps, not fill-complete...).
class MapError : public Error {
 public:
  explicit MapError(const std::string& what) : Error(what) {}
};

/// ODIN array shape / distribution conformance failure.
class ShapeError : public Error {
 public:
  explicit ShapeError(const std::string& what) : Error(what) {}
};

/// Numerical breakdown (singular pivot, indefinite operator, ...).
class NumericalError : public Error {
 public:
  explicit NumericalError(const std::string& what) : Error(what) {}
};

/// Seamless front-end failure (lex/parse/type errors carry line info).
class CompileError : public Error {
 public:
  explicit CompileError(const std::string& what) : Error(what) {}
};

/// Seamless runtime failure inside interpreted/compiled MiniPy code.
class RuntimeFault : public Error {
 public:
  explicit RuntimeFault(const std::string& what) : Error(what) {}
};

/// Contract check: throws E with `msg` when `cond` is false.
template <class E = InvalidArgument>
inline void require(bool cond, const std::string& msg) {
  if (!cond) throw E(msg);
}

}  // namespace pyhpc
