// Error types and lightweight contract checks shared by every pyhpc module.
//
// The library throws exceptions derived from pyhpc::Error; each module uses
// the subclass matching the failure domain so callers can discriminate
// (e.g. catch ShapeError from ODIN ufuncs without catching CommError).
#pragma once

#include <stdexcept>
#include <string>

namespace pyhpc {

/// Root of the pyhpc exception hierarchy.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller violated a documented precondition.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Failure inside the message-passing substrate (bad rank, truncation, ...).
class CommError : public Error {
 public:
  explicit CommError(const std::string& what) : Error(what) {}
};

/// Distributed-object inconsistency (incompatible maps, not fill-complete...).
class MapError : public Error {
 public:
  explicit MapError(const std::string& what) : Error(what) {}
};

/// ODIN array shape / distribution conformance failure.
class ShapeError : public Error {
 public:
  explicit ShapeError(const std::string& what) : Error(what) {}
};

/// Numerical breakdown (singular pivot, indefinite operator, ...).
class NumericalError : public Error {
 public:
  explicit NumericalError(const std::string& what) : Error(what) {}
};

/// Seamless front-end failure (lex/parse/type errors carry line info).
class CompileError : public Error {
 public:
  explicit CompileError(const std::string& what) : Error(what) {}
};

/// Seamless runtime failure inside interpreted/compiled MiniPy code.
class RuntimeFault : public Error {
 public:
  explicit RuntimeFault(const std::string& what) : Error(what) {}
};

/// Contract check: throws E with `msg` when `cond` is false.
template <class E = InvalidArgument>
inline void require(bool cond, const std::string& msg) {
  if (!cond) throw E(msg);
}

}  // namespace pyhpc
