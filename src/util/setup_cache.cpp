#include "util/setup_cache.hpp"

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace pyhpc::util {

SetupCache::SetupCache(std::size_t capacity, std::string metric_prefix)
    : capacity_(capacity), prefix_(std::move(metric_prefix)) {
  require(capacity_ > 0, "SetupCache: capacity must be positive");
}

std::shared_ptr<void> SetupCache::lookup(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    obs::MetricsRegistry::global().add(prefix_ + ".misses", 1.0);
    return nullptr;
  }
  ++stats_.hits;
  obs::MetricsRegistry::global().add(prefix_ + ".hits", 1.0);
  order_.splice(order_.begin(), order_, it->second.pos);
  return it->second.value;
}

std::shared_ptr<void> SetupCache::insert(const std::string& key,
                                         std::shared_ptr<void> value) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    // Lost a build race: the first insert wins so every caller shares one
    // artifact (the redundant build was already counted as a miss).
    order_.splice(order_.begin(), order_, it->second.pos);
    return it->second.value;
  }
  order_.push_front(key);
  entries_[key] = Entry{std::move(value), order_.begin()};
  while (entries_.size() > capacity_) {
    const std::string& victim = order_.back();
    entries_.erase(victim);
    order_.pop_back();
    ++stats_.evictions;
    obs::MetricsRegistry::global().add(prefix_ + ".evictions", 1.0);
  }
  return entries_[key].value;
}

SetupCache::Stats SetupCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s = stats_;
  s.entries = entries_.size();
  return s;
}

std::size_t SetupCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

bool SetupCache::contains(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.count(key) > 0;
}

void SetupCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  order_.clear();
}

}  // namespace pyhpc::util
