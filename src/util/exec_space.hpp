// Execution-space layer: one kernel definition, three backends.
//
// Every node-local compute kernel (ufunc application, fused expression
// evaluation, reductions, SpMV row sweeps, preconditioner relaxation) is
// written once against two entry points — `for_each` and the
// deterministic `transform_reduce` — and dispatched to an ExecSpace
// backend at run time. This is the Kokkos-style separation the Trilinos
// follow-up papers attribute their portability to: call sites state
// *what* the kernel computes, the space decides *how* it is scheduled
// and whether the inner loop is vectorized. Adding a backend means
// touching this file, not the 30+ kernel call sites.
//
// Backends (enum Space; DESIGN.md §11 documents every enumerator):
//   kSerial       — inline on the calling thread, chunk by chunk. No pool,
//                   no worker threads, no scheduling overhead; the
//                   reference backend every other space must agree with.
//   kTaskPool     — the PR 5 work-stealing util::TaskPool with scalar
//                   inner loops; chunks of `grain` indices are dealt
//                   round-robin across lanes and rebalanced by stealing.
//   kTaskPoolSimd — TaskPool scheduling plus vectorized elementwise inner
//                   loops: `#pragma omp simd` bodies, a runtime-dispatched
//                   AVX2 variant on x86-64 hosts that support it, and an
//                   alignment-peeling structure-of-arrays fast path for
//                   kernels over contiguous unit-stride buffers.
//
// Body shapes. `for_each` accepts two body forms, distinguished at
// compile time:
//   body(i)      — element body: the backend owns the inner loop, so
//                  kTaskPoolSimd may vectorize it. Use for elementwise
//                  kernels (maps, zips, fused expression evaluation).
//   body(lo, hi) — chunk body: the call site owns the inner loop
//                  (row-blocked SpMV, map-merging folds). All spaces
//                  schedule chunk bodies identically; kTaskPoolSimd
//                  cannot vectorize through the opaque call.
//
// Determinism contract. `transform_reduce` executes the *same* fold and
// combine callables under every space: chunk boundaries depend only on
// `grain` (never on thread count or backend), each chunk is folded by the
// caller's `fold(lo, hi)` exactly as written, and chunk partials combine
// in a fixed-shape pairwise tree — the identical algorithm to
// TaskPool::parallel_reduce. Backends differ only in *which thread* runs
// each chunk, so reductions are bit-identical across all three spaces and
// every thread count by construction. Corollary: the SIMD backend never
// vectorizes a reduction fold (that would reorder the accumulation); it
// accelerates elementwise for_each bodies only.
//
// Elementwise value-identity. SIMD elementwise bodies compute the same
// per-element IEEE dataflow as the scalar loop: the build keeps FMA
// contraction impossible in the vector paths (the AVX2 target variant
// deliberately does not enable FMA), and +,-,*,/ and sqrt are exact under
// vectorization — so for_each results are bit-identical across spaces
// too, including NaN/Inf propagation.
//
// Selection. Explicit `Space` argument > per-thread default installed by
// comm::run from CommConfig::exec_space > the PYHPC_EXEC_SPACE
// environment variable ("serial" | "pool" | "simd") > kTaskPool.
//
// Observability. Kernels whose range exceeds one grain record an
// "exec.for_each" / "exec.reduce" span (category "exec") carrying
// space/n/grain args and bump the exec.serial / exec.pool / exec.simd
// backend counters; at-or-below one grain they run inline with zero
// instrumentation, exactly like the pool's serial fallback — tiny arrays
// stay free.
#pragma once

#include <cstdint>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "obs/trace.hpp"
#include "util/task_pool.hpp"

#if defined(PYHPC_HAS_OPENMP_SIMD)
#define PYHPC_SIMD_LOOP _Pragma("omp simd")
#define PYHPC_SIMD_LOOP_ALIGNED(...) \
  _Pragma(PYHPC_SIMD_STRINGIZE(omp simd aligned(__VA_ARGS__ : 64)))
#define PYHPC_SIMD_STRINGIZE(x) #x
#else
#define PYHPC_SIMD_LOOP
#define PYHPC_SIMD_LOOP_ALIGNED(...)
#endif

namespace pyhpc::util::exec {

/// The execution-space backends. DESIGN.md §11 carries the contract for
/// each enumerator (tools/check_docs.sh enforces that the table stays
/// complete when a backend is added).
enum class Space : std::uint8_t {
  kSerial = 0,
  kTaskPool = 1,
  kTaskPoolSimd = 2,
};

/// Stable lower-case name ("serial" / "pool" / "simd") — the spelling
/// PYHPC_EXEC_SPACE accepts and spans/counters report.
const char* space_name(Space space);

/// Parses a PYHPC_EXEC_SPACE spelling ("serial", "pool"/"taskpool",
/// "simd"/"pool+simd"); throws InvalidArgument on anything else.
Space parse_space(const std::string& name);

/// The space kernels use when no explicit Space is passed: the calling
/// thread's override (comm::run installs CommConfig::exec_space here for
/// each rank thread) if set, else PYHPC_EXEC_SPACE (read once), else
/// kTaskPool.
Space default_space();

/// Installs / clears the per-thread default (clear reverts to the
/// environment). Mirrors TaskPool::set_thread_default.
void set_thread_default(Space space);
void clear_thread_default();

/// True when the host CPU can run the AVX2 fast paths (cached lookup).
/// When false, kTaskPoolSimd still works — the portable `omp simd`
/// bodies simply compile at the build's baseline ISA.
bool simd_host_has_avx2();

/// Alignment the SoA fast paths peel to (one cache line; covers every
/// vector ISA the backends dispatch to).
inline constexpr std::size_t kSimdAlignment = 64;

template <class T>
inline bool simd_aligned(const T* p) {
  return reinterpret_cast<std::uintptr_t>(p) % kSimdAlignment == 0;
}

namespace detail {

/// Chunk bodies take (lo, hi); element bodies only (i). A chunk body is
/// also invocable with one argument only if someone writes a fully
/// variadic lambda — ruled out by checking two-arg invocability first.
template <class Body>
inline constexpr bool is_chunk_body_v =
    std::is_invocable_v<Body&, std::int64_t, std::int64_t>;

/// An exception leaving an `omp simd` region is std::terminate (OpenMP
/// forbids it, GCC enforces it) — so the vector paths only run bodies
/// the type system proves can't throw, and everything else takes the
/// scalar loop, out of which exceptions propagate normally. Mark hot
/// kernel lambdas `noexcept` to opt in to vectorization.
template <class Body>
inline constexpr bool is_noexcept_element_v =
    noexcept(std::declval<Body&>()(std::int64_t{}));

template <class T, class F>
inline constexpr bool is_noexcept_map_v =
    noexcept(std::declval<F&>()(std::declval<T>()));

template <class T, class F>
inline constexpr bool is_noexcept_zip_v =
    noexcept(std::declval<F&>()(std::declval<T>(), std::declval<T>()));

void count_region(Space space);  // exec.serial / exec.pool / exec.simd

/// One elementwise chunk, scalar loop (kSerial / kTaskPool inner body).
template <class Body>
inline void element_chunk_scalar(std::int64_t lo, std::int64_t hi,
                                 Body& body) {
  for (std::int64_t i = lo; i < hi; ++i) body(i);
}

/// One elementwise chunk, vectorized. The pragma tells the compiler the
/// iterations are independent (elementwise bodies are, by the for_each
/// element-body contract), so it vectorizes without runtime alias checks.
/// Potentially-throwing bodies run the plain loop instead (see
/// is_noexcept_element_v).
template <class Body>
inline void element_chunk_simd(std::int64_t lo, std::int64_t hi, Body& body) {
  if constexpr (is_noexcept_element_v<Body>) {
    PYHPC_SIMD_LOOP
    for (std::int64_t i = lo; i < hi; ++i) body(i);
  } else {
    for (std::int64_t i = lo; i < hi; ++i) body(i);
  }
}

#if defined(__x86_64__) && defined(__GNUC__)
#define PYHPC_SIMD_HAS_AVX2_TARGET 1
/// AVX2-target twin of element_chunk_simd: same source, compiled 4-wide.
/// target("avx2") does not enable FMA, so no contraction can appear here
/// that the scalar loop lacks — elementwise bit-identity holds.
template <class Body>
__attribute__((target("avx2"))) inline void element_chunk_avx2(
    std::int64_t lo, std::int64_t hi, Body& body) {
  if constexpr (is_noexcept_element_v<Body>) {
    PYHPC_SIMD_LOOP
    for (std::int64_t i = lo; i < hi; ++i) body(i);
  } else {
    for (std::int64_t i = lo; i < hi; ++i) body(i);
  }
}
#endif

/// Runs one chunk of an element body under the requested space.
template <class Body>
inline void run_element_chunk(Space space, std::int64_t lo, std::int64_t hi,
                              Body& body) {
  if (space == Space::kTaskPoolSimd) {
#if defined(PYHPC_SIMD_HAS_AVX2_TARGET)
    if (simd_host_has_avx2()) {
      element_chunk_avx2(lo, hi, body);
      return;
    }
#endif
    element_chunk_simd(lo, hi, body);
  } else {
    element_chunk_scalar(lo, hi, body);
  }
}

/// Shared scheduling: runs `chunk(lo, hi)` over [begin, end) in chunks of
/// `grain` — inline for kSerial, on the calling thread's TaskPool for the
/// pool spaces. `chunk` must be safe to invoke concurrently on disjoint
/// ranges.
template <class Chunk>
void schedule_chunks(Space space, std::int64_t begin, std::int64_t end,
                     std::int64_t grain, Chunk&& chunk) {
  if (space == Space::kSerial) {
    for (std::int64_t lo = begin; lo < end; lo += grain) {
      chunk(lo, std::min(end, lo + grain));
    }
  } else {
    util::parallel_for(begin, end, grain,
                       [&chunk](std::int64_t lo, std::int64_t hi) {
                         chunk(lo, hi);
                       });
  }
}

}  // namespace detail

/// Runs `body` over the half-open index range [begin, end), split into
/// chunks of at most `grain` indices, under `space` (see the body-shape
/// table at the top of this file). Blocks until every index was
/// processed; the first exception thrown by a chunk is rethrown.
template <class Body>
void for_each(Space space, std::int64_t begin, std::int64_t end,
              std::int64_t grain, Body&& body) {
  if (end <= begin) return;
  if (grain < 1) grain = 1;

  if (end - begin <= grain) {
    // One chunk: run inline, uninstrumented (same rule as the pool's
    // serial fallback — tiny kernels cost nothing). The SIMD inner loop
    // still applies: vectorization is per-chunk, not per-schedule.
    if constexpr (detail::is_chunk_body_v<Body>) {
      body(begin, end);
    } else {
      detail::run_element_chunk(space, begin, end, body);
    }
    return;
  }

  obs::Span span("exec.for_each", "exec");
  if (span.active()) {
    span.arg("space", space_name(space));
    span.arg("n", end - begin);
    span.arg("grain", grain);
  }
  detail::count_region(space);

  if constexpr (detail::is_chunk_body_v<Body>) {
    detail::schedule_chunks(space, begin, end, grain, body);
  } else {
    detail::schedule_chunks(space, begin, end, grain,
                            [space, &body](std::int64_t lo, std::int64_t hi) {
                              detail::run_element_chunk(space, lo, hi, body);
                            });
  }
}

/// Deterministic reduction over [begin, end): `fold(lo, hi) -> T`
/// computes one chunk's partial exactly as written (never vectorized —
/// see the determinism contract above), `combine(a, b)` merges partials
/// in a fixed-shape pairwise tree over the chunk sequence. Chunk
/// boundaries depend only on `grain`, and the same fold/combine code runs
/// under every space, so the result is bit-identical across backends and
/// thread counts. `identity` is returned for an empty range only; fold
/// seeds each chunk itself.
template <class T, class Fold, class Combine>
T transform_reduce(Space space, std::int64_t begin, std::int64_t end,
                   std::int64_t grain, T identity, Fold&& fold,
                   Combine&& combine) {
  if (end <= begin) return identity;
  if (grain < 1) grain = 1;
  const std::int64_t nchunks = (end - begin + grain - 1) / grain;
  if (nchunks == 1) return fold(begin, end);

  obs::Span span("exec.reduce", "exec");
  if (span.active()) {
    span.arg("space", space_name(space));
    span.arg("n", end - begin);
    span.arg("grain", grain);
  }
  detail::count_region(space);

  std::vector<T> partials(static_cast<std::size_t>(nchunks), identity);
  detail::schedule_chunks(
      space, begin, end, grain,
      [begin, grain, &partials, &fold](std::int64_t lo, std::int64_t hi) {
        partials[static_cast<std::size_t>((lo - begin) / grain)] =
            fold(lo, hi);
      });

  // Fixed-shape pairwise tree — the same shape TaskPool::parallel_reduce
  // uses, so results match the PR 5 pool bit for bit.
  std::vector<T> level = std::move(partials);
  while (level.size() > 1) {
    std::vector<T> next;
    next.reserve((level.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(combine(std::move(level[i]), std::move(level[i + 1])));
    }
    if (level.size() % 2 == 1) next.push_back(std::move(level.back()));
    level = std::move(next);
  }
  return std::move(level.front());
}

// ---- SoA fast path ---------------------------------------------------------
//
// Typed elementwise kernels over contiguous unit-stride buffers: the
// layout every DistArray / Vector local view already has (separate flat
// scalar arrays — structure of arrays). Because the operand pointers are
// visible here, the SIMD backend can peel a scalar prologue until the
// output reaches a 64-byte boundary and run the remainder with an
// `aligned` hint. The rule for when a kernel may use these (DESIGN.md
// §11): every operand is a contiguous unit-stride scalar buffer. Any
// operand needing index translation — gathers through a column index,
// global-index arithmetic, map lookups — must use for_each instead.
// Vectorization additionally requires a `noexcept` functor (throwing
// ones run the scalar loop so exceptions propagate instead of hitting
// the omp-simd terminate rule).

namespace detail {

/// Indices to peel so that p + peel is kSimdAlignment-aligned; 0 when the
/// pointer can never reach the boundary on an element step (oversized or
/// non-power-of-two T), in which case the unaligned vector loop runs.
template <class T>
inline std::int64_t peel_count(const T* p, std::int64_t n) {
  if constexpr (sizeof(T) > kSimdAlignment ||
                kSimdAlignment % sizeof(T) != 0) {
    return 0;
  } else {
    const auto addr = reinterpret_cast<std::uintptr_t>(p);
    if (addr % sizeof(T) != 0) return 0;  // not even element-aligned
    const auto mis = addr % kSimdAlignment;
    if (mis == 0) return 0;
    const auto peel =
        static_cast<std::int64_t>((kSimdAlignment - mis) / sizeof(T));
    return peel < n ? peel : n;
  }
}

template <class T, class F>
inline void map_chunk_scalar(const T* in, T* out, std::int64_t lo,
                             std::int64_t hi, F& f) {
  for (std::int64_t i = lo; i < hi; ++i) out[i] = f(in[i]);
}

template <class T, class F>
inline void map_chunk_simd(const T* in, T* out, std::int64_t lo,
                           std::int64_t hi, F& f) {
  if constexpr (!is_noexcept_map_v<T, F>) {
    map_chunk_scalar(in, out, lo, hi, f);
    return;
  }
  std::int64_t i = lo;
  const std::int64_t peel = peel_count(out + lo, hi - lo);
  for (; i < lo + peel; ++i) out[i] = f(in[i]);
  if (simd_aligned(out + i) && simd_aligned(in + i)) {
    const T* ain = in + i;
    T* aout = out + i;
    const std::int64_t m = hi - i;
    PYHPC_SIMD_LOOP_ALIGNED(ain, aout)
    for (std::int64_t k = 0; k < m; ++k) aout[k] = f(ain[k]);
  } else {
    const std::int64_t start = i;
    PYHPC_SIMD_LOOP
    for (std::int64_t k = start; k < hi; ++k) out[k] = f(in[k]);
  }
}

#if defined(PYHPC_SIMD_HAS_AVX2_TARGET)
template <class T, class F>
__attribute__((target("avx2"))) inline void map_chunk_avx2(
    const T* in, T* out, std::int64_t lo, std::int64_t hi, F& f) {
  if constexpr (!is_noexcept_map_v<T, F>) {
    map_chunk_scalar(in, out, lo, hi, f);
    return;
  }
  std::int64_t i = lo;
  const std::int64_t peel = peel_count(out + lo, hi - lo);
  for (; i < lo + peel; ++i) out[i] = f(in[i]);
  if (simd_aligned(out + i) && simd_aligned(in + i)) {
    const T* ain = in + i;
    T* aout = out + i;
    const std::int64_t m = hi - i;
    PYHPC_SIMD_LOOP_ALIGNED(ain, aout)
    for (std::int64_t k = 0; k < m; ++k) aout[k] = f(ain[k]);
  } else {
    const std::int64_t start = i;
    PYHPC_SIMD_LOOP
    for (std::int64_t k = start; k < hi; ++k) out[k] = f(in[k]);
  }
}
#endif

template <class T, class F>
inline void zip_chunk_scalar(const T* a, const T* b, T* out, std::int64_t lo,
                             std::int64_t hi, F& f) {
  for (std::int64_t i = lo; i < hi; ++i) out[i] = f(a[i], b[i]);
}

template <class T, class F>
inline void zip_chunk_simd(const T* a, const T* b, T* out, std::int64_t lo,
                           std::int64_t hi, F& f) {
  if constexpr (!is_noexcept_zip_v<T, F>) {
    zip_chunk_scalar(a, b, out, lo, hi, f);
    return;
  }
  std::int64_t i = lo;
  const std::int64_t peel = peel_count(out + lo, hi - lo);
  for (; i < lo + peel; ++i) out[i] = f(a[i], b[i]);
  if (simd_aligned(out + i) && simd_aligned(a + i) && simd_aligned(b + i)) {
    const T* aa = a + i;
    const T* ab = b + i;
    T* aout = out + i;
    const std::int64_t m = hi - i;
    PYHPC_SIMD_LOOP_ALIGNED(aa, ab, aout)
    for (std::int64_t k = 0; k < m; ++k) aout[k] = f(aa[k], ab[k]);
  } else {
    const std::int64_t start = i;
    PYHPC_SIMD_LOOP
    for (std::int64_t k = start; k < hi; ++k) out[k] = f(a[k], b[k]);
  }
}

#if defined(PYHPC_SIMD_HAS_AVX2_TARGET)
template <class T, class F>
__attribute__((target("avx2"))) inline void zip_chunk_avx2(
    const T* a, const T* b, T* out, std::int64_t lo, std::int64_t hi, F& f) {
  if constexpr (!is_noexcept_zip_v<T, F>) {
    zip_chunk_scalar(a, b, out, lo, hi, f);
    return;
  }
  std::int64_t i = lo;
  const std::int64_t peel = peel_count(out + lo, hi - lo);
  for (; i < lo + peel; ++i) out[i] = f(a[i], b[i]);
  if (simd_aligned(out + i) && simd_aligned(a + i) && simd_aligned(b + i)) {
    const T* aa = a + i;
    const T* ab = b + i;
    T* aout = out + i;
    const std::int64_t m = hi - i;
    PYHPC_SIMD_LOOP_ALIGNED(aa, ab, aout)
    for (std::int64_t k = 0; k < m; ++k) aout[k] = f(aa[k], ab[k]);
  } else {
    const std::int64_t start = i;
    PYHPC_SIMD_LOOP
    for (std::int64_t k = start; k < hi; ++k) out[k] = f(a[k], b[k]);
  }
}
#endif

}  // namespace detail

/// SoA map: out[i] = f(in[i]) for i in [0, n). in == out is allowed
/// (in-place transform). `f` must be a pure elementwise function.
template <class T, class F>
void map(Space space, const T* in, T* out, std::int64_t n, std::int64_t grain,
         F&& f) {
  for_each(space, 0, n, grain,
           [space, in, out, &f](std::int64_t lo, std::int64_t hi) {
             if (space == Space::kTaskPoolSimd) {
#if defined(PYHPC_SIMD_HAS_AVX2_TARGET)
               if (simd_host_has_avx2()) {
                 detail::map_chunk_avx2(in, out, lo, hi, f);
                 return;
               }
#endif
               detail::map_chunk_simd(in, out, lo, hi, f);
             } else {
               detail::map_chunk_scalar(in, out, lo, hi, f);
             }
           });
}

/// SoA zip: out[i] = f(a[i], b[i]) for i in [0, n). out may alias a or b.
template <class T, class F>
void zip(Space space, const T* a, const T* b, T* out, std::int64_t n,
         std::int64_t grain, F&& f) {
  for_each(space, 0, n, grain,
           [space, a, b, out, &f](std::int64_t lo, std::int64_t hi) {
             if (space == Space::kTaskPoolSimd) {
#if defined(PYHPC_SIMD_HAS_AVX2_TARGET)
               if (simd_host_has_avx2()) {
                 detail::zip_chunk_avx2(a, b, out, lo, hi, f);
                 return;
               }
#endif
               detail::zip_chunk_simd(a, b, out, lo, hi, f);
             } else {
               detail::zip_chunk_scalar(a, b, out, lo, hi, f);
             }
           });
}

}  // namespace pyhpc::util::exec
