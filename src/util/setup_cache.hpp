// SetupCache: a thread-safe LRU store for expensive setup artifacts keyed
// on problem structure — Import/Export plans, ILU/AMG factorizations,
// Thomas coefficient vectors, compiled Seamless engines. The paper's
// millions-of-users scenario repeats the same problem *structure* (map
// shape + sparsity pattern) with different values, so the setup cost can be
// paid once and amortized across sessions; the service layer (DESIGN.md
// §10) keys entries by structure fingerprint.
//
// Hit/miss/eviction counts are exposed both as a Stats snapshot and as
// obs counters under a configurable prefix (default `service.cache.*`), so
// bench reports can assert a hit rate without holding the cache object.
//
// Concurrency: lookups and inserts are mutex-protected, but a builder runs
// OUTSIDE the lock — distributed (collective) builders must not serialize
// against each other through the cache, and a lost insert race simply
// keeps the first value (the duplicate build is counted as a miss).
// Consequence: per-rank caches for distributed artifacts; never share one
// cache object across ranks that build collectively.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace pyhpc::util {

/// Incremental FNV-1a accumulator for structure fingerprints (map shapes,
/// CSR patterns, source text). Same constants as comm::envelope_checksum.
class Fingerprint {
 public:
  Fingerprint& mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (v >> (8 * i)) & 0xffULL;
      h_ *= kPrime;
    }
    return *this;
  }

  Fingerprint& mix_bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    // data may be null when n == 0 (empty vector); never dereference then.
    for (std::size_t i = 0; i < n; ++i) {
      h_ ^= static_cast<std::uint64_t>(p[i]);
      h_ *= kPrime;
    }
    return *this;
  }

  std::uint64_t digest() const { return h_; }

 private:
  static constexpr std::uint64_t kPrime = 1099511628211ULL;
  std::uint64_t h_ = 1469598103934665603ULL;  // FNV offset basis
};

class SetupCache {
 public:
  /// `capacity` bounds the entry count (least-recently-used entries are
  /// evicted past it); `metric_prefix` names the obs counters this cache
  /// reports under (`<prefix>.hits` / `.misses` / `.evictions`).
  explicit SetupCache(std::size_t capacity = 64,
                      std::string metric_prefix = "service.cache");

  SetupCache(const SetupCache&) = delete;
  SetupCache& operator=(const SetupCache&) = delete;

  /// Returns the cached artifact for `key`, or runs `build` (outside the
  /// lock — see the header comment) and caches its result. `build` must
  /// return std::shared_ptr<T>.
  template <class T, class Build>
  std::shared_ptr<T> get_or_build(const std::string& key, Build&& build) {
    if (auto hit = lookup(key)) return std::static_pointer_cast<T>(hit);
    std::shared_ptr<T> made = build();
    return std::static_pointer_cast<T>(insert(key, made));
  }

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::size_t entries = 0;
  };
  Stats stats() const;

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  bool contains(const std::string& key) const;
  void clear();

 private:
  /// nullptr on miss; a hit refreshes LRU order.
  std::shared_ptr<void> lookup(const std::string& key);
  /// Stores `value` unless the key was inserted concurrently, in which
  /// case the first value wins and is returned.
  std::shared_ptr<void> insert(const std::string& key,
                               std::shared_ptr<void> value);

  std::size_t capacity_;
  std::string prefix_;
  mutable std::mutex mu_;
  // LRU order: front = most recently used.
  std::list<std::string> order_;
  struct Entry {
    std::shared_ptr<void> value;
    std::list<std::string>::iterator pos;
  };
  std::map<std::string, Entry> entries_;
  Stats stats_;
};

}  // namespace pyhpc::util
