#include "util/exec_space.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <mutex>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace pyhpc::util::exec {

namespace {

// Per-thread default, mirrored on TaskPool's thread-override pattern:
// comm::run installs CommConfig::exec_space here for the lifetime of each
// rank body, so kernels on that rank (and tasks its pool runs on its
// behalf — the pool inherits the scheduling thread's chunking decisions,
// not this variable) resolve without an explicit Space argument.
thread_local bool t_has_override = false;
thread_local Space t_override = Space::kTaskPool;

// PYHPC_EXEC_SPACE, parsed once under a flag (getenv is not required to
// be thread-safe against setenv, and the value is process-wide anyway).
Space env_space() {
  static std::once_flag once;
  static Space cached = Space::kTaskPool;
  std::call_once(once, [] {
    if (const char* s = std::getenv("PYHPC_EXEC_SPACE")) {
      cached = parse_space(s);
    }
  });
  return cached;
}

}  // namespace

const char* space_name(Space space) {
  switch (space) {
    case Space::kSerial:
      return "serial";
    case Space::kTaskPool:
      return "pool";
    case Space::kTaskPoolSimd:
      return "simd";
  }
  return "?";
}

Space parse_space(const std::string& name) {
  std::string s;
  s.reserve(name.size());
  for (char c : name) s.push_back(static_cast<char>(std::tolower(c)));
  if (s == "serial") return Space::kSerial;
  if (s == "pool" || s == "taskpool") return Space::kTaskPool;
  if (s == "simd" || s == "pool+simd" || s == "taskpoolsimd") {
    return Space::kTaskPoolSimd;
  }
  throw InvalidArgument("unknown execution space \"" + name +
                        "\" (expected serial | pool | simd)");
}

Space default_space() {
  if (t_has_override) return t_override;
  return env_space();
}

void set_thread_default(Space space) {
  t_has_override = true;
  t_override = space;
}

void clear_thread_default() { t_has_override = false; }

bool simd_host_has_avx2() {
#if defined(__x86_64__) && defined(__GNUC__)
  static const bool has = __builtin_cpu_supports("avx2") != 0;
  return has;
#else
  return false;
#endif
}

namespace detail {

void count_region(Space space) {
  auto& reg = obs::MetricsRegistry::global();
  switch (space) {
    case Space::kSerial:
      reg.add("exec.serial", 1.0);
      break;
    case Space::kTaskPool:
      reg.add("exec.pool", 1.0);
      break;
    case Space::kTaskPoolSimd:
      reg.add("exec.simd", 1.0);
      break;
  }
}

}  // namespace detail

}  // namespace pyhpc::util::exec
