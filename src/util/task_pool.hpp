// Per-rank work-stealing thread pool: the intra-rank half of the scaling
// story. The comm layer scales *across* ranks (PR 3's collectives); this
// pool scales *within* one, threading the node-local kernels (ufunc
// application, fused expression evaluation, reductions, SpMV, relaxation
// sweeps) that otherwise use one core per rank.
//
// Model: every rank thread owns at most one lazily started pool
// (`TaskPool::current()` is thread-local). A parallel region splits an
// index range into fixed-size chunks (the `grain`), deals them round-robin
// onto per-lane deques, and the calling thread plus the worker threads
// drain them — own deque from the front, other lanes' deques from the back
// (steals). Ranges at or below one grain run inline on the caller with no
// pool startup, no atomics, and no instrumentation, so tiny arrays pay
// nothing. Nested regions (a threaded kernel calling another threaded
// kernel from inside a worker task) degrade to serial instead of
// deadlocking.
//
// Sizing: `PYHPC_THREADS` (process-wide default, 1 = serial when unset) or
// `CommConfig::threads`, which comm::run installs per rank thread via
// set_thread_default(). Pool worker threads must never call into the comm
// layer — region bodies are pure local compute; collectives stay on the
// rank thread.
//
// Determinism: parallel_reduce chunks by `grain` alone — never by thread
// count — folds each chunk left-to-right, and combines the chunk partials
// in a fixed-shape pairwise tree. The result is bit-identical for any
// thread count: the serial fallback walks the very same chunks inline, so
// even a 1-lane pool produces the same partials and the same tree.
//
// Observability: each parallel region records an obs span
// ("pool.parallel_for" / "pool.parallel_reduce", category "pool") carrying
// threads/grain/n/tasks args, and folds pool.regions / pool.tasks /
// pool.steals counters plus the pool.threads max-gauge into the global
// MetricsRegistry. Serial-fallback regions skip all of it.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "obs/trace.hpp"

namespace pyhpc::util {

/// Default chunk size for the threaded hot loops: big enough that a chunk
/// amortizes scheduling (tens of microseconds of work), small enough that
/// the large bench sizes split into many times the thread count.
inline constexpr std::int64_t kDefaultGrain = 8192;

class TaskPool {
 public:
  /// body(lo, hi): process the half-open subrange [lo, hi). parallel_for
  /// invokes it on disjoint chunks exactly covering [begin, end), each
  /// chunk [begin + c*grain, min(begin + (c+1)*grain, end)) — callers may
  /// recover the chunk index as (lo - begin) / grain.
  using Body = std::function<void(std::int64_t, std::int64_t)>;

  ~TaskPool();
  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// The calling thread's pool, created on first use with
  /// configured_threads() lanes. If the configured size changed since the
  /// pool was built (and no region is running), the pool is rebuilt.
  static TaskPool& current();

  /// Lanes new pools on this thread get: the set_thread_default override
  /// when positive, else PYHPC_THREADS, else 1 (serial).
  static int configured_threads();

  /// Per-thread override (comm::run installs CommConfig::threads here for
  /// each rank thread); 0 reverts to the environment default.
  static void set_thread_default(int threads);
  static int thread_default();

  /// Total lanes including the calling thread (1 = serial pool).
  int threads() const { return lanes_; }

  /// Runs body over [begin, end) in chunks of at most `grain`, in parallel
  /// when the range exceeds one grain and the pool has more than one lane.
  /// Blocks until every chunk completed; the first exception thrown by a
  /// chunk is rethrown here (remaining chunks are skipped).
  void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                    const Body& body);

  /// Deterministic tree reduction. `fold(lo, hi) -> T` computes one chunk's
  /// partial (left-to-right); `combine(a, b) -> T` merges two partials and
  /// is applied in a fixed-shape pairwise tree over the chunk sequence.
  /// Chunking depends only on `grain`, so the result is bit-identical
  /// across thread counts. `identity` is returned for an empty range only;
  /// fold itself must seed each chunk (with the op's identity or the
  /// chunk's first element, whichever the reduction needs).
  template <class T, class Fold, class Combine>
  T parallel_reduce(std::int64_t begin, std::int64_t end, std::int64_t grain,
                    T identity, Fold&& fold, Combine&& combine) {
    if (end <= begin) return identity;
    if (grain < 1) grain = 1;
    const std::int64_t nchunks = (end - begin + grain - 1) / grain;
    if (nchunks == 1) return fold(begin, end);

    obs::Span span("pool.parallel_reduce", "pool");
    if (span.active()) {
      span.arg("threads", static_cast<std::int64_t>(threads()));
      span.arg("grain", grain);
      span.arg("n", end - begin);
    }
    std::vector<T> partials(static_cast<std::size_t>(nchunks), identity);
    parallel_for(begin, end, grain,
                 [&](std::int64_t lo, std::int64_t hi) {
                   partials[static_cast<std::size_t>((lo - begin) / grain)] =
                       fold(lo, hi);
                 });
    // Fixed-shape pairwise tree: (p0⊕p1) ⊕ (p2⊕p3) ... independent of how
    // chunks were scheduled onto lanes.
    std::vector<T> level = std::move(partials);
    while (level.size() > 1) {
      std::vector<T> next;
      next.reserve((level.size() + 1) / 2);
      for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
        next.push_back(combine(std::move(level[i]), std::move(level[i + 1])));
      }
      if (level.size() % 2 == 1) next.push_back(std::move(level.back()));
      level = std::move(next);
    }
    return std::move(level.front());
  }

  /// Lifetime totals for this pool (monotone; also folded into the global
  /// MetricsRegistry as pool.* after every parallel region).
  struct Stats {
    std::uint64_t regions = 0;         ///< parallel (pool-scheduled) regions
    std::uint64_t serial_regions = 0;  ///< regions short-circuited inline
    std::uint64_t tasks = 0;           ///< chunks executed by the pool
    std::uint64_t steals = 0;          ///< chunks taken from another lane
  };
  Stats stats() const;

 private:
  struct Impl;
  explicit TaskPool(int lanes);
  void run_region(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  const Body& body);

  Impl* impl_;
  int lanes_;
};

/// Convenience wrappers over the calling thread's pool.
inline void parallel_for(std::int64_t begin, std::int64_t end,
                         std::int64_t grain, const TaskPool::Body& body) {
  TaskPool::current().parallel_for(begin, end, grain, body);
}

template <class T, class Fold, class Combine>
T parallel_reduce(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  T identity, Fold&& fold, Combine&& combine) {
  return TaskPool::current().parallel_reduce(begin, end, grain,
                                             std::move(identity),
                                             std::forward<Fold>(fold),
                                             std::forward<Combine>(combine));
}

}  // namespace pyhpc::util
