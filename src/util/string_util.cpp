#include "util/string_util.hpp"

#include <cctype>

namespace pyhpc::util {

std::string join(const std::vector<std::string>& pieces,
                 const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

std::vector<std::string> split(const std::string& text, char delim) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : text) {
    if (c == delim) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

std::string strip(const std::string& text) {
  std::size_t b = 0;
  std::size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return text.substr(b, e - b);
}

bool starts_with(const std::string& text, const std::string& prefix) {
  return text.size() >= prefix.size() &&
         text.compare(0, prefix.size(), prefix) == 0;
}

}  // namespace pyhpc::util
