#include "util/dense_lu.hpp"

#include <cmath>
#include <utility>

#include "util/error.hpp"

namespace pyhpc::util {

DenseLU::DenseLU(std::size_t n, std::vector<double> a)
    : n_(n), lu_(std::move(a)), piv_(n) {
  require(lu_.size() == n_ * n_, "DenseLU: matrix size mismatch");
  for (std::size_t i = 0; i < n_; ++i) piv_[i] = i;

  for (std::size_t k = 0; k < n_; ++k) {
    // Partial pivot: largest |a_ik| for i >= k.
    std::size_t p = k;
    double best = std::abs(lu_[k * n_ + k]);
    for (std::size_t i = k + 1; i < n_; ++i) {
      const double v = std::abs(lu_[i * n_ + k]);
      if (v > best) {
        best = v;
        p = i;
      }
    }
    require<NumericalError>(best > 0.0, "DenseLU: singular matrix");
    if (p != k) {
      for (std::size_t j = 0; j < n_; ++j) {
        std::swap(lu_[p * n_ + j], lu_[k * n_ + j]);
      }
      std::swap(piv_[p], piv_[k]);
      det_sign_ = -det_sign_;
    }
    const double pivot = lu_[k * n_ + k];
    for (std::size_t i = k + 1; i < n_; ++i) {
      const double lik = lu_[i * n_ + k] / pivot;
      lu_[i * n_ + k] = lik;
      for (std::size_t j = k + 1; j < n_; ++j) {
        lu_[i * n_ + j] -= lik * lu_[k * n_ + j];
      }
    }
  }
}

std::vector<double> DenseLU::solve(std::span<const double> b) const {
  require(b.size() == n_, "DenseLU::solve: rhs size mismatch");
  std::vector<double> x(n_);
  // Apply the row permutation, then forward- and back-substitute.
  for (std::size_t i = 0; i < n_; ++i) x[i] = b[piv_[i]];
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = 0; j < i; ++j) x[i] -= lu_[i * n_ + j] * x[j];
  }
  for (std::size_t ii = n_; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    for (std::size_t j = i + 1; j < n_; ++j) x[i] -= lu_[i * n_ + j] * x[j];
    x[i] /= lu_[i * n_ + i];
  }
  return x;
}

void DenseLU::solve_in_place(std::span<double> x) const {
  require(x.size() == n_, "DenseLU::solve_in_place: size mismatch");
  std::vector<double> tmp(x.begin(), x.end());
  auto sol = solve(tmp);
  for (std::size_t i = 0; i < n_; ++i) x[i] = sol[i];
}

double DenseLU::det() const {
  double d = det_sign_;
  for (std::size_t i = 0; i < n_; ++i) d *= lu_[i * n_ + i];
  return d;
}

}  // namespace pyhpc::util
