#include "util/random.hpp"

#include <cmath>

#include "util/error.hpp"

namespace pyhpc::util {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed, std::uint64_t stream) {
  SplitMix64 sm(seed ^ (0x9e3779b97f4a7c15ULL * (stream + 1)));
  for (auto& s : s_) s = sm.next();
}

std::uint64_t Xoshiro256::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Xoshiro256::next_double() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::int64_t Xoshiro256::next_int(std::int64_t lo, std::int64_t hi) {
  require(lo <= hi, "Xoshiro256::next_int: lo > hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  std::uint64_t r = next_u64();
  while (r >= limit) r = next_u64();
  return lo + static_cast<std::int64_t>(r % span);
}

double Xoshiro256::next_normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = next_double();
  while (u1 <= 0.0) u1 = next_double();
  const double u2 = next_double();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  const double two_pi = 6.283185307179586476925286766559;
  cached_normal_ = mag * std::sin(two_pi * u2);
  have_cached_normal_ = true;
  return mag * std::cos(two_pi * u2);
}

std::vector<double> uniform_doubles(std::uint64_t seed, std::uint64_t stream,
                                    std::size_t n) {
  Xoshiro256 rng(seed, stream);
  std::vector<double> out(n);
  for (auto& x : out) x = rng.next_double();
  return out;
}

}  // namespace pyhpc::util
