// CheckpointStore: the in-memory stable store behind solver
// checkpoint-restart.
//
// Ranks are threads here, so "stable storage that survives a rank failure"
// is simply memory owned by no rank: one mutex-protected store shared by
// every rank thread of a run. A killed rank's last writes stay readable,
// exactly like a parallel file system holding the checkpoint files of a
// crashed MPI process.
//
// Three payload families:
//  - versioned blocks: per-rank slices of a distributed 1-D quantity
//    (solver vectors, DistArray planes), keyed (key, version) and addressed
//    by global offset. restore() reassembles ANY global range from whatever
//    block boundaries the writers used, so survivors can restore under a
//    different (post-shrink, rebalanced) distribution than the one that
//    saved. A coverage walk rejects versions with holes — a version a dead
//    rank never finished is detectable, and callers fall back one version.
//  - versioned scalars: iteration counters and recurrence coefficients.
//  - blobs: write-once immutable payloads with a declared part count
//    (operator rows, right-hand sides), complete when every part arrived.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace pyhpc::util {

class CheckpointStore {
 public:
  // ---- versioned blocks --------------------------------------------------

  /// Saves `n` doubles of `key` at `global_offset` under `version`.
  /// Blocks may overlap earlier saves of the same version (last write wins).
  void save(const std::string& key, std::uint64_t version,
            std::int64_t global_offset, const double* data, std::size_t n);

  /// Reassembles [lo, hi) of `key` at `version` from the saved blocks,
  /// regardless of which ranks wrote them or at what boundaries. Throws
  /// CheckpointError when any index in the range is uncovered.
  std::vector<double> restore(const std::string& key, std::uint64_t version,
                              std::int64_t lo, std::int64_t hi) const;

  /// True when [lo, hi) of `key` at `version` is fully covered.
  bool covers(const std::string& key, std::uint64_t version, std::int64_t lo,
              std::int64_t hi) const;

  /// Versions present for `key` (ascending; presence, not completeness).
  std::vector<std::uint64_t> versions(const std::string& key) const;

  // ---- versioned scalars -------------------------------------------------

  void save_scalar(const std::string& key, std::uint64_t version, double v);
  bool has_scalar(const std::string& key, std::uint64_t version) const;
  /// Throws CheckpointError when absent.
  double restore_scalar(const std::string& key, std::uint64_t version) const;

  // ---- write-once blobs --------------------------------------------------

  /// Saves part `part` of `nparts` for blob `key`. Every writer must
  /// declare the same `nparts`; re-saving a part is idempotent (first
  /// write wins — blobs are immutable).
  void save_blob(const std::string& key, int part, int nparts,
                 std::vector<double> data);

  /// True once all declared parts of `key` have been saved.
  bool blob_complete(const std::string& key) const;

  /// All parts of `key` concatenated in part order. Throws CheckpointError
  /// when the blob is absent or incomplete.
  std::vector<double> restore_blob(const std::string& key) const;

  // ---- accounting --------------------------------------------------------

  /// Bytes of payload currently held (blocks + scalars + blobs).
  std::uint64_t bytes_stored() const;

  void clear();

 private:
  using BlockKey = std::pair<std::string, std::uint64_t>;  // (key, version)

  struct Blob {
    int nparts = -1;
    std::map<int, std::vector<double>> parts;
  };

  mutable std::mutex mu_;
  // (key, version) -> offset -> block payload.
  std::map<BlockKey, std::map<std::int64_t, std::vector<double>>> blocks_;
  std::map<BlockKey, double> scalars_;
  std::map<std::string, Blob> blobs_;
};

}  // namespace pyhpc::util
