// Small string helpers used for error messages and text serialization.
// libstdc++ 12 lacks a complete <format>, so we provide what we need.
#pragma once

#include <sstream>
#include <string>
#include <vector>

namespace pyhpc::util {

/// Concatenates the pieces with `sep` between them.
std::string join(const std::vector<std::string>& pieces,
                 const std::string& sep);

/// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string> split(const std::string& text, char delim);

/// Strips ASCII whitespace from both ends.
std::string strip(const std::string& text);

/// True when `text` begins with `prefix`.
bool starts_with(const std::string& text, const std::string& prefix);

/// Streams every argument into one string ("cat" formatting).
template <class... Args>
std::string cat(const Args&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}

}  // namespace pyhpc::util
