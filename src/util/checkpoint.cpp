#include "util/checkpoint.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace pyhpc::util {

void CheckpointStore::save(const std::string& key, std::uint64_t version,
                           std::int64_t global_offset, const double* data,
                           std::size_t n) {
  require(global_offset >= 0, "CheckpointStore::save: negative offset");
  std::lock_guard<std::mutex> lock(mu_);
  blocks_[{key, version}][global_offset].assign(data, data + n);
}

std::vector<double> CheckpointStore::restore(const std::string& key,
                                             std::uint64_t version,
                                             std::int64_t lo,
                                             std::int64_t hi) const {
  require(lo >= 0 && hi >= lo, "CheckpointStore::restore: bad range");
  std::lock_guard<std::mutex> lock(mu_);
  auto it = blocks_.find({key, version});
  require<CheckpointError>(it != blocks_.end(),
                           util::cat("checkpoint restore: no blocks for '",
                                     key, "' version ", version));
  std::vector<double> out(static_cast<std::size_t>(hi - lo), 0.0);
  // Coverage walk over the offset-sorted blocks: `covered` is the first
  // index of [lo, hi) not yet filled; any block starting past it while it
  // is still inside the range means a hole (an unfinished version).
  std::int64_t covered = lo;
  for (const auto& [off, vals] : it->second) {
    const std::int64_t end = off + static_cast<std::int64_t>(vals.size());
    if (end <= lo) continue;
    if (off >= hi) break;
    require<CheckpointError>(
        off <= covered,
        util::cat("checkpoint restore: '", key, "' version ", version,
                  " has a hole at [", covered, ", ", off, ")"));
    const std::int64_t from = std::max(off, lo);
    const std::int64_t to = std::min(end, hi);
    std::copy(vals.begin() + (from - off), vals.begin() + (to - off),
              out.begin() + (from - lo));
    covered = std::max(covered, to);
  }
  require<CheckpointError>(
      covered >= hi,
      util::cat("checkpoint restore: '", key, "' version ", version,
                " covers only up to ", covered, " of requested [", lo, ", ",
                hi, ")"));
  return out;
}

bool CheckpointStore::covers(const std::string& key, std::uint64_t version,
                             std::int64_t lo, std::int64_t hi) const {
  if (lo >= hi) return true;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = blocks_.find({key, version});
  if (it == blocks_.end()) return false;
  std::int64_t covered = lo;
  for (const auto& [off, vals] : it->second) {
    const std::int64_t end = off + static_cast<std::int64_t>(vals.size());
    if (end <= lo) continue;
    if (off >= hi) break;
    if (off > covered) return false;
    covered = std::max(covered, end);
  }
  return covered >= hi;
}

std::vector<std::uint64_t> CheckpointStore::versions(
    const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::uint64_t> out;
  for (const auto& [bk, blocks] : blocks_) {
    if (bk.first == key) out.push_back(bk.second);
  }
  return out;  // map iteration order is already ascending in version
}

void CheckpointStore::save_scalar(const std::string& key,
                                  std::uint64_t version, double v) {
  std::lock_guard<std::mutex> lock(mu_);
  scalars_[{key, version}] = v;
}

bool CheckpointStore::has_scalar(const std::string& key,
                                 std::uint64_t version) const {
  std::lock_guard<std::mutex> lock(mu_);
  return scalars_.count({key, version}) > 0;
}

double CheckpointStore::restore_scalar(const std::string& key,
                                       std::uint64_t version) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = scalars_.find({key, version});
  require<CheckpointError>(it != scalars_.end(),
                           util::cat("checkpoint restore: no scalar '", key,
                                     "' version ", version));
  return it->second;
}

void CheckpointStore::save_blob(const std::string& key, int part, int nparts,
                                std::vector<double> data) {
  require(nparts >= 1 && part >= 0 && part < nparts,
          "CheckpointStore::save_blob: part out of range");
  std::lock_guard<std::mutex> lock(mu_);
  Blob& blob = blobs_[key];
  if (blob.nparts < 0) blob.nparts = nparts;
  require(blob.nparts == nparts,
          util::cat("CheckpointStore::save_blob: '", key,
                    "' declared with conflicting part counts (", blob.nparts,
                    " vs ", nparts, ")"));
  blob.parts.emplace(part, std::move(data));  // first write wins
}

bool CheckpointStore::blob_complete(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = blobs_.find(key);
  return it != blobs_.end() &&
         static_cast<int>(it->second.parts.size()) == it->second.nparts;
}

std::vector<double> CheckpointStore::restore_blob(
    const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = blobs_.find(key);
  require<CheckpointError>(
      it != blobs_.end() &&
          static_cast<int>(it->second.parts.size()) == it->second.nparts,
      util::cat("checkpoint restore: blob '", key, "' absent or incomplete"));
  std::vector<double> out;
  for (const auto& [part, vals] : it->second.parts) {
    out.insert(out.end(), vals.begin(), vals.end());
  }
  return out;
}

std::uint64_t CheckpointStore::bytes_stored() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t doubles = scalars_.size();
  for (const auto& [bk, blocks] : blocks_) {
    for (const auto& [off, vals] : blocks) doubles += vals.size();
  }
  for (const auto& [key, blob] : blobs_) {
    for (const auto& [part, vals] : blob.parts) doubles += vals.size();
  }
  return doubles * sizeof(double);
}

void CheckpointStore::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  blocks_.clear();
  scalars_.clear();
  blobs_.clear();
}

}  // namespace pyhpc::util
