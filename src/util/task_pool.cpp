#include "util/task_pool.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace pyhpc::util {

namespace {

// True while this thread is executing a chunk of some region (worker lane
// or caller lane). Nested parallel calls observe it and run inline —
// otherwise a region body waiting on an inner region's workers could
// deadlock the pool against itself.
thread_local bool t_in_region = false;

// Per-thread lane-count override (set_thread_default); 0 = environment.
thread_local int t_thread_override = 0;

int env_threads() {
  static const int value = [] {
    const char* s = std::getenv("PYHPC_THREADS");
    if (s == nullptr || *s == '\0') return 1;
    const long v = std::strtol(s, nullptr, 10);
    if (v < 1) return 1;
    if (v > 256) return 256;
    return static_cast<int>(v);
  }();
  return value;
}

}  // namespace

struct TaskPool::Impl {
  // Per-region shared state. The caller blocks until its region drains, so
  // a Region outlives every task pointing at it. Tasks carry their region:
  // a worker that lingers in its drain loop past one region's completion
  // executes whatever the deques hold next against the right state.
  struct Region {
    const Body* body = nullptr;
    std::int64_t ntasks = 0;
    std::atomic<std::int64_t> remaining{0};
    std::atomic<std::uint64_t> steals{0};
    std::atomic<bool> cancelled{false};
    std::mutex error_mu;
    std::exception_ptr error;
  };

  struct Task {
    Region* region;
    std::int64_t lo;
    std::int64_t hi;
  };

  // One deque per lane; lane 0 is the owning (caller) thread. A lane pops
  // its own deque from the front and steals from other lanes' backs.
  struct Lane {
    std::mutex mu;
    std::deque<Task> q;
  };

  explicit Impl(int lanes) : lanes(lanes) {
    deques.reserve(static_cast<std::size_t>(lanes));
    for (int i = 0; i < lanes; ++i) deques.push_back(std::make_unique<Lane>());
  }

  const int lanes;
  std::vector<std::unique_ptr<Lane>> deques;
  std::vector<std::thread> workers;  // lanes 1..lanes-1, started lazily
  bool started = false;

  // Region hand-off: workers sleep until a new region epoch (or stop).
  std::mutex region_mu;
  std::condition_variable region_cv;
  std::uint64_t epoch = 0;
  bool stop = false;

  // Region completion: the last finished task notifies the waiting caller.
  std::mutex done_mu;
  std::condition_variable done_cv;

  // Lifetime stats.
  std::atomic<std::uint64_t> regions{0};
  std::atomic<std::uint64_t> serial_regions{0};
  std::atomic<std::uint64_t> tasks{0};
  std::atomic<std::uint64_t> steals{0};

  bool pop_own(int lane, Task& out) {
    Lane& l = *deques[static_cast<std::size_t>(lane)];
    std::lock_guard<std::mutex> lock(l.mu);
    if (l.q.empty()) return false;
    out = l.q.front();
    l.q.pop_front();
    return true;
  }

  bool steal_other(int lane, Task& out) {
    for (int d = 1; d < lanes; ++d) {
      const int victim = (lane + d) % lanes;
      Lane& l = *deques[static_cast<std::size_t>(victim)];
      std::lock_guard<std::mutex> lock(l.mu);
      if (l.q.empty()) continue;
      out = l.q.back();
      l.q.pop_back();
      return true;
    }
    return false;
  }

  void execute(const Task& t) {
    Region* r = t.region;
    if (!r->cancelled.load(std::memory_order_relaxed)) {
      try {
        (*r->body)(t.lo, t.hi);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(r->error_mu);
          if (!r->error) r->error = std::current_exception();
        }
        r->cancelled.store(true, std::memory_order_relaxed);
      }
    }
    tasks.fetch_add(1, std::memory_order_relaxed);
    if (r->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last task: wake the caller. Locking pairs with its predicate check.
      { std::lock_guard<std::mutex> lock(done_mu); }
      done_cv.notify_all();
    }
  }

  // Drains the deques from this lane: own deque first, then steals. Every
  // task of a region is enqueued before the region's caller starts
  // draining, so returning on empty deques never strands region work.
  void drain(int lane) {
    t_in_region = true;
    for (;;) {
      Task t;
      if (!pop_own(lane, t)) {
        if (!steal_other(lane, t)) break;
        steals.fetch_add(1, std::memory_order_relaxed);
        t.region->steals.fetch_add(1, std::memory_order_relaxed);
      }
      execute(t);
    }
    t_in_region = false;
  }

  void worker_main(int lane) {
    std::unique_lock<std::mutex> lock(region_mu);
    std::uint64_t seen = 0;
    for (;;) {
      region_cv.wait(lock, [&] { return stop || epoch != seen; });
      if (stop) return;
      seen = epoch;
      lock.unlock();
      drain(lane);
      lock.lock();
    }
  }

  void ensure_started() {
    if (started) return;
    started = true;
    workers.reserve(static_cast<std::size_t>(lanes - 1));
    for (int lane = 1; lane < lanes; ++lane) {
      workers.emplace_back([this, lane] { worker_main(lane); });
    }
    obs::MetricsRegistry::global().set_max("pool.threads",
                                           static_cast<double>(lanes));
  }
};

TaskPool::TaskPool(int lanes) : impl_(new Impl(lanes)), lanes_(lanes) {}

TaskPool::~TaskPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->region_mu);
    impl_->stop = true;
  }
  impl_->region_cv.notify_all();
  for (auto& w : impl_->workers) w.join();
  delete impl_;
}

TaskPool& TaskPool::current() {
  thread_local std::unique_ptr<TaskPool> t_pool;
  const int want = configured_threads();
  if (!t_pool || (t_pool->lanes_ != want && !t_in_region)) {
    t_pool = std::unique_ptr<TaskPool>(new TaskPool(want));
  }
  return *t_pool;
}

int TaskPool::configured_threads() {
  return t_thread_override > 0 ? t_thread_override : env_threads();
}

void TaskPool::set_thread_default(int threads) {
  require(threads >= 0, "TaskPool::set_thread_default: negative thread count");
  t_thread_override = threads;
}

int TaskPool::thread_default() { return t_thread_override; }

TaskPool::Stats TaskPool::stats() const {
  Stats s;
  s.regions = impl_->regions.load(std::memory_order_relaxed);
  s.serial_regions = impl_->serial_regions.load(std::memory_order_relaxed);
  s.tasks = impl_->tasks.load(std::memory_order_relaxed);
  s.steals = impl_->steals.load(std::memory_order_relaxed);
  return s;
}

void TaskPool::parallel_for(std::int64_t begin, std::int64_t end,
                            std::int64_t grain, const Body& body) {
  if (end <= begin) return;
  if (grain < 1) grain = 1;
  if (end - begin <= grain || lanes_ == 1 || t_in_region) {
    // Serial fallback: tiny range, serial pool, or nested region. Runs
    // inline with no scheduling, no metrics, no span — but still chunk by
    // chunk: parallel_reduce's determinism needs the same chunk boundaries
    // whether or not the pool scheduled the region.
    impl_->serial_regions.fetch_add(1, std::memory_order_relaxed);
    for (std::int64_t lo = begin; lo < end; lo += grain) {
      body(lo, std::min(end, lo + grain));
    }
    return;
  }
  run_region(begin, end, grain, body);
}

void TaskPool::run_region(std::int64_t begin, std::int64_t end,
                          std::int64_t grain, const Body& body) {
  Impl& im = *impl_;
  im.ensure_started();

  obs::Span span("pool.parallel_for", "pool");

  Impl::Region region;
  region.body = &body;
  region.ntasks = (end - begin + grain - 1) / grain;
  region.remaining.store(region.ntasks, std::memory_order_relaxed);

  // Deal chunks round-robin across the lanes before waking anyone, so
  // every lane starts with local work and steals only to rebalance.
  for (std::int64_t c = 0; c < region.ntasks; ++c) {
    const std::int64_t lo = begin + c * grain;
    const std::int64_t hi = std::min(end, lo + grain);
    Impl::Lane& lane = *im.deques[static_cast<std::size_t>(
        c % static_cast<std::int64_t>(lanes_))];
    std::lock_guard<std::mutex> lock(lane.mu);
    lane.q.push_back(Impl::Task{&region, lo, hi});
  }

  {
    std::lock_guard<std::mutex> lock(im.region_mu);
    ++im.epoch;
  }
  im.region_cv.notify_all();

  // The caller is lane 0 and drains alongside the workers; if none wake in
  // time it completes the whole region itself (it steals too).
  im.drain(0);
  {
    std::unique_lock<std::mutex> lock(im.done_mu);
    im.done_cv.wait(lock, [&] {
      return region.remaining.load(std::memory_order_acquire) == 0;
    });
  }

  im.regions.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t region_steals =
      region.steals.load(std::memory_order_relaxed);

  if (span.active()) {
    span.arg("threads", static_cast<std::int64_t>(lanes_));
    span.arg("grain", grain);
    span.arg("n", end - begin);
    span.arg("tasks", region.ntasks);
    span.arg("steals", static_cast<std::int64_t>(region_steals));
  }
  auto& reg = obs::MetricsRegistry::global();
  reg.add("pool.regions", 1.0);
  reg.add("pool.tasks", static_cast<double>(region.ntasks));
  reg.add("pool.steals", static_cast<double>(region_steals));

  if (region.error) std::rethrow_exception(region.error);
}

}  // namespace pyhpc::util
