// Scenario (b): PageRank power iteration on a scale-free link matrix.
// The preferential-attachment generator concentrates in-links on
// low-numbered hub nodes, so the uniform row map carries a real nonzero
// imbalance — exactly the workload Isorropia's partition_by_nonzeros is
// for — and the per-iteration ghost fill is an irregular many-to-many
// exchange. The iteration fetches its Import plan through a
// structure-keyed SetupCache (tpetra::cached_import) every pass: one miss
// per rank, hits thereafter (ROADMAP item 1's hot-path wiring).
#include <algorithm>
#include <cmath>

#include "isorropia/partition.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "scenarios/scenarios.hpp"
#include "tpetra/crs_matrix.hpp"
#include "tpetra/map.hpp"
#include "tpetra/structure.hpp"
#include "tpetra/vector.hpp"
#include "util/random.hpp"
#include "util/setup_cache.hpp"

namespace pyhpc::scenarios {

namespace {

using Map = tpetra::Map<>;
using Matrix = tpetra::CrsMatrix<double>;
using Vector = tpetra::Vector<double>;
using GO = std::int64_t;
using LO = std::int32_t;

/// Deterministic out-edges of node v (rank-count independent: the stream
/// is seeded per node). Node 0 has no out-edges (a dangling hub), every
/// later node attaches preferentially to low indices — squaring the
/// uniform draw biases targets toward 0, producing the scale-free in-link
/// skew. Duplicate targets are kept (they accumulate weight), self-loops
/// are redirected to node 0.
std::vector<GO> out_edges(GO v, const PageRankOptions& o) {
  std::vector<GO> targets;
  if (v == 0) return targets;  // dangling
  util::Xoshiro256 rng(o.seed, static_cast<std::uint64_t>(v));
  targets.reserve(static_cast<std::size_t>(o.out_degree));
  for (int k = 0; k < o.out_degree; ++k) {
    const double u = rng.next_double();
    GO t = static_cast<GO>(u * u * static_cast<double>(v));
    if (t >= v) t = v - 1;
    if (t == v) t = 0;
    targets.push_back(t);
  }
  return targets;
}

/// Assembles the link matrix A with A(i, j) = (#edges j->i) / outdeg(j):
/// x' = A x is then the rank mass flowing along edges. Every rank scans
/// the whole (cheap) edge stream and inserts only rows it owns.
Matrix build_link_matrix(const Map& map, const PageRankOptions& o) {
  Matrix a(map);
  for (GO v = 0; v < o.nodes; ++v) {
    const auto targets = out_edges(v, o);
    if (targets.empty()) continue;
    const double w = 1.0 / static_cast<double>(targets.size());
    for (const GO t : targets) {
      if (map.is_local_global_index(t)) {
        a.insert_global_value(t, v, w);
      }
    }
  }
  a.fill_complete();
  return a;
}

/// Power iteration with dangling-mass redistribution, the ghost fill
/// routed through cached_import on each pass. Returns iterations taken;
/// fills `x` (on `a`'s row map) with the converged vector.
int iterate(const Matrix& a, Vector& x, const PageRankOptions& o,
            util::SetupCache& cache, bool* converged) {
  const auto& map = a.row_map();
  const double n = static_cast<double>(o.nodes);
  Vector ghost(a.col_map()), xnew(map);

  // Dangling rows are columns with no out-edges — only node 0 here, but
  // detect generically: outdeg(v) == 0.
  std::vector<LO> dangling_local;
  for (LO i = 0; i < map.num_local(); ++i) {
    if (out_edges(map.local_to_global(i), o).empty()) {
      dangling_local.push_back(i);
    }
  }

  const std::span<const std::int64_t> rp = a.row_ptr();
  const std::span<const LO> ci = a.col_ind();
  const std::span<const double> va = a.values();

  *converged = false;
  int it = 0;
  for (; it < o.max_iterations; ++it) {
    // The structure repeats every pass, so after the first build this is
    // a pure cache hit — the plan is shared, never rebuilt.
    auto plan = tpetra::cached_import(cache, map, a.col_map());
    ghost.do_import(x, *plan);

    double dangling_mass = 0.0;
    for (const LO i : dangling_local) dangling_mass += x[i];
    dangling_mass = map.comm().allreduce_value(dangling_mass,
                                               std::plus<double>{});

    const double base = (1.0 - o.damping) / n + o.damping * dangling_mass / n;
    const double* gv = ghost.local_view().data();
    for (LO i = 0; i < map.num_local(); ++i) {
      double acc = 0.0;
      for (std::int64_t k = rp[static_cast<std::size_t>(i)];
           k < rp[static_cast<std::size_t>(i) + 1]; ++k) {
        acc += va[static_cast<std::size_t>(k)] *
               gv[ci[static_cast<std::size_t>(k)]];
      }
      xnew[i] = o.damping * acc + base;
    }

    double delta = 0.0;
    for (LO i = 0; i < map.num_local(); ++i) {
      delta += std::abs(xnew[i] - x[i]);
    }
    delta = map.comm().allreduce_value(delta, std::plus<double>{});
    for (LO i = 0; i < map.num_local(); ++i) x[i] = xnew[i];
    if (delta < o.tolerance) {
      *converged = true;
      ++it;
      break;
    }
  }
  return it;
}

Vector nonzero_weights(const Matrix& a) {
  Vector w(a.row_map());
  const auto rp = a.row_ptr();
  for (LO i = 0; i < a.num_local_rows(); ++i) {
    w[i] = static_cast<double>(rp[static_cast<std::size_t>(i) + 1] -
                               rp[static_cast<std::size_t>(i)]);
  }
  return w;
}

}  // namespace

PageRankResult run_pagerank(comm::Communicator& comm,
                            const PageRankOptions& options) {
  require(options.nodes >= 2, "run_pagerank: need at least two nodes");
  obs::Span span("scenario.pagerank", "scenarios");
  const auto t0 = std::chrono::steady_clock::now();

  PageRankResult result;
  auto uniform = Map::uniform(comm, options.nodes);
  auto a = build_link_matrix(uniform, options);
  {
    auto w = nonzero_weights(a);
    result.imbalance_before = isorropia::imbalance(w);
  }

  // Per-rank cache (the collective-lockstep rule from tpetra/structure.hpp:
  // identical request stream on every rank). Prefix "import" puts the
  // counters at import.hits / import.misses in the metrics snapshot.
  util::SetupCache cache(8, "import");

  if (options.rebalance) {
    auto balanced = isorropia::partition_by_nonzeros(a);
    a = isorropia::rebalance_matrix(a, balanced);
    auto w = nonzero_weights(a);
    result.imbalance_after = isorropia::imbalance(w);
  } else {
    result.imbalance_after = result.imbalance_before;
  }

  Vector x(a.row_map(), 1.0 / static_cast<double>(options.nodes));
  result.iterations = iterate(a, x, options, cache, &result.converged);
  result.x = x.gather_global();
  result.import_hits = cache.stats().hits;
  result.import_misses = cache.stats().misses;

  const double wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                t0)
          .count();
  auto& reg = obs::MetricsRegistry::global();
  reg.set("scenario.pagerank.wall_ms", wall_ms);
  reg.set("scenario.pagerank.iterations", result.iterations);
  reg.set("scenario.pagerank.imbalance_before", result.imbalance_before);
  reg.set("scenario.pagerank.imbalance_after", result.imbalance_after);
  if (span.active()) {
    span.arg("nodes", options.nodes);
    span.arg("iterations", static_cast<std::int64_t>(result.iterations));
    span.arg("rebalanced", options.rebalance ? "yes" : "no");
  }
  return result;
}

std::vector<double> pagerank_serial_reference(const PageRankOptions& options) {
  const auto n = static_cast<std::size_t>(options.nodes);
  // Column-compressed edges: for each source v, its targets.
  std::vector<double> x(n, 1.0 / static_cast<double>(n)), xnew(n);
  for (int it = 0; it < options.max_iterations; ++it) {
    double dangling_mass = 0.0;
    std::fill(xnew.begin(), xnew.end(), 0.0);
    for (GO v = 0; v < options.nodes; ++v) {
      const auto targets = out_edges(v, options);
      if (targets.empty()) {
        dangling_mass += x[static_cast<std::size_t>(v)];
        continue;
      }
      const double w =
          x[static_cast<std::size_t>(v)] / static_cast<double>(targets.size());
      for (const GO t : targets) xnew[static_cast<std::size_t>(t)] += w;
    }
    const double base = (1.0 - options.damping) / static_cast<double>(n) +
                        options.damping * dangling_mass /
                            static_cast<double>(n);
    double delta = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      xnew[i] = options.damping * xnew[i] + base;
      delta += std::abs(xnew[i] - x[i]);
    }
    x = xnew;
    if (delta < options.tolerance) break;
  }
  return x;
}

}  // namespace pyhpc::scenarios
