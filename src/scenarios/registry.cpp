// The canonical scenario list. tools/check_docs.sh extracts the names
// from this table and fails the docs gate when EXPERIMENTS.md lacks one,
// so registering a scenario forces documenting it. Keep one entry per
// line, name first, in the {"name", "summary"} form the grep expects.
#include "scenarios/scenarios.hpp"

namespace pyhpc::scenarios {

std::vector<ScenarioInfo> registered_scenarios() {
  return {
      {"heat_equation",
       "time-stepped 1D diffusion: halo-overlap SpMV + implicit CG per "
       "step, serial Thomas oracle, resilient kill-rank variant"},
      {"pagerank",
       "power iteration on a scale-free link matrix via cached_import, "
       "serial oracle, Isorropia nonzero-rebalanced variant"},
      {"tabular_analytics",
       "distributed filter + map-reduce group-by over a generated event "
       "table, single-rank reference oracle"},
      {"redistribution",
       "element-exact round-trip through block/cyclic/block-cyclic/"
       "explicit layouts in 1D and 2D"},
  };
}

}  // namespace pyhpc::scenarios
