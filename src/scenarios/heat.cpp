// Scenario (a): time-stepped 1D heat equation. Composes galeri assembly,
// tpetra SpMV (split-phase halo overlap on the Crank–Nicolson RHS), the
// Krylov CG solver, and — in the resilient variant — the full ULFM-style
// recovery stack (checkpoint, revoke/agree/shrink, Isorropia rebalance).
#include <algorithm>
#include <cmath>

#include "galeri/gallery.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "scenarios/scenarios.hpp"
#include "solvers/krylov.hpp"
#include "solvers/resilient.hpp"
#include "tpetra/crs_matrix.hpp"
#include "tpetra/map.hpp"
#include "tpetra/vector.hpp"
#include "util/string_util.hpp"

namespace pyhpc::scenarios {

namespace {

using Map = tpetra::Map<>;
using Matrix = tpetra::CrsMatrix<double>;
using Vector = tpetra::Vector<double>;

/// Initial condition: a smooth sine mode plus a sharper third harmonic, so
/// the field has structure at several wavelengths and every interior rank
/// holds nonzero data.
double initial_u(std::int64_t g, std::int64_t n) {
  const double x = static_cast<double>(g + 1) / static_cast<double>(n + 1);
  return std::sin(M_PI * x) + 0.25 * std::sin(3.0 * M_PI * x);
}

/// Implicit-side stencil weight: c = r for backward Euler, r/2 for CN.
double implicit_weight(const HeatOptions& o) {
  return o.scheme == HeatScheme::kBackwardEuler ? o.r : 0.5 * o.r;
}

void arm_fault(comm::Communicator& comm, const HeatOptions& o) {
  if (!o.fault || !o.injector) return;
  // Arm only after assembly so setup is never the casualty; barriers make
  // the arming point identical on every rank.
  comm.barrier();
  if (comm.rank() == 0) {
    comm::FaultRule rule;
    rule.kind = o.fault->kind;
    rule.source = o.fault->victim;
    rule.skip_first = o.fault->skip;
    rule.max_applications = 1;
    if (o.fault->kind == comm::FaultKind::kKillRank) {
      rule.victim = o.fault->victim;
    }
    if (o.fault->kind == comm::FaultKind::kDelay) {
      rule.delay = o.fault->delay;
    }
    o.injector->add_rule(rule);
  }
  comm.barrier();
}

}  // namespace

HeatResult run_heat(comm::Communicator& comm, const HeatOptions& options) {
  require(options.n >= 2, "run_heat: need at least two grid points");
  require(options.steps >= 1, "run_heat: need at least one step");
  require(!options.resilient || options.store != nullptr,
          "run_heat: the resilient variant needs a shared CheckpointStore");
  obs::Span span("scenario.heat_equation", "scenarios");
  const auto t0 = std::chrono::steady_clock::now();

  const double c = implicit_weight(options);
  auto map = Map::uniform(comm, options.n);
  // A = I + c L (SPD tridiagonal); B = I - c L for the CN right-hand side.
  auto a = galeri::tridiag(map, -c, 1.0 + 2.0 * c, -c);
  const bool cn = options.scheme == HeatScheme::kCrankNicolson;
  std::optional<Matrix> b_op;
  if (cn) b_op.emplace(galeri::tridiag(map, c, 1.0 - 2.0 * c, c));

  Vector u(map), rhs(map);
  for (std::int32_t i = 0; i < map.num_local(); ++i) {
    u[i] = initial_u(map.local_to_global(i), options.n);
  }

  arm_fault(comm, options);

  HeatResult result;
  result.final_size = comm.size();
  result.converged = true;
  for (int step = 0; step < options.steps; ++step) {
    if (cn) {
      b_op->apply(u, rhs);  // split-phase halo overlap at p > 1
    } else {
      for (std::int32_t i = 0; i < map.num_local(); ++i) rhs[i] = u[i];
    }

    if (options.resilient) {
      solvers::ResilientOptions ro;
      ro.krylov.tolerance = options.tolerance;
      ro.krylov.max_iterations = 4 * static_cast<int>(options.n) + 100;
      ro.checkpoint_interval = 2;
      ro.key = util::cat("heat.step", step);
      auto res = solvers::resilient_solve(*options.store, a, rhs, u, ro);
      result.solver_iterations += res.solve.iterations;
      result.converged = result.converged && res.solve.converged;
      result.u = std::move(res.x_global);
      result.steps_completed = step + 1;
      if (res.recoveries > 0) {
        // The world shrank inside the solve; the original communicator is
        // revoked, so the run ends here with the recovered field.
        result.recoveries = res.recoveries;
        result.final_size = res.final_size;
        break;
      }
      result.final_size = res.final_size;
      for (std::int32_t i = 0; i < map.num_local(); ++i) {
        u[i] = result.u[static_cast<std::size_t>(map.local_to_global(i))];
      }
    } else {
      solvers::KrylovOptions ko;
      ko.tolerance = options.tolerance;
      ko.max_iterations = 4 * static_cast<int>(options.n) + 100;
      ko.record_history = false;
      auto res = solvers::cg_solve(a, rhs, u, ko);  // warm start from u
      result.solver_iterations += res.iterations;
      result.converged = result.converged && res.converged;
      result.steps_completed = step + 1;
    }
  }
  if (!options.resilient) result.u = u.gather_global();

  const double wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                t0)
          .count();
  auto& reg = obs::MetricsRegistry::global();
  reg.set("scenario.heat_equation.wall_ms", wall_ms);
  reg.set("scenario.heat_equation.steps", result.steps_completed);
  reg.set("scenario.heat_equation.solver_iterations", result.solver_iterations);
  reg.set("scenario.heat_equation.recoveries", result.recoveries);
  if (span.active()) {
    span.arg("n", options.n);
    span.arg("steps", static_cast<std::int64_t>(result.steps_completed));
    span.arg("iterations",
             static_cast<std::int64_t>(result.solver_iterations));
  }
  return result;
}

std::vector<double> heat_serial_reference(const HeatOptions& options) {
  const auto n = static_cast<std::size_t>(options.n);
  const double c = implicit_weight(options);
  const bool cn = options.scheme == HeatScheme::kCrankNicolson;
  std::vector<double> u(n), rhs(n);
  for (std::size_t i = 0; i < n; ++i) {
    u[i] = initial_u(static_cast<std::int64_t>(i), options.n);
  }

  // Thomas factorization of the constant tridiagonal A = I + c L
  // (sub = sup = -c, diag = 1 + 2c): factor once, reuse every step.
  const double diag = 1.0 + 2.0 * c;
  std::vector<double> cp(n);  // modified superdiagonal
  cp[0] = -c / diag;
  for (std::size_t i = 1; i < n; ++i) {
    cp[i] = -c / (diag + c * cp[i - 1]);
  }

  for (int step = 0; step < options.steps; ++step) {
    if (cn) {
      for (std::size_t i = 0; i < n; ++i) {
        const double left = i > 0 ? u[i - 1] : 0.0;
        const double right = i + 1 < n ? u[i + 1] : 0.0;
        rhs[i] = (1.0 - 2.0 * c) * u[i] + c * (left + right);
      }
    } else {
      rhs = u;
    }
    // Forward sweep (u holds the modified RHS), then back substitution.
    u[0] = rhs[0] / diag;
    for (std::size_t i = 1; i < n; ++i) {
      u[i] = (rhs[i] + c * u[i - 1]) / (diag + c * cp[i - 1]);
    }
    for (std::size_t i = n - 1; i-- > 0;) {
      u[i] -= cp[i] * u[i + 1];
    }
  }
  return u;
}

}  // namespace pyhpc::scenarios
