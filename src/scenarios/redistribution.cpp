// Scenario (d): redistribution stress. D2O's evaluation (PAPERS.md)
// compares exactly these block/cyclic/block-cyclic strategies; here the
// same payload round-trips through every layout the Distribution layer
// offers — including deliberately uneven explicit blocks and a 2D
// axis-change leg — and every hop is checked element-exactly against the
// global-index formula. Any owner_of / global_of_local disagreement
// between two layouts surfaces as a lost or misplaced element.
#include <cmath>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "odin/dist_array.hpp"
#include "scenarios/scenarios.hpp"

namespace pyhpc::scenarios {

namespace {

using odin::DistArray;
using odin::Distribution;
using odin::index_t;
using odin::Shape;

double value_1d(index_t g) { return 1.25 * static_cast<double>(g) + 0.5; }

double value_2d(index_t i, index_t j, index_t cols) {
  return value_1d(i * cols + j);
}

/// Every local element must equal its global-index formula.
bool verify_1d(const DistArray<double>& a) {
  for (index_t l = 0; l < a.local_size(); ++l) {
    const auto g = a.dist().global_of_local(l);
    if (a.local_view()[static_cast<std::size_t>(l)] != value_1d(g[0])) {
      return false;
    }
  }
  return true;
}

bool verify_2d(const DistArray<double>& a, index_t cols) {
  for (index_t l = 0; l < a.local_size(); ++l) {
    const auto g = a.dist().global_of_local(l);
    if (a.local_view()[static_cast<std::size_t>(l)] !=
        value_2d(g[0], g[1], cols)) {
      return false;
    }
  }
  return true;
}

/// Deliberately uneven contiguous sizes summing to n: quadratic cut
/// points, so late ranks own much more than early ones (zero-size locals
/// appear at small n — the empty-local edge case rides along for free).
std::vector<index_t> skewed_sizes(index_t n, int p) {
  std::vector<index_t> sizes(static_cast<std::size_t>(p));
  auto cut = [&](int q) {
    return (n * static_cast<index_t>(q) * static_cast<index_t>(q)) /
           (static_cast<index_t>(p) * static_cast<index_t>(p));
  };
  for (int q = 0; q < p; ++q) {
    sizes[static_cast<std::size_t>(q)] = cut(q + 1) - cut(q);
  }
  return sizes;
}

}  // namespace

RedistResult run_redistribution(comm::Communicator& comm,
                                const RedistOptions& options) {
  require(options.n >= 1 && options.rows >= 1 && options.cols >= 1,
          "run_redistribution: extents must be positive");
  require(options.block >= 1, "run_redistribution: block size must be >= 1");
  obs::Span span("scenario.redistribution", "scenarios");
  const auto t0 = std::chrono::steady_clock::now();

  RedistResult result;
  result.exact = true;
  const int p = comm.size();

  auto hop = [&](DistArray<double>& a, const Distribution& target,
                 auto&& verify) {
    result.elements_moved += odin::redistribution_cost(a, target);
    a = odin::redistribute(a, target);
    ++result.hops;
    result.exact = result.exact && verify(a);
  };

  {
    // 1D leg: block → cyclic → block-cyclic → skewed explicit → block.
    Shape shape{options.n};
    auto a = DistArray<double>::fromfunction(
        Distribution::block(comm, shape),
        [](const std::vector<index_t>& g) { return value_1d(g[0]); });
    result.exact = result.exact && verify_1d(a);

    auto check = [&](const DistArray<double>& x) { return verify_1d(x); };
    hop(a, Distribution::cyclic(comm, shape), check);
    hop(a, Distribution::block_cyclic(comm, shape, 0, options.block), check);
    hop(a, Distribution::explicit_block(comm, shape, 0,
                                        skewed_sizes(options.n, p)),
        check);
    // Through full replication and back: this leg is what flushed out the
    // canonical-owner-only redistribute bug (replicas on ranks > 0 were
    // left zeroed).
    hop(a, Distribution::replicated(comm, shape), check);
    hop(a, Distribution::block(comm, shape), check);
  }

  {
    // 2D leg: distributed axis changes (block rows → block cols → cyclic
    // cols → block-cyclic rows → block rows).
    Shape shape{options.rows, options.cols};
    const index_t cols = options.cols;
    auto a = DistArray<double>::fromfunction(
        Distribution::block(comm, shape, 0), [cols](const std::vector<index_t>& g) {
          return value_2d(g[0], g[1], cols);
        });
    result.exact = result.exact && verify_2d(a, cols);

    auto check = [&](const DistArray<double>& x) { return verify_2d(x, cols); };
    hop(a, Distribution::block(comm, shape, 1), check);
    hop(a, Distribution::cyclic(comm, shape, 1), check);
    hop(a, Distribution::block_cyclic(comm, shape, 0, options.block), check);
    hop(a, Distribution::block(comm, shape, 0), check);
  }

  const double wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                t0)
          .count();
  auto& reg = obs::MetricsRegistry::global();
  reg.set("scenario.redistribution.wall_ms", wall_ms);
  reg.set("scenario.redistribution.hops", result.hops);
  reg.set("scenario.redistribution.elements_moved", result.elements_moved);
  if (span.active()) {
    span.arg("n", options.n);
    span.arg("hops", static_cast<std::int64_t>(result.hops));
    span.arg("exact", result.exact ? "yes" : "no");
  }
  return result;
}

}  // namespace pyhpc::scenarios
