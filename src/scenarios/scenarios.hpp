// End-to-end distributed scenario suite (ROADMAP item 4): full-stack
// applications that compose comm + ODIN + tpetra + isorropia + solvers +
// obs, each paired with a correctness oracle. Every scenario is a plain
// library function so the `scenario` tests, bench_scenarios, and the chaos
// soak all drive the exact same code — the composed stack, not a
// per-layer microbench, is the regression surface.
//
// The four applications:
//  (a) heat_equation     — time-stepped 1D diffusion: an SpMV right-hand
//                          side per step (split-phase halo overlap) and an
//                          implicit CG solve per step; optional resilient
//                          variant routes every solve through
//                          solvers::resilient_solve with a fault armed
//                          mid-run.
//  (b) pagerank          — power iteration on a scale-free link matrix
//                          (hub-skewed nonzeros: load imbalance), ghost
//                          fills routed through a structure-keyed
//                          cached_import, optional Isorropia
//                          partition_by_nonzeros rebalancing.
//  (c) tabular_analytics — distributed filter → map-reduce group-by
//                          aggregate over a generated event table (the
//                          paper's §III.I map-reduce claim).
//  (d) redistribution    — round-trips array data through block → cyclic →
//                          block-cyclic → explicit-block layouts and back,
//                          asserting element-exact recovery.
//
// Each run_* call is collective over `comm`, opens a `scenario.<name>`
// trace span, and folds per-run counters into the global MetricsRegistry
// under `scenario.<name>.*` (wall_ms gauge plus scenario-specific
// counters), so bench reports carry the scenario numbers.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "comm/communicator.hpp"
#include "comm/fault.hpp"
#include "util/checkpoint.hpp"

namespace pyhpc::scenarios {

// ---- registry -------------------------------------------------------------

struct ScenarioInfo {
  const char* name;     // metric prefix: scenario.<name>.*
  const char* summary;  // one line for reports
};

/// The canonical scenario list. tools/check_docs.sh greps the names out of
/// registry.cpp and fails the docs gate when EXPERIMENTS.md lacks one, so
/// a scenario cannot be registered without being documented.
std::vector<ScenarioInfo> registered_scenarios();

// ---- (a) heat equation ----------------------------------------------------

/// Time discretization of u_t = u_xx on [0,1], homogeneous Dirichlet.
enum class HeatScheme {
  /// (I + r/2 L) u' = (I - r/2 L) u — the RHS is an SpMV through
  /// CrsMatrix::apply, i.e. the split-phase halo/compute overlap path.
  kCrankNicolson,
  /// (I + r L) u' = u — no RHS SpMV, so with the resilient solver every
  /// message after assembly flows inside resilient_solve's recovery scope
  /// (the variant fault schedules must target).
  kBackwardEuler,
};

/// One fault rule armed by rank 0 *after* assembly (barrier-bracketed, as
/// the recovery tests do), so setup is never the casualty.
struct HeatFault {
  comm::FaultKind kind = comm::FaultKind::kKillRank;
  int victim = 1;                        // source rank (and kill victim)
  int skip = 40;                         // fire this many messages in
  std::chrono::milliseconds delay{80};   // kDelay only
};

struct HeatOptions {
  std::int64_t n = 192;      // interior grid points
  int steps = 8;
  double r = 0.3;            // diffusion number alpha dt / dx^2
  double tolerance = 1e-12;  // per-step CG tolerance
  HeatScheme scheme = HeatScheme::kCrankNicolson;

  /// Route every implicit solve through solvers::resilient_solve. Requires
  /// `store` (one instance shared by all ranks of the run). A mid-solve
  /// rank death then shrinks the world inside the solve; the run ends at
  /// that step (the caller's collectives cannot continue on a revoked
  /// communicator) with the recovered field in HeatResult::u.
  bool resilient = false;
  std::shared_ptr<util::CheckpointStore> store;

  /// Optional fault schedule; needs `injector` (the one installed in the
  /// run's CommConfig).
  std::optional<HeatFault> fault;
  std::shared_ptr<comm::FaultInjector> injector;
};

struct HeatResult {
  std::vector<double> u;      // final field, global index order (replicated)
  int steps_completed = 0;
  int solver_iterations = 0;  // summed over completed steps
  bool converged = false;     // every completed step's solve converged
  int recoveries = 0;         // resilient variant: shrink rounds survived
  int final_size = 0;         // communicator size at completion
};

/// Collective. On a killed rank this throws RankKilledError (contained by
/// the runner); survivors return the recovered state.
HeatResult run_heat(comm::Communicator& comm, const HeatOptions& options);

/// Serial reference: identical time stepping with a direct (Thomas)
/// tridiagonal solve per step. Pure local computation; `steps` in the
/// options bounds the stepping (pass a copy with steps = steps_completed
/// to check a run that a recovery ended early).
std::vector<double> heat_serial_reference(const HeatOptions& options);

// ---- (b) pagerank ---------------------------------------------------------

struct PageRankOptions {
  std::int64_t nodes = 400;
  int out_degree = 4;        // preferential-attachment edges per node
  std::uint64_t seed = 42;   // graph seed (rank-count independent)
  double damping = 0.85;
  double tolerance = 1e-10;  // on ||x_{k+1} - x_k||_1
  int max_iterations = 300;
  /// Repartition rows by nonzero count (Isorropia) before iterating; the
  /// ranking must be invariant under the move.
  bool rebalance = false;
};

struct PageRankResult {
  std::vector<double> x;     // converged rank vector, global order
  int iterations = 0;
  bool converged = false;
  double imbalance_before = 0.0;  // nnz imbalance on the uniform row map
  double imbalance_after = 0.0;   // on the map actually iterated
  std::uint64_t import_hits = 0;    // cached_import hits in the apply loop
  std::uint64_t import_misses = 0;  // (one miss per rank, then all hits)
};

PageRankResult run_pagerank(comm::Communicator& comm,
                            const PageRankOptions& options);

/// Serial power iteration over the identically generated graph.
std::vector<double> pagerank_serial_reference(const PageRankOptions& options);

// ---- (c) tabular analytics ------------------------------------------------

struct AnalyticsOptions {
  std::int64_t events = 600;
  int regions = 7;
  int days = 5;
  std::uint64_t seed = 7;
  double min_amount = 100.0;  // filter threshold
  /// Generate every row on rank 0 and rebalance first (the skew path).
  bool skewed = false;
};

/// Group-by aggregate for one (region, day) group. Amounts are generated
/// integer-valued, so sums compare exactly against the serial reference.
struct GroupStat {
  std::int64_t key = 0;  // region * days + day
  std::int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
};

struct AnalyticsResult {
  std::vector<GroupStat> groups;  // every group, key-sorted, replicated
  std::int64_t rows_kept = 0;     // global row count after the filter
};

AnalyticsResult run_analytics(comm::Communicator& comm,
                              const AnalyticsOptions& options);

/// Single-rank pandas-style reference over the same generated table.
AnalyticsResult analytics_serial_reference(const AnalyticsOptions& options);

// ---- (d) redistribution stress --------------------------------------------

struct RedistOptions {
  std::int64_t n = 257;    // deliberately not a multiple of common P
  std::int64_t block = 3;  // block-cyclic block size
  std::int64_t rows = 9, cols = 7;  // 2D leg extents
};

struct RedistResult {
  bool exact = false;              // every element recovered bit-exactly
  int hops = 0;                    // redistributions performed
  std::int64_t elements_moved = 0; // global elements that changed owner
};

/// Round-trips a 1D array through block → cyclic → block-cyclic →
/// explicit-block → block and a 2D array through axis/layout changes,
/// verifying every element against its global-index formula after each
/// hop. Collective.
RedistResult run_redistribution(comm::Communicator& comm,
                                const RedistOptions& options);

}  // namespace pyhpc::scenarios
