// Scenario (c): distributed tabular analytics — the paper's §III.I claim
// (distributed structured arrays + map-reduce) as a full pipeline:
// generate a block-distributed event table, filter locally, group-by
// (region, day) through the hash-partitioned map_reduce shuffle, and
// replicate the aggregates. Events are a pure function of their global row
// id, so any rank count generates the identical table and the single-rank
// reference is exact (amounts are integer-valued doubles — sums carry no
// rounding).
#include <algorithm>
#include <map>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "odin/tabular.hpp"
#include "scenarios/scenarios.hpp"
#include "util/random.hpp"

namespace pyhpc::scenarios {

namespace {

struct Event {
  std::int32_t region = 0;
  std::int32_t day = 0;
  double amount = 0.0;
};

/// The event at global row g — deterministic in (seed, g) only.
Event make_event(std::int64_t g, const AnalyticsOptions& o) {
  util::Xoshiro256 rng(o.seed, static_cast<std::uint64_t>(g));
  Event e;
  e.region = static_cast<std::int32_t>(rng.next_int(0, o.regions - 1));
  e.day = static_cast<std::int32_t>(rng.next_int(0, o.days - 1));
  e.amount = static_cast<double>(rng.next_int(1, 500));  // integer-valued
  return e;
}

std::int64_t key_of(const Event& e, const AnalyticsOptions& o) {
  return static_cast<std::int64_t>(e.region) * o.days + e.day;
}

GroupStat merge(GroupStat acc, const GroupStat& v) {
  if (v.count == 0) return acc;
  if (acc.count == 0) return v;
  acc.count += v.count;
  acc.sum += v.sum;
  acc.min = std::min(acc.min, v.min);
  acc.max = std::max(acc.max, v.max);
  return acc;
}

}  // namespace

AnalyticsResult run_analytics(comm::Communicator& comm,
                              const AnalyticsOptions& options) {
  require(options.regions >= 1 && options.days >= 1,
          "run_analytics: need at least one region and day");
  obs::Span span("scenario.tabular_analytics", "scenarios");
  const auto t0 = std::chrono::steady_clock::now();

  // Block row ownership (skewed: everything lands on rank 0 and the
  // pipeline must rebalance before the heavy part).
  const int p = comm.size();
  const int r = comm.rank();
  std::int64_t lo = 0, hi = 0;
  if (options.skewed) {
    hi = r == 0 ? options.events : 0;
  } else {
    const std::int64_t chunk = options.events / p;
    const std::int64_t rem = options.events % p;
    lo = r * chunk + std::min<std::int64_t>(r, rem);
    hi = lo + chunk + (r < rem ? 1 : 0);
  }
  std::vector<Event> rows;
  rows.reserve(static_cast<std::size_t>(hi - lo));
  for (std::int64_t g = lo; g < hi; ++g) {
    rows.push_back(make_event(g, options));
  }

  odin::DistTable<Event> table(comm, std::move(rows));
  if (options.skewed) table = table.rebalance();

  auto kept = table.filter(
      [&](const Event& e) { return e.amount >= options.min_amount; });

  AnalyticsResult result;
  result.rows_kept = kept.global_size();

  auto owned = odin::map_reduce<std::int64_t, GroupStat>(
      kept,
      [&](const Event& e) {
        return std::pair<std::int64_t, GroupStat>(
            key_of(e, options),
            GroupStat{key_of(e, options), 1, e.amount, e.amount, e.amount});
      },
      merge);

  // Keys are hash-partitioned (disjoint across ranks): replicate by
  // concatenating everyone's owned pairs and sorting.
  std::vector<GroupStat> mine;
  mine.reserve(owned.size());
  for (const auto& [key, stat] : owned) mine.push_back(stat);
  auto chunks = comm.allgatherv(std::span<const GroupStat>(mine));
  for (const auto& chunk : chunks) {
    result.groups.insert(result.groups.end(), chunk.begin(), chunk.end());
  }
  std::sort(result.groups.begin(), result.groups.end(),
            [](const GroupStat& a, const GroupStat& b) { return a.key < b.key; });

  const double wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                t0)
          .count();
  auto& reg = obs::MetricsRegistry::global();
  reg.set("scenario.tabular_analytics.wall_ms", wall_ms);
  reg.set("scenario.tabular_analytics.rows_kept", result.rows_kept);
  reg.set("scenario.tabular_analytics.groups", result.groups.size());
  if (span.active()) {
    span.arg("events", options.events);
    span.arg("groups", static_cast<std::int64_t>(result.groups.size()));
    span.arg("skewed", options.skewed ? "yes" : "no");
  }
  return result;
}

AnalyticsResult analytics_serial_reference(const AnalyticsOptions& options) {
  AnalyticsResult result;
  std::map<std::int64_t, GroupStat> groups;
  for (std::int64_t g = 0; g < options.events; ++g) {
    const Event e = make_event(g, options);
    if (e.amount < options.min_amount) continue;
    ++result.rows_kept;
    const std::int64_t key = key_of(e, options);
    auto [it, inserted] = groups.emplace(key, GroupStat{});
    it->second =
        merge(it->second, GroupStat{key, 1, e.amount, e.amount, e.amount});
  }
  result.groups.reserve(groups.size());
  for (const auto& [key, stat] : groups) result.groups.push_back(stat);
  return result;
}

}  // namespace pyhpc::scenarios
