// Import/Export: reusable communication plans between two Maps
// (Tpetra::Import / Tpetra::Export analogues).
//
// Import moves data from a (one-to-one) source map to a possibly
// overlapping target map — the ghost-fill direction used by SpMV and halo
// exchange. Export moves data from an overlapping source map into a
// one-to-one target map, combining contributions — the assembly direction
// used by finite-element scatter-add.
//
// Plans are built once (collective) and applied many times. The forward
// application is split-phase (begin_apply/ImportHandle::finish): receives
// are posted first, sends move their packs zero-copy, and the caller can
// overlap local compute with the in-flight exchange — the structure SpMV's
// interior/boundary overlap is built on.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "comm/communicator.hpp"
#include "comm/message.hpp"
#include "tpetra/map.hpp"

namespace pyhpc::tpetra {

/// How incoming values combine with existing target entries.
enum class CombineMode {
  kInsert,  // overwrite
  kAdd,     // accumulate
};

/// In-flight forward Import application: receives are posted, sends are
/// gone (moved into envelopes), permutes are done. finish() drains the
/// receives and scatters them into the target vector. Must be finished
/// before the next communication on the same communicator pair to keep
/// FIFO tag matching aligned.
template <class Scalar, class LO>
class ImportHandle {
 public:
  ImportHandle(ImportHandle&&) = default;
  ImportHandle(const ImportHandle&) = delete;
  ImportHandle& operator=(const ImportHandle&) = delete;

  /// Blocks until every posted halo receive has arrived and scatters the
  /// values to their target slots. May be called once; the destructor of
  /// an unfinished handle requeues the already-arrived messages (see
  /// PendingRecv), so an exception path does not lose data.
  void finish() {
    for (std::size_t i = 0; i < pending_.size(); ++i) {
      const auto& lids = *recv_lids_[i];
      std::vector<Scalar> vals =
          comm::PendingRecv::take<Scalar>(pending_[i].wait());
      require<CommError>(lids.size() == vals.size(),
                         "Import::finish: plan/payload size mismatch");
      for (std::size_t k = 0; k < lids.size(); ++k) {
        auto& slot = target_[static_cast<std::size_t>(lids[k])];
        slot = (mode_ == CombineMode::kAdd) ? slot + vals[k] : vals[k];
      }
    }
    pending_.clear();
  }

 private:
  template <class L, class G>
  friend class Import;
  ImportHandle(std::span<Scalar> target, CombineMode mode)
      : target_(target), mode_(mode) {}

  std::span<Scalar> target_;
  CombineMode mode_;
  std::vector<comm::PendingRecv> pending_;          // one per sending rank
  std::vector<const std::vector<LO>*> recv_lids_;   // target lids, parallel
};

template <class LO = std::int32_t, class GO = std::int64_t>
class Import {
 public:
  /// Collective. `source` should be one-to-one (each global index owned by
  /// exactly one rank); `target` may overlap ranks arbitrarily.
  Import(const Map<LO, GO>& source, const Map<LO, GO>& target)
      : source_(source), target_(target) {
    std::vector<GO> remote_gids;
    std::vector<LO> remote_tlids;
    const LO tn = target.num_local();
    for (LO t = 0; t < tn; ++t) {
      const GO gid = target.local_to_global(t);
      const LO slid = source.global_to_local(gid);
      if (slid != kInvalidLocal<LO>) {
        permute_src_.push_back(slid);
        permute_dst_.push_back(t);
      } else {
        remote_gids.push_back(gid);
        remote_tlids.push_back(t);
      }
    }

    // Resolve owners of the remote indices (collective on the source map).
    auto owners = source.remote_index_list(std::span<const GO>(remote_gids));

    const int p = source.comm().size();
    // Group my requests by owner; remember where each received value lands.
    struct Request {
      GO gid;
      LO source_lid;
    };
    std::vector<std::vector<Request>> requests(static_cast<std::size_t>(p));
    recv_lids_.assign(static_cast<std::size_t>(p), {});
    for (std::size_t i = 0; i < remote_gids.size(); ++i) {
      const auto [owner, slid] = owners[i];
      require<MapError>(owner >= 0,
                        util::cat("Import: global index ", remote_gids[i],
                                  " is owned by no rank of the source map"));
      requests[static_cast<std::size_t>(owner)].push_back(
          Request{remote_gids[i], slid});
      recv_lids_[static_cast<std::size_t>(owner)].push_back(remote_tlids[i]);
    }

    // Tell each owner which of its local ids we need (collective). The
    // request packs are dead after this, so move them into the envelopes.
    auto incoming = source.comm().alltoallv(std::move(requests));
    send_lids_.assign(static_cast<std::size_t>(p), {});
    for (int r = 0; r < p; ++r) {
      for (const auto& req : incoming[static_cast<std::size_t>(r)]) {
        send_lids_[static_cast<std::size_t>(r)].push_back(req.source_lid);
      }
    }
  }

  const Map<LO, GO>& source_map() const { return source_; }
  const Map<LO, GO>& target_map() const { return target_; }

  /// Number of target entries satisfied locally (no communication).
  std::size_t num_permutes() const { return permute_src_.size(); }

  /// Number of values this rank will receive per application.
  std::size_t num_remote() const {
    std::size_t n = 0;
    for (const auto& v : recv_lids_) n += v.size();
    return n;
  }

  /// Number of values this rank will send per application.
  std::size_t num_export() const {
    std::size_t n = 0;
    for (const auto& v : send_lids_) n += v.size();
    return n;
  }

  /// Starts a forward application: posts one receive per sending neighbour
  /// first (so arriving packs land in pre-posted handles instead of
  /// queueing behind compute), then moves one pack per receiving neighbour
  /// into its envelope zero-copy, then handles the local permutes. The
  /// remote values are scattered by ImportHandle::finish(); between begin
  /// and finish the caller is free to compute on anything that does not
  /// need them. Neighbour-only p2p on a reserved tag: ranks with no
  /// overlap exchange nothing (the old all-to-all schedule posted O(p)
  /// messages per rank regardless).
  template <class Scalar>
  ImportHandle<Scalar, LO> begin_apply(
      std::span<const Scalar> source_values, std::span<Scalar> target_values,
      CombineMode mode = CombineMode::kInsert) const {
    require(source_values.size() ==
                static_cast<std::size_t>(source_.num_local()),
            "Import::apply: source size mismatch");
    require(target_values.size() ==
                static_cast<std::size_t>(target_.num_local()),
            "Import::apply: target size mismatch");
    const int p = source_.comm().size();
    auto& comm = source_.comm();

    ImportHandle<Scalar, LO> handle(target_values, mode);
    for (int r = 0; r < p; ++r) {
      const auto& lids = recv_lids_[static_cast<std::size_t>(r)];
      if (lids.empty()) continue;
      handle.pending_.push_back(comm.irecv_internal(r, comm::kImportTag));
      handle.recv_lids_.push_back(&lids);
    }
    for (int r = 0; r < p; ++r) {
      const auto& lids = send_lids_[static_cast<std::size_t>(r)];
      if (lids.empty()) continue;
      std::vector<Scalar> pack;
      pack.reserve(lids.size());
      for (LO lid : lids) {
        pack.push_back(source_values[static_cast<std::size_t>(lid)]);
      }
      comm.send_internal(std::move(pack), r, comm::kImportTag);
    }
    for (std::size_t i = 0; i < permute_src_.size(); ++i) {
      auto& slot = target_values[static_cast<std::size_t>(permute_dst_[i])];
      const Scalar v = source_values[static_cast<std::size_t>(permute_src_[i])];
      slot = (mode == CombineMode::kAdd) ? slot + v : v;
    }
    return handle;
  }

  /// Applies the plan: target[plan] = source[plan]. Collective.
  /// `source_values` is indexed by source-map local ids, `target_values`
  /// by target-map local ids.
  template <class Scalar>
  void apply(std::span<const Scalar> source_values,
             std::span<Scalar> target_values,
             CombineMode mode = CombineMode::kInsert) const {
    begin_apply(source_values, target_values, mode).finish();
  }

  /// Runs the plan backwards: values indexed by the *target* (overlapping)
  /// map flow to their owners in the *source* (one-to-one) map. This is the
  /// engine behind Export. Collective.
  template <class Scalar>
  void apply_reverse(std::span<const Scalar> overlapping_values,
                     std::span<Scalar> owned_values, CombineMode mode) const {
    require(overlapping_values.size() ==
                static_cast<std::size_t>(target_.num_local()),
            "Import::apply_reverse: overlapping size mismatch");
    require(owned_values.size() ==
                static_cast<std::size_t>(source_.num_local()),
            "Import::apply_reverse: owned size mismatch");
    const int p = source_.comm().size();

    // Forward, rank A sends source[send_lids_[B]] to B who lands them at
    // recv_lids_[A]; in reverse, each rank ships overlapping[recv_lids_[r]]
    // back to r, who combines into owned[send_lids_[...]].
    std::vector<std::vector<Scalar>> outgoing(static_cast<std::size_t>(p));
    for (int r = 0; r < p; ++r) {
      const auto& lids = recv_lids_[static_cast<std::size_t>(r)];
      auto& pack = outgoing[static_cast<std::size_t>(r)];
      pack.reserve(lids.size());
      for (LO lid : lids) {
        pack.push_back(overlapping_values[static_cast<std::size_t>(lid)]);
      }
    }
    auto incoming = source_.comm().alltoallv(std::move(outgoing));

    for (std::size_t i = 0; i < permute_src_.size(); ++i) {
      auto& slot = owned_values[static_cast<std::size_t>(permute_src_[i])];
      const Scalar v =
          overlapping_values[static_cast<std::size_t>(permute_dst_[i])];
      slot = (mode == CombineMode::kAdd) ? slot + v : v;
    }
    for (int r = 0; r < p; ++r) {
      const auto& lids = send_lids_[static_cast<std::size_t>(r)];
      const auto& vals = incoming[static_cast<std::size_t>(r)];
      require<CommError>(lids.size() == vals.size(),
                         "Import::apply_reverse: plan/payload size mismatch");
      for (std::size_t i = 0; i < lids.size(); ++i) {
        auto& slot = owned_values[static_cast<std::size_t>(lids[i])];
        slot = (mode == CombineMode::kAdd) ? slot + vals[i] : vals[i];
      }
    }
  }

 private:
  Map<LO, GO> source_;
  Map<LO, GO> target_;
  std::vector<LO> permute_src_;
  std::vector<LO> permute_dst_;
  std::vector<std::vector<LO>> recv_lids_;  // per source rank: target lids
  std::vector<std::vector<LO>> send_lids_;  // per dest rank: source lids
};

template <class LO = std::int32_t, class GO = std::int64_t>
class Export {
 public:
  /// Collective. `source` may overlap; `target` should be one-to-one.
  /// Data flows source -> target with combination at the owner.
  Export(const Map<LO, GO>& source, const Map<LO, GO>& target)
      : reverse_(target, source) {}

  const Map<LO, GO>& source_map() const { return reverse_.target_map(); }
  const Map<LO, GO>& target_map() const { return reverse_.source_map(); }

  std::size_t num_export() const { return reverse_.num_remote(); }

  /// Applies the plan: owner entries combine every rank's contribution.
  /// With kAdd, target entries that receive no contribution keep their
  /// current value, so callers typically zero the target first.
  template <class Scalar>
  void apply(std::span<const Scalar> source_values,
             std::span<Scalar> target_values,
             CombineMode mode = CombineMode::kAdd) const {
    reverse_.apply_reverse(source_values, target_values, mode);
  }

 private:
  // An Export source->target is exactly an Import target->source run
  // backwards; we reuse the plan and add the reverse application.
  friend class Import<LO, GO>;
  Import<LO, GO> reverse_;
};

}  // namespace pyhpc::tpetra
