// Checkpoint adapters for Tpetra objects: vector slices become versioned
// CheckpointStore blocks addressed by global index, matrices become
// write-once blobs of encoded rows. Both are written per rank but restored
// range-wise, so survivors of a shrink can restore under a different
// (re-ranked, rebalanced) contiguous map than the one that saved.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "tpetra/crs_matrix.hpp"
#include "tpetra/map.hpp"
#include "tpetra/vector.hpp"
#include "util/checkpoint.hpp"

namespace pyhpc::tpetra {

/// Saves this rank's slice of `v` (contiguous map) as one block of `key`
/// at `version`. Local; every rank saves its own slice.
inline void checkpoint_vector(util::CheckpointStore& store,
                              const std::string& key, std::uint64_t version,
                              const Vector<double>& v) {
  const auto view = v.local_view();
  store.save(key, version, v.map().min_global_index(), view.data(),
             view.size());
}

/// Fills this rank's slice of `v` (contiguous map) from `key` at `version`,
/// reassembling across whatever block boundaries the writers used. Local.
/// Throws CheckpointError when the slice is not fully covered.
inline void restore_vector(const util::CheckpointStore& store,
                           const std::string& key, std::uint64_t version,
                           Vector<double>& v) {
  const auto vals =
      store.restore(key, version, v.map().min_global_index(),
                    v.map().max_global_index_plus_one());
  std::copy(vals.begin(), vals.end(), v.local_view().begin());
}

/// True when `key` at `version` covers this rank's slice of `map`.
inline bool vector_covered(const util::CheckpointStore& store,
                           const std::string& key, std::uint64_t version,
                           const Map<>& map) {
  return store.covers(key, version, map.min_global_index(),
                      map.max_global_index_plus_one());
}

/// Saves this rank's rows of a fill-complete matrix as part `rank` of an
/// `nranks`-part blob. Row records are self-delimiting —
/// [row, ncols, cols..., vals...] — so the concatenated blob decodes
/// without per-part framing. Local; every rank saves its own part once.
inline void checkpoint_matrix(util::CheckpointStore& store,
                              const std::string& key,
                              const CrsMatrix<double>& a) {
  const auto& map = a.row_map();
  std::vector<double> enc;
  for (std::int32_t lr = 0; lr < map.num_local(); ++lr) {
    const std::int64_t grow = map.local_to_global(lr);
    const auto row = a.get_global_row(grow);
    enc.push_back(static_cast<double>(grow));
    enc.push_back(static_cast<double>(row.size()));
    for (const auto& [col, val] : row) enc.push_back(static_cast<double>(col));
    for (const auto& [col, val] : row) enc.push_back(val);
  }
  store.save_blob(key, map.rank(), map.num_ranks(), std::move(enc));
}

/// Rebuilds a fill-complete matrix over `row_map` from a matrix blob: every
/// rank decodes the whole blob and keeps the rows it owns. Collective
/// (fill_complete). Throws CheckpointError when the blob is incomplete.
inline CrsMatrix<double> restore_matrix(const util::CheckpointStore& store,
                                        const std::string& key,
                                        const Map<>& row_map) {
  const auto enc = store.restore_blob(key);
  CrsMatrix<double> a(row_map);
  std::size_t i = 0;
  std::vector<std::int64_t> cols;
  std::vector<double> vals;
  while (i < enc.size()) {
    const auto grow = static_cast<std::int64_t>(enc[i]);
    const auto ncols = static_cast<std::size_t>(enc[i + 1]);
    i += 2;
    if (row_map.is_local_global_index(grow)) {
      cols.resize(ncols);
      vals.resize(ncols);
      for (std::size_t k = 0; k < ncols; ++k) {
        cols[k] = static_cast<std::int64_t>(enc[i + k]);
        vals[k] = enc[i + ncols + k];
      }
      a.insert_global_values(grow, cols, vals);
    }
    i += 2 * ncols;
  }
  a.fill_complete();
  return a;
}

}  // namespace pyhpc::tpetra
