// Map: the distribution of global indices over the ranks of a communicator —
// the foundation of every distributed object (Tpetra::Map analogue).
//
// Templated on LocalOrdinal/GlobalOrdinal exactly as the paper's §II.C
// describes for second-generation Trilinos: "The LocalOrdinal and
// GlobalOrdinal types support indexing using long integers (or any integer
// type)". Defaults give 32-bit local and 64-bit global indices.
//
// A Map may be:
//  - contiguous uniform  (global indices [0,N) in near-equal blocks),
//  - contiguous by size  (caller chooses each rank's local count),
//  - arbitrary           (explicit global-index lists; may overlap ranks,
//                         as column maps do).
//
// SPMD discipline: Map constructors and remote_index_list() are collective —
// every rank of the communicator must call them in the same program order.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <numeric>
#include <span>
#include <unordered_map>
#include <vector>

#include "comm/communicator.hpp"
#include "util/error.hpp"
#include "util/string_util.hpp"

namespace pyhpc::tpetra {

/// Sentinel returned by global_to_local for non-local indices.
template <class LO>
inline constexpr LO kInvalidLocal = static_cast<LO>(-1);

template <class LO = std::int32_t, class GO = std::int64_t>
class Map {
 public:
  using local_ordinal = LO;
  using global_ordinal = GO;

  /// Contiguous near-uniform block distribution of [0, num_global).
  /// Rank r receives floor(N/P) indices plus one extra when r < N mod P.
  static Map uniform(comm::Communicator& comm, GO num_global) {
    require(num_global >= 0, "Map::uniform: negative global count");
    Map m(comm);
    m.num_global_ = num_global;
    m.contiguous_ = true;
    m.offsets_ = uniform_offsets(num_global, comm.size());
    return m;
  }

  /// Contiguous distribution with caller-specified local count (collective:
  /// performs a scan + allreduce to establish offsets).
  static Map from_local_sizes(comm::Communicator& comm, LO num_local) {
    require(num_local >= 0, "Map::from_local_sizes: negative local count");
    Map m(comm);
    m.contiguous_ = true;
    auto counts = comm.allgather_value(static_cast<GO>(num_local));
    m.offsets_.assign(static_cast<std::size_t>(comm.size()) + 1, 0);
    for (int r = 0; r < comm.size(); ++r) {
      m.offsets_[static_cast<std::size_t>(r) + 1] =
          m.offsets_[static_cast<std::size_t>(r)] + counts[static_cast<std::size_t>(r)];
    }
    m.num_global_ = m.offsets_.back();
    return m;
  }

  /// Arbitrary distribution from this rank's global-index list. Indices may
  /// overlap between ranks (overlapping maps are how ghost/column layouts
  /// are expressed); duplicate indices on one rank are rejected.
  /// Collective: establishes the global count.
  static Map from_global_indices(comm::Communicator& comm,
                                 std::span<const GO> my_gids) {
    Map m(comm);
    m.contiguous_ = false;
    m.gids_.assign(my_gids.begin(), my_gids.end());
    m.g2l_.reserve(m.gids_.size());
    for (std::size_t i = 0; i < m.gids_.size(); ++i) {
      require(m.gids_[i] >= 0, "Map: negative global index");
      const bool inserted =
          m.g2l_.emplace(m.gids_[i], static_cast<LO>(i)).second;
      require(inserted, util::cat("Map: duplicate global index ", m.gids_[i],
                                  " on rank ", comm.rank()));
    }
    GO local_max = -1;
    for (GO g : m.gids_) local_max = std::max(local_max, g);
    const GO global_max = comm.allreduce_value(
        local_max, [](GO a, GO b) { return std::max(a, b); });
    m.num_global_ = global_max + 1;
    return m;
  }

  /// The communicator handle is shared and internally sequenced; collective
  /// calls mutate only that sequencing, so a const Map still exposes a
  /// usable communicator.
  comm::Communicator& comm() const { return *comm_; }

  GO num_global() const { return num_global_; }

  LO num_local() const {
    if (contiguous_) {
      return static_cast<LO>(offsets_[static_cast<std::size_t>(rank()) + 1] -
                             offsets_[static_cast<std::size_t>(rank())]);
    }
    return static_cast<LO>(gids_.size());
  }

  int rank() const { return comm_->rank(); }
  int num_ranks() const { return comm_->size(); }

  bool is_contiguous() const { return contiguous_; }

  /// First global index owned locally (contiguous maps only).
  GO min_global_index() const {
    require<MapError>(contiguous_, "min_global_index: map not contiguous");
    return offsets_[static_cast<std::size_t>(rank())];
  }

  /// One past the last locally owned global index (contiguous maps only).
  GO max_global_index_plus_one() const {
    require<MapError>(contiguous_, "max_global_index_plus_one: map not contiguous");
    return offsets_[static_cast<std::size_t>(rank()) + 1];
  }

  bool is_local_global_index(GO gid) const {
    if (contiguous_) {
      return gid >= offsets_[static_cast<std::size_t>(rank())] &&
             gid < offsets_[static_cast<std::size_t>(rank()) + 1];
    }
    return g2l_.count(gid) > 0;
  }

  /// Local id for a global index, or kInvalidLocal<LO> when not local.
  LO global_to_local(GO gid) const {
    if (contiguous_) {
      const GO lo = offsets_[static_cast<std::size_t>(rank())];
      const GO hi = offsets_[static_cast<std::size_t>(rank()) + 1];
      if (gid < lo || gid >= hi) return kInvalidLocal<LO>;
      return static_cast<LO>(gid - lo);
    }
    auto it = g2l_.find(gid);
    return it == g2l_.end() ? kInvalidLocal<LO> : it->second;
  }

  GO local_to_global(LO lid) const {
    require<MapError>(lid >= 0 && lid < num_local(),
                      util::cat("local_to_global: lid ", lid,
                                " out of range [0, ", num_local(), ")"));
    if (contiguous_) {
      return offsets_[static_cast<std::size_t>(rank())] + lid;
    }
    return gids_[static_cast<std::size_t>(lid)];
  }

  /// This rank's global indices (materialized for contiguous maps).
  std::vector<GO> my_global_indices() const {
    if (!contiguous_) return gids_;
    std::vector<GO> out(static_cast<std::size_t>(num_local()));
    std::iota(out.begin(), out.end(),
              offsets_[static_cast<std::size_t>(rank())]);
    return out;
  }

  /// Owning rank of a global index under a *contiguous* map — O(log P)
  /// local lookup. Arbitrary maps need remote_index_list().
  int owner_of(GO gid) const {
    require<MapError>(contiguous_, "owner_of: map not contiguous");
    require<MapError>(gid >= 0 && gid < num_global_,
                      util::cat("owner_of: gid ", gid, " out of range"));
    const auto it = std::upper_bound(offsets_.begin(), offsets_.end(), gid);
    return static_cast<int>(it - offsets_.begin()) - 1;
  }

  /// Resolves owning rank and remote local id for each queried global
  /// index. Local-only for contiguous maps; COLLECTIVE for arbitrary maps
  /// (uses a distributed directory — every rank must call, queries may be
  /// empty). Unowned indices resolve to rank -1.
  std::vector<std::pair<int, LO>> remote_index_list(
      std::span<const GO> gids) const;

  /// Same distribution: identical global count and identical local indices
  /// on every rank (cheap local test followed by a collective AND).
  bool is_same_as(const Map& other) const {
    bool local_same = locally_same(other);
    const int all = comm_->allreduce_value<int>(
        local_same ? 1 : 0, [](int a, int b) { return a & b; });
    return all == 1;
  }

  /// Compatible: same global count and same local count per rank (element
  /// wise operations are well-defined even if the indices differ).
  bool is_compatible(const Map& other) const {
    bool ok = num_global_ == other.num_global_ &&
              num_local() == other.num_local();
    const int all = comm_->allreduce_value<int>(
        ok ? 1 : 0, [](int a, int b) { return a & b; });
    return all == 1;
  }

  bool locally_same(const Map& other) const {
    if (num_global_ != other.num_global_) return false;
    if (contiguous_ && other.contiguous_) {
      return offsets_ == other.offsets_;
    }
    if (num_local() != other.num_local()) return false;
    const LO n = num_local();
    for (LO i = 0; i < n; ++i) {
      if (local_to_global(i) != other.local_to_global(i)) return false;
    }
    return true;
  }

  std::string describe() const {
    return util::cat("Map{N=", num_global_, ", P=", num_ranks(),
                     contiguous_ ? ", contiguous" : ", arbitrary",
                     ", local=", num_local(), "}");
  }

 private:
  explicit Map(const comm::Communicator& comm)
      : comm_(std::make_shared<comm::Communicator>(comm)) {}

  static std::vector<GO> uniform_offsets(GO n, int p) {
    std::vector<GO> off(static_cast<std::size_t>(p) + 1, 0);
    const GO chunk = n / p;
    const GO rem = n % p;
    for (int r = 0; r < p; ++r) {
      off[static_cast<std::size_t>(r) + 1] =
          off[static_cast<std::size_t>(r)] + chunk + (r < rem ? 1 : 0);
    }
    return off;
  }

  // Shared so copies of the Map stay cheap; the Communicator itself is a
  // light handle but carries collective sequencing that must advance
  // identically on all ranks (SPMD discipline).
  std::shared_ptr<comm::Communicator> comm_;
  GO num_global_ = 0;
  bool contiguous_ = true;
  // Contiguous representation: per-rank offsets (P+1 entries, all ranks).
  std::vector<GO> offsets_;
  // Arbitrary representation: local global-index list + reverse lookup.
  std::vector<GO> gids_;
  std::unordered_map<GO, LO> g2l_;
};

// ---------------------------------------------------------------------------
// remote_index_list: a distributed directory query. Directory rank of gid g
// is its owner under the uniform contiguous partition of [0, num_global).
// Round 1: every rank registers (gid, lid) for its owned indices with the
// directory. Round 2: queries are routed to directory ranks and answered.
// For contiguous maps everything is computable locally with no traffic.
// ---------------------------------------------------------------------------
template <class LO, class GO>
std::vector<std::pair<int, LO>> Map<LO, GO>::remote_index_list(
    std::span<const GO> gids) const {
  std::vector<std::pair<int, LO>> out(gids.size(), {-1, kInvalidLocal<LO>});
  if (contiguous_) {
    for (std::size_t i = 0; i < gids.size(); ++i) {
      const GO g = gids[i];
      if (g < 0 || g >= num_global_) continue;
      const int owner = owner_of(g);
      out[i] = {owner,
                static_cast<LO>(g - offsets_[static_cast<std::size_t>(owner)])};
    }
    return out;
  }

  auto& c = *comm_;
  const int p = c.size();
  const GO n = std::max<GO>(num_global_, 1);
  auto dir_rank_of = [&](GO g) {
    // Uniform partition of [0, n) over p directory ranks.
    const GO chunk = n / p;
    const GO rem = n % p;
    const GO boundary = (chunk + 1) * rem;  // first index of the small blocks
    if (g < boundary) return static_cast<int>(g / (chunk + 1));
    if (chunk == 0) return p - 1;
    return static_cast<int>(rem + (g - boundary) / chunk);
  };

  struct DirEntry {
    GO gid;
    LO lid;
    int owner;
  };

  // Round 1: register owned indices with the directory.
  std::vector<std::vector<DirEntry>> reg(static_cast<std::size_t>(p));
  for (std::size_t i = 0; i < gids_.size(); ++i) {
    const GO g = gids_[i];
    reg[static_cast<std::size_t>(dir_rank_of(g))].push_back(
        DirEntry{g, static_cast<LO>(i), c.rank()});
  }
  auto arrived = c.alltoallv(reg);
  // Directory table for my slice. Overlapping maps register a gid from
  // several ranks; the lowest registering rank wins (deterministic).
  std::unordered_map<GO, std::pair<int, LO>> table;
  for (const auto& part : arrived) {
    for (const auto& e : part) {
      auto it = table.find(e.gid);
      if (it == table.end() || e.owner < it->second.first) {
        table[e.gid] = {e.owner, e.lid};
      }
    }
  }

  // Round 2: route queries to directory ranks.
  struct Query {
    GO gid;
    std::int64_t slot;  // position in the caller's gids array
  };
  std::vector<std::vector<Query>> queries(static_cast<std::size_t>(p));
  for (std::size_t i = 0; i < gids.size(); ++i) {
    if (gids[i] < 0 || gids[i] >= num_global_) continue;
    queries[static_cast<std::size_t>(dir_rank_of(gids[i]))].push_back(
        Query{gids[i], static_cast<std::int64_t>(i)});
  }
  auto incoming = c.alltoallv(queries);

  struct Answer {
    std::int64_t slot;
    int owner;
    LO lid;
  };
  std::vector<std::vector<Answer>> answers(static_cast<std::size_t>(p));
  for (int src = 0; src < p; ++src) {
    for (const auto& q : incoming[static_cast<std::size_t>(src)]) {
      auto it = table.find(q.gid);
      Answer a{q.slot, -1, kInvalidLocal<LO>};
      if (it != table.end()) {
        a.owner = it->second.first;
        a.lid = it->second.second;
      }
      answers[static_cast<std::size_t>(src)].push_back(a);
    }
  }
  auto replies = c.alltoallv(answers);
  for (const auto& part : replies) {
    for (const auto& a : part) {
      out[static_cast<std::size_t>(a.slot)] = {a.owner, a.lid};
    }
  }
  return out;
}

}  // namespace pyhpc::tpetra
