// CrsMatrix: a distributed compressed-row sparse matrix
// (Tpetra::CrsMatrix analogue). Rows are distributed by a one-to-one row
// map; fill_complete() builds the column map, the local CSR structure, and
// the Import used to ghost the needed domain entries during apply().
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "obs/trace.hpp"
#include "tpetra/import_export.hpp"
#include "tpetra/map.hpp"
#include "tpetra/operator.hpp"
#include "tpetra/vector.hpp"
#include "util/exec_space.hpp"
#include "util/task_pool.hpp"

namespace pyhpc::tpetra {

/// Chunk size for row-blocked parallel sweeps (SpMV, relaxation): each row
/// carries a whole nnz row of work, so a smaller grain than the
/// elementwise util::kDefaultGrain still amortizes pool scheduling.
inline constexpr std::int64_t kRowGrain = 1024;

template <class Scalar = double, class LO = std::int32_t,
          class GO = std::int64_t>
class CrsMatrix final : public Operator<Scalar, LO, GO> {
 public:
  using scalar_type = Scalar;
  using map_type = Map<LO, GO>;
  using vector_type = Vector<Scalar, LO, GO>;

  /// Creates an empty matrix whose rows (and domain/range) follow
  /// `row_map`, which must be one-to-one.
  explicit CrsMatrix(const map_type& row_map) : row_map_(row_map) {
    staging_.resize(static_cast<std::size_t>(row_map.num_local()));
  }

  const map_type& row_map() const { return row_map_; }
  const map_type& domain_map() const override { return row_map_; }
  const map_type& range_map() const override { return row_map_; }

  /// The (overlapping) map of referenced column indices; valid after
  /// fill_complete().
  const map_type& col_map() const {
    require<MapError>(fill_complete_, "col_map: call fill_complete first");
    return *col_map_;
  }

  bool is_fill_complete() const { return fill_complete_; }

  /// Stages entries into a locally owned row; duplicate column entries
  /// accumulate. May be called repeatedly before fill_complete().
  void insert_global_values(GO row, std::span<const GO> cols,
                            std::span<const Scalar> vals) {
    require<MapError>(!fill_complete_,
                      "insert_global_values: matrix already fill-complete");
    require(cols.size() == vals.size(),
            "insert_global_values: cols/vals size mismatch");
    const LO lrow = row_map_.global_to_local(row);
    require<MapError>(lrow != kInvalidLocal<LO>,
                      util::cat("insert_global_values: row ", row,
                                " not owned by rank ", row_map_.rank()));
    auto& staged = staging_[static_cast<std::size_t>(lrow)];
    for (std::size_t k = 0; k < cols.size(); ++k) {
      require(cols[k] >= 0 && cols[k] < row_map_.num_global(),
              util::cat("insert_global_values: column ", cols[k],
                        " out of range"));
      staged[cols[k]] += vals[k];
    }
  }

  void insert_global_value(GO row, GO col, Scalar val) {
    insert_global_values(row, std::span<const GO>(&col, 1),
                         std::span<const Scalar>(&val, 1));
  }

  /// Freezes the structure: builds the column map (owned columns first, in
  /// local order, then ghosts sorted by global index), converts staged
  /// entries to CSR, and constructs the ghost Import. Collective.
  void fill_complete() {
    require<MapError>(!fill_complete_, "fill_complete: called twice");

    // Referenced global columns, split into locally owned and ghost.
    std::map<GO, LO> ghost_gids;  // sorted; value filled below
    std::vector<char> local_used(
        static_cast<std::size_t>(row_map_.num_local()), 0);
    for (const auto& row : staging_) {
      for (const auto& [gcol, v] : row) {
        const LO lid = row_map_.global_to_local(gcol);
        if (lid != kInvalidLocal<LO>) {
          local_used[static_cast<std::size_t>(lid)] = 1;
        } else {
          ghost_gids.emplace(gcol, 0);
        }
      }
    }

    // Column map global index list: all owned indices first (keeps owned
    // columns addressable without translation), then sorted ghosts.
    std::vector<GO> col_gids;
    col_gids.reserve(static_cast<std::size_t>(row_map_.num_local()) +
                     ghost_gids.size());
    for (LO i = 0; i < row_map_.num_local(); ++i) {
      col_gids.push_back(row_map_.local_to_global(i));
    }
    for (auto& [gid, slot] : ghost_gids) {
      slot = static_cast<LO>(col_gids.size());
      col_gids.push_back(gid);
    }
    col_map_ = std::make_shared<map_type>(map_type::from_global_indices(
        row_map_.comm(), std::span<const GO>(col_gids)));

    // CSR assembly with column-map local indices.
    const LO nrows = row_map_.num_local();
    row_ptr_.assign(static_cast<std::size_t>(nrows) + 1, 0);
    for (LO i = 0; i < nrows; ++i) {
      row_ptr_[static_cast<std::size_t>(i) + 1] =
          row_ptr_[static_cast<std::size_t>(i)] +
          static_cast<std::int64_t>(staging_[static_cast<std::size_t>(i)].size());
    }
    col_ind_.resize(static_cast<std::size_t>(row_ptr_.back()));
    values_.resize(static_cast<std::size_t>(row_ptr_.back()));
    for (LO i = 0; i < nrows; ++i) {
      std::size_t k = static_cast<std::size_t>(row_ptr_[static_cast<std::size_t>(i)]);
      for (const auto& [gcol, v] : staging_[static_cast<std::size_t>(i)]) {
        const LO owned = row_map_.global_to_local(gcol);
        col_ind_[k] = (owned != kInvalidLocal<LO>)
                          ? owned
                          : ghost_gids.at(gcol);
        values_[k] = v;
        ++k;
      }
    }
    staging_.clear();
    staging_.shrink_to_fit();

    // Interior/boundary row split for communication overlap: a row is
    // interior when every column it touches is locally owned. The column
    // map lists owned columns first (local ids [0, num_local)), so the
    // test is a single compare per entry. Interior rows can be swept while
    // the ghost import is still in flight; boundary rows wait for it.
    const LO num_owned = row_map_.num_local();
    interior_rows_.clear();
    boundary_rows_.clear();
    for (LO i = 0; i < nrows; ++i) {
      bool interior = true;
      for (auto k = row_ptr_[static_cast<std::size_t>(i)];
           k < row_ptr_[static_cast<std::size_t>(i) + 1]; ++k) {
        if (col_ind_[static_cast<std::size_t>(k)] >= num_owned) {
          interior = false;
          break;
        }
      }
      (interior ? interior_rows_ : boundary_rows_).push_back(i);
    }

    importer_ = std::make_shared<Import<LO, GO>>(row_map_, *col_map_);
    ghost_ = std::make_shared<vector_type>(*col_map_);
    fill_complete_ = true;
  }

  /// y := A x (collective), overlapping the ghost fill with the interior
  /// sweep: halo receives are posted and sends moved out (Import
  /// begin_apply), the interior rows — no ghost columns — run on the
  /// TaskPool while the halos travel, and the boundary rows finish once
  /// they have arrived. A matrix with no boundary rows (single rank, or a
  /// block-diagonal structure) skips the split and keeps the plain
  /// full-range sweep. The CSR arrays are hoisted into raw pointers once
  /// per call — member-vector accesses in the inner loop re-read data
  /// pointers through `this` on every element and defeat vectorization.
  void apply(const vector_type& x, vector_type& y) const override {
    require<MapError>(fill_complete_, "apply: call fill_complete first");
    const Scalar* xv = ghost_->local_view().data();
    Scalar* yv = y.local_view().data();
    const std::int64_t* rp = row_ptr_.data();
    const LO* ci = col_ind_.data();
    const Scalar* va = values_.data();

    if (boundary_rows_.empty()) {
      ghost_->do_import(x, *importer_, CombineMode::kInsert);
      // Chunk body (the call site owns the row loop): SpMV gathers x
      // through the column index, so the SoA fast path does not apply and
      // the win comes from the space's row-block scheduling.
      util::exec::for_each(
          util::exec::default_space(), 0,
          static_cast<std::int64_t>(row_map_.num_local()), kRowGrain,
          [xv, yv, rp, ci, va](std::int64_t lo, std::int64_t hi) {
            for (std::int64_t i = lo; i < hi; ++i) {
              Scalar acc{};
              const std::int64_t end = rp[i + 1];
              for (std::int64_t k = rp[i]; k < end; ++k) {
                acc += va[k] * xv[ci[k]];
              }
              yv[i] = acc;
            }
          });
      return;
    }

    obs::Span span("spmv.overlap", "tpetra");
    if (span.active()) {
      span.arg("interior_rows",
               static_cast<std::int64_t>(interior_rows_.size()));
      span.arg("boundary_rows",
               static_cast<std::int64_t>(boundary_rows_.size()));
    }
    auto handle = importer_->template begin_apply<Scalar>(
        x.local_view(), ghost_->local_view(), CombineMode::kInsert);
    const LO* interior = interior_rows_.data();
    util::exec::for_each(
        util::exec::default_space(), 0,
        static_cast<std::int64_t>(interior_rows_.size()), kRowGrain,
        [xv, yv, rp, ci, va, interior](std::int64_t lo, std::int64_t hi) {
          for (std::int64_t idx = lo; idx < hi; ++idx) {
            const std::int64_t i = interior[idx];
            Scalar acc{};
            const std::int64_t end = rp[i + 1];
            for (std::int64_t k = rp[i]; k < end; ++k) {
              acc += va[k] * xv[ci[k]];
            }
            yv[i] = acc;
          }
        });
    handle.finish();
    for (const LO row : boundary_rows_) {
      const std::int64_t i = row;
      Scalar acc{};
      const std::int64_t end = rp[i + 1];
      for (std::int64_t k = rp[i]; k < end; ++k) {
        acc += va[k] * xv[ci[k]];
      }
      yv[i] = acc;
    }
  }

  /// Copies the diagonal into `diag` (same map as the rows).
  void get_local_diag_copy(vector_type& diag) const {
    require<MapError>(fill_complete_, "get_local_diag_copy: not fill-complete");
    Scalar* dv = diag.local_view().data();
    const std::int64_t* rp = row_ptr_.data();
    const LO* ci = col_ind_.data();
    const Scalar* va = values_.data();
    const LO nrows = row_map_.num_local();
    for (LO i = 0; i < nrows; ++i) {
      Scalar d{};
      const GO grow = row_map_.local_to_global(i);
      const std::int64_t end = rp[i + 1];  // hoisted: one load per row
      for (std::int64_t k = rp[i]; k < end; ++k) {
        if (col_map_->local_to_global(ci[k]) == grow) d += va[k];
      }
      dv[i] = d;
    }
  }

  /// Scales every row i by s[i] (left scaling, A := diag(s) A).
  void left_scale(const vector_type& s) {
    require<MapError>(fill_complete_, "left_scale: not fill-complete");
    const Scalar* sv = s.local_view().data();
    const std::int64_t* rp = row_ptr_.data();
    Scalar* va = values_.data();
    const LO nrows = row_map_.num_local();
    for (LO i = 0; i < nrows; ++i) {
      const std::int64_t end = rp[i + 1];  // hoisted: one load per row
      for (std::int64_t k = rp[i]; k < end; ++k) va[k] *= sv[i];
    }
  }

  void scale(Scalar alpha) {
    for (auto& v : values_) v *= alpha;
  }

  /// Global entry count (collective).
  std::int64_t num_global_entries() const {
    const std::int64_t local = static_cast<std::int64_t>(values_.size());
    return row_map_.comm().allreduce_value(local, std::plus<std::int64_t>{});
  }

  LO num_local_rows() const { return row_map_.num_local(); }
  std::int64_t num_local_entries() const {
    return static_cast<std::int64_t>(values_.size());
  }

  /// Global Frobenius norm (collective).
  double frobenius_norm() const {
    double local = 0.0;
    for (const auto& v : values_) {
      local += static_cast<double>(v) * static_cast<double>(v);
    }
    return std::sqrt(row_map_.comm().allreduce_value(local, std::plus<double>{}));
  }

  /// Copies one locally owned row as (global column, value) pairs, sorted
  /// by global column.
  std::vector<std::pair<GO, Scalar>> get_global_row(GO row) const {
    require<MapError>(fill_complete_, "get_global_row: not fill-complete");
    const LO lrow = row_map_.global_to_local(row);
    require<MapError>(lrow != kInvalidLocal<LO>, "get_global_row: row not owned");
    std::vector<std::pair<GO, Scalar>> out;
    for (auto k = row_ptr_[static_cast<std::size_t>(lrow)];
         k < row_ptr_[static_cast<std::size_t>(lrow) + 1]; ++k) {
      out.emplace_back(
          col_map_->local_to_global(col_ind_[static_cast<std::size_t>(k)]),
          values_[static_cast<std::size_t>(k)]);
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  /// Raw CSR access for preconditioner construction (valid after
  /// fill_complete; column indices are column-map local ids).
  std::span<const std::int64_t> row_ptr() const { return row_ptr_; }
  std::span<const LO> col_ind() const { return col_ind_; }
  std::span<const Scalar> values() const { return values_; }
  std::span<Scalar> values_mutable() { return values_; }

  /// The ghost importer (column-map fill plan).
  const Import<LO, GO>& importer() const { return *importer_; }

  /// Imports a domain vector into the column layout using the matrix's own
  /// plan — preconditioners that need ghosted x reuse this.
  void import_to_col_layout(const vector_type& x, vector_type& ghosted) const {
    ghosted.do_import(x, *importer_, CombineMode::kInsert);
  }

 private:
  map_type row_map_;
  std::shared_ptr<map_type> col_map_;
  // Pre-fill staging: per local row, sorted map gcol -> accumulated value.
  std::vector<std::map<GO, Scalar>> staging_;
  // CSR (post-fill), column indices in column-map local ids.
  std::vector<std::int64_t> row_ptr_;
  std::vector<LO> col_ind_;
  std::vector<Scalar> values_;
  // Overlap partition (post-fill): rows touching only owned columns vs
  // rows needing at least one ghost value.
  std::vector<LO> interior_rows_;
  std::vector<LO> boundary_rows_;
  std::shared_ptr<Import<LO, GO>> importer_;
  std::shared_ptr<vector_type> ghost_;  // scratch for apply()
  bool fill_complete_ = false;
};

}  // namespace pyhpc::tpetra
