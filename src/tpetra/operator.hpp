// Operator: the abstract distributed linear operator interface consumed by
// the Krylov solvers and preconditioners (Tpetra::Operator analogue).
#pragma once

#include <cstdint>

#include "tpetra/map.hpp"
#include "tpetra/vector.hpp"

namespace pyhpc::tpetra {

template <class Scalar = double, class LO = std::int32_t,
          class GO = std::int64_t>
class Operator {
 public:
  using vector_type = Vector<Scalar, LO, GO>;
  using map_type = Map<LO, GO>;

  virtual ~Operator() = default;

  /// y := A x. Collective across the operator's communicator.
  virtual void apply(const vector_type& x, vector_type& y) const = 0;

  /// The map of vectors this operator may be applied to.
  virtual const map_type& domain_map() const = 0;

  /// The map of vectors this operator produces.
  virtual const map_type& range_map() const = 0;
};

}  // namespace pyhpc::tpetra
