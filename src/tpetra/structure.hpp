// Structure fingerprints and setup-cache adapters for tpetra objects
// (DESIGN.md §10 "setup cache"). A fingerprint covers exactly the problem
// *structure* — map shape and ownership, CSR sparsity pattern — and never
// the values: the service workload repeats structures with fresh values,
// so artifacts keyed this way (Import plans, factorizations) amortize
// across requests while staying correct.
//
// Fingerprints are per-rank (they mix this rank's owned indices); the
// cache adapters therefore require a per-rank SetupCache. Builders run
// outside the cache lock (see util/setup_cache.hpp), which is what makes
// collective builders (Import) safe to route through a cache at all.
#pragma once

#include <cstdint>
#include <memory>

#include "tpetra/crs_matrix.hpp"
#include "tpetra/import_export.hpp"
#include "tpetra/map.hpp"
#include "util/setup_cache.hpp"
#include "util/string_util.hpp"

namespace pyhpc::tpetra {

/// Fingerprint of a map's local structure: global/local extents, this
/// rank's position, and the owned global indices.
template <class LO, class GO>
std::uint64_t structure_fingerprint(const Map<LO, GO>& map) {
  util::Fingerprint fp;
  fp.mix(static_cast<std::uint64_t>(map.num_global()));
  fp.mix(static_cast<std::uint64_t>(map.num_local()));
  fp.mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(map.rank())));
  const auto gids = map.my_global_indices();
  fp.mix_bytes(gids.data(), gids.size() * sizeof(GO));
  return fp.digest();
}

/// Fingerprint of a fill-complete matrix's sparsity structure: row map
/// fingerprint plus the local CSR pattern (row_ptr + col_ind, NOT values).
template <class Scalar, class LO, class GO>
std::uint64_t structure_fingerprint(const CrsMatrix<Scalar, LO, GO>& a) {
  require<MapError>(a.is_fill_complete(),
                    "structure_fingerprint: call fill_complete first");
  util::Fingerprint fp;
  fp.mix(structure_fingerprint(a.row_map()));
  const auto rp = a.row_ptr();
  const auto ci = a.col_ind();
  fp.mix_bytes(rp.data(), rp.size() * sizeof(std::int64_t));
  fp.mix_bytes(ci.data(), ci.size() * sizeof(LO));
  return fp.digest();
}

/// Cached Import plan for (source, target): builds collectively on miss,
/// returns the shared plan on hit. The Import constructor is collective,
/// so hit/miss must agree across ranks: give every rank its own cache and
/// feed all ranks the identical request stream (as the service layer does)
/// — then each structure misses everywhere exactly once and hits
/// everywhere afterwards. A rank-local cache shared across divergent
/// request streams would deadlock the first time one rank hits while
/// another builds.
template <class LO, class GO>
std::shared_ptr<Import<LO, GO>> cached_import(util::SetupCache& cache,
                                              const Map<LO, GO>& source,
                                              const Map<LO, GO>& target) {
  const std::string key =
      util::cat("import:", structure_fingerprint(source), ":",
                structure_fingerprint(target));
  return cache.get_or_build<Import<LO, GO>>(key, [&] {
    return std::make_shared<Import<LO, GO>>(source, target);
  });
}

}  // namespace pyhpc::tpetra
