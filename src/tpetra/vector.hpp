// Vector: a distributed dense vector over a Map (Tpetra::Vector analogue),
// templated on Scalar/LocalOrdinal/GlobalOrdinal per the paper's §II.C.
#pragma once

#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <span>
#include <vector>

#include "tpetra/import_export.hpp"
#include "tpetra/map.hpp"
#include "util/random.hpp"

namespace pyhpc::tpetra {

template <class Scalar = double, class LO = std::int32_t,
          class GO = std::int64_t>
class Vector {
 public:
  using scalar_type = Scalar;
  using map_type = Map<LO, GO>;

  explicit Vector(const map_type& map)
      : map_(map), data_(static_cast<std::size_t>(map.num_local()), Scalar{}) {}

  Vector(const map_type& map, Scalar fill)
      : map_(map), data_(static_cast<std::size_t>(map.num_local()), fill) {}

  const map_type& map() const { return map_; }
  LO local_size() const { return static_cast<LO>(data_.size()); }
  GO global_size() const { return map_.num_global(); }

  std::span<Scalar> local_view() { return data_; }
  std::span<const Scalar> local_view() const { return data_; }

  Scalar& operator[](LO lid) { return data_[static_cast<std::size_t>(lid)]; }
  const Scalar& operator[](LO lid) const {
    return data_[static_cast<std::size_t>(lid)];
  }

  /// Writes through a global index; the index must be locally owned.
  void replace_global_value(GO gid, Scalar value) {
    const LO lid = map_.global_to_local(gid);
    require<MapError>(lid != kInvalidLocal<LO>,
                      util::cat("replace_global_value: gid ", gid,
                                " not owned by rank ", map_.rank()));
    data_[static_cast<std::size_t>(lid)] = value;
  }

  void sum_into_global_value(GO gid, Scalar value) {
    const LO lid = map_.global_to_local(gid);
    require<MapError>(lid != kInvalidLocal<LO>,
                      "sum_into_global_value: gid not owned");
    data_[static_cast<std::size_t>(lid)] += value;
  }

  void put_scalar(Scalar value) {
    for (auto& x : data_) x = value;
  }

  /// Deterministic uniform [0,1) fill; the stream depends on (seed, rank)
  /// so results are reproducible for a fixed rank count.
  void randomize(std::uint64_t seed = 0) {
    util::Xoshiro256 rng(seed, static_cast<std::uint64_t>(map_.rank()));
    for (auto& x : data_) x = static_cast<Scalar>(rng.next_double());
  }

  /// y := alpha * x + beta * y  (this is y). Maps must be compatible.
  void update(Scalar alpha, const Vector& x, Scalar beta) {
    check_same_layout(x, "update");
    for (std::size_t i = 0; i < data_.size(); ++i) {
      data_[i] = alpha * x.data_[i] + beta * data_[i];
    }
  }

  void scale(Scalar alpha) {
    for (auto& x : data_) x *= alpha;
  }

  /// this := x element-wise-times y (Tpetra elementWiseMultiply).
  void elementwise_multiply(const Vector& x, const Vector& y) {
    check_same_layout(x, "elementwise_multiply");
    check_same_layout(y, "elementwise_multiply");
    for (std::size_t i = 0; i < data_.size(); ++i) {
      data_[i] = x.data_[i] * y.data_[i];
    }
  }

  void reciprocal(const Vector& x) {
    check_same_layout(x, "reciprocal");
    for (std::size_t i = 0; i < data_.size(); ++i) {
      data_[i] = Scalar{1} / x.data_[i];
    }
  }

  void abs(const Vector& x) {
    check_same_layout(x, "abs");
    for (std::size_t i = 0; i < data_.size(); ++i) {
      data_[i] = std::abs(x.data_[i]);
    }
  }

  /// Global dot product (collective).
  Scalar dot(const Vector& other) const {
    check_same_layout(other, "dot");
    Scalar local{};
    for (std::size_t i = 0; i < data_.size(); ++i) {
      local += data_[i] * other.data_[i];
    }
    return map_.comm().allreduce_value(local, std::plus<Scalar>{});
  }

  /// Global 2-norm (collective).
  double norm2() const {
    double local = 0.0;
    for (const auto& x : data_) {
      local += static_cast<double>(x) * static_cast<double>(x);
    }
    return std::sqrt(
        map_.comm().allreduce_value(local, std::plus<double>{}));
  }

  /// Global 1-norm (collective).
  double norm1() const {
    double local = 0.0;
    for (const auto& x : data_) local += std::abs(static_cast<double>(x));
    return map_.comm().allreduce_value(local, std::plus<double>{});
  }

  /// Global max-norm (collective).
  double norm_inf() const {
    double local = 0.0;
    for (const auto& x : data_) {
      local = std::max(local, std::abs(static_cast<double>(x)));
    }
    return map_.comm().allreduce_value(
        local, [](double a, double b) { return std::max(a, b); });
  }

  /// Global minimum / maximum / mean (collective).
  Scalar min_value() const {
    Scalar local = data_.empty() ? std::numeric_limits<Scalar>::max()
                                 : data_.front();
    for (const auto& x : data_) local = std::min(local, x);
    return map_.comm().allreduce_value(
        local, [](Scalar a, Scalar b) { return std::min(a, b); });
  }

  Scalar max_value() const {
    Scalar local = data_.empty() ? std::numeric_limits<Scalar>::lowest()
                                 : data_.front();
    for (const auto& x : data_) local = std::max(local, x);
    return map_.comm().allreduce_value(
        local, [](Scalar a, Scalar b) { return std::max(a, b); });
  }

  Scalar mean_value() const {
    Scalar local{};
    for (const auto& x : data_) local += x;
    const Scalar total = map_.comm().allreduce_value(local, std::plus<Scalar>{});
    return total / static_cast<Scalar>(map_.num_global());
  }

  /// Ghost fill: this := import of `src` under `plan` (collective).
  void do_import(const Vector& src, const Import<LO, GO>& plan,
                 CombineMode mode = CombineMode::kInsert) {
    plan.template apply<Scalar>(src.local_view(), local_view(), mode);
  }

  /// Assembly: contributions in `src` (overlapping map) combine into this
  /// (one-to-one map) at the owners (collective).
  void do_export(const Vector& src, const Export<LO, GO>& plan,
                 CombineMode mode = CombineMode::kAdd) {
    plan.template apply<Scalar>(src.local_view(), local_view(), mode);
  }

  /// Gathers the whole vector to every rank in global-index order
  /// (collective; intended for tests and small problems).
  std::vector<Scalar> gather_global() const {
    struct Entry {
      GO gid;
      Scalar value;
    };
    std::vector<Entry> mine;
    mine.reserve(data_.size());
    for (LO i = 0; i < static_cast<LO>(data_.size()); ++i) {
      mine.push_back(Entry{map_.local_to_global(i), data_[static_cast<std::size_t>(i)]});
    }
    auto chunks = map_.comm().allgatherv(std::span<const Entry>(mine));
    std::vector<Scalar> out(static_cast<std::size_t>(map_.num_global()),
                            Scalar{});
    for (const auto& chunk : chunks) {
      for (const auto& e : chunk) {
        out[static_cast<std::size_t>(e.gid)] = e.value;
      }
    }
    return out;
  }

 private:
  void check_same_layout(const Vector& other, const char* op) const {
    require<MapError>(other.data_.size() == data_.size(),
                      util::cat("Vector::", op, ": local size mismatch (",
                                data_.size(), " vs ", other.data_.size(), ")"));
  }

  map_type map_;
  std::vector<Scalar> data_;
};

/// MultiVector: k column vectors sharing one map (Tpetra::MultiVector
/// analogue; the storage is column-major — one contiguous block per column).
template <class Scalar = double, class LO = std::int32_t,
          class GO = std::int64_t>
class MultiVector {
 public:
  using vector_type = Vector<Scalar, LO, GO>;
  using map_type = Map<LO, GO>;

  MultiVector(const map_type& map, int num_vectors)
      : map_(map) {
    require(num_vectors >= 1, "MultiVector: need at least one column");
    cols_.reserve(static_cast<std::size_t>(num_vectors));
    for (int j = 0; j < num_vectors; ++j) cols_.emplace_back(map);
  }

  const map_type& map() const { return map_; }
  int num_vectors() const { return static_cast<int>(cols_.size()); }

  vector_type& col(int j) { return cols_.at(static_cast<std::size_t>(j)); }
  const vector_type& col(int j) const {
    return cols_.at(static_cast<std::size_t>(j));
  }

  void put_scalar(Scalar value) {
    for (auto& c : cols_) c.put_scalar(value);
  }

  void randomize(std::uint64_t seed = 0) {
    std::uint64_t s = seed;
    for (auto& c : cols_) c.randomize(s++);
  }

  /// Column-wise dots against another multivector (collective).
  std::vector<Scalar> dot(const MultiVector& other) const {
    require(other.num_vectors() == num_vectors(),
            "MultiVector::dot: column count mismatch");
    std::vector<Scalar> out;
    out.reserve(cols_.size());
    for (int j = 0; j < num_vectors(); ++j) out.push_back(col(j).dot(other.col(j)));
    return out;
  }

  std::vector<double> norms2() const {
    std::vector<double> out;
    out.reserve(cols_.size());
    for (const auto& c : cols_) out.push_back(c.norm2());
    return out;
  }

 private:
  map_type map_;
  std::vector<vector_type> cols_;
};

}  // namespace pyhpc::tpetra
