// EpetraExt analogue (Table I: "extensions to Epetra — I/O, sparse
// transposes, coloring, etc."): distributed sparse transpose, MatrixMarket
// I/O, and row/column scaling helpers.
#pragma once

#include <iosfwd>
#include <string>

#include "tpetra/crs_matrix.hpp"
#include "tpetra/vector.hpp"

namespace pyhpc::epetraext {

using Matrix = tpetra::CrsMatrix<double>;
using Vector = tpetra::Vector<double>;
using Map = tpetra::Map<>;

/// Explicit distributed transpose: entry (i, j, v) moves to the owner of
/// row j under `a`'s row map. Collective.
Matrix transpose(const Matrix& a);

/// Writes the matrix in MatrixMarket coordinate format (1-based, one file,
/// written by rank 0 after a gather). Collective.
void write_matrix_market(const Matrix& a, const std::string& path);

/// Reads a MatrixMarket coordinate file (rank 0 reads, entries are
/// broadcast) into a matrix over a uniform row map. Collective.
Matrix read_matrix_market(comm::Communicator& comm, const std::string& path);

/// Writes a distributed vector as a MatrixMarket array file. Collective.
void write_vector_market(const Vector& v, const std::string& path);

/// Reads a MatrixMarket array file into a vector over a uniform map.
Vector read_vector_market(comm::Communicator& comm, const std::string& path);

/// Returns diag(s) * A * diag(t) as a new matrix, where s follows the row
/// map and t the domain map. Collective.
Matrix scale_rows_columns(const Matrix& a, const Vector& s, const Vector& t);

}  // namespace pyhpc::epetraext
