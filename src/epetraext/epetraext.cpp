#include "epetraext/epetraext.hpp"

#include <fstream>
#include <sstream>
#include <vector>

#include "util/string_util.hpp"

namespace pyhpc::epetraext {

namespace {
using GO = std::int64_t;
using LO = std::int32_t;

struct Triple {
  GO row;
  GO col;
  double val;
};
}  // namespace

Matrix transpose(const Matrix& a) {
  require<MapError>(a.is_fill_complete(), "transpose: matrix not fill-complete");
  const Map& map = a.row_map();
  auto& comm = map.comm();
  const int p = comm.size();

  // Route each entry (i, j, v) to the owner of row j. Owners of the column
  // indices are resolved through the map (local arithmetic for contiguous
  // maps, a collective directory query otherwise).
  std::vector<Triple> mine;
  std::vector<GO> cols;
  for (LO i = 0; i < a.num_local_rows(); ++i) {
    const GO g = map.local_to_global(i);
    for (const auto& [c, v] : a.get_global_row(g)) {
      mine.push_back(Triple{c, g, v});  // already transposed
      cols.push_back(c);
    }
  }
  auto owners = map.remote_index_list(std::span<const GO>(cols));

  std::vector<std::vector<Triple>> outgoing(static_cast<std::size_t>(p));
  for (std::size_t k = 0; k < mine.size(); ++k) {
    const int owner = owners[k].first;
    require<MapError>(owner >= 0, "transpose: column index owned by no rank");
    outgoing[static_cast<std::size_t>(owner)].push_back(mine[k]);
  }
  auto incoming = comm.alltoallv(outgoing);

  Matrix at(map);
  for (const auto& part : incoming) {
    for (const auto& t : part) {
      at.insert_global_value(t.row, t.col, t.val);
    }
  }
  at.fill_complete();
  return at;
}

void write_matrix_market(const Matrix& a, const std::string& path) {
  std::vector<Triple> mine;
  for (LO i = 0; i < a.num_local_rows(); ++i) {
    const GO g = a.row_map().local_to_global(i);
    for (const auto& [c, v] : a.get_global_row(g)) {
      mine.push_back(Triple{g, c, v});
    }
  }
  auto chunks = a.row_map().comm().allgatherv(std::span<const Triple>(mine));
  if (a.row_map().rank() != 0) return;

  std::ofstream out(path);
  require(out.good(), "write_matrix_market: cannot open " + path);
  std::size_t nnz = 0;
  for (const auto& c : chunks) nnz += c.size();
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << a.row_map().num_global() << " " << a.row_map().num_global() << " "
      << nnz << "\n";
  out.precision(17);
  for (const auto& chunk : chunks) {
    for (const auto& t : chunk) {
      out << t.row + 1 << " " << t.col + 1 << " " << t.val << "\n";
    }
  }
  require(out.good(), "write_matrix_market: write failed for " + path);
}

Matrix read_matrix_market(comm::Communicator& comm, const std::string& path) {
  std::string content;
  if (comm.rank() == 0) {
    std::ifstream in(path);
    require(in.good(), "read_matrix_market: cannot open " + path);
    std::ostringstream ss;
    ss << in.rdbuf();
    content = ss.str();
  }
  content = comm.broadcast_string(content, 0);

  std::istringstream in(content);
  std::string line;
  // Header / comments.
  do {
    require(static_cast<bool>(std::getline(in, line)),
            "read_matrix_market: empty file");
  } while (!line.empty() && line[0] == '%');
  std::istringstream header(line);
  GO nrows = 0, ncols = 0;
  std::size_t nnz = 0;
  header >> nrows >> ncols >> nnz;
  require(nrows > 0 && nrows == ncols,
          "read_matrix_market: need a square matrix header");

  auto map = Map::uniform(comm, nrows);
  Matrix a(map);
  for (std::size_t k = 0; k < nnz; ++k) {
    GO r = 0, c = 0;
    double v = 0.0;
    in >> r >> c >> v;
    require(!in.fail(), "read_matrix_market: truncated entry list");
    if (map.is_local_global_index(r - 1)) {
      a.insert_global_value(r - 1, c - 1, v);
    }
  }
  a.fill_complete();
  return a;
}

void write_vector_market(const Vector& v, const std::string& path) {
  auto full = v.gather_global();
  if (v.map().rank() != 0) return;
  std::ofstream out(path);
  require(out.good(), "write_vector_market: cannot open " + path);
  out << "%%MatrixMarket matrix array real general\n";
  out << full.size() << " 1\n";
  out.precision(17);
  for (double x : full) out << x << "\n";
  require(out.good(), "write_vector_market: write failed");
}

Vector read_vector_market(comm::Communicator& comm, const std::string& path) {
  std::string content;
  if (comm.rank() == 0) {
    std::ifstream in(path);
    require(in.good(), "read_vector_market: cannot open " + path);
    std::ostringstream ss;
    ss << in.rdbuf();
    content = ss.str();
  }
  content = comm.broadcast_string(content, 0);

  std::istringstream in(content);
  std::string line;
  do {
    require(static_cast<bool>(std::getline(in, line)),
            "read_vector_market: empty file");
  } while (!line.empty() && line[0] == '%');
  std::istringstream header(line);
  GO n = 0;
  int one = 0;
  header >> n >> one;
  require(n > 0 && one == 1, "read_vector_market: bad array header");

  auto map = Map::uniform(comm, n);
  Vector v(map);
  for (GO g = 0; g < n; ++g) {
    double x = 0.0;
    in >> x;
    require(!in.fail(), "read_vector_market: truncated entries");
    const LO lid = map.global_to_local(g);
    if (lid != tpetra::kInvalidLocal<LO>) v[lid] = x;
  }
  return v;
}

Matrix scale_rows_columns(const Matrix& a, const Vector& s, const Vector& t) {
  require<MapError>(a.is_fill_complete(),
                    "scale_rows_columns: matrix not fill-complete");
  // Ghost t into the column layout via the matrix's own import plan.
  Vector t_ghost(a.col_map());
  a.import_to_col_layout(t, t_ghost);

  Matrix scaled(a.row_map());
  auto row_ptr = a.row_ptr();
  auto col_ind = a.col_ind();
  auto vals = a.values();
  for (LO i = 0; i < a.num_local_rows(); ++i) {
    const GO g = a.row_map().local_to_global(i);
    for (auto k = row_ptr[static_cast<std::size_t>(i)];
         k < row_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
      const LO c = col_ind[static_cast<std::size_t>(k)];
      scaled.insert_global_value(
          g, a.col_map().local_to_global(c),
          s[i] * vals[static_cast<std::size_t>(k)] * t_ghost[c]);
    }
  }
  scaled.fill_complete();
  return scaled;
}

}  // namespace pyhpc::epetraext
