#include "comm/stats.hpp"

#include "util/string_util.hpp"

namespace pyhpc::comm {

std::string CommStats::to_string() const {
  std::string out = util::cat(
      "p2p: ", p2p_messages_sent, " msgs / ", p2p_bytes_sent, " B sent, ",
      p2p_messages_received, " msgs / ", p2p_bytes_received,
      " B recvd; coll: ", coll_messages_sent, " msgs / ", coll_bytes_sent,
      " B sent across ", collectives, " collectives");
  if (retries != 0 || timeouts != 0 || drops_detected != 0 ||
      corruption_detected != 0) {
    out += util::cat("; resilience: ", retries, " retries, ", timeouts,
                     " timeouts, ", drops_detected, " drops detected, ",
                     corruption_detected, " corruptions detected");
  }
  if (mailbox_highwater_bytes != 0) {
    out += util::cat("; mailbox highwater: ", mailbox_highwater_bytes, " B");
  }
  if (bytes_copied != 0 || zero_copy_bytes != 0 || rendezvous != 0) {
    out += util::cat("; transport: ", bytes_copied, " B copied, ",
                     zero_copy_bytes, " B zero-copy in ", zero_copy_messages,
                     " msgs, ", rendezvous, " rendezvous, arena ", arena_hits,
                     " hits / ", arena_misses, " misses");
  }
  return out;
}

}  // namespace pyhpc::comm
