#include "comm/stats.hpp"

#include "util/string_util.hpp"

namespace pyhpc::comm {

std::string CommStats::to_string() const {
  return util::cat("p2p: ", p2p_messages_sent, " msgs / ", p2p_bytes_sent,
                   " B sent, ", p2p_messages_received, " msgs / ",
                   p2p_bytes_received, " B recvd; coll: ", coll_messages_sent,
                   " msgs / ", coll_bytes_sent, " B sent across ", collectives,
                   " collectives");
}

}  // namespace pyhpc::comm
