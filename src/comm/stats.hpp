// Per-rank communication counters.
//
// The paper says the ODIN prototype's emphasis is "instrumentation to help
// identify performance bottlenecks associated with different communication
// patterns"; CommStats is that instrumentation. Benches report these
// counters because they are machine-independent: they capture the *shape*
// of an algorithm's communication (O(boundary) halo traffic, tens-of-bytes
// control messages, shuffle volume) regardless of how fast the host is.
#pragma once

#include <cstdint>
#include <string>

namespace pyhpc::comm {

struct CommStats {
  // User-level point-to-point traffic.
  std::uint64_t p2p_messages_sent = 0;
  std::uint64_t p2p_bytes_sent = 0;
  std::uint64_t p2p_messages_received = 0;
  std::uint64_t p2p_bytes_received = 0;
  // Traffic generated inside collectives (tagged internally).
  std::uint64_t coll_messages_sent = 0;
  std::uint64_t coll_bytes_sent = 0;
  std::uint64_t coll_messages_received = 0;
  std::uint64_t coll_bytes_received = 0;
  // Number of collective operations entered.
  std::uint64_t collectives = 0;

  std::uint64_t total_messages_sent() const {
    return p2p_messages_sent + coll_messages_sent;
  }
  std::uint64_t total_bytes_sent() const {
    return p2p_bytes_sent + coll_bytes_sent;
  }

  void reset() { *this = CommStats{}; }

  CommStats& operator+=(const CommStats& o) {
    p2p_messages_sent += o.p2p_messages_sent;
    p2p_bytes_sent += o.p2p_bytes_sent;
    p2p_messages_received += o.p2p_messages_received;
    p2p_bytes_received += o.p2p_bytes_received;
    coll_messages_sent += o.coll_messages_sent;
    coll_bytes_sent += o.coll_bytes_sent;
    coll_messages_received += o.coll_messages_received;
    coll_bytes_received += o.coll_bytes_received;
    collectives += o.collectives;
    return *this;
  }

  std::string to_string() const;
};

}  // namespace pyhpc::comm
