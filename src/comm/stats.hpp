// Per-rank communication counters.
//
// The paper says the ODIN prototype's emphasis is "instrumentation to help
// identify performance bottlenecks associated with different communication
// patterns"; CommStats is that instrumentation. Benches report these
// counters because they are machine-independent: they capture the *shape*
// of an algorithm's communication (O(boundary) halo traffic, tens-of-bytes
// control messages, shuffle volume) regardless of how fast the host is.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>

namespace pyhpc::comm {

struct CommStats {
  // User-level point-to-point traffic.
  std::uint64_t p2p_messages_sent = 0;
  std::uint64_t p2p_bytes_sent = 0;
  std::uint64_t p2p_messages_received = 0;
  std::uint64_t p2p_bytes_received = 0;
  // Traffic generated inside collectives (tagged internally).
  std::uint64_t coll_messages_sent = 0;
  std::uint64_t coll_bytes_sent = 0;
  std::uint64_t coll_messages_received = 0;
  std::uint64_t coll_bytes_received = 0;
  // Number of collective operations entered.
  std::uint64_t collectives = 0;
  // Resilience counters (detection side — what the layer *observed*; the
  // injection side lives in FaultInjector::counts).
  std::uint64_t retries = 0;              // payload retransmissions
  std::uint64_t timeouts = 0;             // recv/probe deadline expiries
  std::uint64_t drops_detected = 0;       // losses inferred from missing acks
  std::uint64_t corruption_detected = 0;  // checksum mismatches caught
  // Largest number of payload bytes ever buffered in one mailbox —
  // observability for unbounded eager-send buffering (aggregated with max,
  // not sum).
  std::uint64_t mailbox_highwater_bytes = 0;
  // Messages captured by a PendingRecv handle and re-queued because the
  // handle was destroyed before wait() consumed them.
  std::uint64_t pending_requeued = 0;
  // Transport-tier accounting. p2p/coll byte counters above record
  // *logical* volume (what the program shipped); these record what the
  // transport physically did with it. bytes_copied counts payload bytes
  // memcpy'd into transport storage at send time (the eager path);
  // zero_copy_* count sends whose payload was moved or aliased instead.
  std::uint64_t bytes_copied = 0;
  std::uint64_t zero_copy_messages = 0;
  std::uint64_t zero_copy_bytes = 0;
  // Rendezvous handoffs: isend payloads above CommConfig::eager_threshold
  // that aliased caller memory and completed via SendFuture.
  std::uint64_t rendezvous = 0;
  // Pooled-arena outcomes for eager copies: a hit recycled a freelisted
  // block, a miss allocated a fresh one (or fell through to the heap).
  std::uint64_t arena_hits = 0;
  std::uint64_t arena_misses = 0;
  // Collective schedule selection: how many collectives ran each
  // algorithm (bucketed here instead of the metrics registry so the hot
  // path stays lock-free; the obs bridge folds them into gauges).
  std::uint64_t algo_linear = 0;
  std::uint64_t algo_recursive_doubling = 0;
  std::uint64_t algo_rabenseifner = 0;
  std::uint64_t algo_ring = 0;
  std::uint64_t algo_bruck = 0;
  std::uint64_t algo_binomial = 0;
  std::uint64_t algo_pairwise = 0;

  std::uint64_t total_messages_sent() const {
    return p2p_messages_sent + coll_messages_sent;
  }
  std::uint64_t total_bytes_sent() const {
    return p2p_bytes_sent + coll_bytes_sent;
  }

  void reset() { *this = CommStats{}; }

  CommStats& operator+=(const CommStats& o) {
    p2p_messages_sent += o.p2p_messages_sent;
    p2p_bytes_sent += o.p2p_bytes_sent;
    p2p_messages_received += o.p2p_messages_received;
    p2p_bytes_received += o.p2p_bytes_received;
    coll_messages_sent += o.coll_messages_sent;
    coll_bytes_sent += o.coll_bytes_sent;
    coll_messages_received += o.coll_messages_received;
    coll_bytes_received += o.coll_bytes_received;
    collectives += o.collectives;
    retries += o.retries;
    timeouts += o.timeouts;
    drops_detected += o.drops_detected;
    corruption_detected += o.corruption_detected;
    mailbox_highwater_bytes =
        std::max(mailbox_highwater_bytes, o.mailbox_highwater_bytes);
    pending_requeued += o.pending_requeued;
    bytes_copied += o.bytes_copied;
    zero_copy_messages += o.zero_copy_messages;
    zero_copy_bytes += o.zero_copy_bytes;
    rendezvous += o.rendezvous;
    arena_hits += o.arena_hits;
    arena_misses += o.arena_misses;
    algo_linear += o.algo_linear;
    algo_recursive_doubling += o.algo_recursive_doubling;
    algo_rabenseifner += o.algo_rabenseifner;
    algo_ring += o.algo_ring;
    algo_bruck += o.algo_bruck;
    algo_binomial += o.algo_binomial;
    algo_pairwise += o.algo_pairwise;
    return *this;
  }

  std::string to_string() const;
};

}  // namespace pyhpc::comm
