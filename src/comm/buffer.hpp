// Zero-copy payload buffers for the in-process transport tier.
//
// Ranks are threads in one address space, so a payload never needs to be
// serialized onto a wire — an envelope only needs shared ownership of the
// sender's bytes. Buffer is that ownership handle: a ref-counted,
// type-erased holder with three acquisition paths (DESIGN.md §2.2):
//
//  - copy_of(span):   the eager path — bytes are copied into transport
//                     storage (a pooled arena block when they fit, heap
//                     otherwise). The only path that costs a memcpy; the
//                     copied volume is what CommStats::bytes_copied counts.
//  - adopt(vector):   the zero-copy move path — the sender's vector is
//                     moved into shared ownership. A receiver that asks for
//                     the same element type can take_vector() it back out,
//                     making the whole transfer copy-free end to end.
//  - view(span, rv):  the rendezvous path — the envelope aliases caller
//                     memory and the attached RendezvousState releases when
//                     the last reference (receiver, duplicates, drops)
//                     lets go, completing the sender's SendFuture.
//
// Buffers are immutable after construction; fault injection that wants to
// tamper with bytes must clone first (mutable_data() refuses shared or
// aliased storage), so injected corruption can never damage live sender
// data that a zero-copy envelope shares.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <typeinfo>
#include <vector>

#include "util/error.hpp"

namespace pyhpc::comm {

/// Completion latch for one rendezvous handoff: released when every
/// envelope referencing the caller's memory has been consumed (received,
/// dropped, or replaced), at which point the sender may reuse the buffer.
class RendezvousState {
 public:
  void release() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      released_ = true;
    }
    cv_.notify_all();
  }

  bool released() const {
    std::lock_guard<std::mutex> lock(mu_);
    return released_;
  }

  /// Bounded wait so callers can interleave failure-flag polls.
  bool wait_for(std::chrono::milliseconds timeout) const {
    std::unique_lock<std::mutex> lock(mu_);
    return cv_.wait_for(lock, timeout, [this] { return released_; });
  }

 private:
  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  bool released_ = false;
};

/// Thread-safe freelist of fixed-size blocks backing small eager copies.
/// Blocks outlive the arena if an envelope escapes it: the block deleter
/// holds the shared core, so returning (or discarding past the cap) is
/// always safe.
class BufferArena {
 public:
  static constexpr std::size_t kDefaultBlockBytes = 8192;
  static constexpr std::size_t kDefaultMaxBlocks = 64;

  explicit BufferArena(std::size_t block_bytes = kDefaultBlockBytes,
                       std::size_t max_free_blocks = kDefaultMaxBlocks)
      : core_(std::make_shared<Core>()) {
    core_->block_bytes = block_bytes == 0 ? kDefaultBlockBytes : block_bytes;
    core_->max_free = max_free_blocks;
  }

  std::size_t block_bytes() const { return core_->block_bytes; }

  /// Pooled storage for `n` bytes, or null when `n` exceeds the block
  /// size (callers fall back to heap storage). `reused_out` reports
  /// whether a freelisted block was recycled (arena hit) or a fresh block
  /// was allocated (miss).
  std::shared_ptr<std::byte[]> acquire(std::size_t n, bool* reused_out);

  /// Blocks currently parked on the freelist (tests/instrumentation).
  std::size_t free_blocks() const {
    std::lock_guard<std::mutex> lock(core_->mu);
    return core_->free.size();
  }

 private:
  struct Core {
    std::mutex mu;
    std::vector<std::unique_ptr<std::byte[]>> free;
    std::size_t block_bytes = kDefaultBlockBytes;
    std::size_t max_free = kDefaultMaxBlocks;
  };
  std::shared_ptr<Core> core_;
};

/// Ref-counted payload storage carried by an Envelope. Copying a Buffer
/// shares the bytes (fault-injected duplicates cost nothing); the bytes
/// themselves are only ever copied on the eager path or on a typed decode
/// whose element type doesn't match the adopted storage.
class Buffer {
 public:
  Buffer() = default;

  /// Eager path: copies `data` into transport storage. Small payloads use
  /// a pooled arena block when `arena` is non-null; `pooled_out` (optional)
  /// reports whether a recycled block served the copy.
  static Buffer copy_of(std::span<const std::byte> data,
                        BufferArena* arena = nullptr,
                        bool* pooled_out = nullptr);

  /// Zero-copy move path: adopts the vector's storage. A matching
  /// take_vector<T>() on the receive side moves it back out.
  template <class T>
  static Buffer adopt(std::vector<T>&& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    Buffer b;
    auto held = std::make_shared<std::vector<T>>(std::move(v));
    b.data_ = reinterpret_cast<const std::byte*>(held->data());
    b.size_ = held->size() * sizeof(T);
    b.held_type_ = &typeid(std::vector<T>);
    b.owns_storage_ = true;
    b.zero_copy_ = true;
    b.holder_ = std::move(held);
    return b;
  }

  /// Rendezvous path: aliases caller-owned memory. `handoff` releases once
  /// the last Buffer sharing this view is destroyed — only then may the
  /// caller reuse the memory.
  static Buffer view(std::span<const std::byte> data,
                     std::shared_ptr<RendezvousState> handoff) {
    Buffer b;
    b.data_ = data.data();
    b.size_ = data.size();
    b.zero_copy_ = true;
    auto rv = std::move(handoff);
    b.holder_ = std::shared_ptr<void>(
        static_cast<void*>(nullptr),
        [rv](void*) { rv->release(); });
    return b;
  }

  const std::byte* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// True when constructing this buffer cost no payload copy (adopted or
  /// rendezvous-aliased storage).
  bool zero_copy() const { return zero_copy_; }

  /// Moves an adopted vector back out when the element type matches and
  /// this Buffer is the storage's sole owner; nullopt means the caller
  /// must fall back to a copying decode (type mismatch, shared with a
  /// fault-injected duplicate, or rendezvous-aliased).
  template <class T>
  std::optional<std::vector<T>> take_vector() {
    static_assert(std::is_trivially_copyable_v<T>);
    if (held_type_ == nullptr || *held_type_ != typeid(std::vector<T>)) {
      return std::nullopt;
    }
    if (holder_.use_count() != 1) return std::nullopt;
    auto held = std::static_pointer_cast<std::vector<T>>(
        std::const_pointer_cast<void>(holder_));
    std::vector<T> out = std::move(*held);
    held.reset();
    reset();
    return out;
  }

  /// Byte-vector extraction for recv_bytes: moves when this is the sole
  /// owner of adopted byte storage, copies otherwise (e.g. arena blocks,
  /// which must return to the pool intact).
  std::vector<std::byte> take_bytes() {
    if (auto v = take_vector<std::byte>()) return std::move(*v);
    std::vector<std::byte> out(size_);
    if (size_ != 0) std::memcpy(out.data(), data_, size_);
    return out;
  }

  /// Writable access for fault injection only: requires uniquely owned
  /// transport storage (never a rendezvous view), so tampering cannot
  /// reach bytes a sender or duplicate still shares.
  std::byte* mutable_data() {
    require<CommError>(owns_storage_ && holder_.use_count() == 1,
                       "Buffer::mutable_data: storage is shared or aliased; "
                       "clone before mutating");
    return const_cast<std::byte*>(data_);
  }

 private:
  void reset() {
    holder_.reset();
    data_ = nullptr;
    size_ = 0;
    zero_copy_ = false;
    owns_storage_ = false;
    held_type_ = nullptr;
  }

  std::shared_ptr<void> holder_;
  const std::byte* data_ = nullptr;
  std::size_t size_ = 0;
  bool zero_copy_ = false;
  bool owns_storage_ = false;          // transport-owned bytes (not a view)
  const std::type_info* held_type_ = nullptr;  // set by adopt() for take_vector
};

}  // namespace pyhpc::comm
