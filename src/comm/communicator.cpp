#include "comm/communicator.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <tuple>

namespace pyhpc::comm {

const char* collective_algo_name(CollectiveAlgo algo) {
  switch (algo) {
    case CollectiveAlgo::kAuto:
      return "auto";
    case CollectiveAlgo::kLinear:
      return "linear";
    case CollectiveAlgo::kRecursiveDoubling:
      return "recursive_doubling";
    case CollectiveAlgo::kRabenseifner:
      return "rabenseifner";
    case CollectiveAlgo::kRing:
      return "ring";
    case CollectiveAlgo::kBruck:
      return "bruck";
    case CollectiveAlgo::kBinomial:
      return "binomial";
    case CollectiveAlgo::kPairwise:
      return "pairwise";
  }
  return "unknown";
}

namespace {
struct SplitEntry {
  int color;
  int key;
  int parent_rank;
};
}  // namespace

Communicator Communicator::split(int color, int key) {
  // Collectively learn everyone's (colour, key); every rank derives the
  // same group layout, so only one rank per colour needs to allocate the
  // child context and publish it through the parent context's registry.
  const std::uint64_t split_seq = seq_;  // unique per program-order call site
  SplitEntry mine{color, key, rank_};
  auto entries = allgather_value(mine);

  std::vector<SplitEntry> group;
  for (const auto& e : entries) {
    if (e.color == color) group.push_back(e);
  }
  std::sort(group.begin(), group.end(), [](const SplitEntry& a,
                                           const SplitEntry& b) {
    return std::tie(a.key, a.parent_rank) < std::tie(b.key, b.parent_rank);
  });

  int my_new_rank = -1;
  int creator_parent_rank = group.front().parent_rank;
  for (std::size_t i = 0; i < group.size(); ++i) {
    creator_parent_rank = std::min(creator_parent_rank, group[i].parent_rank);
    if (group[i].parent_rank == rank_) my_new_rank = static_cast<int>(i);
  }
  require<CommError>(my_new_rank >= 0, "split: rank missing from own group");

  std::shared_ptr<Context> child;
  if (rank_ == creator_parent_rank) {
    // Children inherit timeout/watchdog policy but not the fault injector:
    // rules address ranks of the context they were installed in, and child
    // ranks are renumbered.
    CommConfig child_config = ctx_->config();
    child_config.injector.reset();
    child = std::make_shared<Context>(static_cast<int>(group.size()),
                                      std::move(child_config));
    ctx_->publish_child(split_seq, color, child);
  } else {
    child = ctx_->wait_child(split_seq, color);
  }
  return Communicator(std::move(child), my_new_rank);
}

namespace {
// shrink() keys the parent's child registry by agreement round, offset
// into a range the per-rank program-order sequence numbers split() uses
// can never reach.
constexpr std::uint64_t kShrinkSeqBase = std::uint64_t{1} << 62;
}  // namespace

Communicator Communicator::shrink() {
  obs::Span span("shrink", "recovery");
  require<CommError>(size() <= 64,
                     "shrink: dead-set bitmask supports at most 64 ranks");
  // Contribute everything this rank can see; agree() folds in what the
  // other survivors saw plus any rank that dies during the agreement.
  std::uint64_t local = 0;
  for (int r = 0; r < size(); ++r) {
    if (ctx_->is_killed(r)) local |= std::uint64_t{1} << r;
  }
  std::uint64_t round = 0;
  const std::uint64_t mask = ctx_->agree(rank_, local, &round);
  require<CommError>((mask & (std::uint64_t{1} << rank_)) == 0,
                     "shrink: calling rank is in the agreed dead set");

  std::vector<int> survivors;
  int my_new_rank = -1;
  for (int r = 0; r < size(); ++r) {
    if ((mask & (std::uint64_t{1} << r)) != 0) continue;
    if (r == rank_) my_new_rank = static_cast<int>(survivors.size());
    survivors.push_back(r);
  }
  const int creator = survivors.front();
  const std::uint64_t key = kShrinkSeqBase + round;

  std::shared_ptr<Context> child;
  if (rank_ == creator) {
    // Unlike split(), the child KEEPS the fault injector: recovery exists
    // so chaos schedules can keep firing after a shrink. Rules naming
    // specific ranks address the child's dense renumbering from here on.
    child = std::make_shared<Context>(static_cast<int>(survivors.size()),
                                      ctx_->config());
    ctx_->publish_child(key, 0, child);
  } else {
    // Poll rather than block: if the creator dies before publishing, the
    // caller must run another recovery round, which will exclude it.
    for (;;) {
      child = ctx_->try_get_child(key, 0);
      if (child) break;
      if (ctx_->is_killed(rank_)) {
        throw RankKilledError("shrink on a killed rank (fault injection)");
      }
      if (ctx_->is_killed(creator)) {
        throw PeerKilledError(
            creator,
            util::cat("shrink: surviving rank ", creator,
                      " died before publishing the survivor context"));
      }
      if (ctx_->abort_flag().load(std::memory_order_relaxed)) {
        throw CommError("shrink aborted: another rank failed");
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  if (span.active()) {
    span.arg("survivors", static_cast<std::int64_t>(survivors.size()));
    span.arg("dead_mask", static_cast<std::int64_t>(mask));
    span.arg("new_rank", static_cast<std::int64_t>(my_new_rank));
  }
  return Communicator(std::move(child), my_new_rank);
}

}  // namespace pyhpc::comm
