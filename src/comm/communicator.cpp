#include "comm/communicator.hpp"

#include <algorithm>
#include <tuple>

namespace pyhpc::comm {

const char* collective_algo_name(CollectiveAlgo algo) {
  switch (algo) {
    case CollectiveAlgo::kAuto:
      return "auto";
    case CollectiveAlgo::kLinear:
      return "linear";
    case CollectiveAlgo::kRecursiveDoubling:
      return "recursive_doubling";
    case CollectiveAlgo::kRabenseifner:
      return "rabenseifner";
    case CollectiveAlgo::kRing:
      return "ring";
    case CollectiveAlgo::kBruck:
      return "bruck";
    case CollectiveAlgo::kBinomial:
      return "binomial";
    case CollectiveAlgo::kPairwise:
      return "pairwise";
  }
  return "unknown";
}

namespace {
struct SplitEntry {
  int color;
  int key;
  int parent_rank;
};
}  // namespace

Communicator Communicator::split(int color, int key) {
  // Collectively learn everyone's (colour, key); every rank derives the
  // same group layout, so only one rank per colour needs to allocate the
  // child context and publish it through the parent context's registry.
  const std::uint64_t split_seq = seq_;  // unique per program-order call site
  SplitEntry mine{color, key, rank_};
  auto entries = allgather_value(mine);

  std::vector<SplitEntry> group;
  for (const auto& e : entries) {
    if (e.color == color) group.push_back(e);
  }
  std::sort(group.begin(), group.end(), [](const SplitEntry& a,
                                           const SplitEntry& b) {
    return std::tie(a.key, a.parent_rank) < std::tie(b.key, b.parent_rank);
  });

  int my_new_rank = -1;
  int creator_parent_rank = group.front().parent_rank;
  for (std::size_t i = 0; i < group.size(); ++i) {
    creator_parent_rank = std::min(creator_parent_rank, group[i].parent_rank);
    if (group[i].parent_rank == rank_) my_new_rank = static_cast<int>(i);
  }
  require<CommError>(my_new_rank >= 0, "split: rank missing from own group");

  std::shared_ptr<Context> child;
  if (rank_ == creator_parent_rank) {
    // Children inherit timeout/watchdog policy but not the fault injector:
    // rules address ranks of the context they were installed in, and child
    // ranks are renumbered.
    CommConfig child_config = ctx_->config();
    child_config.injector.reset();
    child = std::make_shared<Context>(static_cast<int>(group.size()),
                                      std::move(child_config));
    ctx_->publish_child(split_seq, color, child);
  } else {
    child = ctx_->wait_child(split_seq, color);
  }
  return Communicator(std::move(child), my_new_rank);
}

}  // namespace pyhpc::comm
