#include "comm/fault.hpp"

#include "util/error.hpp"

namespace pyhpc::comm {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDrop: return "drop";
    case FaultKind::kDelay: return "delay";
    case FaultKind::kDuplicate: return "duplicate";
    case FaultKind::kCorrupt: return "corrupt";
    case FaultKind::kKillRank: return "kill";
  }
  return "unknown";
}

int FaultInjector::add_rule(const FaultRule& rule) {
  require(rule.probability >= 0.0 && rule.probability <= 1.0,
          "FaultRule: probability must be in [0, 1]");
  require(rule.skip_first >= 0, "FaultRule: skip_first must be >= 0");
  std::lock_guard<std::mutex> lock(mu_);
  rules_.push_back(RuleState{rule, 0, 0});
  return static_cast<int>(rules_.size()) - 1;
}

std::optional<FaultInjector::Decision> FaultInjector::intercept(int source,
                                                                int dest,
                                                                int tag) {
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t idx = 0; idx < rules_.size(); ++idx) {
    auto& rs = rules_[idx];
    const FaultRule& r = rs.rule;
    if (!matches(r, source, dest, tag)) continue;
    ++rs.matches;
    if (rs.matches <= static_cast<std::uint64_t>(r.skip_first)) continue;
    if (r.max_applications >= 0 &&
        rs.applications >= static_cast<std::uint64_t>(r.max_applications)) {
      continue;
    }
    if (r.probability < 1.0 && rng_.next_double() >= r.probability) continue;
    ++rs.applications;
    switch (r.kind) {
      case FaultKind::kDrop: ++counts_.drops; break;
      case FaultKind::kDelay: ++counts_.delays; break;
      case FaultKind::kDuplicate: ++counts_.duplicates; break;
      case FaultKind::kCorrupt: ++counts_.corruptions; break;
      case FaultKind::kKillRank: ++counts_.kills; break;
    }
    Decision d;
    d.kind = r.kind;
    d.victim = (r.victim == kAnyRank) ? dest : r.victim;
    d.delay = r.delay;
    d.rule = static_cast<int>(idx);
    return d;
  }
  return std::nullopt;
}

FaultCounts FaultInjector::counts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counts_;
}

std::uint64_t FaultInjector::rule_matches(int index) const {
  std::lock_guard<std::mutex> lock(mu_);
  require(index >= 0 && index < static_cast<int>(rules_.size()),
          "FaultInjector: rule index out of range");
  return rules_[static_cast<std::size_t>(index)].matches;
}

std::uint64_t FaultInjector::rule_applications(int index) const {
  std::lock_guard<std::mutex> lock(mu_);
  require(index >= 0 && index < static_cast<int>(rules_.size()),
          "FaultInjector: rule index out of range");
  return rules_[static_cast<std::size_t>(index)].applications;
}

}  // namespace pyhpc::comm
