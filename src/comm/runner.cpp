#include "comm/runner.hpp"

#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "comm/context.hpp"
#include "util/error.hpp"

namespace pyhpc::comm {

namespace {

CommStats run_impl(int nranks, const std::function<void(Communicator&)>& fn) {
  require(nranks >= 1, "comm::run: need at least one rank");

  auto ctx = std::make_shared<Context>(nranks);
  std::mutex error_mu;
  std::exception_ptr first_error;
  int first_error_rank = -1;

  auto body = [&](int rank) {
    try {
      Communicator comm(ctx, rank);
      fn(comm);
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(error_mu);
        // Prefer the lowest-ranked *root cause*: aborted-wait CommErrors are
        // secondary failures, so only record one if nothing else arrived.
        if (!first_error || first_error_rank > rank) {
          if (!ctx->abort_flag().load() || !first_error) {
            first_error = std::current_exception();
            first_error_rank = rank;
          }
        }
      }
      ctx->abort();
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks));
  for (int r = 1; r < nranks; ++r) threads.emplace_back(body, r);
  body(0);  // rank 0 runs on the calling thread
  for (auto& t : threads) t.join();

  if (first_error) std::rethrow_exception(first_error);

  CommStats total;
  for (int r = 0; r < nranks; ++r) total += ctx->stats(r);
  return total;
}

}  // namespace

void run(int nranks, const std::function<void(Communicator&)>& fn) {
  (void)run_impl(nranks, fn);
}

CommStats run_with_stats(int nranks,
                         const std::function<void(Communicator&)>& fn) {
  return run_impl(nranks, fn);
}

}  // namespace pyhpc::comm
