#include "comm/runner.hpp"

#include <algorithm>
#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "comm/context.hpp"
#include "obs/bridge.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/exec_space.hpp"
#include "util/string_util.hpp"
#include "util/task_pool.hpp"

namespace pyhpc::comm {

namespace {

// Lets the runner stop the watchdog promptly instead of waiting out a poll.
struct WatchdogControl {
  std::mutex mu;
  std::condition_variable cv;
  bool stop = false;

  void request_stop() {
    {
      std::lock_guard<std::mutex> lock(mu);
      stop = true;
    }
    cv.notify_all();
  }

  // Returns true when asked to stop.
  bool sleep(std::chrono::milliseconds period) {
    std::unique_lock<std::mutex> lock(mu);
    return cv.wait_for(lock, period, [this] { return stop; });
  }
};

std::string describe_source(int source) {
  return source == kAnySource ? std::string("any") : std::to_string(source);
}
std::string describe_tag(int tag) {
  return tag == kAnyTag ? std::string("any") : std::to_string(tag);
}

std::string build_deadlock_report(const Context& ctx,
                                  const std::vector<Mailbox::WaitInfo>& info) {
  const int n = static_cast<int>(info.size());
  int live = 0;
  for (int r = 0; r < n; ++r) {
    if (!ctx.is_done(r)) ++live;
  }
  std::string report = util::cat(
      "deadlock detected: all ", live,
      " live ranks blocked with no matching messages in flight\n");
  for (int r = 0; r < n; ++r) {
    if (ctx.is_done(r)) {
      report += util::cat("  rank ", r,
                          ctx.is_killed(r) ? ": died (fault injection)\n"
                                           : ": finished\n");
    } else {
      report += util::cat("  rank ", r, " waits on (source ",
                          describe_source(info[static_cast<std::size_t>(r)].source),
                          ", tag ",
                          describe_tag(info[static_cast<std::size_t>(r)].tag),
                          ")\n");
    }
  }
  return report;
}

// Deadlock criterion: every not-done rank is blocked in a recv/probe with
// no deadline, no blocked rank has a matching message queued, and the
// whole picture is identical across two consecutive samples (wait epochs
// included — a rank that woke and re-blocked in between changes its
// epoch). Only ranks can send, so if all of them are blocked and nothing
// matches, no progress is possible: report and abort.
void watchdog_loop(const std::shared_ptr<Context>& ctx,
                   WatchdogControl& control) {
  const auto poll = std::max<std::chrono::milliseconds>(
      ctx->config().watchdog_poll, std::chrono::milliseconds(10));
  const int n = ctx->size();
  std::vector<Mailbox::WaitInfo> prev;
  bool prev_blocked = false;
  for (;;) {
    if (control.sleep(poll)) return;
    if (ctx->abort_flag().load(std::memory_order_relaxed)) return;

    std::vector<Mailbox::WaitInfo> cur(static_cast<std::size_t>(n));
    bool all_blocked = true;
    int live = 0;
    for (int r = 0; r < n && all_blocked; ++r) {
      if (ctx->is_done(r)) continue;
      ++live;
      cur[static_cast<std::size_t>(r)] = ctx->mailbox(r).wait_info();
      const auto& w = cur[static_cast<std::size_t>(r)];
      // A waiter with a deadline unblocks itself; don't call it deadlock.
      if (!w.waiting || w.has_deadline) all_blocked = false;
    }
    if (live == 0) return;
    if (all_blocked) {
      for (int r = 0; r < n && all_blocked; ++r) {
        if (ctx->is_done(r)) continue;
        const auto& w = cur[static_cast<std::size_t>(r)];
        if (ctx->mailbox(r).try_probe(w.source, w.tag).has_value()) {
          all_blocked = false;  // a match is queued; the rank will wake
        }
      }
    }
    if (all_blocked && prev_blocked && prev.size() == cur.size()) {
      bool stable = true;
      for (int r = 0; r < n && stable; ++r) {
        if (ctx->is_done(r)) continue;
        const auto& a = prev[static_cast<std::size_t>(r)];
        const auto& b = cur[static_cast<std::size_t>(r)];
        if (!a.waiting || a.epoch != b.epoch) stable = false;
      }
      if (stable) {
        ctx->fail_deadlock(build_deadlock_report(*ctx, cur));
        return;
      }
    }
    prev = std::move(cur);
    prev_blocked = all_blocked;
  }
}

CommStats run_impl(int nranks, const CommConfig& config,
                   const std::function<void(Communicator&)>& fn) {
  require(nranks >= 1, "comm::run: need at least one rank");

  auto ctx = std::make_shared<Context>(nranks, config);
  std::mutex error_mu;
  std::exception_ptr first_error;
  int first_error_rank = -1;

  auto record_failure = [&](int rank) {
    {
      std::lock_guard<std::mutex> lock(error_mu);
      // Prefer the lowest-ranked *root cause*: aborted-wait CommErrors are
      // secondary failures, so only record one if nothing else arrived.
      if (!first_error || first_error_rank > rank) {
        if (!ctx->abort_flag().load() || !first_error) {
          first_error = std::current_exception();
          first_error_rank = rank;
        }
      }
    }
    ctx->abort();
  };

  auto body = [&](int rank) {
    // Tag this thread's trace events with its rank index (the trace `tid`).
    // Rank 0 runs on the calling thread, whose tag is restored below.
    obs::set_thread_rank(rank);
    // Size this rank's intra-rank task pool (0 defers to PYHPC_THREADS).
    // Saved/restored because rank 0 shares the calling thread.
    const int saved_threads = util::TaskPool::thread_default();
    util::TaskPool::set_thread_default(config.threads);
    // Same pattern for the kernel execution space: install the world's
    // backend choice for this rank thread (nullopt keeps whatever
    // PYHPC_EXEC_SPACE / an enclosing world already selected).
    const bool set_space = config.exec_space.has_value();
    const util::exec::Space saved_space = util::exec::default_space();
    if (set_space) util::exec::set_thread_default(*config.exec_space);
    try {
      Communicator comm(ctx, rank);
      fn(comm);
    } catch (const PeerKilledError&) {
      // A *survivor* noticed a peer die and nothing recovered from it.
      // That is a real error on this rank, not a contained crash — and it
      // must be caught before RankKilledError (its base class) or the
      // containment below would swallow it and the run would "pass".
      record_failure(rank);
    } catch (const RankKilledError&) {
      // Simulated crash of this rank alone: it vanishes, the world keeps
      // running. Drivers observe the death via Communicator::rank_dead.
    } catch (...) {
      record_failure(rank);
    }
    if (set_space) util::exec::set_thread_default(saved_space);
    util::TaskPool::set_thread_default(saved_threads);
    ctx->mark_done(rank);
  };

  WatchdogControl watchdog_control;
  std::thread watchdog;
  if (config.watchdog && nranks >= 2) {
    watchdog = std::thread(watchdog_loop, ctx, std::ref(watchdog_control));
  }

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks));
  for (int r = 1; r < nranks; ++r) threads.emplace_back(body, r);
  body(0);  // rank 0 runs on the calling thread
  for (auto& t : threads) t.join();

  if (watchdog.joinable()) {
    watchdog_control.request_stop();
    watchdog.join();
  }

  obs::set_thread_rank(0);  // calling thread doubled as rank 0 above

  // Fold mailbox occupancy high-water marks into the per-rank stats now
  // that no rank is running.
  for (int r = 0; r < nranks; ++r) {
    auto& s = ctx->stats(r);
    s.mailbox_highwater_bytes = std::max<std::uint64_t>(
        s.mailbox_highwater_bytes, ctx->mailbox(r).highwater_bytes());
  }

  // Publish this run into the unified metrics registry: aggregated comm
  // counters, injected-fault totals, and the worst queue depth any rank saw.
  {
    auto& reg = obs::MetricsRegistry::global();
    CommStats agg;
    std::uint64_t depth = 0;
    for (int r = 0; r < nranks; ++r) {
      agg += ctx->stats(r);
      depth = std::max<std::uint64_t>(depth, ctx->mailbox(r).highwater_messages());
    }
    obs::import_comm_stats(reg, agg);
    reg.set_max("comm.mailbox_highwater_messages", static_cast<double>(depth));
    if (config.injector) {
      obs::import_fault_counts(reg, config.injector->counts());
      // Replay handle: re-running with this seed reproduces the schedule.
      reg.set("faults.seed", static_cast<double>(config.injector->seed()));
    }
  }

  if (first_error) std::rethrow_exception(first_error);

  CommStats total;
  for (int r = 0; r < nranks; ++r) total += ctx->stats(r);
  return total;
}

}  // namespace

void run(int nranks, const std::function<void(Communicator&)>& fn) {
  (void)run_impl(nranks, CommConfig{}, fn);
}

void run(int nranks, const CommConfig& config,
         const std::function<void(Communicator&)>& fn) {
  (void)run_impl(nranks, config, fn);
}

CommStats run_with_stats(int nranks,
                         const std::function<void(Communicator&)>& fn) {
  return run_impl(nranks, CommConfig{}, fn);
}

CommStats run_with_stats(int nranks, const CommConfig& config,
                         const std::function<void(Communicator&)>& fn) {
  return run_impl(nranks, config, fn);
}

}  // namespace pyhpc::comm
