#include "comm/mailbox.hpp"

#include <chrono>

#include "util/error.hpp"

namespace pyhpc::comm {

namespace {
// Poll period for blocking waits; short enough that aborts surface quickly,
// long enough to avoid spinning.
constexpr auto kPollPeriod = std::chrono::milliseconds(25);
}  // namespace

void Mailbox::push(Envelope env) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(env));
  }
  cv_.notify_all();
}

std::deque<Envelope>::iterator Mailbox::find_locked(int source, int tag) {
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (matches(*it, source, tag)) return it;
  }
  return queue_.end();
}

Envelope Mailbox::pop_matching(int source, int tag,
                               const std::atomic<bool>& aborted) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    auto it = find_locked(source, tag);
    if (it != queue_.end()) {
      Envelope env = std::move(*it);
      queue_.erase(it);
      return env;
    }
    if (aborted.load(std::memory_order_relaxed)) {
      throw CommError("recv aborted: another rank failed");
    }
    cv_.wait_for(lock, kPollPeriod);
  }
}

std::optional<Envelope> Mailbox::try_pop_matching(int source, int tag) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = find_locked(source, tag);
  if (it == queue_.end()) return std::nullopt;
  Envelope env = std::move(*it);
  queue_.erase(it);
  return env;
}

Status Mailbox::probe(int source, int tag, const std::atomic<bool>& aborted) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    auto it = find_locked(source, tag);
    if (it != queue_.end()) {
      return Status{it->source, it->tag, it->payload.size()};
    }
    if (aborted.load(std::memory_order_relaxed)) {
      throw CommError("probe aborted: another rank failed");
    }
    cv_.wait_for(lock, kPollPeriod);
  }
}

std::optional<Status> Mailbox::try_probe(int source, int tag) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = find_locked(source, tag);
  if (it == queue_.end()) return std::nullopt;
  return Status{it->source, it->tag, it->payload.size()};
}

void Mailbox::interrupt() { cv_.notify_all(); }

std::size_t Mailbox::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

}  // namespace pyhpc::comm
