#include "comm/mailbox.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace pyhpc::comm {

namespace {
// Poll period for blocking waits; short enough that aborts surface quickly,
// long enough to avoid spinning.
constexpr auto kPollPeriod = std::chrono::milliseconds(25);

std::string describe_match(int source, int tag) {
  return util::cat("(source ",
                   source == kAnySource ? std::string("any")
                                        : std::to_string(source),
                   ", tag ",
                   tag == kAnyTag ? std::string("any") : std::to_string(tag),
                   ")");
}

bool flag_set(const std::atomic<bool>* flag) {
  return flag != nullptr && flag->load(std::memory_order_relaxed);
}
}  // namespace

Mailbox::WaitScope::WaitScope(Mailbox& mb_in, int source, int tag,
                              bool has_deadline)
    : mb(mb_in) {
  mb.wait_.waiting = true;
  mb.wait_.source = source;
  mb.wait_.tag = tag;
  mb.wait_.has_deadline = has_deadline;
  ++mb.wait_.epoch;
}

Mailbox::WaitScope::~WaitScope() {
  mb.wait_.waiting = false;
  ++mb.wait_.epoch;
}

void Mailbox::push(Envelope env) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queued_bytes_ += env.payload.size();
    highwater_bytes_ = std::max(highwater_bytes_, queued_bytes_);
    queue_.push_back(std::move(env));
    highwater_messages_ = std::max(highwater_messages_, queue_.size());
  }
  cv_.notify_all();
}

void Mailbox::requeue(Envelope env) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queued_bytes_ += env.payload.size();
    highwater_bytes_ = std::max(highwater_bytes_, queued_bytes_);
    queue_.push_front(std::move(env));
    highwater_messages_ = std::max(highwater_messages_, queue_.size());
  }
  cv_.notify_all();
}

std::deque<Envelope>::iterator Mailbox::find_locked(int source, int tag) {
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (matches(*it, source, tag)) return it;
  }
  return queue_.end();
}

Envelope Mailbox::pop_matching(int source, int tag, const WaitOptions& opts) {
  const bool bounded = opts.timeout.count() > 0;
  const auto deadline = bounded
                            ? std::chrono::steady_clock::now() + opts.timeout
                            : std::chrono::steady_clock::time_point::max();
  std::unique_lock<std::mutex> lock(mu_);
  WaitScope scope(*this, source, tag, bounded);
  for (;;) {
    // Revocation poisons the communicator outright: even a queued match is
    // not delivered once revoke() has been called.
    if (flag_set(opts.revoked)) {
      throw RevokedError("recv on a revoked communicator");
    }
    auto it = find_locked(source, tag);
    if (it != queue_.end()) {
      Envelope env = std::move(*it);
      queued_bytes_ -= env.payload.size();
      queue_.erase(it);
      return env;
    }
    if (flag_set(opts.killed)) {
      throw RankKilledError("recv on a killed rank (fault injection)");
    }
    // No match queued and the expected sender is dead: nothing more can
    // arrive from it (its sends are swallowed), so fail fast.
    if (flag_set(opts.peer_killed)) {
      throw PeerKilledError(
          opts.peer_rank,
          util::cat("recv: peer rank ", opts.peer_rank,
                    " died (fault injection) while this rank waited for ",
                    describe_match(source, tag)));
    }
    if (flag_set(opts.aborted)) {
      throw CommError("recv aborted: another rank failed");
    }
    const auto now = std::chrono::steady_clock::now();
    if (bounded && now >= deadline) {
      throw RecvTimeoutError(util::cat("recv timed out after ",
                                       opts.timeout.count(),
                                       " ms waiting for ",
                                       describe_match(source, tag)));
    }
    const auto slice =
        bounded ? std::min<std::chrono::steady_clock::duration>(
                      kPollPeriod, deadline - now)
                : std::chrono::steady_clock::duration(kPollPeriod);
    cv_.wait_for(lock, slice);
  }
}

std::optional<Envelope> Mailbox::try_pop_matching(int source, int tag) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = find_locked(source, tag);
  if (it == queue_.end()) return std::nullopt;
  Envelope env = std::move(*it);
  queued_bytes_ -= env.payload.size();
  queue_.erase(it);
  return env;
}

Status Mailbox::probe(int source, int tag, const WaitOptions& opts) {
  const bool bounded = opts.timeout.count() > 0;
  const auto deadline = bounded
                            ? std::chrono::steady_clock::now() + opts.timeout
                            : std::chrono::steady_clock::time_point::max();
  std::unique_lock<std::mutex> lock(mu_);
  WaitScope scope(*this, source, tag, bounded);
  for (;;) {
    if (flag_set(opts.revoked)) {
      throw RevokedError("probe on a revoked communicator");
    }
    auto it = find_locked(source, tag);
    if (it != queue_.end()) {
      return Status{it->source, it->tag, it->payload.size()};
    }
    if (flag_set(opts.killed)) {
      throw RankKilledError("probe on a killed rank (fault injection)");
    }
    if (flag_set(opts.peer_killed)) {
      throw PeerKilledError(
          opts.peer_rank,
          util::cat("probe: peer rank ", opts.peer_rank,
                    " died (fault injection) while this rank waited for ",
                    describe_match(source, tag)));
    }
    if (flag_set(opts.aborted)) {
      throw CommError("probe aborted: another rank failed");
    }
    const auto now = std::chrono::steady_clock::now();
    if (bounded && now >= deadline) {
      throw RecvTimeoutError(util::cat("probe timed out after ",
                                       opts.timeout.count(),
                                       " ms waiting for ",
                                       describe_match(source, tag)));
    }
    const auto slice =
        bounded ? std::min<std::chrono::steady_clock::duration>(
                      kPollPeriod, deadline - now)
                : std::chrono::steady_clock::duration(kPollPeriod);
    cv_.wait_for(lock, slice);
  }
}

std::optional<Status> Mailbox::try_probe(int source, int tag) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = find_locked(source, tag);
  if (it == queue_.end()) return std::nullopt;
  return Status{it->source, it->tag, it->payload.size()};
}

void Mailbox::interrupt() { cv_.notify_all(); }

std::size_t Mailbox::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

std::size_t Mailbox::queued_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queued_bytes_;
}

std::size_t Mailbox::highwater_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return highwater_bytes_;
}

std::size_t Mailbox::highwater_messages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return highwater_messages_;
}

Mailbox::WaitInfo Mailbox::wait_info() const {
  std::lock_guard<std::mutex> lock(mu_);
  return wait_;
}

}  // namespace pyhpc::comm
