// In-process SPMD harness: runs the same function on N ranks (threads) over
// a fresh world communicator — the substitute for `mpirun -np N`.
#pragma once

#include <functional>

#include "comm/communicator.hpp"
#include "comm/stats.hpp"

namespace pyhpc::comm {

/// Runs `fn(comm)` on `nranks` threads, each with its own rank of a shared
/// world. Blocks until every rank returns. If any rank throws, the world is
/// aborted (blocked ranks unblock with CommError) and the first rank's
/// exception is rethrown here after all threads join.
void run(int nranks, const std::function<void(Communicator&)>& fn);

/// As `run`, but returns the world-aggregated communication statistics.
CommStats run_with_stats(int nranks,
                         const std::function<void(Communicator&)>& fn);

}  // namespace pyhpc::comm
