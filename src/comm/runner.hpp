// In-process SPMD harness: runs the same function on N ranks (threads) over
// a fresh world communicator — the substitute for `mpirun -np N`.
#pragma once

#include <functional>

#include "comm/communicator.hpp"
#include "comm/config.hpp"
#include "comm/stats.hpp"

namespace pyhpc::comm {

/// Runs `fn(comm)` on `nranks` threads, each with its own rank of a shared
/// world. Blocks until every rank returns. If any rank throws, the world is
/// aborted (blocked ranks unblock with CommError) and the first rank's
/// exception is rethrown here after all threads join — except a rank dying
/// of RankKilledError (fault injection), which is contained: that rank
/// simply stops and the rest of the world keeps running.
///
/// Unless disabled via CommConfig, a watchdog thread observes per-rank
/// blocked state and aborts the world with a who-waits-on-whom
/// DeadlockError once every live rank is blocked (without a deadline) and
/// nothing is in flight, so a wedged program fails loudly instead of
/// hanging forever.
void run(int nranks, const std::function<void(Communicator&)>& fn);

/// As `run`, with an explicit communication policy (receive deadlines,
/// watchdog tuning, fault injection).
void run(int nranks, const CommConfig& config,
         const std::function<void(Communicator&)>& fn);

/// As `run`, but returns the world-aggregated communication statistics
/// (including each mailbox's byte high-water mark).
CommStats run_with_stats(int nranks,
                         const std::function<void(Communicator&)>& fn);
CommStats run_with_stats(int nranks, const CommConfig& config,
                         const std::function<void(Communicator&)>& fn);

}  // namespace pyhpc::comm
