// Per-world communication policy: receive deadlines, the deadlock
// watchdog, collective algorithm selection, and an optional fault
// injector. Passed to comm::run (and held by the Context), so every
// Communicator of the world sees the same policy.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>

#include "util/exec_space.hpp"

namespace pyhpc::comm {

class FaultInjector;

/// Which schedule a collective runs on. `kAuto` resolves through the
/// world's CollectivePolicy (forced algorithm if set, otherwise the size
/// thresholds); any other value forces that schedule for one call. Every
/// rank of a collective must pass the same value — selection is part of
/// the matched schedule, exactly like the payload size.
enum class CollectiveAlgo : std::uint8_t {
  kAuto = 0,
  /// Root-funneled reference schedules (reduce+broadcast allreduce,
  /// rank-ordered loops at the root). Kept selectable as the baseline the
  /// benches compare against and as a debugging fallback.
  kLinear,
  kRecursiveDoubling,  ///< allreduce, short messages: log2(p) full-vector rounds
  kRabenseifner,       ///< allreduce, long messages: reduce-scatter + allgather
  kRing,               ///< allgather(v), long messages: p-1 neighbour rounds
  kBruck,              ///< allgather, short messages: ceil(log2 p) doubling rounds
  kBinomial,           ///< scatter/gather: log2(p)-deep tree
  kPairwise,           ///< alltoall(v): p-1 balanced exchange rounds
};

const char* collective_algo_name(CollectiveAlgo algo);

/// Per-world collective algorithm selection. A forced per-operation value
/// overrides the size thresholds; CollectiveAlgo::kAuto keeps the
/// threshold-driven default. Thresholds compare the per-rank payload in
/// bytes (identical on every rank for the operations they govern, so all
/// ranks resolve the same schedule).
struct CollectivePolicy {
  CollectiveAlgo allreduce = CollectiveAlgo::kAuto;  ///< kLinear | kRecursiveDoubling | kRabenseifner
  CollectiveAlgo allgather = CollectiveAlgo::kAuto;  ///< kLinear | kBruck | kRing
  CollectiveAlgo gather = CollectiveAlgo::kAuto;     ///< kLinear | kBinomial
  CollectiveAlgo scatter = CollectiveAlgo::kAuto;    ///< kLinear | kBinomial
  CollectiveAlgo alltoall = CollectiveAlgo::kAuto;   ///< kLinear | kPairwise

  /// allreduce payloads >= this many bytes use Rabenseifner
  /// (reduce-scatter + allgather, 2n bytes per rank); smaller ones use
  /// recursive doubling (log2(p) rounds of the full vector).
  std::size_t allreduce_long_bytes = 4096;
  /// allgather per-rank contributions >= this many bytes use the ring;
  /// smaller ones use Bruck's log-round schedule.
  std::size_t allgather_long_bytes = 4096;
};

struct CommConfig {
  /// Default deadline for blocking recv/probe; zero means wait forever
  /// (the pre-resilience behaviour). Individual calls can override it with
  /// the *_within variants.
  std::chrono::milliseconds recv_timeout{0};

  /// When true (default) the runner starts a watchdog thread that aborts
  /// the world with a who-waits-on-whom DeadlockError once every live rank
  /// is blocked without a deadline and nothing is in flight — so a wedged
  /// test fails with a diagnostic instead of hanging ctest.
  bool watchdog = true;

  /// Watchdog sampling period. A deadlock must be stable across two
  /// consecutive samples before it is declared (rules out races).
  std::chrono::milliseconds watchdog_poll{250};

  /// Collective algorithm selection (forced schedules and the size
  /// thresholds kAuto resolves through). Inherited by split() children.
  CollectivePolicy coll;

  /// Intra-rank parallelism: lanes of each rank thread's util::TaskPool
  /// (the work-stealing pool under ufuncs, fused expressions, reductions,
  /// SpMV, and relaxation sweeps). 0 (default) defers to the PYHPC_THREADS
  /// environment variable, which itself defaults to 1 (serial). comm::run
  /// installs this per rank thread via TaskPool::set_thread_default.
  int threads = 0;

  /// Execution-space backend for this world's compute kernels (ufuncs,
  /// fused eval, reductions, SpMV, relaxation sweeps — DESIGN.md §11):
  /// kSerial (inline), kTaskPool (work-stealing pool, scalar loops), or
  /// kTaskPoolSimd (pool scheduling + vectorized elementwise inner
  /// loops). nullopt (default) defers to the PYHPC_EXEC_SPACE environment
  /// variable, which itself defaults to kTaskPool. comm::run installs
  /// this per rank thread via util::exec::set_thread_default; individual
  /// kernels can still override per call.
  std::optional<util::exec::Space> exec_space;

  /// Deterministic fault injection applied inside Context::deliver; null
  /// means no injection. Not inherited by split() children: rules address
  /// ranks of the context they are installed in.
  std::shared_ptr<FaultInjector> injector;

  /// Transport-tier switch point: isend payloads at or below this many
  /// bytes are copied eagerly (the future completes immediately); larger
  /// ones hand off by rendezvous — the envelope aliases the caller's
  /// memory and the SendFuture completes only when the receiver has let
  /// go of it. Blocking sends always stay eager regardless of size (the
  /// collectives' deadlock-freedom depends on sends never blocking).
  std::size_t eager_threshold = 8192;

  /// Pooled-buffer arena geometry for small eager copies: block size in
  /// bytes and the maximum number of free blocks kept for reuse. Payloads
  /// larger than one block fall through to heap storage.
  std::size_t arena_block_bytes = 8192;
  std::size_t arena_max_blocks = 64;
};

}  // namespace pyhpc::comm
