// Per-world communication policy: receive deadlines, the deadlock
// watchdog, and an optional fault injector. Passed to comm::run (and held
// by the Context), so every Communicator of the world sees the same policy.
#pragma once

#include <chrono>
#include <memory>

namespace pyhpc::comm {

class FaultInjector;

struct CommConfig {
  /// Default deadline for blocking recv/probe; zero means wait forever
  /// (the pre-resilience behaviour). Individual calls can override it with
  /// the *_within variants.
  std::chrono::milliseconds recv_timeout{0};

  /// When true (default) the runner starts a watchdog thread that aborts
  /// the world with a who-waits-on-whom DeadlockError once every live rank
  /// is blocked without a deadline and nothing is in flight — so a wedged
  /// test fails with a diagnostic instead of hanging ctest.
  bool watchdog = true;

  /// Watchdog sampling period. A deadlock must be stable across two
  /// consecutive samples before it is declared (rules out races).
  std::chrono::milliseconds watchdog_poll{250};

  /// Deterministic fault injection applied inside Context::deliver; null
  /// means no injection. Not inherited by split() children: rules address
  /// ranks of the context they are installed in.
  std::shared_ptr<FaultInjector> injector;
};

}  // namespace pyhpc::comm
