// Shared state for one communicator "world": the mailboxes of every rank,
// the abort flag, per-rank stats, and a registry used to hand sub-contexts
// from the creating rank to the other members during split().
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "comm/mailbox.hpp"
#include "comm/stats.hpp"

namespace pyhpc::comm {

class Context {
 public:
  explicit Context(int nranks);

  int size() const { return static_cast<int>(mailboxes_.size()); }

  Mailbox& mailbox(int rank);

  CommStats& stats(int rank);

  /// Set by the runner when any rank throws; blocking waits observe it.
  std::atomic<bool>& abort_flag() { return aborted_; }
  const std::atomic<bool>& abort_flag() const { return aborted_; }

  /// Marks the context aborted and wakes every blocked receiver.
  void abort();

  /// split() support: the lowest-ranked member of each colour group creates
  /// the child context and publishes it under (sequence, colour); the other
  /// members block until it appears. The key is unique because collectives
  /// execute in program order on every rank.
  void publish_child(std::uint64_t seq, int color,
                     std::shared_ptr<Context> child);
  std::shared_ptr<Context> wait_child(std::uint64_t seq, int color);

 private:
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<CommStats> stats_;
  std::atomic<bool> aborted_{false};

  std::mutex children_mu_;
  std::condition_variable children_cv_;
  std::map<std::pair<std::uint64_t, int>, std::shared_ptr<Context>> children_;
};

}  // namespace pyhpc::comm
