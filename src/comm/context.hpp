// Shared state for one communicator "world": the mailboxes of every rank,
// the abort flag, per-rank stats, the communication policy (CommConfig),
// failure-containment state (killed ranks, deadlock report), and a registry
// used to hand sub-contexts from the creating rank to the other members
// during split().
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "comm/buffer.hpp"
#include "comm/config.hpp"
#include "comm/mailbox.hpp"
#include "comm/stats.hpp"

namespace pyhpc::comm {

class Context {
 public:
  explicit Context(int nranks, CommConfig config = {});

  int size() const { return static_cast<int>(mailboxes_.size()); }

  const CommConfig& config() const { return config_; }

  Mailbox& mailbox(int rank);

  CommStats& stats(int rank);

  /// Shared pooled arena serving every rank's small eager copies (the
  /// blocks are thread-safe ref-counted, so sharing one pool across rank
  /// threads is safe and maximizes reuse).
  BufferArena& arena() { return arena_; }

  /// The single choke point every send funnels through: stamps the
  /// integrity checksum, consults the fault injector, filters traffic
  /// from/to killed ranks, and finally enqueues at `dest`'s mailbox.
  void deliver(int dest, Envelope env);

  /// Set by the runner when any rank throws; blocking waits observe it.
  std::atomic<bool>& abort_flag() { return aborted_; }
  const std::atomic<bool>& abort_flag() const { return aborted_; }

  /// Marks the context aborted and wakes every blocked receiver.
  void abort();

  // ---- failure containment ---------------------------------------------

  /// Simulated crash of one rank: its sends are swallowed, its blocking
  /// waits throw RankKilledError, and the rest of the world keeps running.
  void kill_rank(int rank);
  bool is_killed(int rank) const;
  const std::atomic<bool>& killed_flag(int rank) const;

  // ---- ULFM-style recovery ---------------------------------------------

  /// Revokes the communicator (MPI_Comm_revoke analogue): every blocked
  /// receive/probe on it throws RevokedError and future operations fail,
  /// so all survivors fall out of interrupted collectives and can join
  /// agree()/shrink(). Irrevocable; recovery produces a fresh child
  /// context via shrink.
  void revoke();
  bool is_revoked() const {
    return revoked_.load(std::memory_order_acquire);
  }
  const std::atomic<bool>& revoked_flag() const { return revoked_; }

  /// Fault-tolerant agreement on the known-dead set (MPI_Comm_agree
  /// analogue, specialised to the dead-rank bitmask). Every live rank
  /// calls it once per recovery round with the OR-mask of ranks it knows
  /// to be dead (bit r = rank r); the call returns the same value on
  /// every participant: the OR of all contributions plus every rank that
  /// is killed or already done. It runs over shared context state, not
  /// messages, because survivors of an interrupted collective have
  /// divergent sequence counters — and it tolerates failures by
  /// construction: a rank that dies mid-agreement is excused from the
  /// round and folded into the result. `round_out` (optional) receives
  /// the 0-based round index, used by shrink() to key the child registry.
  /// Requires size() <= 64.
  std::uint64_t agree(int rank, std::uint64_t local_mask,
                      std::uint64_t* round_out = nullptr);

  /// The runner marks a rank done when its body returns (or dies); the
  /// watchdog only considers not-done ranks when looking for deadlock.
  void mark_done(int rank);
  bool is_done(int rank) const;

  /// Watchdog verdict: records the who-waits-on-whom report (first writer
  /// wins) and aborts the world; blocked ranks then throw DeadlockError.
  void fail_deadlock(std::string report);
  bool deadlocked() const { return deadlocked_.load(std::memory_order_acquire); }
  std::string deadlock_report() const;

  /// split() support: the lowest-ranked member of each colour group creates
  /// the child context and publishes it under (sequence, colour); the other
  /// members block until it appears. The key is unique because collectives
  /// execute in program order on every rank.
  void publish_child(std::uint64_t seq, int color,
                     std::shared_ptr<Context> child);
  std::shared_ptr<Context> wait_child(std::uint64_t seq, int color);

  /// Non-blocking lookup in the child registry (shrink() polls it so a
  /// creator dying before publishing surfaces as PeerKilledError instead
  /// of a hang).
  std::shared_ptr<Context> try_get_child(std::uint64_t seq, int color);

 private:
  CommConfig config_;
  BufferArena arena_;  // declared before the mailboxes that hold its blocks
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<CommStats> stats_;
  std::atomic<bool> aborted_{false};
  std::unique_ptr<std::atomic<bool>[]> killed_;
  std::unique_ptr<std::atomic<bool>[]> done_;

  std::atomic<bool> deadlocked_{false};
  mutable std::mutex deadlock_mu_;
  std::string deadlock_report_;

  std::atomic<bool> revoked_{false};

  // agree() state: rounds complete in order; results are kept so a slow
  // rank can pick up a round that finished without it blocking the next.
  std::mutex agree_mu_;
  std::condition_variable agree_cv_;
  std::vector<std::uint64_t> agree_results_;  // result per completed round
  std::uint64_t agree_pending_mask_ = 0;      // contributions, current round
  std::uint64_t agree_contributed_ = 0;       // bit per contributing rank
  std::vector<std::uint64_t> agree_calls_;    // per-rank agree() call count

  std::mutex children_mu_;
  std::condition_variable children_cv_;
  std::map<std::pair<std::uint64_t, int>, std::shared_ptr<Context>> children_;
};

}  // namespace pyhpc::comm
