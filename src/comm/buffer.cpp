#include "comm/buffer.hpp"

namespace pyhpc::comm {

std::shared_ptr<std::byte[]> BufferArena::acquire(std::size_t n,
                                                  bool* reused_out) {
  if (n > core_->block_bytes || n == 0) return nullptr;
  std::unique_ptr<std::byte[]> block;
  bool reused = false;
  {
    std::lock_guard<std::mutex> lock(core_->mu);
    if (!core_->free.empty()) {
      block = std::move(core_->free.back());
      core_->free.pop_back();
      reused = true;
    }
  }
  if (!block) {
    block = std::make_unique<std::byte[]>(core_->block_bytes);
  }
  if (reused_out != nullptr) *reused_out = reused;
  // The deleter captures the shared core, so a block escaping the arena's
  // lifetime is still returned (or discarded) safely.
  std::shared_ptr<Core> core = core_;
  return std::shared_ptr<std::byte[]>(
      block.release(), [core](std::byte* p) {
        std::unique_ptr<std::byte[]> owned(p);
        std::lock_guard<std::mutex> lock(core->mu);
        if (core->free.size() < core->max_free) {
          core->free.push_back(std::move(owned));
        }
      });
}

Buffer Buffer::copy_of(std::span<const std::byte> data, BufferArena* arena,
                       bool* pooled_out) {
  if (pooled_out != nullptr) *pooled_out = false;
  Buffer b;
  if (data.empty()) return b;
  if (arena != nullptr) {
    bool reused = false;
    if (auto block = arena->acquire(data.size(), &reused)) {
      std::memcpy(block.get(), data.data(), data.size());
      b.data_ = block.get();
      b.size_ = data.size();
      b.owns_storage_ = true;
      b.holder_ = std::move(block);
      if (pooled_out != nullptr) *pooled_out = reused;
      return b;
    }
  }
  // Heap fallback (no arena, or payload exceeds the block size). Adopted
  // as a byte vector so a receive-side take_bytes() can still move it out.
  std::vector<std::byte> copy(data.begin(), data.end());
  b = Buffer::adopt(std::move(copy));
  b.zero_copy_ = false;  // the copy above is a real transport copy
  return b;
}

}  // namespace pyhpc::comm
