// Deterministic fault injection for the message-passing substrate.
//
// D2O and the Trilinos-at-scale experience both say a distributed-object
// layer is only production-usable when its communication failure modes are
// observable and reproducible. FaultInjector sits inside Context::deliver
// (the single choke point every send funnels through) and can drop, delay,
// duplicate, corrupt, or kill-a-rank based on (source, dest, tag) matching
// with a seeded RNG, so a 5%-loss run replays bit-identically as long as
// the matching sends originate from one thread (true for the ODIN driver,
// whose control plane is the main target).
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <optional>
#include <vector>

#include "comm/message.hpp"
#include "util/random.hpp"

namespace pyhpc::comm {

/// Wildcard rank for FaultRule matching.
inline constexpr int kAnyRank = -1;

enum class FaultKind {
  kDrop,       // message vanishes in flight
  kDelay,      // delivery stalls (sender-side, models link backpressure)
  kDuplicate,  // message is delivered twice
  kCorrupt,    // payload bit-flipped after checksumming -> detectable
  kKillRank,   // victim rank dies; the triggering message is lost with it
};

/// One injection rule. Rules are evaluated in insertion order; the first
/// rule that matches and fires decides the message's fate.
struct FaultRule {
  FaultKind kind = FaultKind::kDrop;
  int source = kAnyRank;
  int dest = kAnyRank;
  int tag = kAnyTag;
  /// Chance a matching message triggers the rule (seeded, deterministic).
  double probability = 1.0;
  /// Let this many matching messages through before the rule can fire
  /// ("kill rank after N messages").
  int skip_first = 0;
  /// Stop firing after this many applications; -1 = unlimited.
  int max_applications = -1;
  /// kKillRank: rank to kill. kAnyRank means "the destination".
  int victim = kAnyRank;
  /// kDelay: how long to stall delivery.
  std::chrono::milliseconds delay{0};
};

/// Totals of injected faults, by kind (what the injector *did*; the
/// detection-side counters live in CommStats).
struct FaultCounts {
  std::uint64_t drops = 0;
  std::uint64_t delays = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t corruptions = 0;
  std::uint64_t kills = 0;
  std::uint64_t total() const {
    return drops + delays + duplicates + corruptions + kills;
  }
};

/// Short name of a fault kind ("drop", "kill", ...) for traces and logs.
const char* fault_kind_name(FaultKind kind);

class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed) : seed_(seed), rng_(seed) {}

  /// The seed this injector was constructed with. Exported as the
  /// `faults.seed` metric so any red chaos run replays bit-identically
  /// from the printed seed.
  std::uint64_t seed() const { return seed_; }

  /// Returns the index of the installed rule (for match introspection).
  int add_rule(const FaultRule& rule);

  /// What a firing rule told Context::deliver to do.
  struct Decision {
    FaultKind kind;
    int victim = kAnyRank;
    std::chrono::milliseconds delay{0};
    /// Index of the rule that fired (for the fault.fired obs instant).
    int rule = -1;
  };

  /// Consulted once per message; nullopt means deliver normally.
  std::optional<Decision> intercept(int source, int dest, int tag);

  FaultCounts counts() const;

  /// Messages that matched rule `index` (fired or not), and times it fired.
  std::uint64_t rule_matches(int index) const;
  std::uint64_t rule_applications(int index) const;

 private:
  struct RuleState {
    FaultRule rule;
    std::uint64_t matches = 0;
    std::uint64_t applications = 0;
  };

  static bool matches(const FaultRule& r, int source, int dest, int tag) {
    return (r.source == kAnyRank || r.source == source) &&
           (r.dest == kAnyRank || r.dest == dest) &&
           (r.tag == kAnyTag || r.tag == tag);
  }

  mutable std::mutex mu_;
  std::uint64_t seed_;
  util::Xoshiro256 rng_;
  std::vector<RuleState> rules_;
  FaultCounts counts_;
};

}  // namespace pyhpc::comm
